package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// The paper's headline result: the Hydro Fragment's skewed reads are
// 22% remote without a cache and ~1% with the 256-element page cache.
func ExampleSimulate() {
	noCache, err := repro.Simulate("k1", 1000, repro.NoCacheConfig(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	cached, err := repro.Simulate("k1", 1000, repro.PaperConfig(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no cache: %.1f%% remote\n", noCache.RemotePercent())
	fmt.Printf("cached:   %.1f%% remote\n", cached.RemotePercent())
	// Output:
	// no cache: 21.7% remote
	// cached:   1.0% remote
}

// Matched-distribution loops never read remotely, at any machine size.
func ExampleClassify() {
	class, err := repro.Classify("k14frag", 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1-D PIC fragment is", class)
	// Output:
	// 1-D PIC fragment is MD
}

// The concurrent engine runs a cross-PE recurrence with no explicit
// synchronization: deferred reads on the tagged memory pipeline the
// PEs, and single assignment makes the values deterministic.
func ExampleExecute() {
	res, err := repro.Execute("k11", 512, repro.DefaultMachine(8, 32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("page request/reply pairs:", res.PageRequests == res.PageReplies)
	fmt.Println("remote reads:", res.Totals.RemoteReads)
	// Output:
	// page request/reply pairs: true
	// remote reads: 16
}

// Conventional Fortran-style loops are rewritten to single-assignment
// form by the §5 conversion tool.
func ExampleConvertToSA() {
	p, err := repro.ParseProgram(`
PROGRAM update
  ARRAY A(n+1) INPUT
  ARRAY B(n+1) INPUT
  DO i = 1, n
    A(i) = A(i) + B(i)
  END DO
END`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.ConvertToSA(p, 100)
	if err != nil {
		log.Fatal(err)
	}
	for _, rw := range res.Rewrites {
		fmt.Printf("%s: %s -> %s\n", rw.Kind, rw.Array, rw.NewArray)
	}
	// Output:
	// version-rename: A -> A__2
}
