package repro

import (
	"math"
	"testing"

	"repro/internal/ir"
)

func TestFacadeKernels(t *testing.T) {
	ks := Kernels()
	if len(ks) != 26 {
		t.Fatalf("Kernels() = %d, want 26", len(ks))
	}
	if len(PaperKernels()) != 11 {
		t.Fatalf("PaperKernels() = %d, want 11", len(PaperKernels()))
	}
	k, err := KernelByKey("k1")
	if err != nil || k.ID != 1 {
		t.Errorf("KernelByKey: %v %v", k, err)
	}
	if _, err := KernelByKey("zz"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestFacadeSimulate(t *testing.T) {
	res, err := Simulate("k1", 1000, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if p := res.RemotePercent(); p <= 0 || p > 1.5 {
		t.Errorf("k1 cached remote%% = %.2f", p)
	}
	nc, err := Simulate("k1", 1000, NoCacheConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if nc.RemotePercent() < 20 {
		t.Errorf("no-cache remote%% = %.2f", nc.RemotePercent())
	}
	if _, err := Simulate("zz", 0, PaperConfig(4, 32)); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFacadeExecute(t *testing.T) {
	res, err := Execute("k5", 128, DefaultMachine(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Writes == 0 {
		t.Error("no writes recorded")
	}
	if _, err := Execute("zz", 0, DefaultMachine(4, 16)); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFacadeSimulateExecuteAgree(t *testing.T) {
	// The headline integration check: counting simulation and real
	// concurrent execution agree on ownership-determined quantities.
	s, err := Simulate("k18", 64, PaperConfig(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Execute("k18", 64, DefaultMachine(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	if s.Totals.Writes != m.Totals.Writes {
		t.Errorf("writes: sim %d, machine %d", s.Totals.Writes, m.Totals.Writes)
	}
	if s.Totals.LocalReads != m.Totals.LocalReads {
		t.Errorf("local reads: sim %d, machine %d", s.Totals.LocalReads, m.Totals.LocalReads)
	}
	for i := range s.Checksums {
		if math.Abs(s.Checksums[i].Sum-m.Checksums[i].Sum) > 1e-9*(1+math.Abs(s.Checksums[i].Sum)) {
			t.Errorf("checksum %s: sim %v, machine %v",
				s.Checksums[i].Name, s.Checksums[i].Sum, m.Checksums[i].Sum)
		}
	}
}

func TestFacadeClassify(t *testing.T) {
	cls, err := Classify("k14frag", 500)
	if err != nil {
		t.Fatal(err)
	}
	if cls != MD {
		t.Errorf("k14frag = %v, want MD", cls)
	}
	if _, err := Classify("zz", 0); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFacadeConvert(t *testing.T) {
	res, err := ConvertToSA(ir.SampleInPlace(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rewrites) == 0 {
		t.Error("no rewrites")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 14 {
		t.Errorf("Experiments() = %d, want 14", len(Experiments()))
	}
	o, err := RunExperiment("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !o.Pass() {
		t.Error("fig1 checks failed via facade")
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeParseAndTiming(t *testing.T) {
	p, err := ParseProgram(`
PROGRAM tiny
  ARRAY X(n+1) OUTPUT
  ARRAY Y(n+1) INPUT
  DO k = 1, n
    X(k) = Y(k)
  END DO
END`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny" {
		t.Errorf("parsed name %q", p.Name)
	}
	if _, err := ParseProgram("garbage"); err == nil {
		t.Error("garbage accepted")
	}

	res, err := Simulate("k14frag", 1024, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	tm := EstimateTiming(res)
	if tm.Speedup < 12 {
		t.Errorf("MD speedup = %.2f, want near-linear", tm.Speedup)
	}
	if DefaultCostModel().RemoteCycles <= DefaultCostModel().LocalCycles {
		t.Error("cost model orders remote below local")
	}
}
