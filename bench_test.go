package repro

// One benchmark per figure and table of the paper's evaluation, plus
// the §9 ablations and engine micro-benchmarks. Figure benches report
// the reproduced headline metric (remote%) alongside time/op, so
// `go test -bench=.` regenerates the paper's numbers:
//
//	go test -bench=Figure -benchmem
//	go test -bench=Ablation
//	go test -bench=Engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/samem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func benchKernel(b *testing.B, key string) *loops.Kernel {
	b.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

// benchSim runs one simulator configuration b.N times and reports the
// remote-read percentage it reproduces.
func benchSim(b *testing.B, key string, n int, cfg sim.Config) {
	b.Helper()
	k := benchKernel(b, key)
	var remote float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(k, n, cfg)
		if err != nil {
			b.Fatal(err)
		}
		remote = res.RemotePercent()
	}
	b.ReportMetric(remote, "remote%")
}

// BenchmarkFigure1 regenerates Figure 1 (Hydro Fragment, SD): the four
// published series at the paper's 8-PE point. Paper: no-cache ps32
// ~22%, cache ~1%.
func BenchmarkFigure1(b *testing.B) {
	for _, ps := range []int{32, 64} {
		for _, cached := range []bool{true, false} {
			name := fmt.Sprintf("ps=%d/cache=%v", ps, cached)
			b.Run(name, func(b *testing.B) {
				cfg := sim.PaperConfig(8, ps)
				if !cached {
					cfg.CacheElems = 0
				}
				benchSim(b, "k1", 1000, cfg)
			})
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (ICCG, CD). Paper: no-cache
// rises toward 100%, cache collapses it.
func BenchmarkFigure2(b *testing.B) {
	for _, npe := range []int{4, 16, 64} {
		for _, cached := range []bool{true, false} {
			b.Run(fmt.Sprintf("npe=%d/cache=%v", npe, cached), func(b *testing.B) {
				cfg := sim.PaperConfig(npe, 32)
				if !cached {
					cfg.CacheElems = 0
				}
				benchSim(b, "k2", 1024, cfg)
			})
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3 (2-D Explicit Hydrodynamics,
// CD+SD). Paper: 0-8% band, cached series declines with PEs.
func BenchmarkFigure3(b *testing.B) {
	for _, npe := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("npe=%d/cached", npe), func(b *testing.B) {
			benchSim(b, "k18", 0, sim.PaperConfig(npe, 32))
		})
	}
	b.Run("npe=16/nocache", func(b *testing.B) {
		benchSim(b, "k18", 0, sim.NoCacheConfig(16, 32))
	})
}

// BenchmarkFigure4 regenerates Figure 4 (General Linear Recurrence,
// RD). Paper: high remote ratios regardless of caching.
func BenchmarkFigure4(b *testing.B) {
	for _, cached := range []bool{true, false} {
		b.Run(fmt.Sprintf("npe=16/cache=%v", cached), func(b *testing.B) {
			cfg := sim.PaperConfig(16, 32)
			if !cached {
				cfg.CacheElems = 0
			}
			benchSim(b, "k6", 300, cfg)
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5 (load balance at 64 PEs):
// reports the coefficient of variation of per-PE local reads — the
// paper's "evenly balanced loads".
func BenchmarkFigure5(b *testing.B) {
	k := benchKernel(b, "k18")
	var cv float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(k, 1022, sim.PaperConfig(64, 32))
		if err != nil {
			b.Fatal(err)
		}
		cv = stats.BalanceOf(res.PerPE.Extract(stats.LocalRead)).CV
	}
	b.ReportMetric(cv, "localCV")
}

// BenchmarkTableA regenerates the §7.1 classification of the paper's
// loop set; the metric is the fraction that match the published class.
func BenchmarkTableA(b *testing.B) {
	ks := loops.PaperSet()
	var agree float64
	for i := 0; i < b.N; i++ {
		agree = 0
		judged := 0
		for _, k := range ks {
			cls, err := Classify(k.Key, 0)
			if err != nil {
				b.Fatal(err)
			}
			if k.Class != loops.ClassUnknown {
				judged++
				if cls == k.Class {
					agree++
				}
			}
		}
		agree /= float64(judged)
	}
	b.ReportMetric(agree*100, "agree%")
}

// BenchmarkTableB regenerates the §8 summary: fraction of the paper's
// loops below 10% remote with the 256-element cache at 16 PEs.
func BenchmarkTableB(b *testing.B) {
	ks := loops.PaperSet()
	var below float64
	for i := 0; i < b.N; i++ {
		below = 0
		for _, k := range ks {
			res, err := sim.Run(k, 0, sim.PaperConfig(16, 32))
			if err != nil {
				b.Fatal(err)
			}
			if res.RemotePercent() < 10 {
				below++
			}
		}
		below = 100 * below / float64(len(ks))
	}
	b.ReportMetric(below, "below10%")
}

// BenchmarkAblationLayout compares modulo vs division partitioning on
// the skew-1 recurrence (§9).
func BenchmarkAblationLayout(b *testing.B) {
	for _, kind := range []partition.Kind{partition.KindModulo, partition.KindBlock} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := sim.NoCacheConfig(16, 32)
			cfg.Layout = kind
			benchSim(b, "k5", 1000, cfg)
		})
	}
}

// BenchmarkAblationCacheSize sweeps the cache size on the RD exemplar
// (§7.1.4: larger caches rescue RD).
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, ce := range []int{0, 256, 4096, 16384} {
		b.Run(fmt.Sprintf("cache=%d", ce), func(b *testing.B) {
			cfg := sim.PaperConfig(16, 32)
			cfg.CacheElems = ce
			benchSim(b, "k6", 300, cfg)
		})
	}
}

// BenchmarkAblationPageSize sweeps the page size on the skewed
// exemplar (§9 page-size selectability).
func BenchmarkAblationPageSize(b *testing.B) {
	for _, ps := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("ps=%d", ps), func(b *testing.B) {
			benchSim(b, "k1", 1000, sim.PaperConfig(16, ps))
		})
	}
}

// BenchmarkAblationPolicy compares replacement policies on the cyclic
// exemplar.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.Clock, cache.Random} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := sim.PaperConfig(16, 32)
			cfg.Policy = pol
			benchSim(b, "k2", 1024, cfg)
		})
	}
}

// BenchmarkAblationPartialFill measures the cost of modeling §4's
// partially-filled page re-fetches.
func BenchmarkAblationPartialFill(b *testing.B) {
	for _, model := range []bool{false, true} {
		b.Run(fmt.Sprintf("model=%v", model), func(b *testing.B) {
			cfg := sim.PaperConfig(16, 32)
			cfg.ModelPartialFill = model
			benchSim(b, "k2", 1024, cfg)
		})
	}
}

// --- sweep-engine benchmarks ---
// `go run ./cmd/lfksim -bench -o BENCH_sweep.json` records the same
// serial-vs-parallel comparison as a committed artifact.

// sweepGrid is the benchmark grid: the paper's loop set across its PE
// axis, both page sizes, cache on and off.
func sweepGrid(b *testing.B) []sweep.Point {
	b.Helper()
	return sweep.Grid{
		Kernels:    loops.PaperSet(),
		PageSizes:  []int{32, 64},
		CacheElems: []int{0, 256},
	}.Points()
}

// benchSweep runs the grid b.N times under the given worker count and
// replay mode, reporting points/s.
func benchSweep(b *testing.B, pts []sweep.Point, workers int, mode sweep.ReplayMode) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.RunOpts(context.Background(), pts, sweep.Options{Workers: workers, Replay: mode}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweepGridSerial sweeps the standard grid with one worker and
// replay off: the direct-execution baseline every other sweep benchmark
// is measured against.
func BenchmarkSweepGridSerial(b *testing.B) {
	benchSweep(b, sweepGrid(b), 1, sweep.ReplayOff)
}

// BenchmarkSweepGridParallel sweeps the same grid over GOMAXPROCS
// workers, still executing every point directly; compare points/s
// against the serial baseline.
func BenchmarkSweepGridParallel(b *testing.B) {
	benchSweep(b, sweepGrid(b), 0, sweep.ReplayOff)
}

// BenchmarkSweepGridReplaySerial sweeps the grid with one worker under
// the pre-batching execute-once/classify-many planner: each kernel
// executes once (capture) and every other point replays its reference
// stream one configuration at a time. The points/s ratio against
// BenchmarkSweepGridSerial is the execute-once win alone.
func BenchmarkSweepGridReplaySerial(b *testing.B) {
	benchSweep(b, sweepGrid(b), 1, sweep.ReplayPoint)
}

// BenchmarkSweepGridReplayParallel combines both engines: bounded
// worker-pool parallelism and per-point stream replay.
func BenchmarkSweepGridReplayParallel(b *testing.B) {
	benchSweep(b, sweepGrid(b), 0, sweep.ReplayPoint)
}

// BenchmarkSweepGridBatchSerial sweeps the grid with one worker under
// the batch planner: each capture group is classified in a single
// decode pass over its stream (refstream.Replayer.RunBatch). The ratio
// against BenchmarkSweepGridReplaySerial isolates the decode-once win;
// against BenchmarkSweepGridSerial, the full execute-once +
// decode-once speedup.
func BenchmarkSweepGridBatchSerial(b *testing.B) {
	benchSweep(b, sweepGrid(b), 1, sweep.ReplayOn)
}

// BenchmarkSweepGridBatchParallel runs batch passes over the bounded
// worker pool — one group per task, groups spread across workers.
func BenchmarkSweepGridBatchParallel(b *testing.B) {
	benchSweep(b, sweepGrid(b), 0, sweep.ReplayOn)
}

// BenchmarkSweepScratchReuse isolates the per-point allocation savings
// of the worker-owned sim.Scratch against fresh sim.Run calls.
func BenchmarkSweepScratchReuse(b *testing.B) {
	k := benchKernel(b, "k18")
	cfg := sim.PaperConfig(16, 32)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(k, 400, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		s := sim.NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(k, 400, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- engine micro-benchmarks ---

// BenchmarkEngineSimThroughput measures counting-simulator speed in
// accesses per second over the full Livermore sweep kernel 18.
func BenchmarkEngineSimThroughput(b *testing.B) {
	k := benchKernel(b, "k18")
	cfg := sim.PaperConfig(16, 32)
	var accesses int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(k, 400, cfg)
		if err != nil {
			b.Fatal(err)
		}
		accesses = res.Totals.Accesses()
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Maccess/s")
}

// BenchmarkEngineMachine measures the concurrent engine end to end
// (goroutines, tagged memory, messages).
func BenchmarkEngineMachine(b *testing.B) {
	k := benchKernel(b, "k1")
	cfg := machine.DefaultConfig(8, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Run(k, 1000, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCacheLookup measures the page-cache hot path.
func BenchmarkEngineCacheLookup(b *testing.B) {
	c, err := cache.New(256, 32, cache.LRU)
	if err != nil {
		b.Fatal(err)
	}
	page := make([]float64, 32)
	for p := 0; p < 8; p++ {
		c.Insert(cache.Key{Page: p}, page, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(cache.Key{Page: i & 7}, i&31)
	}
}

// BenchmarkEngineSamemWrite measures tagged-memory writes including
// waiter bookkeeping.
func BenchmarkEngineSamemWrite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i += 1024 {
		p := samem.NewPage("X", 0, 1024)
		limit := i + 1024
		if limit > b.N {
			limit = b.N
		}
		for j := 0; j < limit-i; j++ {
			if err := p.Write(j, 1.0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEnginePartitionOwner measures the owner-computes address
// check.
func BenchmarkEnginePartitionOwner(b *testing.B) {
	g, err := partition.NewGeometry(1<<20, 32)
	if err != nil {
		b.Fatal(err)
	}
	l, err := partition.NewModulo(64)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += partition.OwnerOfElem(g, l, i&(1<<20-1))
	}
	_ = sink
}

// BenchmarkEngineTraceReplay measures trace-driven cache re-simulation.
func BenchmarkEngineTraceReplay(b *testing.B) {
	k := benchKernel(b, "k2")
	buf := &trace.Buffer{}
	cfg := sim.PaperConfig(8, 32)
	cfg.Tracer = buf
	if _, err := sim.Run(k, 1024, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReplayCache(buf, 8, 1024, 32, cache.LRU); err != nil {
			b.Fatal(err)
		}
	}
}
