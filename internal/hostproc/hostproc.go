// Package hostproc implements the host-processor mechanism of Bic,
// Nagel & Roy (1989) §5: statically allocated single-assignment arrays
// cannot be rewritten, so reuse requires a controlled relaxation. Each
// array is assigned an administrative PE — its host processor — and
// re-initialization proceeds in two phases:
//
//  1. every PE that is finished with the current version of array A
//     sends a re-initialization request to A's host;
//  2. once the last PE has requested re-initialization, the host
//     broadcasts a grant, after which A's cells are undefined again and
//     a new version may be produced.
//
// The same synchronization pattern covers deallocation ("deallocation
// of arrays must be based on the same kind of host processor
// synchronization"). The compiler spreads host duties evenly over PEs;
// here hosts default to array ID mod NPE.
//
// The package is deliberately independent of the execution engine: it
// synchronizes any set of goroutine "PEs" over a network.Network, and
// exposes the version counter that storage and caches key on.
//
// Host-processor exchanges ride the network's reliable control plane:
// unlike page requests/replies, re-initialization votes and grants are
// not idempotent (a duplicated vote would release an array early), so
// the fault-injection layer (docs/FAULTS.md) never drops, duplicates or
// delays them.
package hostproc

import (
	"fmt"
	"sync"

	"repro/internal/network"
)

// State tracks one array's lifecycle.
type State int

// Array lifecycle states.
const (
	Live        State = iota // current version readable/writable
	Reinit                   // re-initialization in progress
	Deallocated              // storage released
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Live:
		return "live"
	case Reinit:
		return "reinit"
	case Deallocated:
		return "deallocated"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Hooks let the storage layer react to protocol transitions. All hooks
// run on the goroutine that completes the transition, exactly once per
// transition.
type Hooks struct {
	// OnReinit runs when the last PE's request arrives, before the
	// grant is broadcast: reset pages, invalidate cached snapshots.
	OnReinit func(array int, newVersion int)
	// OnDealloc runs when a deallocation completes.
	OnDealloc func(array int)
}

// Coordinator manages host-processor synchronization for a set of
// arrays across NPE processing elements. It is safe for concurrent use
// by one goroutine per PE.
type Coordinator struct {
	npe   int
	net   *network.Network
	hooks Hooks

	mu      sync.Mutex
	arrays  map[int]*arrayCtl
	msgSent int64
}

type arrayCtl struct {
	host    int
	state   State
	version int
	pending map[int]bool // PEs whose request has arrived this round
	waiters []chan int   // grant channels, one per blocked PE
}

// New returns a Coordinator for npe PEs. net may be nil for engines
// that only need the synchronization semantics without traffic
// accounting.
func New(npe int, net *network.Network) (*Coordinator, error) {
	if npe <= 0 {
		return nil, fmt.Errorf("hostproc: NPE must be positive, got %d", npe)
	}
	return &Coordinator{npe: npe, net: net, arrays: make(map[int]*arrayCtl)}, nil
}

// SetHooks installs storage callbacks; call before any PE activity.
func (c *Coordinator) SetHooks(h Hooks) { c.hooks = h }

// Register declares an array and assigns its host processor. The
// compiler's even-spreading rule is host = array mod NPE; a negative
// host selects that default.
func (c *Coordinator) Register(array, host int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.arrays[array]; dup {
		return fmt.Errorf("hostproc: array %d already registered", array)
	}
	if host < 0 {
		host = array % c.npe
	}
	if host >= c.npe {
		return fmt.Errorf("hostproc: host %d out of range for %d PEs", host, c.npe)
	}
	c.arrays[array] = &arrayCtl{host: host, state: Live, pending: make(map[int]bool)}
	return nil
}

// Host returns the host PE of an array.
func (c *Coordinator) Host(array int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctl, ok := c.arrays[array]
	if !ok {
		return 0, fmt.Errorf("hostproc: unknown array %d", array)
	}
	return ctl.host, nil
}

// Version returns the array's current version number (0 for the
// original allocation, incremented by each re-initialization).
func (c *Coordinator) Version(array int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctl, ok := c.arrays[array]
	if !ok {
		return 0, fmt.Errorf("hostproc: unknown array %d", array)
	}
	return ctl.version, nil
}

// StateOf returns the array's lifecycle state.
func (c *Coordinator) StateOf(array int) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctl, ok := c.arrays[array]
	if !ok {
		return 0, fmt.Errorf("hostproc: unknown array %d", array)
	}
	return ctl.state, nil
}

// MessagesSent returns the number of protocol messages accounted so
// far (requests and grant broadcasts).
func (c *Coordinator) MessagesSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgSent
}

// RequestReinit is called by PE pe when it is finished with the current
// version of the array. It blocks until every PE has requested
// re-initialization and the host has granted it, then returns the new
// version number. "The host processor acts as a synchronization point
// for A so that no PE attempts to write to an out-of-date version."
func (c *Coordinator) RequestReinit(array, pe int) (int, error) {
	grant, newVersion, err := c.request(array, pe, false)
	if err != nil {
		return 0, err
	}
	if grant == nil {
		return newVersion, nil // this PE completed the round
	}
	return <-grant, nil
}

// RequestDealloc is the same barrier with deallocation semantics: after
// the grant the array is gone and further operations on it fail.
func (c *Coordinator) RequestDealloc(array, pe int) error {
	grant, _, err := c.request(array, pe, true)
	if err != nil {
		return err
	}
	if grant != nil {
		<-grant
	}
	return nil
}

// request registers PE pe's vote. It returns a non-nil channel if the
// caller must wait for the grant, or (nil, newVersion) if the caller
// was the last voter and completed the transition itself.
func (c *Coordinator) request(array, pe int, dealloc bool) (chan int, int, error) {
	c.mu.Lock()
	ctl, ok := c.arrays[array]
	if !ok {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hostproc: unknown array %d", array)
	}
	if pe < 0 || pe >= c.npe {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hostproc: PE %d out of range", pe)
	}
	if ctl.state == Deallocated {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hostproc: array %d is deallocated", array)
	}
	if ctl.pending[pe] {
		c.mu.Unlock()
		return nil, 0, fmt.Errorf("hostproc: PE %d voted twice for array %d", pe, array)
	}
	ctl.pending[pe] = true
	ctl.state = Reinit
	// Model the request message to the host.
	c.accountLocked(pe, ctl.host, network.ReinitRequest, array)

	if len(ctl.pending) < c.npe {
		ch := make(chan int, 1)
		ctl.waiters = append(ctl.waiters, ch)
		c.mu.Unlock()
		return ch, 0, nil
	}

	// Last voter: the host completes the round.
	waiters := ctl.waiters
	ctl.waiters = nil
	ctl.pending = make(map[int]bool)
	var newVersion int
	if dealloc {
		ctl.state = Deallocated
		newVersion = -1
	} else {
		ctl.version++
		newVersion = ctl.version
		ctl.state = Live
	}
	// Grant broadcast to every other PE.
	for other := 0; other < c.npe; other++ {
		if other != ctl.host {
			c.accountLocked(ctl.host, other, network.ReinitGrant, array)
		}
	}
	hooks := c.hooks
	c.mu.Unlock()

	if dealloc {
		if hooks.OnDealloc != nil {
			hooks.OnDealloc(array)
		}
	} else if hooks.OnReinit != nil {
		hooks.OnReinit(array, newVersion)
	}
	for _, ch := range waiters {
		ch <- newVersion
	}
	return nil, newVersion, nil
}

// accountLocked records one protocol message. The caller holds c.mu.
// Protocol messages share the interconnect with page traffic; they are
// accounted but resolved directly by the Coordinator rather than
// routed through inboxes.
func (c *Coordinator) accountLocked(src, dst int, typ network.MsgType, array int) {
	c.msgSent++
	if c.net == nil || src == dst {
		return
	}
	_ = c.net.Account(network.Message{Type: typ, Src: src, Dst: dst, Array: array})
}
