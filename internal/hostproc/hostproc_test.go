package hostproc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/samem"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("zero PEs accepted")
	}
}

func TestRegisterAndDefaults(t *testing.T) {
	c, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(6, -1); err != nil {
		t.Fatal(err)
	}
	// Default host spreading: array mod NPE.
	if h, _ := c.Host(6); h != 2 {
		t.Errorf("host = %d, want 2", h)
	}
	if err := c.Register(6, -1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := c.Register(7, 9); err == nil {
		t.Error("out-of-range host accepted")
	}
	if _, err := c.Host(99); err == nil {
		t.Error("unknown array accepted")
	}
	if _, err := c.Version(99); err == nil {
		t.Error("unknown array version accepted")
	}
	if _, err := c.StateOf(99); err == nil {
		t.Error("unknown array state accepted")
	}
	if st, _ := c.StateOf(6); st != Live {
		t.Errorf("fresh array state = %v", st)
	}
}

func TestReinitBarrier(t *testing.T) {
	// No PE may observe the new version until every PE has requested
	// re-initialization: the paper's host-processor gathering point.
	const npe = 8
	c, err := New(npe, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(0, -1); err != nil {
		t.Fatal(err)
	}
	var reached int32
	var wg sync.WaitGroup
	versions := make([]int, npe)
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			if pe == npe-1 {
				// Give the others time to block on the barrier.
				time.Sleep(20 * time.Millisecond)
				if n := atomic.LoadInt32(&reached); n != 0 {
					t.Errorf("%d PEs passed the barrier before the last vote", n)
				}
			}
			v, err := c.RequestReinit(0, pe)
			if err != nil {
				t.Error(err)
				return
			}
			atomic.AddInt32(&reached, 1)
			versions[pe] = v
		}(pe)
	}
	wg.Wait()
	for pe, v := range versions {
		if v != 1 {
			t.Errorf("PE %d saw version %d, want 1", pe, v)
		}
	}
	if v, _ := c.Version(0); v != 1 {
		t.Errorf("array version = %d", v)
	}
	if st, _ := c.StateOf(0); st != Live {
		t.Errorf("state after reinit = %v", st)
	}
}

func TestReinitMultipleRounds(t *testing.T) {
	const npe, rounds = 4, 5
	c, _ := New(npe, nil)
	if err := c.Register(0, -1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				v, err := c.RequestReinit(0, pe)
				if err != nil {
					t.Error(err)
					return
				}
				if v != r {
					t.Errorf("PE %d round %d saw version %d", pe, r, v)
					return
				}
			}
		}(pe)
	}
	wg.Wait()
	if v, _ := c.Version(0); v != rounds {
		t.Errorf("final version = %d, want %d", v, rounds)
	}
}

func TestDoubleVoteRejected(t *testing.T) {
	c, _ := New(2, nil)
	if err := c.Register(0, -1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.RequestReinit(0, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if _, _, err := c.request(0, 0, false); err == nil {
		t.Error("double vote accepted")
	}
	// Complete the round so the goroutine exits.
	if _, err := c.RequestReinit(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestVoteValidation(t *testing.T) {
	c, _ := New(2, nil)
	c.Register(0, -1)
	if _, err := c.RequestReinit(99, 0); err == nil {
		t.Error("unknown array accepted")
	}
	if _, err := c.RequestReinit(0, 5); err == nil {
		t.Error("out-of-range PE accepted")
	}
}

func TestReinitHooksResetStorage(t *testing.T) {
	// The OnReinit hook runs exactly once per round, before any PE is
	// released, so page resets and cache invalidations are safe.
	const npe = 4
	c, _ := New(npe, nil)
	c.Register(0, -1)
	page := samem.NewPage("A", 0, 8)
	for i := 0; i < 8; i++ {
		if err := page.Write(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var hookRuns int32
	c.SetHooks(Hooks{OnReinit: func(array, newVersion int) {
		atomic.AddInt32(&hookRuns, 1)
		if err := page.Reset(); err != nil {
			t.Error(err)
		}
	}})
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			if _, err := c.RequestReinit(0, pe); err != nil {
				t.Error(err)
				return
			}
			// Past the barrier the page must be reset for everyone.
			if page.DefinedCount() != 0 {
				t.Errorf("PE %d observed a non-reset page after grant", pe)
			}
		}(pe)
	}
	wg.Wait()
	if hookRuns != 1 {
		t.Errorf("OnReinit ran %d times, want 1", hookRuns)
	}
	// The array is writable again.
	if err := page.Write(0, 42); err != nil {
		t.Errorf("write after reinit: %v", err)
	}
}

func TestDealloc(t *testing.T) {
	const npe = 4
	c, _ := New(npe, nil)
	c.Register(0, -1)
	var deallocRuns int32
	c.SetHooks(Hooks{OnDealloc: func(array int) { atomic.AddInt32(&deallocRuns, 1) }})
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			if err := c.RequestDealloc(0, pe); err != nil {
				t.Error(err)
			}
		}(pe)
	}
	wg.Wait()
	if deallocRuns != 1 {
		t.Errorf("OnDealloc ran %d times", deallocRuns)
	}
	if st, _ := c.StateOf(0); st != Deallocated {
		t.Errorf("state = %v", st)
	}
	// Further operations fail.
	if _, err := c.RequestReinit(0, 0); err == nil {
		t.Error("reinit of deallocated array accepted")
	}
}

func TestProtocolMessageAccounting(t *testing.T) {
	const npe = 4
	net, err := network.New(npe, network.Bus{N: npe}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := New(npe, net)
	c.Register(1, -1) // host = PE 1
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			if _, err := c.RequestReinit(1, pe); err != nil {
				t.Error(err)
			}
		}(pe)
	}
	wg.Wait()
	// NPE requests + NPE-1 grants, minus the host's self-request which
	// is local.
	if got := c.MessagesSent(); got != int64(npe+npe-1) {
		t.Errorf("MessagesSent = %d, want %d", got, npe+npe-1)
	}
	if reqs := net.CountByType(network.ReinitRequest); reqs != npe-1 {
		t.Errorf("wire requests = %d, want %d (host's own is local)", reqs, npe-1)
	}
	if grants := net.CountByType(network.ReinitGrant); grants != npe-1 {
		t.Errorf("wire grants = %d, want %d", grants, npe-1)
	}
}

func TestManyArraysIndependentRounds(t *testing.T) {
	// Re-initialization rounds of different arrays must not interfere.
	const npe = 4
	c, _ := New(npe, nil)
	for a := 0; a < 6; a++ {
		if err := c.Register(a, -1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for pe := 0; pe < npe; pe++ {
		wg.Add(1)
		go func(pe int) {
			defer wg.Done()
			// All PEs visit the arrays in the same program order — the
			// barriers are full-machine, so differing orders would be a
			// program deadlock, exactly as with any barrier protocol.
			for a := 0; a < 6; a++ {
				if _, err := c.RequestReinit(a, pe); err != nil {
					t.Error(err)
					return
				}
			}
		}(pe)
	}
	wg.Wait()
	for a := 0; a < 6; a++ {
		if v, _ := c.Version(a); v != 1 {
			t.Errorf("array %d version = %d", a, v)
		}
	}
}

func TestStateString(t *testing.T) {
	if Live.String() != "live" || Reinit.String() != "reinit" || Deallocated.String() != "deallocated" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state empty")
	}
}
