package convert

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/loops"
)

func mustConvert(t *testing.T, p *ir.Program, n int) *Result {
	t.Helper()
	res, err := ToSA(p, n)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res
}

func runConverted(t *testing.T, res *Result, n int) *loops.SeqResult {
	t.Helper()
	k, err := res.Program.Kernel(n)
	if err != nil {
		t.Fatalf("%s: compile: %v", res.Program.Name, err)
	}
	out, err := loops.RunSeq(k, n)
	if err != nil {
		t.Fatalf("%s: converted program still violates SA: %v", res.Program.Name, err)
	}
	return out
}

func TestDirtySamplesConvertAndRunClean(t *testing.T) {
	// Every conventional-Fortran sample converts to a program that runs
	// without violations on the reference engine — the end-to-end
	// guarantee of the §5 conversion tool.
	for _, p := range []*ir.Program{
		ir.SampleInPlace(), ir.SampleCarriedScalar(),
		ir.SampleGaussSeidel(), ir.SampleTwoPhase(),
	} {
		res := mustConvert(t, p, 32)
		if len(res.Rewrites) == 0 {
			t.Errorf("%s: no rewrites recorded", p.Name)
		}
		if res.ExtraElems <= 0 {
			t.Errorf("%s: conversion reported no extra storage", p.Name)
		}
		if viol := ir.Violations(res.Program.CheckSA()); len(viol) != 0 {
			t.Errorf("%s: violations remain: %v", p.Name, viol)
		}
		runConverted(t, res, 32)
	}
}

func TestCleanProgramsPassThrough(t *testing.T) {
	for _, p := range []*ir.Program{ir.SampleMatched(), ir.SampleHydro(), ir.SampleCyclic()} {
		res := mustConvert(t, p, 32)
		if len(res.Rewrites) != 0 {
			t.Errorf("%s: clean program was rewritten: %v", p.Name, res.Rewrites)
		}
		if res.ExtraElems != 0 {
			t.Errorf("%s: clean program charged %d extra elements", p.Name, res.ExtraElems)
		}
	}
}

func TestInPlaceSemantics(t *testing.T) {
	// A(i) = A(i) + B(i) over input A must become A__2(i) with the old
	// values read: A__2(i) == A(i) + B(i).
	const n = 24
	res := mustConvert(t, ir.SampleInPlace(), n)
	out := runConverted(t, res, n)
	newName := res.Rewrites[0].NewArray
	vals, ok := out.Values[newName]
	if !ok {
		t.Fatalf("output %q missing; outputs: %v", newName, res.Program.WrittenArrays())
	}
	aIn, bIn := ir.InputSeed(0), ir.InputSeed(1)
	for i := 1; i <= n; i++ {
		want := aIn(i) + bIn(i)
		if math.Abs(vals[i]-want) > 1e-12 {
			t.Fatalf("%s[%d] = %v, want %v", newName, i, vals[i], want)
		}
	}
}

func TestCarriedScalarSemantics(t *testing.T) {
	// S(0) = S(0) + X(i) expands to S__exp(i) = S__exp(i-1) + X(i) with
	// S__exp(0) as boundary data; the final element is the running sum.
	const n = 24
	res := mustConvert(t, ir.SampleCarriedScalar(), n)
	if res.Rewrites[0].Kind != ScalarExpansion {
		t.Fatalf("expected scalar expansion, got %v", res.Rewrites[0])
	}
	out := runConverted(t, res, n)
	newName := res.Rewrites[0].NewArray
	vals := out.Values[newName]
	// The expansion array is the third declaration (ordinal 2).
	s0 := ir.InputSeed(2)(0)
	x := ir.InputSeed(1)
	want := s0
	for i := 1; i <= n; i++ {
		want += x(i)
		if math.Abs(vals[i]-want) > 1e-9 {
			t.Fatalf("%s[%d] = %v, want %v", newName, i, vals[i], want)
		}
	}
}

func TestGaussSeidelSemanticsPreserved(t *testing.T) {
	// The in-place sweep A(i) = .25A(i-1) + .25A(i+1) + .5A(i) reads the
	// *updated* left neighbour. The converter must preserve that via the
	// new version plus a boundary copy — not degrade to Jacobi.
	const n = 20
	res := mustConvert(t, ir.SampleGaussSeidel(), n)
	out := runConverted(t, res, n)
	var newName string
	for _, rw := range res.Rewrites {
		if rw.Kind == VersionRename {
			newName = rw.NewArray
		}
	}
	if newName == "" {
		t.Fatalf("no version rename recorded: %v", res.Rewrites)
	}
	vals := out.Values[newName]
	// Reference Gauss-Seidel sweep on the same inputs.
	a := make([]float64, n+2)
	seed := ir.InputSeed(0)
	for i := range a {
		a[i] = seed(i)
	}
	for i := 1; i <= n; i++ {
		a[i] = 0.25*a[i-1] + 0.25*a[i+1] + 0.5*a[i]
	}
	for i := 1; i <= n; i++ {
		if math.Abs(vals[i]-a[i]) > 1e-12 {
			t.Fatalf("%s[%d] = %v, want Gauss-Seidel %v", newName, i, vals[i], a[i])
		}
	}
	// The boundary compensation should be visible in the notes.
	joined := strings.Join(res.Notes, "; ")
	if !strings.Contains(joined, "boundary") {
		t.Errorf("notes lack boundary compensation: %v", res.Notes)
	}
}

func TestTwoPhaseSemantics(t *testing.T) {
	const n = 16
	res := mustConvert(t, ir.SampleTwoPhase(), n)
	out := runConverted(t, res, n)
	newName := res.Rewrites[0].NewArray
	u, v := ir.InputSeed(1), ir.InputSeed(2)
	tvals := out.Values["T"]
	t2vals := out.Values[newName]
	for i := 1; i <= n; i++ {
		if math.Abs(tvals[i]-(u(i)+v(i))) > 1e-12 {
			t.Fatalf("T[%d] wrong", i)
		}
		if math.Abs(t2vals[i]-(tvals[i]+u(i))) > 1e-12 {
			t.Fatalf("%s[%d] = %v, want %v", newName, i, t2vals[i], tvals[i]+u(i))
		}
	}
}

func TestConvertedProgramsRunOnSimulator(t *testing.T) {
	// The converted programs are ordinary kernels: they partition and
	// simulate like any Livermore loop.
	res := mustConvert(t, ir.SampleGaussSeidel(), 128)
	k, err := res.Program.Kernel(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loops.RunSeq(k, 128); err != nil {
		t.Fatal(err)
	}
}

func TestToSAValidatesInput(t *testing.T) {
	bad := ir.SampleMatched()
	bad.Name = ""
	if _, err := ToSA(bad, 16); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestRewriteKindString(t *testing.T) {
	if ScalarExpansion.String() != "scalar-expansion" || VersionRename.String() != "version-rename" {
		t.Error("kind names wrong")
	}
	if RewriteKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestNestedLoopInPlaceFallsBackToJacobi(t *testing.T) {
	// A 2-D in-place sweep nested under an outer loop cannot get
	// top-level boundary compensation; the converter must fall back to
	// previous-version reads and say so.
	p := &ir.Program{
		Name: "nested",
		Arrays: []ir.ArrayDecl{
			{Name: "A", Dims: []ir.Extent{ir.Fixed(8), ir.NPlus(2)}, Input: true},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lo: ir.C(1), Hi: ir.C(6), Step: 1, Body: []ir.Stmt{
				&ir.Loop{Var: "k", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
					&ir.Assign{
						LHS: ir.R("A", ir.V("j"), ir.V("k")),
						RHS: ir.RHS{Terms: []ir.Term{
							{Coef: 0.5, Read: ir.R("A", ir.V("j"), ir.V("k"))},
							{Coef: 0.5, Read: ir.R("A", ir.V("j"), ir.V("k").PlusC(1))},
						}},
					},
				}},
			}},
		},
	}
	res := mustConvert(t, p, 16)
	runConverted(t, res, 16)
}

func TestUnconvertiblePatterns(t *testing.T) {
	// Loop-invariant write that is not a carried scalar (no in-place
	// read): there is nothing to expand — the tool must refuse rather
	// than emit a wrong program.
	notCarried := &ir.Program{
		Name: "notcarried",
		Arrays: []ir.ArrayDecl{
			{Name: "S", Dims: []ir.Extent{ir.Fixed(1)}},
			{Name: "X", Dims: []ir.Extent{ir.NPlus(1)}, Input: true},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
				&ir.Assign{
					LHS: ir.R("S", ir.C(0)),
					RHS: ir.RHS{Terms: []ir.Term{{Coef: 1, Read: ir.R("X", ir.V("i"))}}},
				},
			}},
		},
	}
	if _, err := ToSA(notCarried, 16); err == nil {
		t.Error("non-carried loop-invariant write accepted")
	}

	// Carried scalar under a non-unit-step loop: expansion would need
	// gaps; must refuse.
	stride := ir.SampleCarriedScalar()
	stride.Body[0].(*ir.Loop).Step = 2
	if _, err := ToSA(stride, 16); err == nil {
		t.Error("strided carried scalar accepted")
	}

	// Carried scalar with a variable lower bound: boundary cells cannot
	// be computed statically.
	varLo := ir.SampleCarriedScalar()
	varLo.Body[0].(*ir.Loop).Lo = ir.N()
	varLo.Body[0].(*ir.Loop).Hi = ir.N()
	// Make it multi-trip again so the checker still fires.
	varLo.Body[0].(*ir.Loop).Hi = ir.N().PlusC(0)
	varLo.Body[0].(*ir.Loop).Lo = ir.V("n").Times(1)
	if _, err := ToSA(varLo, 16); err == nil {
		t.Error("variable-lower-bound carried scalar accepted")
	}
}

func TestCarriedScalarWithVectorSubscriptRejected(t *testing.T) {
	// A loop-invariant in-place write whose subscript is non-constant
	// relative to an OUTER loop variable: the simple expansion does not
	// apply; refuse.
	p := &ir.Program{
		Name: "outercarried",
		Arrays: []ir.ArrayDecl{
			{Name: "S", Dims: []ir.Extent{ir.NPlus(1)}},
			{Name: "X", Dims: []ir.Extent{ir.NPlus(1)}, Input: true},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "j", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
				&ir.Loop{Var: "i", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
					&ir.Assign{
						LHS: ir.R("S", ir.V("j")),
						RHS: ir.RHS{Terms: []ir.Term{
							{Coef: 1, Read: ir.R("S", ir.V("j"))},
							{Coef: 1, Read: ir.R("X", ir.V("i"))},
						}},
					},
				}},
			}},
		},
	}
	if _, err := ToSA(p, 16); err == nil {
		t.Error("outer-indexed carried value accepted by the simple expansion")
	}
}

func TestConvertPreservesIndirection(t *testing.T) {
	// Version renaming must follow arrays referenced through indirect
	// subscripts too.
	p := &ir.Program{
		Name: "indirver",
		Arrays: []ir.ArrayDecl{
			{Name: "IX", Dims: []ir.Extent{ir.NPlus(1)}, Input: true},
			{Name: "G", Dims: []ir.Extent{ir.NPlus(2)}, Input: true},
			{Name: "OUT", Dims: []ir.Extent{ir.NPlus(1)}},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "k", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
				&ir.Assign{
					LHS: ir.R("OUT", ir.V("k")),
					RHS: ir.RHS{Terms: []ir.Term{
						{Coef: 1, Read: ir.R("G", ir.Ind("IX", ir.V("k")))},
					}},
				},
			}},
		},
	}
	res := mustConvert(t, p, 16)
	if len(res.Rewrites) != 0 {
		t.Errorf("clean indirect program rewritten: %v", res.Rewrites)
	}
	runConverted(t, res, 16)
}
