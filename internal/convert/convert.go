// Package convert implements the paper's §5 "automatic conversion
// tool": a source-to-source rewrite that turns conventional Fortran-
// style loop nests (which reuse arrays) into single-assignment form.
// As the paper notes, "these translators will tend to increase the
// amount of memory used for array storage"; the Result reports exactly
// how much.
//
// Three rewrites are performed:
//
//   - carried-scalar expansion: a loop-invariant in-place update
//     (S = S + X(i)) becomes a recurrence over a fresh array indexed by
//     the loop variable (S2(i) = S2(i-1) + X(i));
//   - version renaming: a statement that updates an array in place, or
//     writes an array some earlier statement already wrote, writes a
//     fresh version (A -> A__2); subsequent reads see the latest
//     version;
//   - in-place reads keep reading the previous version (so relaxation
//     sweeps become Jacobi steps — a documented semantic change that
//     single-assignment conversion of Gauss-Seidel inherently makes
//     unless a wavefront schedule is introduced).
package convert

import (
	"fmt"

	"repro/internal/ir"
)

// RewriteKind classifies one transformation.
type RewriteKind int

// Rewrite kinds.
const (
	ScalarExpansion RewriteKind = iota
	VersionRename
)

// String returns the kind name.
func (k RewriteKind) String() string {
	switch k {
	case ScalarExpansion:
		return "scalar-expansion"
	case VersionRename:
		return "version-rename"
	default:
		return fmt.Sprintf("RewriteKind(%d)", int(k))
	}
}

// Rewrite records one transformation.
type Rewrite struct {
	Kind     RewriteKind
	Array    string // original array
	NewArray string // introduced array
	Detail   string
}

// Result is the outcome of a conversion.
type Result struct {
	Program  *ir.Program
	Rewrites []Rewrite
	// ExtraElems is the additional storage (in elements, at problem
	// size n passed to ToSA) the conversion introduced — the paper's
	// "memory cost" of single assignment.
	ExtraElems int
	// Notes carries semantic caveats (e.g. Jacobi-ization).
	Notes []string
}

// ToSA converts the program to single-assignment form. n is used only
// to report the storage cost of introduced arrays. The returned
// program passes ir.CheckSA with no Violation diagnostics for the
// rewrite patterns this tool covers; remaining diagnostics are
// reported as an error.
func ToSA(p *ir.Program, n int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	q := cloneProgram(p)
	q.Name = p.Name + "_sa"
	res := &Result{Program: q}

	if err := expandCarriedScalars(q, n, res); err != nil {
		return nil, err
	}
	if err := renameVersions(q, n, res); err != nil {
		return nil, err
	}

	// The converted program must be statically clean.
	if viol := ir.Violations(q.CheckSA()); len(viol) != 0 {
		return nil, fmt.Errorf("convert: %s: %d violations remain after conversion; first: %s",
			p.Name, len(viol), viol[0])
	}
	return res, nil
}

// expandCarriedScalars rewrites loop-invariant in-place updates into
// recurrences over the innermost loop variable.
func expandCarriedScalars(q *ir.Program, n int, res *Result) error {
	for _, info := range q.Assigns() {
		a := info.Assign
		if len(info.Loops) == 0 {
			continue
		}
		inner := info.Loops[len(info.Loops)-1]
		// Loop-invariant write in the innermost loop?
		usesVar := false
		for _, e := range a.LHS.Index {
			for _, v := range e.FreeVars() {
				if v == inner.Var {
					usesVar = true
				}
			}
		}
		if usesVar {
			continue
		}
		// Must also be an in-place update (a carried value), rank 1,
		// constant subscript, ascending unit-step loop with constant
		// lower bound: the classic expandable pattern.
		inPlace := false
		for _, r := range a.RHS.Reads() {
			if r.Array == a.LHS.Array {
				inPlace = true
			}
		}
		if !inPlace {
			return fmt.Errorf("convert: %s: loop-invariant write to %s is not a carried scalar; cannot convert",
				q.Name, a.LHS.Array)
		}
		if len(a.LHS.Index) != 1 || !a.LHS.Index[0].IsAffine() || len(a.LHS.Index[0].FreeVars()) != 0 {
			return fmt.Errorf("convert: %s: carried value %s has a non-constant subscript; cannot expand",
				q.Name, a.LHS.Array)
		}
		if inner.Step != 1 || !inner.Lo.IsAffine() || len(inner.Lo.FreeVars()) != 0 {
			return fmt.Errorf("convert: %s: carried value %s needs a unit-step loop with constant lower bound",
				q.Name, a.LHS.Array)
		}
		lo := inner.Lo.Const
		old := a.LHS.Array
		newName := freshName(q, old+"__exp")
		// New 1-D array over the loop variable, with boundary cells
		// [0, lo) holding the pre-loop value of the carried scalar.
		q.Arrays = append(q.Arrays, ir.ArrayDecl{
			Name:         newName,
			Dims:         []ir.Extent{ir.NPlus(2)},
			InitLowCount: lo,
		})
		res.ExtraElems += n + 2
		res.Rewrites = append(res.Rewrites, Rewrite{
			Kind: ScalarExpansion, Array: old, NewArray: newName,
			Detail: fmt.Sprintf("carried value %s expanded over loop variable %s", old, inner.Var),
		})
		// Rewrite the statement: write NEW[v], in-place reads NEW[v-1].
		a.LHS = ir.R(newName, ir.V(inner.Var))
		for ti := range a.RHS.Terms {
			if a.RHS.Terms[ti].Read.Array == old {
				a.RHS.Terms[ti].Read = ir.R(newName, ir.V(inner.Var).PlusC(-1))
			}
		}
		// Later reads of the scalar (outside this loop) are rewritten
		// by the versioning pass via the rename map seeded here: treat
		// the expansion as having renamed old -> newName at the final
		// index. For simplicity we only support later reads at the same
		// constant subscript, which become NEW[hi]; detect and rewrite.
		hi := inner.Hi
		rewriteLaterScalarReads(q, a, old, newName, hi)
	}
	return nil
}

// rewriteLaterScalarReads replaces reads of the old carried scalar in
// statements after the expanded one with the final element of the
// expansion.
func rewriteLaterScalarReads(q *ir.Program, after *ir.Assign, old, newName string, hi ir.Expr) {
	seen := false
	for _, info := range q.Assigns() {
		if info.Assign == after {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		for ti := range info.Assign.RHS.Terms {
			if info.Assign.RHS.Terms[ti].Read.Array == old {
				info.Assign.RHS.Terms[ti].Read = ir.Ref{Array: newName, Index: []ir.Expr{hi}}
			}
		}
	}
}

// renameVersions walks assignments in textual order and gives every
// in-place update or repeated writer a fresh array version. Reads of
// the renamed array inside the renaming statement are resolved by
// sweep-order analysis:
//
//   - same index: the in-place read — always the previous version;
//   - a cell the sweep has already produced (read iteration earlier
//     than the write's): the new version, preserving Gauss-Seidel
//     semantics, with boundary cells compensated by copies inserted
//     before the loop when the loop sits at the top level;
//   - a cell the sweep has not reached: the previous version.
//
// When faithful past-reads cannot be compensated (nested or
// variable-bound loops) they fall back to the previous version, which
// turns relaxation sweeps into Jacobi steps — reported in Notes.
func renameVersions(q *ir.Program, n int, res *Result) error {
	cur := map[string]string{}   // original name -> latest version name
	written := map[string]bool{} // version name -> has a writer
	jacobiNoted := false
	type insertion struct {
		before ir.Stmt
		stmts  []ir.Stmt
	}
	var insertions []insertion

	for _, info := range q.Assigns() {
		a := info.Assign

		// Resolve reads to the latest versions first; reads of the
		// renamed target are refined below.
		for ti := range a.RHS.Terms {
			rewriteRefVersion(&a.RHS.Terms[ti].Read, cur)
		}

		orig := a.LHS.Array
		target := orig
		if v, ok := cur[orig]; ok {
			target = v
		}
		d, _ := declOf(q, target)
		needsVersion := false
		if d != nil && d.Input {
			needsVersion = true
		}
		if written[target] {
			needsVersion = true
		}
		if !needsVersion {
			a.LHS.Array = target
			written[target] = true
			continue
		}

		newName := freshName(q, orig+"__2")
		base, _ := declOf(q, orig)
		q.Arrays = append(q.Arrays, ir.ArrayDecl{Name: newName, Dims: append([]ir.Extent(nil), base.Dims...)})
		res.ExtraElems += declElems(base, n)
		res.Rewrites = append(res.Rewrites, Rewrite{
			Kind: VersionRename, Array: orig, NewArray: newName,
			Detail: fmt.Sprintf("writes of %s redirected to fresh version %s", target, newName),
		})

		wCoeffs, wConst, wAffine := q.LinearizeRef(ir.Ref{Array: target, Index: a.LHS.Index}, n)
		minPast := 0 // most negative past-read delta kept faithful
		for ti := range a.RHS.Terms {
			r := &a.RHS.Terms[ti].Read
			if r.Array != target {
				continue
			}
			if sameIndexVec(r.Index, a.LHS.Index) {
				continue // in-place read: previous version
			}
			delta, isPast, ok := sweepDelta(q, info, wCoeffs, wConst, wAffine, *r, n)
			if ok && isPast && compensatable(q, info) {
				r.Array = newName
				if delta < minPast {
					minPast = delta
				}
				continue
			}
			if ok && !isPast {
				continue // future read: previous version is correct
			}
			if !jacobiNoted {
				res.Notes = append(res.Notes,
					"some in-place sweep reads fall back to the previous version: relaxation becomes a Jacobi step")
				jacobiNoted = true
			}
		}
		if minPast < 0 {
			// Compensate the boundary: copy the cells before the sweep's
			// first write from the old version.
			outer := info.Loops[0]
			inner := info.Loops[len(info.Loops)-1]
			lo := inner.Lo.Const
			var copies []ir.Stmt
			for d := minPast; d < 0; d++ {
				at := lo + d
				if at < 0 {
					continue
				}
				idx := make([]ir.Expr, len(a.LHS.Index))
				for i := range idx {
					idx[i] = ir.C(at)
				}
				copies = append(copies, &ir.Assign{
					LHS: ir.Ref{Array: newName, Index: idx},
					RHS: ir.RHS{Terms: []ir.Term{{Coef: 1, Read: ir.Ref{Array: target, Index: idx}}}},
				})
			}
			if len(copies) > 0 {
				insertions = append(insertions, insertion{before: outer, stmts: copies})
				res.Notes = append(res.Notes, fmt.Sprintf(
					"recurrence on %s preserved: %d boundary cell(s) copied from %s", newName, len(copies), target))
			}
		}
		a.LHS.Array = newName
		cur[orig] = newName
		written[newName] = true
	}

	// Apply boundary-copy insertions at the top level.
	if len(insertions) > 0 {
		var body []ir.Stmt
		for _, s := range q.Body {
			for _, ins := range insertions {
				if ins.before == s {
					body = append(body, ins.stmts...)
				}
			}
			body = append(body, s)
		}
		q.Body = body
	}
	return nil
}

// sweepDelta decides whether a recurrence read of the write's array
// refers to an iteration the sweep has already produced. It requires
// the read and write subscripts to share variable coefficients; delta
// is then the constant linear distance, and the sign of
// delta*coeff*step tells past from future.
func sweepDelta(q *ir.Program, info ir.AssignInfo, wCoeffs map[string]int, wConst int, wAffine bool, r ir.Ref, n int) (delta int, isPast, ok bool) {
	if !wAffine {
		return 0, false, false
	}
	rCoeffs, rConst, affine := q.LinearizeRef(r, n)
	if !affine {
		return 0, false, false
	}
	for v, c := range wCoeffs {
		if c != 0 && rCoeffs[v] != c {
			return 0, false, false
		}
	}
	for v, c := range rCoeffs {
		if c != 0 && wCoeffs[v] != c {
			return 0, false, false
		}
	}
	delta = rConst - wConst
	// Direction: use the innermost enclosing loop whose variable drives
	// the subscript.
	for i := len(info.Loops) - 1; i >= 0; i-- {
		l := info.Loops[i]
		c := wCoeffs[l.Var]
		if c == 0 {
			continue
		}
		return delta, delta*c*l.Step < 0, true
	}
	return delta, false, false
}

// compensatable reports whether boundary copies can be inserted before
// the statement's loop nest: the nest must sit at the program's top
// level and have a constant inner lower bound.
func compensatable(q *ir.Program, info ir.AssignInfo) bool {
	if len(info.Loops) == 0 {
		return false
	}
	inner := info.Loops[len(info.Loops)-1]
	if !inner.Lo.IsAffine() || len(inner.Lo.FreeVars()) != 0 {
		return false
	}
	outer := info.Loops[0]
	for _, s := range q.Body {
		if s == outer {
			return true
		}
	}
	return false
}

func rewriteRefVersion(r *ir.Ref, cur map[string]string) {
	if v, ok := cur[r.Array]; ok {
		r.Array = v
	}
	for i := range r.Index {
		if ind := r.Index[i].Indirect; ind != nil {
			if v, ok := cur[ind.Array]; ok {
				ind.Array = v
			}
		}
	}
}

func declOf(q *ir.Program, name string) (*ir.ArrayDecl, bool) {
	for i := range q.Arrays {
		if q.Arrays[i].Name == name {
			return &q.Arrays[i], true
		}
	}
	return nil, false
}

func declElems(d *ir.ArrayDecl, n int) int {
	total := 1
	for _, ext := range d.Dims {
		total *= ext.Size(n)
	}
	return total
}

func freshName(q *ir.Program, base string) string {
	name := base
	for i := 2; ; i++ {
		if _, taken := declOf(q, name); !taken {
			return name
		}
		name = fmt.Sprintf("%s_%d", base, i)
	}
}

func sameIndexVec(a, b []ir.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// --- deep cloning ---

func cloneProgram(p *ir.Program) *ir.Program {
	q := &ir.Program{Name: p.Name}
	q.Arrays = make([]ir.ArrayDecl, len(p.Arrays))
	for i, d := range p.Arrays {
		q.Arrays[i] = ir.ArrayDecl{
			Name: d.Name, Input: d.Input, InitLowCount: d.InitLowCount,
			Dims: append([]ir.Extent(nil), d.Dims...),
		}
	}
	q.Body = cloneStmts(p.Body)
	return q
}

func cloneStmts(stmts []ir.Stmt) []ir.Stmt {
	out := make([]ir.Stmt, len(stmts))
	for i, s := range stmts {
		switch st := s.(type) {
		case *ir.Loop:
			out[i] = &ir.Loop{
				Var: st.Var, Lo: cloneExpr(st.Lo), Hi: cloneExpr(st.Hi),
				Step: st.Step, Body: cloneStmts(st.Body),
			}
		case *ir.Assign:
			a := &ir.Assign{LHS: cloneRef(st.LHS)}
			a.RHS.Bias = st.RHS.Bias
			a.RHS.Terms = make([]ir.Term, len(st.RHS.Terms))
			for ti, t := range st.RHS.Terms {
				a.RHS.Terms[ti] = ir.Term{Coef: t.Coef, Read: cloneRef(t.Read)}
			}
			out[i] = a
		}
	}
	return out
}

func cloneRef(r ir.Ref) ir.Ref {
	idx := make([]ir.Expr, len(r.Index))
	for i, e := range r.Index {
		idx[i] = cloneExpr(e)
	}
	return ir.Ref{Array: r.Array, Index: idx}
}

func cloneExpr(e ir.Expr) ir.Expr {
	out := ir.Expr{Const: e.Const}
	if e.Coeffs != nil {
		out.Coeffs = make(map[string]int, len(e.Coeffs))
		for v, c := range e.Coeffs {
			out.Coeffs[v] = c
		}
	}
	if e.Indirect != nil {
		ind := &ir.Indirect{Array: e.Indirect.Array, Index: cloneExpr(e.Indirect.Index)}
		out.Indirect = ind
	}
	return out
}
