package classify

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/loops"
)

func TestStaticSamples(t *testing.T) {
	cases := []struct {
		p    *ir.Program
		want loops.Class
	}{
		{ir.SampleMatched(), loops.MD},
		{ir.SampleHydro(), loops.SD},
		{ir.SampleCyclic(), loops.CD},
		{ir.SampleIndirect(), loops.RD},
	}
	for _, c := range cases {
		got, per, err := Static(c.p, 64)
		if err != nil {
			t.Fatalf("%s: %v", c.p.Name, err)
		}
		if got != c.want {
			t.Errorf("%s: static class = %v, want %v (per-stmt: %v)", c.p.Name, got, c.want, per)
		}
		if len(per) == 0 {
			t.Errorf("%s: no per-statement classes", c.p.Name)
		}
	}
}

func TestStaticMultiDimRowWalkIsCyclic(t *testing.T) {
	// B(k, i) read under an i-loop writing W(i): the read strides a full
	// row per k step — the paper's GLR pattern, cyclic-or-worse.
	p := &ir.Program{
		Name: "rowwalk",
		Arrays: []ir.ArrayDecl{
			{Name: "W", Dims: []ir.Extent{ir.NPlus(1)}},
			{Name: "B", Dims: []ir.Extent{ir.NPlus(1), ir.NPlus(1)}, Input: true},
		},
		Body: []ir.Stmt{
			&ir.Loop{Var: "i", Lo: ir.C(1), Hi: ir.N(), Step: 1, Body: []ir.Stmt{
				&ir.Assign{
					LHS: ir.R("W", ir.V("i")),
					RHS: ir.RHS{Terms: []ir.Term{
						{Coef: 1, Read: ir.R("B", ir.V("i"), ir.C(1))},
					}},
				},
			}},
		},
	}
	got, _, err := Static(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != loops.CD {
		t.Errorf("row-walk class = %v, want CD", got)
	}
}

func TestStaticValidation(t *testing.T) {
	bad := ir.SampleMatched()
	bad.Name = ""
	if _, _, err := Static(bad, 16); err == nil {
		t.Error("invalid program accepted")
	}
	empty := &ir.Program{Name: "e", Arrays: []ir.ArrayDecl{{Name: "A", Dims: []ir.Extent{ir.Fixed(2)}, Input: true}}}
	if _, _, err := Static(empty, 16); err == nil {
		t.Error("empty program accepted")
	}
}

func TestDecideRules(t *testing.T) {
	cases := []struct {
		ev   Evidence
		want loops.Class
	}{
		{Evidence{NoCache16: 0}, loops.MD},
		{Evidence{NoCache16: 22, Cached8: 1, Cached16: 1, Cached64: 1}, loops.SD},
		{Evidence{NoCache16: 90, Cached8: 3, Cached16: 3, Cached64: 3.5}, loops.CD},
		{Evidence{NoCache16: 9, Cached8: 5, Cached16: 5, Cached64: 1}, loops.CD},
		{Evidence{NoCache16: 90, Cached8: 45, Cached16: 48, Cached64: 50}, loops.RD},
	}
	for i, c := range cases {
		if got := Decide(c.ev); got != c.want {
			t.Errorf("case %d (%+v): %v, want %v", i, c.ev, got, c.want)
		}
	}
}

// TestDynamicRecoversPaperTaxonomy is the reproduction of the paper's
// §7.1 classification: the dynamic classifier, run on the same counting
// simulation the paper used, must assign every paper-classified loop
// its published class.
func TestDynamicRecoversPaperTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("classification sweep")
	}
	reports, err := Kernels(loops.PaperSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Paper == loops.ClassUnknown {
			continue
		}
		if r.Measured != r.Paper {
			t.Errorf("%s (%s): measured %v, paper says %v (evidence %+v)",
				r.Key, r.Name, r.Measured, r.Paper, r.Evidence)
		}
	}
}

func TestDynamicSingleKernel(t *testing.T) {
	k, err := loops.ByKey("k14frag")
	if err != nil {
		t.Fatal(err)
	}
	cls, ev, err := Dynamic(k, 500)
	if err != nil {
		t.Fatal(err)
	}
	if cls != loops.MD {
		t.Errorf("k14frag class = %v (evidence %+v)", cls, ev)
	}
}

func TestKernelsPropagatesErrors(t *testing.T) {
	bad := &loops.Kernel{
		Key: "boom", Name: "boom", DefaultN: 8, MinN: 1,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{{Name: "X", Dims: []int{n}}}
		},
		Run: func(c *loops.Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return 1 }, 0)
			x.Set(func() float64 { return 2 }, 0) // double write
		},
		Outputs: []string{"X"},
	}
	if _, err := Kernels([]*loops.Kernel{bad}, 8); err == nil {
		t.Error("kernel error not propagated")
	}
}
