// Package classify reproduces the paper's §7.1 access-distribution
// taxonomy — Matched (MD), Skewed (SD), Cyclic (CD), Random (RD) — in
// two independent ways:
//
//   - statically, from affine subscript analysis of an IR program: a
//     read whose linearized subscript equals the write's is matched;
//     equal variable coefficients with a constant offset is skewed;
//     differing coefficients (the read index moving at a different
//     rate, or striding another dimension) is cyclic; indirection is
//     random;
//   - dynamically, from counting-simulation evidence at several PE
//     counts, using the paper's own observed signatures: MD has zero
//     remote reads; RD stays highly remote despite the cache; CD is
//     highly remote without a cache or shows the total-cache-grows
//     decline; everything else with boundary-limited remote reads is
//     SD.
package classify

import (
	"context"
	"fmt"

	"repro/internal/ir"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// StmtClass is the classification of one assignment.
type StmtClass struct {
	Stmt  string
	Class loops.Class
}

// Static classifies an IR program by subscript analysis at problem
// size n. The program class is the worst statement class
// (MD < SD < CD < RD).
func Static(p *ir.Program, n int) (loops.Class, []StmtClass, error) {
	if err := p.Validate(); err != nil {
		return loops.ClassUnknown, nil, err
	}
	worst := loops.MD
	var per []StmtClass
	for _, info := range p.Assigns() {
		cls := classifyAssign(p, info.Assign, n)
		per = append(per, StmtClass{Stmt: renderAssign(info.Assign), Class: cls})
		if cls > worst {
			worst = cls
		}
	}
	if len(per) == 0 {
		return loops.ClassUnknown, nil, fmt.Errorf("classify: program %s has no assignments", p.Name)
	}
	return worst, per, nil
}

func renderAssign(a *ir.Assign) string {
	return a.LHS.String()
}

func classifyAssign(p *ir.Program, a *ir.Assign, n int) loops.Class {
	wCoeffs, wConst, wAffine := p.LinearizeRef(a.LHS, n)
	if !wAffine {
		return loops.RD
	}
	cls := loops.MD
	for _, r := range a.RHS.Reads() {
		rc := classifyRead(p, wCoeffs, wConst, r, n)
		if rc > cls {
			cls = rc
		}
	}
	return cls
}

func classifyRead(p *ir.Program, wCoeffs map[string]int, wConst int, r ir.Ref, n int) loops.Class {
	rCoeffs, rConst, affine := p.LinearizeRef(r, n)
	if !affine {
		return loops.RD // indirection: "effectively random page accesses"
	}
	if coeffsEqual(wCoeffs, rCoeffs) {
		if rConst == wConst {
			return loops.MD // identical subscripts throughout the loop
		}
		return loops.SD // constant skew
	}
	// The read index moves at a different rate than the write index
	// (ICCG's k vs i) or walks a different dimension (2-D arrays):
	// a fixed set of pages visited in a cyclic order.
	return loops.CD
}

func coeffsEqual(a, b map[string]int) bool {
	for v, c := range a {
		if c != 0 && b[v] != c {
			return false
		}
	}
	for v, c := range b {
		if c != 0 && a[v] != c {
			return false
		}
	}
	return true
}

// Evidence is the dynamic classifier's measurement set.
type Evidence struct {
	NoCache16 float64 // % remote, 16 PEs, no cache
	Cached8   float64 // % remote, 8 PEs, 256-element cache
	Cached16  float64
	Cached64  float64
}

// Thresholds for the dynamic decision rules; exported for tests and
// sensitivity studies. Values follow the paper's observed bands: MD is
// exactly zero; RD "can be rather high" (>15% cached); CD "jumps from
// page to page and most are remote" without a cache (>40%); SD is
// boundary-limited.
const (
	mdMaxNoCache  = 0.5
	rdMinCached   = 15.0
	cdMinNoCache  = 40.0
	cdDeclineFrac = 0.6 // cached64 < 0.6*cached8 counts as the CD decline
)

// Dynamic classifies a kernel by running the counting simulator at
// page size 32 with the paper's cache and applying the decision rules.
func Dynamic(k *loops.Kernel, n int) (loops.Class, Evidence, error) {
	var ev Evidence
	run := func(npe int, cached bool) (float64, error) {
		cfg := sim.PaperConfig(npe, 32)
		if !cached {
			cfg.CacheElems = 0
		}
		res, err := sim.Run(k, n, cfg)
		if err != nil {
			return 0, err
		}
		return res.RemotePercent(), nil
	}
	var err error
	if ev.NoCache16, err = run(16, false); err != nil {
		return loops.ClassUnknown, ev, err
	}
	if ev.Cached8, err = run(8, true); err != nil {
		return loops.ClassUnknown, ev, err
	}
	if ev.Cached16, err = run(16, true); err != nil {
		return loops.ClassUnknown, ev, err
	}
	if ev.Cached64, err = run(64, true); err != nil {
		return loops.ClassUnknown, ev, err
	}
	return Decide(ev), ev, nil
}

// Decide applies the classification rules to measured evidence.
func Decide(ev Evidence) loops.Class {
	switch {
	case ev.NoCache16 <= mdMaxNoCache:
		return loops.MD
	case ev.Cached16 >= rdMinCached:
		return loops.RD
	case ev.NoCache16 >= cdMinNoCache:
		return loops.CD
	case ev.Cached64 < cdDeclineFrac*ev.Cached8:
		return loops.CD
	default:
		return loops.SD
	}
}

// Recommend implements the paper's §9 proposal of "programmer- or
// compiler-selectable partitioning schemes ... based on some analysis
// of the access behavior": boundary-limited classes (MD/SD) and
// neighbour-stencil cyclic loops keep their locality under the
// division (block) scheme, which places adjacent pages on the same PE;
// random distributions gain nothing from contiguity and keep the
// modulo default, which spreads hot regions.
func Recommend(class loops.Class) partition.Kind {
	switch class {
	case loops.MD, loops.SD, loops.CD:
		return partition.KindBlock
	default:
		return partition.KindModulo
	}
}

// Report is one row of the classification table (the paper's §7.1
// taxonomy over its studied loops).
type Report struct {
	Key      string
	Name     string
	Paper    loops.Class // class the paper assigns (ClassUnknown if unstated)
	Measured loops.Class
	Evidence Evidence
}

// Kernels classifies a set of kernels dynamically. The kernels are
// classified concurrently over the sweep engine's bounded worker pool;
// reports come back in input order.
func Kernels(ks []*loops.Kernel, n int) ([]Report, error) {
	return sweep.Map(context.Background(), 0, ks,
		func(_ context.Context, _ int, k *loops.Kernel) (Report, error) {
			size := n
			if size <= 0 {
				size = k.DefaultN
			}
			cls, ev, err := Dynamic(k, size)
			if err != nil {
				return Report{}, fmt.Errorf("classify: %s: %w", k.Key, err)
			}
			return Report{
				Key: k.Key, Name: k.Name, Paper: k.Class, Measured: cls, Evidence: ev,
			}, nil
		})
}
