package core

// Extension experiments: the paper's §9 future-work items, implemented
// and measured. These go beyond the published figures — each Outcome
// says explicitly what the paper only sketches.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ExtSpeedup estimates execution time and speedup per access class
// under the abstract cost model (§9: "a more sophisticated simulation
// will better explore the problems of execution time").
func ExtSpeedup() (*Outcome, error) {
	cm := sim.DefaultCostModel()
	fig := &stats.Figure{
		Title:  "Extension: estimated speedup vs PEs (cost model, ps 32, 256-elem cache)",
		XLabel: "PEs", YLabel: "speedup",
	}
	subjects := []struct {
		key string
		cls loops.Class
	}{
		{"k14frag", loops.MD}, {"k1", loops.SD}, {"k2", loops.CD}, {"k6", loops.RD},
	}
	var pts []sweep.Point
	for _, sub := range subjects {
		k, err := loops.ByKey(sub.key)
		if err != nil {
			return nil, err
		}
		for _, npe := range PESweep {
			pts = append(pts, pePoint(k, 0, npe, 32, 256))
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	speedupAt := map[string]map[int]float64{}
	for si, sub := range subjects {
		s := stats.Series{Label: fmt.Sprintf("%s (%s)", sub.key, sub.cls)}
		speedupAt[sub.key] = map[int]float64{}
		for pi, npe := range PESweep {
			res := results[si*len(PESweep)+pi]
			topo := network.NewMesh2D(npe)
			tm := res.Estimate(cm, topo)
			s.X = append(s.X, float64(npe))
			s.Y = append(s.Y, tm.Speedup)
			speedupAt[sub.key][npe] = tm.Speedup
		}
		fig.Series = append(fig.Series, s)
	}
	o := &Outcome{
		ID:     "ext-speedup",
		Title:  fig.Title,
		Paper:  "§9 future work: execution-time modeling; §1: MIMD has 'the greatest potential for large-scale parallelism'",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "Pricing accesses (local 1 cycle, cache hit 2, remote round-trip 40 " +
			"plus per-hop wire time on a 2-D mesh) shows the paper's \"large numbers " +
			"of processors may be utilized\" holds exactly for the classes its cache " +
			"rescues — MD and SD scale well, CD scales once cached — and fails for " +
			"RD, which slows down outright, compounded by k6's triangular work " +
			"distribution (the §7.2 caveat that skewed remote-read counts skew the " +
			"load balance).",
	}
	o.Checks = []Check{
		check("MD scales near-linearly", speedupAt["k14frag"][16] > 12,
			"k14frag speedup at 16 PEs = %.2f", speedupAt["k14frag"][16]),
		check("SD scales well (cache absorbs the skew)", speedupAt["k1"][16] > 8,
			"k1 speedup at 16 PEs = %.2f", speedupAt["k1"][16]),
		check("CD scales once cached", speedupAt["k2"][16] > 4,
			"k2 speedup at 16 PEs = %.2f", speedupAt["k2"][16]),
		// Under realistic remote costs the RD loop does not merely scale
		// poorly — it slows down, compounded by its triangular work
		// distribution (the §7.2 caveat: "in cases where the amount of
		// remote reads depends upon which element is being written, the
		// load balance can be skewed").
		check("RD slows down outright (remote cost + triangular imbalance)",
			speedupAt["k6"][16] < 1,
			"k6 speedup at 16 PEs = %.2f", speedupAt["k6"][16]),
	}
	return o, nil
}

// ExtContention routes each run's implied message matrix over real
// topologies and reports hottest-link utilization — quantifying the
// abstract's claim that "the degradation in network performance due to
// multiprocessing is minimal".
func ExtContention() (*Outcome, error) {
	cm := sim.DefaultCostModel()
	keys := []string{"k1", "k2", "k6"}
	ks := make([]*loops.Kernel, len(keys))
	var pts []sweep.Point
	for i, key := range keys {
		k, err := loops.ByKey(key)
		if err != nil {
			return nil, err
		}
		ks[i] = k
		pts = append(pts, pePoint(k, 0, 16, 32, 256))
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %-6s %-10s %12s %12s %12s\n",
		"kernel", "class", "topology", "msgs", "max-link", "utilization")
	var checks []Check
	record := map[string]float64{}
	for i, key := range keys {
		res := results[i]
		hc, err := network.NewHypercube(16)
		if err != nil {
			return nil, err
		}
		for _, topo := range []network.Topology{network.Bus{N: 16}, network.Ring{N: 16}, network.NewMesh2D(16), hc} {
			rep := res.Contention(cm, topo)
			fmt.Fprintf(&txt, "%-10s %-6s %-10s %12d %12d %12.4f\n",
				key, ks[i].Class, topo.Name(), rep.TotalMsgs, rep.MaxLinkLoad, rep.Utilization)
			record[key+"/"+topo.Name()] = rep.Utilization
		}
	}
	checks = append(checks,
		check("SD barely loads the network (abstract's claim)",
			record["k1/mesh4x4"] < 0.05, "k1 mesh utilization = %.4f", record["k1/mesh4x4"]),
		check("RD loads it markedly more",
			record["k6/mesh4x4"] > 2*record["k1/mesh4x4"],
			"k6 %.4f vs k1 %.4f", record["k6/mesh4x4"], record["k1/mesh4x4"]),
		check("bus is the contention worst case",
			record["k6/bus"] >= record["k6/mesh4x4"],
			"bus %.4f vs mesh %.4f", record["k6/bus"], record["k6/mesh4x4"]),
	)
	return &Outcome{
		ID:    "ext-contention",
		Title: "Extension: link contention per class and topology (16 PEs, ps 32)",
		Paper: "abstract: 'the degradation in network performance due to multiprocessing is minimal'; §9: network contention is future work",
		Text:  txt.String(),
		Notes: "Routing each run's implied message matrix over bus/ring/mesh/hypercube " +
			"shows minimal degradation is a property of the low-remote classes, not " +
			"of the architecture: the SD exemplar keeps the hottest mesh link lightly " +
			"loaded while the RD exemplar loads it several times more and saturates a " +
			"bus first.",
		Checks: checks,
	}, nil
}

// ExtAdvisor closes the §9 loop: classify each kernel dynamically,
// pick the partitioning scheme the class recommends, and verify the
// choice is never worse than the fixed default by more than noise.
func ExtAdvisor() (*Outcome, error) {
	kernels := loops.PaperSet()
	// Classify every kernel concurrently, then sweep both layouts for
	// each in one grid.
	classes, err := sweep.Map(context.Background(), 0, kernels,
		func(_ context.Context, _ int, k *loops.Kernel) (loops.Class, error) {
			cls, _, err := classify.Dynamic(k, 0)
			return cls, err
		})
	if err != nil {
		return nil, err
	}
	var pts []sweep.Point
	for _, k := range kernels {
		for _, kind := range []partition.Kind{partition.KindModulo, partition.KindBlock} {
			cfg := sim.PaperConfig(16, 32)
			cfg.Layout = kind
			pts = append(pts, sweep.Point{Kernel: k, Config: cfg})
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %-6s %-12s %10s %10s %10s\n",
		"kernel", "class", "recommended", "modulo %", "block %", "chosen %")
	var checks []Check
	for i, k := range kernels {
		cls := classes[i]
		rec := classify.Recommend(cls)
		mod := results[2*i].RemotePercent()
		blk := results[2*i+1].RemotePercent()
		chosen := mod
		if rec == partition.KindBlock {
			chosen = blk
		}
		fmt.Fprintf(&txt, "%-10s %-6s %-12s %10.2f %10.2f %10.2f\n",
			k.Key, cls, rec, mod, blk, chosen)
		best := mod
		if blk < best {
			best = blk
		}
		// Tolerance: absolute for the low-remote classes (where the
		// advisor's win is large), relative for RD, where the paper's
		// §9 concedes no scheme handles the class and the two layouts
		// differ only marginally (both poor).
		tol := 1.0
		if 0.1*best > tol {
			tol = 0.1 * best
		}
		checks = append(checks, check(
			fmt.Sprintf("%s: advisor within tolerance of best", k.Key),
			chosen <= best+tol,
			"chosen %.2f%%, best %.2f%%", chosen, best))
	}
	return &Outcome{
		ID:    "ext-advisor",
		Title: "Extension: class-driven partitioning advisor (§9 selectable schemes)",
		Paper: "§9: 'allow the selection of one or the other scheme based on the access distribution class'",
		Text:  txt.String(),
		Notes: "The dynamic classifier's recommendation (division for MD/SD/CD, " +
			"modulo for RD) is within tolerance of the best fixed scheme on all " +
			"paper kernels — halving k1's no-cache remote ratio — while for RD the " +
			"two layouts differ marginally (both poor), exactly the §9 concession.",
		Checks: checks,
	}, nil
}
