package core

// The paper-figure and table experiments. Every parameter grid is
// expanded into sweep.Points up front and executed on the parallel
// sweep engine; result slices come back in grid order, so the rendered
// tables are identical to the historical serial implementation.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// runPoints sweeps pts over the bounded worker pool and returns
// results in grid order.
func runPoints(pts []sweep.Point) ([]*sim.Result, error) {
	return sweep.Run(context.Background(), pts)
}

// pePoint builds one paper-baseline grid point.
func pePoint(k *loops.Kernel, n, npe, ps, ce int) sweep.Point {
	cfg := sim.PaperConfig(npe, ps)
	cfg.CacheElems = ce
	return sweep.Point{Kernel: k, N: n, Config: cfg}
}

// paperFigure builds the paper's standard four series (cache/no-cache
// x page size 32/64) for a kernel, sweeping all 4*len(PESweep) points
// concurrently.
func paperFigure(key string, n int, title string) (*stats.Figure, error) {
	k, err := loops.ByKey(key)
	if err != nil {
		return nil, err
	}
	type spec struct {
		label string
		ps    int
		ce    int
	}
	var specs []spec
	for _, ps := range []int{32, 64} {
		specs = append(specs,
			spec{fmt.Sprintf("Cache, ps %d", ps), ps, 256},
			spec{fmt.Sprintf("No Cache, ps %d", ps), ps, 0})
	}
	var pts []sweep.Point
	for _, sp := range specs {
		for _, npe := range PESweep {
			pts = append(pts, pePoint(k, n, npe, sp.ps, sp.ce))
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{Title: title, XLabel: "PEs", YLabel: "% of reads remote"}
	for si, sp := range specs {
		s := stats.Series{Label: sp.label}
		for pi, npe := range PESweep {
			s.X = append(s.X, float64(npe))
			s.Y = append(s.Y, results[si*len(PESweep)+pi].RemotePercent())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// at returns the Y value of the labeled series at x.
func at(fig *stats.Figure, label string, x float64) float64 {
	for _, s := range fig.Series {
		if s.Label != label {
			continue
		}
		for i, sx := range s.X {
			if sx == x {
				return s.Y[i]
			}
		}
	}
	return -1
}

func check(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// Figure1 reproduces the skewed-distribution figure: Hydro Fragment
// with skew 10/11. Paper: cached series < 10% ("1% to 10%", §8 even
// cites the 22% -> 1% reduction for this skew); no-cache ps32 ≈ 22%.
func Figure1() (*Outcome, error) {
	fig, err := paperFigure("k1", 1000, "Figure 1: Hydro Fragment (SD, skew 11)")
	if err != nil {
		return nil, err
	}
	nc32 := at(fig, "No Cache, ps 32", 8)
	c32 := at(fig, "Cache, ps 32", 8)
	nc64 := at(fig, "No Cache, ps 64", 8)
	c64 := at(fig, "Cache, ps 64", 8)
	o := &Outcome{
		ID: "fig1", Title: fig.Title,
		Paper:  "no-cache ps32 ~22%; cache cuts it to ~1%; ps 64 halves the no-cache ratio",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "The no-cache ps 32 plateau is arithmetically exact: with skew 11, " +
			"21 of every 96 reads cross a page boundary (21.875%), minus edge pages. " +
			"One PE is always fully local, and the series is flat for 2 or more PEs " +
			"because modulo layout makes every boundary page remote regardless of PE count.",
	}
	o.Checks = []Check{
		check("no-cache ps32 ~22%", nc32 > 20 && nc32 < 23, "measured %.2f%%", nc32),
		check("cache reduces to ~1%", c32 > 0 && c32 < 1.5, "measured %.2f%%", c32),
		check("ps 64 halves boundary fraction", nc64 > 9 && nc64 < 12.5, "measured %.2f%%", nc64),
		check("cached ps64 below cached ps32", c64 < c32, "%.2f%% vs %.2f%%", c64, c32),
		check("single PE fully local", at(fig, "No Cache, ps 32", 1) == 0, "measured %.2f%%", at(fig, "No Cache, ps 32", 1)),
	}
	return o, nil
}

// Figure2 reproduces the cyclic-distribution figure: ICCG. Paper:
// no-cache approaches 100%; the cache collapses it dramatically and
// larger pages help further.
func Figure2() (*Outcome, error) {
	fig, err := paperFigure("k2", 1024, "Figure 2: Incomplete Cholesky - Conjugate Gradient (CD)")
	if err != nil {
		return nil, err
	}
	o := &Outcome{
		ID: "fig2", Title: fig.Title,
		Paper:  "no-cache rises toward 100%; with cache the percentage is reduced significantly",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "Deviation note: the paper's cached ICCG curve starts high (~40% at 4 PEs) " +
			"and falls toward 0 at 32 PEs. Under a faithful per-PE LRU model the " +
			"sequential sweep inside each pass already exploits locality at *every* PE " +
			"count, so the curve starts near its floor; the paper's headline (\"caching " +
			"and page size can reduce the percentage of remote reads significantly\") is " +
			"reproduced and exceeded, but the published descending shape is not. The " +
			"same total-cache-grows mechanism the paper describes *is* visible on " +
			"Figure 3, where this reproduction does decline.",
	}
	nc16 := at(fig, "No Cache, ps 32", 16)
	c16 := at(fig, "Cache, ps 32", 16)
	c16ps64 := at(fig, "Cache, ps 64", 16)
	o.Checks = []Check{
		check("no-cache highly remote", nc16 > 80, "measured %.2f%% at 16 PEs", nc16),
		check("no-cache grows with PEs", at(fig, "No Cache, ps 32", 64) > at(fig, "No Cache, ps 32", 4), "%.2f%% -> %.2f%%",
			at(fig, "No Cache, ps 32", 4), at(fig, "No Cache, ps 32", 64)),
		check("cache collapses CD", c16 < 5, "measured %.2f%%", c16),
		check("larger pages cut it further", c16ps64 < c16, "%.2f%% vs %.2f%%", c16ps64, c16),
	}
	return o, nil
}

// Figure3 reproduces the cyclic+skewed combination: 2-D Explicit
// Hydrodynamics. Paper: low percentages (0-8% axis) decreasing with PE
// count when cached.
func Figure3() (*Outcome, error) {
	k, err := loops.ByKey("k18")
	if err != nil {
		return nil, err
	}
	fig, err := paperFigure("k18", k.DefaultN, "Figure 3: 2-D Explicit Hydrodynamics (CD+SD)")
	if err != nil {
		return nil, err
	}
	o := &Outcome{
		ID: "fig3", Title: fig.Title,
		Paper:  "remote percentage is low (0-8%) and decreases as PEs increase, aided further by caching",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "The decline happens exactly where the per-PE boundary working set drops " +
			"under the 256-element cache — the paper's \"each PE is more likely to " +
			"contain all of an access cycle in its cache\".",
	}
	c8 := at(fig, "Cache, ps 32", 8)
	c32 := at(fig, "Cache, ps 32", 32)
	nc8 := at(fig, "No Cache, ps 32", 8)
	nc32 := at(fig, "No Cache, ps 32", 32)
	o.Checks = []Check{
		check("stays in the paper's low band", nc8 < 10, "no-cache %.2f%%", nc8),
		check("cached declines with PEs", c32 < c8, "%.2f%% -> %.2f%%", c8, c32),
		check("no-cache flat", nc8-nc32 < 0.5 && nc32-nc8 < 0.5, "%.2f%% vs %.2f%%", nc8, nc32),
		check("cache always at or below no-cache", c8 <= nc8 && c32 <= nc32, "c8=%.2f nc8=%.2f", c8, nc8),
	}
	return o, nil
}

// Figure4 reproduces the random-distribution figure: General Linear
// Recurrence. Paper: large remote ratios (tens of percent) regardless
// of caching at the small fixed cache.
func Figure4() (*Outcome, error) {
	fig, err := paperFigure("k6", 300, "Figure 4: General Linear Recurrence Equations (RD)")
	if err != nil {
		return nil, err
	}
	o := &Outcome{
		ID: "fig4", Title: fig.Title,
		Paper:  "RD exhibits large remote ratios regardless of the presence or absence of caching (20-70% band)",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "The RD mechanism is the B(k,i) row-walk: linearizing the Fortran " +
			"subscripts row-major (the paper's §7 convention) makes the inner k-loop " +
			"jump a full row per read — a cycle far larger than the cache.",
	}
	c16 := at(fig, "Cache, ps 32", 16)
	nc16 := at(fig, "No Cache, ps 32", 16)
	c16ps64 := at(fig, "Cache, ps 64", 16)
	o.Checks = []Check{
		check("cached stays high", c16 > 20, "measured %.2f%%", c16),
		check("no-cache higher still", nc16 > c16, "%.2f%% vs %.2f%%", nc16, c16),
		check("page size does not rescue RD", c16ps64 > 20, "measured %.2f%%", c16ps64),
	}
	return o, nil
}

// Figure5 reproduces the load-balance figure: per-PE local and remote
// reads on the 2-D hydro loop at 64 PEs, page size 32. Paper: "each of
// the sixty-four PEs performs a comparable number of remote reads and
// local reads".
func Figure5() (*Outcome, error) {
	k, err := loops.ByKey("k18")
	if err != nil {
		return nil, err
	}
	// n chosen so each array's page count divides evenly over 64 PEs,
	// as the paper's near-flat bars imply.
	const n, npe = 1022, 64
	fig := &stats.Figure{
		Title:  "Figure 5: load balance, 2-D Explicit Hydrodynamics, 64 PEs, ps 32",
		XLabel: "PE", YLabel: "reads",
	}
	results, err := runPoints([]sweep.Point{
		pePoint(k, n, npe, 32, 256),
		pePoint(k, n, npe, 32, 0),
	})
	if err != nil {
		return nil, err
	}
	var checks []Check
	cachedPer := results[0].PerPE
	for ri, lbl := range []string{"with Cache", "with No Cache"} {
		res := results[ri]
		for _, cls := range []struct {
			a   stats.Access
			lbl string
		}{{stats.RemoteRead, "Remote " + lbl}, {stats.LocalRead, "Local " + lbl}} {
			vals := res.PerPE.Extract(cls.a)
			s := stats.Series{Label: cls.lbl}
			for pe, v := range vals {
				s.X = append(s.X, float64(pe))
				s.Y = append(s.Y, float64(v))
			}
			fig.Series = append(fig.Series, s)
			b := stats.BalanceOf(vals)
			checks = append(checks, check(
				fmt.Sprintf("%s balanced", cls.lbl),
				b.CV < 0.25,
				"CV=%.3f mean=%.0f min=%d max=%d", b.CV, b.Mean, b.Min, b.Max))
		}
	}
	wb := stats.BalanceOf(cachedPer.Extract(stats.Write))
	checks = append(checks, check("writes balanced (area of responsibility)",
		wb.CV < 0.1, "CV=%.3f", wb.CV))

	var txt strings.Builder
	txt.WriteString(fig.Title + "\n")
	fmt.Fprintf(&txt, "%-28s %10s %10s %10s %8s\n", "series", "min", "mean", "max", "CV")
	for _, s := range fig.Series {
		vals := make([]int64, len(s.Y))
		for i, y := range s.Y {
			vals[i] = int64(y)
		}
		b := stats.BalanceOf(vals)
		fmt.Fprintf(&txt, "%-28s %10d %10.0f %10d %8.3f\n", s.Label, b.Min, b.Mean, b.Max, b.CV)
	}
	return &Outcome{
		ID: "fig5", Title: fig.Title,
		Paper:  "evenly balanced loads result from the area-of-responsibility concept",
		Figure: fig,
		Text:   txt.String(),
		Checks: checks,
	}, nil
}

// TableA reproduces the §7.1 taxonomy: every loop the paper classifies
// must land in its published class under the dynamic classifier.
func TableA() (*Outcome, error) {
	reports, err := classify.Kernels(loops.All(), 0)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %-48s %-6s %-8s %9s %9s\n",
		"kernel", "name", "paper", "measured", "nc16 %", "c16 %")
	var checks []Check
	for _, r := range reports {
		fmt.Fprintf(&txt, "%-10s %-48s %-6s %-8s %9.2f %9.2f\n",
			r.Key, r.Name, r.Paper, r.Measured, r.Evidence.NoCache16, r.Evidence.Cached16)
		if r.Paper != loops.ClassUnknown {
			checks = append(checks, check(
				fmt.Sprintf("%s classified %s", r.Key, r.Paper),
				r.Measured == r.Paper,
				"measured %s (nc16=%.1f%% c16=%.1f%%)", r.Measured, r.Evidence.NoCache16, r.Evidence.Cached16))
		}
	}
	return &Outcome{
		ID: "tableA", Title: "Table A: access-distribution classes",
		Paper: "MD: 1-D PIC fragment; SD: hydro, tri-diag, EOS, hydro-frag, first sum, first diff; CD: ICCG, 2-D hydro; RD: GLR, ADI",
		Text:  txt.String(),
		Notes: "The kernels the paper does not classify are reported with " +
			"Paper=?; notable among them: inner product, Planckian and first-min " +
			"come out MD (matched, 0% remote); 2-D PIC, 1-D PIC with its gathers, " +
			"matmul and Monte Carlo come out RD, consistent with the paper's " +
			"\"permutation lookup\" criterion.",
		Checks: checks,
	}, nil
}

// TableB reproduces the §8 conclusions: with the small 256-element
// cache, most loops are below 10% remote; SD loops sit in the 1-10%
// band; the large-skew SD case drops from 22% to ~1%.
func TableB() (*Outcome, error) {
	paperSet := map[string]bool{}
	for _, k := range loops.PaperSet() {
		paperSet[k.Key] = true
	}
	all := loops.All()
	k1, err := loops.ByKey("k1")
	if err != nil {
		return nil, err
	}
	var pts []sweep.Point
	for _, k := range all {
		pts = append(pts,
			sweep.Point{Kernel: k, Config: sim.NoCacheConfig(16, 32)},
			sweep.Point{Kernel: k, Config: sim.PaperConfig(16, 32)})
	}
	// §8's large-skew datum uses k1 at n=1000 (the Figure 1 setting).
	pts = append(pts,
		sweep.Point{Kernel: k1, N: 1000, Config: sim.NoCacheConfig(16, 32)},
		sweep.Point{Kernel: k1, N: 1000, Config: sim.PaperConfig(16, 32)})
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %-6s %12s %12s\n", "kernel", "class", "no-cache %", "cached %")
	var below10, total int
	var checks []Check
	for i, k := range all {
		nc, wc := results[2*i], results[2*i+1]
		fmt.Fprintf(&txt, "%-10s %-6s %12.2f %12.2f\n", k.Key, k.Class, nc.RemotePercent(), wc.RemotePercent())
		if paperSet[k.Key] {
			total++
			if wc.RemotePercent() < 10 {
				below10++
			}
		}
		if k.Class == loops.SD {
			checks = append(checks, check(
				fmt.Sprintf("SD %s in 0-10%% band", k.Key),
				wc.RemotePercent() <= 10,
				"cached %.2f%%", wc.RemotePercent()))
		}
	}
	fmt.Fprintf(&txt, "\n%d of %d paper-studied loops below 10%% remote with the 256-element cache\n", below10, total)
	// §8: "for most access distributions, the percentages of remote
	// accesses are less than 10%" — the paper's loop set, where only
	// the two RD loops exceed the band.
	checks = append(checks, check("most paper loops below 10% remote",
		float64(below10) > 0.7*float64(total), "%d of %d", below10, total))
	// §8: "for an SD loop with large skew, we observed a reduction from
	// 22% remote reads to 1%".
	nc, wc := results[2*len(all)], results[2*len(all)+1]
	checks = append(checks, check("large-skew SD: 22% -> 1%",
		nc.RemotePercent() > 20 && nc.RemotePercent() < 23 && wc.RemotePercent() < 1.5,
		"measured %.2f%% -> %.2f%%", nc.RemotePercent(), wc.RemotePercent()))
	return &Outcome{
		ID: "tableB", Title: "Table B: §8 conclusions summary (16 PEs, ps 32)",
		Paper:  "percentages of remote accesses are less than 10% for most access distributions; SD 1-10%; 22%->1% for large skew",
		Text:   txt.String(),
		Checks: checks,
	}, nil
}

// AblationLayout compares the paper's modulo partitioning against the
// §9 "division scheme" per class exemplar. Paper: "our simple modulo
// partitioning scheme performs worse for certain loops than a division
// scheme".
func AblationLayout() (*Outcome, error) {
	fig := &stats.Figure{Title: "Ablation α: modulo vs block (division) layout, no cache, 16 PEs, ps 32",
		XLabel: "kernel", YLabel: "% remote"}
	keys := []string{"k14frag", "k1", "k5", "k11", "k2", "k18", "k6", "k8"}
	ks := make([]*loops.Kernel, len(keys))
	var pts []sweep.Point
	for i, key := range keys {
		k, err := loops.ByKey(key)
		if err != nil {
			return nil, err
		}
		ks[i] = k
		blkCfg := sim.NoCacheConfig(16, 32)
		blkCfg.Layout = partition.KindBlock
		pts = append(pts,
			sweep.Point{Kernel: k, Config: sim.NoCacheConfig(16, 32)},
			sweep.Point{Kernel: k, Config: blkCfg})
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %-6s %10s %10s\n", "kernel", "class", "modulo %", "block %")
	var checks []Check
	var anyBlockWins bool
	for i, k := range ks {
		mod, blk := results[2*i], results[2*i+1]
		fmt.Fprintf(&txt, "%-10s %-6s %10.2f %10.2f\n", keys[i], k.Class, mod.RemotePercent(), blk.RemotePercent())
		if blk.RemotePercent() < mod.RemotePercent()-0.5 {
			anyBlockWins = true
		}
	}
	checks = append(checks, check("division beats modulo on some loops", anyBlockWins, "see table"))
	return &Outcome{
		ID: "ablation-layout", Title: fig.Title,
		Paper: "modulo performs worse for certain loops than a division scheme (§9)",
		Text:  txt.String(),
		Notes: "Division (block) halves k1 and k5 and helps k18, while k2 is " +
			"indifferent and k8 slightly prefers modulo — exactly the " +
			"\"nonintersecting set\" of loops the paper speculates about in §9.",
		Checks: checks,
	}, nil
}

// AblationCacheSize sweeps the cache size on the RD exemplars. Paper:
// "poor performance of RD can be overcome by larger cache sizes".
func AblationCacheSize() (*Outcome, error) {
	sizes := []int{0, 64, 256, 1024, 4096, 16384}
	keys := []string{"k6", "k8"}
	fig := &stats.Figure{Title: "Ablation β: cache size vs % remote (16 PEs, ps 32)",
		XLabel: "cache elements", YLabel: "% remote"}
	var pts []sweep.Point
	for _, key := range keys {
		k, err := loops.ByKey(key)
		if err != nil {
			return nil, err
		}
		for _, ce := range sizes {
			pts = append(pts, pePoint(k, 0, 16, 32, ce))
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var checks []Check
	for ki, key := range keys {
		s := stats.Series{Label: key}
		for si, ce := range sizes {
			s.X = append(s.X, float64(ce))
			s.Y = append(s.Y, results[ki*len(sizes)+si].RemotePercent())
		}
		fig.Series = append(fig.Series, s)
		checks = append(checks, check(
			fmt.Sprintf("%s rescued by large cache", key),
			s.Y[len(s.Y)-1] < s.Y[2]/3,
			"256-elem %.2f%% -> 16k-elem %.2f%%", s.Y[2], s.Y[len(s.Y)-1]))
		checks = append(checks, check(
			fmt.Sprintf("%s monotone in cache size", key),
			nonIncreasing(s.Y, 1.0),
			"series %v", s.Y))
	}
	return &Outcome{
		ID: "ablation-cache", Title: fig.Title,
		Paper:  "increasing the cache size will help by allowing a complete cycle to reside in the cache (§7.1.4)",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "Both RD loops collapse once the cache covers their cycle; the knee " +
			"position differs per loop (k8's working set is a few hundred elements, " +
			"k6's is the full W/B row span).",
		Checks: checks,
	}, nil
}

// AblationPageSize sweeps the page size. Paper §9: page-size
// selectability "might prove useful for reducing communication
// overhead in some classes of loops" — while §7.1.2 warns over-large
// pages stop spreading the work.
func AblationPageSize() (*Outcome, error) {
	sizes := []int{8, 16, 32, 64, 128, 256}
	keys := []string{"k1", "k2"}
	fig := &stats.Figure{Title: "Ablation γ: page size vs % remote (16 PEs, 256-elem cache)",
		XLabel: "page size", YLabel: "% remote"}
	var pts []sweep.Point
	for _, key := range keys {
		k, err := loops.ByKey(key)
		if err != nil {
			return nil, err
		}
		for _, ps := range sizes {
			pts = append(pts, sweep.Point{Kernel: k, Config: sim.PaperConfig(16, ps)})
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	for ki, key := range keys {
		s := stats.Series{Label: key}
		for si, ps := range sizes {
			s.X = append(s.X, float64(ps))
			s.Y = append(s.Y, results[ki*len(sizes)+si].RemotePercent())
		}
		fig.Series = append(fig.Series, s)
	}
	// k1 (boundary-limited SD): larger pages, fewer boundaries — until
	// the page exceeds the cache (ps 256 = 1 frame, still one boundary
	// fetch). The crossover the paper warns about is visible as the
	// curve flattening rather than falling forever.
	k1 := fig.Series[0]
	var checks []Check
	checks = append(checks, check("k1 improves from ps 8 to ps 64",
		k1.Y[3] < k1.Y[0], "%.2f%% -> %.2f%%", k1.Y[0], k1.Y[3]))
	return &Outcome{
		ID: "ablation-pagesize", Title: fig.Title,
		Paper:  "selecting the page size might prove useful for reducing communication overhead (§9)",
		Figure: fig,
		Text:   fig.Table(),
		Notes: "k1 improves monotonically with page size. k2 improves until the page " +
			"size exceeds the 256-element cache — zero cache frames — and collapses: " +
			"the §7.1.2 warning that an over-large page size defeats the design, made " +
			"quantitative.",
		Checks: checks,
	}, nil
}

// AblationPolicy compares page replacement policies. The paper fixed
// LRU (§4); this quantifies how much that choice matters per class.
func AblationPolicy() (*Outcome, error) {
	policies := []cache.Policy{cache.LRU, cache.FIFO, cache.Clock, cache.Random}
	keys := []string{"k2", "k6", "k18"}
	var pts []sweep.Point
	for _, key := range keys {
		k, err := loops.ByKey(key)
		if err != nil {
			return nil, err
		}
		for _, pol := range policies {
			cfg := sim.PaperConfig(16, 32)
			cfg.Policy = pol
			pts = append(pts, sweep.Point{Kernel: k, Config: cfg})
		}
	}
	results, err := runPoints(pts)
	if err != nil {
		return nil, err
	}
	var txt strings.Builder
	fmt.Fprintf(&txt, "%-10s %8s %8s %8s %8s\n", "kernel", "lru", "fifo", "clock", "random")
	var checks []Check
	for ki, key := range keys {
		fmt.Fprintf(&txt, "%-10s", key)
		vals := map[cache.Policy]float64{}
		for pi, pol := range policies {
			rp := results[ki*len(policies)+pi].RemotePercent()
			vals[pol] = rp
			fmt.Fprintf(&txt, " %8.2f", rp)
		}
		txt.WriteString("\n")
		worst := 0.0
		for _, v := range vals {
			if v > worst {
				worst = v
			}
		}
		checks = append(checks, check(
			fmt.Sprintf("%s: LRU within 1.5x of best-case policies", key),
			vals[cache.LRU] <= worst+1e-9 && vals[cache.LRU] <= 1.5*minOf(vals)+1.0,
			"lru=%.2f%% min=%.2f%%", vals[cache.LRU], minOf(vals)))
	}
	return &Outcome{
		ID: "ablation-policy", Title: "Ablation δ: replacement policy vs % remote (16 PEs, ps 32, 256-elem cache)",
		Paper: "the paper fixes LRU; this quantifies the sensitivity of that choice",
		Text:  txt.String(),
		Notes: "LRU (the paper's choice) is within noise of FIFO/Clock/Random on CD " +
			"loops and the best policy on the RD loop; on k18, FIFO/Clock slightly " +
			"beat LRU. The paper's fixed choice is reasonable but not dominant.",
		Checks: checks,
	}, nil
}

func minOf(m map[cache.Policy]float64) float64 {
	first := true
	var mn float64
	for _, v := range m {
		if first || v < mn {
			mn = v
			first = false
		}
	}
	return mn
}

// nonIncreasing allows slack absolute percentage points of noise.
func nonIncreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+slack {
			return false
		}
	}
	return true
}
