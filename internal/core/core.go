// Package core orchestrates the reproduction experiments: one
// Experiment per figure and table in the paper's evaluation (§7), plus
// the ablations its §9 future-work section calls for and three
// extensions that implement what §9 only sketches.
//
// Every experiment carries machine-checkable shape criteria ("who wins,
// by roughly what factor, where crossovers fall") so that `go test`
// certifies the reproduction, and a Notes narrative so EXPERIMENTS.md
// can be regenerated from source (see report.go and `lfksim -docs`).
//
// Each experiment expands its parameter grid into sweep.Points and runs
// them on the parallel sweep engine (internal/sweep); RunAll
// additionally fans the experiments themselves out over a bounded pool.
// Both levels preserve deterministic ordering, so the rendered document
// and the `lfksim -all` transcript are byte-stable across runs and
// worker counts.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/sweep"
)

// PESweep is the PE axis used by the paper's figures.
var PESweep = sweep.PaperPEs

// Check is one machine-verified shape criterion.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Outcome is the result of running one experiment.
type Outcome struct {
	ID     string
	Title  string
	Paper  string // what the paper reports
	Figure *stats.Figure
	Text   string // rendered table or report
	Notes  string // narrative for the generated EXPERIMENTS.md (may be empty)
	Checks []Check

	// Wall is the experiment's wall-clock duration, set by RunTimed and
	// RunAll for run manifests. It is observability metadata only —
	// never rendered into the deterministic documents.
	Wall time.Duration
}

// Pass reports whether every check passed.
func (o *Outcome) Pass() bool {
	for _, c := range o.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Outcome, error)
}

// Experiments returns every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: skewed access pattern (Hydro Fragment, skew 11)", Run: Figure1},
		{ID: "fig2", Title: "Figure 2: cyclic access pattern (ICCG)", Run: Figure2},
		{ID: "fig3", Title: "Figure 3: cyclic+skewed combination (2-D Explicit Hydrodynamics)", Run: Figure3},
		{ID: "fig4", Title: "Figure 4: random access pattern (General Linear Recurrence)", Run: Figure4},
		{ID: "fig5", Title: "Figure 5: remote-access load balance (64 PEs)", Run: Figure5},
		{ID: "tableA", Title: "Table A: access-distribution classification (§7.1)", Run: TableA},
		{ID: "tableB", Title: "Table B: conclusions summary (§8)", Run: TableB},
		{ID: "ablation-layout", Title: "Ablation α: modulo vs division partitioning (§9)", Run: AblationLayout},
		{ID: "ablation-cache", Title: "Ablation β: cache size rescues RD (§7.1.4/§8)", Run: AblationCacheSize},
		{ID: "ablation-pagesize", Title: "Ablation γ: page-size selectability (§9)", Run: AblationPageSize},
		{ID: "ablation-policy", Title: "Ablation δ: replacement policy (LRU vs alternatives)", Run: AblationPolicy},
		{ID: "ext-speedup", Title: "Extension: execution-time model and speedup per class (§9)", Run: ExtSpeedup},
		{ID: "ext-contention", Title: "Extension: network contention per class and topology (§9)", Run: ExtContention},
		{ID: "ext-advisor", Title: "Extension: class-driven partitioning advisor (§9)", Run: ExtAdvisor},
	}
}

// RunTimed runs the experiment and stamps the outcome with its
// wall-clock duration.
func (e Experiment) RunTimed() (*Outcome, error) {
	start := time.Now()
	o, err := e.Run()
	if err != nil {
		return nil, err
	}
	o.Wall = time.Since(start)
	return o, nil
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAll executes every experiment over a bounded worker pool and
// returns the outcomes in presentation order. Each experiment already
// sweeps its own grid concurrently; RunAll adds a second fan-out level
// across experiments so heterogeneous experiments (classification,
// network routing) overlap with the figure sweeps. A failing experiment
// cancels the rest and its error (lowest presentation index) is
// returned.
func RunAll(ctx context.Context) ([]*Outcome, error) {
	return sweep.Map(ctx, 0, Experiments(), func(ctx context.Context, i int, e Experiment) (*Outcome, error) {
		o, err := e.RunTimed()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		return o, nil
	})
}
