package core
