package core

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every figure, table and ablation and
// requires all encoded shape criteria to hold: this is the
// reproduction certificate.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			o, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(o.Checks) == 0 {
				t.Fatalf("%s: no checks encoded", e.ID)
			}
			for _, c := range o.Checks {
				if !c.Pass {
					t.Errorf("%s: FAIL %s (%s)", e.ID, c.Name, c.Detail)
				}
			}
			if o.Text == "" {
				t.Errorf("%s: no rendered output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig1")
	if err != nil || e.ID != "fig1" {
		t.Errorf("ByID(fig1) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 14 {
		t.Errorf("expected 14 experiments, got %d", len(seen))
	}
}

func TestFigureRendering(t *testing.T) {
	o, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if o.Figure == nil || len(o.Figure.Series) != 4 {
		t.Fatal("figure 1 should have 4 series")
	}
	if !strings.Contains(o.Text, "Cache, ps 32") {
		t.Errorf("rendered table lacks series header:\n%s", o.Text)
	}
	chart := o.Figure.Chart(10)
	if !strings.Contains(chart, "A = ") {
		t.Errorf("chart lacks legend:\n%s", chart)
	}
	if !o.Pass() {
		t.Error("figure 1 checks failed")
	}
}

func TestOutcomePass(t *testing.T) {
	o := &Outcome{Checks: []Check{{Pass: true}, {Pass: false}}}
	if o.Pass() {
		t.Error("Pass with failing check")
	}
	o.Checks[1].Pass = true
	if !o.Pass() {
		t.Error("Pass with all passing checks")
	}
}
