// Package benchio reads and appends the repository's JSON benchmark
// history (BENCH_sweep.json): an array of report entries, oldest first.
// Both front ends write it — lfksim -bench appends sweep/replay
// sections, lfksimd -loadgen appends serve sections (including the
// stages map of server-side per-stage p50/p99/p999 from the
// serve.stage.* histograms) — so the shared parsing/appending lives
// here. A legacy single-object file (the pre-history format) is
// accepted and becomes the history's first entry; an unparseable file
// is an error rather than silently overwritten.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
)

// ParseHistory accepts both formats: the history array, and the legacy
// single-report object (which becomes a one-entry history).
func ParseHistory(data []byte) ([]json.RawMessage, error) {
	var history []json.RawMessage
	if err := json.Unmarshal(data, &history); err == nil {
		return history, nil
	}
	var single map[string]json.RawMessage
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("existing file is neither a benchmark history array nor a report object")
	}
	compact, err := json.Marshal(single)
	if err != nil {
		return nil, err
	}
	return []json.RawMessage{compact}, nil
}

// ReadHistory loads the history at path; a missing file is an empty
// history.
func ReadHistory(path string) ([]json.RawMessage, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		return nil, nil
	case err != nil:
		return nil, fmt.Errorf("reading history %s: %w", path, err)
	}
	history, err := ParseHistory(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w (move it aside to start fresh)", path, err)
	}
	return history, nil
}

// Append renders the history at path with entry appended: the returned
// payload is the full file contents, trailing newline included. An
// empty path starts a fresh one-entry history (the stdout case).
func Append(path string, entry any) ([]byte, error) {
	var history []json.RawMessage
	if path != "" {
		var err error
		if history, err = ReadHistory(path); err != nil {
			return nil, err
		}
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return nil, err
	}
	history = append(history, raw)
	payload, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(payload, '\n'), nil
}
