package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseHistoryFormats(t *testing.T) {
	hist, err := ParseHistory([]byte(`[{"a":1},{"a":2}]`))
	if err != nil || len(hist) != 2 {
		t.Fatalf("array: %v, %d entries", err, len(hist))
	}
	hist, err = ParseHistory([]byte(`{"legacy":true}`))
	if err != nil || len(hist) != 1 {
		t.Fatalf("legacy object: %v, %d entries", err, len(hist))
	}
	if _, err = ParseHistory([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadHistoryMissingFile(t *testing.T) {
	hist, err := ReadHistory(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || hist != nil {
		t.Fatalf("missing file: %v, %v (want empty history, nil error)", hist, err)
	}
}

func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	type entry struct {
		Run int `json:"run"`
	}
	for i := 1; i <= 3; i++ {
		payload, err := Append(path, entry{Run: i})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	var last entry
	if err := json.Unmarshal(hist[2], &last); err != nil || last.Run != 3 {
		t.Fatalf("last entry = %+v, %v", last, err)
	}
}

func TestAppendMigratesLegacyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"old":"report"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	payload, err := Append(path, map[string]string{"new": "report"})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := ParseHistory(payload)
	if err != nil || len(hist) != 2 {
		t.Fatalf("migrated history: %v, %d entries (want legacy + new)", err, len(hist))
	}
}

func TestAppendRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{{{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Append(path, map[string]int{"x": 1}); err == nil {
		t.Fatal("corrupt history silently overwritten")
	}
}
