package partition

import (
	"testing"
	"testing/quick"
)

func TestNewDimsValidation(t *testing.T) {
	if _, err := NewDims(); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewDims(3, 0); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewDims(-2); err == nil {
		t.Error("negative extent accepted")
	}
	d, err := NewDims(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rank() != 3 || d.Elems() != 60 {
		t.Errorf("rank=%d elems=%d", d.Rank(), d.Elems())
	}
}

func TestNewDimsCopiesInput(t *testing.T) {
	src := []int{2, 3}
	d, err := NewDims(src...)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if d[0] != 2 {
		t.Error("NewDims aliases caller slice")
	}
}

func TestLinearRowMajor(t *testing.T) {
	d := Dims{3, 4}
	// Row-major: last index fastest.
	if d.Linear(0, 0) != 0 {
		t.Error("(0,0) != 0")
	}
	if d.Linear(0, 3) != 3 {
		t.Error("(0,3) != 3")
	}
	if d.Linear(1, 0) != 4 {
		t.Error("(1,0) != 4")
	}
	if d.Linear(2, 3) != 11 {
		t.Error("(2,3) != 11")
	}
}

func TestLinear3D(t *testing.T) {
	d := Dims{2, 3, 4}
	want := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if got := d.Linear(i, j, k); got != want {
					t.Fatalf("Linear(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
				want++
			}
		}
	}
}

func TestLinearPanics(t *testing.T) {
	d := Dims{3, 4}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("rank mismatch", func() { d.Linear(1) })
	mustPanic("index too large", func() { d.Linear(3, 0) })
	mustPanic("negative index", func() { d.Linear(0, -1) })
	mustPanic("delinear out of range", func() { d.Delinear(12) })
	mustPanic("delinear negative", func() { d.Delinear(-1) })
}

func TestDelinearRoundTrip(t *testing.T) {
	d := Dims{3, 5, 7}
	for lin := 0; lin < d.Elems(); lin++ {
		idx := d.Delinear(lin)
		if got := d.Linear(idx...); got != lin {
			t.Fatalf("roundtrip failed at %d: idx=%v -> %d", lin, idx, got)
		}
	}
}

func TestStrides(t *testing.T) {
	d := Dims{2, 3, 4}
	s := d.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("stride[%d] = %d, want %d", i, s[i], want[i])
		}
	}
	// Stride definition: moving by 1 in dim i moves Linear by s[i].
	if d.Linear(1, 0, 0)-d.Linear(0, 0, 0) != s[0] {
		t.Error("stride 0 inconsistent with Linear")
	}
	if d.Linear(0, 1, 0)-d.Linear(0, 0, 0) != s[1] {
		t.Error("stride 1 inconsistent with Linear")
	}
}

func TestDimsString(t *testing.T) {
	d := Dims{3, 4}
	if d.String() != "[3 x 4]" {
		t.Errorf("String = %q", d.String())
	}
	if (Dims{7}).String() != "[7]" {
		t.Errorf("String = %q", (Dims{7}).String())
	}
}

func TestPropertyLinearDelinearRoundTrip(t *testing.T) {
	f := func(a, b, c uint8, pick uint16) bool {
		d := Dims{int(a%7) + 1, int(b%7) + 1, int(c%7) + 1}
		lin := int(pick) % d.Elems()
		idx := d.Delinear(lin)
		return d.Linear(idx...) == lin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyLinearBijective(t *testing.T) {
	// All linear offsets in [0, Elems) are hit exactly once.
	d := Dims{4, 3, 2}
	seen := make([]bool, d.Elems())
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 2; k++ {
				lin := d.Linear(i, j, k)
				if seen[lin] {
					t.Fatalf("offset %d hit twice", lin)
				}
				seen[lin] = true
			}
		}
	}
	for lin, s := range seen {
		if !s {
			t.Fatalf("offset %d never hit", lin)
		}
	}
}
