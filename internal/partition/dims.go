package partition

import "fmt"

// Dims describes the extents of a (possibly multi-dimensional) array and
// its row-major linearization. The paper maps "multidimensional arrays
// ... to a linear address space through row-major ordering" (§7); pages
// are then cut from that linear space.
//
// For Dims{d0, d1, ..., dk} index (i0, i1, ..., ik) linearizes to
// ((i0*d1 + i1)*d2 + i2)... — the last index varies fastest.
type Dims []int

// NewDims validates extents and returns a Dims.
func NewDims(extents ...int) (Dims, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("partition: array needs at least one dimension")
	}
	for i, e := range extents {
		if e <= 0 {
			return nil, fmt.Errorf("partition: dimension %d has non-positive extent %d", i, e)
		}
	}
	d := make(Dims, len(extents))
	copy(d, extents)
	return d, nil
}

// Rank returns the number of dimensions.
func (d Dims) Rank() int { return len(d) }

// Elems returns the total number of elements.
func (d Dims) Elems() int {
	n := 1
	for _, e := range d {
		n *= e
	}
	return n
}

// Linear converts a multi-index to its row-major linear offset.
// It panics if the number of indices does not match the rank or an index
// is out of bounds: an out-of-range array reference is a program bug in a
// kernel, mirroring a hardware address fault.
func (d Dims) Linear(idx ...int) int {
	if len(idx) != len(d) {
		panic(fmt.Sprintf("partition: rank mismatch: %d indices for rank-%d array", len(idx), len(d)))
	}
	lin := 0
	for k, i := range idx {
		if i < 0 || i >= d[k] {
			panic(fmt.Sprintf("partition: index %d out of range [0,%d) in dimension %d", i, d[k], k))
		}
		lin = lin*d[k] + i
	}
	return lin
}

// Delinear converts a row-major linear offset back to a multi-index.
func (d Dims) Delinear(lin int) []int {
	if lin < 0 || lin >= d.Elems() {
		panic(fmt.Sprintf("partition: linear offset %d out of range [0,%d)", lin, d.Elems()))
	}
	idx := make([]int, len(d))
	for k := len(d) - 1; k >= 0; k-- {
		idx[k] = lin % d[k]
		lin /= d[k]
	}
	return idx
}

// Strides returns the row-major stride of each dimension, i.e. the linear
// distance between consecutive indices along that dimension.
func (d Dims) Strides() []int {
	s := make([]int, len(d))
	acc := 1
	for k := len(d) - 1; k >= 0; k-- {
		s[k] = acc
		acc *= d[k]
	}
	return s
}

// String renders the extents as "[d0 x d1 x ...]".
func (d Dims) String() string {
	out := "["
	for i, e := range d {
		if i > 0 {
			out += " x "
		}
		out += fmt.Sprintf("%d", e)
	}
	return out + "]"
}
