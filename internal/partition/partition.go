// Package partition implements the automatic data-partitioning rules of
// Bic, Nagel & Roy (1989): arrays are segmented into fixed-size pages and
// pages are mapped to processing elements (PEs) by a Layout. The paper's
// default layout is modulo ("a page p is allocated to the local memory of
// PE P if p = P mod N"); the paper's §9 also discusses a "division"
// (block) scheme, and we provide block-cyclic as the natural
// generalization of both.
//
// Control partitioning follows from data partitioning via the
// owner-computes rule: the PE owning the page that holds an assignment's
// target element is responsible for executing that assignment.
package partition

import (
	"fmt"
)

// Geometry describes how one linear address space is split into pages.
// Element indices are 0-based; page p covers elements
// [p*PageSize, min((p+1)*PageSize, Elems)).
type Geometry struct {
	Elems    int // total number of elements
	PageSize int // elements per page (the paper's parameter "ps")
}

// NewGeometry validates and returns a Geometry.
func NewGeometry(elems, pageSize int) (Geometry, error) {
	if elems < 0 {
		return Geometry{}, fmt.Errorf("partition: negative element count %d", elems)
	}
	if pageSize <= 0 {
		return Geometry{}, fmt.Errorf("partition: page size must be positive, got %d", pageSize)
	}
	return Geometry{Elems: elems, PageSize: pageSize}, nil
}

// Pages returns the number of pages, including a trailing partial page.
func (g Geometry) Pages() int {
	if g.Elems == 0 {
		return 0
	}
	return (g.Elems + g.PageSize - 1) / g.PageSize
}

// PageOf returns the page holding element index i.
func (g Geometry) PageOf(i int) int { return i / g.PageSize }

// PageBounds returns the half-open element range [lo, hi) of page p.
// The final page may be partial.
func (g Geometry) PageBounds(p int) (lo, hi int) {
	lo = p * g.PageSize
	hi = lo + g.PageSize
	if hi > g.Elems {
		hi = g.Elems
	}
	return lo, hi
}

// PageLen returns the number of elements in page p.
func (g Geometry) PageLen(p int) int {
	lo, hi := g.PageBounds(p)
	return hi - lo
}

// Offset returns the offset of element i within its page.
func (g Geometry) Offset(i int) int { return i % g.PageSize }

// Layout maps page numbers to owning PEs. Implementations must be pure
// functions of the page number: the same page always maps to the same PE.
type Layout interface {
	// Owner returns the PE (in [0, NPE)) owning page p.
	Owner(p int) int
	// NPE returns the number of processing elements.
	NPE() int
	// Name returns a short human-readable scheme name.
	Name() string
}

// Modulo is the paper's default partitioning: page p lives on PE p mod N.
// Consecutive pages round-robin across PEs, interleaving each array over
// the whole machine.
type Modulo struct {
	N int
}

// NewModulo returns a modulo layout over n PEs.
func NewModulo(n int) (Modulo, error) {
	if n <= 0 {
		return Modulo{}, fmt.Errorf("partition: NPE must be positive, got %d", n)
	}
	return Modulo{N: n}, nil
}

// Owner implements Layout.
func (m Modulo) Owner(p int) int { return p % m.N }

// NPE implements Layout.
func (m Modulo) NPE() int { return m.N }

// Name implements Layout.
func (m Modulo) Name() string { return "modulo" }

// Block is the paper's "division scheme" (§9): the page space is divided
// into N contiguous runs, one per PE. It requires the total page count up
// front. With P pages and N PEs, the first P mod N PEs receive
// ceil(P/N) pages and the rest floor(P/N), so ownership is balanced to
// within one page.
type Block struct {
	N     int
	Pages int
}

// NewBlock returns a block (division) layout of pages pages over n PEs.
func NewBlock(n, pages int) (Block, error) {
	if n <= 0 {
		return Block{}, fmt.Errorf("partition: NPE must be positive, got %d", n)
	}
	if pages < 0 {
		return Block{}, fmt.Errorf("partition: negative page count %d", pages)
	}
	return Block{N: n, Pages: pages}, nil
}

// Owner implements Layout.
func (b Block) Owner(p int) int {
	if b.Pages == 0 {
		return 0
	}
	q, r := b.Pages/b.N, b.Pages%b.N
	// PEs [0, r) own q+1 pages each; PEs [r, N) own q pages each.
	cut := r * (q + 1)
	if p < cut {
		return p / (q + 1)
	}
	if q == 0 {
		// More PEs than pages: pages beyond cut do not exist, but keep
		// Owner total so callers probing out-of-range pages stay in range.
		return b.N - 1
	}
	return r + (p-cut)/q
}

// NPE implements Layout.
func (b Block) NPE() int { return b.N }

// Name implements Layout.
func (b Block) Name() string { return "block" }

// BlockCyclic distributes runs of Run consecutive pages round-robin:
// page p is owned by (p/Run) mod N. Run=1 degenerates to Modulo;
// Run>=Pages/N approaches Block.
type BlockCyclic struct {
	N   int
	Run int
}

// NewBlockCyclic returns a block-cyclic layout with runs of run pages.
func NewBlockCyclic(n, run int) (BlockCyclic, error) {
	if n <= 0 {
		return BlockCyclic{}, fmt.Errorf("partition: NPE must be positive, got %d", n)
	}
	if run <= 0 {
		return BlockCyclic{}, fmt.Errorf("partition: run must be positive, got %d", run)
	}
	return BlockCyclic{N: n, Run: run}, nil
}

// Owner implements Layout.
func (b BlockCyclic) Owner(p int) int { return (p / b.Run) % b.N }

// NPE implements Layout.
func (b BlockCyclic) NPE() int { return b.N }

// Name implements Layout.
func (b BlockCyclic) Name() string { return fmt.Sprintf("blockcyclic(%d)", b.Run) }

// Kind selects a layout scheme by name; it is the configuration-level
// counterpart of the Layout interface.
type Kind int

// Layout scheme kinds.
const (
	KindModulo Kind = iota
	KindBlock
	KindBlockCyclic
)

// String returns the scheme name.
func (k Kind) String() string {
	switch k {
	case KindModulo:
		return "modulo"
	case KindBlock:
		return "block"
	case KindBlockCyclic:
		return "blockcyclic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Make builds a Layout of the given kind for npe PEs over pages pages.
// The run parameter is used only by KindBlockCyclic.
func Make(k Kind, npe, pages, run int) (Layout, error) {
	switch k {
	case KindModulo:
		return NewModulo(npe)
	case KindBlock:
		return NewBlock(npe, pages)
	case KindBlockCyclic:
		if run <= 0 {
			run = 1
		}
		return NewBlockCyclic(npe, run)
	default:
		return nil, fmt.Errorf("partition: unknown layout kind %d", int(k))
	}
}

// OwnerOfElem is a convenience composing Geometry and Layout: the PE
// owning element i.
func OwnerOfElem(g Geometry, l Layout, i int) int { return l.Owner(g.PageOf(i)) }
