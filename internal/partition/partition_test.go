package partition

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	if _, err := NewGeometry(-1, 32); err == nil {
		t.Error("negative elems accepted")
	}
	if _, err := NewGeometry(10, 0); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewGeometry(10, -3); err == nil {
		t.Error("negative page size accepted")
	}
	g, err := NewGeometry(100, 32)
	if err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if g.Elems != 100 || g.PageSize != 32 {
		t.Errorf("geometry fields = %+v", g)
	}
}

func TestGeometryPages(t *testing.T) {
	cases := []struct {
		elems, ps, want int
	}{
		{0, 32, 0},
		{1, 32, 1},
		{32, 32, 1},
		{33, 32, 2},
		{100, 32, 4}, // paper's example: 100-element arrays, ps 32 -> 3 full + 1 partial
		{64, 32, 2},
		{100, 1, 100},
		{100, 1000, 1},
	}
	for _, c := range cases {
		g := Geometry{Elems: c.elems, PageSize: c.ps}
		if got := g.Pages(); got != c.want {
			t.Errorf("Pages(elems=%d ps=%d) = %d, want %d", c.elems, c.ps, got, c.want)
		}
	}
}

func TestGeometryPageBoundsPartial(t *testing.T) {
	// The paper's running example: arrays of 100 elements, page size 32.
	g := Geometry{Elems: 100, PageSize: 32}
	lo, hi := g.PageBounds(3)
	if lo != 96 || hi != 100 {
		t.Errorf("partial page bounds = [%d,%d), want [96,100)", lo, hi)
	}
	if g.PageLen(3) != 4 {
		t.Errorf("partial page len = %d, want 4", g.PageLen(3))
	}
	if g.PageLen(0) != 32 {
		t.Errorf("full page len = %d, want 32", g.PageLen(0))
	}
}

func TestGeometryPageOfOffset(t *testing.T) {
	g := Geometry{Elems: 100, PageSize: 32}
	for i := 0; i < 100; i++ {
		p := g.PageOf(i)
		off := g.Offset(i)
		lo, hi := g.PageBounds(p)
		if i < lo || i >= hi {
			t.Fatalf("element %d not within its page bounds [%d,%d)", i, lo, hi)
		}
		if lo+off != i {
			t.Fatalf("offset decomposition broken: page %d lo %d off %d != %d", p, lo, off, i)
		}
	}
}

func TestPaperExampleMapping(t *testing.T) {
	// §2: four PEs, page size 32, arrays of 100 elements. PE 0 fills
	// A(1..32) i.e. 0-based [0,32), PE1 [32,64), PE2 [64,96), PE3 [96,100).
	g := Geometry{Elems: 100, PageSize: 32}
	l, err := NewModulo(4)
	if err != nil {
		t.Fatal(err)
	}
	wantOwner := func(i int) int {
		switch {
		case i < 32:
			return 0
		case i < 64:
			return 1
		case i < 96:
			return 2
		default:
			return 3
		}
	}
	for i := 0; i < 100; i++ {
		if got := OwnerOfElem(g, l, i); got != wantOwner(i) {
			t.Fatalf("owner of element %d = %d, want %d", i, got, wantOwner(i))
		}
	}
}

func TestModuloOwnerRoundRobin(t *testing.T) {
	m, err := NewModulo(4)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 100; p++ {
		if m.Owner(p) != p%4 {
			t.Fatalf("modulo owner(%d) = %d", p, m.Owner(p))
		}
	}
	if m.NPE() != 4 {
		t.Errorf("NPE = %d", m.NPE())
	}
	if m.Name() != "modulo" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestModuloValidation(t *testing.T) {
	if _, err := NewModulo(0); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := NewModulo(-1); err == nil {
		t.Error("negative PEs accepted")
	}
}

func TestBlockOwnerContiguous(t *testing.T) {
	b, err := NewBlock(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 10 pages over 4 PEs: PEs 0,1 get 3 pages, PEs 2,3 get 2 pages.
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
	for p, w := range want {
		if got := b.Owner(p); got != w {
			t.Errorf("block owner(%d) = %d, want %d", p, got, w)
		}
	}
}

func TestBlockOwnerExactDivision(t *testing.T) {
	b, err := NewBlock(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got, want := b.Owner(p), p/2; got != want {
			t.Errorf("owner(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBlockMorePEsThanPages(t *testing.T) {
	b, err := NewBlock(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for p, w := range want {
		if got := b.Owner(p); got != w {
			t.Errorf("owner(%d) = %d, want %d", p, got, w)
		}
	}
}

func TestBlockZeroPages(t *testing.T) {
	b, err := NewBlock(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Owner(0); got < 0 || got >= 4 {
		t.Errorf("owner out of range for empty block layout: %d", got)
	}
}

func TestBlockBalance(t *testing.T) {
	// Ownership counts must differ by at most one page.
	for _, npe := range []int{1, 2, 3, 4, 7, 16, 64} {
		for _, pages := range []int{0, 1, 5, 64, 100, 1000} {
			b, err := NewBlock(npe, pages)
			if err != nil {
				t.Fatal(err)
			}
			counts := make([]int, npe)
			for p := 0; p < pages; p++ {
				o := b.Owner(p)
				if o < 0 || o >= npe {
					t.Fatalf("npe=%d pages=%d: owner(%d)=%d out of range", npe, pages, p, o)
				}
				counts[o]++
			}
			mn, mx := pages, 0
			for _, c := range counts {
				if c < mn {
					mn = c
				}
				if c > mx {
					mx = c
				}
			}
			if pages >= npe && mx-mn > 1 {
				t.Errorf("npe=%d pages=%d: imbalance %d-%d", npe, pages, mn, mx)
			}
		}
	}
}

func TestBlockMonotone(t *testing.T) {
	// Owners must be non-decreasing in the page index (contiguity).
	b, _ := NewBlock(5, 23)
	prev := 0
	for p := 0; p < 23; p++ {
		o := b.Owner(p)
		if o < prev {
			t.Fatalf("block owners not monotone at page %d: %d < %d", p, o, prev)
		}
		prev = o
	}
}

func TestBlockCyclic(t *testing.T) {
	bc, err := NewBlockCyclic(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 2, 2, 0, 0, 1}
	for p, w := range want {
		if got := bc.Owner(p); got != w {
			t.Errorf("blockcyclic owner(%d) = %d, want %d", p, got, w)
		}
	}
}

func TestBlockCyclicRunOneEqualsModulo(t *testing.T) {
	bc, _ := NewBlockCyclic(5, 1)
	m, _ := NewModulo(5)
	for p := 0; p < 200; p++ {
		if bc.Owner(p) != m.Owner(p) {
			t.Fatalf("run-1 block-cyclic differs from modulo at page %d", p)
		}
	}
}

func TestBlockCyclicValidation(t *testing.T) {
	if _, err := NewBlockCyclic(0, 1); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := NewBlockCyclic(4, 0); err == nil {
		t.Error("zero run accepted")
	}
}

func TestMake(t *testing.T) {
	for _, k := range []Kind{KindModulo, KindBlock, KindBlockCyclic} {
		l, err := Make(k, 4, 16, 2)
		if err != nil {
			t.Fatalf("Make(%v): %v", k, err)
		}
		if l.NPE() != 4 {
			t.Errorf("Make(%v).NPE() = %d", k, l.NPE())
		}
		for p := 0; p < 16; p++ {
			if o := l.Owner(p); o < 0 || o >= 4 {
				t.Errorf("Make(%v).Owner(%d) = %d out of range", k, p, o)
			}
		}
	}
	if _, err := Make(Kind(99), 4, 16, 2); err == nil {
		t.Error("unknown kind accepted")
	}
	// Block-cyclic with run<=0 falls back to run 1.
	l, err := Make(KindBlockCyclic, 4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Owner(1) != 1 {
		t.Error("fallback run-1 block-cyclic not modulo-like")
	}
}

func TestKindString(t *testing.T) {
	if KindModulo.String() != "modulo" || KindBlock.String() != "block" ||
		KindBlockCyclic.String() != "blockcyclic" {
		t.Error("kind names wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestPropertyOwnerInRange(t *testing.T) {
	// Property: for any layout and any page, the owner is in [0, NPE).
	f := func(npeRaw uint8, pageRaw uint16, runRaw uint8) bool {
		npe := int(npeRaw%64) + 1
		page := int(pageRaw)
		run := int(runRaw%16) + 1
		layouts := []Layout{
			Modulo{N: npe},
			Block{N: npe, Pages: page + 1},
			BlockCyclic{N: npe, Run: run},
		}
		for _, l := range layouts {
			o := l.Owner(page)
			if o < 0 || o >= npe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEveryPageExactlyOneOwner(t *testing.T) {
	// Determinism: repeated Owner calls agree (layouts are pure).
	f := func(npeRaw uint8, pageRaw uint16) bool {
		npe := int(npeRaw%32) + 1
		page := int(pageRaw)
		m := Modulo{N: npe}
		b := Block{N: npe, Pages: 4096}
		return m.Owner(page) == m.Owner(page) && b.Owner(page) == b.Owner(page)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
