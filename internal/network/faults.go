// Deterministic fault injection for the interconnect.
//
// The paper's §4 claim — single assignment eliminates cache coherence —
// has a stronger corollary: because a fetched page can never be
// invalidated and a partially-filled page may simply be re-fetched,
// every page-protocol message is idempotent by construction. A lossy
// network therefore cannot corrupt a computation, only delay it. The
// Faults layer makes that claim testable: it intercepts Send and Reply
// and drops, duplicates, delays or stalls page traffic under a
// deterministic PRNG keyed by (seed, src, dst, link sequence), so a
// chaos run is a pure function of the seed and the per-link traffic
// order.
//
// Only PageRequest and PageReply messages are ever faulted. Control
// traffic — reductions, re-initialization grants, halts — is carried by
// a reliable control plane (see docs/FAULTS.md and internal/hostproc):
// those exchanges are not idempotent, and real machines separate the
// data and control networks for exactly this reason.
//
// Faulted traffic is accounted separately from the paper's counters:
// an injected duplicate shows up in FaultStats.RedundantBytes, not in
// Network.Totals, so figures derived from the clean counters remain
// comparable across faulty and fault-free runs.

package network

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FaultConfig describes the fault model of a lossy interconnect. The
// zero value injects nothing; probabilities are per delivered copy.
type FaultConfig struct {
	// Seed keys the deterministic PRNG. Two runs with the same seed,
	// topology and per-link traffic order make identical fault
	// decisions.
	Seed int64
	// Drop is the probability that a message copy is silently lost.
	Drop float64
	// Dup is the probability that one extra copy of a message is
	// injected (duplicate delivery).
	Dup float64
	// Delay is the probability that a copy's delivery is deferred by a
	// bounded pseudo-random interval, reordering it against younger
	// traffic. MaxDelay bounds the interval (default 1ms when Delay>0).
	Delay    float64
	MaxDelay time.Duration
	// Stall is the probability that the sending PE stalls briefly
	// before the message enters the network (a transient slow node).
	// MaxStall bounds the stall (default 1ms when Stall>0).
	Stall    float64
	MaxStall time.Duration
	// Partition lists directed (src, dst) PE pairs whose page traffic
	// is entirely lost — a dead link. A pair present here behaves as
	// Drop=1 regardless of the Drop field.
	Partition [][2]int
}

// Validate rejects probabilities outside [0,1] and negative durations.
func (c *FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dup", c.Dup}, {"delay", c.Delay}, {"stall", c.Stall}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("network: fault %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxDelay < 0 || c.MaxStall < 0 {
		return fmt.Errorf("network: negative fault delay/stall bound")
	}
	return nil
}

// enabled reports whether the config injects any fault at all.
func (c *FaultConfig) enabled() bool {
	return c != nil && (c.Drop > 0 || c.Dup > 0 || c.Delay > 0 || c.Stall > 0 || len(c.Partition) > 0)
}

// FaultStats aggregates the injected faults of one run.
type FaultStats struct {
	Dropped        int64 // message copies silently lost
	Duplicated     int64 // extra copies injected
	Delayed        int64 // copies delivered late (reordered)
	Stalls         int64 // sender stalls injected
	RedundantBytes int64 // modeled wire bytes of injected duplicates
	Discarded      int64 // redundant replies discarded at a full reply channel
}

// Observability signal names recorded by an instrumented Faults layer.
const (
	// MetricFaultsDropped counts message copies the fault layer lost.
	MetricFaultsDropped = "network.faults.dropped"
	// MetricFaultsDuplicated counts injected duplicate copies.
	MetricFaultsDuplicated = "network.faults.duplicated"
	// MetricFaultsDelayed counts copies delivered late.
	MetricFaultsDelayed = "network.faults.delayed"
	// MetricFaultsStalls counts injected sender stalls.
	MetricFaultsStalls = "network.faults.stalls"
	// MetricFaultsRedundantBytes accumulates wire bytes of duplicates.
	MetricFaultsRedundantBytes = "network.faults.redundant_bytes"
	// MetricFaultsDiscarded counts redundant replies dropped at a full
	// reply channel (safe: the requester's retry covers them).
	MetricFaultsDiscarded = "network.faults.discarded"
)

// Faults is an active fault injector bound to one Network. Create with
// NewFaults, attach with Network.InjectFaults before any traffic, and
// Close it once all senders have finished (Close drains delayed
// deliveries so inboxes can be closed safely).
type Faults struct {
	cfg FaultConfig
	n   int

	seq       []atomic.Uint64 // per directed link (src*n+dst) sequence
	partition map[[2]int]bool

	stopOnce sync.Once
	stop     chan struct{}
	inflight sync.WaitGroup

	dropped        atomic.Int64
	duplicated     atomic.Int64
	delayed        atomic.Int64
	stalls         atomic.Int64
	redundantBytes atomic.Int64
	discarded      atomic.Int64

	mDropped        *obs.Counter
	mDuplicated     *obs.Counter
	mDelayed        *obs.Counter
	mStalls         *obs.Counter
	mRedundantBytes *obs.Counter
	mDiscarded      *obs.Counter
}

// NewFaults returns a fault injector for an n-PE network.
func NewFaults(cfg FaultConfig, n int) (*Faults, error) {
	if n <= 0 {
		return nil, fmt.Errorf("network: faults need at least one PE, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Delay > 0 && cfg.MaxDelay == 0 {
		cfg.MaxDelay = time.Millisecond
	}
	if cfg.Stall > 0 && cfg.MaxStall == 0 {
		cfg.MaxStall = time.Millisecond
	}
	f := &Faults{
		cfg:  cfg,
		n:    n,
		seq:  make([]atomic.Uint64, n*n),
		stop: make(chan struct{}),
	}
	if len(cfg.Partition) > 0 {
		f.partition = make(map[[2]int]bool, len(cfg.Partition))
		for _, pair := range cfg.Partition {
			f.partition[pair] = true
		}
	}
	return f, nil
}

// Instrument attaches observability instruments from the registry (a
// nil registry detaches them). Instrument before traffic starts.
func (f *Faults) Instrument(r *obs.Registry) {
	f.mDropped = r.Counter(MetricFaultsDropped)
	f.mDuplicated = r.Counter(MetricFaultsDuplicated)
	f.mDelayed = r.Counter(MetricFaultsDelayed)
	f.mStalls = r.Counter(MetricFaultsStalls)
	f.mRedundantBytes = r.Counter(MetricFaultsRedundantBytes)
	f.mDiscarded = r.Counter(MetricFaultsDiscarded)
}

// Stats returns the faults injected so far.
func (f *Faults) Stats() FaultStats {
	if f == nil {
		return FaultStats{}
	}
	return FaultStats{
		Dropped:        f.dropped.Load(),
		Duplicated:     f.duplicated.Load(),
		Delayed:        f.delayed.Load(),
		Stalls:         f.stalls.Load(),
		RedundantBytes: f.redundantBytes.Load(),
		Discarded:      f.discarded.Load(),
	}
}

// Close stops the injector: delayed deliveries still in flight are
// released (delivered or abandoned) and awaited. Call after all
// senders have finished and before Network.CloseInboxes.
func (f *Faults) Close() {
	if f == nil {
		return
	}
	f.stopOnce.Do(func() { close(f.stop) })
	f.inflight.Wait()
}

// InjectFaults attaches a fault injector to the network. Page traffic
// (PageRequest/PageReply) through Send, SendAbort and Reply is then
// subject to the injector's fault model; all other message types pass
// through unfaulted. Not safe to call concurrently with traffic.
func (nw *Network) InjectFaults(f *Faults) error {
	if f != nil && f.n != nw.n {
		return fmt.Errorf("network: fault injector sized for %d PEs attached to %d-PE network", f.n, nw.n)
	}
	nw.faults = f
	return nil
}

// Faults returns the attached fault injector, or nil.
func (nw *Network) Faults() *Faults { return nw.faults }

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Per-decision salts so one (link, seq) draw yields independent values
// for each fault dimension.
const (
	saltDrop  = 0xD1CE
	saltDup   = 0xD0B1
	saltDelay = 0x1A7E
	saltStall = 0x57A1
	saltDur   = 0xD43A
)

// word derives the deterministic 64-bit draw for one decision of one
// message: a pure function of (seed, src, dst, link sequence, salt).
func (f *Faults) word(src, dst int, seq, salt uint64) uint64 {
	x := mix64(uint64(f.cfg.Seed) ^ uint64(src)<<32 ^ uint64(dst))
	x = mix64(x ^ seq)
	return mix64(x ^ salt)
}

// roll converts a draw into a uniform float in [0,1).
func roll(w uint64) float64 { return float64(w>>11) / (1 << 53) }

// faultable reports whether the fault model applies to this message
// type: only the idempotent page protocol is ever faulted.
func faultable(t MsgType) bool { return t == PageRequest || t == PageReply }

// verdict is the fault layer's decision for one message.
type verdict struct {
	drop   bool
	dup    bool
	delay  time.Duration // 0 = deliver immediately
	dupDel time.Duration // delay of the duplicate copy, if dup
	stall  time.Duration // sender-side stall before the send
}

// decide draws the verdict for the next message on link src->dst.
func (f *Faults) decide(src, dst int) verdict {
	seq := f.seq[src*f.n+dst].Add(1) - 1
	var v verdict
	if f.partition[[2]int{src, dst}] {
		v.drop = true
		return v
	}
	if f.cfg.Drop > 0 && roll(f.word(src, dst, seq, saltDrop)) < f.cfg.Drop {
		v.drop = true
		return v
	}
	if f.cfg.Stall > 0 && roll(f.word(src, dst, seq, saltStall)) < f.cfg.Stall {
		v.stall = boundedDur(f.word(src, dst, seq, saltStall^saltDur), f.cfg.MaxStall)
	}
	if f.cfg.Dup > 0 && roll(f.word(src, dst, seq, saltDup)) < f.cfg.Dup {
		v.dup = true
		v.dupDel = boundedDur(f.word(src, dst, seq, saltDup^saltDur), f.cfg.MaxDelay)
	}
	if f.cfg.Delay > 0 && roll(f.word(src, dst, seq, saltDelay)) < f.cfg.Delay {
		v.delay = boundedDur(f.word(src, dst, seq, saltDelay^saltDur), f.cfg.MaxDelay)
	}
	return v
}

// boundedDur maps a draw onto (0, max]; a zero bound yields zero.
func boundedDur(w uint64, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(w%uint64(max)) + 1
}

// deliverSend routes one Send through the fault model. The message has
// already been accounted. abort, when non-nil, unblocks a send into a
// full inbox (the SendAbort contract).
func (f *Faults) deliverSend(nw *Network, msg Message, abort <-chan struct{}) error {
	v := f.decide(msg.Src, msg.Dst)
	f.applyStall(v)
	if v.drop {
		f.dropped.Add(1)
		f.mDropped.Inc()
		return nil
	}
	if v.dup {
		f.duplicated.Add(1)
		f.mDuplicated.Inc()
		f.redundantBytes.Add(int64(msg.Size()))
		f.mRedundantBytes.Add(int64(msg.Size()))
		f.enqueueLater(nw, msg, v.dupDel)
	}
	if v.delay > 0 {
		f.delayed.Add(1)
		f.mDelayed.Inc()
		f.enqueueLater(nw, msg, v.delay)
		return nil
	}
	return f.enqueue(nw, msg, abort)
}

// deliverReply routes one Reply through the fault model onto the
// requester's reply channel. The reply has already been accounted.
func (f *Faults) deliverReply(ch chan Message, msg Message) error {
	v := f.decide(msg.Src, msg.Dst)
	f.applyStall(v)
	if v.drop {
		f.dropped.Add(1)
		f.mDropped.Inc()
		return nil
	}
	if v.dup {
		f.duplicated.Add(1)
		f.mDuplicated.Inc()
		f.redundantBytes.Add(int64(msg.Size()))
		f.mRedundantBytes.Add(int64(msg.Size()))
		f.replyLater(ch, msg, v.dupDel)
	}
	if v.delay > 0 {
		f.delayed.Add(1)
		f.mDelayed.Inc()
		f.replyLater(ch, msg, v.delay)
		return nil
	}
	f.replyNow(ch, msg)
	return nil
}

func (f *Faults) applyStall(v verdict) {
	if v.stall > 0 {
		f.stalls.Add(1)
		f.mStalls.Inc()
		time.Sleep(v.stall)
	}
}

// enqueue delivers into the destination inbox, honoring an optional
// abort escape and the injector's stop signal.
func (f *Faults) enqueue(nw *Network, msg Message, abort <-chan struct{}) error {
	if abort == nil {
		abort = f.stop
	}
	select {
	case nw.inbox[msg.Dst] <- msg:
		nw.mInboxDepth.Observe(int64(len(nw.inbox[msg.Dst])))
		return nil
	case <-abort:
		return fmt.Errorf("network: send of %v from %d to %d aborted", msg.Type, msg.Src, msg.Dst)
	}
}

// enqueueLater delivers a copy after a bounded pause on a goroutine the
// injector tracks, so Close can drain every late delivery before the
// inboxes close. Delivery is preferred whenever the inbox has room —
// even if Close has already been signalled, since the inboxes are still
// open at that point; a copy is abandoned (counted as dropped) only
// when delivery would block during shutdown.
func (f *Faults) enqueueLater(nw *Network, msg Message, d time.Duration) {
	f.inflight.Add(1)
	go func() {
		defer f.inflight.Done()
		if !f.pause(d) {
			f.dropped.Add(1)
			f.mDropped.Inc()
			return
		}
		select {
		case nw.inbox[msg.Dst] <- msg:
			nw.mInboxDepth.Observe(int64(len(nw.inbox[msg.Dst])))
			return
		default:
		}
		select {
		case nw.inbox[msg.Dst] <- msg:
			nw.mInboxDepth.Observe(int64(len(nw.inbox[msg.Dst])))
		case <-f.stop:
			f.dropped.Add(1)
			f.mDropped.Inc()
		}
	}()
}

// replyNow performs a non-blocking reply delivery: a full reply channel
// means the requester already has what it needs (duplicates from
// retries fill the buffer), so the copy is discarded and counted — the
// semantic equivalent of a network drop, covered by the retry protocol.
func (f *Faults) replyNow(ch chan Message, msg Message) {
	select {
	case ch <- msg:
	default:
		f.discarded.Add(1)
		f.mDiscarded.Inc()
	}
}

// replyLater is replyNow after a bounded pause, tracked for Close.
func (f *Faults) replyLater(ch chan Message, msg Message, d time.Duration) {
	f.inflight.Add(1)
	go func() {
		defer f.inflight.Done()
		if !f.pause(d) {
			f.dropped.Add(1)
			f.mDropped.Inc()
			return
		}
		f.replyNow(ch, msg)
	}()
}

// pause sleeps for d unless the injector is stopping; it reports
// whether the pause completed.
func (f *Faults) pause(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return false
	}
}
