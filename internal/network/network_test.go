package network

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Bus{}, 1); err == nil {
		t.Error("zero PEs accepted")
	}
	nw, err := New(4, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NPE() != 4 {
		t.Errorf("NPE = %d", nw.NPE())
	}
	if nw.Topology().Name() != "bus" {
		t.Errorf("default topology = %q", nw.Topology().Name())
	}
}

func TestSendDelivery(t *testing.T) {
	nw, _ := New(2, Bus{N: 2}, 4)
	msg := Message{Type: PageRequest, Src: 0, Dst: 1, Array: 3, Page: 7, Cell: 2}
	if err := nw.Send(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-nw.Inbox(1):
		if got.Array != 3 || got.Page != 7 || got.Cell != 2 {
			t.Errorf("delivered %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("message never delivered")
	}
}

func TestSendValidation(t *testing.T) {
	nw, _ := New(2, Bus{N: 2}, 1)
	if err := nw.Send(Message{Src: 0, Dst: 5}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := nw.Send(Message{Src: -1, Dst: 0}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestReplyPath(t *testing.T) {
	nw, _ := New(2, Bus{N: 2}, 1)
	req := Message{Type: PageRequest, Src: 0, Dst: 1, Reply: make(chan Message, 1)}
	if err := nw.Send(req); err != nil {
		t.Fatal(err)
	}
	got := <-nw.Inbox(1)
	rep := Message{Type: PageReply, Src: 1, Dst: 0, Payload: []float64{1, 2}}
	if err := nw.Reply(got, rep); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-req.Reply:
		if r.Type != PageReply || len(r.Payload) != 2 {
			t.Errorf("reply = %+v", r)
		}
	case <-time.After(time.Second):
		t.Fatal("reply never arrived")
	}
}

func TestReplyValidation(t *testing.T) {
	nw, _ := New(2, Bus{N: 2}, 1)
	if err := nw.Reply(Message{Src: 0}, Message{Src: 1, Dst: 0}); err == nil {
		t.Error("reply to request without channel accepted")
	}
	req := Message{Src: 0, Dst: 1, Reply: make(chan Message, 1)}
	if err := nw.Reply(req, Message{Src: 1, Dst: 1}); err == nil {
		t.Error("reply to wrong destination accepted")
	}
}

func TestCounters(t *testing.T) {
	nw, _ := New(3, Ring{N: 3}, 8)
	for i := 0; i < 5; i++ {
		if err := nw.Send(Message{Type: PageRequest, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.Send(Message{Type: PageReply, Src: 1, Dst: 0, Payload: make([]float64, 4)}); err != nil {
		t.Fatal(err)
	}
	c0 := nw.PECounters(0)
	if c0.Sent != 5 || c0.Received != 1 {
		t.Errorf("PE0 counters = %+v", c0)
	}
	c1 := nw.PECounters(1)
	if c1.Sent != 1 || c1.Received != 5 {
		t.Errorf("PE1 counters = %+v", c1)
	}
	tot := nw.Totals()
	if tot.Sent != 6 || tot.Received != 6 {
		t.Errorf("totals = %+v", tot)
	}
	if nw.CountByType(PageRequest) != 5 || nw.CountByType(PageReply) != 1 {
		t.Error("per-type counts wrong")
	}
	if nw.CountByType(MsgType(-1)) != 0 || nw.CountByType(MsgType(99)) != 0 {
		t.Error("out-of-range type should count 0")
	}
	m := nw.TrafficMatrix()
	if m[0][1] != 5 || m[1][0] != 1 || m[2][0] != 0 {
		t.Errorf("traffic matrix = %v", m)
	}
}

func TestMessageSize(t *testing.T) {
	m := Message{Payload: make([]float64, 4), Defined: make([]bool, 4)}
	if m.Size() != 32+32+4 {
		t.Errorf("Size = %d", m.Size())
	}
	empty := Message{}
	if empty.Size() != 32 {
		t.Errorf("empty Size = %d", empty.Size())
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		PageRequest: "page-request", PageReply: "page-reply",
		ReinitRequest: "reinit-request", ReinitGrant: "reinit-grant",
		ReduceSend: "reduce-send", ReduceBcast: "reduce-bcast", Halt: "halt",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), want)
		}
	}
	if MsgType(42).String() == "" {
		t.Error("unknown type has empty name")
	}
}

func TestBusTopology(t *testing.T) {
	b := Bus{N: 8}
	if b.Hops(3, 3) != 0 || b.Hops(0, 7) != 1 {
		t.Error("bus hops wrong")
	}
	if len(b.Route(2, 5)) != 1 || b.Route(2, 2) != nil {
		t.Error("bus route wrong")
	}
	if b.Links() != 1 {
		t.Error("bus links wrong")
	}
}

func TestRingTopology(t *testing.T) {
	r := Ring{N: 8}
	cases := []struct{ s, d, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 7, 1}, {1, 6, 3}, {7, 0, 1},
	}
	for _, c := range cases {
		if got := r.Hops(c.s, c.d); got != c.hops {
			t.Errorf("ring hops(%d,%d) = %d, want %d", c.s, c.d, got, c.hops)
		}
		if got := len(r.Route(c.s, c.d)); got != c.hops {
			t.Errorf("ring route(%d,%d) length = %d, want %d", c.s, c.d, got, c.hops)
		}
	}
	if r.Links() != 16 {
		t.Errorf("ring links = %d", r.Links())
	}
}

func TestMesh2D(t *testing.T) {
	m := NewMesh2D(16)
	if m.Cols != 4 || m.Rows != 4 {
		t.Fatalf("mesh for 16 PEs = %dx%d", m.Cols, m.Rows)
	}
	// PE 0 = (0,0); PE 15 = (3,3): Manhattan distance 6.
	if m.Hops(0, 15) != 6 {
		t.Errorf("mesh hops(0,15) = %d", m.Hops(0, 15))
	}
	if m.Hops(5, 5) != 0 {
		t.Error("self hops nonzero")
	}
	route := m.Route(0, 15)
	if len(route) != 6 {
		t.Errorf("route length = %d", len(route))
	}
	// Route continuity: each link starts where the previous ended.
	at := 0
	for _, l := range route {
		if l[0] != at {
			t.Fatalf("discontinuous route: %v", route)
		}
		at = l[1]
	}
	if at != 15 {
		t.Errorf("route ends at %d", at)
	}
	if m.Links() != 2*((3*4)+(4*3)) {
		t.Errorf("mesh links = %d", m.Links())
	}
	small := NewMesh2D(0)
	if small.Cols != 1 || small.Rows != 1 {
		t.Error("degenerate mesh wrong")
	}
}

func TestMeshNonSquare(t *testing.T) {
	m := NewMesh2D(6) // 3 cols x 2 rows
	if m.Cols*m.Rows < 6 {
		t.Fatalf("mesh too small: %dx%d", m.Cols, m.Rows)
	}
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			if len(m.Route(s, d)) != m.Hops(s, d) {
				t.Errorf("route/hops mismatch for %d->%d", s, d)
			}
		}
	}
}

func TestHypercube(t *testing.T) {
	if _, err := NewHypercube(6); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("zero accepted")
	}
	h, err := NewHypercube(8)
	if err != nil {
		t.Fatal(err)
	}
	if h.Hops(0, 7) != 3 || h.Hops(5, 5) != 0 || h.Hops(1, 2) != 2 {
		t.Error("hypercube hops wrong")
	}
	route := h.Route(0, 7)
	if len(route) != 3 {
		t.Errorf("route length = %d", len(route))
	}
	at := 0
	for _, l := range route {
		if l[0] != at {
			t.Fatalf("discontinuous route: %v", route)
		}
		at = l[1]
	}
	if at != 7 {
		t.Errorf("route ends at %d", at)
	}
	if h.Links() != 8*3 {
		t.Errorf("links = %d", h.Links())
	}
}

func TestEstimateContentionBusWorstCase(t *testing.T) {
	// All-to-one traffic on a bus: the single link carries everything.
	traffic := [][]int64{
		{0, 0, 0, 0},
		{10, 0, 0, 0},
		{10, 0, 0, 0},
		{10, 0, 0, 0},
	}
	rep := EstimateContention(Bus{N: 4}, traffic, 0.001)
	if rep.TotalMsgs != 30 || rep.MaxLinkLoad != 30 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Utilization <= 0 || rep.Utilization >= 1 {
		t.Errorf("utilization = %v", rep.Utilization)
	}
	if rep.QueueDelay < 1 {
		t.Errorf("queue delay = %v", rep.QueueDelay)
	}
}

func TestEstimateContentionMeshSpreadsLoad(t *testing.T) {
	traffic := make([][]int64, 16)
	for s := range traffic {
		traffic[s] = make([]int64, 16)
		for d := range traffic[s] {
			if s != d {
				traffic[s][d] = 1
			}
		}
	}
	bus := EstimateContention(Bus{N: 16}, traffic, 1e-6)
	mesh := EstimateContention(NewMesh2D(16), traffic, 1e-6)
	if mesh.MaxLinkLoad >= bus.MaxLinkLoad {
		t.Errorf("mesh hottest link %d not cooler than bus %d", mesh.MaxLinkLoad, bus.MaxLinkLoad)
	}
}

func TestEstimateContentionSaturation(t *testing.T) {
	traffic := [][]int64{{0, 1000}, {0, 0}}
	rep := EstimateContention(Bus{N: 2}, traffic, 1.0) // service time >> capacity
	if rep.Utilization >= 1 {
		t.Errorf("utilization must stay below 1, got %v", rep.Utilization)
	}
}

func TestPropertyHopsSymmetricAndRouteLengthMatches(t *testing.T) {
	h, _ := NewHypercube(16)
	topos := []Topology{Bus{N: 16}, Ring{N: 16}, NewMesh2D(16), h}
	f := func(sRaw, dRaw uint8) bool {
		s, d := int(sRaw%16), int(dRaw%16)
		for _, topo := range topos {
			if topo.Hops(s, d) != topo.Hops(d, s) {
				return false
			}
			if topo.Name() == "bus" {
				continue // bus routes are a shared-medium abstraction
			}
			if len(topo.Route(s, d)) != topo.Hops(s, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	h, _ := NewHypercube(32)
	topos := []Topology{Ring{N: 32}, NewMesh2D(32), h}
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw%32), int(bRaw%32), int(cRaw%32)
		for _, topo := range topos {
			if topo.Hops(a, c) > topo.Hops(a, b)+topo.Hops(b, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
