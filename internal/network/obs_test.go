package network

import (
	"testing"

	"repro/internal/obs"
)

// TestInstrumentRecordsDepthAndBytes: sends through an instrumented
// network land in the inbox-depth and message-size histograms without
// altering delivery or the traffic counters.
func TestInstrumentRecordsDepthAndBytes(t *testing.T) {
	nw, err := New(2, Bus{N: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	nw.Instrument(reg)

	for i := 0; i < 3; i++ {
		msg := Message{Type: PageRequest, Src: 0, Dst: 1, Payload: make([]float64, 4)}
		if err := nw.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	depth := snap.Histograms[MetricInboxDepth]
	if depth.Count != 3 {
		t.Errorf("%s count = %d, want 3", MetricInboxDepth, depth.Count)
	}
	// Depth is sampled after each enqueue with no receiver draining, so
	// the maximum observed depth is the full backlog.
	if depth.Max != 3 {
		t.Errorf("%s max = %d, want 3", MetricInboxDepth, depth.Max)
	}
	sizes := snap.Histograms[MetricMsgBytes]
	if sizes.Count != 3 {
		t.Errorf("%s count = %d, want 3", MetricMsgBytes, sizes.Count)
	}
	if want := int64((&Message{Payload: make([]float64, 4)}).Size()); sizes.Min != want {
		t.Errorf("%s min = %d, want %d", MetricMsgBytes, sizes.Min, want)
	}
	// Delivery and accounting are untouched.
	if got := nw.CountByType(PageRequest); got != 3 {
		t.Errorf("CountByType = %d, want 3", got)
	}
	if got := len(nw.Inbox(1)); got != 3 {
		t.Errorf("inbox depth = %d, want 3", got)
	}
}

// TestUninstrumentedNetworkStillWorks: the no-op path (nil registry).
func TestUninstrumentedNetworkStillWorks(t *testing.T) {
	nw, err := New(2, Bus{N: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw.Instrument(nil)
	if err := nw.Send(Message{Type: PageRequest, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if got := nw.Totals().Sent; got != 1 {
		t.Errorf("sent = %d, want 1", got)
	}
}
