package network

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{Drop: -0.1},
		{Drop: 1.5},
		{Dup: 2},
		{Delay: -1},
		{Stall: 1.01},
		{MaxDelay: -time.Millisecond},
		{MaxStall: -time.Millisecond},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
		if _, err := NewFaults(cfg, 2); err == nil {
			t.Errorf("NewFaults accepted config %d (%+v)", i, cfg)
		}
	}
	good := FaultConfig{Seed: 1, Drop: 0.5, Dup: 0.5, Delay: 0.5, Stall: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := NewFaults(good, 0); err == nil {
		t.Error("zero-PE injector accepted")
	}
}

func TestFaultDecisionsDeterministic(t *testing.T) {
	// Two injectors with the same seed must make bit-identical decisions
	// for the same per-link traffic order; a different seed must diverge.
	cfg := FaultConfig{Seed: 42, Drop: 0.3, Dup: 0.2, Delay: 0.2, MaxDelay: time.Millisecond}
	a, err := NewFaults(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFaults(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for src := 0; src < 4; src++ {
		for dst := 0; dst < 4; dst++ {
			for i := 0; i < 64; i++ {
				va, vb := a.decide(src, dst), b.decide(src, dst)
				if va != vb {
					t.Fatalf("link %d->%d msg %d: %+v vs %+v", src, dst, i, va, vb)
				}
				if va.drop || va.dup || va.delay > 0 {
					diverged = true
				}
			}
		}
	}
	if !diverged {
		t.Error("no fault decisions at 30% drop over 1024 messages")
	}
	other, err := NewFaults(FaultConfig{Seed: 43, Drop: 0.3, Dup: 0.2, Delay: 0.2, MaxDelay: time.Millisecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 64; i++ {
		va := a.decide(0, 1)
		if va != other.decide(0, 1) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 made identical decisions on 64 messages")
	}
}

func TestFaultPartitionAlwaysDrops(t *testing.T) {
	f, err := NewFaults(FaultConfig{Seed: 1, Partition: [][2]int{{1, 0}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if v := f.decide(1, 0); !v.drop {
			t.Fatalf("message %d crossed a partitioned link", i)
		}
		if v := f.decide(0, 1); v.drop {
			t.Fatalf("message %d dropped on the healthy reverse link", i)
		}
	}
}

func TestFaultsOnlyPageTraffic(t *testing.T) {
	// Control-plane traffic must never be faulted: a Drop=1 injector
	// still delivers reductions, reinit grants and halts.
	nw, err := New(2, Bus{N: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaults(FaultConfig{Seed: 1, Drop: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InjectFaults(f); err != nil {
		t.Fatal(err)
	}
	for _, typ := range []MsgType{ReduceSend, ReduceBcast, ReinitRequest, ReinitGrant, Halt} {
		if err := nw.Send(Message{Type: typ, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
		got := <-nw.Inbox(1)
		if got.Type != typ {
			t.Fatalf("control message %v arrived as %v", typ, got.Type)
		}
	}
	if err := nw.Send(Message{Type: PageRequest, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-nw.Inbox(1):
		t.Fatalf("page message %v crossed a Drop=1 link", m.Type)
	default:
	}
	if s := f.Stats(); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestFaultsDuplicateAccountedAsRedundant(t *testing.T) {
	// An injected duplicate shows up in FaultStats.RedundantBytes, never
	// in the network's clean counters.
	nw, err := New(2, Bus{N: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaults(FaultConfig{Seed: 1, Dup: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InjectFaults(f); err != nil {
		t.Fatal(err)
	}
	msg := Message{Type: PageReply, Src: 0, Dst: 1, Payload: make([]float64, 4)}
	if err := nw.Send(msg); err != nil {
		t.Fatal(err)
	}
	f.Close() // flush the duplicate's delayed delivery
	if got := nw.Totals().Sent; got != 1 {
		t.Errorf("clean counter Sent = %d, want 1 (duplicates account separately)", got)
	}
	s := f.Stats()
	if s.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", s.Duplicated)
	}
	if want := int64(msg.Size()); s.RedundantBytes != want {
		t.Errorf("RedundantBytes = %d, want %d", s.RedundantBytes, want)
	}
	// Original plus duplicate both arrive (order unspecified).
	for i := 0; i < 2; i++ {
		select {
		case <-nw.Inbox(1):
		default:
			t.Fatalf("only %d copies arrived, want 2", i)
		}
	}
}

func TestFaultsCloseDrainsDelayedDeliveries(t *testing.T) {
	// Close must wait out (or abandon) every delayed copy so that
	// CloseInboxes never races a late send onto a closed channel.
	nw, err := New(2, Bus{N: 2}, 64)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaults(FaultConfig{Seed: 9, Delay: 1, MaxDelay: 50 * time.Millisecond}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InjectFaults(f); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := nw.Send(Message{Type: PageRequest, Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	nw.CloseInboxes() // panics if a delayed copy is still in flight
	delivered := 0
	for range nw.Inbox(1) {
		delivered++
	}
	s := f.Stats()
	if int64(delivered)+s.Dropped != 32 {
		t.Errorf("delivered %d + abandoned %d != 32 sent", delivered, s.Dropped)
	}
	f.Close() // idempotent
}

func TestInjectFaultsSizeMismatch(t *testing.T) {
	nw, err := New(4, Bus{N: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFaults(FaultConfig{Seed: 1, Drop: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.InjectFaults(f); err == nil {
		t.Error("mismatched injector accepted")
	}
	if nw.Faults() != nil {
		t.Error("mismatched injector attached")
	}
}

func TestReplyFullChannelIsErrorNotPanic(t *testing.T) {
	nw, err := New(2, Bus{N: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	req := Message{Type: PageRequest, Src: 0, Dst: 1, Reply: make(chan Message, 1)}
	rep := Message{Type: PageReply, Src: 1, Dst: 0}
	if err := nw.Reply(req, rep); err != nil {
		t.Fatalf("first reply: %v", err)
	}
	err = nw.Reply(req, rep) // buffer of 1 is now full
	if err == nil {
		t.Fatal("second reply into a full channel succeeded")
	}
	if !errors.Is(err, ErrReplyFull) {
		t.Errorf("error %v does not wrap ErrReplyFull", err)
	}
}

func TestSendAbortUnblocksOnAbort(t *testing.T) {
	nw, err := New(2, Bus{N: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fill PE 1's single-slot inbox so the next send must block.
	if err := nw.Send(Message{Type: PageRequest, Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- nw.SendAbort(Message{Type: PageRequest, Src: 0, Dst: 1}, abort)
	}()
	select {
	case err := <-done:
		t.Fatalf("send into a full inbox returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(abort)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "aborted") {
			t.Errorf("aborted send returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("SendAbort did not unblock on abort")
	}
}

func TestCloseInboxesIdempotent(t *testing.T) {
	nw, err := New(2, Bus{N: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.CloseInboxes()
	nw.CloseInboxes() // second call must be a no-op, not a double-close panic
	if _, open := <-nw.Inbox(0); open {
		t.Error("inbox still open after CloseInboxes")
	}
}
