// Package network models the interconnect of a loosely-coupled MIMD
// machine (Bic, Nagel & Roy 1989, §1 and §4): PEs have no shared memory
// and exchange data exclusively by messages. Remote reads are
// request/reply pairs — a PE asks the owner of a page for the page, and
// the owner replies with a snapshot once the requested element is
// defined.
//
// The package provides message delivery over per-PE inboxes, traffic
// accounting (messages, bytes, hops), several topologies (bus, ring, 2-D
// mesh, hypercube) with deterministic routing for hop counts, and an
// analytic link-contention estimator — the paper's §9 lists "network
// contention" as the next simulation refinement.
package network

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	PageRequest   MsgType = iota // ask owner for the page holding a cell
	PageReply                    // page snapshot (possibly partial)
	ReinitRequest                // §5: PE is done with an array version
	ReinitGrant                  // §5: host broadcasts array reusable
	ReduceSend                   // §9: partial reduction result to host
	ReduceBcast                  // §9: reduced scalar broadcast
	Halt                         // engine shutdown
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case PageRequest:
		return "page-request"
	case PageReply:
		return "page-reply"
	case ReinitRequest:
		return "reinit-request"
	case ReinitGrant:
		return "reinit-grant"
	case ReduceSend:
		return "reduce-send"
	case ReduceBcast:
		return "reduce-bcast"
	case Halt:
		return "halt"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Message is one interconnect packet.
type Message struct {
	Type MsgType
	Src  int
	Dst  int
	// Seq is the requester-assigned sequence number of a page fetch.
	// A retransmitted request reuses the sequence of the fetch it
	// retries, and a reply echoes the sequence of the request it
	// answers, so requesters can match replies to fetches and suppress
	// duplicates on a lossy interconnect (see internal/machine).
	Seq     uint64
	Array   int       // array identifier
	Page    int       // page number
	Cell    int       // page-relative cell of interest (requests)
	Value   float64   // scalar payload (reductions)
	Payload []float64 // page snapshot values (replies)
	Defined []bool    // snapshot defined bits; nil = fully defined
	// Reply is the requester's return channel for request/reply
	// exchanges; it must be buffered so repliers never block.
	Reply chan Message
}

// Size returns the modeled wire size of the message in bytes: a 32-byte
// header plus 8 bytes per payload element and 1 per defined bit.
func (m *Message) Size() int {
	return 32 + 8*len(m.Payload) + len(m.Defined)
}

// Counters aggregates traffic for one PE or the whole network.
type Counters struct {
	Sent     int64
	Received int64
	Bytes    int64
	Hops     int64
}

// Network connects n PEs with per-PE inboxes and traffic accounting.
// Send and Reply are safe for concurrent use.
type Network struct {
	n      int
	topo   Topology
	inbox  []chan Message
	sent   []atomic.Int64
	recv   []atomic.Int64
	bytes  []atomic.Int64
	hops   []atomic.Int64
	byType [Halt + 1]atomic.Int64
	pair   []atomic.Int64 // n*n traffic matrix (messages)

	// faults, when non-nil, subjects page traffic to the configured
	// fault model (see faults.go). nil = perfect delivery.
	faults *Faults

	closeOnce sync.Once

	// Observability handles; nil (no-op) unless Instrument was called
	// with a live registry. Instrumentation observes traffic — it never
	// alters delivery, ordering or accounting.
	mInboxDepth *obs.Histogram
	mMsgBytes   *obs.Histogram
}

// Observability signal names recorded by an instrumented Network.
const (
	// MetricInboxDepth is a histogram of destination-inbox depths
	// sampled after each enqueue: sustained high buckets mean PEs are
	// producing messages faster than handlers drain them.
	MetricInboxDepth = "network.inbox_depth"
	// MetricMsgBytes is a histogram of modeled wire sizes per message.
	MetricMsgBytes = "network.msg_bytes"
)

// Instrument attaches observability instruments from the registry (a
// nil registry detaches them). Not safe to call concurrently with
// Send/Reply; instrument before the machine starts.
func (nw *Network) Instrument(r *obs.Registry) {
	nw.mInboxDepth = r.Histogram(MetricInboxDepth, obs.DepthBuckets)
	nw.mMsgBytes = r.Histogram(MetricMsgBytes, obs.ByteBuckets)
}

// New creates a network of n PEs on the given topology with inboxes of
// the given buffer depth.
func New(n int, topo Topology, inboxDepth int) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("network: need at least one PE, got %d", n)
	}
	if topo == nil {
		topo = Bus{}
	}
	if inboxDepth < 1 {
		inboxDepth = 1
	}
	nw := &Network{
		n:     n,
		topo:  topo,
		inbox: make([]chan Message, n),
		sent:  make([]atomic.Int64, n),
		recv:  make([]atomic.Int64, n),
		bytes: make([]atomic.Int64, n),
		hops:  make([]atomic.Int64, n),
		pair:  make([]atomic.Int64, n*n),
	}
	for i := range nw.inbox {
		nw.inbox[i] = make(chan Message, inboxDepth)
	}
	return nw, nil
}

// NPE returns the number of PEs.
func (nw *Network) NPE() int { return nw.n }

// Topology returns the configured topology.
func (nw *Network) Topology() Topology { return nw.topo }

// Inbox returns PE pe's receive channel.
func (nw *Network) Inbox(pe int) <-chan Message { return nw.inbox[pe] }

// CloseInboxes closes every inbox, releasing receivers. It must only be
// called once all senders have finished (with faults attached, after
// Faults.Close has drained delayed deliveries). Calling it more than
// once is a no-op, so layered teardown paths need not coordinate.
func (nw *Network) CloseInboxes() {
	nw.closeOnce.Do(func() {
		for _, ch := range nw.inbox {
			close(ch)
		}
	})
}

// Send counts and delivers msg to its destination inbox. Delivery blocks
// if the inbox is full, modeling finite buffering. With a fault injector
// attached, page traffic may be dropped, duplicated or delayed; the
// message is accounted either way (it was sent — delivery is the fault
// layer's business).
func (nw *Network) Send(msg Message) error {
	if msg.Dst < 0 || msg.Dst >= nw.n || msg.Src < 0 || msg.Src >= nw.n {
		return fmt.Errorf("network: message %v from %d to %d out of range [0,%d)",
			msg.Type, msg.Src, msg.Dst, nw.n)
	}
	nw.account(&msg)
	if nw.faults != nil && faultable(msg.Type) {
		return nw.faults.deliverSend(nw, msg, nil)
	}
	nw.inbox[msg.Dst] <- msg
	nw.mInboxDepth.Observe(int64(len(nw.inbox[msg.Dst])))
	return nil
}

// Account records a message in the traffic counters without delivering
// it, for protocol layers that resolve exchanges out of band (e.g. the
// host-processor coordinator) but still want their traffic modeled.
func (nw *Network) Account(msg Message) error {
	if msg.Dst < 0 || msg.Dst >= nw.n || msg.Src < 0 || msg.Src >= nw.n {
		return fmt.Errorf("network: message %v from %d to %d out of range [0,%d)",
			msg.Type, msg.Src, msg.Dst, nw.n)
	}
	nw.account(&msg)
	return nil
}

// SendAbort is Send with an abort escape: if the destination inbox is
// full and abort fires, the send is abandoned with an error instead of
// blocking forever. Used by execution engines tearing down after a
// failure.
func (nw *Network) SendAbort(msg Message, abort <-chan struct{}) error {
	if msg.Dst < 0 || msg.Dst >= nw.n || msg.Src < 0 || msg.Src >= nw.n {
		return fmt.Errorf("network: message %v from %d to %d out of range [0,%d)",
			msg.Type, msg.Src, msg.Dst, nw.n)
	}
	nw.account(&msg)
	if nw.faults != nil && faultable(msg.Type) {
		return nw.faults.deliverSend(nw, msg, abort)
	}
	select {
	case nw.inbox[msg.Dst] <- msg:
		nw.mInboxDepth.Observe(int64(len(nw.inbox[msg.Dst])))
		return nil
	case <-abort:
		return fmt.Errorf("network: send of %v from %d to %d aborted", msg.Type, msg.Src, msg.Dst)
	}
}

// ErrReplyFull reports a reply that found the requester's channel full.
// On a perfect interconnect that is a protocol violation (the requester
// broke the single-outstanding-request discipline); under the retry
// protocol it merely means a redundant reply had nowhere to land, which
// the requester's retransmission covers. Either way it is a diagnosed
// error, never a panic — callers decide whether to abort or absorb it.
var ErrReplyFull = errors.New("reply channel full")

// Reply counts the message and delivers it directly on the requester's
// reply channel. The reply channel must be buffered; a full reply
// channel yields an error wrapping ErrReplyFull rather than blocking
// the replier or crashing the process.
func (nw *Network) Reply(to Message, msg Message) error {
	if to.Reply == nil {
		return fmt.Errorf("network: request %v from %d carried no reply channel", to.Type, to.Src)
	}
	if msg.Dst != to.Src {
		return fmt.Errorf("network: reply destination %d does not match requester %d", msg.Dst, to.Src)
	}
	nw.account(&msg)
	if nw.faults != nil && faultable(msg.Type) {
		return nw.faults.deliverReply(to.Reply, msg)
	}
	select {
	case to.Reply <- msg:
		return nil
	default:
		return fmt.Errorf("network: %w for %v from %d to %d", ErrReplyFull, msg.Type, msg.Src, msg.Dst)
	}
}

func (nw *Network) account(msg *Message) {
	sz := int64(msg.Size())
	nw.mMsgBytes.Observe(sz)
	h := int64(nw.topo.Hops(msg.Src, msg.Dst))
	nw.sent[msg.Src].Add(1)
	nw.recv[msg.Dst].Add(1)
	nw.bytes[msg.Src].Add(sz)
	nw.hops[msg.Src].Add(h)
	if int(msg.Type) <= int(Halt) {
		nw.byType[msg.Type].Add(1)
	}
	nw.pair[msg.Src*nw.n+msg.Dst].Add(1)
}

// PECounters returns the traffic originated/terminated at PE pe.
func (nw *Network) PECounters(pe int) Counters {
	return Counters{
		Sent:     nw.sent[pe].Load(),
		Received: nw.recv[pe].Load(),
		Bytes:    nw.bytes[pe].Load(),
		Hops:     nw.hops[pe].Load(),
	}
}

// Totals returns network-wide traffic counters.
func (nw *Network) Totals() Counters {
	var c Counters
	for i := 0; i < nw.n; i++ {
		c.Sent += nw.sent[i].Load()
		c.Received += nw.recv[i].Load()
		c.Bytes += nw.bytes[i].Load()
		c.Hops += nw.hops[i].Load()
	}
	return c
}

// CountByType returns how many messages of type t were sent.
func (nw *Network) CountByType(t MsgType) int64 {
	if int(t) > int(Halt) || t < 0 {
		return 0
	}
	return nw.byType[t].Load()
}

// TrafficMatrix returns a copy of the n×n message-count matrix
// (row = source, column = destination).
func (nw *Network) TrafficMatrix() [][]int64 {
	m := make([][]int64, nw.n)
	for s := 0; s < nw.n; s++ {
		m[s] = make([]int64, nw.n)
		for d := 0; d < nw.n; d++ {
			m[s][d] = nw.pair[s*nw.n+d].Load()
		}
	}
	return m
}

// ContentionReport summarizes analytic link contention for a traffic
// matrix routed over a topology.
type ContentionReport struct {
	Links       int     // directed links in the topology
	TotalMsgs   int64   // messages routed
	MaxLinkLoad int64   // messages crossing the hottest link
	AvgLinkLoad float64 // mean messages per link
	// Utilization and QueueDelay model each link as an M/M/1 server with
	// the given per-message service time and a uniform message arrival
	// process spread over the run's duration.
	Utilization float64 // hottest-link utilization in [0, 1)
	QueueDelay  float64 // expected sojourn/service ratio on hottest link
}

// EstimateContention routes the traffic matrix deterministically over
// the topology, accumulates per-link loads, and applies an M/M/1
// approximation: with per-message service time s and run duration T,
// link utilization rho = load*s/T and sojourn time s/(1-rho). msgsPerUnit
// is load*s/T for the hottest link normalization; callers typically pass
// total remote reads over total accesses so that "minimal degradation"
// (the paper's abstract) is visible as utilization << 1.
func EstimateContention(topo Topology, traffic [][]int64, serviceOverDuration float64) ContentionReport {
	loads := map[[2]int]int64{}
	var total int64
	for s := range traffic {
		for d, m := range traffic[s] {
			if m == 0 || s == d {
				continue
			}
			total += m
			for _, link := range topo.Route(s, d) {
				loads[link] += m
			}
		}
	}
	rep := ContentionReport{Links: topo.Links(), TotalMsgs: total}
	var sum int64
	for _, l := range loads {
		sum += l
		if l > rep.MaxLinkLoad {
			rep.MaxLinkLoad = l
		}
	}
	if rep.Links > 0 {
		rep.AvgLinkLoad = float64(sum) / float64(rep.Links)
	}
	rho := float64(rep.MaxLinkLoad) * serviceOverDuration
	if rho >= 1 {
		rho = math.Nextafter(1, 0) // saturated
	}
	rep.Utilization = rho
	if rho < 1 {
		rep.QueueDelay = 1 / (1 - rho)
	}
	return rep
}

// Topology abstracts the physical interconnect for hop counting and
// deterministic routing.
type Topology interface {
	// Hops returns the path length between two PEs (0 when src == dst).
	Hops(src, dst int) int
	// Route returns the ordered directed links (pairs of PE ids) a
	// message traverses from src to dst.
	Route(src, dst int) [][2]int
	// Links returns the number of directed links.
	Links() int
	// Name returns a short topology name.
	Name() string
}

// Bus is a single shared medium: every distinct pair is one hop over the
// single shared link, which makes the bus the contention worst case.
type Bus struct{ N int }

// Hops implements Topology.
func (Bus) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// Route implements Topology: all traffic shares one logical link.
func (Bus) Route(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	return [][2]int{{-1, -1}}
}

// Links implements Topology.
func (Bus) Links() int { return 1 }

// Name implements Topology.
func (Bus) Name() string { return "bus" }

// Ring connects PE i to (i±1) mod N; routing takes the shorter arc,
// breaking ties toward increasing PE numbers.
type Ring struct{ N int }

// Hops implements Topology.
func (r Ring) Hops(src, dst int) int {
	if r.N == 0 {
		return 0
	}
	d := absInt(src - dst)
	if r.N-d < d {
		d = r.N - d
	}
	return d
}

// Route implements Topology.
func (r Ring) Route(src, dst int) [][2]int {
	if src == dst || r.N == 0 {
		return nil
	}
	fwd := ((dst-src)%r.N + r.N) % r.N
	step := 1
	if fwd > r.N-fwd {
		step = -1
	}
	var links [][2]int
	for at := src; at != dst; {
		next := ((at+step)%r.N + r.N) % r.N
		links = append(links, [2]int{at, next})
		at = next
	}
	return links
}

// Links implements Topology.
func (r Ring) Links() int { return 2 * r.N }

// Name implements Topology.
func (Ring) Name() string { return "ring" }

// Mesh2D arranges N PEs in a near-square grid with dimension-ordered
// (X-then-Y) routing. PEs number row-major.
type Mesh2D struct {
	Cols int
	Rows int
}

// NewMesh2D returns a near-square mesh holding at least n PEs.
func NewMesh2D(n int) Mesh2D {
	if n <= 0 {
		return Mesh2D{Cols: 1, Rows: 1}
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	return Mesh2D{Cols: cols, Rows: rows}
}

func (m Mesh2D) coords(pe int) (x, y int) { return pe % m.Cols, pe / m.Cols }

// Hops implements Topology (Manhattan distance).
func (m Mesh2D) Hops(src, dst int) int {
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	return absInt(sx-dx) + absInt(sy-dy)
}

// Route implements Topology with X-then-Y dimension-ordered routing.
func (m Mesh2D) Route(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	var links [][2]int
	at := src
	ax, ay := m.coords(src)
	dx, dy := m.coords(dst)
	for ax != dx {
		step := 1
		if dx < ax {
			step = -1
		}
		next := at + step
		links = append(links, [2]int{at, next})
		at, ax = next, ax+step
	}
	for ay != dy {
		step := 1
		if dy < ay {
			step = -1
		}
		next := at + step*m.Cols
		links = append(links, [2]int{at, next})
		at, ay = next, ay+step
	}
	return links
}

// Links implements Topology (directed links).
func (m Mesh2D) Links() int {
	horiz := (m.Cols - 1) * m.Rows
	vert := m.Cols * (m.Rows - 1)
	return 2 * (horiz + vert)
}

// Name implements Topology.
func (m Mesh2D) Name() string { return fmt.Sprintf("mesh%dx%d", m.Cols, m.Rows) }

// Hypercube connects PEs differing in one address bit. N must be a power
// of two; routing corrects address bits from least significant up
// (e-cube routing).
type Hypercube struct{ N int }

// NewHypercube returns a hypercube of n PEs; n must be a power of two.
func NewHypercube(n int) (Hypercube, error) {
	if n <= 0 || n&(n-1) != 0 {
		return Hypercube{}, fmt.Errorf("network: hypercube size %d is not a power of two", n)
	}
	return Hypercube{N: n}, nil
}

// Hops implements Topology (Hamming distance).
func (Hypercube) Hops(src, dst int) int { return bits.OnesCount(uint(src ^ dst)) }

// Route implements Topology (e-cube routing).
func (h Hypercube) Route(src, dst int) [][2]int {
	if src == dst {
		return nil
	}
	var links [][2]int
	at := src
	diff := src ^ dst
	for bit := 0; diff != 0; bit++ {
		mask := 1 << bit
		if diff&mask != 0 {
			next := at ^ mask
			links = append(links, [2]int{at, next})
			at = next
			diff &^= mask
		}
	}
	return links
}

// Links implements Topology.
func (h Hypercube) Links() int {
	if h.N == 0 {
		return 0
	}
	return h.N * bits.TrailingZeros(uint(h.N))
}

// Name implements Topology.
func (Hypercube) Name() string { return "hypercube" }

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
