package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersCountAndAdd(t *testing.T) {
	var c Counters
	c.Count(Write)
	c.Count(LocalRead)
	c.Count(LocalRead)
	c.Count(CachedRead)
	c.Count(RemoteRead)
	if c.Writes != 1 || c.LocalReads != 2 || c.CachedReads != 1 || c.RemoteReads != 1 {
		t.Errorf("counters = %+v", c)
	}
	var d Counters
	d.Add(c)
	d.Add(c)
	if d.Reads() != 8 || d.Accesses() != 10 {
		t.Errorf("after Add: reads=%d accesses=%d", d.Reads(), d.Accesses())
	}
}

func TestRemotePercent(t *testing.T) {
	c := Counters{LocalReads: 90, RemoteReads: 10}
	if got := c.RemotePercent(); math.Abs(got-10) > 1e-12 {
		t.Errorf("RemotePercent = %v", got)
	}
	zero := Counters{}
	if zero.RemotePercent() != 0 {
		t.Error("zero reads should give 0%")
	}
	allRemote := Counters{RemoteReads: 5}
	if allRemote.RemotePercent() != 100 {
		t.Error("all-remote should give 100%")
	}
}

func TestCachedPercent(t *testing.T) {
	c := Counters{LocalReads: 50, CachedReads: 25, RemoteReads: 25}
	if c.CachedPercent() != 25 {
		t.Errorf("CachedPercent = %v", c.CachedPercent())
	}
	if (Counters{}).CachedPercent() != 0 {
		t.Error("zero reads should give 0%")
	}
}

func TestCountersString(t *testing.T) {
	s := Counters{Writes: 1, LocalReads: 2, RemoteReads: 1}.String()
	if !strings.Contains(s, "writes=1") || !strings.Contains(s, "remote=1") {
		t.Errorf("String = %q", s)
	}
}

func TestAccessString(t *testing.T) {
	want := map[Access]string{
		Write: "write", LocalRead: "local-read",
		CachedRead: "cached-read", RemoteRead: "remote-read",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %q", int(a), a.String())
		}
	}
	if Access(9).String() == "" {
		t.Error("unknown access empty")
	}
}

func TestPerPETotalsAndExtract(t *testing.T) {
	p := PerPE{
		{Writes: 1, LocalReads: 10, CachedReads: 2, RemoteReads: 3},
		{Writes: 2, LocalReads: 20, CachedReads: 4, RemoteReads: 6},
	}
	tot := p.Totals()
	if tot.Writes != 3 || tot.LocalReads != 30 || tot.CachedReads != 6 || tot.RemoteReads != 9 {
		t.Errorf("totals = %+v", tot)
	}
	if got := p.Extract(RemoteRead); got[0] != 3 || got[1] != 6 {
		t.Errorf("Extract(RemoteRead) = %v", got)
	}
	if got := p.Extract(Write); got[0] != 1 || got[1] != 2 {
		t.Errorf("Extract(Write) = %v", got)
	}
	if got := p.Extract(LocalRead); got[0] != 10 {
		t.Errorf("Extract(LocalRead) = %v", got)
	}
	if got := p.Extract(CachedRead); got[1] != 4 {
		t.Errorf("Extract(CachedRead) = %v", got)
	}
}

func TestBalanceOfUniform(t *testing.T) {
	b := BalanceOf([]int64{100, 100, 100, 100})
	if b.CV != 0 || b.Imbalance != 1 || b.Min != 100 || b.Max != 100 {
		t.Errorf("uniform balance = %+v", b)
	}
}

func TestBalanceOfSkewed(t *testing.T) {
	b := BalanceOf([]int64{0, 0, 0, 400})
	if b.Mean != 100 {
		t.Errorf("mean = %v", b.Mean)
	}
	if b.Imbalance != 4 {
		t.Errorf("imbalance = %v", b.Imbalance)
	}
	if b.CV <= 1 {
		t.Errorf("CV = %v, want > 1 for this skew", b.CV)
	}
}

func TestBalanceOfEmptyAndZero(t *testing.T) {
	if b := BalanceOf(nil); b.Mean != 0 || b.CV != 0 {
		t.Errorf("empty balance = %+v", b)
	}
	if b := BalanceOf([]int64{0, 0}); b.CV != 0 || b.Imbalance != 0 {
		t.Errorf("all-zero balance = %+v", b)
	}
}

func TestFigureTable(t *testing.T) {
	f := Figure{
		Title:  "Figure 1",
		XLabel: "PEs",
		YLabel: "% remote",
		Series: []Series{
			{Label: "Cache, ps 32", X: []float64{1, 4}, Y: []float64{0, 2.5}},
			{Label: "No Cache, ps 32", X: []float64{1, 4, 8}, Y: []float64{0, 5, 7.5}},
		},
	}
	out := f.Table()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Cache, ps 32") {
		t.Errorf("table missing header: %q", out)
	}
	if !strings.Contains(out, "2.50") || !strings.Contains(out, "7.50") {
		t.Errorf("table missing values:\n%s", out)
	}
	// Missing point rendered as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing point not dashed:\n%s", out)
	}
}

func TestFigureChart(t *testing.T) {
	f := Figure{
		Title:  "Test",
		XLabel: "PEs",
		YLabel: "%",
		Series: []Series{
			{Label: "a", X: []float64{1, 2, 4}, Y: []float64{0, 50, 100}},
			{Label: "b", X: []float64{1, 2, 4}, Y: []float64{100, 50, 0}},
		},
	}
	out := f.Chart(8)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("chart missing marks:\n%s", out)
	}
	if !strings.Contains(out, "A = a") || !strings.Contains(out, "B = b") {
		t.Errorf("chart missing legend:\n%s", out)
	}
	// Tiny height is clamped, flat data does not divide by zero.
	flat := Figure{Series: []Series{{Label: "c", X: []float64{1}, Y: []float64{5}}}}
	if flat.Chart(1) == "" {
		t.Error("flat chart empty")
	}
	empty := Figure{Title: "e"}
	if !strings.Contains(empty.Chart(5), "no data") {
		t.Error("empty chart should say no data")
	}
}

func TestPropertyBalanceBounds(t *testing.T) {
	// Property: Min <= Mean <= Max, CV >= 0, and for nonzero means
	// Imbalance >= 1.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
		}
		b := BalanceOf(vals)
		if float64(b.Min) > b.Mean+1e-9 || b.Mean > float64(b.Max)+1e-9 {
			return false
		}
		if b.CV < 0 {
			return false
		}
		if b.Mean > 0 && b.Imbalance < 1-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRemotePlusCachedWithinBounds(t *testing.T) {
	// Property: percentages are within [0, 100] and sum <= 100.
	f := func(l, cch, r uint16) bool {
		c := Counters{LocalReads: int64(l), CachedReads: int64(cch), RemoteReads: int64(r)}
		rp, cp := c.RemotePercent(), c.CachedPercent()
		return rp >= 0 && rp <= 100 && cp >= 0 && cp <= 100 && rp+cp <= 100+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		XLabel: "PEs",
		Series: []Series{
			{Label: "Cache, ps 32", X: []float64{1, 4}, Y: []float64{0, 2.5}},
			{Label: "No Cache", X: []float64{4}, Y: []float64{5}},
		},
	}
	got := f.CSV()
	want := "\"Cache, ps 32\""
	if !strings.Contains(got, want) {
		t.Errorf("CSV lacks quoted label: %q", got)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines: %q", len(lines), got)
	}
	if lines[1] != "1,0," {
		t.Errorf("row 1 = %q (missing point should be empty)", lines[1])
	}
	if lines[2] != "4,2.5,5" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestCSVQuote(t *testing.T) {
	if csvQuote("plain") != "plain" {
		t.Error("plain string quoted")
	}
	if csvQuote(`a"b`) != `"a""b"` {
		t.Errorf("quote escaping = %q", csvQuote(`a"b`))
	}
}

func TestFigureSVG(t *testing.T) {
	f := Figure{
		Title:  "Fig <1> & more",
		XLabel: "PEs",
		YLabel: "% remote",
		Series: []Series{
			{Label: "Cache", X: []float64{1, 4, 16}, Y: []float64{0, 2.5, 3}},
			{Label: "No Cache", X: []float64{1, 4, 16}, Y: []float64{0, 50, 90}},
		},
	}
	svg := f.SVG(480, 320)
	for _, want := range []string{"<svg", "</svg>", "polyline", "Fig &lt;1&gt; &amp; more", "No Cache"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG lacks %q", want)
		}
	}
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Errorf("polyline count = %d, want 2", n)
	}
	if n := strings.Count(svg, "<circle"); n != 6 {
		t.Errorf("marker count = %d, want 6", n)
	}
}

func TestFigureSVGDegenerate(t *testing.T) {
	empty := Figure{Title: "e"}
	if svg := empty.SVG(10, 10); !strings.Contains(svg, "no data") {
		t.Error("empty figure SVG lacks placeholder")
	}
	// Flat series must not divide by zero.
	flat := Figure{Series: []Series{{Label: "f", X: []float64{3}, Y: []float64{7}}}}
	if svg := flat.SVG(200, 150); !strings.Contains(svg, "<circle") {
		t.Error("flat figure lost its point")
	}
}
