package stats

import (
	"fmt"
	"math"
	"strings"
)

// SVG renders the figure as a self-contained SVG line chart — axes,
// tick labels, one polyline with point markers per series, and a
// legend. Pure standard library; suitable for embedding the
// regenerated paper figures in reports.
func (f *Figure) SVG(width, height int) string {
	if width < 160 {
		width = 160
	}
	if height < 120 {
		height = 120
	}
	const (
		marginL = 64
		marginR = 16
		marginT = 28
		marginB = 40
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xs := unionX(f.Series)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", marginL, escapeXML(f.Title))

	if len(xs) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d">(no data)</text>`+"\n", marginL, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	xmin, xmax := xs[0], xs[len(xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if ymin > ymax {
		ymin, ymax = 0, 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the Y range slightly so extreme points are not clipped.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return float64(marginL) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (ymax-y)/(ymax-ymin)*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW)/2, height-8, escapeXML(f.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		marginT+int(plotH)/2, marginT+int(plotH)/2, escapeXML(f.YLabel))

	// Y ticks (4 divisions).
	for i := 0; i <= 4; i++ {
		yv := ymin + (ymax-ymin)*float64(i)/4
		y := py(yv)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%.4g</text>`+"\n", marginL-6, y+4, yv)
	}
	// X ticks at data points.
	for _, x := range xs {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%g</text>`+"\n",
			px(x), height-marginB+14, x)
	}

	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"}
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 14*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			width-marginR-136, ly+9, escapeXML(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
