// Package stats provides the measurement vocabulary of Bic, Nagel & Roy
// (1989) §6–§7: every array access is classified as a write (always
// local under owner-computes), a local read, a cached read, or a remote
// read; results are reported as the percentage of reads that are remote
// ("% of Reads Remote") and as per-PE distributions for load-balance
// analysis (Figure 5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Access classifies one array access.
type Access int

// Access classes (§7: "write (always local), local read, cached read,
// remote read").
const (
	Write Access = iota
	LocalRead
	CachedRead
	RemoteRead
)

// String returns the access class name.
func (a Access) String() string {
	switch a {
	case Write:
		return "write"
	case LocalRead:
		return "local-read"
	case CachedRead:
		return "cached-read"
	case RemoteRead:
		return "remote-read"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Counters accumulates access counts for one PE or one whole run.
type Counters struct {
	Writes      int64
	LocalReads  int64
	CachedReads int64
	RemoteReads int64
}

// Count records one access of class a.
func (c *Counters) Count(a Access) {
	switch a {
	case Write:
		c.Writes++
	case LocalRead:
		c.LocalReads++
	case CachedRead:
		c.CachedReads++
	case RemoteRead:
		c.RemoteReads++
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Writes += other.Writes
	c.LocalReads += other.LocalReads
	c.CachedReads += other.CachedReads
	c.RemoteReads += other.RemoteReads
}

// Reads returns the total number of reads of any class.
func (c Counters) Reads() int64 { return c.LocalReads + c.CachedReads + c.RemoteReads }

// Accesses returns reads plus writes.
func (c Counters) Accesses() int64 { return c.Reads() + c.Writes }

// RemotePercent returns the paper's headline metric: the percentage of
// all reads that were remote. Zero reads yields 0.
func (c Counters) RemotePercent() float64 {
	r := c.Reads()
	if r == 0 {
		return 0
	}
	return 100 * float64(c.RemoteReads) / float64(r)
}

// CachedPercent returns the percentage of reads served from the cache.
func (c Counters) CachedPercent() float64 {
	r := c.Reads()
	if r == 0 {
		return 0
	}
	return 100 * float64(c.CachedReads) / float64(r)
}

// String renders the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("writes=%d local=%d cached=%d remote=%d (%.2f%% remote)",
		c.Writes, c.LocalReads, c.CachedReads, c.RemoteReads, c.RemotePercent())
}

// PerPE holds one Counters per processing element.
type PerPE []Counters

// Totals sums all PEs.
func (p PerPE) Totals() Counters {
	var t Counters
	for _, c := range p {
		t.Add(c)
	}
	return t
}

// Balance summarizes how evenly a quantity is spread over PEs.
type Balance struct {
	Min, Max  int64
	Mean      float64
	StdDev    float64
	CV        float64 // coefficient of variation (stddev/mean); 0 = perfect
	Imbalance float64 // max/mean; 1 = perfect
}

// BalanceOf computes load-balance statistics for a per-PE series.
func BalanceOf(vals []int64) Balance {
	if len(vals) == 0 {
		return Balance{}
	}
	b := Balance{Min: vals[0], Max: vals[0]}
	var sum float64
	for _, v := range vals {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
		sum += float64(v)
	}
	b.Mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := float64(v) - b.Mean
		ss += d * d
	}
	b.StdDev = math.Sqrt(ss / float64(len(vals)))
	if b.Mean != 0 {
		b.CV = b.StdDev / b.Mean
		b.Imbalance = float64(b.Max) / b.Mean
	}
	return b
}

// Extract pulls one field across a PerPE slice.
func (p PerPE) Extract(a Access) []int64 {
	out := make([]int64, len(p))
	for i, c := range p {
		switch a {
		case Write:
			out[i] = c.Writes
		case LocalRead:
			out[i] = c.LocalReads
		case CachedRead:
			out[i] = c.CachedReads
		case RemoteRead:
			out[i] = c.RemoteReads
		}
	}
	return out
}

// Series is one labeled curve of a figure: Y(X) with a legend label,
// e.g. "Cache, ps 32" over PE counts.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a set of series sharing axes, matching one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table renders the figure as an aligned text table: one row per X
// value, one column per series. This is the canonical regeneration
// format for EXPERIMENTS.md.
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	// Header.
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %16s", s.Label)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 12+len(f.Series)*19))
	b.WriteString("\n")
	// Collect the union of X values in order.
	xs := unionX(f.Series)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&b, " | %16.2f", y)
			} else {
				fmt.Fprintf(&b, " | %16s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Chart renders the figure as a coarse ASCII chart (height rows), with
// one letter per series, for terminal inspection of curve shapes.
func (f *Figure) Chart(height int) string {
	if height < 4 {
		height = 4
	}
	xs := unionX(f.Series)
	if len(xs) == 0 {
		return f.Title + "\n(no data)\n"
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if ymin > ymax {
		return f.Title + "\n(no data)\n"
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	width := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width*4))
	}
	for si, s := range f.Series {
		mark := byte('A' + si%26)
		for i, x := range s.X {
			col := indexOf(xs, x) * 4
			row := int(math.Round((ymax - s.Y[i]) / (ymax - ymin) * float64(height-1)))
			if row >= 0 && row < height && col < len(grid[row]) {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel)
	for r, line := range grid {
		yval := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yval, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width*4))
	fmt.Fprintf(&b, "%8s  ", "")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-4g", x)
	}
	b.WriteString("\n")
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%8s  %c = %s\n", "", byte('A'+si%26), s.Label)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values: a header row of
// series labels, then one row per X value. Missing points are empty
// fields. Labels containing commas or quotes are quoted per RFC 4180.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvQuote(f.XLabel))
	for _, s := range f.Series {
		b.WriteString(",")
		b.WriteString(csvQuote(s.Label))
	}
	b.WriteString("\n")
	for _, x := range unionX(f.Series) {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteString(",")
			if y, ok := lookupY(s, x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookupY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return 0
}
