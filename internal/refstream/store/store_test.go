package store

// store_test.go — the warm-start contract: captures persisted by one
// Store are visible to a fresh Open of the same directory (and to a
// concurrently-open peer via the rescan path), temp files and corrupt
// files left behind by crashes are ignored, and identical captures
// deduplicate to one file.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/refstream"
)

func capture(t *testing.T, key string) *refstream.Stream {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatalf("ByKey(%q): %v", key, err)
	}
	st, err := refstream.Capture(k, 0)
	if err != nil {
		t.Fatalf("Capture(%s): %v", key, err)
	}
	return st
}

func counter(reg *obs.Registry, name string) int64 {
	v, _ := reg.Snapshot().Counters[name]
	return v
}

func TestSaveThenWarmStart(t *testing.T) {
	dir := t.TempDir()
	regA := obs.NewRegistry()
	a, err := Open(dir, regA)
	if err != nil {
		t.Fatal(err)
	}
	st := capture(t, "k1")
	a.Save(st)
	if got := counter(regA, MetricPuts); got != 1 {
		t.Fatalf("puts = %d, want 1", got)
	}

	// A fresh Open — the restarted shard — indexes the persisted file.
	regB := obs.NewRegistry()
	b, err := Open(dir, regB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("warm-start indexed %d streams, want 1", b.Len())
	}
	got, ok := b.Load(st.Kernel, st.N)
	if !ok {
		t.Fatal("warm-started store missed a persisted capture")
	}
	if counter(regB, MetricHits) != 1 {
		t.Fatal("hit not counted")
	}
	// Bit-identical: same canonical encoding as the original capture.
	wantEnc, _ := st.MarshalBinary()
	gotEnc, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantEnc) != string(gotEnc) {
		t.Fatal("warm-started stream encodes differently from the original capture")
	}

	// Loading via an unclamped problem size resolves to the same entry.
	if _, ok := b.Load(st.Kernel, 0); !ok {
		t.Fatal("clamped-N lookup missed")
	}
}

func TestPeerVisibilityViaRescan(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := capture(t, "k2")
	a.Save(st)
	// b opened before the save; its Load must rescan and find the file.
	if _, ok := b.Load(st.Kernel, st.N); !ok {
		t.Fatal("peer store did not rescan to find a fresh capture")
	}
}

func TestCrashArtifactsIgnored(t *testing.T) {
	dir := t.TempDir()
	st := capture(t, "k1")
	enc, _ := st.MarshalBinary()

	// A partial temp file: the shape a SIGKILL mid-Save leaves behind.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-1234"), enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// A truncated file under a final-looking (but now wrong) name.
	half := enc[:len(enc)/2]
	if err := os.WriteFile(filepath.Join(dir, refstream.ContentAddress(enc)+".rsc"), half, 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt file correctly named for its (corrupt) contents: the
	// address matches, so only full validation can reject it.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, refstream.ContentAddress(bad)+".rsc"), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("indexed %d streams from crash artifacts, want 0", s.Len())
	}
	// The temp file is skipped silently; the two damaged .rsc files are
	// counted. A miss after the artifacts proves nothing was served.
	if got := counter(reg, MetricLoadErrors); got != 2 {
		t.Fatalf("load_errors = %d, want 2", got)
	}
	if _, ok := s.Load(st.Kernel, st.N); ok {
		t.Fatal("a crash artifact was served as a stream")
	}
	// A clean Save still works alongside the debris.
	s.Save(st)
	if _, ok := s.Load(st.Kernel, st.N); !ok {
		t.Fatal("save after crash debris not loadable")
	}
}

// TestRescanSingleflight is the stampede regression test: Load misses
// that arrive while a directory walk is in flight must ride on that
// walk instead of issuing their own. The test installs the in-flight
// marker by hand (white box) so every loader deterministically takes
// the ride-along path; marker files whose name does not hash-match
// their content make walk counts observable — every completed walk
// re-reads them and re-counts them in store.load_errors.
func TestRescanSingleflight(t *testing.T) {
	dir := t.TempDir()
	st := capture(t, "k1")
	enc, _ := st.MarshalBinary()
	const markers = 4
	for i := 0; i < markers; i++ {
		name := refstream.ContentAddress(append(enc, byte(i))) + ".rsc" // distinct, but wrong for the content
		if err := os.WriteFile(filepath.Join(dir, name), enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	base := counter(reg, MetricLoadErrors) // Open's walk: one full marker count
	if base != markers {
		t.Fatalf("open counted %d load errors, want %d", base, markers)
	}

	// Pose as the scanner: with scanDone set, every concurrent miss
	// must park on it rather than walk the directory itself.
	done := make(chan struct{})
	s.mu.Lock()
	s.scanDone = done
	s.mu.Unlock()

	const loaders = 32
	var wg sync.WaitGroup
	wg.Add(loaders)
	for i := 0; i < loaders; i++ {
		go func() {
			defer wg.Done()
			if _, ok := s.Load(st.Kernel, st.N); ok {
				t.Error("missing capture reported as loaded")
			}
		}()
	}
	// Let every loader reach the ride-along wait (they have nowhere
	// else to block), then complete the fake walk.
	time.Sleep(50 * time.Millisecond)
	s.mu.Lock()
	s.scanGen++
	s.scanDone = nil
	s.mu.Unlock()
	close(done)
	wg.Wait()

	if got := counter(reg, MetricMisses); got != loaders {
		t.Errorf("misses = %d, want %d", got, loaders)
	}
	// Every loader shared the (fake) in-flight walk: pre-singleflight
	// each of the 32 misses walked the directory itself and recounted
	// the markers; now at most a straggler that arrived after the walk
	// completed may have issued one of its own.
	walks := (counter(reg, MetricLoadErrors) - base) / markers
	if walks > 2 {
		t.Errorf("%d concurrent misses performed %d directory walks on top of the shared one, want <= 2", loaders, walks)
	}

	// The real rescan path still finds fresh captures: land the actual
	// file like a peer process would, then miss-load it concurrently.
	if err := os.WriteFile(filepath.Join(dir, refstream.ContentAddress(enc)+".rsc"), enc, 0o644); err != nil {
		t.Fatal(err)
	}
	var hits int64
	wg.Add(loaders)
	for i := 0; i < loaders; i++ {
		go func() {
			defer wg.Done()
			if _, ok := s.Load(st.Kernel, st.N); ok {
				atomic.AddInt64(&hits, 1)
			}
		}()
	}
	wg.Wait()
	if hits != loaders {
		t.Errorf("%d of %d loads found the peer-persisted capture", hits, loaders)
	}
}

func TestContentDedup(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := capture(t, "k6")
	s.Save(st)
	s.Save(st)
	// An independent capture of the same (kernel, N) has the same
	// canonical bytes, so it dedups to the same file.
	s.Save(capture(t, "k6"))

	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range files {
		if strings.HasSuffix(de.Name(), ".rsc") {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d capture files after duplicate saves, want 1", n)
	}
}

// TestCompiledKernelWarmStart is the registry/store handshake: a
// capture of a compiled ("u:...") kernel persists like any other, a
// restarted store without the kernel counts the file as unresolved
// (not a load error) and leaves it on disk, and once the kernel is
// re-registered — a compile after restart — the next rescan indexes it
// and Load warm-starts from the old bytes.
func TestCompiledKernelWarmStart(t *testing.T) {
	source := "PROGRAM warm\n  ARRAY A(n+1) OUTPUT\n  ARRAY B(n+1) INPUT\n" +
		"  DO i = 1, n\n    A(i) = 2*B(i)\n  END DO\nEND\n"
	krA := kernelreg.New(kernelreg.Limits{}, nil)
	resp, err := krA.Compile(kernelreg.CompileRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	k, err := krA.Resolve(resp.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	st, err := refstream.Capture(k, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	a, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.SetResolver(krA.Resolve)
	a.Save(st)

	// Restart without the registry: the file is unresolved, not broken.
	regB := obs.NewRegistry()
	b, err := Open(dir, regB)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("store indexed %d streams with no resolver for %q", b.Len(), resp.Kernel)
	}
	if got := counter(regB, MetricUnresolved); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricUnresolved, got)
	}
	if got := counter(regB, MetricLoadErrors); got != 0 {
		t.Fatalf("%s = %d, want 0 — unresolved kernels are not corruption", MetricLoadErrors, got)
	}

	// The operator compiles the same source after restart; the very
	// next Load miss rescans and finds the old capture.
	krB := kernelreg.New(kernelreg.Limits{}, nil)
	if _, err := krB.Compile(kernelreg.CompileRequest{Source: source}); err != nil {
		t.Fatal(err)
	}
	b.SetResolver(krB.Resolve)
	k2, err := krB.Resolve(resp.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Load(k2, k2.DefaultN)
	if !ok {
		t.Fatal("compiled-kernel capture not loadable after re-registration")
	}
	want, _ := st.MarshalBinary()
	gotBytes, _ := got.MarshalBinary()
	if !bytes.Equal(want, gotBytes) {
		t.Fatal("warm-started stream bytes differ from the original capture")
	}
}
