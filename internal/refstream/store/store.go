// Package store is the disk-backed, content-addressed capture store:
// the cluster-scale version of the in-process stream cache. A shard
// that captures a reference stream persists its canonical encoding
// under the hex SHA-256 of the bytes (<sum>.rsc), and any shard that
// restarts — or any peer pointed at the same directory — warm-starts
// from those files instead of re-executing the capture. Because a
// stream is immutable and its encoding canonical, k nodes sharing one
// directory share one capture the way k requests already share one
// in-memory stream.
//
// Crash safety is write-temp-then-rename: a file appears under its
// final name only after its bytes are fully on disk, so a SIGKILL
// mid-write leaves a ".tmp-*" orphan that scans ignore. Reads verify
// the filename against the content hash and fully validate the
// encoding before trusting it; a corrupt or truncated file is counted
// and skipped, never served.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/refstream"
)

// Metric names for the store family. Counters except where noted.
const (
	MetricHits       = "store.hits"        // loads served from disk
	MetricMisses     = "store.misses"      // loads with no matching capture
	MetricPuts       = "store.puts"        // captures persisted
	MetricPutErrors  = "store.put_errors"  // failed persists (disk errors)
	MetricLoadErrors = "store.load_errors" // unreadable/corrupt files skipped
	MetricUnresolved = "store.unresolved"  // well-formed files whose kernel key did not resolve (yet)
	MetricEntries    = "store.entries"     // gauge: distinct (kernel, N) streams indexed
)

// ext is the suffix of a persisted capture; the name stem is the hex
// SHA-256 of the file contents.
const ext = ".rsc"

// Store is a directory of persisted captures plus an in-memory index
// by (kernel, clamped N). Safe for concurrent use; multiple processes
// may share one directory (writes are atomic renames, and Load falls
// back to a directory rescan before declaring a miss, so captures
// persisted by a peer after Open become visible).
type Store struct {
	dir string

	hits       *obs.Counter
	misses     *obs.Counter
	puts       *obs.Counter
	putErrors  *obs.Counter
	loadErrors *obs.Counter
	unresolved *obs.Counter
	entries    *obs.Gauge

	mu      sync.Mutex
	resolve func(key string) (*loops.Kernel, error)
	streams map[streamKey]*refstream.Stream
	known   map[string]bool // content addresses already indexed or written

	// Rescan singleflight: concurrent Load misses share one directory
	// walk instead of each issuing their own. scanDone is non-nil while
	// a rescan is in flight (closed on completion); scanGen counts
	// completed rescans, so a waiter knows whether any walk finished
	// since it observed its miss.
	scanGen  uint64
	scanDone chan struct{}
}

type streamKey struct {
	kernel string
	n      int
}

// Open creates dir if needed, scans it for persisted captures, and
// returns the store. Unreadable, misnamed, or corrupt files (including
// temp files left by a crashed writer) are counted as load errors and
// ignored — a damaged store degrades to re-capturing, never to serving
// bad streams. reg may be nil (metrics become no-ops via the nil-safe
// obs instruments).
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{
		dir:        dir,
		hits:       reg.Counter(MetricHits),
		misses:     reg.Counter(MetricMisses),
		puts:       reg.Counter(MetricPuts),
		putErrors:  reg.Counter(MetricPutErrors),
		loadErrors: reg.Counter(MetricLoadErrors),
		unresolved: reg.Counter(MetricUnresolved),
		entries:    reg.Gauge(MetricEntries),
		resolve:    loops.ByKey,
		streams:    map[streamKey]*refstream.Stream{},
		known:      map[string]bool{},
	}
	found, errs, unresolved, err := s.scanDir()
	if err != nil {
		return nil, err
	}
	s.loadErrors.Add(errs)
	s.unresolved.Add(unresolved)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(found)
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetResolver replaces the kernel resolver used to decode scanned
// files (default: the built-in table via loops.ByKey). A daemon with a
// kernel registry installs the registry's Resolve here so persisted
// captures of compiled ("u:...") kernels decode once their kernel is
// re-registered. Files whose key does not resolve are skipped — and,
// because they never enter the index, retried on every later rescan,
// which is what turns "compile after restart" into a warm start
// instead of a re-capture.
func (s *Store) SetResolver(resolve func(key string) (*loops.Kernel, error)) {
	if s == nil || resolve == nil {
		return
	}
	s.mu.Lock()
	s.resolve = resolve
	s.mu.Unlock()
}

// Len returns the number of distinct (kernel, N) streams indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// scanned is one well-formed capture discovered by a directory walk,
// in directory (sorted-name) order so merges stay deterministic.
type scanned struct {
	addr string
	st   *refstream.Stream
}

// scanDir walks the directory and parses every well-formed capture
// file, holding s.mu only long enough to snapshot the known-address
// set — the reads, hash checks and decodes all run with the lock
// released, so hits keep flowing during a rescan. Files whose name is
// not a content address, whose hash does not match their bytes, or
// whose encoding fails validation are skipped and counted in the
// returned error tally.
func (s *Store) scanDir() ([]scanned, int64, int64, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	s.mu.Lock()
	known := make(map[string]bool, len(s.known))
	for addr := range s.known {
		known[addr] = true
	}
	resolve := s.resolve
	s.mu.Unlock()
	var (
		found      []scanned
		errs       int64
		unresolved int64
	)
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ext) {
			continue // temp files, editors' droppings, unrelated files
		}
		addr := strings.TrimSuffix(name, ext)
		if known[addr] {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			errs++
			continue
		}
		if refstream.ContentAddress(data) != addr {
			// Name/content mismatch: bit rot or a partial copy under a
			// final name. Never trust it.
			errs++
			continue
		}
		st, err := refstream.UnmarshalStreamKernels(data, resolve)
		if err != nil {
			// An unknown kernel key is not damage: the file may belong
			// to a compiled kernel that has not been re-registered yet.
			// It stays out of the index, so a later rescan retries it.
			if errors.Is(err, refstream.ErrUnknownKernel) {
				unresolved++
			} else {
				errs++
			}
			continue
		}
		found = append(found, scanned{addr: addr, st: st})
	}
	return found, errs, unresolved, nil
}

// mergeLocked indexes a walk's discoveries, rechecking known under the
// lock so a Save (or another walk) that landed the same address first
// wins and the late copy is dropped. Callers hold s.mu.
func (s *Store) mergeLocked(found []scanned) {
	for _, f := range found {
		if s.known[f.addr] {
			continue
		}
		s.known[f.addr] = true
		key := streamKey{kernel: f.st.Kernel.Key, n: f.st.N}
		if _, ok := s.streams[key]; !ok {
			s.streams[key] = f.st
			s.entries.Set(int64(len(s.streams)))
		}
	}
}

// rescanLocked makes sure at least one directory rescan completes
// after the call begins, then returns with s.mu still held. Concurrent
// misses singleflight the walk: the first becomes the scanner (I/O
// with the lock released), the rest wait for its completion and use
// its result instead of queuing their own full walk — the stampede of
// N misses costing N scans becomes one scan shared N ways. A waiter
// that arrives while a walk is already in flight accepts that walk's
// view of the directory; a capture persisted by a peer mid-walk simply
// becomes visible on the next miss's rescan.
func (s *Store) rescanLocked() {
	entered := s.scanGen
	for s.scanGen == entered {
		if done := s.scanDone; done != nil {
			s.mu.Unlock()
			<-done
			s.mu.Lock()
			continue
		}
		done := make(chan struct{})
		s.scanDone = done
		s.mu.Unlock()
		found, errs, unresolved, err := s.scanDir()
		s.loadErrors.Add(errs)
		s.unresolved.Add(unresolved)
		s.mu.Lock()
		if err == nil {
			s.mergeLocked(found)
		}
		s.scanGen++
		s.scanDone = nil
		close(done)
	}
}

// Load returns the persisted stream for (k, n), if any. On an index
// miss it rescans the directory — captures persisted by another
// process since the last scan become visible — before counting a miss;
// concurrent misses share a single rescan (see rescanLocked).
func (s *Store) Load(k *loops.Kernel, n int) (*refstream.Stream, bool) {
	if s == nil || k == nil {
		return nil, false
	}
	key := streamKey{kernel: k.Key, n: k.ClampN(n)}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[key]
	if !ok {
		s.rescanLocked()
		st, ok = s.streams[key]
	}
	if !ok {
		s.misses.Inc()
		return nil, false
	}
	s.hits.Inc()
	return st, true
}

// Save persists st under its content address, atomically: the bytes
// are written to a ".tmp-*" file in the same directory and renamed
// into place, so a crash at any instant leaves either the complete
// file or an ignorable orphan. Saving a stream whose address is
// already present is a no-op. Disk errors are counted and swallowed —
// persistence is an optimization; the capture in hand is still good.
func (s *Store) Save(st *refstream.Stream) {
	if s == nil || st == nil {
		return
	}
	data, err := st.MarshalBinary()
	if err != nil {
		s.putErrors.Inc()
		return
	}
	addr := refstream.ContentAddress(data)
	key := streamKey{kernel: st.Kernel.Key, n: st.N}

	s.mu.Lock()
	if s.known[addr] {
		if _, ok := s.streams[key]; !ok {
			s.streams[key] = st
			s.entries.Set(int64(len(s.streams)))
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	if err := writeAtomic(s.dir, addr+ext, data); err != nil {
		s.putErrors.Inc()
		return
	}
	s.puts.Inc()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.known[addr] = true
	if _, ok := s.streams[key]; !ok {
		s.streams[key] = st
		s.entries.Set(int64(len(s.streams)))
	}
}

// writeAtomic lands data at dir/name via a same-directory temp file
// and rename, fsyncing the file before the rename so the final name
// never refers to partial contents.
func writeAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
