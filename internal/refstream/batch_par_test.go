package refstream

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/sim"
)

// parGrid builds a capture group large enough to clear the parallel
// dispatch threshold with room for several partitions: the seeded
// shape grid crossed with an extra cache-size axis.
func parGrid() []sim.Config {
	base := shapeGrid()
	cfgs := make([]sim.Config, 0, 2*len(base))
	cfgs = append(cfgs, base...)
	for _, c := range base {
		c.CacheElems = (c.CacheElems + 128) % 2048
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// TestBatchPartitions pins the fan-out sizing policy: small groups and
// budgets of one stay serial, large groups split into contiguous
// partitions no thinner than batchParMinPerPart.
func TestBatchPartitions(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{0, 8, 1},
		{1, 8, 1},
		{batchParMinConfigs - 1, 8, 1}, // below the dispatch threshold
		{batchParMinConfigs, 0, 1},     // no budget
		{batchParMinConfigs, 1, 1},
		{batchParMinConfigs, 2, 2},
		{batchParMinConfigs, 64, batchParMinConfigs / batchParMinPerPart},
		{28, 8, 7}, // the standard grid's group: 7 partitions of 4
		{28, 4, 4},
		{308, 8, 8},
	}
	for _, c := range cases {
		if got := batchPartitions(c.n, c.workers); got != c.want {
			t.Errorf("batchPartitions(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestParallelMatchesSerialBatch is the parallel replayer's
// bit-identity contract: for every kernel and a spread of worker
// budgets, RunBatchN must produce Results bit-identical to a serial
// RunBatch of the same group — and therefore, transitively, to
// per-configuration replay and direct execution.
func TestParallelMatchesSerialBatch(t *testing.T) {
	cfgs := parGrid()
	workerCounts := []int{2, 3, 4, 8}
	for _, k := range loops.All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			t.Parallel()
			st, err := Capture(k, smallN(k))
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			want, err := NewReplayer().RunBatch(st, cfgs)
			if err != nil {
				t.Fatalf("serial batch: %v", err)
			}
			for _, workers := range workerCounts {
				r := NewReplayer()
				got, err := r.RunBatchN(st, cfgs, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				for i := range cfgs {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Errorf("workers=%d config %d (npe=%d ps=%d ce=%d %s/%s): parallel diverges from serial",
							workers, i, cfgs[i].NPE, cfgs[i].PageSize, cfgs[i].CacheElems, cfgs[i].Layout, cfgs[i].Policy)
					}
				}
				// A reused Replayer with a standing Workers budget must
				// keep producing identical output (the serve-worker usage).
				r.Workers = workers
				again, err := r.RunBatch(st, cfgs)
				if err != nil {
					t.Fatalf("workers=%d reuse: %v", workers, err)
				}
				if !reflect.DeepEqual(again, want) {
					t.Errorf("workers=%d: reused parallel Replayer diverges from serial", workers)
				}
			}
		})
	}
}

// TestParallelBatchSharedStream runs two parallel RunBatch calls
// concurrently over one decoded Stream (each Replayer fanning out its
// own partitions); under -race this proves the partition workers keep
// the shared Stream — decoded columns, memoized summaries — read-only.
func TestParallelBatchSharedStream(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := parGrid()
	want, err := NewReplayer().RunBatch(st, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewReplayer()
			r.Workers = 4
			for iter := 0; iter < 5; iter++ {
				got, err := r.RunBatch(st, cfgs)
				if err != nil {
					t.Errorf("parallel batch: %v", err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Error("concurrent parallel batch diverges from serial baseline")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelBatchErrorAttribution: a parallel batch must blame the
// lowest failing input index — even when the failure sits in a later
// partition or several partitions fail — with exactly the serial
// batch's error text.
func TestParallelBatchErrorAttribution(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 300)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := parGrid()
	for _, badIdx := range []int{0, 5, len(cfgs) / 2, len(cfgs) - 1} {
		bad := append([]sim.Config(nil), cfgs...)
		bad[badIdx] = sim.Config{NPE: -1, PageSize: 32}
		_, serialErr := NewReplayer().RunBatch(st, bad)
		if serialErr == nil {
			t.Fatalf("badIdx=%d: serial batch accepted an invalid config", badIdx)
		}
		_, parErr := NewReplayer().RunBatchN(st, bad, 4)
		if parErr == nil {
			t.Fatalf("badIdx=%d: parallel batch accepted an invalid config", badIdx)
		}
		if parErr.Error() != serialErr.Error() {
			t.Errorf("badIdx=%d: parallel error %q, serial error %q", badIdx, parErr, serialErr)
		}
		var be *BatchError
		if !errors.As(parErr, &be) || be.Index != badIdx {
			t.Errorf("badIdx=%d: parallel BatchError.Index = %v, want %d", badIdx, parErr, badIdx)
		}
	}
	// Two failures: the lower index wins regardless of which partition
	// finishes first.
	bad := append([]sim.Config(nil), cfgs...)
	bad[2] = sim.Config{NPE: 4, PageSize: -3}
	bad[len(bad)-2] = sim.Config{NPE: -1, PageSize: 32}
	_, err = NewReplayer().RunBatchN(st, bad, 4)
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Errorf("two failures: got %v, want BatchError at index 2", err)
	}
}

// TestParallelBatchMetrics pins the parallel observability: one group,
// a partitions-histogram observation matching the fan-out, and
// configs-per-pass observations spread across partitions.
func TestParallelBatchMetrics(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 300)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := parGrid()
	reg := obs.NewRegistry()
	r := NewReplayer()
	r.Metrics = reg
	wantParts := batchPartitions(len(cfgs), 4)
	if wantParts < 2 {
		t.Fatalf("parGrid too small to fan out: %d partitions", wantParts)
	}
	if _, err := r.RunBatchN(st, cfgs, 4); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricBatchGroups]; got != 1 {
		t.Errorf("groups = %d, want 1", got)
	}
	h, ok := snap.Histograms[MetricBatchPartitions]
	if !ok || h.Count != 1 {
		t.Fatalf("partitions histogram: %+v, want one observation", h)
	}
	if h.Sum != int64(wantParts) {
		t.Errorf("partitions observation = %d, want %d", h.Sum, wantParts)
	}
	// Serial calls observe partitions too (value 1), so the histogram
	// doubles as a parallel-vs-serial mix signal.
	if _, err := r.RunBatchN(st, cfgs[:2], 4); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if h := snap.Histograms[MetricBatchPartitions]; h.Count != 2 || h.Sum != int64(wantParts)+1 {
		t.Errorf("after serial call: partitions count=%d sum=%d, want 2/%d", h.Count, h.Sum, wantParts+1)
	}
}

// TestBatchParallelAllocs extends the batch alloc guard to the
// parallel path: partition slabs come from the Replayer's worker free
// list, so a steady-state parallel call adds only the per-call
// dispatch (one goroutine and closure per partition) on top of the
// serial budget of 5 allocations per Result plus the results slice.
func TestBatchParallelAllocs(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 400)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := parGrid()
	const workers = 4
	r := NewReplayer()
	if _, err := r.RunBatchN(st, cfgs, workers); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.RunBatchN(st, cfgs, workers); err != nil {
			t.Fatal(err)
		}
	})
	nparts := batchPartitions(len(cfgs), workers)
	limit := float64(5*len(cfgs) + 1 + 4*nparts)
	if allocs > limit {
		t.Errorf("%.0f allocs per steady-state parallel batch of %d configs across %d partitions, want <= %.0f (5 per Result + results slice + dispatch)",
			allocs, len(cfgs), nparts, limit)
	}
}
