package refstream

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/loops"
	"repro/internal/sim"
)

// gridGroup is one kernel's capture group on the standard bench grid:
// NPEs {1..64} × page sizes {32,64} × cache {0,256}.
func gridGroup() []sim.Config {
	var cfgs []sim.Config
	for _, npe := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, ps := range []int{32, 64} {
			for _, ce := range []int{0, 256} {
				c := sim.PaperConfig(npe, ps)
				c.CacheElems = ce
				if ce == 0 {
					c = sim.NoCacheConfig(npe, ps)
				}
				cfgs = append(cfgs, c)
			}
		}
	}
	return cfgs
}

func benchKernelStream(b *testing.B) *Stream {
	b.Helper()
	k, err := loops.ByKey("k1")
	if err != nil {
		b.Fatal(err)
	}
	st, err := Capture(k, 0) // default problem size, as on the bench grid
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkGroupDirect(b *testing.B) {
	k, _ := loops.ByKey("k1")
	cfgs := gridGroup()
	sc := sim.NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := sc.Run(k, 0, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGroupSingleReplay(b *testing.B) {
	st := benchKernelStream(b)
	cfgs := gridGroup()
	r := NewReplayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			if _, err := r.Run(st, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkGroupBatchReplay(b *testing.B) {
	st := benchKernelStream(b)
	cfgs := gridGroup()
	r := NewReplayer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunBatch(st, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBatchReplayPar is BenchmarkGroupBatchReplay through the
// partitioned path: the batch fans out across GOMAXPROCS workers (run
// with -cpu=1,4,8 to see the scaling curve; at -cpu=1 the partitioner
// collapses to the serial pass).
func BenchmarkGroupBatchReplayPar(b *testing.B) {
	st := benchKernelStream(b)
	cfgs := gridGroup()
	r := NewReplayer()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunBatchN(st, cfgs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBatchNoSlowerThanSingleReplay is the CI perf gate: classifying a
// capture group in one batch pass must never regress below classifying
// it one configuration at a time — if it does, the batch path has lost
// its reason to exist. Timing assertions are unreliable on shared
// runners, so the gate is opt-in (REFSTREAM_PERF_GATE=1, set by the
// bench-smoke CI job), compares best-of-N times measured in the same
// process, and allows a 1.25x noise margin — batch is expected to clear
// the bar by >2x, so a trip means a real structural regression, not
// jitter.
func TestBatchNoSlowerThanSingleReplay(t *testing.T) {
	if os.Getenv("REFSTREAM_PERF_GATE") == "" {
		t.Skip("perf gate disabled; set REFSTREAM_PERF_GATE=1 to run")
	}
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := gridGroup()
	r := NewReplayer()

	single := func() {
		for _, cfg := range cfgs {
			if _, err := r.Run(st, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	batch := func() {
		if _, err := r.RunBatch(st, cfgs); err != nil {
			t.Fatal(err)
		}
	}
	best := func(f func()) time.Duration {
		f() // warm memos, slabs, scratch
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	singleD, batchD := best(single), best(batch)
	t.Logf("group of %d configs: single replay %v, batch %v (%.2fx)",
		len(cfgs), singleD, batchD, float64(singleD)/float64(batchD))
	if float64(batchD) > 1.25*float64(singleD) {
		t.Fatalf("batch pass (%v) slower than single-config replay (%v): the decode-once path has regressed", batchD, singleD)
	}
}

// TestBatchParNoSlowerThanSerial extends the perf gate to the
// partitioned path: with more than one core available, fanning a batch
// across workers must never cost wall-clock time versus the serial
// pass — if it does, the partitioning overhead (worker setup, slab
// growth, result stitching) has outgrown its benefit. Same opt-in and
// methodology as TestBatchNoSlowerThanSingleReplay: best-of-5 in one
// process with a 1.25x noise margin. On a single-core host the
// comparison is meaningless (goroutines serialize and the margin only
// measures scheduler jitter), so the gate skips there.
func TestBatchParNoSlowerThanSerial(t *testing.T) {
	if os.Getenv("REFSTREAM_PERF_GATE") == "" {
		t.Skip("perf gate disabled; set REFSTREAM_PERF_GATE=1 to run")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("GOMAXPROCS=1: no parallelism to gate on this host")
	}
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := gridGroup()
	r := NewReplayer()

	serial := func() {
		if _, err := r.RunBatchN(st, cfgs, 1); err != nil {
			t.Fatal(err)
		}
	}
	par := func() {
		if _, err := r.RunBatchN(st, cfgs, workers); err != nil {
			t.Fatal(err)
		}
	}
	best := func(f func()) time.Duration {
		f() // warm memos, slabs, per-worker scratch
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	serialD, parD := best(serial), best(par)
	t.Logf("group of %d configs at %d workers: serial batch %v, parallel %v (%.2fx)",
		len(cfgs), workers, serialD, parD, float64(serialD)/float64(parD))
	if float64(parD) > 1.25*float64(serialD) {
		t.Fatalf("parallel batch pass (%v) slower than serial (%v) at %d workers: partitioning overhead has regressed", parD, serialD, workers)
	}
}
