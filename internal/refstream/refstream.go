// Package refstream implements the execute-once / classify-many sweep
// compiler: the paper's whole evaluation (§6–§7) is a grid of machine
// configurations run against the same programs, yet the classified
// reference stream — which array element is touched, in what program
// order, and in which structural context (assignment right-hand side,
// reduction term, replicated control read) — depends only on the
// (kernel, problem size) pair. Everything the grid varies (PE count,
// page size, cache capacity, replacement policy, layout) only changes
// how each access is *classified*, not which accesses occur.
//
// This package therefore splits a simulated run into two phases:
//
//   - Capture executes the kernel once, through the full counting
//     simulator (so single assignment is validated and the output
//     checksums are computed exactly once), and records the program
//     property: a compact columnar encoding of the reference stream
//     with its structural markers.
//   - Replayer applies the machine property: it re-derives every
//     counter of a sim.Result — per-PE access classes, cache
//     statistics, the traffic matrix, reduction sends/broadcasts —
//     for any eligible configuration by streaming the captured events
//     through owner tables and slot caches, with no floating-point
//     math, no defined-bit bookkeeping, and no steady-state
//     allocations beyond the Result itself.
//
// Replayer.Run classifies one configuration per decode walk;
// Replayer.RunBatch (batch.go) classifies a whole capture group —
// every configuration sharing the stream — in one pass, holding all
// replay state in flat structure-of-arrays slabs indexed by
// configuration and bucketing configurations by page size so page-id
// derivation and the memoized stream summaries are computed once per
// bucket. internal/sweep submits whole groups to RunBatch and
// internal/serve rides the same path for /v1/sweep.
//
// Replay results — single and batch — are bit-identical to a direct
// sim.Run of the same point; internal/sweep uses that equivalence to
// execute each (kernel, N) pair once per sweep and classify every grid
// point against the shared stream. See docs/PERF.md for the design and
// the measured win, and Eligible for the two configurations that still
// require direct execution.
//
// The encoding is a struct-of-arrays pair of byte columns. Per event,
// the heads column holds one varint packing (arrayID << 3 | opcode);
// the lins column holds, for opcodes that carry an element index, the
// zigzag-varint delta against the previous index seen for that array.
// Livermore access patterns are overwhelmingly sequential per array,
// so a typical event costs two bytes — roughly an order of magnitude
// smaller than a fixed-width trace record — and streams are shared
// read-only across sweep workers.
package refstream

import (
	"encoding/binary"
	"sync"

	"repro/internal/loops"
)

// Opcodes of the reference stream. The stream is a flat state machine:
// opAssign and opTerm open a classification context (the owner of the
// named element), opEnd and opEndReduce close it, and opRead events
// classify in whichever context is open — none meaning a replicated
// control read, executed by every PE.
const (
	opRead      = 0 // read a[lin] in the current context
	opAssign    = 1 // open an assignment targeting a[lin]; charges the write to its owner
	opEnd       = 2 // close the open assignment (no payload)
	opTerm      = 3 // open reduction term lin, driven by array a
	opEndReduce = 4 // close the reduction driven by array a: account host collection
)

// opHasLin reports whether the opcode carries an element-index payload
// in the lins column.
func opHasLin(op byte) bool {
	return op == opRead || op == opAssign || op == opTerm
}

// Stream is the captured reference stream of one (kernel, N) pair: the
// program property of a sweep, independent of every machine parameter.
// A Stream is immutable after Capture and safe to share read-only
// across concurrent Replayers.
type Stream struct {
	Kernel *loops.Kernel // the captured kernel
	N      int           // clamped problem size the stream was captured at

	// ArrayLens holds each array's element count, indexed by the array
	// ID assigned at bind time; replay derives page geometry and owner
	// tables from these under the target configuration.
	ArrayLens []int

	// Checksums memoizes the validation run's output checksums. They
	// are a pure function of (kernel, N) — partitioning never changes a
	// computed value — so every replayed Result shares this slice.
	Checksums []loops.ArraySum

	events int
	heads  []byte   // per event: varint(arrayID<<3 | opcode)
	lins   []byte   // per payload-carrying event: zigzag varint delta of lin, keyed per array
	raw    []uint64 // capture-time scratch: head<<32 | lin, released by finishCapture

	// Replay-side memos, built lazily on first use and shared by every
	// Replayer of this stream (a group replays one stream dozens of
	// times, so decoding pays for itself after the first replay). The
	// compressed columns above stay the storage format; these are
	// hot-loop views. Guarded memoization keeps the Stream safe for
	// concurrent replays.
	decodeOnce sync.Once
	encodeOnce sync.Once
	dheads     []uint32 // per event: arrayID<<3 | opcode, fixed width
	dlins      []int32  // per event: absolute element index (0 when the opcode has none)
	gidMu      sync.RWMutex
	gidCols    map[int][]int32    // page size → per-event global page id
	aggCols    map[int]*frameAgg  // page size → structural summary (writes, reduces, read totals)
	histCols   map[int]*readsHist // page size → run-length read histogram
	readCols   map[int][]readRec  // page size → context-resolved read column
	foldTabs   map[int]*foldTable // page size → folded access contingency table
}

// Events returns the number of captured events.
func (s *Stream) Events() int { return s.events }

// EncodedBytes returns the stream's compressed footprint in bytes,
// building the compressed columns on first call (capture records the
// fixed-width form and defers compression until someone asks).
func (s *Stream) EncodedBytes() int {
	s.encodeOnce.Do(func() {
		if s.heads == nil && s.dheads != nil {
			s.compress()
		}
	})
	return len(s.heads) + len(s.lins)
}

// emit appends one event to the stream's compressed columns. last is
// the caller-maintained per-array delta state.
func (s *Stream) emit(op byte, array, lin int, last []int) {
	s.heads = binary.AppendUvarint(s.heads, uint64(array)<<3|uint64(op))
	if opHasLin(op) {
		delta := int64(lin - last[array])
		last[array] = lin
		s.lins = binary.AppendUvarint(s.lins, zigzag(delta))
	}
	s.events++
}

// record appends one event to the raw capture column: the capture
// tracer's fast path, run inside the instrumented simulation, so it is
// a single append of head and element index packed into one word.
// finishCapture splits the column into the replay-side views.
func (s *Stream) record(op byte, array, lin int) {
	s.raw = append(s.raw, uint64(array)<<35|uint64(op)<<32|uint64(uint32(lin)))
}

// finishCapture unpacks the raw capture column into the fixed-width
// event columns and releases it.
func (s *Stream) finishCapture() {
	s.dheads = make([]uint32, len(s.raw))
	s.dlins = make([]int32, len(s.raw))
	for i, w := range s.raw {
		s.dheads[i] = uint32(w >> 32)
		s.dlins[i] = int32(uint32(w))
	}
	s.events = len(s.raw)
	s.raw = nil
}

// compress batch-builds the compressed columns from the recorded
// fixed-width ones, by replaying them through emit — the one encoding
// definition — after the capture run finishes.
func (s *Stream) compress() {
	last := make([]int, len(s.ArrayLens))
	s.heads = make([]byte, 0, s.events)
	s.lins = make([]byte, 0, s.events)
	s.events = 0 // emit re-counts
	for i, h := range s.dheads {
		s.emit(byte(h&7), int(h>>3), int(s.dlins[i]), last)
	}
}

// zigzag maps a signed delta to the unsigned varint space.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// cursor streams events back out of the columns. Each replay owns its
// cursor (and delta state), so concurrent replays of one Stream never
// share mutable state.
type cursor struct {
	heads, lins []byte
	last        []int // per-array delta state, reset to zero per replay
}

// next decodes one event. ok is false at end of stream.
func (c *cursor) next() (op byte, array, lin int, ok bool) {
	if len(c.heads) == 0 {
		return 0, 0, 0, false
	}
	h, n := binary.Uvarint(c.heads)
	c.heads = c.heads[n:]
	op = byte(h & 7)
	array = int(h >> 3)
	if opHasLin(op) {
		d, n := binary.Uvarint(c.lins)
		c.lins = c.lins[n:]
		lin = c.last[array] + int(unzigzag(d))
		c.last[array] = lin
	}
	return op, array, lin, true
}

// decoded returns the stream's fixed-width event columns. Captured
// streams already carry them (record fills them during the capture
// run); a stream built from its compressed columns alone decompresses
// here, exactly once.
func (s *Stream) decoded() (heads []uint32, lins []int32) {
	s.decodeOnce.Do(func() {
		if s.dheads != nil {
			return
		}
		dh := make([]uint32, 0, s.events)
		dl := make([]int32, 0, s.events)
		c := cursor{heads: s.heads, lins: s.lins, last: make([]int, len(s.ArrayLens))}
		for {
			op, a, lin, ok := c.next()
			if !ok {
				break
			}
			dh = append(dh, uint32(a)<<3|uint32(op))
			dl = append(dl, int32(lin))
		}
		s.dheads, s.dlins = dh, dl
	})
	return s.dheads, s.dlins
}

// appendPageTable writes each array's base page id into dst (reusing
// its capacity) and returns the table plus the total page count under
// the given page size. This is the single definition of the global
// page-id space; gidColumn and the Replayer's owner table both use it,
// which is what makes their gids line up.
func appendPageTable(dst []int32, lens []int, pageSize int) ([]int32, int) {
	dst = dst[:0]
	total := 0
	for _, elems := range lens {
		dst = append(dst, int32(total))
		total += (elems + pageSize - 1) / pageSize
	}
	return dst, total
}

// gidColumn returns the per-event global page id of the event's element
// under the given page size (zero for opcodes without a payload),
// memoized per page size. Hoisting the page arithmetic out of the
// replay loop turns per-event work into two table lookups.
func (s *Stream) gidColumn(pageSize int) []int32 {
	s.gidMu.RLock()
	col := s.gidCols[pageSize]
	s.gidMu.RUnlock()
	if col != nil {
		return col
	}
	heads, lins := s.decoded()
	bases, _ := appendPageTable(nil, s.ArrayLens, pageSize)
	col = make([]int32, len(heads))
	ps := int32(pageSize)
	for i, h := range heads {
		if opHasLin(byte(h & 7)) {
			col[i] = bases[h>>3] + lins[i]/ps
		}
	}
	s.gidMu.Lock()
	if prior := s.gidCols[pageSize]; prior != nil {
		col = prior // lost a benign build race; both columns are identical
	} else {
		if s.gidCols == nil {
			s.gidCols = make(map[int][]int32)
		}
		s.gidCols[pageSize] = col
	}
	s.gidMu.Unlock()
	return col
}

// aggRun is one run of identical consecutive accesses in a frameAgg:
// count events reading page gid in context ctx (the page whose owner
// classifies the read; -1 for replicated control reads).
type aggRun struct {
	ctx   int32
	gid   int32
	count int64
}

// reduceRun is a run of count consecutive reductions with identical
// shape: driven by array (host = array % NPE), with terms covering
// exactly the contiguous global pages [gidLo, gidHi). gidHi == gidLo
// encodes a reduction that executed zero terms.
type reduceRun struct {
	array        int32
	gidLo, gidHi int32
	count        int64
}

// frameAgg is the structural summary of a stream under one page size:
// the write and reduction run-length histograms plus raw read counts.
// Writes and reductions never consult the cache, so these runs are
// exact for every configuration class; the read side is deliberately
// just two totals, because the two views that classify reads — the
// fold table for the common order-free shapes, the read histogram for
// the rest — are memoized separately and built only when a
// configuration actually needs them. Keeping reads out of this builder
// makes it a cheap single dispatch per event, which matters because
// every replay mode consults frameAgg to pick its classification path.
type frameAgg struct {
	assigns    []aggRun // assignment openings per target page (ctx unused)
	reduces    []reduceRun
	readsTotal int64 // context reads (an assignment or term page is open)
	ctrlTotal  int64 // replicated control reads
	ok         bool  // false: term pages were not contiguous; use the event loop
}

// frameAgg returns the stream's structural summary under the given
// page size, memoized alongside the gid columns.
func (s *Stream) frameAgg(pageSize int) *frameAgg {
	s.gidMu.RLock()
	a := s.aggCols[pageSize]
	s.gidMu.RUnlock()
	if a != nil {
		return a
	}
	heads, _ := s.decoded()
	gids := s.gidColumn(pageSize)
	a = &frameAgg{ok: true}
	inCtx := false // an assignment or term page is open
	var rLo, rHi int32
	inTerms := false
	for i, h := range heads {
		switch h & 7 {
		case opRead:
			// The dominant opcode: a bare count, no gid load. Which page
			// was read only matters to the lazily built read views.
			if inCtx {
				a.readsTotal++
			} else {
				a.ctrlTotal++
			}
		case opAssign:
			g := gids[i]
			inCtx = true
			if n := len(a.assigns); n > 0 && a.assigns[n-1].gid == g {
				a.assigns[n-1].count++
			} else {
				a.assigns = append(a.assigns, aggRun{ctx: -1, gid: g, count: 1})
			}
		case opEnd:
			inCtx = false
		case opTerm:
			g := gids[i]
			inCtx = true
			switch {
			case !inTerms:
				inTerms, rLo, rHi = true, g, g+1
			case g == rHi:
				rHi = g + 1
			case g >= rLo && g < rHi:
				// revisiting a page already in the range
			default:
				a.ok = false // non-contiguous terms: range iteration would lie
			}
		case opEndReduce:
			inCtx = false
			rr := reduceRun{array: int32(h >> 3), count: 1}
			if inTerms {
				rr.gidLo, rr.gidHi = rLo, rHi
			}
			inTerms = false
			if n := len(a.reduces); n > 0 &&
				a.reduces[n-1].array == rr.array &&
				a.reduces[n-1].gidLo == rr.gidLo &&
				a.reduces[n-1].gidHi == rr.gidHi {
				a.reduces[n-1].count++
			} else {
				a.reduces = append(a.reduces, rr)
			}
		default:
			a.ok = false // unknown opcode: let the event loop report it
		}
	}
	s.gidMu.Lock()
	if prior := s.aggCols[pageSize]; prior != nil {
		a = prior // lost a benign build race; both histograms are identical
	} else {
		if s.aggCols == nil {
			s.aggCols = make(map[int]*frameAgg)
		}
		s.aggCols[pageSize] = a
	}
	s.gidMu.Unlock()
	return a
}

// readsHist is the run-length read histogram of a stream under one
// page size. When a configuration's classification is order-free —
// a frameless cache misses every lookup, and a 1-PE machine makes
// every access local — per-PE counters and the traffic matrix are
// pure sums over page-granular access counts, so replay can walk this
// histogram instead of the event stream. Livermore kernels touch pages
// sequentially, which collapses the event stream by two to three
// orders of magnitude.
//
// Most order-free configurations are served by the fixed-size fold
// table instead; this histogram exists for the layouts the fold cannot
// represent (block and block-cyclic partitioning, non-power-of-two
// widths), so it is built lazily on first demand rather than as a side
// effect of frameAgg — the block-scan folding below is the most
// expensive per-event work of any replay view.
type readsHist struct {
	reads []aggRun // context reads: ctx is the open assignment/term page
	ctrl  []aggRun // replicated control reads (ctx unused)
}

// readsHist returns the stream's run-length read histogram under the
// given page size, memoized alongside the gid columns.
func (s *Stream) readsHist(pageSize int) *readsHist {
	s.gidMu.RLock()
	a := s.histCols[pageSize]
	s.gidMu.RUnlock()
	if a != nil {
		return a
	}
	heads, _ := s.decoded()
	gids := s.gidColumn(pageSize)
	a = &readsHist{}
	cur := int32(-1) // open context page, -1 when none

	// Context reads are accumulated per context block: within one
	// context page (one assignment target page, typically pageSize
	// consecutive assignments) the distinct pages read are few, so a
	// small linear-scan table folds the alternating per-statement
	// access pattern (a, b, c, a, b, c, ...) that last-run merging
	// alone cannot compress. The block flushes when the context page
	// moves on or the table fills; duplicate runs are harmless, the
	// histogram is additive.
	const blockCap = 24
	var blkGids [blockCap]int32
	var blkCnts [blockCap]int64
	blkCtx, blkN := int32(-1), 0
	flush := func() {
		for j := 0; j < blkN; j++ {
			a.reads = append(a.reads, aggRun{ctx: blkCtx, gid: blkGids[j], count: blkCnts[j]})
		}
		blkN = 0
	}
	var ctrlGids [blockCap]int32
	var ctrlCnts [blockCap]int64
	ctrlN := 0
	flushCtrl := func() {
		for j := 0; j < ctrlN; j++ {
			a.ctrl = append(a.ctrl, aggRun{ctx: -1, gid: ctrlGids[j], count: ctrlCnts[j]})
		}
		ctrlN = 0
	}

	for i, h := range heads {
		switch h & 7 {
		case opRead:
			g := gids[i]
			if cur >= 0 {
				if cur != blkCtx {
					flush()
					blkCtx = cur
				}
				j := 0
				for ; j < blkN; j++ {
					if blkGids[j] == g {
						blkCnts[j]++
						break
					}
				}
				if j == blkN {
					if blkN == blockCap {
						flush()
					}
					blkGids[blkN], blkCnts[blkN] = g, 1
					blkN++
				}
			} else {
				j := 0
				for ; j < ctrlN; j++ {
					if ctrlGids[j] == g {
						ctrlCnts[j]++
						break
					}
				}
				if j == ctrlN {
					if ctrlN == blockCap {
						flushCtrl()
					}
					ctrlGids[ctrlN], ctrlCnts[ctrlN] = g, 1
					ctrlN++
				}
			}
		case opAssign, opTerm:
			cur = gids[i]
		case opEnd, opEndReduce:
			cur = -1
		}
	}
	flush()
	flushCtrl()
	s.gidMu.Lock()
	if prior := s.histCols[pageSize]; prior != nil {
		a = prior // lost a benign build race; both histograms are identical
	} else {
		if s.histCols == nil {
			s.histCols = make(map[int]*readsHist)
		}
		s.histCols[pageSize] = a
	}
	s.gidMu.Unlock()
	return a
}

// readRec is one entry of the context-resolved read column: the global
// page id the read touches, its array-local page index (loc, which
// determines the owner under modulo layout: loc mod NPE), and the
// global page id of the open context (the assignment or term target
// page whose owner executes the read), or -1 for a replicated control
// read. The column is what is left of the event stream once assignment
// boundaries are folded into each read: the exact input the
// order-dependent cache classification consumes, with every other
// opcode's effect pre-applied.
//
// Adjacent records with the same (ctx, gid) collapse into one with a
// count — the kernels scan arrays element by element, so one page is
// read PageSize times in a row, and the column shrinks by an order of
// magnitude. The collapse is order-exact: after a run's first read the
// page is the PE's most recent, so the remaining count−1 reads are
// guaranteed cache hits under every policy (the same invariant behind
// the single-config lastGid short circuit), and replacement state after
// the run equals one touch.
type readRec struct {
	ctx, gid, loc int32
	count         int32
}

// readColumn returns the stream's context-resolved read column under
// the given page size, memoized like the gid columns. The batch
// replayer walks it once per framed configuration: a dense 8-byte
// record stream with no opcode dispatch, so the walk is bounded by the
// cache arithmetic rather than by decoding.
func (s *Stream) readColumn(pageSize int) []readRec {
	s.gidMu.RLock()
	col := s.readCols[pageSize]
	s.gidMu.RUnlock()
	if col != nil {
		return col
	}
	heads, lins := s.decoded()
	gids := s.gidColumn(pageSize)
	col = make([]readRec, 0, len(heads))
	ps := int32(pageSize)
	cur := int32(-1)
	for i, h := range heads {
		switch h & 7 {
		case opRead:
			if k := len(col) - 1; k >= 0 && col[k].ctx == cur && col[k].gid == gids[i] {
				col[k].count++
			} else {
				col = append(col, readRec{ctx: cur, gid: gids[i], loc: lins[i] / ps, count: 1})
			}
		case opAssign, opTerm:
			cur = gids[i]
		case opEnd, opEndReduce:
			cur = -1
		}
	}
	s.gidMu.Lock()
	if prior := s.readCols[pageSize]; prior != nil {
		col = prior // lost a benign build race; both columns are identical
	} else {
		if s.readCols == nil {
			s.readCols = make(map[int][]readRec)
		}
		s.readCols[pageSize] = col
	}
	s.gidMu.Unlock()
	return col
}

// foldBits/foldSize dimension the fold table: access counts are keyed
// by the array-local page index modulo foldSize. Under the paper's
// modulo partitioning the owner of a page is its array-local index mod
// NPE, so for any power-of-two NPE ≤ foldSize the owner is fully
// determined by the folded key — which is what lets one table serve
// every such machine width.
const (
	foldBits = 6
	foldSize = 1 << foldBits
)

// foldTable is the stream's access contingency table under one page
// size: context reads bucketed by (context key, page key), control
// reads and assignments bucketed by page key, where a key is the
// array-local page index folded modulo foldSize. For an order-free
// configuration with modulo layout and power-of-two NPE ≤ foldSize,
// per-PE counters and the traffic matrix are exact sums over this
// table (owner = key & (NPE-1)), so classification costs a fixed
// foldSize² walk per configuration no matter how long the stream is —
// the histogram's run count grows with the kernel's working set, this
// does not.
type foldTable struct {
	reads [foldSize * foldSize]int64 // [ctxKey<<foldBits | pageKey] context-read counts
	ctrl  [foldSize]int64            // [pageKey] replicated control-read counts
	wr    [foldSize]int64            // [pageKey] assignment counts
}

// foldTable returns the stream's access contingency table under the
// given page size, memoized alongside the other replay views.
func (s *Stream) foldTable(pageSize int) *foldTable {
	s.gidMu.RLock()
	t := s.foldTabs[pageSize]
	s.gidMu.RUnlock()
	if t != nil {
		return t
	}
	heads, lins := s.decoded()
	t = &foldTable{}
	ps := int32(pageSize)
	cur := int32(-1) // folded key of the open context page, -1 when none
	for i, h := range heads {
		switch h & 7 {
		case opRead:
			k := (lins[i] / ps) & (foldSize - 1)
			if cur >= 0 {
				t.reads[cur<<foldBits|k]++
			} else {
				t.ctrl[k]++
			}
		case opAssign:
			k := (lins[i] / ps) & (foldSize - 1)
			t.wr[k]++
			cur = k
		case opTerm:
			cur = (lins[i] / ps) & (foldSize - 1)
		case opEnd, opEndReduce:
			cur = -1
		}
	}
	s.gidMu.Lock()
	if prior := s.foldTabs[pageSize]; prior != nil {
		t = prior // lost a benign build race; both tables are identical
	} else {
		if s.foldTabs == nil {
			s.foldTabs = make(map[int]*foldTable)
		}
		s.foldTabs[pageSize] = t
	}
	s.gidMu.Unlock()
	return t
}

// grown returns buf resized to n, reusing its backing array when
// possible, with every element zeroed.
func grown[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
