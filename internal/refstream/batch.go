package refstream

// batch.go — the batch replayer: classify a whole capture group in one
// stream pass. A sweep group shares one captured stream but used to pay
// one decode walk per configuration; RunBatch walks the decoded event
// columns once and fans every event down all configurations of the
// group. The paper's single-assignment pages make this sound: replay
// state is pure per-configuration arithmetic (owner tables, slot
// caches, counters), so configurations never interact and one decoded
// access can be applied to all of them in any interleaving.
//
// State is structure-of-arrays: per-PE counters, traffic matrices,
// owner tables, reduce tallies and last-touched page ids live in flat
// slabs indexed by configuration (through the peOff/trafOff/ownOff
// prefix tables), grown once and reused, so a steady-state RunBatch
// allocates nothing beyond the returned Results. Configurations are
// bucketed by page size: within a bucket the global page-id column and
// the run-length histogram are shared, so gid computation happens once
// per bucket rather than once per configuration.
//
// The fast paths layer per configuration class:
//
//   - order-free configurations (frameless cache, or one PE) never
//     touch the event columns: fold-eligible ones (NPE=1, or Modulo
//     layout with power-of-two NPE ≤ 64) classify from the memoized
//     64×64 fold table (foldClassify), the rest from the lazily built
//     run-length read histogram (aggregateClassify);
//   - framed configurations normally classify config-major over the
//     shared context-resolved read column (the cache is the only
//     order-dependent piece): small Modulo LRU caches ride packed SWAR
//     rows — four uint16 frame lanes per uint64 word, recency
//     maintained with shifts and masks instead of array writes
//     (classifyReadsLRUP1/P2) — larger LRU caches walk plain frame
//     rows (classifyReadsLRU), and everything else drives the real
//     slot caches (classifyReadsCache) with a per-(configuration, PE)
//     last-touched page id short-circuiting the dominant repeated-read
//     pattern: a PE re-reading the page it just touched is a
//     guaranteed hit (the prior op left the page resident and, for
//     every policy, a second touch is structurally a no-op — LRU
//     re-fronts the front entry, FIFO/Clock/Random do not reorder and
//     the reference bit is already set), so the hit is counted without
//     consulting the cache;
//   - only when the structural summary is unusable (non-contiguous
//     reduction terms) does the general event pass run, sweeping each
//     decoded event down every order-dependent configuration of the
//     bucket (batchEventPass).
//
// Large groups additionally fan out across cores: RunBatchN splits the
// configuration slab into contiguous partitions, each classified by
// its own batchWorker (own caches, own slabs) over the shared
// read-only decoded stream, with results landing at their original
// indices. The same single-assignment argument that makes the batch
// sound makes the fan-out sound: configurations never interact, so
// partitions share nothing mutable. Small groups stay serial — the
// dispatch threshold keeps the common singleton/duo groups free of
// goroutine cost.
//
// Results are bit-identical to per-configuration Replayer.Run and to
// direct sim.Run; refstream_test.go, FuzzBatchVsSingle,
// TestParallelMatchesSerialBatch and FuzzParallelVsSerialBatch hold
// the equivalence across kernels and worker counts, and docs/PERF.md
// records the measured win.

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Observability names recorded by RunBatch on Replayer.Metrics.
const (
	// MetricBatchGroups counts RunBatch invocations (capture groups
	// classified by the batch path).
	MetricBatchGroups = "refstream.batch.groups"
	// MetricBatchConfigsPerPass is a histogram of how many
	// configurations each shared event pass classified (obs.DepthBuckets).
	MetricBatchConfigsPerPass = "refstream.batch.configs_per_pass"
	// MetricBatchDecodePasses counts event-column walks: the quantity
	// batching minimizes (one per page-size bucket with at least one
	// order-dependent configuration — per partition when the batch runs
	// parallel — instead of one per configuration).
	MetricBatchDecodePasses = "refstream.batch.decode_passes"
	// MetricBatchPartitions is a histogram of how many slab partitions
	// each RunBatch call fanned out to (obs.DepthBuckets); 1 means the
	// group ran serial.
	MetricBatchPartitions = "refstream.batch.partitions"
)

// BatchError attributes a RunBatch failure to the configuration that
// caused it: Index is the position in the cfgs slice handed to
// RunBatch. Configurations are validated and set up in input order, so
// Index is always the lowest failing position — callers mapping batch
// positions back to grid indices keep the sweep engine's lowest-index
// error contract.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("config %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// batchWorker owns one partition's worth of mutable replay state: the
// slot caches, the memoized layout table, and the structure-of-arrays
// slabs. The Replayer embeds one — serial RunBatch and single-config
// Run share it — and a parallel RunBatch draws extra workers from a
// free list, so steady-state parallel calls reuse every partition's
// slabs just as serial calls reuse the embedded one. Workers never
// share mutable state: each classifies a contiguous, disjoint slice of
// the configuration slab over the shared read-only decoded stream.
type batchWorker struct {
	caches  []*cache.Cache
	layouts map[layoutKey]partition.Layout // memoized boxed layouts, shared by Run and RunBatch
	bat     batchState
}

// batchState is RunBatch's reusable scratch: flat structure-of-arrays
// slabs indexed by configuration (directly, or per (configuration, PE)
// through the peOff prefix table). Everything grows on first use and is
// reused across calls.
type batchState struct {
	// Per-configuration geometry and classification class.
	npe       []int
	frameless []bool // the configuration's cache holds zero page frames
	eventPath []bool // order-dependent: classified against the read column or event pass
	fold      []bool // order-free and servable from the foldSize² contingency table

	// Inline LRU state. Framed LRU configurations — the standard grid's
	// entire framed population — are classified against a recency-ordered
	// row of maxPages gids per (configuration, PE) instead of the full
	// cache machinery: lookup is a linear scan of one cache line, hit is
	// a move-to-front, miss shifts the row and drops the tail. The
	// decisions are exactly cache.Cache's LRU (same policy, and replay
	// inserts only after misses, so Stats reduce to closed form:
	// Inserts = Misses, Evictions = Inserts − resident, no refreshes or
	// partial misses).
	lru      []bool  // per configuration: classified by the inline LRU rows
	packed   []bool  // inline LRU rows live in the packed word slab instead
	maxPages []int   // per configuration: page frames (CacheElems/PageSize)
	frames   []int32 // recency rows, npe×maxPages per configuration, -1 = empty

	// Packed recency rows: when a framed LRU configuration has at most
	// eight frames, modulo layout with a power-of-two machine width, and
	// a page space that fits 16-bit tags, its rows are packed four
	// uint16 lanes per word (lane 0 = most recent, 0xFFFF = empty), so
	// lookup is a SWAR compare and replacement a pair of word shifts —
	// the batch replayer's vector unit, and the shape the standard
	// grid's entire framed population takes.
	pframes []uint64

	// Prefix tables into the flat slabs, all len(cfgs)+1.
	peOff    []int // sums of NPE: per-(configuration, PE) slab offsets
	trafOff  []int // sums of NPE²: traffic-slab offsets
	ownOff   []int // sums of the page count under the configuration's page size
	frameOff []int // sums of NPE×maxPages: inline-LRU row offsets
	pfOff    []int // sums of NPE×words-per-row: packed-LRU row offsets

	// Flat per-(configuration, PE) state.
	perPE    stats.PerPE
	lastGid  []int32 // last page id the PE's cache operated on; -1 initially
	xhits    []int64 // short-circuited hits, folded into cache.Stats at assembly
	particip []bool  // reduction participation marks

	// Flat per-configuration slabs.
	traf   []int64 // npe×npe traffic matrices, row-major
	owners []int32 // owner tables under the configuration's page size

	// Per-configuration reduce tallies.
	reduceS []int64
	reduceB []int64

	pageBase []int32   // appendPageTable scratch
	psList   []int     // distinct page sizes, first-appearance order
	evIdx    []int     // order-dependent configurations of the current bucket
	evs      []evState // event-pass views of the current bucket's configurations
}

// evState is the event pass's view of one configuration: slice headers
// into the batchState slabs plus the tiny mutable context the stream
// state machine tracks per configuration. Keeping the headers together
// makes the per-event inner loop one pointer hop per configuration.
type evState struct {
	owners   []int32
	perPE    stats.PerPE
	traf     []int64
	lastGid  []int32
	xhits    []int64
	particip []bool
	caches   []*cache.Cache

	frames []int32 // inline-LRU recency rows, npe×mp; nil for the cache path

	npe       int32
	mp        int32 // frames per row; >0 selects the inline LRU
	cur       int32 // open context PE, -1 when none (mirrors runEvents)
	frameless bool
	anyTerms  bool
	reduceS   int64
	reduceB   int64
	cfgIdx    int // position in the RunBatch cfgs slice
}

// lruCap bounds the inline LRU: beyond this many frames the linear
// row scan loses to the cache's O(1) slot table, so wide caches keep
// the cache path. packCap bounds the packed rows (two words of four
// 16-bit lanes); packEmpty is the empty-lane sentinel, so packing
// requires every page id to stay below it. laneOnes/laneHighs are the
// SWAR constants for the per-lane equality test.
const (
	lruCap    = 64
	packCap   = 8
	lanes     = 4
	packEmpty = 0xFFFF
	laneOnes  = 0x0001000100010001
	laneHighs = 0x8000800080008000
)

// Partition thresholds: below batchParMinConfigs a group always runs
// serial (goroutine dispatch would cost more than the sweep itself),
// and no partition is cut thinner than batchParMinPerPart
// configurations so every worker amortizes its slab setup.
const (
	batchParMinConfigs = 8
	batchParMinPerPart = 4
)

// batchPartitions sizes the fan-out for an n-configuration group under
// a parallelism budget of workers; 1 means serial.
func batchPartitions(n, workers int) int {
	if workers <= 1 || n < batchParMinConfigs {
		return 1
	}
	np := n / batchParMinPerPart
	if np > workers {
		np = workers
	}
	if np < 2 {
		return 1
	}
	return np
}

// RunBatch classifies the stream under every configuration of a capture
// group in one pass and returns the Results in cfgs order. Each Result
// is bit-identical to Run(st, cfgs[i]) — and therefore to a direct
// sim.Run of the same point. On failure the returned error is a
// *BatchError whose Index is the lowest failing position in cfgs.
// Beyond the Results themselves, a steady-state call allocates nothing.
// When Replayer.Workers is above 1 the call may fan out (RunBatchN).
func (r *Replayer) RunBatch(st *Stream, cfgs []sim.Config) ([]*sim.Result, error) {
	return r.RunBatchN(st, cfgs, r.Workers)
}

// RunBatchN is RunBatch under an explicit parallelism budget: a large
// enough group is split into up to workers contiguous slab partitions,
// each classified concurrently by its own batchWorker over the shared
// read-only decoded stream, with every Result landing at its original
// index — so the output (and the error, attributed to the lowest
// failing position across partitions) is byte-identical to a serial
// call. Groups too small to amortize the dispatch run serial
// regardless of budget. The per-call goroutine fan-out is the only
// steady-state cost parallelism adds: partition slabs come from the
// worker free list and are reused across calls.
func (r *Replayer) RunBatchN(st *Stream, cfgs []sim.Config, workers int) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(cfgs))
	if len(cfgs) == 0 {
		return results, nil
	}
	// Single-assignment so the goroutine closure below captures the
	// histogram by value, not by heap-allocated reference (nil-safe:
	// Histogram returns nil on a nil registry).
	hConfigs := r.Metrics.Histogram(MetricBatchConfigsPerPass, obs.DepthBuckets)
	nparts := batchPartitions(len(cfgs), workers)
	passes := 0
	if nparts < 2 {
		p, err := r.batchWorker.runBatchPart(st, cfgs, results, hConfigs)
		if err != nil {
			return nil, err
		}
		passes = p
	} else {
		for len(r.extra) < nparts-1 {
			r.extra = append(r.extra, &batchWorker{})
		}
		r.parOffs = grown(r.parOffs, nparts+1)
		r.parPasses = grown(r.parPasses, nparts)
		r.parErrs = grown(r.parErrs, nparts)
		size, rem := len(cfgs)/nparts, len(cfgs)%nparts
		off := 0
		for p := 0; p < nparts; p++ {
			r.parOffs[p] = off
			off += size
			if p < rem {
				off++
			}
		}
		r.parOffs[nparts] = off
		var wg sync.WaitGroup
		for p := 0; p < nparts; p++ {
			w := &r.batchWorker
			if p > 0 {
				w = r.extra[p-1]
			}
			lo, hi := r.parOffs[p], r.parOffs[p+1]
			wg.Add(1)
			go func(p int, w *batchWorker, cfgs []sim.Config, results []*sim.Result) {
				defer wg.Done()
				r.parPasses[p], r.parErrs[p] = w.runBatchPart(st, cfgs, results, hConfigs)
			}(p, w, cfgs[lo:hi], results[lo:hi])
		}
		wg.Wait()
		// Partitions are contiguous and ascending and each reports its
		// own lowest failing position, so the first failing partition in
		// order carries the globally lowest index.
		for p := 0; p < nparts; p++ {
			if err := r.parErrs[p]; err != nil {
				var be *BatchError
				if errors.As(err, &be) {
					return nil, &BatchError{Index: r.parOffs[p] + be.Index, Err: be.Err}
				}
				return nil, err
			}
			passes += r.parPasses[p]
		}
	}
	if r.Metrics != nil {
		r.Metrics.Counter(MetricBatchGroups).Inc()
		r.Metrics.Counter(MetricBatchDecodePasses).Add(int64(passes))
		r.Metrics.Histogram(MetricBatchPartitions, obs.DepthBuckets).Observe(int64(nparts))
	}
	return results, nil
}

// runBatchPart classifies one contiguous partition of a capture group
// into results (len(results) == len(cfgs)): the whole serial batch
// algorithm, against this worker's own slabs. A returned *BatchError
// carries the partition-local index. hConfigs may be nil; obs
// instruments are race-safe, so concurrent partitions observe it
// directly. Returns the partition's decode-pass count.
func (w *batchWorker) runBatchPart(st *Stream, cfgs []sim.Config, results []*sim.Result, hConfigs *obs.Histogram) (int, error) {
	b := &w.bat
	n := len(cfgs)

	// Size and zero the slabs. Invalid geometry contributes nothing
	// here; the setup pass below rejects it, in input order, with the
	// exact error a single-config Run of the same point reports.
	b.npe = grown(b.npe, n)
	b.frameless = grown(b.frameless, n)
	b.eventPath = grown(b.eventPath, n)
	b.fold = grown(b.fold, n)
	b.reduceS = grown(b.reduceS, n)
	b.reduceB = grown(b.reduceB, n)
	b.lru = grown(b.lru, n)
	b.packed = grown(b.packed, n)
	b.maxPages = grown(b.maxPages, n)
	b.peOff = grown(b.peOff, n+1)
	b.trafOff = grown(b.trafOff, n+1)
	b.ownOff = grown(b.ownOff, n+1)
	b.frameOff = grown(b.frameOff, n+1)
	b.pfOff = grown(b.pfOff, n+1)
	pe, tr, ow, fr, pf := 0, 0, 0, 0, 0
	for i, cfg := range cfgs {
		b.peOff[i], b.trafOff[i], b.ownOff[i], b.frameOff[i], b.pfOff[i] = pe, tr, ow, fr, pf
		if cfg.NPE > 0 && cfg.PageSize > 0 {
			pe += cfg.NPE
			tr += cfg.NPE * cfg.NPE
			pages := 0
			for _, elems := range st.ArrayLens {
				pages += (elems + cfg.PageSize - 1) / cfg.PageSize
			}
			ow += pages
			mp := cfg.CacheElems / cfg.PageSize
			if mp > 0 && mp <= lruCap {
				fr += cfg.NPE * mp
			}
			if mp > 0 && mp <= packCap && pages < packEmpty &&
				cfg.NPE&(cfg.NPE-1) == 0 && cfg.Layout == partition.KindModulo {
				pf += cfg.NPE * ((mp + lanes - 1) / lanes)
			}
		}
	}
	b.peOff[n], b.trafOff[n], b.ownOff[n], b.frameOff[n], b.pfOff[n] = pe, tr, ow, fr, pf
	b.perPE = grown(b.perPE, pe)
	b.lastGid = grown(b.lastGid, pe)
	for i := range b.lastGid {
		b.lastGid[i] = -1
	}
	b.xhits = grown(b.xhits, pe)
	b.particip = grown(b.particip, pe)
	b.traf = grown(b.traf, tr)
	b.owners = grown(b.owners, ow)
	b.frames = grown(b.frames, fr)
	b.pframes = grown(b.pframes, pf)
	if len(w.caches) < pe {
		w.caches = append(w.caches, make([]*cache.Cache, pe-len(w.caches))...)
	}

	// Per-configuration machine setup, strictly in input order so the
	// first error is the lowest-index one: validation, owner tables,
	// cache frames (all of a framed event-path configuration's PEs;
	// one cache otherwise, for parameter validation only — order-free
	// and frameless classification never consults it, exactly like Run).
	for i := range cfgs {
		if err := w.setupBatchConfig(st, i, cfgs[i]); err != nil {
			return 0, &BatchError{Index: i, Err: err}
		}
	}

	// Classification, bucketed by page size: the gid column and the
	// run-length histogram are per page size, so sharing a bucket means
	// computing them once for every configuration in it.
	heads, _ := st.decoded()
	b.psList = b.psList[:0]
	for _, cfg := range cfgs {
		known := false
		for _, ps := range b.psList {
			if ps == cfg.PageSize {
				known = true
				break
			}
		}
		if !known {
			b.psList = append(b.psList, cfg.PageSize)
		}
	}
	passes := 0
	for _, ps := range b.psList {
		gids := st.gidColumn(ps)
		agg := st.frameAgg(ps)
		b.evIdx = b.evIdx[:0]
		first := -1
		for i, cfg := range cfgs {
			if cfg.PageSize != ps {
				continue
			}
			if first < 0 {
				first = i
			}
			if b.eventPath[i] {
				b.evIdx = append(b.evIdx, i)
				continue
			}
			npe := b.npe[i]
			if b.fold[i] {
				foldClassify(st.foldTable(ps), npe,
					b.perPE[b.peOff[i]:b.peOff[i+1]],
					b.traf[b.trafOff[i]:b.trafOff[i+1]])
				b.reduceS[i], b.reduceB[i] = aggregateReduces(agg, npe,
					b.owners[b.ownOff[i]:b.ownOff[i+1]],
					b.traf[b.trafOff[i]:b.trafOff[i+1]],
					b.particip[b.peOff[i]:b.peOff[i+1]])
				continue
			}
			b.reduceS[i], b.reduceB[i] = aggregateClassify(agg, st.readsHist(ps), npe,
				b.owners[b.ownOff[i]:b.ownOff[i+1]],
				b.perPE[b.peOff[i]:b.peOff[i+1]],
				b.traf[b.trafOff[i]:b.trafOff[i+1]],
				b.particip[b.peOff[i]:b.peOff[i+1]])
		}
		if len(b.evIdx) == 0 {
			continue
		}
		if len(gids) != len(heads) {
			return 0, &BatchError{Index: first, Err: fmt.Errorf(
				"refstream: %s: corrupt stream: %d gids for %d events", st.Kernel.Key, len(gids), len(heads))}
		}
		passes++
		hConfigs.Observe(int64(len(b.evIdx)))
		if agg.ok {
			// Config-major classification over the context-resolved read
			// column: the cache part is the only order-dependent piece, so
			// each framed configuration scans the dense column once while
			// writes and reductions come from the shared histogram.
			col := st.readColumn(ps)
			for _, i := range b.evIdx {
				npe := b.npe[i]
				lo := b.peOff[i]
				owners := b.owners[b.ownOff[i]:b.ownOff[i+1]]
				perPE := b.perPE[lo : lo+npe]
				traf := b.traf[b.trafOff[i]:b.trafOff[i+1]]
				switch {
				case b.packed[i]:
					rows := b.pframes[b.pfOff[i]:b.pfOff[i+1]]
					if b.maxPages[i] <= lanes {
						classifyReadsLRUP1(col, npe, b.maxPages[i], owners, rows, perPE, traf)
					} else {
						classifyReadsLRUP2(col, npe, b.maxPages[i], owners, rows, perPE, traf)
					}
				case b.lru[i]:
					classifyReadsLRU(col, npe, b.maxPages[i], owners,
						b.frames[b.frameOff[i]:b.frameOff[i+1]], perPE, traf)
				default:
					classifyReadsCache(col, npe, owners, w.caches[lo:lo+npe],
						b.lastGid[lo:lo+npe], b.xhits[lo:lo+npe], perPE, traf)
				}
				aggregateWrites(agg, owners, perPE)
				b.reduceS[i], b.reduceB[i] = aggregateReduces(agg, npe, owners, traf,
					b.particip[lo:lo+npe])
			}
		} else {
			// Histogram unusable (non-contiguous reduction terms): the
			// general event pass sweeps each decoded event down every
			// order-dependent configuration of the bucket.
			b.evs = b.evs[:0]
			for _, i := range b.evIdx {
				b.evs = append(b.evs, w.evView(i))
			}
			if err := batchEventPass(st, heads, gids[:len(heads)], b.evs); err != nil {
				return 0, &BatchError{Index: first, Err: err}
			}
			for j := range b.evs {
				e := &b.evs[j]
				b.reduceS[e.cfgIdx], b.reduceB[e.cfgIdx] = e.reduceS, e.reduceB
			}
		}
	}
	// Result assembly, mirroring Run exactly: fresh counter and traffic
	// copies, shared (immutable) checksums, synthesized cache stats for
	// frameless configurations, and short-circuited hits folded into the
	// cache's own counters.
	for i := range cfgs {
		npe := b.npe[i]
		peBase := b.peOff[i]
		perPE := b.perPE[peBase : peBase+npe]
		res := &sim.Result{
			Kernel: st.Kernel.Key, N: st.N, Config: cfgs[i],
			PerPE:        append(stats.PerPE(nil), perPE...),
			ReduceSends:  b.reduceS[i],
			ReduceBcasts: b.reduceB[i],
			Checksums:    st.Checksums,
		}
		res.Totals = res.PerPE.Totals()
		slab := append([]int64(nil), b.traf[b.trafOff[i]:b.trafOff[i+1]]...)
		res.Traffic = make([][]int64, npe)
		for p := range res.Traffic {
			res.Traffic[p] = slab[p*npe : (p+1)*npe : (p+1)*npe]
		}
		res.Cache = make([]cache.Stats, npe)
		for p := 0; p < npe; p++ {
			switch {
			case b.frameless[i]:
				res.Cache[p] = cache.Stats{Misses: perPE[p].RemoteReads}
			case b.lru[i]:
				// Closed-form cache stats: framed replay hits are exactly
				// CachedReads and misses exactly RemoteReads; every miss
				// inserted, and each insert past the row's capacity
				// evicted. No refreshes or partial misses can occur.
				var resident int64
				if b.packed[i] {
					words := (b.maxPages[i] + lanes - 1) / lanes
					for _, w := range b.pframes[b.pfOff[i]+p*words : b.pfOff[i]+(p+1)*words] {
						for l := 0; l < lanes; l++ {
							if w&packEmpty != packEmpty {
								resident++
							}
							w >>= 16
						}
					}
				} else {
					mp := b.maxPages[i]
					for _, g := range b.frames[b.frameOff[i]+p*mp : b.frameOff[i]+(p+1)*mp] {
						if g >= 0 {
							resident++
						}
					}
				}
				res.Cache[p] = cache.Stats{
					Hits:      perPE[p].CachedReads,
					Misses:    perPE[p].RemoteReads,
					Inserts:   perPE[p].RemoteReads,
					Evictions: perPE[p].RemoteReads - resident,
				}
			default:
				s := w.caches[peBase+p].Stats()
				s.Hits += b.xhits[peBase+p]
				res.Cache[p] = s
			}
		}
		results[i] = res
	}
	return passes, nil
}

// setupBatchConfig validates cfgs[i] and derives its machine properties
// into the batch slabs: the owner table under its page size and layout,
// and freshly reset cache frames. The work and the error messages match
// what Run performs for the same configuration.
func (w *batchWorker) setupBatchConfig(st *Stream, i int, cfg sim.Config) error {
	if err := validateConfig(cfg); err != nil {
		return err
	}
	b := &w.bat
	npe := cfg.NPE
	b.npe[i] = npe
	var totalPages int
	b.pageBase, totalPages = appendPageTable(b.pageBase, st.ArrayLens, cfg.PageSize)
	owners := b.owners[b.ownOff[i]:b.ownOff[i+1]]
	for a, elems := range st.ArrayLens {
		pages := (elems + cfg.PageSize - 1) / cfg.PageSize
		l, err := w.layout(cfg.Layout, npe, pages, cfg.LayoutRun)
		if err != nil {
			return fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
		}
		base := b.pageBase[a]
		for p := 0; p < pages; p++ {
			owners[base+int32(p)] = int32(l.Owner(p))
		}
	}
	mp := cfg.CacheElems / cfg.PageSize
	b.maxPages[i] = mp
	b.frameless[i] = mp == 0 || totalPages == 0
	agg := st.frameAgg(cfg.PageSize)
	b.eventPath[i] = !((b.frameless[i] || npe == 1) && agg.ok)
	b.lru[i] = b.eventPath[i] && !b.frameless[i] && cfg.Policy == cache.LRU && mp <= lruCap
	b.packed[i] = b.lru[i] && agg.ok && mp <= packCap && totalPages < packEmpty &&
		npe&(npe-1) == 0 && cfg.Layout == partition.KindModulo
	// The contingency table serves an order-free configuration whenever
	// the folded page key determines the owner (see foldEligible);
	// everything else falls back to the lazily built read histogram.
	b.fold[i] = !b.eventPath[i] && foldEligible(cfg, npe)
	if b.packed[i] {
		// Packed rows: every lane empty. The read-column walk is the only
		// consumer, so the int32 rows stay untouched.
		rows := b.pframes[b.pfOff[i]:b.pfOff[i+1]]
		for j := range rows {
			rows[j] = ^uint64(0)
		}
		return nil
	}
	if b.lru[i] {
		// Inline LRU rows replace the cache machinery entirely. No cache
		// parameter can be invalid here (the policy is LRU and
		// validateConfig covered the geometry), so skipping NewSlots
		// loses no validation.
		rows := b.frames[b.frameOff[i]:b.frameOff[i+1]]
		for j := range rows {
			rows[j] = -1
		}
		return nil
	}
	ncaches := 1 // validation only: frameless/order-free classification never consults frames
	if b.eventPath[i] && !b.frameless[i] {
		ncaches = npe
	}
	for p := 0; p < ncaches; p++ {
		slot := b.peOff[i] + p
		if w.caches[slot] == nil {
			c, err := cache.NewSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages)
			if err != nil {
				return fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
			}
			w.caches[slot] = c
		} else if err := w.caches[slot].ReconfigureSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages); err != nil {
			return fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
		}
	}
	return nil
}

// evView builds the event pass's view of configuration i.
func (w *batchWorker) evView(i int) evState {
	b := &w.bat
	lo, hi := b.peOff[i], b.peOff[i+1]
	e := evState{
		owners:    b.owners[b.ownOff[i]:b.ownOff[i+1]],
		perPE:     b.perPE[lo:hi],
		traf:      b.traf[b.trafOff[i]:b.trafOff[i+1]],
		lastGid:   b.lastGid[lo:hi],
		xhits:     b.xhits[lo:hi],
		particip:  b.particip[lo:hi],
		caches:    w.caches[lo:hi],
		npe:       int32(b.npe[i]),
		cur:       -1,
		frameless: b.frameless[i],
		cfgIdx:    i,
	}
	if b.lru[i] {
		e.frames = b.frames[b.frameOff[i]:b.frameOff[i+1]]
		e.mp = int32(b.maxPages[i])
	}
	return e
}

// batchEventPass streams the decoded events once, sweeping each event
// down every order-dependent configuration of one page-size bucket.
// Per configuration it is runEvents' state machine verbatim, plus the
// lastGid short circuit: a PE whose cache's previous operation was on
// the same page takes a guaranteed hit without touching the cache (the
// page is resident, and re-touching it mutates no replacement state
// under any policy — see the package comment above).
func batchEventPass(st *Stream, heads []uint32, gids []int32, evs []evState) error {
	for i, h := range heads {
		op := h & 7
		if op == opRead {
			gid := gids[i]
			for j := range evs {
				e := &evs[j]
				if cur := e.cur; cur >= 0 {
					owner := e.owners[gid]
					switch {
					case owner == cur:
						e.perPE[cur].LocalReads++
					case e.frameless:
						npe := int(e.npe)
						e.perPE[cur].RemoteReads++
						e.traf[int(cur)*npe+int(owner)]++
						e.traf[int(owner)*npe+int(cur)]++
					case e.lastGid[cur] == gid:
						e.perPE[cur].CachedReads++
						e.xhits[cur]++
					default:
						e.lastGid[cur] = gid
						e.classifyMiss(int(cur), int(owner), gid)
					}
				} else {
					e.controlRead(gid)
				}
			}
			continue
		}
		switch op {
		case opAssign:
			for j := range evs {
				e := &evs[j]
				e.cur = e.owners[gids[i]]
				e.perPE[e.cur].Writes++ // writes are always local (§7)
			}
		case opEnd:
			for j := range evs {
				evs[j].cur = -1
			}
		case opTerm:
			for j := range evs {
				e := &evs[j]
				e.cur = e.owners[gids[i]]
				e.particip[e.cur] = true
				e.anyTerms = true
			}
		case opEndReduce:
			for j := range evs {
				evs[j].endReduce(int(h >> 3))
			}
		default:
			return fmt.Errorf("refstream: %s: corrupt stream: opcode %d", st.Kernel.Key, h&7)
		}
	}
	return nil
}

// foldClassify charges reads, control reads and writes from the
// stream's contingency table: the owner of every folded page key is
// key & (npe-1), so the whole classification is a fixed foldSize² walk
// regardless of stream length. Exact for order-free configurations
// whose owner function the fold preserves (see batchState.fold).
func foldClassify(t *foldTable, npe int, perPE stats.PerPE, traf []int64) {
	m := npe - 1
	for ck := 0; ck < foldSize; ck++ {
		p := ck & m
		row := t.reads[ck<<foldBits : ck<<foldBits+foldSize]
		for gk, cnt := range row {
			if cnt == 0 {
				continue
			}
			q := gk & m
			if p == q {
				perPE[p].LocalReads += cnt
			} else {
				perPE[p].RemoteReads += cnt
				traf[p*npe+q] += cnt
				traf[q*npe+p] += cnt
			}
		}
	}
	for gk, cnt := range t.ctrl {
		if cnt == 0 {
			continue
		}
		q := gk & m
		perPE[q].LocalReads += cnt
		for pe := 0; pe < npe; pe++ {
			if pe == q {
				continue
			}
			perPE[pe].RemoteReads += cnt
			traf[pe*npe+q] += cnt
			traf[q*npe+pe] += cnt
		}
	}
	for gk, cnt := range t.wr {
		if cnt != 0 {
			perPE[gk&m].Writes += cnt
		}
	}
}

// classifyReadsLRU walks the context-resolved read column for one
// framed LRU configuration, classifying against its inline recency
// rows. The front-of-row check doubles as the guaranteed-hit short
// circuit (the most recent page is by definition row[0]).
func classifyReadsLRU(col []readRec, npe, mp int, owners, frames []int32, perPE stats.PerPE, traf []int64) {
	lastCtx, cur := int32(-2), -1 // -2: no owner lookup cached yet
	for _, rc := range col {
		if rc.ctx != lastCtx {
			lastCtx = rc.ctx
			if lastCtx >= 0 {
				cur = int(owners[lastCtx])
			} else {
				cur = -1
			}
		}
		gid := rc.gid
		c := int64(rc.count)
		if cur >= 0 {
			owner := int(owners[gid])
			if owner == cur {
				perPE[cur].LocalReads += c
				continue
			}
			lruTouch(frames[cur*mp:cur*mp+mp], gid, cur, owner, npe, c, perPE, traf)
		} else {
			owner := int(owners[gid])
			for pe := 0; pe < npe; pe++ {
				if pe == owner {
					perPE[pe].LocalReads += c
					continue
				}
				lruTouch(frames[pe*mp:pe*mp+mp], gid, pe, owner, npe, c, perPE, traf)
			}
		}
	}
}

// lruTouch performs one run of c lookups against an inline LRU row:
// scan for the page, re-front it on a hit, shift-insert on a miss with
// the tail falling off — exactly cache.Cache's LRU decisions for
// replay's lookup-then-insert-on-miss discipline. After the first
// lookup the page is the row's front, so the run's remaining c−1
// lookups are hits regardless of how the first resolved.
func lruTouch(row []int32, gid int32, pe, owner, npe int, c int64, perPE stats.PerPE, traf []int64) {
	if row[0] == gid {
		perPE[pe].CachedReads += c
		return
	}
	for i := 1; i < len(row); i++ {
		if row[i] == gid { // hit: refresh recency, exactly LRU's touch
			for j := i; j > 0; j-- {
				row[j] = row[j-1]
			}
			row[0] = gid
			perPE[pe].CachedReads += c
			return
		}
	}
	for j := len(row) - 1; j > 0; j-- { // miss: insert at front, tail falls off
		row[j] = row[j-1]
	}
	row[0] = gid
	perPE[pe].RemoteReads++
	perPE[pe].CachedReads += c - 1
	traf[pe*npe+owner]++ // page request
	traf[owner*npe+pe]++ // page reply
}

// classifyReadsLRUP1 is classifyReadsLRU for packed single-word rows
// (at most four frames): the row scan is one SWAR halfword compare and
// recency maintenance a pair of shifts, all inlined into the walk. The
// modulo-layout and power-of-two preconditions (batchState.packed) let
// the owner come from the read's array-local page index by mask,
// skipping the owner-table load entirely.
func classifyReadsLRUP1(col []readRec, npe, mp int, owners []int32, rows []uint64, perPE stats.PerPE, traf []int64) {
	m := int32(npe - 1)
	keep := uint64(1)<<(16*uint(mp)) - 1 // mp=4 shifts past the word: keep = ^0
	lastCtx, cur := int32(-2), -1        // -2: no owner lookup cached yet
	for _, rc := range col {
		if rc.ctx != lastCtx {
			lastCtx = rc.ctx
			if lastCtx >= 0 {
				cur = int(owners[lastCtx])
			} else {
				cur = -1
			}
		}
		g := uint64(uint32(rc.gid))
		owner := int(rc.loc & m)
		c := int64(rc.count)
		if cur >= 0 {
			if owner == cur {
				perPE[cur].LocalReads += c
				continue
			}
			w := rows[cur]
			if w&packEmpty == g { // front lane: the guaranteed-hit short circuit
				perPE[cur].CachedReads += c
				continue
			}
			x := w ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[cur] = w&^(uint64(1)<<(s+16)-1) | (w&(uint64(1)<<s-1))<<16 | g
				perPE[cur].CachedReads += c
			} else {
				rows[cur] = ((w<<16 | g) & keep) | ^keep
				perPE[cur].RemoteReads++
				perPE[cur].CachedReads += c - 1 // the rest of the run re-hits the new front
				traf[cur*npe+owner]++           // page request
				traf[owner*npe+cur]++           // page reply
			}
			continue
		}
		for pe := 0; pe < npe; pe++ { // control read: every PE executes it
			if pe == owner {
				perPE[pe].LocalReads += c
				continue
			}
			w := rows[pe]
			if w&packEmpty == g {
				perPE[pe].CachedReads += c
				continue
			}
			x := w ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[pe] = w&^(uint64(1)<<(s+16)-1) | (w&(uint64(1)<<s-1))<<16 | g
				perPE[pe].CachedReads += c
			} else {
				rows[pe] = ((w<<16 | g) & keep) | ^keep
				perPE[pe].RemoteReads++
				perPE[pe].CachedReads += c - 1
				traf[pe*npe+owner]++
				traf[owner*npe+pe]++
			}
		}
	}
}

// classifyReadsLRUP2 extends the packed walk to two-word rows (five to
// eight frames). Recency runs lane 0 of word 0 (most recent) through
// lane 3 of word 1: a hit in word 1 extracts the lane, slides word 0 up
// with its last lane spilling into word 1's front, and a miss shifts
// both words with word 1's tail falling off.
func classifyReadsLRUP2(col []readRec, npe, mp int, owners []int32, rows []uint64, perPE stats.PerPE, traf []int64) {
	m := int32(npe - 1)
	keep1 := uint64(1)<<(16*uint(mp-lanes)) - 1 // mp=8: keep = ^0
	lastCtx, cur := int32(-2), -1
	for _, rc := range col {
		if rc.ctx != lastCtx {
			lastCtx = rc.ctx
			if lastCtx >= 0 {
				cur = int(owners[lastCtx])
			} else {
				cur = -1
			}
		}
		g := uint64(uint32(rc.gid))
		owner := int(rc.loc & m)
		c := int64(rc.count)
		if cur >= 0 {
			if owner == cur {
				perPE[cur].LocalReads += c
				continue
			}
			j := cur * 2
			w0 := rows[j]
			if w0&packEmpty == g {
				perPE[cur].CachedReads += c
				continue
			}
			x := w0 ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[j] = w0&^(uint64(1)<<(s+16)-1) | (w0&(uint64(1)<<s-1))<<16 | g
				perPE[cur].CachedReads += c
				continue
			}
			w1 := rows[j+1]
			x = w1 ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[j+1] = w1&^(uint64(1)<<(s+16)-1) | (w1&(uint64(1)<<s-1))<<16 | w0>>48
				rows[j] = w0<<16 | g
				perPE[cur].CachedReads += c
			} else {
				rows[j] = w0<<16 | g
				rows[j+1] = ((w1<<16 | w0>>48) & keep1) | ^keep1
				perPE[cur].RemoteReads++
				perPE[cur].CachedReads += c - 1
				traf[cur*npe+owner]++
				traf[owner*npe+cur]++
			}
			continue
		}
		for pe := 0; pe < npe; pe++ {
			if pe == owner {
				perPE[pe].LocalReads += c
				continue
			}
			j := pe * 2
			w0 := rows[j]
			if w0&packEmpty == g {
				perPE[pe].CachedReads += c
				continue
			}
			x := w0 ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[j] = w0&^(uint64(1)<<(s+16)-1) | (w0&(uint64(1)<<s-1))<<16 | g
				perPE[pe].CachedReads += c
				continue
			}
			w1 := rows[j+1]
			x = w1 ^ (g * laneOnes)
			if d := (x - laneOnes) & ^x & laneHighs; d != 0 {
				s := uint(bits.TrailingZeros64(d)) &^ 15
				rows[j+1] = w1&^(uint64(1)<<(s+16)-1) | (w1&(uint64(1)<<s-1))<<16 | w0>>48
				rows[j] = w0<<16 | g
				perPE[pe].CachedReads += c
			} else {
				rows[j] = w0<<16 | g
				rows[j+1] = ((w1<<16 | w0>>48) & keep1) | ^keep1
				perPE[pe].RemoteReads++
				perPE[pe].CachedReads += c - 1
				traf[pe*npe+owner]++
				traf[owner*npe+pe]++
			}
		}
	}
}

// classifyReadsCache is classifyReadsLRU for the remaining framed
// configurations (non-LRU policies, or caches wider than the inline
// row bound): same column walk, against the real slot caches, with the
// lastGid guaranteed-hit short circuit and its xhits fold-back.
func classifyReadsCache(col []readRec, npe int, owners []int32, caches []*cache.Cache, lastGid []int32, xhits []int64, perPE stats.PerPE, traf []int64) {
	lastCtx, cur := int32(-2), -1
	for _, rc := range col {
		if rc.ctx != lastCtx {
			lastCtx = rc.ctx
			if lastCtx >= 0 {
				cur = int(owners[lastCtx])
			} else {
				cur = -1
			}
		}
		gid := rc.gid
		c := int64(rc.count)
		if cur >= 0 {
			owner := int(owners[gid])
			switch {
			case owner == cur:
				perPE[cur].LocalReads += c
			case lastGid[cur] == gid:
				perPE[cur].CachedReads += c
				xhits[cur] += c
			default:
				lastGid[cur] = gid
				cacheTouch(caches[cur], gid, cur, owner, npe, c, perPE, traf, xhits)
			}
		} else {
			owner := int(owners[gid])
			for pe := 0; pe < npe; pe++ {
				switch {
				case pe == owner:
					perPE[pe].LocalReads += c
				case lastGid[pe] == gid:
					perPE[pe].CachedReads += c
					xhits[pe] += c
				default:
					lastGid[pe] = gid
					cacheTouch(caches[pe], gid, pe, owner, npe, c, perPE, traf, xhits)
				}
			}
		}
	}
}

// cacheTouch is one lookup-and-insert against a real slot cache, for a
// run of cnt reads: the first consults the cache, the remaining cnt−1
// are the short-circuited hits single-config replay counts via lastGid
// (folded into the cache's Stats through xhits at assembly).
func cacheTouch(c *cache.Cache, gid int32, pe, owner, npe int, cnt int64, perPE stats.PerPE, traf []int64, xhits []int64) {
	switch c.LookupSlot(int(gid), 0) {
	case cache.Hit:
		perPE[pe].CachedReads += cnt
	default: // Miss (PartialMiss cannot occur without partial-fill modeling)
		perPE[pe].RemoteReads++
		perPE[pe].CachedReads += cnt - 1
		traf[pe*npe+owner]++ // page request
		traf[owner*npe+pe]++ // page reply
		c.InsertSlot(int(gid), nil)
	}
	xhits[pe] += cnt - 1
}

// controlRead charges one replicated control read — executed by every
// PE — to the configuration, with the same per-PE short circuit as
// context reads.
func (e *evState) controlRead(gid int32) {
	owner := int(e.owners[gid])
	npe := int(e.npe)
	for pe := 0; pe < npe; pe++ {
		switch {
		case owner == pe:
			e.perPE[pe].LocalReads++
		case e.frameless:
			e.perPE[pe].RemoteReads++
			e.traf[pe*npe+owner]++
			e.traf[owner*npe+pe]++
		case e.lastGid[pe] == gid:
			e.perPE[pe].CachedReads++
			e.xhits[pe]++
		default:
			e.lastGid[pe] = gid
			e.classifyMiss(pe, owner, gid)
		}
	}
}

// classifyMiss consults the PE's cache — the inline LRU row when the
// configuration qualifies, the real cache otherwise. The real-cache arm
// is the same arithmetic as Replayer.classifyMiss, against this
// configuration's state views.
func (e *evState) classifyMiss(pe, owner int, gid int32) {
	if mp := int(e.mp); mp > 0 {
		row := e.frames[pe*mp : pe*mp+mp]
		for i, g := range row {
			if g == gid { // hit: refresh recency, exactly LRU's touch
				copy(row[1:i+1], row[:i])
				row[0] = gid
				e.perPE[pe].CachedReads++
				return
			}
		}
		copy(row[1:], row) // miss: insert at front, tail falls off
		row[0] = gid
		npe := int(e.npe)
		e.perPE[pe].RemoteReads++
		e.traf[pe*npe+owner]++ // page request
		e.traf[owner*npe+pe]++ // page reply
		return
	}
	switch e.caches[pe].LookupSlot(int(gid), 0) {
	case cache.Hit:
		e.perPE[pe].CachedReads++
	default: // Miss (PartialMiss cannot occur without partial-fill modeling)
		npe := int(e.npe)
		e.perPE[pe].RemoteReads++
		e.traf[pe*npe+owner]++ // page request
		e.traf[owner*npe+pe]++ // page reply
		e.caches[pe].InsertSlot(int(gid), nil)
	}
}

// endReduce accounts the host-processor collection (§9) for one
// configuration: one send per participating PE, then a broadcast.
func (e *evState) endReduce(array int) {
	e.cur = -1
	npe := int(e.npe)
	host := array % npe
	for pe := 0; pe < npe; pe++ {
		if !e.particip[pe] {
			continue
		}
		e.reduceS++
		if pe != host {
			e.traf[pe*npe+host]++
		}
		e.particip[pe] = false
	}
	if e.anyTerms {
		e.reduceB += int64(npe - 1)
		for pe := 0; pe < npe; pe++ {
			if pe != host {
				e.traf[host*npe+pe]++
			}
		}
	}
	e.anyTerms = false
}
