package refstream

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestBatchMatchesSingleAllKernels is the batch replayer's equivalence
// contract: for every kernel, classifying the whole seeded shape grid
// in one RunBatch pass must produce Results bit-identical to
// per-configuration Replayer.Run — and, by Run's own contract, to
// direct sim.Run of every point.
func TestBatchMatchesSingleAllKernels(t *testing.T) {
	cfgs := shapeGrid()
	for _, k := range loops.All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			t.Parallel()
			n := smallN(k)
			st, err := Capture(k, n)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			got, err := NewReplayer().RunBatch(st, cfgs)
			if err != nil {
				t.Fatalf("batch: %v", err)
			}
			if len(got) != len(cfgs) {
				t.Fatalf("batch returned %d results for %d configs", len(got), len(cfgs))
			}
			single := NewReplayer()
			for i, cfg := range cfgs {
				want, err := single.Run(st, cfg)
				if err != nil {
					t.Fatalf("single npe=%d ps=%d: %v", cfg.NPE, cfg.PageSize, err)
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Errorf("npe=%d ps=%d ce=%d %s/%s: batch diverges from single-config replay\nbatch:  totals %v reduce %d/%d cache %v\nsingle: totals %v reduce %d/%d cache %v",
						cfg.NPE, cfg.PageSize, cfg.CacheElems, cfg.Layout, cfg.Policy,
						got[i].Totals, got[i].ReduceSends, got[i].ReduceBcasts, got[i].Cache,
						want.Totals, want.ReduceSends, want.ReduceBcasts, want.Cache)
				}
			}
		})
	}
}

// TestBatchReplayerReuse interleaves RunBatch groups and single Run
// calls on one Replayer across streams — the sweep-worker usage — and
// requires every Result to match a fresh Replayer's.
func TestBatchReplayerReuse(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k24, err := loops.ByKey("k24")
	if err != nil {
		t.Fatal(err)
	}
	st1, err := Capture(k1, 300)
	if err != nil {
		t.Fatal(err)
	}
	st24, err := Capture(k24, 200)
	if err != nil {
		t.Fatal(err)
	}
	groupA := []sim.Config{sim.PaperConfig(8, 32), sim.PaperConfig(2, 8), sim.NoCacheConfig(16, 32)}
	groupB := []sim.Config{sim.PaperConfig(64, 16), sim.PaperConfig(1, 32)}
	r := NewReplayer()
	steps := []struct {
		st   *Stream
		cfgs []sim.Config
	}{
		{st1, groupA},
		{st24, groupB}, // wider machine, different stream
		{st1, groupB},
		{st24, groupA},
		{st1, groupA}, // back to the first group
	}
	for i, s := range steps {
		got, err := r.RunBatch(s.st, s.cfgs)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		// A single Run interleaved between batches must not perturb them.
		if _, err := r.Run(s.st, sim.PaperConfig(4, 32)); err != nil {
			t.Fatalf("step %d interleaved Run: %v", i, err)
		}
		for j, cfg := range s.cfgs {
			want, err := NewReplayer().Run(s.st, cfg)
			if err != nil {
				t.Fatalf("step %d config %d: %v", i, j, err)
			}
			if !reflect.DeepEqual(got[j], want) {
				t.Errorf("step %d config %d: reused batch Replayer diverges from fresh single-config replay", i, j)
			}
		}
	}
}

// TestBatchSharedStreamConcurrently runs RunBatch against one Stream
// from many goroutines (each with its own Replayer); under -race this
// proves the batch path keeps the Stream read-only too.
func TestBatchSharedStreamConcurrently(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []sim.Config{sim.PaperConfig(8, 32), sim.PaperConfig(8, 16), sim.NoCacheConfig(4, 32)}
	want, err := NewReplayer().RunBatch(st, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := NewReplayer()
			for i := 0; i < 10; i++ {
				got, err := r.RunBatch(st, cfgs)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs[g] = errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestBatchErrorAttribution: a failing configuration is reported as a
// *BatchError carrying the lowest failing index, with the same
// underlying error the single-config path reports — the contract the
// sweep engine's lowest-grid-index error propagation builds on.
func TestBatchErrorAttribution(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	badPolicy := sim.PaperConfig(8, 32)
	badPolicy.Policy = cache.Policy(99)
	cfgs := []sim.Config{
		sim.PaperConfig(4, 32),  // 0: fine
		badPolicy,               // 1: first failure, must win
		sim.PaperConfig(8, 32),  // 2: fine
		{NPE: -1, PageSize: 32}, // 3: second failure, must not win
	}
	_, err = NewReplayer().RunBatch(st, cfgs)
	if err == nil {
		t.Fatal("batch with invalid configs succeeded")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError: %v", err, err)
	}
	if be.Index != 1 {
		t.Errorf("BatchError.Index = %d, want 1 (lowest failing position)", be.Index)
	}
	_, werr := NewReplayer().Run(st, badPolicy)
	if werr == nil {
		t.Fatal("single-config run accepted the bad policy")
	}
	if be.Err.Error() != werr.Error() {
		t.Errorf("batch error %q != single-config error %q", be.Err, werr)
	}

	pf := sim.PaperConfig(8, 32)
	pf.ModelPartialFill = true
	if _, err := NewReplayer().RunBatch(st, []sim.Config{sim.PaperConfig(2, 32), pf}); err == nil {
		t.Error("ineligible partial-fill config accepted by batch replay")
	} else if !errors.Is(err, ErrUnsupported) {
		t.Errorf("ineligible config error does not unwrap to ErrUnsupported: %v", err)
	}
}

// TestBatchDegenerateGroups: the empty group and the singleton group
// are valid batches, and a singleton matches single-config replay.
func TestBatchDegenerateGroups(t *testing.T) {
	k, err := loops.ByKey("k12")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 128)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplayer()
	res, err := r.RunBatch(st, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: got %d results, err %v", len(res), err)
	}
	cfg := sim.PaperConfig(8, 32)
	got, err := r.RunBatch(st, []sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewReplayer().Run(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Error("singleton batch diverges from single-config replay")
	}
}

// TestBatchMetrics audits the batch observability surface: one group
// counter per call, decode passes bounded by the distinct page sizes
// (not the configuration count), and one configs-per-pass observation
// per shared event pass.
func TestBatchMetrics(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 200)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r := NewReplayer()
	r.Metrics = reg
	// Six framed multi-PE configurations across two page sizes: two
	// shared event passes classify all six.
	cfgs := []sim.Config{
		sim.PaperConfig(8, 32), sim.PaperConfig(16, 32), sim.PaperConfig(4, 32),
		sim.PaperConfig(8, 16), sim.PaperConfig(16, 16), sim.PaperConfig(4, 16),
	}
	if _, err := r.RunBatch(st, cfgs); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricBatchGroups).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricBatchGroups, got)
	}
	if got := reg.Counter(MetricBatchDecodePasses).Value(); got != 2 {
		t.Errorf("%s = %d, want 2 (one per page-size bucket)", MetricBatchDecodePasses, got)
	}
	if got := reg.Histogram(MetricBatchConfigsPerPass, obs.DepthBuckets).Count(); got != 2 {
		t.Errorf("%s count = %d, want 2", MetricBatchConfigsPerPass, got)
	}
	// Order-free groups never walk the event columns at all.
	if _, err := r.RunBatch(st, []sim.Config{sim.NoCacheConfig(8, 32), sim.NoCacheConfig(16, 32)}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricBatchDecodePasses).Value(); got != 2 {
		t.Errorf("order-free group walked the event columns: %s = %d, want still 2", MetricBatchDecodePasses, got)
	}
	if got := reg.Counter(MetricBatchGroups).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricBatchGroups, got)
	}
}

// TestBatchReplayAllocs is the batch alloc guard: in steady state every
// additional configuration in a group costs only its Result (at most
// the same 5 allocations single-config replay is held to), because all
// classification state lives in the Replayer's reused slabs. The slack
// for the results slice itself is one allocation per call.
func TestBatchReplayAllocs(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 400)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := shapeGrid()
	r := NewReplayer()
	if _, err := r.RunBatch(st, cfgs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.RunBatch(st, cfgs); err != nil {
			t.Fatal(err)
		}
	})
	limit := float64(5*len(cfgs) + 1)
	if allocs > limit {
		t.Errorf("%.0f allocs per steady-state batch of %d configs, want <= %.0f (5 per Result + the results slice)",
			allocs, len(cfgs), limit)
	}
}
