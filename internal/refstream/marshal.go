package refstream

// marshal.go — the wire encoding of a captured Stream: the format the
// disk-backed capture store (internal/refstream/store) persists and
// shards exchange. The payload is the compressed columnar form the
// replayer already shares read-only across workers — a varint header
// (kernel key, problem size, array lengths, validation checksums,
// event count) followed by the heads and lins byte columns verbatim —
// so serialization adds no second encoding scheme, only framing.
//
// The encoding is canonical: one Stream has exactly one byte string
// (the columns are deterministic functions of the capture, and the
// header carries no ordering freedom), which is what makes
// content-addressing by checksum sound — two shards that capture the
// same (kernel, N) pair independently produce the same bytes and
// therefore the same address.
//
// UnmarshalStream is paranoid by contract: it is fed files that may
// have been truncated by a crash or corrupted on disk, and must fail
// with ErrCorruptStream — never panic, never over-allocate, never
// return a stream whose replay would index out of bounds. Every length
// is bounded by the remaining input before allocation, and the event
// columns are fully walked and range-checked against the declared
// array lengths before the stream is accepted.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"repro/internal/loops"
	"repro/internal/partition"
)

// streamMagic frames a serialized reference stream; the trailing byte
// is the format version.
var streamMagic = [4]byte{'r', 's', 'c', '1'}

// ErrCorruptStream reports that a serialized stream failed structural
// validation: wrong magic, a truncated field, an out-of-range element
// index, or trailing garbage. Errors from UnmarshalStream wrap it.
var ErrCorruptStream = errors.New("refstream: corrupt stream encoding")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptStream, fmt.Sprintf(format, args...))
}

// MarshalBinary renders the stream's canonical byte encoding,
// building the compressed columns first if the stream has only the
// capture-time fixed-width form. Safe for concurrent use alongside
// replays; the stream is not mutated beyond its usual lazy memos.
func (s *Stream) MarshalBinary() ([]byte, error) {
	if s.Kernel == nil {
		return nil, fmt.Errorf("refstream: marshal: stream has no kernel")
	}
	s.EncodedBytes() // force-build heads/lins from the capture columns
	buf := make([]byte, 0, 64+len(s.heads)+len(s.lins))
	buf = append(buf, streamMagic[:]...)
	buf = appendUvarintString(buf, s.Kernel.Key)
	buf = binary.AppendUvarint(buf, uint64(s.N))
	buf = binary.AppendUvarint(buf, uint64(len(s.ArrayLens)))
	for _, l := range s.ArrayLens {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.Checksums)))
	for _, cs := range s.Checksums {
		buf = appendUvarintString(buf, cs.Name)
		buf = binary.AppendUvarint(buf, uint64(cs.Elems))
		buf = binary.AppendUvarint(buf, uint64(cs.Defined))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cs.Sum))
	}
	buf = binary.AppendUvarint(buf, uint64(s.events))
	buf = binary.AppendUvarint(buf, uint64(len(s.heads)))
	buf = append(buf, s.heads...)
	buf = binary.AppendUvarint(buf, uint64(len(s.lins)))
	buf = append(buf, s.lins...)
	return buf, nil
}

// ContentAddress returns the hex SHA-256 of the stream's canonical
// encoding: the name the capture store files it under.
func ContentAddress(encoded []byte) string {
	sum := sha256.Sum256(encoded)
	return hex.EncodeToString(sum[:])
}

func appendUvarintString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// streamReader cursors over a serialized stream with bounds checking.
type streamReader struct {
	buf []byte
}

func (r *streamReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, corruptf("truncated or malformed %s varint", what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

// length reads a count/size field and bounds it by the remaining
// input, so a corrupted length can never drive a huge allocation.
func (r *streamReader) length(what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)) {
		return 0, corruptf("%s length %d exceeds remaining %d bytes", what, v, len(r.buf))
	}
	return int(v), nil
}

func (r *streamReader) bytes(n int) []byte {
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// UnmarshalStream decodes and validates a serialized stream. The
// returned Stream is immutable and replay-ready: its columns have been
// fully walked, every opcode and element index range-checked, so a
// later replay cannot index out of bounds. Any structural defect —
// truncation, unknown kernel, mismatched array declarations, trailing
// bytes — returns an error wrapping ErrCorruptStream.
func UnmarshalStream(data []byte) (*Stream, error) {
	return UnmarshalStreamKernels(data, loops.ByKey)
}

// ErrUnknownKernel reports that a stream's kernel key did not resolve.
// Unlike the structural defects wrapping ErrCorruptStream, this is a
// recoverable condition: a disk store holding captures of
// registry-compiled kernels sees it at boot, before the registry has
// been repopulated, and simply retries on a later scan.
var ErrUnknownKernel = errors.New("refstream: unknown kernel")

// UnmarshalStreamKernels is UnmarshalStream with an explicit kernel
// resolver, so streams captured from registry-compiled kernels
// ("u:..." keys) decode against the registry instead of only the
// built-in table.
func UnmarshalStreamKernels(data []byte, resolve func(key string) (*loops.Kernel, error)) (*Stream, error) {
	r := &streamReader{buf: data}
	if len(r.buf) < len(streamMagic) || string(r.bytes(len(streamMagic))) != string(streamMagic[:]) {
		return nil, corruptf("bad magic")
	}
	keyLen, err := r.length("kernel key")
	if err != nil {
		return nil, err
	}
	kernelKey := string(r.bytes(keyLen))
	k, err := resolve(kernelKey)
	if err != nil {
		// Wraps both sentinels: structurally the stream is unusable
		// (ErrCorruptStream, what generic callers check), but the
		// specific cause is a key that failed to resolve
		// (ErrUnknownKernel), which the disk store treats as retryable.
		return nil, fmt.Errorf("%w: %w %q", ErrCorruptStream, ErrUnknownKernel, kernelKey)
	}
	nv, err := r.uvarint("problem size")
	if err != nil {
		return nil, err
	}
	if nv > uint64(math.MaxInt32) {
		return nil, corruptf("problem size %d out of range", nv)
	}
	n := int(nv)
	if k.ClampN(n) != n {
		return nil, corruptf("problem size %d is not canonical for %s", n, k.Key)
	}

	// The array table must match the kernel's own declarations at this
	// problem size: the stream is only meaningful against them, and the
	// check rejects encodings whose element bounds were tampered with.
	specs := k.Arrays(n)
	nArrays, err := r.length("array count")
	if err != nil {
		return nil, err
	}
	if nArrays != len(specs) {
		return nil, corruptf("%d arrays, want %d for %s/n=%d", nArrays, len(specs), k.Key, n)
	}
	st := &Stream{Kernel: k, N: n, ArrayLens: make([]int, nArrays)}
	for i := 0; i < nArrays; i++ {
		lv, err := r.uvarint("array length")
		if err != nil {
			return nil, err
		}
		dims, err := partition.NewDims(specs[i].Dims...)
		if err != nil {
			return nil, corruptf("%s array %q: %v", k.Key, specs[i].Name, err)
		}
		if lv != uint64(dims.Elems()) {
			return nil, corruptf("array %d length %d, want %d", i, lv, dims.Elems())
		}
		st.ArrayLens[i] = int(lv)
	}

	nSums, err := r.length("checksum count")
	if err != nil {
		return nil, err
	}
	if nSums > len(specs) {
		return nil, corruptf("%d checksums for %d arrays", nSums, len(specs))
	}
	st.Checksums = make([]loops.ArraySum, nSums)
	for i := range st.Checksums {
		nameLen, err := r.length("checksum name")
		if err != nil {
			return nil, err
		}
		name := string(r.bytes(nameLen))
		elems, err := r.uvarint("checksum elems")
		if err != nil {
			return nil, err
		}
		defined, err := r.uvarint("checksum defined")
		if err != nil {
			return nil, err
		}
		if len(r.buf) < 8 {
			return nil, corruptf("truncated checksum sum")
		}
		sum := math.Float64frombits(binary.LittleEndian.Uint64(r.bytes(8)))
		if elems > uint64(math.MaxInt32) || defined > elems {
			return nil, corruptf("checksum %q counts out of range", name)
		}
		st.Checksums[i] = loops.ArraySum{Name: name, Sum: sum, Defined: int(defined), Elems: int(elems)}
	}

	events, err := r.uvarint("event count")
	if err != nil {
		return nil, err
	}
	headsLen, err := r.length("heads column")
	if err != nil {
		return nil, err
	}
	if events > uint64(headsLen) {
		// Each event costs at least one heads byte, so the count bounds
		// allocation downstream.
		return nil, corruptf("%d events in a %d-byte heads column", events, headsLen)
	}
	st.heads = append([]byte(nil), r.bytes(headsLen)...)
	linsLen, err := r.length("lins column")
	if err != nil {
		return nil, err
	}
	st.lins = append([]byte(nil), r.bytes(linsLen)...)
	st.events = int(events)
	if len(r.buf) != 0 {
		return nil, corruptf("%d trailing bytes", len(r.buf))
	}
	if err := st.validateColumns(); err != nil {
		return nil, err
	}
	return st, nil
}

// validateColumns walks the compressed event columns once, checking
// that every varint decodes, every opcode is known, every array ID has
// a declaration, every element index lands inside its array, and the
// event count matches — the precondition that lets replay run with no
// per-event bounds checks.
func (s *Stream) validateColumns() error {
	heads, lins := s.heads, s.lins
	last := make([]int, len(s.ArrayLens))
	count := 0
	for len(heads) > 0 {
		h, n := binary.Uvarint(heads)
		if n <= 0 {
			return corruptf("malformed heads varint at event %d", count)
		}
		heads = heads[n:]
		op := byte(h & 7)
		array := int(h >> 3)
		if op > opEndReduce {
			return corruptf("unknown opcode %d at event %d", op, count)
		}
		if array >= len(s.ArrayLens) {
			return corruptf("array %d out of range at event %d", array, count)
		}
		if opHasLin(op) {
			d, n := binary.Uvarint(lins)
			if n <= 0 {
				return corruptf("malformed lins varint at event %d", count)
			}
			lins = lins[n:]
			lin := last[array] + int(unzigzag(d))
			if lin < 0 || lin >= s.ArrayLens[array] {
				return corruptf("element %d of array %d out of range [0,%d) at event %d",
					lin, array, s.ArrayLens[array], count)
			}
			last[array] = lin
		}
		count++
		if count > s.events {
			return corruptf("more than the declared %d events", s.events)
		}
	}
	if count != s.events {
		return corruptf("%d events decoded, header declared %d", count, s.events)
	}
	if len(lins) != 0 {
		return corruptf("%d unconsumed lins bytes", len(lins))
	}
	return nil
}
