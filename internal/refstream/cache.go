package refstream

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Cache is a bounded, deduplicating store of captured reference
// streams, keyed by (kernel, clamped problem size) — exactly the pair a
// Stream depends on. It extends the sweep planner's execute-once
// guarantee across independent callers: within one sweep the planner's
// sync.Once already ensures a single capture per group, and the Cache
// gives long-lived consumers (the serving layer, repeated sweeps) the
// same property across requests, so a burst of identical workloads
// costs one capture no matter how it is batched.
//
// Concurrent Gets of the same key share one capture: the first caller
// executes it, the rest block until it resolves. A failed capture is
// not cached — the entry is dropped so a later Get retries. Eviction is
// LRU over resolved and in-flight entries alike; evicting an in-flight
// entry never disturbs its waiters (they share the entry directly), it
// only allows a future Get to capture afresh.
type Cache struct {
	// Captures counts capture executions and Hits counts Gets served by
	// an existing (resolved or in-flight) entry. Optional: the nil
	// instruments of a disabled obs registry no-op.
	Captures *obs.Counter
	Hits     *obs.Counter

	// Loader, when set, is consulted before executing a capture: a
	// persisted stream for (k, clamped n) short-circuits the execution
	// (and is not counted in Captures). Saver, when set, receives every
	// freshly-executed capture. Together they back the cache with a
	// durable tier — internal/refstream/store — without the cache
	// knowing about files. Both must be set before first use and be
	// safe for concurrent calls.
	Loader func(k *loops.Kernel, n int) (*Stream, bool)
	Saver  func(st *Stream)

	capacity int

	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	order   *list.List // front = most recently used; values are cacheKey
}

type cacheKey struct {
	kernel string
	n      int
}

type cacheEntry struct {
	once sync.Once
	st   *Stream
	err  error
	elem *list.Element
}

// DefaultCacheEntries is the capacity NewCache substitutes for a
// non-positive request: enough for every kernel at a few problem sizes.
const DefaultCacheEntries = 64

// NewCache returns an empty cache bounded to the given number of
// streams (<= 0 selects DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{
		capacity: capacity,
		entries:  map[cacheKey]*cacheEntry{},
		order:    list.New(),
	}
}

// Get returns the reference stream of (k, n), capturing it on first
// use. Safe for concurrent use; concurrent Gets of one key perform a
// single capture.
func (c *Cache) Get(k *loops.Kernel, n int) (*Stream, error) {
	return c.GetScratch(nil, k, n)
}

// GetScratch is Get with the capture — should this call be the one to
// perform it — running against the caller's reusable simulator scratch
// (see CaptureScratch). Long-lived consumers that already hold a
// per-worker scratch pass it here so a cache miss costs no fresh
// kernel-array allocations.
func (c *Cache) GetScratch(sc *sim.Scratch, k *loops.Kernel, n int) (*Stream, error) {
	if k == nil {
		return nil, fmt.Errorf("refstream: nil kernel")
	}
	key := cacheKey{kernel: k.Key, n: k.ClampN(n)}

	c.mu.Lock()
	e := c.entries[key]
	hit := e != nil // resolved, or in flight and about to be shared
	if hit {
		c.order.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{}
		e.elem = c.order.PushFront(key)
		c.entries[key] = e
		for c.order.Len() > c.capacity {
			back := c.order.Back()
			delete(c.entries, back.Value.(cacheKey))
			c.order.Remove(back)
		}
	}
	c.mu.Unlock()
	if hit {
		c.Hits.Inc()
	}

	e.once.Do(func() {
		if c.Loader != nil {
			if st, ok := c.Loader(k, key.n); ok {
				e.st = st
				return
			}
		}
		c.Captures.Inc()
		e.st, e.err = CaptureScratch(sc, k, key.n)
		if e.err == nil && c.Saver != nil {
			c.Saver(e.st)
		}
		if e.err != nil {
			// Drop the failed entry (if still ours) so a later Get
			// retries instead of replaying a stale error forever.
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
				c.order.Remove(e.elem)
			}
			c.mu.Unlock()
		}
	})
	return e.st, e.err
}

// Len returns the number of cached (resolved or in-flight) streams.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
