package refstream

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
)

// shapeGrid is the seeded configuration grid of the equivalence suite:
// every axis the sweep engine varies — PE count, page size, cache
// capacity, replacement policy, layout — including degenerate shapes
// (1 PE, page of 1, cache smaller than a page, more PEs than pages).
func shapeGrid() []sim.Config {
	var cfgs []sim.Config
	add := func(c sim.Config) { cfgs = append(cfgs, c) }
	add(sim.PaperConfig(1, 32))
	add(sim.PaperConfig(8, 32))
	add(sim.PaperConfig(64, 32))
	add(sim.NoCacheConfig(16, 32))
	add(sim.PaperConfig(8, 1))  // page per element
	add(sim.PaperConfig(16, 7)) // odd page size, partial trailing pages
	small := sim.PaperConfig(8, 64)
	small.CacheElems = 32 // cache smaller than one page: no frames
	add(small)
	blk := sim.PaperConfig(16, 32)
	blk.Layout = partition.KindBlock
	add(blk)
	bc := sim.PaperConfig(16, 32)
	bc.Layout = partition.KindBlockCyclic
	bc.LayoutRun = 3
	add(bc)
	for _, pol := range []cache.Policy{cache.FIFO, cache.Clock, cache.Random} {
		c := sim.PaperConfig(8, 16)
		c.Policy = pol
		add(c)
	}
	return cfgs
}

// TestReplayMatchesDirectAllKernels is the equivalence contract of the
// execute-once/classify-many engine: for every kernel — including the
// reduction-heavy and control-read-heavy ones — and every shape in the
// seeded grid, replaying the captured stream must produce a Result
// bit-identical (reflect.DeepEqual, so per-PE counters, cache stats,
// traffic matrix, reduction counts and checksums alike) to a direct
// sim.Run of the same point.
func TestReplayMatchesDirectAllKernels(t *testing.T) {
	cfgs := shapeGrid()
	for _, k := range loops.All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			t.Parallel()
			n := smallN(k)
			st, err := Capture(k, n)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			r := NewReplayer()
			for _, cfg := range cfgs {
				got, err := r.Run(st, cfg)
				if err != nil {
					t.Fatalf("replay npe=%d ps=%d: %v", cfg.NPE, cfg.PageSize, err)
				}
				want, err := sim.Run(k, n, cfg)
				if err != nil {
					t.Fatalf("direct npe=%d ps=%d: %v", cfg.NPE, cfg.PageSize, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("npe=%d ps=%d ce=%d %s/%s: replay diverges from direct run\nreplay: totals %v reduce %d/%d\ndirect: totals %v reduce %d/%d",
						cfg.NPE, cfg.PageSize, cfg.CacheElems, cfg.Layout, cfg.Policy,
						got.Totals, got.ReduceSends, got.ReduceBcasts,
						want.Totals, want.ReduceSends, want.ReduceBcasts)
				}
			}
		})
	}
}

// smallN picks a problem size that keeps the full-registry equivalence
// sweep fast while still exercising multiple pages per array.
func smallN(k *loops.Kernel) int {
	n := 160
	if n < k.MinN {
		n = k.MinN
	}
	return k.ClampN(n)
}

// TestReplayDefaultSizes spot-checks equivalence at each kernel's
// canonical problem size for the paper's baseline machine, so the
// sweep engine's production grid points are covered verbatim.
func TestReplayDefaultSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("default problem sizes are slow in -short mode")
	}
	for _, k := range loops.PaperSet() {
		st, err := Capture(k, 0)
		if err != nil {
			t.Fatalf("%s: %v", k.Key, err)
		}
		for _, cfg := range []sim.Config{sim.PaperConfig(16, 32), sim.NoCacheConfig(16, 32)} {
			got, err := NewReplayer().Run(st, cfg)
			if err != nil {
				t.Fatalf("%s: %v", k.Key, err)
			}
			want, err := sim.Run(k, 0, cfg)
			if err != nil {
				t.Fatalf("%s: %v", k.Key, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s n=%d: replay diverges at the paper grid point", k.Key, got.N)
			}
		}
	}
}

// TestReplayerReuse drives one Replayer through interleaved streams and
// configurations — the sweep-worker usage — and requires each Result to
// match a fresh Replayer's.
func TestReplayerReuse(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k24, err := loops.ByKey("k24")
	if err != nil {
		t.Fatal(err)
	}
	st1, err := Capture(k1, 300)
	if err != nil {
		t.Fatal(err)
	}
	st24, err := Capture(k24, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplayer()
	pts := []struct {
		st  *Stream
		cfg sim.Config
	}{
		{st1, sim.PaperConfig(8, 32)},
		{st24, sim.PaperConfig(64, 16)}, // wider machine
		{st1, sim.PaperConfig(2, 8)},    // narrower again
		{st24, sim.NoCacheConfig(4, 32)},
		{st1, sim.PaperConfig(8, 32)}, // back to the first point
	}
	for i, p := range pts {
		got, err := r.Run(p.st, p.cfg)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		want, err := NewReplayer().Run(p.st, p.cfg)
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("point %d: reused Replayer diverges from fresh one", i)
		}
	}
}

// TestStreamSharedConcurrently replays one Stream from many goroutines
// at once (each with its own Replayer), as sweep workers do; run under
// -race this proves the Stream is shared read-only.
func TestStreamSharedConcurrently(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 256)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewReplayer().Run(st, sim.PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := NewReplayer()
			for i := 0; i < 10; i++ {
				got, err := r.Run(st, sim.PaperConfig(8, 32))
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs[g] = errMismatch
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

var errMismatch = errString("concurrent replay diverged")

type errString string

func (e errString) Error() string { return string(e) }

// TestReplayUnsupportedConfigs: tracing and partial-fill configurations
// must be refused (the sweep planner falls back to direct execution).
func TestReplayUnsupportedConfigs(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	pf := sim.PaperConfig(8, 32)
	pf.ModelPartialFill = true
	if _, err := NewReplayer().Run(st, pf); err == nil {
		t.Error("partial-fill config accepted by replay")
	}
	tr := sim.PaperConfig(8, 32)
	tr.Tracer = &encoder{st: &Stream{}}
	if _, err := NewReplayer().Run(st, tr); err == nil {
		t.Error("tracing config accepted by replay")
	}
	if Eligible(pf) || Eligible(tr) {
		t.Error("Eligible accepts unsupported configs")
	}
	if !Eligible(sim.PaperConfig(8, 32)) {
		t.Error("Eligible rejects the baseline config")
	}
}

// TestReplayInvalidConfigs: malformed configurations error instead of
// panicking, mirroring sim's validation.
func TestReplayInvalidConfigs(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	bad := []sim.Config{
		{NPE: 0, PageSize: 32},
		{NPE: 8, PageSize: 0},
		{NPE: 8, PageSize: 32, CacheElems: -1},
		{NPE: 8, PageSize: 32, CacheElems: 256, Policy: cache.Policy(99)},
		{NPE: 8, PageSize: 32, Layout: partition.Kind(99)},
	}
	for i, cfg := range bad {
		if _, err := NewReplayer().Run(st, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Capture(nil, 10); err == nil {
		t.Error("nil kernel capture accepted")
	}
}

// TestStreamEncodingRoundTrip feeds randomized events through the
// columnar encoder and a cursor and requires exact reconstruction —
// including negative deltas, large jumps and payload-less opcodes.
func TestStreamEncodingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1989))
	const arrays = 11
	type ev struct {
		op  byte
		a   int
		lin int
	}
	var evs []ev
	st := &Stream{}
	last := make([]int, arrays)
	for i := 0; i < 5000; i++ {
		op := byte(rng.Intn(5))
		a := rng.Intn(arrays)
		lin := 0
		if opHasLin(op) {
			lin = rng.Intn(1 << 20)
		}
		if op == opEnd {
			a = 0
		}
		evs = append(evs, ev{op, a, lin})
		st.emit(op, a, lin, last)
	}
	if st.Events() != len(evs) {
		t.Fatalf("Events() = %d, want %d", st.Events(), len(evs))
	}
	c := cursor{heads: st.heads, lins: st.lins, last: make([]int, arrays)}
	for i, want := range evs {
		op, a, lin, ok := c.next()
		if !ok {
			t.Fatalf("stream ended at event %d of %d", i, len(evs))
		}
		if op != want.op || a != want.a || (opHasLin(op) && lin != want.lin) {
			t.Fatalf("event %d: got (op=%d a=%d lin=%d), want (op=%d a=%d lin=%d)",
				i, op, a, lin, want.op, want.a, want.lin)
		}
	}
	if _, _, _, ok := c.next(); ok {
		t.Error("cursor yields events past the end")
	}
}

// TestReplayAllocs is the acceptance alloc guard: a steady-state replay
// allocates at most 5 times — the Result struct, the per-PE counter
// copy, the traffic slab, its row headers, and the cache-stats slice.
// Checksums are shared with the stream, and every classification
// buffer lives in the Replayer.
func TestReplayAllocs(t *testing.T) {
	for _, key := range []string{"k1", "k24"} {
		k, err := loops.ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Capture(k, 400)
		if err != nil {
			t.Fatal(err)
		}
		r := NewReplayer()
		cfg := sim.PaperConfig(16, 32)
		if _, err := r.Run(st, cfg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := r.Run(st, cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 5 {
			t.Errorf("%s: %.0f allocs per steady-state replay, want <= 5", key, allocs)
		}
	}
}

// TestCaptureMemoizesChecksums: the captured checksums equal the direct
// run's, and replayed Results share (not copy) them.
func TestCaptureMemoizesChecksums(t *testing.T) {
	k, err := loops.ByKey("k18")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Capture(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(k, 100, sim.PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Checksums, want.Checksums) {
		t.Errorf("captured checksums %v != direct %v", st.Checksums, want.Checksums)
	}
	res, err := NewReplayer().Run(st, sim.PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checksums) > 0 && &res.Checksums[0] != &st.Checksums[0] {
		t.Error("replay copied checksums instead of sharing the memoized slice")
	}
}
