package refstream

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
)

// streamCache memoizes captures across fuzz iterations so the fuzzer
// spends its budget on configuration space, not on re-executing
// kernels. Keyed by (kernel, clamped n); safe for parallel fuzz
// workers.
var streamCache sync.Map

func cachedCapture(t *testing.T, k *loops.Kernel, n int) *Stream {
	t.Helper()
	type key struct {
		k *loops.Kernel
		n int
	}
	ck := key{k, k.ClampN(n)}
	if st, ok := streamCache.Load(ck); ok {
		return st.(*Stream)
	}
	st, err := Capture(k, n)
	if err != nil {
		t.Fatalf("capture %s/n=%d: %v", k.Key, n, err)
	}
	streamCache.Store(ck, st)
	return st
}

// FuzzReplayVsDirect drives the equivalence contract through randomized
// machine configurations: any (NPE, PageSize, CacheElems, Layout,
// LayoutRun, Policy) shape the fuzzer reaches must classify the
// captured stream bit-identically to a direct sim.Run.
func FuzzReplayVsDirect(f *testing.F) {
	// Seeds cover each layout kind, each policy, degenerate machines and
	// reduction-heavy kernels.
	f.Add(uint8(0), uint16(200), uint8(8), uint8(32), uint16(256), uint8(0), uint8(1), uint8(0))
	f.Add(uint8(3), uint16(100), uint8(1), uint8(1), uint16(0), uint8(1), uint8(2), uint8(1))
	f.Add(uint8(7), uint16(333), uint8(64), uint8(16), uint16(64), uint8(2), uint8(3), uint8(2))
	f.Add(uint8(11), uint16(64), uint8(5), uint8(7), uint16(31), uint8(0), uint8(1), uint8(3))
	f.Add(uint8(23), uint16(400), uint8(16), uint8(64), uint16(1024), uint8(1), uint8(1), uint8(0))
	kernels := loops.All()
	f.Fuzz(func(t *testing.T, kIdx uint8, n uint16, npe, ps uint8, ce uint16, layout, run, policy uint8) {
		k := kernels[int(kIdx)%len(kernels)]
		size := int(n)%400 + 1
		cfg := sim.Config{
			NPE:        int(npe)%64 + 1,
			PageSize:   int(ps)%96 + 1,
			CacheElems: int(ce) % 2048,
			Policy:     cache.Policy(int(policy) % 4),
			Layout:     partition.Kind(int(layout) % 3),
			LayoutRun:  int(run)%6 + 1,
		}
		want, err := sim.Run(k, size, cfg)
		if err != nil {
			t.Fatalf("direct run rejected fuzzed config %+v: %v", cfg, err)
		}
		st := cachedCapture(t, k, size)
		got, err := NewReplayer().Run(st, cfg)
		if err != nil {
			t.Fatalf("replay rejected config %+v the direct path accepted: %v", cfg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s n=%d cfg=%+v: replay diverges from direct run\nreplay: totals %v reduce %d/%d\ndirect: totals %v reduce %d/%d",
				k.Key, size, cfg,
				got.Totals, got.ReduceSends, got.ReduceBcasts,
				want.Totals, want.ReduceSends, want.ReduceBcasts)
		}
	})
}

// FuzzBatchVsSingle drives the batch replayer's equivalence contract
// through randomized capture groups: RunBatch over a fuzzer-shaped
// group of configurations must match looped single-config Run result
// for result, bit-identically, with the group's page-size mix, PE
// widths, cache shapes and policies all varied together.
func FuzzBatchVsSingle(f *testing.F) {
	f.Add(uint8(0), uint16(200), uint8(8), uint8(32), uint16(256), uint8(0), uint8(1), uint8(0), uint8(3))
	f.Add(uint8(3), uint16(100), uint8(1), uint8(1), uint16(0), uint8(1), uint8(2), uint8(1), uint8(7))
	f.Add(uint8(7), uint16(333), uint8(64), uint8(16), uint16(64), uint8(2), uint8(3), uint8(2), uint8(1))
	f.Add(uint8(23), uint16(400), uint8(16), uint8(64), uint16(1024), uint8(1), uint8(1), uint8(3), uint8(5))
	kernels := loops.All()
	f.Fuzz(func(t *testing.T, kIdx uint8, n uint16, npe, ps uint8, ce uint16, layout, run, policy, k uint8) {
		kernel := kernels[int(kIdx)%len(kernels)]
		size := int(n)%400 + 1
		// Derive a group of up to 8 configurations from the seed shape by
		// stepping each axis deterministically, so one fuzz input covers
		// mixed page sizes and mixed fast-path classes in a single batch.
		group := int(k)%8 + 1
		cfgs := make([]sim.Config, 0, group)
		for i := 0; i < group; i++ {
			cfgs = append(cfgs, sim.Config{
				NPE:        (int(npe)+i*3)%64 + 1,
				PageSize:   (int(ps)+i*7)%96 + 1,
				CacheElems: (int(ce) + i*128) % 2048,
				Policy:     cache.Policy((int(policy) + i) % 4),
				Layout:     partition.Kind((int(layout) + i) % 3),
				LayoutRun:  (int(run)+i)%6 + 1,
			})
		}
		st := cachedCapture(t, kernel, size)
		got, err := NewReplayer().RunBatch(st, cfgs)
		if err != nil {
			t.Fatalf("batch rejected group %+v: %v", cfgs, err)
		}
		single := NewReplayer()
		for i, cfg := range cfgs {
			want, err := single.Run(st, cfg)
			if err != nil {
				t.Fatalf("single-config replay rejected %+v the batch accepted: %v", cfg, err)
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Errorf("%s n=%d config %d %+v: batch diverges from single-config replay\nbatch:  totals %v reduce %d/%d\nsingle: totals %v reduce %d/%d",
					kernel.Key, size, i, cfg,
					got[i].Totals, got[i].ReduceSends, got[i].ReduceBcasts,
					want.Totals, want.ReduceSends, want.ReduceBcasts)
			}
		}
	})
}

// FuzzParallelVsSerialBatch drives the partitioned replayer's
// equivalence contract: a fuzzer-shaped capture group classified with
// a fuzzer-chosen worker budget must match the serial RunBatch of the
// same group exactly — results at the same indices, bit-identical —
// across group sizes that straddle the dispatch threshold and budgets
// that force both even and ragged partition splits.
func FuzzParallelVsSerialBatch(f *testing.F) {
	f.Add(uint8(0), uint16(200), uint8(8), uint8(32), uint16(256), uint8(0), uint8(1), uint8(0), uint8(11), uint8(4))
	f.Add(uint8(3), uint16(100), uint8(1), uint8(1), uint16(0), uint8(1), uint8(2), uint8(1), uint8(7), uint8(2))    // exactly at the serial threshold
	f.Add(uint8(7), uint16(333), uint8(64), uint8(16), uint16(64), uint8(2), uint8(3), uint8(2), uint8(3), uint8(8)) // below threshold: stays serial
	f.Add(uint8(23), uint16(400), uint8(16), uint8(64), uint16(1024), uint8(1), uint8(1), uint8(3), uint8(19), uint8(3))
	kernels := loops.All()
	f.Fuzz(func(t *testing.T, kIdx uint8, n uint16, npe, ps uint8, ce uint16, layout, run, policy, k, workers uint8) {
		kernel := kernels[int(kIdx)%len(kernels)]
		size := int(n)%400 + 1
		// Group sizes up to 24 so the fuzzer reaches multi-partition
		// splits (the threshold is batchParMinConfigs = 8); axes step
		// exactly as in FuzzBatchVsSingle.
		group := int(k)%24 + 1
		cfgs := make([]sim.Config, 0, group)
		for i := 0; i < group; i++ {
			cfgs = append(cfgs, sim.Config{
				NPE:        (int(npe)+i*3)%64 + 1,
				PageSize:   (int(ps)+i*7)%96 + 1,
				CacheElems: (int(ce) + i*128) % 2048,
				Policy:     cache.Policy((int(policy) + i) % 4),
				Layout:     partition.Kind((int(layout) + i) % 3),
				LayoutRun:  (int(run)+i)%6 + 1,
			})
		}
		nw := int(workers)%8 + 1
		st := cachedCapture(t, kernel, size)
		want, err := NewReplayer().RunBatch(st, cfgs)
		if err != nil {
			t.Fatalf("serial batch rejected group %+v: %v", cfgs, err)
		}
		got, err := NewReplayer().RunBatchN(st, cfgs, nw)
		if err != nil {
			t.Fatalf("parallel batch (workers=%d) rejected group the serial path accepted: %v", nw, err)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("%s n=%d workers=%d config %d %+v: parallel batch diverges from serial\nparallel: totals %v reduce %d/%d\nserial:   totals %v reduce %d/%d",
					kernel.Key, size, nw, i, cfgs[i],
					got[i].Totals, got[i].ReduceSends, got[i].ReduceBcasts,
					want[i].Totals, want[i].ReduceSends, want[i].ReduceBcasts)
			}
		}
	})
}
