package refstream

import (
	"sync"
	"testing"

	"repro/internal/loops"
	"repro/internal/obs"
)

func mustKernel(t *testing.T, key string) *loops.Kernel {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatalf("ByKey(%q): %v", key, err)
	}
	return k
}

// TestCacheConcurrentGetCapturesOnce is the dedup contract: many
// concurrent Gets of one (kernel, N) perform exactly one capture, share
// the identical stream, and every Get beyond the first counts as a hit.
func TestCacheConcurrentGetCapturesOnce(t *testing.T) {
	k := mustKernel(t, "k1")
	reg := obs.NewRegistry()
	c := NewCache(8)
	c.Captures = reg.Counter("captures")
	c.Hits = reg.Counter("hits")

	const goroutines = 16
	var (
		wg      sync.WaitGroup
		streams [goroutines]*Stream
		errs    [goroutines]error
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			streams[i], errs[i] = c.Get(k, k.MinN)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("Get %d: %v", i, errs[i])
		}
		if streams[i] == nil {
			t.Fatalf("Get %d returned a nil stream", i)
		}
		if streams[i] != streams[0] {
			t.Fatalf("Get %d returned a different stream object: captures were not shared", i)
		}
	}
	if got := c.Captures.Value(); got != 1 {
		t.Fatalf("captures = %d, want exactly 1 for %d concurrent Gets", got, goroutines)
	}
	if got := c.Hits.Value(); got != goroutines-1 {
		t.Fatalf("hits = %d, want %d", got, goroutines-1)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

// TestCacheClampNSharesKey verifies the key uses the clamped problem
// size: n=0 (kernel default) and the explicit default are one entry.
func TestCacheClampNSharesKey(t *testing.T) {
	k := mustKernel(t, "k12")
	reg := obs.NewRegistry()
	c := NewCache(8)
	c.Captures = reg.Counter("captures")

	a, err := c.Get(k, 0)
	if err != nil {
		t.Fatalf("Get(k, 0): %v", err)
	}
	b, err := c.Get(k, k.DefaultN)
	if err != nil {
		t.Fatalf("Get(k, DefaultN): %v", err)
	}
	if a != b {
		t.Fatal("n=0 and n=DefaultN produced distinct entries; key must clamp")
	}
	if got := c.Captures.Value(); got != 1 {
		t.Fatalf("captures = %d, want 1", got)
	}
}

// TestCacheEviction bounds the cache: a capacity-1 cache holds only the
// most recent stream and re-captures an evicted one on demand.
func TestCacheEviction(t *testing.T) {
	k1 := mustKernel(t, "k1")
	k2 := mustKernel(t, "k2")
	reg := obs.NewRegistry()
	c := NewCache(1)
	c.Captures = reg.Counter("captures")

	if _, err := c.Get(k1, k1.MinN); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(k2, k2.MinN); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d after overflow, want 1", got)
	}
	if got := c.Captures.Value(); got != 2 {
		t.Fatalf("captures = %d, want 2", got)
	}
	// k1 was evicted: a new Get re-captures rather than erroring.
	if _, err := c.Get(k1, k1.MinN); err != nil {
		t.Fatal(err)
	}
	if got := c.Captures.Value(); got != 3 {
		t.Fatalf("captures after re-Get = %d, want 3", got)
	}
}
