package refstream

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
)

// capturePageSize is the page size of the one-shot validation run. The
// captured stream is independent of it — page geometry is re-derived at
// replay time — so any valid size works; 32 is the paper's default.
const capturePageSize = 32

// encoder records the reference stream of a capture run. It implements
// sim.StreamTracer: the classified Event stream supplies reads and
// assignment closings (a Write event is emitted exactly when an
// assignment finishes), and the marker methods supply the structure the
// Event stream alone cannot express. The capture run uses NPE=1, so a
// replicated control read arrives as exactly one Event.
//
// Events are recorded as one packed word per event — a single append
// keeps the tracer callback cheap inside the instrumented run — and
// Capture unpacks them into the replay-side columns afterwards. The
// compressed columns are built lazily on first demand.
type encoder struct {
	st *Stream
}

// Event implements sim.Tracer.
func (e *encoder) Event(pe int, kind stats.Access, array, lin, page int) {
	if kind == stats.Write {
		// FinishAssign: the write itself is re-derived at replay from
		// the matching opAssign; this event closes the context.
		e.st.record(opEnd, 0, 0)
		return
	}
	e.st.record(opRead, array, lin)
}

// BeginAssign implements sim.StreamTracer.
func (e *encoder) BeginAssign(array, lin int) {
	e.st.record(opAssign, array, lin)
}

// BeginReduceTerm implements sim.StreamTracer.
func (e *encoder) BeginReduceTerm(driver, i int) {
	e.st.record(opTerm, driver, i)
}

// EndReduce implements sim.StreamTracer.
func (e *encoder) EndReduce(driver int) {
	e.st.record(opEndReduce, driver, 0)
}

// Capture executes kernel k at problem size n once through the
// counting simulator — validating single assignment and computing the
// output checksums exactly as any direct run would — and returns the
// encoded reference stream. The capture configuration is a 1-PE,
// cache-less machine: with a single PE every access stream collapses to
// one classified event per access, and the recorded stream plus its
// structural markers are independent of every machine parameter.
func Capture(k *loops.Kernel, n int) (*Stream, error) {
	return CaptureScratch(nil, k, n)
}

// CaptureScratch is Capture against a reusable simulator scratch: the
// capture run borrows sc's buffers instead of allocating fresh kernel
// arrays, which removes most of a capture's cost beyond the one
// unavoidable execution (sweep workers and the serving engine hold a
// scratch per worker for exactly this). A nil sc runs with a private
// one. The returned Stream is identical either way and shares nothing
// with sc.
func CaptureScratch(sc *sim.Scratch, k *loops.Kernel, n int) (st *Stream, err error) {
	if k == nil {
		return nil, fmt.Errorf("refstream: nil kernel")
	}
	// A capture executes the kernel body. Built-ins are trusted, but
	// registry-compiled kernels can reach out-of-bounds subscripts
	// through data-dependent indirection that neither the static
	// admission model nor sentinel-size verification exercised; a
	// panic here must fail the one request, not the process.
	defer func() {
		if p := recover(); p != nil {
			st, err = nil, fmt.Errorf("refstream: capturing %s/n=%d: kernel panicked: %v", k.Key, k.ClampN(n), p)
		}
	}()
	n = k.ClampN(n)
	specs := k.Arrays(n)
	st = &Stream{Kernel: k, N: n, ArrayLens: make([]int, len(specs))}
	for i, spec := range specs {
		dims, err := partition.NewDims(spec.Dims...)
		if err != nil {
			return nil, fmt.Errorf("refstream: %s array %q: %w", k.Key, spec.Name, err)
		}
		st.ArrayLens[i] = dims.Elems()
	}
	enc := &encoder{st: st}
	cfg := sim.Config{
		NPE:      1,
		PageSize: capturePageSize,
		Policy:   cache.LRU,
		Layout:   partition.KindModulo,
		Tracer:   enc,
	}
	var res *sim.Result
	if sc != nil {
		res, err = sc.Run(k, n, cfg)
	} else {
		res, err = sim.Run(k, n, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("refstream: capturing %s/n=%d: %w", k.Key, n, err)
	}
	st.Checksums = res.Checksums
	st.finishCapture()
	return st, nil
}
