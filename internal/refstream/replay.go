package refstream

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrUnsupported reports a configuration that replay cannot serve and
// that must fall back to direct execution: a run that traces (the
// tracer wants the stream of the *target* configuration, not the
// captured one) or one that models partial page fills (classification
// then depends on the defined-bit history, which replay deliberately
// does not carry).
var ErrUnsupported = errors.New("refstream: configuration requires direct execution")

// Eligible reports whether cfg can be served by replay. Ineligible
// configurations are exactly the ones ErrUnsupported describes.
func Eligible(cfg sim.Config) bool {
	return cfg.Tracer == nil && !cfg.ModelPartialFill
}

// Replayer classifies captured reference streams under arbitrary
// machine configurations. It owns every reusable allocation of the
// replay path — owner tables, slot caches, counters, the traffic slab —
// so its steady state allocates nothing beyond the returned Result.
// A Replayer is not safe for concurrent use; give each worker its own.
// Distinct Replayers may replay the same Stream concurrently, and a
// parallel RunBatch fans its partitions out over the same shared
// stream internally (batch.go).
//
// Run classifies one configuration per stream pass; RunBatch classifies
// a whole capture group of configurations in one pass (batch.go),
// split across up to Workers slab partitions when the group is large
// enough to amortize the dispatch.
type Replayer struct {
	// Metrics, when non-nil, receives the batch-replay counters
	// (MetricBatchGroups, MetricBatchConfigsPerPass,
	// MetricBatchDecodePasses, MetricBatchPartitions). Nil disables
	// them.
	Metrics *obs.Registry

	// Workers bounds the partition fan-out RunBatch may use: 0 or 1
	// keeps every batch serial, n > 1 lets a large enough group split
	// into up to n concurrently classified slab partitions. Output is
	// byte-identical either way. RunBatchN overrides it per call.
	Workers int

	npe       int
	frameless bool // the configured cache holds zero page frames
	pageBase  []int32
	owners    []int32
	perPE     stats.PerPE
	trafBuf   []int64 // flat npe×npe traffic matrix, row-major
	particip  []bool

	batchWorker // partition 0's state; Run shares its caches and layout memo

	extra []*batchWorker // partitions 1..n-1, grown on demand and reused

	parOffs   []int // partition boundary offsets, len nparts+1
	parPasses []int // per-partition decode-pass counts
	parErrs   []error
}

// layoutKey identifies a partition layout: the full parameter set
// partition.Make consumes. Layouts are stateless value types, so
// memoizing the boxed interface keeps steady-state replay allocation-free
// for the non-default layout kinds too.
type layoutKey struct {
	kind  partition.Kind
	npe   int
	pages int
	run   int
}

// layout returns the memoized partition layout for the key, building it
// on first use.
func (w *batchWorker) layout(kind partition.Kind, npe, pages, run int) (partition.Layout, error) {
	lk := layoutKey{kind, npe, pages, run}
	if l, ok := w.layouts[lk]; ok {
		return l, nil
	}
	l, err := partition.Make(kind, npe, pages, run)
	if err != nil {
		return nil, err
	}
	if w.layouts == nil {
		w.layouts = make(map[layoutKey]partition.Layout)
	}
	w.layouts[lk] = l
	return l, nil
}

// validateConfig rejects configurations replay cannot serve or that no
// engine accepts; Run and RunBatch share it so a batch fails with
// exactly the error a single-config replay of the same point reports.
func validateConfig(cfg sim.Config) error {
	if !Eligible(cfg) {
		return fmt.Errorf("%w (tracer=%v, partialfill=%v)", ErrUnsupported, cfg.Tracer != nil, cfg.ModelPartialFill)
	}
	if cfg.NPE <= 0 {
		return fmt.Errorf("refstream: NPE must be positive, got %d", cfg.NPE)
	}
	if cfg.PageSize <= 0 {
		return fmt.Errorf("refstream: page size must be positive, got %d", cfg.PageSize)
	}
	if cfg.CacheElems < 0 {
		return fmt.Errorf("refstream: negative cache size %d", cfg.CacheElems)
	}
	return nil
}

// NewReplayer returns an empty Replayer; buffers grow on first use.
func NewReplayer() *Replayer { return &Replayer{} }

// Run classifies the stream under cfg and returns a Result that is
// bit-identical to sim.Run(st.Kernel, st.N, cfg) for every eligible
// configuration: per-PE counters, cache statistics, the traffic
// matrix, reduction sends/broadcasts, and checksums all match. The
// returned Result is independent of the Replayer, except that
// Checksums aliases the stream's memoized (immutable) slice.
func (r *Replayer) Run(st *Stream, cfg sim.Config) (*sim.Result, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}

	// Machine-property setup: page table, owner tables, caches — the
	// same derivation sim.Scratch.Run performs, minus value storage.
	npe := cfg.NPE
	var totalPages int
	r.pageBase, totalPages = appendPageTable(r.pageBase, st.ArrayLens, cfg.PageSize)
	r.owners = grown(r.owners, totalPages)
	for i, elems := range st.ArrayLens {
		pages := (elems + cfg.PageSize - 1) / cfg.PageSize
		l, err := r.layout(cfg.Layout, npe, pages, cfg.LayoutRun)
		if err != nil {
			return nil, fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
		}
		base := r.pageBase[i]
		for p := 0; p < pages; p++ {
			r.owners[base+int32(p)] = int32(l.Owner(p))
		}
	}
	if cap(r.perPE) < npe {
		r.perPE = make(stats.PerPE, npe)
	} else {
		r.perPE = r.perPE[:npe]
		for i := range r.perPE {
			r.perPE[i] = stats.Counters{}
		}
	}
	if len(r.caches) < npe {
		r.caches = append(r.caches, make([]*cache.Cache, npe-len(r.caches))...)
	}
	for pe := 0; pe < npe; pe++ {
		if r.caches[pe] == nil {
			c, err := cache.NewSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages)
			if err != nil {
				return nil, fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
			}
			r.caches[pe] = c
		} else if err := r.caches[pe].ReconfigureSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages); err != nil {
			return nil, fmt.Errorf("refstream: %s: %w", st.Kernel.Key, err)
		}
	}
	r.npe = npe
	// A cache with no page frames (capacity below one page, or a
	// pageless address space) deterministically misses every lookup, so
	// the per-event cache machinery can be bypassed: each non-local
	// read is remote, and the per-PE miss count equals its remote-read
	// count. The caches were still constructed above, so configuration
	// validation matches the direct path exactly.
	r.frameless = r.caches[0].MaxPages() == 0 || totalPages == 0
	r.trafBuf = grown(r.trafBuf, npe*npe)
	r.particip = grown(r.particip, npe)

	// Classification pass. When the configuration's classification is
	// order-free — a frameless cache misses every lookup, and on one PE
	// every access is local — per-PE counters are pure sums over access
	// counts, so replay walks the stream's run-length histogram instead
	// of the event stream: typically two to three orders of magnitude
	// fewer iterations. Otherwise, stream the decoded events through
	// the owner tables and slot caches; cur mirrors the engine's curPE
	// state machine. The fixed-width head and page-id columns are
	// memoized on the Stream, so per event this loop is two slice reads
	// plus the classification itself; the dominant local-read outcome
	// is decided inline, everything slower goes through classifyMiss.
	// Hoisting the columns and counters into locals (and pinning the
	// gid column's length to the head column's) keeps the loop free of
	// repeated pointer loads and bounds checks.
	var reduceS, reduceB int64
	if agg := st.frameAgg(cfg.PageSize); (r.frameless || npe == 1) && agg.ok {
		reduceS, reduceB = r.runAggregate(st, cfg, agg)
	} else if s, b, err := r.runEvents(st, cfg); err != nil {
		return nil, err
	} else {
		reduceS, reduceB = s, b
	}

	// The Result owns fresh copies of the counters; Checksums shares
	// the stream's memoized slice (immutable by contract).
	res := &sim.Result{
		Kernel: st.Kernel.Key, N: st.N, Config: cfg,
		PerPE:        append(stats.PerPE(nil), r.perPE...),
		ReduceSends:  reduceS,
		ReduceBcasts: reduceB,
		Checksums:    st.Checksums,
	}
	res.Totals = res.PerPE.Totals()
	slab := append([]int64(nil), r.trafBuf...)
	res.Traffic = make([][]int64, npe)
	for i := range res.Traffic {
		res.Traffic[i] = slab[i*npe : (i+1)*npe : (i+1)*npe]
	}
	res.Cache = make([]cache.Stats, npe)
	for pe := 0; pe < npe; pe++ {
		if r.frameless {
			res.Cache[pe] = cache.Stats{Misses: r.perPE[pe].RemoteReads}
		} else {
			res.Cache[pe] = r.caches[pe].Stats()
		}
	}
	return res, nil
}

// runEvents classifies the stream one event at a time — the general
// path, required whenever a framed cache on more than one PE makes
// classification order-dependent.
func (r *Replayer) runEvents(st *Stream, cfg sim.Config) (reduceS, reduceB int64, err error) {
	heads, _ := st.decoded()
	gids := st.gidColumn(cfg.PageSize)
	if len(gids) != len(heads) {
		return 0, 0, fmt.Errorf("refstream: %s: corrupt stream: %d gids for %d events", st.Kernel.Key, len(gids), len(heads))
	}
	gids = gids[:len(heads)]
	npe := r.npe
	owners := r.owners
	perPE := r.perPE
	traf := r.trafBuf
	frameless := r.frameless
	var (
		cur            = -1
		reduceAnyTerms bool
	)
	for i, h := range heads {
		switch h & 7 {
		case opRead:
			gid := gids[i]
			owner := int(owners[gid])
			if cur >= 0 {
				switch {
				case owner == cur:
					perPE[cur].LocalReads++
				case frameless: // every lookup misses: remote, no cache traffic to model
					perPE[cur].RemoteReads++
					traf[cur*npe+owner]++
					traf[owner*npe+cur]++
				default:
					r.classifyMiss(cur, owner, gid)
				}
			} else {
				// Replicated control read: every PE executes it.
				for pe := 0; pe < npe; pe++ {
					switch {
					case owner == pe:
						perPE[pe].LocalReads++
					case frameless:
						perPE[pe].RemoteReads++
						traf[pe*npe+owner]++
						traf[owner*npe+pe]++
					default:
						r.classifyMiss(pe, owner, gid)
					}
				}
			}
		case opAssign:
			cur = int(owners[gids[i]])
			perPE[cur].Writes++ // writes are always local (§7)
		case opEnd:
			cur = -1
		case opTerm:
			cur = int(owners[gids[i]])
			r.particip[cur] = true
			reduceAnyTerms = true
		case opEndReduce:
			// Host-processor collection (§9): one send per
			// participating PE, then a broadcast of the result.
			cur = -1
			host := int(h>>3) % npe
			for pe, p := range r.particip {
				if !p {
					continue
				}
				reduceS++
				if pe != host {
					r.trafBuf[pe*npe+host]++
				}
				r.particip[pe] = false
			}
			if reduceAnyTerms {
				reduceB += int64(npe - 1)
				for pe := 0; pe < npe; pe++ {
					if pe != host {
						r.trafBuf[host*npe+pe]++
					}
				}
			}
			reduceAnyTerms = false
		default:
			return 0, 0, fmt.Errorf("refstream: %s: corrupt stream: opcode %d", st.Kernel.Key, h&7)
		}
	}
	return reduceS, reduceB, nil
}

// foldEligible reports whether an order-free configuration can be
// classified from the stream's fold table: the folded page key must
// determine the owner, which holds for modulo layout with a
// power-of-two machine width up to the fold size — and trivially on
// one PE, where every layout maps every page to PE 0.
func foldEligible(cfg sim.Config, npe int) bool {
	return npe == 1 ||
		(cfg.Layout == partition.KindModulo && npe <= foldSize && npe&(npe-1) == 0)
}

// runAggregate classifies an order-free configuration (frameless
// cache, or a single PE where every access is local and the cache is
// never consulted) without touching the event stream. Configurations
// whose owner function survives the fold are served by the fold
// table's fixed-size walk; the rest — block and block-cyclic layouts,
// non-power-of-two widths — walk the lazily built run-length read
// histogram. Either way the sums are exactly what runEvents would
// accumulate event by event, because without cache state no outcome
// depends on access order.
func (r *Replayer) runAggregate(st *Stream, cfg sim.Config, a *frameAgg) (reduceS, reduceB int64) {
	if foldEligible(cfg, r.npe) {
		foldClassify(st.foldTable(cfg.PageSize), r.npe, r.perPE, r.trafBuf)
		return aggregateReduces(a, r.npe, r.owners, r.trafBuf, r.particip)
	}
	return aggregateClassify(a, st.readsHist(cfg.PageSize), r.npe, r.owners, r.perPE, r.trafBuf, r.particip)
}

// aggregateClassify is the histogram walk over explicit state views,
// so the batch replayer can classify each order-free configuration of
// a group against its own slice of the structure-of-arrays slabs.
// There is one definition of the walk; single-config replay delegates
// here, and the batch replayer reuses the write and reduce pieces for
// framed configurations too (their accounting never consults the
// cache, so it is order-free for every configuration class).
func aggregateClassify(a *frameAgg, h *readsHist, npe int, owners []int32, perPE stats.PerPE, traf []int64, particip []bool) (reduceS, reduceB int64) {
	aggregateWrites(a, owners, perPE)
	for _, run := range h.reads {
		ctxPE := int(owners[run.ctx])
		owner := int(owners[run.gid])
		if ctxPE == owner {
			perPE[ctxPE].LocalReads += run.count
		} else {
			perPE[ctxPE].RemoteReads += run.count
			traf[ctxPE*npe+owner] += run.count
			traf[owner*npe+ctxPE] += run.count
		}
	}
	for _, run := range h.ctrl {
		owner := int(owners[run.gid])
		perPE[owner].LocalReads += run.count
		for pe := 0; pe < npe; pe++ {
			if pe == owner {
				continue
			}
			perPE[pe].RemoteReads += run.count
			traf[pe*npe+owner] += run.count
			traf[owner*npe+pe] += run.count
		}
	}
	return aggregateReduces(a, npe, owners, traf, particip)
}

// aggregateWrites charges the histogram's assignment counts: writes are
// always local to the target page's owner, independent of cache state.
func aggregateWrites(a *frameAgg, owners []int32, perPE stats.PerPE) {
	for _, run := range a.assigns {
		perPE[owners[run.gid]].Writes += run.count
	}
}

// aggregateReduces charges the histogram's reduction runs: the
// host-processor collection and broadcast of §9, summed per run. The
// arithmetic never touches the cache, so it is exact for framed
// configurations as well, as long as the histogram is usable (a.ok).
func aggregateReduces(a *frameAgg, npe int, owners []int32, traf []int64, particip []bool) (reduceS, reduceB int64) {
	for _, rr := range a.reduces {
		if rr.gidHi == rr.gidLo {
			continue // zero terms: no participants, no broadcast
		}
		host := int(rr.array) % npe
		for g := rr.gidLo; g < rr.gidHi; g++ {
			particip[owners[g]] = true
		}
		for pe, p := range particip {
			if !p {
				continue
			}
			reduceS += rr.count
			if pe != host {
				traf[pe*npe+host] += rr.count
			}
			particip[pe] = false
		}
		reduceB += int64(npe-1) * rr.count
		for pe := 0; pe < npe; pe++ {
			if pe != host {
				traf[host*npe+pe] += rr.count
			}
		}
	}
	return reduceS, reduceB
}

// classifyMiss charges one non-local read of the element on global
// page gid, owned by owner, to PE pe: the pure-arithmetic core of
// sim's classification, with no value or defined-bit lookups. The
// in-page offset is irrelevant here — a PartialMiss needs a defined
// bitmap, and replay inserts pages with none (every cell defined),
// which is exactly the eligibility bound. The local-read and
// frameless-cache cases are decided inline in the replay loop; this
// call only runs when a real cache has to be consulted.
func (r *Replayer) classifyMiss(pe, owner int, gid int32) {
	switch r.caches[pe].LookupSlot(int(gid), 0) {
	case cache.Hit:
		r.perPE[pe].CachedReads++
	default: // Miss (PartialMiss cannot occur without partial-fill modeling)
		r.perPE[pe].RemoteReads++
		r.trafBuf[pe*r.npe+owner]++ // page request
		r.trafBuf[owner*r.npe+pe]++ // page reply
		r.caches[pe].InsertSlot(int(gid), nil)
	}
}
