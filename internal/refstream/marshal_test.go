package refstream

// marshal_test.go — the serialization contract: a captured stream
// survives a marshal/unmarshal round trip bit-identically (same
// encoding, same replay results), and UnmarshalStream rejects every
// truncation and random corruption of a valid encoding with a clean
// ErrCorruptStream — never a panic, never a silently-wrong stream.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
)

func captureT(t testing.TB, key string, n int) *Stream {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatalf("ByKey(%q): %v", key, err)
	}
	st, err := Capture(k, n)
	if err != nil {
		t.Fatalf("Capture(%s, %d): %v", key, n, err)
	}
	return st
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, key := range []string{"k1", "k6", "k12"} {
		st := captureT(t, key, 0)
		enc, err := st.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: MarshalBinary: %v", key, err)
		}
		got, err := UnmarshalStream(enc)
		if err != nil {
			t.Fatalf("%s: UnmarshalStream: %v", key, err)
		}
		if got.Kernel.Key != st.Kernel.Key || got.N != st.N || got.Events() != st.Events() {
			t.Fatalf("%s: round trip changed identity: (%s,%d,%d) -> (%s,%d,%d)",
				key, st.Kernel.Key, st.N, st.Events(), got.Kernel.Key, got.N, got.Events())
		}
		if len(got.Checksums) != len(st.Checksums) {
			t.Fatalf("%s: %d checksums, want %d", key, len(got.Checksums), len(st.Checksums))
		}
		for i, cs := range st.Checksums {
			if got.Checksums[i] != cs {
				t.Errorf("%s: checksum %d = %+v, want %+v", key, i, got.Checksums[i], cs)
			}
		}
		// The encoding must be canonical: re-marshaling the decoded
		// stream reproduces the exact bytes, so content addresses agree
		// across nodes.
		enc2, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: re-marshal: %v", key, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("%s: re-marshal produced different bytes (%d vs %d)", key, len(enc), len(enc2))
		}
		if ContentAddress(enc) != ContentAddress(enc2) {
			t.Fatalf("%s: content addresses diverge", key)
		}

		// The decoded stream must replay identically to the original.
		cfg := sim.Config{NPE: 8, PageSize: 32, CacheElems: 256, Policy: cache.LRU, Layout: partition.KindModulo}
		want, err := NewReplayer().Run(st, cfg)
		if err != nil {
			t.Fatalf("%s: replaying original: %v", key, err)
		}
		have, err := NewReplayer().Run(got, cfg)
		if err != nil {
			t.Fatalf("%s: replaying decoded: %v", key, err)
		}
		if !reflect.DeepEqual(want.Totals, have.Totals) || !reflect.DeepEqual(want.PerPE, have.PerPE) ||
			!reflect.DeepEqual(want.Checksums, have.Checksums) {
			t.Fatalf("%s: decoded replay diverged:\n%+v\nvs\n%+v", key, want, have)
		}
	}
}

func TestUnmarshalTruncations(t *testing.T) {
	enc, err := captureT(t, "k1", 0).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly: a crash mid-write leaves
	// exactly this shape on disk.
	for n := 0; n < len(enc); n++ {
		if _, err := UnmarshalStream(enc[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(enc))
		} else if !errors.Is(err, ErrCorruptStream) {
			t.Fatalf("truncation to %d bytes: error %v does not wrap ErrCorruptStream", n, err)
		}
	}
}

func TestUnmarshalCorruptions(t *testing.T) {
	enc, err := captureT(t, "k1", 0).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Flip each byte through a few values. Most mutations must error;
	// the ones that survive must at least decode to a structurally
	// valid stream (no panics, indexes in range — validateColumns ran).
	for i := range enc {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), enc...)
			mut[i] ^= delta
			st, err := UnmarshalStream(mut)
			if err != nil {
				if !errors.Is(err, ErrCorruptStream) {
					t.Fatalf("byte %d ^ %#x: error %v does not wrap ErrCorruptStream", i, delta, err)
				}
				continue
			}
			if st.Kernel == nil || st.Events() < 0 {
				t.Fatalf("byte %d ^ %#x: accepted stream is malformed", i, delta)
			}
		}
	}
	// Trailing garbage is corruption, not padding.
	if _, err := UnmarshalStream(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorruptStream) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func FuzzUnmarshalStream(f *testing.F) {
	enc, err := captureT(f, "k1", 0).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte("rsc1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := UnmarshalStream(data)
		if err != nil {
			return // any error is fine; panics are the failure mode
		}
		// Accepted streams must be replayable without panicking: the
		// validator promised every index is in range.
		cfg := sim.Config{NPE: 2, PageSize: 32, Policy: cache.LRU, Layout: partition.KindModulo}
		if _, err := NewReplayer().Run(st, cfg); err != nil {
			t.Logf("replay of accepted fuzz stream errored (allowed): %v", err)
		}
	})
}
