package cluster

// supervisor.go — shard process lifecycle. The Supervisor spawns N
// local shard processes (each a full lfksimd daemon listening on an
// ephemeral port), discovers their addresses through per-shard addr
// files (written temp-then-rename by the shard once its listener is
// up, so a partial write is never read), and exposes Kill/Restart for
// chaos tests and operators. It never auto-restarts: deciding whether
// a dead shard comes back is policy, and the Router must stay correct
// either way — that is the point of the failover path.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// SupervisorOptions configures StartSupervisor.
type SupervisorOptions struct {
	// Shards is the number of shard processes to spawn (>= 1).
	Shards int
	// Command builds the command for shard id, which must serve HTTP on
	// an ephemeral port and write "host:port\n" to addrFile (atomically:
	// temp file + rename) once the listener is up. The supervisor sets
	// nothing else up — environment, binary, and flags are the caller's.
	Command func(id int, addrFile string) *exec.Cmd
	// Dir is where addr files live; empty means a fresh temp directory.
	Dir string
	// StartTimeout bounds the wait for each shard's addr file
	// (<= 0 selects 15s).
	StartTimeout time.Duration
}

// Supervisor owns a fixed-size set of shard processes. Safe for
// concurrent use.
type Supervisor struct {
	opts SupervisorOptions
	dir  string

	mu     sync.Mutex
	shards []*shardProc
}

type shardProc struct {
	id       int
	addrFile string
	addr     string
	cmd      *exec.Cmd
	waitCh   chan struct{} // closed once cmd.Wait returns (child reaped)
	waitErr  error         // cmd.Wait's result; read only after <-waitCh
	dead     bool
}

// StartSupervisor spawns every shard and waits until each has
// published its address. On any failure it kills what it started.
func StartSupervisor(opts SupervisorOptions) (*Supervisor, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.Command == nil {
		return nil, fmt.Errorf("cluster: SupervisorOptions.Command is required")
	}
	if opts.StartTimeout <= 0 {
		opts.StartTimeout = 15 * time.Second
	}
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "cluster-shards-*")
		if err != nil {
			return nil, fmt.Errorf("cluster: addr dir: %w", err)
		}
		dir = d
	}
	s := &Supervisor{opts: opts, dir: dir, shards: make([]*shardProc, opts.Shards)}
	for i := range s.shards {
		sp, err := s.spawn(i)
		if err != nil {
			s.Stop()
			return nil, err
		}
		s.shards[i] = sp
	}
	return s, nil
}

func (s *Supervisor) spawn(id int) (*shardProc, error) {
	addrFile := filepath.Join(s.dir, fmt.Sprintf("shard-%d.addr", id))
	_ = os.Remove(addrFile) // a restart must not read the old address
	cmd := s.opts.Command(id, addrFile)
	if cmd == nil {
		return nil, fmt.Errorf("cluster: Command(%d) returned nil", id)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting shard %d: %w", id, err)
	}
	sp := &shardProc{id: id, addrFile: addrFile, cmd: cmd, waitCh: make(chan struct{})}
	go func() { sp.waitErr = cmd.Wait(); close(sp.waitCh) }()

	deadline := time.Now().Add(s.opts.StartTimeout)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			sp.addr = string(trimNL(b))
			return sp, nil
		}
		select {
		case <-sp.waitCh:
			return nil, fmt.Errorf("cluster: shard %d exited before publishing its address: %v", id, sp.waitErr)
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			return nil, fmt.Errorf("cluster: shard %d did not publish %s within %v", id, addrFile, s.opts.StartTimeout)
		}
	}
}

func trimNL(b []byte) []byte {
	for len(b) > 0 && (b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// Shards returns the shard count.
func (s *Supervisor) Shards() int { return len(s.shards) }

// Addr returns shard id's published listen address ("host:port").
func (s *Supervisor) Addr(id int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[id].addr
}

// PID returns shard id's process ID (-1 if it is dead), so operators
// and chaos harnesses can signal the process directly.
func (s *Supervisor) PID(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.shards[id]
	if sp.dead || sp.cmd.Process == nil {
		return -1
	}
	return sp.cmd.Process.Pid
}

// Kill delivers SIGKILL to shard id and reaps it: the chaos primitive.
// No drain, no warning — the shard vanishes mid-request, exactly like
// a machine failure.
func (s *Supervisor) Kill(id int) error {
	s.mu.Lock()
	sp := s.shards[id]
	if sp.dead {
		s.mu.Unlock()
		return nil
	}
	sp.dead = true
	s.mu.Unlock()
	if err := sp.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("cluster: killing shard %d: %w", id, err)
	}
	<-sp.waitCh // reap; the error is the kill signal, not a failure
	return nil
}

// Restart respawns shard id (which must be dead) and waits for its new
// address: the warm-start primitive — the new process shares the old
// one's capture-store directory via whatever Command wires up.
func (s *Supervisor) Restart(id int) error {
	s.mu.Lock()
	if !s.shards[id].dead {
		s.mu.Unlock()
		return fmt.Errorf("cluster: restart of live shard %d (Kill it first)", id)
	}
	s.mu.Unlock()
	sp, err := s.spawn(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.shards[id] = sp
	s.mu.Unlock()
	return nil
}

// Stop terminates every live shard: SIGTERM first (shards drain like
// any daemon), SIGKILL after 5s. Always reaps. Safe to call twice.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	shards := append([]*shardProc(nil), s.shards...)
	s.mu.Unlock()
	for _, sp := range shards {
		if sp == nil || sp.dead {
			continue
		}
		sp.dead = true
		_ = sp.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, sp := range shards {
		if sp == nil || sp.waitCh == nil {
			continue
		}
		select {
		case <-sp.waitCh:
		case <-time.After(5 * time.Second):
			_ = sp.cmd.Process.Kill()
			<-sp.waitCh
		}
	}
}
