package cluster

// lint_test.go — extends the serve-side metrics-naming contract to the
// cluster and capture-store families: after exercising a router
// (forwards, failover, probes) and a disk-backed store (hit, miss,
// put, corrupt load), every cluster.* and store.* name matches the
// canonical charset and every histogram has a bucket-family row in
// docs/OBSERVABILITY.md.

import (
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/refstream"
	"repro/internal/refstream/store"
)

// exerciseCluster drives a 2-shard router through forwards, a shard
// failure (failover + state change), and a store through put/hit/miss
// so the full cluster.* and store.* metric sets register.
func exerciseCluster(t *testing.T) *obs.Registry {
	t.Helper()
	c := newTestCluster(t, 2)
	postJSON(t, c.front.URL+"/v1/classify", `{"kernel":"k1","npe":8}`)
	c.shards[0].Close()
	code, _, body := postJSON(t, c.front.URL+"/v1/classify", `{"kernel":"k3","npe":4}`)
	if code != http.StatusOK {
		t.Fatalf("failover classify: %d: %s", code, body)
	}

	st, err := store.Open(t.TempDir(), c.reg)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := loops.ByKey("k1")
	st.Load(k, k.DefaultN) // miss
	stream, err := refstream.Capture(k, k.DefaultN)
	if err != nil {
		t.Fatal(err)
	}
	st.Save(stream)
	if _, ok := st.Load(k, k.DefaultN); !ok {
		t.Fatal("store hit path not exercised")
	}
	return c.reg
}

func TestMetricNamesCanonical(t *testing.T) {
	nameRe := regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)
	snap := exerciseCluster(t).Snapshot()
	checkName := func(name string) {
		if !nameRe.MatchString(name) {
			t.Errorf("metric %q violates the naming charset %s", name, nameRe)
		}
	}
	for name := range snap.Counters {
		checkName(name)
	}
	for name := range snap.Gauges {
		checkName(name)
	}
	for name := range snap.Histograms {
		checkName(name)
	}
	// Every cluster.* and store.* constant must have registered through
	// the exercise run — a family added without wiring fails here.
	for _, want := range []string{
		MetricForwards, MetricForwardFailures, MetricFailovers,
		MetricLocalFallbacks, MetricProbes, MetricStateChanges,
		MetricShardsUp, MetricForwardUS, MetricReplications,
		store.MetricHits, store.MetricMisses, store.MetricPuts, store.MetricEntries,
	} {
		_, c := snap.Counters[want]
		_, g := snap.Gauges[want]
		_, h := snap.Histograms[want]
		if !c && !g && !h {
			t.Errorf("expected metric %q missing from the exercised snapshot", want)
		}
	}
	// Error-path counters register lazily; lint their names directly.
	for _, name := range []string{
		MetricRetriesExhaust, MetricProbeFailures,
		store.MetricPutErrors, store.MetricLoadErrors,
	} {
		checkName(name)
	}
}

// TestHistogramsDocumented cross-checks cluster-layer histograms against
// the bucket-family inventory in docs/OBSERVABILITY.md, mirroring the
// serve-side lint.
func TestHistogramsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading docs/OBSERVABILITY.md: %v", err)
	}
	rows := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range regexp.MustCompile("`([a-z][a-z0-9_.]*)`").FindAllStringSubmatch(line, -1) {
			rows[m[1]] = true
		}
	}
	snap := exerciseCluster(t).Snapshot()
	for name := range snap.Histograms {
		if !rows[name] {
			t.Errorf("histogram %q has no bucket-family row in docs/OBSERVABILITY.md", name)
		}
	}
	if !rows[MetricForwardUS] {
		t.Errorf("histogram constant %q has no bucket-family row in docs/OBSERVABILITY.md", MetricForwardUS)
	}
}
