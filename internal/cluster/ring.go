// Package cluster scales the classification service from one daemon
// to a fault-tolerant shard set: a Router consistent-hashes capture
// groups (kernel, clamped N) onto local shard processes, forwards
// /v1/classify and /v1/sweep over HTTP with per-shard timeouts and
// retry-on-peer failover, and merges sweep grids that span shards
// while preserving grid order and the lowest-index-error contract.
//
// The paper's single-assignment principle is what makes this sound:
// a reference stream is captured once per (kernel, N) and is immutable
// thereafter, so any shard can serve any group bit-identically — there
// is no shard-local mutable state a failover could lose. Killing a
// shard mid-sweep costs a retry, never a wrong byte (the chaos suite
// pins exactly this). See docs/CLUSTER.md.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard on the hash
// ring: enough that 3 shards split the 11-kernel paper set roughly
// evenly, small enough that ring construction is trivial.
const DefaultReplicas = 64

// ring is a consistent-hash ring over shard IDs with virtual nodes.
// Immutable after newRing; shard health is the Router's concern — the
// ring always answers with the full preference order and the caller
// skips the shards it believes are down, so placement never shifts
// when health flaps (a down shard's groups land on the next peer in
// its preference order, and return home when it recovers).
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newRing(shards, replicas int) *ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, shards*replicas), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard-%d-vn-%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// GroupKey names a capture group: the unit of placement. One group =
// one reference stream = one (kernel, clamped N) pair, the same key
// the stream cache and capture store use.
func GroupKey(kernel string, n int) string {
	return fmt.Sprintf("%s/n=%d", kernel, n)
}

// order returns every distinct shard in ring-walk order from the
// key's position: order[0] is the group's home shard, order[1] the
// first failover peer, and so on. Deterministic for a given (key,
// shard count, replicas), which is what makes placement stable across
// router restarts and test runs.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.shards)
	if len(r.points) == 0 {
		return out
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.shards)
	for i := 0; len(out) < r.shards && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
