package cluster

// router_test.go — the router against in-process shards (httptest
// servers over real serve.Servers): byte-identity of routed sweeps and
// classifies with the single-node baseline, failover when a shard's
// listener dies or its engine drains, graceful degradation to the
// embedded engine when every shard is gone, and the /healthz cluster
// view. Process-level chaos (SIGKILL mid-sweep) lives in
// chaos_test.go.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/serve"
)

// sweepBody is a 4-kernel slice of the standard grid: big enough to
// span every shard of a 3-shard ring, small enough for fast tests.
const sweepBody = `{"kernels":["k1","k2","k3","k6"],"npes":[2,8],"page_sizes":[32,64],"cache_elems":[0,256]}`

// swapHandler lets a test atomically replace a shard's behavior while
// the shard keeps serving — the race-free way to model an engine that
// starts draining under load.
type swapHandler struct{ h atomic.Value } // holds hbox

type hbox struct{ h http.Handler }

func newSwapHandler(h http.Handler) *swapHandler {
	s := &swapHandler{}
	s.h.Store(hbox{h})
	return s
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(hbox{h}) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(hbox).h.ServeHTTP(w, r)
}

// drain503 is the exact response shape a draining serve engine emits.
var drain503 = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write([]byte(`{"error":"serve: engine closed"}`))
})

type testCluster struct {
	router   *Router
	front    *httptest.Server
	shards   []*httptest.Server
	handlers []*swapHandler
	reg      *obs.Registry
}

// newTestCluster boots n in-process shards and a router over them,
// with fast failover tuning. Callers mutate c.shards / c.handlers to
// inject faults.
func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{reg: obs.NewRegistry()}
	for i := 0; i < n; i++ {
		sreg := obs.NewRegistry()
		s := serve.New(serve.Options{Metrics: sreg, AccessLog: io.Discard})
		sh := newSwapHandler(s.Handler())
		ts := httptest.NewServer(sh)
		c.shards = append(c.shards, ts)
		c.handlers = append(c.handlers, sh)
		t.Cleanup(func() { ts.Close(); s.Close() })
	}
	rt, err := NewRouter(RouterOptions{
		Shards:        n,
		AddrOf:        func(id int) string { return strings.TrimPrefix(c.shards[id].URL, "http://") },
		Local:         serve.Options{Metrics: c.reg, AccessLog: io.Discard},
		ShardTimeout:  30 * time.Second,
		BackoffBase:   time.Millisecond,
		BackoffMax:    5 * time.Millisecond,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.router = rt
	c.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() { c.front.Close(); rt.Close() })
	return c
}

func postJSON(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// baseline serves the same request on a fresh single-node server: the
// bytes every routed configuration must reproduce.
func baseline(t *testing.T, path, body string) []byte {
	t.Helper()
	s := serve.New(serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	code, _, b := postJSON(t, ts.URL+path, body)
	if code != http.StatusOK {
		t.Fatalf("baseline %s: %d: %s", path, code, b)
	}
	return b
}

func TestRoutedSweepMatchesSingleNode(t *testing.T) {
	want := baseline(t, "/v1/sweep", sweepBody)
	c := newTestCluster(t, 3)
	code, _, got := postJSON(t, c.front.URL+"/v1/sweep", sweepBody)
	if code != http.StatusOK {
		t.Fatalf("routed sweep: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("routed sweep body differs from single-node baseline (%d vs %d bytes)", len(want), len(got))
	}
	if c.reg.Counter(MetricForwards).Value() == 0 {
		t.Fatal("no forwards counted — the sweep never reached a shard")
	}
}

func TestRoutedClassifyMatchesSingleNode(t *testing.T) {
	req := `{"kernel":"k6","npe":16,"page_size":64,"cache_elems":256}`
	want := baseline(t, "/v1/classify", req)
	c := newTestCluster(t, 3)
	code, hdr, got := postJSON(t, c.front.URL+"/v1/classify", req)
	if code != http.StatusOK {
		t.Fatalf("routed classify: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("routed classify body differs from single-node baseline")
	}
	if hdr.Get("X-Request-ID") == "" {
		t.Error("router did not echo/assign X-Request-ID")
	}
}

func TestFailoverOnDeadShard(t *testing.T) {
	want := baseline(t, "/v1/sweep", sweepBody)
	c := newTestCluster(t, 3)
	// Kill one shard's listener outright — connection refused, the
	// transport-error flavor of failure.
	c.shards[1].CloseClientConnections()
	c.shards[1].Close()
	code, _, got := postJSON(t, c.front.URL+"/v1/sweep", sweepBody)
	if code != http.StatusOK {
		t.Fatalf("sweep with a dead shard: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("failover sweep body differs from single-node baseline")
	}
	if c.reg.Counter(MetricForwardFailures).Value() == 0 {
		t.Error("no forward failures counted despite a dead shard")
	}
}

// TestFailoverOnDrainingShard pins satellite 2 end-to-end: a shard
// answering 503 + Retry-After (drain) is retryable, so the home
// shard's drain routes the request to a live peer — not to a 504.
func TestFailoverOnDrainingShard(t *testing.T) {
	req := `{"kernel":"k1","npe":4}`
	want := baseline(t, "/v1/classify", req)
	c := newTestCluster(t, 3)

	// Drain exactly k1's home shard; the peers stay live.
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	home := c.router.ring.order(GroupKey(k.Key, k.ClampN(0)))[0]
	c.handlers[home].swap(drain503)

	code, _, got := postJSON(t, c.front.URL+"/v1/classify", req)
	if code != http.StatusOK {
		t.Fatalf("classify with draining home shard: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("drain-failover classify body differs from baseline")
	}
	if c.reg.Counter(MetricFailovers).Value() == 0 {
		t.Error("failover not counted")
	}
	if c.reg.Counter(MetricLocalFallbacks).Value() != 0 {
		t.Error("request fell back to local despite a live peer")
	}
}

// TestAllDrainingFallsBackLocal: every shard draining exhausts the
// retry budget and the embedded engine answers.
func TestAllDrainingFallsBackLocal(t *testing.T) {
	req := `{"kernel":"k1","npe":4}`
	want := baseline(t, "/v1/classify", req)
	c := newTestCluster(t, 2)
	for _, h := range c.handlers {
		h.swap(drain503)
	}
	code, _, got := postJSON(t, c.front.URL+"/v1/classify", req)
	if code != http.StatusOK {
		t.Fatalf("classify with all shards draining: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("local-fallback classify body differs from baseline")
	}
	if c.reg.Counter(MetricLocalFallbacks).Value() == 0 {
		t.Error("local fallback not counted")
	}
	if c.reg.Counter(MetricRetriesExhaust).Value() == 0 {
		t.Error("retry-budget exhaustion not counted")
	}
}

func TestAllShardsDownDegradesToLocal(t *testing.T) {
	want := baseline(t, "/v1/sweep", sweepBody)
	c := newTestCluster(t, 3)
	for _, ts := range c.shards {
		ts.CloseClientConnections()
		ts.Close()
	}
	code, _, got := postJSON(t, c.front.URL+"/v1/sweep", sweepBody)
	if code != http.StatusOK {
		t.Fatalf("sweep with all shards down: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("degraded sweep body differs from single-node baseline")
	}
	if c.reg.Counter(MetricLocalFallbacks).Value() == 0 {
		t.Error("local fallbacks not counted")
	}

	// The health view: degraded but serving.
	resp, err := http.Get(c.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hv struct {
		Status  string `json:"status"`
		Serving bool   `json:"serving"`
		Shards  []struct {
			State string `json:"state"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	if hv.Status != "degraded" || !hv.Serving {
		t.Errorf("healthz = %+v, want degraded-but-serving", hv)
	}
	if len(hv.Shards) != 3 {
		t.Errorf("healthz lists %d shards, want 3", len(hv.Shards))
	}
}

// TestBadRequestsMatchSingleNodeBytes pins the error-path contract:
// requests the router cannot place (parse errors, unknown kernels,
// over-limit sweeps) produce byte-identical status and body to the
// single-node server, via the embedded local decode.
func TestBadRequestsMatchSingleNodeBytes(t *testing.T) {
	cases := []struct{ path, body string }{
		{"/v1/classify", `{"kernel":"nope"}`},
		{"/v1/classify", `{"kernel":"k1","bogus_field":1}`},
		{"/v1/classify", `not json`},
		{"/v1/sweep", `{"kernels":["k1"],"npes":[0]}`},
		{"/v1/sweep", `{"kernels":["nope"]}`},
		{"/v1/sweep", `{"npes":[1,2,4,8,16,32,64],"page_sizes":[1,2,4,8,16,32,64,128,256,512]}`},
	}
	s := serve.New(serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard})
	single := httptest.NewServer(s.Handler())
	defer func() { single.Close(); s.Close() }()
	c := newTestCluster(t, 2)
	for _, tc := range cases {
		wantCode, _, want := postJSON(t, single.URL+tc.path, tc.body)
		gotCode, _, got := postJSON(t, c.front.URL+tc.path, tc.body)
		if wantCode != gotCode || !bytes.Equal(want, got) {
			t.Errorf("%s %q: single-node %d %s vs routed %d %s", tc.path, tc.body, wantCode, want, gotCode, got)
		}
	}
}

// TestShardStateLifecycle drives up → suspect → down → up through
// forwarding failures and probe recovery.
func TestShardStateLifecycle(t *testing.T) {
	c := newTestCluster(t, 3)
	rt := c.router
	if got := rt.state(0); got != stateUp {
		t.Fatalf("initial state = %v, want up", got)
	}
	rt.noteFailure(0)
	if got := rt.state(0); got != stateSuspect {
		t.Fatalf("after one failure: %v, want suspect", got)
	}
	rt.noteFailure(0)
	if got := rt.state(0); got != stateDown {
		t.Fatalf("after two failures: %v, want down", got)
	}
	if got := c.reg.Gauge(MetricShardsUp).Value(); got != 2 {
		t.Fatalf("shards_up gauge = %d, want 2", got)
	}
	// The prober sees the (still healthy) shard and restores it.
	deadline := time.Now().Add(5 * time.Second)
	for rt.state(0) != stateUp && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := rt.state(0); got != stateUp {
		t.Fatalf("prober did not restore a healthy shard: %v", got)
	}
	if c.reg.Counter(MetricStateChanges).Value() < 3 {
		t.Error("state changes not counted")
	}
}

// TestMergePreservesDuplicateKernels pins a merge edge case: the same
// kernel listed twice expands twice, in order, exactly as single-node.
func TestMergePreservesDuplicateKernels(t *testing.T) {
	body := `{"kernels":["k2","k1","k2"],"npes":[2],"page_sizes":[32]}`
	want := baseline(t, "/v1/sweep", body)
	c := newTestCluster(t, 3)
	code, _, got := postJSON(t, c.front.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("duplicate-kernel sweep: %d: %s", code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("duplicate-kernel sweep differs from single-node baseline")
	}
}
