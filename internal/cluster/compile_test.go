package cluster

// compile_test.go — the compile path through the router: a routed
// POST /v1/compile answers with the single-node bytes, replicates the
// kernel to every shard (classify-after-compile works shard-side
// immediately), routed classify/sweep over a compiled id reproduce the
// single-node bodies, and a shard that loses its in-memory registry
// (restart) is healed on first use via the 404 unknown_kernel retry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/serve"
)

// clusterUserSource is a small SA-clean user kernel.
const clusterUserSource = `PROGRAM clusterk
  ARRAY A(n+1) OUTPUT
  ARRAY B(n+1) INPUT
  DO i = 1, n
    A(i) = 3*B(i)
  END DO
END
`

func compileReqBody(t *testing.T) string {
	t.Helper()
	b, err := json.Marshal(kernelreg.CompileRequest{Source: clusterUserSource})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// singleNode boots a fresh single-node server, compiles the user
// kernel, and serves path/body — the baseline bytes for every routed
// configuration.
func singleNode(t *testing.T, compileBody, path, body string) []byte {
	t.Helper()
	s := serve.New(serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	code, _, b := postJSON(t, ts.URL+"/v1/compile", compileBody)
	if code != http.StatusOK {
		t.Fatalf("baseline compile: %d: %s", code, b)
	}
	code, _, b = postJSON(t, ts.URL+path, body)
	if code != http.StatusOK {
		t.Fatalf("baseline %s: %d: %s", path, code, b)
	}
	return b
}

func TestCompileRoutedByteIdentity(t *testing.T) {
	c := newTestCluster(t, 3)
	body := compileReqBody(t)

	code, _, raw := postJSON(t, c.front.URL+"/v1/compile", body)
	if code != http.StatusOK {
		t.Fatalf("routed compile: %d: %s", code, raw)
	}
	var resp kernelreg.CompileResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}

	// The routed compile body is the single-node compile body.
	s := serve.New(serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()
	bcode, _, braw := postJSON(t, ts.URL+"/v1/compile", body)
	if bcode != http.StatusOK || !bytes.Equal(raw, braw) {
		t.Fatalf("routed compile body differs from single-node:\n%s\n%s", raw, braw)
	}

	// Replication reached every shard: each serves the compiled kernel
	// directly, no router in the path.
	classify := fmt.Sprintf(`{"kernel":%q,"npe":8}`, resp.Kernel)
	for i, sh := range c.shards {
		scode, _, sbody := postJSON(t, sh.URL+"/v1/classify", classify)
		if scode != http.StatusOK {
			t.Fatalf("shard %d classify after replication: %d: %s", i, scode, sbody)
		}
	}
	if got := c.router.reg.Counter(MetricReplications).Value(); got == 0 {
		t.Fatalf("%s = 0 after a routed compile", MetricReplications)
	}

	// Routed classify and sweep over the compiled id reproduce the
	// single-node bytes.
	ccode, _, cbody := postJSON(t, c.front.URL+"/v1/classify", classify)
	if ccode != http.StatusOK {
		t.Fatalf("routed classify: %d: %s", ccode, cbody)
	}
	if want := singleNode(t, body, "/v1/classify", classify); !bytes.Equal(cbody, want) {
		t.Fatalf("routed classify body differs from single-node:\n%s\n%s", cbody, want)
	}

	sweep := fmt.Sprintf(`{"kernels":[%q,"k1","k3"],"npes":[2,8],"page_sizes":[32,64]}`, resp.Kernel)
	wcode, _, wbody := postJSON(t, c.front.URL+"/v1/sweep", sweep)
	if wcode != http.StatusOK {
		t.Fatalf("routed sweep: %d: %s", wcode, wbody)
	}
	if want := singleNode(t, body, "/v1/sweep", sweep); !bytes.Equal(wbody, want) {
		t.Fatal("routed sweep body over a compiled kernel differs from single-node")
	}

	// Repeat the routed sweep: bit-identical on the warm path too.
	_, _, wbody2 := postJSON(t, c.front.URL+"/v1/sweep", sweep)
	if !bytes.Equal(wbody, wbody2) {
		t.Fatal("repeated routed sweep bodies differ")
	}
}

// TestCompileSelfHeal models a shard restart: every shard is replaced
// by a fresh server (empty registry), so the first routed classify of
// the compiled kernel meets 404 unknown_kernel — and the router must
// re-replicate from its local registry and retry, not relay the 404.
func TestCompileSelfHeal(t *testing.T) {
	c := newTestCluster(t, 3)
	body := compileReqBody(t)
	code, _, raw := postJSON(t, c.front.URL+"/v1/compile", body)
	if code != http.StatusOK {
		t.Fatalf("routed compile: %d: %s", code, raw)
	}
	var resp kernelreg.CompileResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}

	for i := range c.handlers {
		sreg := obs.NewRegistry()
		s := serve.New(serve.Options{Metrics: sreg, AccessLog: io.Discard})
		t.Cleanup(s.Close)
		c.handlers[i].swap(s.Handler())
	}

	classify := fmt.Sprintf(`{"kernel":%q,"npe":8}`, resp.Kernel)
	ccode, _, cbody := postJSON(t, c.front.URL+"/v1/classify", classify)
	if ccode != http.StatusOK {
		t.Fatalf("classify after shard restart: %d: %s", ccode, cbody)
	}
	if want := singleNode(t, body, "/v1/classify", classify); !bytes.Equal(cbody, want) {
		t.Fatalf("healed classify body differs from single-node:\n%s\n%s", cbody, want)
	}

	// The sweep path heals the same way.
	for i := range c.handlers {
		s := serve.New(serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard})
		t.Cleanup(s.Close)
		c.handlers[i].swap(s.Handler())
	}
	sweep := fmt.Sprintf(`{"kernels":[%q],"npes":[2,8]}`, resp.Kernel)
	wcode, _, wbody := postJSON(t, c.front.URL+"/v1/sweep", sweep)
	if wcode != http.StatusOK {
		t.Fatalf("sweep after shard restart: %d: %s", wcode, wbody)
	}
	if want := singleNode(t, body, "/v1/sweep", sweep); !bytes.Equal(wbody, want) {
		t.Fatal("healed sweep body differs from single-node")
	}
}
