package cluster

// chaos_test.go — the process-level acceptance suite. Shards here are
// real OS processes (the test binary re-execed into shard mode via
// TestMain), killed with SIGKILL mid-flight:
//
//   - TestChaosKillShardMidSweep: SIGKILL one of 3 shards while the
//     standard 308-point grid is in flight; the router completes the
//     sweep via peer failover and the merged body is byte-identical to
//     the single-node baseline. Seeded by CHAOS_SEED (CI runs 3 seeds
//     under -race).
//   - TestWarmStartAcrossShardRestart: kill -9 a shard backed by a
//     capture store, restart it, and the next sweep re-serves from
//     disk — zero capture executions, store hits instead, identical
//     bytes.
//
// The shard process is a full serve.Server on an ephemeral port that
// publishes its address through an addr file (temp + rename), exactly
// what cmd/lfksimd's -addr-file flag does.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/refstream/store"
	"repro/internal/serve"
)

const (
	envShardMain = "CLUSTER_TEST_SHARD_MAIN"
	envAddrFile  = "CLUSTER_TEST_ADDR_FILE"
	envStoreDir  = "CLUSTER_TEST_STORE_DIR"
)

// standardGridReq expands to the paper's standard 308-point grid:
// 11 kernels × 7 NPEs × 2 page sizes × 2 cache sizes (docs/PERF.md).
const standardGridReq = `{"page_sizes":[32,64],"cache_elems":[0,256]}`

// TestMain turns the test binary into a shard server when re-execed
// with the shard env var: the hermetic way to get real processes to
// kill without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv(envShardMain) == "1" {
		shardMain()
		return
	}
	os.Exit(m.Run())
}

// shardMain is the shard process: a single-node classification server
// on an ephemeral port, its address published via addr file, with an
// optional disk-backed capture store.
func shardMain() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "shard:", err)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	opts := serve.Options{Metrics: reg, AccessLog: io.Discard}
	if dir := os.Getenv(envStoreDir); dir != "" {
		st, err := store.Open(dir, reg)
		if err != nil {
			fail(err)
		}
		opts.CaptureStore = st
	}
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	addrFile := os.Getenv(envAddrFile)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fail(err)
	}
	fail(http.Serve(ln, srv.Handler()))
}

// shardCommand builds the Supervisor command: re-exec this test binary
// in shard mode. storeDir may be empty (no durable tier).
func shardCommand(storeDir string) func(id int, addrFile string) *exec.Cmd {
	exe, err := os.Executable()
	if err != nil {
		panic(err)
	}
	return func(id int, addrFile string) *exec.Cmd {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			envShardMain+"=1",
			envAddrFile+"="+addrFile,
			envStoreDir+"="+storeDir,
		)
		cmd.Stderr = os.Stderr
		return cmd
	}
}

// chaosSeed reads CHAOS_SEED (the CI matrix knob); default 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}

func metricsSnapshot(t *testing.T, base string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return snap
}

func TestChaosKillShardMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test")
	}
	seed := chaosSeed(t)

	// Single-node baseline bytes for the full standard grid.
	want := baseline(t, "/v1/sweep", standardGridReq)

	sup, err := StartSupervisor(SupervisorOptions{
		Shards:  3,
		Command: shardCommand(""),
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	rt, err := NewRouter(RouterOptions{
		Shards:        3,
		AddrOf:        sup.Addr,
		PIDOf:         sup.PID,
		Local:         serve.Options{Metrics: obs.NewRegistry(), AccessLog: io.Discard},
		BackoffBase:   2 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		ProbeInterval: 100 * time.Millisecond,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// SIGKILL shard 1 mid-sweep: the delay is seed-derived so the three
	// CI seeds kill at different points of the request's life — during
	// captures, during replays, between sub-sweeps.
	killDelay := time.Duration(5+seed*13%120) * time.Millisecond
	killed := make(chan error, 1)
	go func() {
		time.Sleep(killDelay)
		killed <- sup.Kill(1)
	}()

	code, _, got := postJSON(t, front.URL+"/v1/sweep", standardGridReq)
	if err := <-killed; err != nil {
		t.Fatalf("killing shard 1: %v", err)
	}
	if code != http.StatusOK {
		t.Fatalf("sweep with shard killed after %v: %d: %s", killDelay, code, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("sweep body after mid-flight SIGKILL differs from single-node baseline (%d vs %d bytes)", len(got), len(want))
	}

	// The router must converge on degraded-but-serving: the prober
	// marks the dead shard down, and classifies keep answering.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"status":"degraded"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported degraded after the kill: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	code, _, body := postJSON(t, front.URL+"/v1/classify", `{"kernel":"k1","npe":8}`)
	if code != http.StatusOK {
		t.Fatalf("classify after kill: %d: %s", code, body)
	}
}

func TestWarmStartAcrossShardRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level chaos test")
	}
	storeDir := t.TempDir()
	sup, err := StartSupervisor(SupervisorOptions{
		Shards:  1,
		Command: shardCommand(storeDir),
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()

	const sweepReq = `{"kernels":["k1","k2","k3","k6"],"npes":[2,8],"page_sizes":[32,64]}`
	base := "http://" + sup.Addr(0)
	code, _, bodyA := postJSON(t, base+"/v1/sweep", sweepReq)
	if code != http.StatusOK {
		t.Fatalf("cold sweep: %d: %s", code, bodyA)
	}
	snap := metricsSnapshot(t, base)
	if snap.Counters[serve.MetricStreamCaptures] == 0 {
		t.Fatal("cold shard executed no captures — the test exercises nothing")
	}
	if snap.Counters[store.MetricPuts] == 0 {
		t.Fatal("cold shard persisted no captures")
	}

	// kill -9, then restart into the same store directory.
	if err := sup.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := sup.Restart(0); err != nil {
		t.Fatal(err)
	}
	base = "http://" + sup.Addr(0)
	code, _, bodyB := postJSON(t, base+"/v1/sweep", sweepReq)
	if code != http.StatusOK {
		t.Fatalf("warm sweep: %d: %s", code, bodyB)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("warm-started sweep body differs from the pre-kill body")
	}
	snap = metricsSnapshot(t, base)
	if got := snap.Counters[serve.MetricStreamCaptures]; got != 0 {
		t.Errorf("restarted shard executed %d captures, want 0 (warm start)", got)
	}
	if got := snap.Counters[store.MetricHits]; got == 0 {
		t.Error("restarted shard recorded no store hits")
	}
}

// TestSupervisorAddrFileDiscovery pins the addr-file contract at the
// supervisor level: a fresh shard publishes a dialable address, Kill
// reports a -1 PID, and Restart publishes a new address.
func TestSupervisorAddrFileDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	dir := t.TempDir()
	sup, err := StartSupervisor(SupervisorOptions{Shards: 1, Command: shardCommand(""), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Stop()
	if sup.PID(0) <= 0 {
		t.Fatalf("PID(0) = %d, want a live pid", sup.PID(0))
	}
	code, _, body := postJSON(t, "http://"+sup.Addr(0)+"/v1/classify", `{"kernel":"k1","npe":2}`)
	if code != http.StatusOK {
		t.Fatalf("classify against spawned shard: %d: %s", code, body)
	}
	if err := sup.Kill(0); err != nil {
		t.Fatal(err)
	}
	if got := sup.PID(0); got != -1 {
		t.Fatalf("PID after kill = %d, want -1", got)
	}
	// The addr file of the dead shard must not be reused on restart
	// before the new listener is up.
	if err := sup.Restart(0); err != nil {
		t.Fatal(err)
	}
	code, _, body = postJSON(t, "http://"+sup.Addr(0)+"/v1/classify", `{"kernel":"k1","npe":2}`)
	if code != http.StatusOK {
		t.Fatalf("classify against restarted shard: %d: %s", code, body)
	}
	// Crash debris in the addr dir must not confuse a later spawn.
	if err := os.WriteFile(filepath.Join(dir, "shard-0.addr.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
}
