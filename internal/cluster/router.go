package cluster

// router.go — the cluster coordinator. A Router owns the client-facing
// HTTP surface of a shard set: it consistent-hashes each capture group
// onto its home shard, forwards classify/sweep work over HTTP with
// per-shard timeouts, and on failure walks the group's ring order to a
// live peer with capped exponential backoff — bounded by a retry
// budget, surfaced in cluster.* metrics and per-request trace spans.
// A sweep that spans shards is split into per-shard sub-sweeps and the
// responses merged back in grid order; because every shard serves
// every point bit-identically (the single-assignment property: a
// capture group's reference stream is immutable), the merged body is
// byte-for-byte the single-node body.
//
// Shard health is a three-state lifecycle (up → suspect → down) fed by
// both an active prober and forwarding failures; down shards are
// skipped in the ring walk (their groups re-dispatch to the next
// peer), and any success restores a shard to up. When every shard is
// unreachable the router degrades to direct execution on an embedded
// single-node server — slower, never wrong.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/serve"
)

// Observability names of the cluster family. Counters unless noted;
// docs/CLUSTER.md describes how they compose into a failover picture.
const (
	MetricForwards        = "cluster.forwards"         // sub-requests sent to shards
	MetricForwardFailures = "cluster.forward_failures" // transport errors + retryable statuses
	MetricFailovers       = "cluster.failovers"        // groups re-dispatched to a peer
	MetricRetriesExhaust  = "cluster.retry_exhausted"  // groups that ran out of retry budget
	MetricLocalFallbacks  = "cluster.local_fallbacks"  // groups served by the embedded engine
	MetricProbes          = "cluster.health_probes"    // active health checks sent
	MetricProbeFailures   = "cluster.health_probe_failures"
	MetricStateChanges    = "cluster.shard_state_changes"  // up/suspect/down transitions
	MetricShardsUp        = "cluster.shards_up"            // gauge: shards currently up
	MetricForwardUS       = "cluster.forward_us"           // histogram (obs.MicrosBuckets): per-attempt forward latency
	MetricReplications    = "cluster.compile_replications" // compiled kernels broadcast to the shard set
)

// shardState is the health lifecycle: up ⇄ suspect → down, any success
// returning the shard straight to up.
type shardState int32

const (
	stateUp shardState = iota
	stateSuspect
	stateDown
)

func (s shardState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateSuspect:
		return "suspect"
	default:
		return "down"
	}
}

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Shards is the shard count; AddrOf(i) returns shard i's current
	// "host:port" and PIDOf(i) its process ID (-1 when dead) — normally
	// Supervisor.Addr / Supervisor.PID, kept as funcs so a restart's new
	// address is picked up and tests can stub shards with httptest.
	Shards int
	AddrOf func(id int) string
	PIDOf  func(id int) int

	// Local configures the embedded single-node server: the all-shards-
	// down fallback and the handler for non-routed endpoints
	// (/v1/kernels, /metrics, pprof). Its Metrics registry is shared
	// with the router's own cluster.* instruments.
	Local serve.Options

	// Metrics receives the cluster.* instruments; nil uses Local.Metrics
	// (or obs.Default()).
	Metrics *obs.Registry

	// ShardTimeout bounds one forwarded sub-request (<= 0 selects 60s).
	ShardTimeout time.Duration
	// MaxAttempts bounds forwards per group including the first
	// (<= 0 selects the shard count): the retry budget.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between attempts (<= 0 select 5ms and 250ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeInterval paces the active health prober (<= 0 selects 500ms).
	ProbeInterval time.Duration
	// Replicas is the virtual-node count per shard (<= 0 selects
	// DefaultReplicas).
	Replicas int
	// Seed drives backoff jitter (0 selects 1). Placement is not
	// seeded — the ring is deterministic by design.
	Seed int64
	// TraceRingEntries bounds the router's GET /debug/trace ring.
	TraceRingEntries int
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 60 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = o.Shards
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Router fronts a shard set. Create with NewRouter, mount Handler, and
// Close when done (stops the prober and drains the embedded engine).
type Router struct {
	opts  RouterOptions
	ring  *ring
	local *serve.Server
	reg   *obs.Registry
	mux   *http.ServeMux
	tring *trace.Ring
	hc    *http.Client

	cForwards, cForwardFails, cFailovers *obs.Counter
	cExhausted, cLocalFallbacks          *obs.Counter
	cProbes, cProbeFails, cStateChanges  *obs.Counter
	cReplications                        *obs.Counter
	gShardsUp                            *obs.Gauge
	hForward                             *obs.Histogram

	stateMu sync.Mutex
	states  []shardState

	rngMu sync.Mutex
	rng   *rand.Rand

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
}

// NewRouter builds a Router and starts its health prober.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if opts.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", opts.Shards)
	}
	if opts.AddrOf == nil {
		return nil, fmt.Errorf("cluster: RouterOptions.AddrOf is required")
	}
	if opts.Metrics == nil {
		if opts.Local.Metrics == nil {
			opts.Local.Metrics = obs.NewRegistry()
		}
		opts.Metrics = opts.Local.Metrics
	} else if opts.Local.Metrics == nil {
		opts.Local.Metrics = opts.Metrics
	}
	reg := opts.Metrics
	rt := &Router{
		opts:            opts,
		ring:            newRing(opts.Shards, opts.Replicas),
		local:           serve.New(opts.Local),
		reg:             reg,
		mux:             http.NewServeMux(),
		tring:           trace.NewRing(opts.TraceRingEntries),
		hc:              &http.Client{},
		cForwards:       reg.Counter(MetricForwards),
		cForwardFails:   reg.Counter(MetricForwardFailures),
		cFailovers:      reg.Counter(MetricFailovers),
		cExhausted:      reg.Counter(MetricRetriesExhaust),
		cLocalFallbacks: reg.Counter(MetricLocalFallbacks),
		cProbes:         reg.Counter(MetricProbes),
		cProbeFails:     reg.Counter(MetricProbeFailures),
		cStateChanges:   reg.Counter(MetricStateChanges),
		cReplications:   reg.Counter(MetricReplications),
		gShardsUp:       reg.Gauge(MetricShardsUp),
		hForward:        reg.Histogram(MetricForwardUS, obs.MicrosBuckets),
		states:          make([]shardState, opts.Shards),
		rng:             rand.New(rand.NewSource(opts.Seed)),
		stopProbe:       make(chan struct{}),
	}
	rt.gShardsUp.Set(int64(opts.Shards))
	rt.mux.HandleFunc("POST /v1/classify", rt.handleClassify)
	rt.mux.HandleFunc("POST /v1/sweep", rt.handleSweep)
	rt.mux.HandleFunc("POST /v1/compile", rt.handleCompile)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /debug/trace", rt.handleTrace)
	rt.mux.Handle("/", rt.local.Handler()) // kernels, metrics, pprof, vars
	rt.probeWG.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Handler returns the router's route tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Local exposes the embedded single-node server (tests).
func (rt *Router) Local() *serve.Server { return rt.local }

// Close stops the health prober and drains the embedded engine.
func (rt *Router) Close() {
	close(rt.stopProbe)
	rt.probeWG.Wait()
	rt.local.Close()
}

// --- health ---

func (rt *Router) state(id int) shardState {
	rt.stateMu.Lock()
	defer rt.stateMu.Unlock()
	return rt.states[id]
}

func (rt *Router) setState(id int, s shardState) {
	rt.stateMu.Lock()
	old := rt.states[id]
	if old != s {
		rt.states[id] = s
		up := int64(0)
		for _, st := range rt.states {
			if st == stateUp {
				up++
			}
		}
		rt.stateMu.Unlock()
		rt.cStateChanges.Inc()
		rt.gShardsUp.Set(up)
		return
	}
	rt.stateMu.Unlock()
}

// noteFailure degrades a shard one step: up → suspect → down.
func (rt *Router) noteFailure(id int) {
	rt.stateMu.Lock()
	old := rt.states[id]
	rt.stateMu.Unlock()
	switch old {
	case stateUp:
		rt.setState(id, stateSuspect)
	case stateSuspect:
		rt.setState(id, stateDown)
	}
}

func (rt *Router) noteSuccess(id int) { rt.setState(id, stateUp) }

// probeLoop actively health-checks every shard: GET /healthz with a
// bounded timeout, feeding the same three-state lifecycle forwarding
// failures feed. A down shard keeps being probed — that is how it
// comes back after a restart.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	tick := time.NewTicker(rt.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-tick.C:
		}
		for id := 0; id < rt.opts.Shards; id++ {
			rt.probe(id)
		}
	}
}

func (rt *Router) probe(id int) {
	rt.cProbes.Inc()
	timeout := rt.opts.ProbeInterval
	if timeout < 500*time.Millisecond {
		timeout = 500 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rt.opts.AddrOf(id)+"/healthz", nil)
	if err != nil {
		rt.cProbeFails.Inc()
		rt.noteFailure(id)
		return
	}
	resp, err := rt.hc.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		rt.cProbeFails.Inc()
		rt.noteFailure(id)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.noteSuccess(id)
}

// --- forwarding ---

// errAllAttemptsFailed reports an exhausted retry budget or no live
// candidate; the caller degrades to the embedded engine.
var errAllAttemptsFailed = errors.New("cluster: all forward attempts failed")

// retryableStatus reports whether a shard's status line means "the
// identical request can succeed elsewhere": 502/503 (drain, restart,
// proxy failure). 504 is terminal — the deadline travels with the
// request and would overrun again on a peer — as are 4xx and 500.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// forwardOnce sends one sub-request to one shard and reads the whole
// response.
func (rt *Router) forwardOnce(ctx context.Context, id int, path, reqID string, payload []byte) (int, []byte, error) {
	cctx, cancel := context.WithTimeout(ctx, rt.opts.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, "http://"+rt.opts.AddrOf(id)+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	rt.cForwards.Inc()
	start := time.Now()
	resp, err := rt.hc.Do(req)
	rt.hForward.Observe(time.Since(start).Microseconds())
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// dispatch routes one group's sub-request: home shard first, then the
// ring-order peers, skipping shards believed down, sleeping a capped
// exponential backoff (with seeded jitter) between attempts, within
// the MaxAttempts budget. Success means a response whose status is not
// retryable — a 400 or 504 is the answer, not a reason to hammer
// peers. Returns errAllAttemptsFailed when the budget is spent.
func (rt *Router) dispatch(ctx context.Context, tr *trace.Trace, parent trace.SpanRef, key, path, reqID string, payload []byte) (int, []byte, error) {
	order := rt.ring.order(key)
	attempts := 0
	for round := 0; round < 2 && attempts < rt.opts.MaxAttempts; round++ {
		for _, id := range order {
			if attempts >= rt.opts.MaxAttempts {
				break
			}
			// First round honors health; the second is the last-gasp
			// round that tries even down shards before degrading.
			if round == 0 && rt.state(id) == stateDown {
				continue
			}
			if attempts > 0 {
				rt.cFailovers.Inc()
				tr.Count("cluster.failovers", 1)
				rt.backoff(ctx, attempts)
			}
			attempts++
			sp := tr.StartChild(parent, fmt.Sprintf("forward.shard%d", id))
			status, body, err := rt.forwardOnce(ctx, id, path, reqID, payload)
			sp.End()
			if err == nil && !retryableStatus(status) {
				rt.noteSuccess(id)
				return status, body, nil
			}
			rt.cForwardFails.Inc()
			rt.noteFailure(id)
			if err != nil {
				tr.Event(parent, fmt.Sprintf("shard%d.error", id), 0, "")
			} else {
				tr.Event(parent, fmt.Sprintf("shard%d.status", id), int64(status), "")
			}
			if ctx.Err() != nil {
				return 0, nil, ctx.Err()
			}
		}
	}
	rt.cExhausted.Inc()
	return 0, nil, errAllAttemptsFailed
}

// backoff sleeps the capped exponential schedule: base·2^(n-1) +
// jitter, capped at BackoffMax, abandoned if ctx ends first.
func (rt *Router) backoff(ctx context.Context, attempt int) {
	d := rt.opts.BackoffBase << (attempt - 1)
	if d > rt.opts.BackoffMax || d <= 0 {
		d = rt.opts.BackoffMax
	}
	rt.rngMu.Lock()
	j := time.Duration(rt.rng.Int63n(int64(rt.opts.BackoffBase) + 1))
	rt.rngMu.Unlock()
	select {
	case <-time.After(d + j):
	case <-ctx.Done():
	}
}

// --- request handling ---

// recorder captures a response served by the embedded local handler so
// the router can merge or relay it. A minimal http.ResponseWriter —
// the local handler writes status, headers and one body.
type recorder struct {
	status int
	hdr    http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{hdr: http.Header{}} }

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *recorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(b)
}

// serveLocalBytes runs a request against the embedded single-node
// server and returns the recorded response.
func (rt *Router) serveLocalBytes(r *http.Request, path string, payload []byte) (int, []byte) {
	rec := newRecorder()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, path, bytes.NewReader(payload))
	if err != nil {
		return http.StatusInternalServerError, []byte(`{"error":"local fallback request"}`)
	}
	req.Header.Set("Content-Type", "application/json")
	rt.local.Handler().ServeHTTP(rec, req)
	return rec.status, rec.body.Bytes()
}

// begin starts the per-request trace, echoing/generating X-Request-ID
// exactly like the single-node front end.
func (rt *Router) begin(w http.ResponseWriter, r *http.Request, route string) (*trace.Trace, string) {
	id := trace.SanitizeID(r.Header.Get("X-Request-ID"))
	if id == "" {
		id = trace.NewID()
	}
	w.Header().Set("X-Request-ID", id)
	return trace.New(id, route), id
}

func (rt *Router) finish(tr *trace.Trace, status int) {
	tr.Finish(status)
	rt.tring.Add(tr)
}

func (rt *Router) handleClassify(w http.ResponseWriter, r *http.Request) {
	tr, reqID := rt.begin(w, r, "/v1/classify")
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("reading request body: %w", err)))
		rt.finish(tr, http.StatusBadRequest)
		return
	}
	// Routing needs the group key; a request the router cannot place
	// (parse error, unknown kernel) goes to the local server, whose
	// decode produces exactly the single-node error bytes.
	var req serve.ClassifyRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var key string
	if err := dec.Decode(&req); err == nil {
		// Resolve through the local registry: built-in keys and compiled
		// "u:..." ids place the same way, so a compiled kernel's captures
		// concentrate on one home shard exactly like a built-in's.
		if k, kerr := rt.local.Registry().Resolve(req.Kernel); kerr == nil {
			key = GroupKey(k.Key, k.ClampN(req.N))
		}
	}
	if key == "" {
		status, body := rt.serveLocalBytes(r, "/v1/classify", raw)
		writeJSON(w, status, body)
		rt.finish(tr, status)
		return
	}
	root := tr.Start("route")
	status, body, err := rt.dispatch(r.Context(), tr, root, key, "/v1/classify", reqID, raw)
	if err == nil && rt.healUnknown(r.Context(), reqID, status, body, req.Kernel) {
		status, body, err = rt.dispatch(r.Context(), tr, root, key, "/v1/classify", reqID, raw)
	}
	if err != nil {
		rt.cLocalFallbacks.Inc()
		tr.Count("cluster.local_fallbacks", 1)
		status, body = rt.serveLocalBytes(r, "/v1/classify", raw)
	}
	root.End()
	writeJSON(w, status, body)
	rt.finish(tr, status)
}

// handleCompile serves POST /v1/compile cluster-wide. The embedded
// local server compiles first and its bytes are the response — so a
// routed compile is byte-identical to the single-node one — and on
// success the kernel's canonical replication request (the registry's
// own rendering: already SA-clean, no convert flag, first-wins
// default_n) is broadcast to every shard synchronously, so a classify
// or sweep arriving right after the compile returns finds a warm
// registry on its home shard. A shard that misses the broadcast
// (down, mid-restart) is healed lazily: its 404 unknown_kernel answer
// triggers re-replication and one dispatch retry (healUnknown).
func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	tr, reqID := rt.begin(w, r, "/v1/compile")
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("reading request body: %w", err)))
		rt.finish(tr, http.StatusBadRequest)
		return
	}
	sp := tr.Start("compile_local")
	status, body := rt.serveLocalBytes(r, "/v1/compile", raw)
	sp.End()
	if status == http.StatusOK {
		var resp kernelreg.CompileResponse
		if json.Unmarshal(body, &resp) == nil && resp.Kernel != "" {
			rsp := tr.Start("replicate")
			rt.replicate(r.Context(), reqID, resp.Kernel)
			rsp.End()
		}
	}
	writeJSON(w, status, body)
	rt.finish(tr, status)
}

// replicate broadcasts a locally registered compiled kernel to every
// shard concurrently and waits for the fan-out. Best-effort per shard:
// an unreachable shard is left for heal-on-use rather than failing the
// client's compile. Reports whether the kernel was known locally (the
// precondition for a useful retry).
func (rt *Router) replicate(ctx context.Context, reqID, id string) bool {
	rep, ok := rt.local.Registry().ReplicationRequest(id)
	if !ok {
		return false
	}
	payload, err := json.Marshal(rep)
	if err != nil {
		return false
	}
	var wg sync.WaitGroup
	for shard := 0; shard < rt.opts.Shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			status, _, ferr := rt.forwardOnce(ctx, shard, "/v1/compile", reqID, payload)
			if ferr != nil || status != http.StatusOK {
				rt.cForwardFails.Inc()
				rt.noteFailure(shard)
				return
			}
			rt.noteSuccess(shard)
		}(shard)
	}
	wg.Wait()
	rt.cReplications.Inc()
	return true
}

// healUnknown inspects a shard answer for the 404 unknown_kernel
// signature over a compiled id — the mark of a shard that restarted
// and lost its in-memory registry — re-replicates every compiled
// kernel the failed sub-request named, and reports whether the caller
// should retry its dispatch.
func (rt *Router) healUnknown(ctx context.Context, reqID string, status int, body []byte, kernels ...string) bool {
	if status != http.StatusNotFound {
		return false
	}
	var eb serve.ErrorBody
	if json.Unmarshal(body, &eb) != nil || eb.Code != kernelreg.CodeUnknownKernel {
		return false
	}
	healed := false
	for _, k := range kernels {
		if kernelreg.IsCompiledID(k) && rt.replicate(ctx, reqID, k) {
			healed = true
		}
	}
	return healed
}

// subSweep is one shard's share of a sweep: the original request with
// the kernel axis cut down to the groups placed on that shard,
// preserving their original order. All other axes ride along verbatim,
// so each shard expands its sub-grid with the same inner-axis order as
// the single-node grid.
func subSweep(req serve.SweepRequest, kernels []string) serve.SweepRequest {
	req.Kernels = kernels
	return req
}

func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	tr, reqID := rt.begin(w, r, "/v1/sweep")
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody(fmt.Errorf("reading request body: %w", err)))
		rt.finish(tr, http.StatusBadRequest)
		return
	}
	var req serve.SweepRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// The local decode produces the single-node error bytes.
		status, body := rt.serveLocalBytes(r, "/v1/sweep", raw)
		writeJSON(w, status, body)
		rt.finish(tr, status)
		return
	}
	groups, total, err := serve.SweepGroups(req, rt.opts.Local)
	if err != nil {
		status, body := rt.serveLocalBytes(r, "/v1/sweep", raw)
		writeJSON(w, status, body)
		rt.finish(tr, status)
		return
	}

	// Place each group on its home shard; preserve group order within a
	// shard so each sub-response comes back in (a subsequence of) grid
	// order.
	type shardPlan struct {
		kernels []string
		groups  []int // original group indexes, ascending
	}
	plans := map[int]*shardPlan{}
	planOrder := []int{} // shards in order of their first (lowest) group
	homes := make([]int, len(groups))
	for gi, g := range groups {
		home := rt.ring.order(GroupKey(g.Kernel, g.N))[0]
		homes[gi] = home
		p := plans[home]
		if p == nil {
			p = &shardPlan{}
			plans[home] = p
			planOrder = append(planOrder, home)
		}
		p.kernels = append(p.kernels, g.Kernel)
		p.groups = append(p.groups, gi)
	}

	// Dispatch sub-sweeps concurrently; each walks its own failover
	// order independently (a dead shard's share re-dispatches to a live
	// peer without disturbing the others).
	root := tr.Start("route")
	type subResult struct {
		status int
		body   []byte
		local  bool
	}
	results := make(map[int]*subResult, len(plans))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, home := range planOrder {
		plan := plans[home]
		wg.Add(1)
		go func(home int, plan *shardPlan) {
			defer wg.Done()
			payload, err := json.Marshal(subSweep(req, plan.kernels))
			res := &subResult{}
			if err == nil {
				groupKey := GroupKey(groups[plan.groups[0]].Kernel, groups[plan.groups[0]].N)
				var derr error
				res.status, res.body, derr = rt.dispatch(r.Context(), tr, root, groupKey, "/v1/sweep", reqID, payload)
				if derr == nil && rt.healUnknown(r.Context(), reqID, res.status, res.body, plan.kernels...) {
					res.status, res.body, derr = rt.dispatch(r.Context(), tr, root, groupKey, "/v1/sweep", reqID, payload)
				}
				if derr != nil {
					rt.cLocalFallbacks.Inc()
					tr.Count("cluster.local_fallbacks", 1)
					res.status, res.body = rt.serveLocalBytes(r, "/v1/sweep", payload)
					res.local = true
				}
			} else {
				res.status, res.body = http.StatusInternalServerError, errorBody(err)
			}
			mu.Lock()
			results[home] = res
			mu.Unlock()
		}(home, plan)
	}
	wg.Wait()
	root.End()

	// The lowest-index-error contract across shards: if any sub-sweep
	// failed, relay the failure of the group with the lowest original
	// grid index (kernels are the outermost axis, so group order is
	// grid order).
	for _, home := range planOrder {
		if res := results[home]; res.status != http.StatusOK {
			writeJSON(w, res.status, res.body)
			rt.finish(tr, res.status)
			return
		}
	}

	// Merge: per-shard cursors walking the original group order. Each
	// group expands to the same number of points (identical inner
	// axes), so group gi's points are the next ppg entries of its
	// shard's sub-response.
	type cursor struct {
		points []json.RawMessage
		next   int
	}
	cursors := make(map[int]*cursor, len(results))
	ppg := 0
	for home, res := range results {
		var sr serve.SweepResult
		if err := json.Unmarshal(res.body, &sr); err != nil {
			writeJSON(w, http.StatusBadGateway, errorBody(fmt.Errorf("cluster: shard %d returned an unparseable sweep body: %w", home, err)))
			rt.finish(tr, http.StatusBadGateway)
			return
		}
		want := total / len(groups) * len(plans[home].kernels)
		if sr.Count != want || len(sr.Points) != want {
			writeJSON(w, http.StatusBadGateway, errorBody(fmt.Errorf("cluster: shard %d returned %d points, want %d", home, len(sr.Points), want)))
			rt.finish(tr, http.StatusBadGateway)
			return
		}
		cursors[home] = &cursor{points: sr.Points}
		ppg = total / len(groups)
	}
	merged := make([]json.RawMessage, 0, total)
	for gi := range groups {
		c := cursors[homes[gi]]
		merged = append(merged, c.points[c.next:c.next+ppg]...)
		c.next += ppg
	}
	body, err := json.Marshal(&serve.SweepResult{Count: total, Points: merged})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody(err))
		rt.finish(tr, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, body)
	rt.finish(tr, http.StatusOK)
}

// --- introspection ---

// shardHealth is one row of the router's /healthz shard table.
type shardHealth struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	PID   int    `json:"pid"`
	State string `json:"state"`
}

// handleHealthz reports the cluster view: "ok" when every shard is up,
// "degraded" otherwise — with "serving" always true, because the
// router keeps answering through failover and the embedded engine. The
// per-shard PID lets a chaos harness pick a victim.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	shards := make([]shardHealth, rt.opts.Shards)
	status := "ok"
	for i := range shards {
		st := rt.state(i)
		if st != stateUp {
			status = "degraded"
		}
		pid := -1
		if rt.opts.PIDOf != nil {
			pid = rt.opts.PIDOf(i)
		}
		shards[i] = shardHealth{ID: i, Addr: rt.opts.AddrOf(i), PID: pid, State: st.String()}
	}
	body, err := json.Marshal(struct {
		Status  string        `json:"status"`
		Serving bool          `json:"serving"`
		Shards  []shardHealth `json:"shards"`
	}{Status: status, Serving: true, Shards: shards})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody(err))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleTrace serves the router's own trace ring: ?id= for one span
// tree, otherwise newest-first summaries (?n=, default 32).
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if id := r.URL.Query().Get("id"); id != "" {
		t := rt.tring.Get(id)
		if t == nil {
			writeJSON(w, http.StatusNotFound, errorBody(fmt.Errorf("no trace %q in the ring", id)))
			return
		}
		body, err := json.MarshalIndent(t.Snapshot(), "", "  ")
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody(err))
			return
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	type summary struct {
		ID     string `json:"id"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		DurUS  int64  `json:"dur_us"`
		Spans  int    `json:"spans"`
	}
	list := rt.tring.Recent(n)
	summaries := make([]summary, 0, len(list))
	for _, t := range list {
		o := t.Snapshot()
		summaries = append(summaries, summary{ID: o.ID, Route: o.Route, Status: o.Status, DurUS: o.DurUS, Spans: len(o.Spans)})
	}
	body, err := json.MarshalIndent(summaries, "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody(err))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func errorBody(err error) []byte {
	b, _ := json.Marshal(serve.ErrorBody{Error: err.Error()})
	return b
}
