package cluster

import (
	"reflect"
	"testing"

	"repro/internal/loops"
)

// TestRingOrderDeterministicAndComplete pins the placement contract:
// order() lists every shard exactly once, identically across ring
// rebuilds, and group keys spread across shards rather than piling
// onto one.
func TestRingOrderDeterministicAndComplete(t *testing.T) {
	const shards = 3
	r1 := newRing(shards, 0)
	r2 := newRing(shards, 0)
	used := map[int]bool{}
	for _, k := range loops.PaperSet() {
		key := GroupKey(k.Key, k.DefaultN)
		o1, o2 := r1.order(key), r2.order(key)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("%s: order not deterministic: %v vs %v", key, o1, o2)
		}
		if len(o1) != shards {
			t.Fatalf("%s: order %v does not cover all %d shards", key, o1, shards)
		}
		seen := map[int]bool{}
		for _, s := range o1 {
			if s < 0 || s >= shards || seen[s] {
				t.Fatalf("%s: order %v has out-of-range or duplicate shards", key, o1)
			}
			seen[s] = true
		}
		used[o1[0]] = true
	}
	if len(used) < 2 {
		t.Errorf("the paper set's home shards all collapsed onto %v — virtual nodes are not spreading", used)
	}
}

// TestRingOrderStableUnderKeyChange verifies that two distinct group
// keys do not share preference order wholesale (the walk starts at the
// key's own position).
func TestRingOrderStableUnderKeyChange(t *testing.T) {
	r := newRing(5, 0)
	orders := map[string][]int{}
	for _, k := range loops.PaperSet() {
		orders[k.Key] = r.order(GroupKey(k.Key, k.DefaultN))
	}
	distinct := map[string]bool{}
	for _, o := range orders {
		distinct[orderSig(o)] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d group keys share one preference order — hashing is degenerate", len(orders))
	}
}

func orderSig(o []int) string {
	b := make([]byte, len(o))
	for i, v := range o {
		b[i] = byte('0' + v)
	}
	return string(b)
}
