package kernelreg

// kernelreg_test.go — the registry contract behind POST /v1/compile:
// content addressing is a pure function of the program (stable across
// registries and recompiles), the convert opt-in gates SA-violating
// source, pathological inputs land in the structured rejection table,
// and the two boundedness mechanisms (LRU capacity, per-tenant quota)
// evict and reject exactly as documented.

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/obs"
)

// src builds a tiny SA-clean program whose content varies with coef,
// so tests can mint distinct ids on demand.
func src(name string, coef int) string {
	return fmt.Sprintf(`PROGRAM %s
  ARRAY A(n+1) OUTPUT
  ARRAY B(n+1) INPUT
  DO i = 1, n
    A(i) = %d*B(i)
  END DO
END
`, name, coef)
}

// sampleSrc renders a built-in sample in the canonical source syntax.
func sampleSrc(t *testing.T, name string) string {
	t.Helper()
	for _, p := range ir.Samples() {
		if p.Name == name {
			return p.String() + "END\n"
		}
	}
	t.Fatalf("no sample %q", name)
	return ""
}

func TestIDStableAcrossRegistries(t *testing.T) {
	source := sampleSrc(t, "matched")
	reg1 := New(Limits{}, obs.NewRegistry())
	reg2 := New(Limits{}, obs.NewRegistry())
	r1, err := reg1.Compile(CompileRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := reg2.Compile(CompileRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kernel != r2.Kernel {
		t.Fatalf("id differs across registries: %q vs %q", r1.Kernel, r2.Kernel)
	}
	if !IsCompiledID(r1.Kernel) {
		t.Fatalf("id %q lacks the %q prefix", r1.Kernel, IDPrefix)
	}
	if want := IDOf(Canonicalize(mustParse(t, source))); r1.Kernel != want {
		t.Fatalf("id %q is not the content address %q", r1.Kernel, want)
	}
}

func mustParse(t *testing.T, source string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(source)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecompileIsIdempotentHit(t *testing.T) {
	mreg := obs.NewRegistry()
	reg := New(Limits{}, mreg)
	source := sampleSrc(t, "hydro")
	r1, err := reg.Compile(CompileRequest{Source: source, DefaultN: 48})
	if err != nil {
		t.Fatal(err)
	}
	// The second compile asks for a different default_n: first wins.
	r2, err := reg.Compile(CompileRequest{Source: source, DefaultN: 96})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kernel != r2.Kernel || r2.DefaultN != 48 {
		t.Fatalf("recompile: id %q->%q default_n %d (want first-wins 48)", r1.Kernel, r2.Kernel, r2.DefaultN)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d entries after a recompile, want 1", reg.Len())
	}
	snap := mreg.Snapshot()
	if snap.Counters[MetricCompileHits] != 1 {
		t.Fatalf("%s = %d, want 1", MetricCompileHits, snap.Counters[MetricCompileHits])
	}
}

func TestConvertOptIn(t *testing.T) {
	reg := New(Limits{}, obs.NewRegistry())
	source := sampleSrc(t, "inplace")

	_, err := reg.Compile(CompileRequest{Source: source})
	var ke *Error
	if !errors.As(err, &ke) || ke.Code != CodeSAViolations || ke.Status != 422 {
		t.Fatalf("violating source without convert: %v, want 422 %s", err, CodeSAViolations)
	}
	if len(ke.Diagnostics) == 0 {
		t.Fatal("sa_violations error carries no diagnostics")
	}

	resp, err := reg.Compile(CompileRequest{Source: source, Convert: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Converted || len(resp.Rewrites) == 0 || len(resp.Diagnostics) == 0 {
		t.Fatalf("convert path: converted=%v rewrites=%d diagnostics=%d",
			resp.Converted, len(resp.Rewrites), len(resp.Diagnostics))
	}
	if !strings.HasSuffix(resp.Name, "_sa") {
		t.Fatalf("converted program kept name %q, want _sa suffix", resp.Name)
	}
}

// TestConvertFlagNoOpOnCleanSource pins the content-address invariant:
// convert applies only when violations exist, so a clean program hashes
// to one id with or without the flag.
func TestConvertFlagNoOpOnCleanSource(t *testing.T) {
	reg := New(Limits{}, obs.NewRegistry())
	source := sampleSrc(t, "cyclic")
	plain, err := reg.Compile(CompileRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	flagged, err := reg.Compile(CompileRequest{Source: source, Convert: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Kernel != flagged.Kernel || flagged.Converted {
		t.Fatalf("clean source with convert: id %q vs %q, converted=%v",
			plain.Kernel, flagged.Kernel, flagged.Converted)
	}
}

// TestRejectionTable drives every structured 4xx the compile pipeline
// can produce and checks status + stable code.
func TestRejectionTable(t *testing.T) {
	deep := "PROGRAM deep\n  ARRAY A(n+1) OUTPUT\n  ARRAY B(n+1) INPUT\n" +
		"  DO i = 1, n\n    DO j = 1, n\n      A(i) = B(j)\n    END DO\n  END DO\nEND\n"
	twoStmts := "PROGRAM two\n  ARRAY A(n+1) OUTPUT\n  ARRAY C(n+1) OUTPUT\n  ARRAY B(n+1) INPUT\n" +
		"  DO i = 1, n\n    A(i) = B(i)\n    C(i) = 2*B(i)\n  END DO\nEND\n"
	cases := []struct {
		name   string
		lim    Limits
		req    CompileRequest
		status int
		code   string
	}{
		{"source_too_large", Limits{MaxSourceBytes: 64},
			CompileRequest{Source: src("big", 1) + strings.Repeat("# pad\n", 64)}, 400, CodeSourceTooLarge},
		{"parse_error", Limits{},
			CompileRequest{Source: "PROGRAM broken\n  NOT A STATEMENT\nEND\n"}, 400, CodeParseError},
		{"program_too_large_stmts", Limits{MaxStatements: 1},
			CompileRequest{Source: twoStmts}, 400, CodeProgramTooBig},
		{"program_too_large_depth", Limits{MaxLoopDepth: 1},
			CompileRequest{Source: deep}, 400, CodeProgramTooBig},
		{"sa_violations", Limits{},
			CompileRequest{Source: sampleSrc(t, "gaussseidel")}, 422, CodeSAViolations},
		{"too_expensive", Limits{MaxOps: 1},
			CompileRequest{Source: src("pricey", 1)}, 400, CodeTooExpensive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := New(tc.lim, obs.NewRegistry())
			_, err := reg.Compile(tc.req)
			var ke *Error
			if !errors.As(err, &ke) {
				t.Fatalf("got %v, want *kernelreg.Error", err)
			}
			if ke.Status != tc.status || ke.Code != tc.code {
				t.Fatalf("got %d %s (%s), want %d %s", ke.Status, ke.Code, ke.Msg, tc.status, tc.code)
			}
		})
	}
}

func TestResolveUnknownCompiledID(t *testing.T) {
	reg := New(Limits{}, obs.NewRegistry())
	_, err := reg.Resolve("u:deadbeef")
	var ke *Error
	if !errors.As(err, &ke) || ke.Status != 404 || ke.Code != CodeUnknownKernel {
		t.Fatalf("unknown id: %v, want 404 %s", err, CodeUnknownKernel)
	}
	// Built-in keys pass straight through to the loops menu.
	if _, err := reg.Resolve("k1"); err != nil {
		t.Fatalf("built-in k1: %v", err)
	}
}

func TestEvictionUnderCapacity(t *testing.T) {
	mreg := obs.NewRegistry()
	reg := New(Limits{Capacity: 2}, mreg)
	ids := make([]string, 3)
	for i := range ids {
		resp, err := reg.Compile(CompileRequest{Source: src("p", i+2)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = resp.Kernel
	}
	if reg.Len() != 2 {
		t.Fatalf("registry holds %d entries, want capacity 2", reg.Len())
	}
	if _, err := reg.Resolve(ids[0]); err == nil {
		t.Fatalf("oldest id %q survived eviction", ids[0])
	}
	for _, id := range ids[1:] {
		if _, err := reg.Resolve(id); err != nil {
			t.Fatalf("id %q evicted, want resident: %v", id, err)
		}
	}
	if got := mreg.Snapshot().Counters[MetricEvictions]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricEvictions, got)
	}
}

func TestTenantQuota(t *testing.T) {
	mreg := obs.NewRegistry()
	reg := New(Limits{TenantQuota: 1}, mreg)
	first, err := reg.Compile(CompileRequest{Source: src("q", 2), Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg.Compile(CompileRequest{Source: src("q", 3), Tenant: "acme"})
	var ke *Error
	if !errors.As(err, &ke) || ke.Status != 429 || ke.Code != CodeTenantQuota {
		t.Fatalf("over-quota compile: %v, want 429 %s", err, CodeTenantQuota)
	}
	// Idempotent recompile of a live kernel is a hit, not a quota charge.
	again, err := reg.Compile(CompileRequest{Source: src("q", 2), Tenant: "acme"})
	if err != nil {
		t.Fatalf("recompile of live kernel rejected: %v", err)
	}
	if again.Kernel != first.Kernel {
		t.Fatalf("recompile changed id: %q vs %q", again.Kernel, first.Kernel)
	}
	// A different tenant still has room.
	if _, err := reg.Compile(CompileRequest{Source: src("q", 4), Tenant: "other"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if got := mreg.Snapshot().Counters[MetricQuotaRejects]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricQuotaRejects, got)
	}
}

func TestListNewestFirst(t *testing.T) {
	reg := New(Limits{}, obs.NewRegistry())
	var ids []string
	for i := 0; i < 3; i++ {
		resp, err := reg.Compile(CompileRequest{Source: src("l", i+2)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.Kernel)
		time.Sleep(2 * time.Millisecond) // distinct CreatedAt stamps
	}
	infos := reg.List()
	if len(infos) != 3 {
		t.Fatalf("List returned %d entries, want 3", len(infos))
	}
	for i, info := range infos {
		if want := ids[len(ids)-1-i]; info.ID != want {
			t.Fatalf("List[%d] = %s, want newest-first %s", i, info.ID, want)
		}
		if info.Arity == 0 || info.DefaultN == 0 || info.MaxN == 0 {
			t.Fatalf("List[%d] missing metadata: %+v", i, info)
		}
	}
}

func TestReplicationRequestRoundTrip(t *testing.T) {
	reg := New(Limits{}, obs.NewRegistry())
	resp, err := reg.Compile(CompileRequest{Source: sampleSrc(t, "inplace"), Convert: true, DefaultN: 40, Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reg.ReplicationRequest(resp.Kernel)
	if !ok {
		t.Fatal("no replication request for a live kernel")
	}
	if rep.Convert {
		t.Fatal("replication request sets convert: the stored source is already SA-clean")
	}
	other := New(Limits{}, obs.NewRegistry())
	got, err := other.Compile(rep)
	if err != nil {
		t.Fatalf("replication compile: %v", err)
	}
	if got.Kernel != resp.Kernel || got.DefaultN != resp.DefaultN {
		t.Fatalf("replication drifted: id %q->%q default_n %d->%d",
			resp.Kernel, got.Kernel, resp.DefaultN, got.DefaultN)
	}
}

func TestCompileDeadline(t *testing.T) {
	// A deadline so tight even a tiny program cannot finish: the
	// pipeline must answer 400 compile_deadline, not hang.
	reg := New(Limits{CompileDeadline: time.Nanosecond}, obs.NewRegistry())
	_, err := reg.Compile(CompileRequest{Source: src("slow", 2)})
	var ke *Error
	if !errors.As(err, &ke) || ke.Code != CodeDeadline {
		t.Fatalf("got %v, want %s", err, CodeDeadline)
	}
}
