// cost.go — the static resource model behind compile admission. Loop
// bounds in the IR are pure affine expressions of n and enclosing loop
// variables (the parser cannot even spell an indirect bound), so trip
// counts — and from them an executed-operation ceiling and a peak
// array footprint — are computable by interval evaluation without
// running the program. The model is deliberately an over-approximation:
// a kernel admitted at size n is guaranteed under budget; a rejected
// one might have squeaked by, which is the safe direction for a
// service executing strangers' loop nests.
package kernelreg

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// iv is a closed integer interval.
type iv struct{ lo, hi int64 }

// evalRange evaluates an affine expression over interval bindings.
func evalRange(e ir.Expr, env map[string]iv) (iv, error) {
	if !e.IsAffine() {
		return iv{}, fmt.Errorf("non-affine loop bound")
	}
	out := iv{lo: int64(e.Const), hi: int64(e.Const)}
	for v, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		b, ok := env[v]
		if !ok {
			return iv{}, fmt.Errorf("unbound variable %q in loop bound", v)
		}
		lo, hi := int64(c)*b.lo, int64(c)*b.hi
		if lo > hi {
			lo, hi = hi, lo
		}
		out.lo += lo
		out.hi += hi
	}
	return out, nil
}

// satMul multiplies with saturation at a ceiling far below overflow.
func satMul(a, b int64) int64 {
	const ceil = math.MaxInt64 / 4
	if a <= 0 || b <= 0 {
		return 0
	}
	if a > ceil/b {
		return ceil
	}
	return a * b
}

// opsAt returns an upper bound on RHS term evaluations executed at
// problem size n. Each assignment costs 1 + len(terms), scaled by the
// worst-case trip count of every enclosing loop.
func opsAt(stmts []ir.Stmt, n int) (int64, error) {
	env := map[string]iv{"n": {int64(n), int64(n)}}
	return opsWalk(stmts, env, 1)
}

func opsWalk(stmts []ir.Stmt, env map[string]iv, trips int64) (int64, error) {
	var total int64
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			total += satMul(trips, int64(1+len(st.RHS.Terms)))
		case *ir.Loop:
			lo, err := evalRange(st.Lo, env)
			if err != nil {
				return 0, err
			}
			hi, err := evalRange(st.Hi, env)
			if err != nil {
				return 0, err
			}
			var t int64
			switch {
			case st.Step > 0:
				t = (hi.hi-lo.lo)/int64(st.Step) + 1
			case st.Step < 0:
				t = (lo.hi-hi.lo)/int64(-st.Step) + 1
			default:
				return 0, fmt.Errorf("loop %s has zero step", st.Var)
			}
			if t < 0 {
				t = 0
			}
			span := iv{lo: min64(lo.lo, hi.lo), hi: max64(lo.hi, hi.hi)}
			saved, had := env[st.Var]
			env[st.Var] = span
			sub, err := opsWalk(st.Body, env, satMul(trips, t))
			if had {
				env[st.Var] = saved
			} else {
				delete(env, st.Var)
			}
			if err != nil {
				return 0, err
			}
			total += sub
		}
		if total < 0 || total > math.MaxInt64/4 {
			total = math.MaxInt64 / 4
		}
	}
	return total, nil
}

// bytesAt returns the total array footprint in bytes at size n
// (float64 elements, degenerate extents clamped to one element, the
// same way the kernel compiler sizes them).
func bytesAt(p *ir.Program, n int) int64 {
	var total int64
	for _, a := range p.Arrays {
		elems := int64(1)
		for _, d := range a.Dims {
			sz := int64(d.Size(n))
			if sz < 1 {
				sz = 1
			}
			elems = satMul(elems, sz)
		}
		total += satMul(elems, 8)
		if total < 0 || total > math.MaxInt64/4 {
			return math.MaxInt64 / 4
		}
	}
	return total
}

// underBudget reports whether the program fits the ops and bytes
// budgets at size n.
func (l Limits) underBudget(p *ir.Program, n int) (bool, error) {
	ops, err := opsAt(p.Body, n)
	if err != nil {
		return false, err
	}
	return ops <= l.MaxOps && bytesAt(p, n) <= l.MaxArrayBytes, nil
}

// deriveMaxN finds the largest admitted problem size: the biggest n in
// [1, MaxKernelN] whose estimated cost fits the budgets, located by
// binary search (the invariant "lo fits" is maintained directly, so
// the result is under budget even if cost is not monotone in n).
func (l Limits) deriveMaxN(p *ir.Program) (int, error) {
	ok, err := l.underBudget(p, 1)
	if err != nil {
		return 0, errf(400, CodeTooExpensive, "kernelreg: %v", err)
	}
	if !ok {
		return 0, errf(400, CodeTooExpensive,
			"kernelreg: program exceeds the ops/bytes budget even at n=1")
	}
	lo, hi := 1, l.MaxKernelN
	if fits, _ := l.underBudget(p, hi); fits {
		return hi, nil
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if fits, _ := l.underBudget(p, mid); fits {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
