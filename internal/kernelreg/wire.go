// wire.go — the JSON wire contract of the compile subsystem, shared
// between POST /v1/compile (internal/serve), the router's replication
// path (internal/cluster), and cmd/saconv's -json mode, so every
// surface that talks about a compiled kernel speaks one encoding.
package kernelreg

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/ir"
)

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	// Source is Fortran-flavored loop-nest text (the internal/ir
	// grammar: PROGRAM / ARRAY / DO / linear assignments / END).
	Source string `json:"source"`
	// Convert opts into the §5 ordinary-loop→SA conversion when the
	// source carries single-assignment violations. Clean sources
	// compile to the same id with or without it.
	Convert bool `json:"convert,omitempty"`
	// DefaultN is the problem size used when a classify/sweep request
	// omits n. First registration of an id wins; 0 picks a default.
	DefaultN int `json:"default_n,omitempty"`
	// Tenant attributes the kernel for quota accounting. Empty is the
	// anonymous tenant (itself quota-bounded).
	Tenant string `json:"tenant,omitempty"`
}

// Diag is one SA diagnostic on the wire.
type Diag struct {
	Kind     string `json:"kind"`
	Severity string `json:"severity"`
	Array    string `json:"array"`
	Stmt     string `json:"stmt,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// RewriteNote is one conversion rewrite on the wire.
type RewriteNote struct {
	Kind     string `json:"kind"`
	Array    string `json:"array"`
	NewArray string `json:"new_array"`
	Detail   string `json:"detail,omitempty"`
}

// CompileResponse is the body of a successful compile. Every field is
// a deterministic function of (source, convert, first-registered
// default_n), so repeated compiles of one program return byte-identical
// bodies.
type CompileResponse struct {
	// Kernel is the content-addressed id: "u:" + hex SHA-256 of the
	// canonical IR rendering. It is accepted anywhere a built-in key
	// (k1, k6, ...) is.
	Kernel      string        `json:"kernel"`
	Name        string        `json:"name"`
	Converted   bool          `json:"converted"`
	DefaultN    int           `json:"default_n"`
	MaxN        int           `json:"max_n"`
	Arity       int           `json:"arity"`
	Outputs     []string      `json:"outputs"`
	Diagnostics []Diag        `json:"diagnostics"`
	Rewrites    []RewriteNote `json:"rewrites,omitempty"`
	ExtraElems  int           `json:"extra_elems,omitempty"`
	Notes       []string      `json:"notes,omitempty"`
}

// Structured 4xx codes. The serve layer copies Error.Code into the
// response body verbatim; clients branch on these, not on messages.
const (
	CodeParseError     = "parse_error"
	CodeSourceTooLarge = "source_too_large"
	CodeProgramTooBig  = "program_too_large"
	CodeSAViolations   = "sa_violations"
	CodeConvertFailed  = "convert_failed"
	CodeNotCanonical   = "not_canonical"
	CodeTooExpensive   = "too_expensive"
	CodeCompileFailed  = "compile_failed"
	CodeVerifyFailed   = "verify_failed"
	CodeDeadline       = "compile_deadline"
	CodeTenantQuota    = "tenant_quota"
	CodeUnknownKernel  = "unknown_kernel"
)

// Error is a structured compile/lookup failure: an HTTP status, a
// stable machine-readable code, and (for SA rejections) the
// diagnostics that caused it.
type Error struct {
	Status      int    // HTTP status (always 4xx)
	Code        string // one of the Code* constants
	Msg         string
	Diagnostics []Diag
}

func (e *Error) Error() string { return e.Msg }

func errf(status int, code, format string, args ...any) *Error {
	return &Error{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// WireDiags converts checker diagnostics to their wire form,
// preserving checker order.
func WireDiags(diags []ir.Diagnostic) []Diag {
	out := make([]Diag, 0, len(diags))
	for _, d := range diags {
		out = append(out, Diag{
			Kind:     d.Kind.String(),
			Severity: d.Severity.String(),
			Array:    d.Array,
			Stmt:     d.Stmt,
			Detail:   d.Detail,
		})
	}
	return out
}

func wireRewrites(rs []convert.Rewrite) []RewriteNote {
	out := make([]RewriteNote, 0, len(rs))
	for _, r := range rs {
		out = append(out, RewriteNote{
			Kind:     r.Kind.String(),
			Array:    r.Array,
			NewArray: r.NewArray,
			Detail:   r.Detail,
		})
	}
	return out
}
