// Package kernelreg is the kernel registry behind POST /v1/compile:
// the subsystem that turns the daemon's fixed 24-kernel menu into an
// open platform. A tenant submits Fortran-flavored loop-nest source;
// the registry parses it (internal/ir), reports the §5 single-
// assignment diagnostics, optionally applies the ordinary-loop→SA
// conversion (internal/convert), derives hard resource ceilings from
// the affine structure, verifies the compiled kernel on the reference
// engine at sentinel sizes, and registers it under a content-addressed
// id — "u:" + hex SHA-256 of the canonical IR rendering — that the
// classify/sweep paths resolve exactly like a built-in key.
//
// Content addressing is what makes the open platform safe to
// distribute: the id is a pure function of the program, so two tenants
// submitting the same loop nest share one kernel, one capture stream,
// and one disk-store entry, and a router can replicate a compile to
// every shard knowing all of them derive the same id. The registry
// enforces that the canonical rendering is a parse/render fixed point
// before hashing, so the id space cannot be split by programs that
// re-render differently.
//
// The registry is bounded two ways: total capacity (LRU eviction — a
// compiled kernel is cheap to re-register from source) and a per-tenant
// live-kernel quota, so one tenant cannot evict the world.
package kernelreg

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/convert"
	"repro/internal/ir"
	"repro/internal/loops"
	"repro/internal/obs"
)

// Metric names for the registry family. Counters except where noted.
const (
	MetricCompiles      = "kernelreg.compiles"       // compile attempts
	MetricCompileHits   = "kernelreg.compile_hits"   // recompiles of an already-registered id
	MetricCompileErrors = "kernelreg.compile_errors" // rejected compiles (4xx)
	MetricEvictions     = "kernelreg.evictions"      // LRU evictions under capacity pressure
	MetricQuotaRejects  = "kernelreg.quota_rejects"  // compiles rejected by the per-tenant quota
	MetricResolveMisses = "kernelreg.resolve_misses" // lookups of unknown compiled ids
	MetricEntries       = "kernelreg.entries"        // gauge: registered compiled kernels
)

// IDPrefix distinguishes compiled-kernel ids from built-in keys.
const IDPrefix = "u:"

// IsCompiledID reports whether key names a registry-resident kernel
// (as opposed to a built-in loops key).
func IsCompiledID(key string) bool { return strings.HasPrefix(key, IDPrefix) }

// IDOf returns the content address of a canonical source: "u:" + hex
// SHA-256 of the bytes.
func IDOf(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return IDPrefix + hex.EncodeToString(sum[:])
}

// Limits bounds what a compile may cost and what the registry may
// hold. The zero value of any field selects its default.
type Limits struct {
	MaxSourceBytes int   // request source ceiling (default 64 KiB)
	MaxStatements  int   // assignment statements after conversion (default 256)
	MaxLoopDepth   int   // loop-nest depth (default 8)
	MaxArrays      int   // declared arrays after conversion (default 64)
	MaxOps         int64 // estimated executed RHS terms at any admitted n (default 1<<22)
	MaxArrayBytes  int64 // total array footprint at any admitted n (default 128 MiB)
	MaxKernelN     int   // ceiling on the derived per-kernel MaxN (default 1<<16)

	CompileDeadline time.Duration // wall budget per compile (default 2s)

	Capacity    int // registry entries before LRU eviction (default 256)
	TenantQuota int // live kernels per tenant (default 64)
}

func (l Limits) withDefaults() Limits {
	if l.MaxSourceBytes <= 0 {
		l.MaxSourceBytes = 64 << 10
	}
	if l.MaxStatements <= 0 {
		l.MaxStatements = 256
	}
	if l.MaxLoopDepth <= 0 {
		l.MaxLoopDepth = 8
	}
	if l.MaxArrays <= 0 {
		l.MaxArrays = 64
	}
	if l.MaxOps <= 0 {
		l.MaxOps = 1 << 22
	}
	if l.MaxArrayBytes <= 0 {
		l.MaxArrayBytes = 128 << 20
	}
	if l.MaxKernelN <= 0 {
		l.MaxKernelN = 1 << 16
	}
	if l.CompileDeadline <= 0 {
		l.CompileDeadline = 2 * time.Second
	}
	if l.Capacity <= 0 {
		l.Capacity = 256
	}
	if l.TenantQuota <= 0 {
		l.TenantQuota = 64
	}
	return l
}

// Info is the listable metadata of one registered kernel.
type Info struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	Arity     int       `json:"arity"`
	DefaultN  int       `json:"default_n"`
	MaxN      int       `json:"max_n"`
	Tenant    string    `json:"tenant,omitempty"`
	CreatedAt time.Time `json:"created_at"`
}

type entry struct {
	info   Info
	k      *loops.Kernel
	source string // canonical source (including trailing END), for replication
	el     *list.Element
}

// Registry is the bounded store of compiled kernels. Safe for
// concurrent use. The nil *Registry resolves built-in keys only.
type Registry struct {
	lim Limits

	compiles      *obs.Counter
	hits          *obs.Counter
	compileErrors *obs.Counter
	evictions     *obs.Counter
	quotaRejects  *obs.Counter
	resolveMisses *obs.Counter
	entriesGauge  *obs.Gauge

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are ids
	tenants map[string]int
}

// New creates a registry. reg may be nil (metrics become no-ops).
func New(lim Limits, reg *obs.Registry) *Registry {
	return &Registry{
		lim:           lim.withDefaults(),
		compiles:      reg.Counter(MetricCompiles),
		hits:          reg.Counter(MetricCompileHits),
		compileErrors: reg.Counter(MetricCompileErrors),
		evictions:     reg.Counter(MetricEvictions),
		quotaRejects:  reg.Counter(MetricQuotaRejects),
		resolveMisses: reg.Counter(MetricResolveMisses),
		entriesGauge:  reg.Gauge(MetricEntries),
		entries:       map[string]*entry{},
		lru:           list.New(),
		tenants:       map[string]int{},
	}
}

// Limits returns the effective (defaulted) limits.
func (r *Registry) Limits() Limits {
	if r == nil {
		return Limits{}.withDefaults()
	}
	return r.lim
}

// Compile runs the full pipeline — parse, SA diagnostics, optional
// conversion, canonicalization, resource admission, kernel compile,
// sentinel-size verification — and registers the result. Errors are
// *Error values carrying an HTTP status and a stable code. The whole
// pipeline runs under the compile deadline; a source that cannot be
// processed in time is rejected (the pipeline's pre-verification
// stages are all bounded by the static limits, so the deadline is a
// backstop, not the primary defense).
func (r *Registry) Compile(req CompileRequest) (*CompileResponse, error) {
	if r == nil {
		return nil, errf(503, "registry_disabled", "kernelreg: no registry configured")
	}
	r.compiles.Inc()
	resp, err := r.compileTimed(req)
	if err != nil {
		if ce, ok := err.(*Error); ok && ce.Code == CodeTenantQuota {
			r.quotaRejects.Inc()
		}
		r.compileErrors.Inc()
		return nil, err
	}
	return resp, nil
}

func (r *Registry) compileTimed(req CompileRequest) (*CompileResponse, error) {
	if len(req.Source) > r.lim.MaxSourceBytes {
		return nil, errf(400, CodeSourceTooLarge,
			"kernelreg: source is %d bytes; limit %d", len(req.Source), r.lim.MaxSourceBytes)
	}
	type outcome struct {
		resp *CompileResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: errf(422, CodeCompileFailed, "kernelreg: compile panicked: %v", p)}
			}
		}()
		resp, err := r.compileSource(req)
		ch <- outcome{resp: resp, err: err}
	}()
	timer := time.NewTimer(r.lim.CompileDeadline)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.resp, o.err
	case <-timer.C:
		return nil, errf(400, CodeDeadline,
			"kernelreg: compile exceeded the %s deadline", r.lim.CompileDeadline)
	}
}

func (r *Registry) compileSource(req CompileRequest) (*CompileResponse, error) {
	p, err := ir.Parse(req.Source)
	if err != nil {
		return nil, errf(400, CodeParseError, "kernelreg: %v", err)
	}
	if cerr := r.checkShape(p); cerr != nil {
		return nil, cerr
	}

	diags := p.CheckSA()
	final := p
	converted := false
	var conv *convert.Result
	if len(ir.Violations(diags)) > 0 {
		if !req.Convert {
			return nil, &Error{
				Status: 422, Code: CodeSAViolations,
				Msg:         fmt.Sprintf("kernelreg: program %s has %d single-assignment violations; resubmit with convert:true or rewrite", p.Name, len(ir.Violations(diags))),
				Diagnostics: WireDiags(diags),
			}
		}
		conv, err = convert.ToSA(p, r.defaultN(req.DefaultN, r.lim.MaxKernelN))
		if err != nil {
			return nil, errf(422, CodeConvertFailed, "kernelreg: %v", err)
		}
		final = conv.Program
		converted = true
		// Conversion introduces arrays; re-admit the grown program.
		if cerr := r.checkShape(final); cerr != nil {
			return nil, cerr
		}
	}

	// Canonical form: the rendering must be a parse/render fixed point,
	// or content addressing would assign one program several ids.
	canon := Canonicalize(final)
	back, err := ir.Parse(canon)
	if err != nil {
		return nil, errf(422, CodeNotCanonical,
			"kernelreg: canonical rendering does not reparse: %v", err)
	}
	if Canonicalize(back) != canon {
		return nil, errf(422, CodeNotCanonical,
			"kernelreg: rendering is not a parse/render fixed point")
	}

	maxN, merr := r.lim.deriveMaxN(back)
	if merr != nil {
		return nil, merr
	}
	id := IDOf(canon)
	dn := r.defaultN(req.DefaultN, maxN)

	k, err := back.Kernel(dn)
	if err != nil {
		return nil, errf(422, CodeCompileFailed, "kernelreg: %v", err)
	}
	k.Key = id
	k.MaxN = maxN
	if converted {
		k.Notes = "compiled from the affine loop IR (SA-converted)"
	}

	for _, vn := range verifySizes(dn, maxN) {
		if verr := runVerify(k, vn); verr != nil {
			return nil, errf(422, CodeVerifyFailed,
				"kernelreg: kernel fails the reference engine at n=%d: %v", vn, verr)
		}
	}

	e, rerr := r.register(k, canon, req.Tenant, dn, maxN)
	if rerr != nil {
		return nil, rerr
	}

	resp := &CompileResponse{
		Kernel:      e.info.ID,
		Name:        e.info.Name,
		Converted:   converted,
		DefaultN:    e.info.DefaultN, // first registration wins
		MaxN:        e.info.MaxN,
		Arity:       e.info.Arity,
		Outputs:     k.Outputs,
		Diagnostics: WireDiags(diags),
	}
	if conv != nil {
		resp.Rewrites = wireRewrites(conv.Rewrites)
		resp.ExtraElems = conv.ExtraElems
		resp.Notes = conv.Notes
	}
	return resp, nil
}

// Canonicalize renders a program in its canonical, content-addressable
// source form (the renderer's output plus the END terminator the
// parser requires).
func Canonicalize(p *ir.Program) string { return p.String() + "END\n" }

// defaultN resolves a requested default problem size against a kernel
// ceiling: 0 picks min(64, maxN); anything else clamps into [1, maxN].
func (r *Registry) defaultN(requested, maxN int) int {
	n := requested
	if n <= 0 {
		n = 64
	}
	if n > maxN {
		n = maxN
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (r *Registry) checkShape(p *ir.Program) *Error {
	if len(p.Arrays) > r.lim.MaxArrays {
		return errf(400, CodeProgramTooBig,
			"kernelreg: %d arrays declared; limit %d", len(p.Arrays), r.lim.MaxArrays)
	}
	stmts, depth := shape(p.Body, 0)
	if stmts > r.lim.MaxStatements {
		return errf(400, CodeProgramTooBig,
			"kernelreg: %d assignment statements; limit %d", stmts, r.lim.MaxStatements)
	}
	if depth > r.lim.MaxLoopDepth {
		return errf(400, CodeProgramTooBig,
			"kernelreg: loop nest depth %d; limit %d", depth, r.lim.MaxLoopDepth)
	}
	return nil
}

func shape(stmts []ir.Stmt, base int) (assigns, depth int) {
	depth = base
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			assigns++
		case *ir.Loop:
			a, d := shape(st.Body, base+1)
			assigns += a
			if d > depth {
				depth = d
			}
		}
	}
	return assigns, depth
}

// verifySizes picks the sentinel problem sizes a candidate must
// execute cleanly at: the smallest admitted sizes (where boundary
// mistakes live) and the default size callers will actually hit.
func verifySizes(defaultN, maxN int) []int {
	sizes := []int{1, 2, 3, defaultN}
	seen := map[int]bool{}
	out := sizes[:0]
	for _, n := range sizes {
		if n < 1 || n > maxN || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// runVerify executes the kernel on the strict reference engine,
// converting any panic (an out-of-bounds subscript the affine model
// could not see, e.g. through indirection) into an error.
func runVerify(k *loops.Kernel, n int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	_, err = loops.RunSeq(k, n)
	return err
}

// register installs a compiled kernel under the capacity and tenant
// bounds. Re-registering an existing id is an idempotent hit: it
// refreshes LRU position and is not charged against any quota.
func (r *Registry) register(k *loops.Kernel, canon, tenant string, defaultN, maxN int) (*entry, *Error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[k.Key]; ok {
		r.hits.Inc()
		r.lru.MoveToFront(e.el)
		return e, nil
	}
	if r.tenants[tenant] >= r.lim.TenantQuota {
		return nil, errf(429, CodeTenantQuota,
			"kernelreg: tenant %q holds %d kernels; quota %d", tenant, r.tenants[tenant], r.lim.TenantQuota)
	}
	for len(r.entries) >= r.lim.Capacity {
		r.evictOldestLocked()
	}
	e := &entry{
		info: Info{
			ID:        k.Key,
			Name:      k.Name,
			Arity:     len(k.Arrays(defaultN)),
			DefaultN:  defaultN,
			MaxN:      maxN,
			Tenant:    tenant,
			CreatedAt: time.Now().UTC(),
		},
		k:      k,
		source: canon,
	}
	e.el = r.lru.PushFront(k.Key)
	r.entries[k.Key] = e
	r.tenants[tenant]++
	r.entriesGauge.Set(int64(len(r.entries)))
	return e, nil
}

func (r *Registry) evictOldestLocked() {
	back := r.lru.Back()
	if back == nil {
		return
	}
	id := back.Value.(string)
	e := r.entries[id]
	r.lru.Remove(back)
	delete(r.entries, id)
	if e != nil {
		if n := r.tenants[e.info.Tenant] - 1; n > 0 {
			r.tenants[e.info.Tenant] = n
		} else {
			delete(r.tenants, e.info.Tenant)
		}
	}
	r.evictions.Inc()
	r.entriesGauge.Set(int64(len(r.entries)))
}

// Resolve maps any kernel key — built-in or compiled — to its kernel.
// Unknown compiled ids return an *Error with status 404 and code
// unknown_kernel; unknown built-in keys return loops.ByKey's error
// unchanged (so existing clients see identical bytes).
func (r *Registry) Resolve(key string) (*loops.Kernel, error) {
	if !IsCompiledID(key) {
		return loops.ByKey(key)
	}
	if r == nil {
		return nil, errf(404, CodeUnknownKernel, "unknown compiled kernel %q", key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[key]
	if !ok {
		r.resolveMisses.Inc()
		return nil, errf(404, CodeUnknownKernel, "unknown compiled kernel %q (compile it first via POST /v1/compile)", key)
	}
	r.lru.MoveToFront(e.el)
	return e.k, nil
}

// Lookup returns the entry metadata for a compiled id without
// touching LRU order.
func (r *Registry) Lookup(id string) (Info, bool) {
	if r == nil {
		return Info{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return Info{}, false
	}
	return e.info, true
}

// ReplicationRequest reconstructs the compile request that re-creates
// a registered kernel bit-for-bit on another node: the canonical
// source compiled without conversion (it is already SA-clean) at the
// registered default size.
func (r *Registry) ReplicationRequest(id string) (CompileRequest, bool) {
	if r == nil {
		return CompileRequest{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return CompileRequest{}, false
	}
	return CompileRequest{
		Source:   e.source,
		DefaultN: e.info.DefaultN,
		Tenant:   e.info.Tenant,
	}, true
}

// List returns the registered kernels, newest first (creation order,
// not LRU order, so listings are stable under read traffic).
func (r *Registry) List() []Info {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.After(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of registered kernels.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
