package cache

import (
	"math/rand"
	"testing"
)

// TestSlotModeMatchesKeyMode drives a Key-mode and a slot-mode cache
// with the same reference stream under every policy and requires
// identical outcomes and statistics: the counting simulator's slot path
// must evict in exactly the same order as the reference implementation.
func TestSlotModeMatchesKeyMode(t *testing.T) {
	const (
		nPages   = 40
		pageSize = 8
		capElems = 4 * pageSize // 4 frames
		steps    = 5000
	)
	for _, pol := range []Policy{LRU, FIFO, Clock, Random} {
		t.Run(pol.String(), func(t *testing.T) {
			km, err := New(capElems, pageSize, pol)
			if err != nil {
				t.Fatal(err)
			}
			sm, err := NewSlots(capElems, pageSize, pol, nPages)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(pol) + 1))
			page := make([]float64, pageSize)
			defined := make([]bool, pageSize)
			for i := range defined {
				defined[i] = i%3 != 0 // cells 0,3,6 undefined at snapshot
			}
			for s := 0; s < steps; s++ {
				p := rng.Intn(nPages)
				off := rng.Intn(pageSize)
				_, kOut := km.Lookup(Key{Page: p}, off)
				sOut := sm.LookupSlot(p, off)
				if kOut != sOut {
					t.Fatalf("step %d page %d off %d: key mode %v, slot mode %v", s, p, off, kOut, sOut)
				}
				if kOut != Hit {
					var def []bool
					if p%2 == 0 { // alternate partially filled pages
						def = defined
					}
					kDef := def
					if kDef != nil {
						kDef = append([]bool(nil), def...) // Key mode retains the slice
					}
					km.Insert(Key{Page: p}, append([]float64(nil), page...), kDef)
					sm.InsertSlot(p, def)
				}
			}
			if km.Stats() != sm.Stats() {
				t.Errorf("stats diverged:\nkey  %+v\nslot %+v", km.Stats(), sm.Stats())
			}
			kKeys, sKeys := km.Keys(), sm.Keys()
			if len(kKeys) != len(sKeys) {
				t.Fatalf("resident pages: key mode %d, slot mode %d", len(kKeys), len(sKeys))
			}
			for i := range kKeys {
				if kKeys[i].Page != sKeys[i].Page {
					t.Errorf("recency order diverged at %d: %v vs %v", i, kKeys, sKeys)
				}
			}
		})
	}
}

// TestReconfigureSlotsRestoresFreshState verifies that a reconfigured
// cache behaves exactly like a newly created one, including the Random
// policy's deterministic seed.
func TestReconfigureSlotsRestoresFreshState(t *testing.T) {
	for _, pol := range []Policy{LRU, Random} {
		used, err := NewSlots(64, 8, pol, 16)
		if err != nil {
			t.Fatal(err)
		}
		// Dirty it.
		for p := 0; p < 16; p++ {
			used.LookupSlot(p, 0)
			used.InsertSlot(p, nil)
		}
		if err := used.ReconfigureSlots(32, 4, pol, 24); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewSlots(32, 4, pol, 24)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for s := 0; s < 2000; s++ {
			p := rng.Intn(24)
			a := used.LookupSlot(p, rng.Intn(4))
			b := fresh.LookupSlot(p, 0)
			if a != b {
				t.Fatalf("%s: step %d: reconfigured %v, fresh %v", pol, s, a, b)
			}
			if a != Hit {
				used.InsertSlot(p, nil)
				fresh.InsertSlot(p, nil)
			}
		}
		if used.Stats() != fresh.Stats() {
			t.Errorf("%s: stats diverged: %+v vs %+v", pol, used.Stats(), fresh.Stats())
		}
	}
}

// TestSlotModeNoFrames pins the degenerate no-cache configuration:
// every lookup misses and inserts are no-ops, matching Key mode.
func TestSlotModeNoFrames(t *testing.T) {
	c, err := NewSlots(0, 32, LRU, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if out := c.LookupSlot(i, 0); out != Miss {
			t.Fatalf("lookup %d: %v, want Miss", i, out)
		}
		c.InsertSlot(i, nil)
	}
	st := c.Stats()
	if st.Misses != 5 || st.Inserts != 0 || c.Len() != 0 {
		t.Errorf("no-frame cache stats %+v len %d", st, c.Len())
	}
}
