package cache

import "fmt"

// Slot-indexed mode. The counting simulator (internal/sim) resolves
// every page to a dense global page id ("slot") at setup time, so the
// per-access map lookup of the Key-based API can be replaced by a
// single slice index. Slot mode is count-only: it tracks which pages
// are resident and which cells were defined at snapshot time — exactly
// what access classification needs — but not the snapshot values, which
// the simulator reads from its ground-truth storage anyway. Frames and
// their defined-bit buffers are recycled on eviction and across
// ReconfigureSlots calls, so a long parameter sweep reaches a
// zero-allocation steady state.
//
// Both modes share the replacement machinery (recency list, clock hand,
// random victim selection), so a slot-mode cache evicts in exactly the
// same order as a Key-mode cache observing the same reference stream.

// rngSeed is the xorshift64* seed used by the Random policy; fixed so
// runs are reproducible and ReconfigureSlots restores a fresh-cache
// state exactly.
const rngSeed = 0x9e3779b97f4a7c15

// NewSlots returns a count-only cache over a dense page-id space of
// nslots pages. Capacity semantics match New: capElems elements of
// pages of pageSize elements, so capElems/pageSize page frames.
func NewSlots(capElems, pageSize int, policy Policy, nslots int) (*Cache, error) {
	c, err := New(capElems, pageSize, policy)
	if err != nil {
		return nil, err
	}
	if nslots < 0 {
		return nil, fmt.Errorf("cache: negative slot count %d", nslots)
	}
	c.entries = nil // slot mode never uses the map index
	if c.maxPages > 0 && nslots > 0 {
		c.slots = newSlotIndex(nslots)
	}
	return c, nil
}

// ReconfigureSlots resets a slot-mode cache to a fresh-cache state
// under new parameters, retaining frame buffers for reuse. It is the
// sweep engine's per-point reset: after the call the cache behaves
// bit-for-bit like NewSlots(capElems, pageSize, policy, nslots).
func (c *Cache) ReconfigureSlots(capElems, pageSize int, policy Policy, nslots int) error {
	if capElems < 0 {
		return fmt.Errorf("cache: negative capacity %d", capElems)
	}
	if pageSize <= 0 {
		return fmt.Errorf("cache: page size must be positive, got %d", pageSize)
	}
	switch policy {
	case LRU, FIFO, Clock, Random:
	default:
		return fmt.Errorf("cache: unknown policy %d", int(policy))
	}
	if nslots < 0 {
		return fmt.Errorf("cache: negative slot count %d", nslots)
	}
	c.capElems = capElems
	c.pageSize = pageSize
	c.maxPages = capElems / pageSize
	c.policy = policy
	c.stats = Stats{}
	c.entries = nil
	c.head.next = c.tail
	c.tail.prev = c.head
	c.clockHand = nil
	c.rng = rngSeed
	c.used = 0
	c.freeFrames = c.freeFrames[:0]
	for i, e := range c.frames {
		e.prev, e.next = nil, nil
		e.defined = nil
		e.ref = false
		c.freeFrames = append(c.freeFrames, int32(i))
	}
	if c.maxPages == 0 || nslots == 0 {
		c.slots = nil
		return nil
	}
	if cap(c.slots) >= nslots {
		c.slots = c.slots[:nslots]
		for i := range c.slots {
			c.slots[i] = -1
		}
	} else {
		c.slots = newSlotIndex(nslots)
	}
	return nil
}

func newSlotIndex(nslots int) []int32 {
	s := make([]int32, nslots)
	for i := range s {
		s[i] = -1
	}
	return s
}

// LookupSlot probes the cache for cell off of the page with dense id
// slot. It is the count-only counterpart of Lookup: outcomes and
// statistics are identical, no snapshot value is returned.
func (c *Cache) LookupSlot(slot, off int) Outcome {
	if c.slots == nil {
		c.stats.Misses++
		return Miss
	}
	fi := c.slots[slot]
	if fi < 0 {
		c.stats.Misses++
		return Miss
	}
	e := c.frames[fi]
	if !e.definedAt(off) {
		c.stats.PartialMisses++
		return PartialMiss
	}
	c.touch(e)
	c.stats.Hits++
	return Hit
}

// InsertSlot caches the page with dense id slot. defined is the
// page's defined bitmap at snapshot time (nil when the caller does not
// model partial fills, meaning every cell is treated as defined); it is
// copied into a recycled buffer, so the caller may keep mutating it.
// Inserting a resident page refreshes its snapshot (the §4 re-fetch
// path). With no frames the call is a no-op.
func (c *Cache) InsertSlot(slot int, defined []bool) {
	if c.slots == nil {
		return
	}
	if fi := c.slots[slot]; fi >= 0 {
		e := c.frames[fi]
		e.snapshotDefined(defined)
		c.touch(e)
		c.stats.Refreshes++
		return
	}
	for c.used >= c.maxPages {
		c.evict()
	}
	e := c.takeFrame()
	e.slot = int32(slot)
	e.snapshotDefined(defined)
	e.ref = true
	c.slots[slot] = e.frame
	c.used++
	c.pushFront(e)
	c.stats.Inserts++
}

// takeFrame returns a recycled frame, or grows the frame pool.
func (c *Cache) takeFrame() *entry {
	if n := len(c.freeFrames); n > 0 {
		fi := c.freeFrames[n-1]
		c.freeFrames = c.freeFrames[:n-1]
		return c.frames[fi]
	}
	e := &entry{frame: int32(len(c.frames))}
	c.frames = append(c.frames, e)
	return e
}

// snapshotDefined records the defined bits of a page snapshot in the
// frame, collapsing fully defined pages to nil (the definedAt fast
// path) and reusing the frame's buffer otherwise.
func (e *entry) snapshotDefined(defined []bool) {
	if defined == nil {
		e.defined = nil
		return
	}
	all := true
	for _, d := range defined {
		if !d {
			all = false
			break
		}
	}
	if all {
		e.defined = nil
		return
	}
	e.defBuf = append(e.defBuf[:0], defined...)
	e.defined = e.defBuf
}
