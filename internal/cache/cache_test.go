package cache

import (
	"testing"
	"testing/quick"
)

func page(vals ...float64) []float64 { return vals }

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 32, LRU); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(256, 0, LRU); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := New(256, 32, Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFrameCount(t *testing.T) {
	// Paper: 256-element cache. ps 32 -> 8 frames, ps 64 -> 4 frames.
	cases := []struct{ capElems, ps, want int }{
		{256, 32, 8},
		{256, 64, 4},
		{256, 256, 1},
		{256, 512, 0}, // page too large: no frames
		{0, 32, 0},    // no cache
	}
	for _, cse := range cases {
		c, err := New(cse.capElems, cse.ps, LRU)
		if err != nil {
			t.Fatal(err)
		}
		if c.MaxPages() != cse.want {
			t.Errorf("cap=%d ps=%d frames=%d, want %d", cse.capElems, cse.ps, c.MaxPages(), cse.want)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c, _ := New(64, 2, LRU)
	k := Key{Array: 1, Page: 3}
	if _, out := c.Lookup(k, 0); out != Miss {
		t.Fatalf("first lookup = %v, want Miss", out)
	}
	c.Insert(k, page(1.5, 2.5), nil)
	v, out := c.Lookup(k, 1)
	if out != Hit || v != 2.5 {
		t.Errorf("lookup = (%v,%v), want (2.5,Hit)", v, out)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPartialMissAndRefresh(t *testing.T) {
	c, _ := New(64, 2, LRU)
	k := Key{Array: 0, Page: 0}
	c.Insert(k, page(7, 0), []bool{true, false})
	if v, out := c.Lookup(k, 0); out != Hit || v != 7 {
		t.Errorf("defined cell = (%v,%v)", v, out)
	}
	if _, out := c.Lookup(k, 1); out != PartialMiss {
		t.Errorf("undefined cell outcome = %v, want PartialMiss", out)
	}
	// Re-fetch delivers a fuller snapshot; same key refreshes in place.
	c.Insert(k, page(7, 8), nil)
	if v, out := c.Lookup(k, 1); out != Hit || v != 8 {
		t.Errorf("after refresh = (%v,%v)", v, out)
	}
	s := c.Stats()
	if s.PartialMisses != 1 || s.Refreshes != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (refresh must not duplicate)", c.Len())
	}
}

func TestMergeIsMonotone(t *testing.T) {
	c, _ := New(64, 4, LRU)
	k := Key{Array: 0, Page: 0}
	c.Insert(k, page(1, 2, 0, 0), []bool{true, true, false, false})
	// A stale snapshot (fewer defined cells, different junk in the
	// undefined slots) must never erase what the cache already holds.
	c.Merge(k, page(1, 99, 99, 0), []bool{true, false, false, false})
	if v, out := c.Lookup(k, 1); out != Hit || v != 2 {
		t.Errorf("stale merge clobbered defined cell: (%v,%v)", v, out)
	}
	// A fresher snapshot adds its newly defined cells.
	c.Merge(k, page(1, 2, 3, 0), []bool{true, true, true, false})
	if v, out := c.Lookup(k, 2); out != Hit || v != 3 {
		t.Errorf("merge did not add cell: (%v,%v)", v, out)
	}
	if _, out := c.Lookup(k, 3); out != PartialMiss {
		t.Errorf("never-defined cell outcome = %v, want PartialMiss", out)
	}
	// Completing the page collapses to the fully-defined fast path.
	c.Merge(k, page(1, 2, 3, 4), nil)
	if v, out := c.Lookup(k, 3); out != Hit || v != 4 {
		t.Errorf("completing merge = (%v,%v)", v, out)
	}
	// Merging into a fully defined page is a no-op.
	c.Merge(k, page(9, 9, 9, 9), nil)
	if v, _ := c.Lookup(k, 0); v != 1 {
		t.Errorf("merge into complete page overwrote: %v", v)
	}
	// Merging an absent page inserts it.
	k2 := Key{Array: 0, Page: 1}
	c.Merge(k2, page(5, 0, 0, 0), []bool{true, false, false, false})
	if v, out := c.Lookup(k2, 0); out != Hit || v != 5 {
		t.Errorf("merge of absent page = (%v,%v)", v, out)
	}
}

func TestNormalizeAllTrueDefined(t *testing.T) {
	c, _ := New(64, 2, LRU)
	k := Key{}
	c.Insert(k, page(1, 2), []bool{true, true})
	if _, out := c.Lookup(k, 1); out != Hit {
		t.Errorf("all-true defined snapshot outcome = %v", out)
	}
}

func TestInsertMismatchedDefinedPanics(t *testing.T) {
	c, _ := New(64, 2, LRU)
	defer func() {
		if recover() == nil {
			t.Error("mismatched defined slice accepted")
		}
	}()
	c.Insert(Key{}, page(1, 2), []bool{true})
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(4, 2, LRU) // 2 frames
	k1, k2, k3 := Key{Page: 1}, Key{Page: 2}, Key{Page: 3}
	c.Insert(k1, page(1, 1), nil)
	c.Insert(k2, page(2, 2), nil)
	// Touch k1 so k2 becomes LRU.
	if _, out := c.Lookup(k1, 0); out != Hit {
		t.Fatal("k1 should be cached")
	}
	c.Insert(k3, page(3, 3), nil)
	if c.Contains(k2) {
		t.Error("LRU victim should have been k2")
	}
	if !c.Contains(k1) || !c.Contains(k3) {
		t.Error("wrong eviction victim")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestFIFOEvictionIgnoresTouches(t *testing.T) {
	c, _ := New(4, 2, FIFO)
	k1, k2, k3 := Key{Page: 1}, Key{Page: 2}, Key{Page: 3}
	c.Insert(k1, page(1, 1), nil)
	c.Insert(k2, page(2, 2), nil)
	c.Lookup(k1, 0) // FIFO must not promote k1
	c.Insert(k3, page(3, 3), nil)
	if c.Contains(k1) {
		t.Error("FIFO should evict the oldest insert (k1)")
	}
	if !c.Contains(k2) || !c.Contains(k3) {
		t.Error("wrong FIFO victim")
	}
}

func TestClockSecondChance(t *testing.T) {
	c, _ := New(4, 2, Clock)
	k1, k2, k3 := Key{Page: 1}, Key{Page: 2}, Key{Page: 3}
	c.Insert(k1, page(1, 1), nil)
	c.Insert(k2, page(2, 2), nil)
	// Reference both, then insert: clock clears ref bits on first sweep
	// and evicts one of them deterministically without crashing.
	c.Lookup(k1, 0)
	c.Lookup(k2, 0)
	c.Insert(k3, page(3, 3), nil)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if !c.Contains(k3) {
		t.Error("new page not inserted")
	}
}

func TestRandomEvictionBounded(t *testing.T) {
	c, _ := New(8, 2, Random)
	for p := 0; p < 100; p++ {
		c.Insert(Key{Page: p}, page(float64(p), 0), nil)
		if c.Len() > 4 {
			t.Fatalf("cache exceeded capacity: %d pages", c.Len())
		}
	}
	if c.Stats().Evictions != 96 {
		t.Errorf("evictions = %d, want 96", c.Stats().Evictions)
	}
}

func TestZeroFrameCacheNeverCaches(t *testing.T) {
	c, _ := New(16, 32, LRU) // frame count 0
	k := Key{Page: 0}
	c.Insert(k, make([]float64, 32), nil)
	if c.Len() != 0 {
		t.Error("zero-frame cache stored a page")
	}
	if _, out := c.Lookup(k, 0); out != Miss {
		t.Error("zero-frame cache claims a hit")
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(8, 2, LRU)
	c.Insert(Key{Page: 0}, page(1, 2), nil)
	c.Insert(Key{Page: 1}, page(3, 4), nil)
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after flush = %d", c.Len())
	}
	if _, out := c.Lookup(Key{Page: 0}, 0); out != Miss {
		t.Error("flushed page still visible")
	}
	if c.Stats().Inserts != 2 {
		t.Error("flush should preserve statistics")
	}
}

func TestInvalidateArray(t *testing.T) {
	c, _ := New(16, 2, LRU)
	c.Insert(Key{Array: 1, Page: 0}, page(1, 1), nil)
	c.Insert(Key{Array: 1, Page: 1}, page(2, 2), nil)
	c.Insert(Key{Array: 2, Page: 0}, page(3, 3), nil)
	if n := c.InvalidateArray(1); n != 2 {
		t.Errorf("invalidated %d pages, want 2", n)
	}
	if c.Contains(Key{Array: 1, Page: 0}) || c.Contains(Key{Array: 1, Page: 1}) {
		t.Error("array-1 pages survived invalidation")
	}
	if !c.Contains(Key{Array: 2, Page: 0}) {
		t.Error("array-2 page wrongly invalidated")
	}
}

func TestKeysRecencyOrder(t *testing.T) {
	c, _ := New(8, 2, LRU)
	c.Insert(Key{Page: 0}, page(0, 0), nil)
	c.Insert(Key{Page: 1}, page(1, 1), nil)
	c.Lookup(Key{Page: 0}, 0) // promote page 0
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != (Key{Page: 0}) || keys[1] != (Key{Page: 1}) {
		t.Errorf("Keys = %v", keys)
	}
}

func TestPolicyAndOutcomeStrings(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Clock.String() != "clock" || Random.String() != "random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy empty name")
	}
	if Miss.String() != "miss" || Hit.String() != "hit" || PartialMiss.String() != "partial-miss" {
		t.Error("outcome names wrong")
	}
	if Outcome(9).String() == "" {
		t.Error("unknown outcome empty name")
	}
}

func TestPropertyNeverExceedsCapacity(t *testing.T) {
	// Property: for any insert sequence and any policy, the cache never
	// holds more than MaxPages pages and repeated lookups of an inserted
	// value are consistent.
	f := func(pages []uint8, policyRaw uint8) bool {
		policy := []Policy{LRU, FIFO, Clock, Random}[int(policyRaw)%4]
		c, err := New(16, 4, policy) // 4 frames
		if err != nil {
			return false
		}
		for _, p := range pages {
			k := Key{Page: int(p % 32)}
			c.Insert(k, []float64{float64(p), 0, 0, 0}, nil)
			if c.Len() > c.MaxPages() {
				return false
			}
			if v, out := c.Lookup(k, 0); out != Hit || v != float64(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyConservationOfLookups(t *testing.T) {
	// Property: hits + misses + partial-misses equals total lookups.
	f := func(ops []uint16) bool {
		c, _ := New(32, 4, LRU)
		lookups := int64(0)
		for _, op := range ops {
			k := Key{Page: int(op % 16)}
			if op%3 == 0 {
				def := []bool{true, op%2 == 0, true, true}
				c.Insert(k, []float64{1, 2, 3, 4}, def)
			} else {
				c.Lookup(k, int(op%4))
				lookups++
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses+s.PartialMisses == lookups
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
