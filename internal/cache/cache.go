// Package cache implements the per-PE array page cache of Bic, Nagel &
// Roy (1989) §4. Remote page fetches are cached locally; single
// assignment guarantees a cached page never needs invalidation, so there
// is no coherence traffic. The cache has a fixed capacity in *elements*
// (the paper uses 256), so the number of page frames is capacity divided
// by the page size. The paper uses LRU replacement; FIFO, Clock and
// Random are provided for ablation studies.
//
// A cached page is a snapshot. Under single assignment, cells defined in
// the snapshot are final; cells undefined at snapshot time may have been
// written since, so a hit on such a cell is a partial miss and forces a
// re-fetch of the page (§4 and §8: "a single page might have to be
// fetched more than once if that page is only partially filled at the
// time of the first request").
package cache

import "fmt"

// Key identifies one page of one array.
type Key struct {
	Array int // array identifier, assigned by the caller
	Page  int // page number within the array's linear space
}

// Policy selects the replacement policy.
type Policy int

// Replacement policies.
const (
	LRU Policy = iota // paper's choice
	FIFO
	Clock
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Outcome classifies a cache lookup.
type Outcome int

// Lookup outcomes.
const (
	Miss        Outcome = iota // page not cached
	Hit                        // page cached and cell defined in snapshot
	PartialMiss                // page cached but cell undefined in snapshot
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case PartialMiss:
		return "partial-miss"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats counts cache activity.
type Stats struct {
	Hits          int64 // lookups served from a snapshot
	Misses        int64 // lookups with no cached page
	PartialMisses int64 // cached page lacked the requested cell
	Inserts       int64 // pages inserted
	Refreshes     int64 // snapshot replaced by a fresher copy of same page
	Evictions     int64 // pages displaced by capacity pressure
}

type entry struct {
	key     Key
	vals    []float64
	defined []bool // nil means every cell defined
	// Intrusive list links (LRU/FIFO order). head side = most recent.
	prev, next *entry
	ref        bool // Clock reference bit
	// Slot-mode fields (see slots.go).
	slot   int32  // dense page id currently cached in this frame
	frame  int32  // this frame's index in Cache.frames
	defBuf []bool // retained buffer backing defined, recycled on reuse
}

func (e *entry) definedAt(off int) bool {
	return e.defined == nil || (off < len(e.defined) && e.defined[off])
}

// Cache is a single PE's page cache. Not safe for concurrent use; in the
// execution engine each PE owns exactly one Cache.
type Cache struct {
	capElems int
	pageSize int
	maxPages int
	policy   Policy

	entries map[Key]*entry
	// Doubly-linked sentinel list in recency order (head.next = MRU).
	head, tail *entry
	clockHand  *entry
	rng        uint64

	// Slot-mode index (see slots.go): dense page id -> frame index in
	// frames, -1 when absent. nil in Key mode and in frameless caches.
	slots      []int32
	frames     []*entry
	freeFrames []int32
	used       int // resident pages in slot mode

	stats Stats
}

// New returns a cache holding capElems elements of pages of pageSize
// elements under the given policy. A capacity smaller than one page
// yields a degenerate cache that caches nothing (every lookup misses),
// matching the paper's observation that an over-large page size leaves
// no cache frames.
func New(capElems, pageSize int, policy Policy) (*Cache, error) {
	if capElems < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capElems)
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("cache: page size must be positive, got %d", pageSize)
	}
	switch policy {
	case LRU, FIFO, Clock, Random:
	default:
		return nil, fmt.Errorf("cache: unknown policy %d", int(policy))
	}
	c := &Cache{
		capElems: capElems,
		pageSize: pageSize,
		maxPages: capElems / pageSize,
		policy:   policy,
		entries:  make(map[Key]*entry),
		rng:      rngSeed,
	}
	c.head = &entry{}
	c.tail = &entry{}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c, nil
}

// MaxPages returns the number of page frames.
func (c *Cache) MaxPages() int { return c.maxPages }

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	if c.entries == nil {
		return c.used
	}
	return len(c.entries)
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Contains reports whether the page is cached, without touching recency
// state or statistics.
func (c *Cache) Contains(key Key) bool {
	_, ok := c.entries[key]
	return ok
}

// Lookup probes the cache for cell off of the keyed page. On Hit the
// snapshot value is returned. On PartialMiss the page is cached but the
// cell was undefined at snapshot time; the caller must re-fetch and call
// Insert with the fresher snapshot. On Miss the page is absent.
func (c *Cache) Lookup(key Key, off int) (float64, Outcome) {
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return 0, Miss
	}
	if !e.definedAt(off) {
		c.stats.PartialMisses++
		return 0, PartialMiss
	}
	c.touch(e)
	c.stats.Hits++
	return e.vals[off], Hit
}

// Insert caches a page snapshot. defined may be nil to indicate a fully
// defined page; otherwise it must parallel vals. Inserting a key that is
// already cached refreshes its snapshot in place (the re-fetch path for
// partially filled pages). If the cache has no frames the call is a
// no-op. The slices are retained by the cache; callers must not mutate
// them afterwards.
func (c *Cache) Insert(key Key, vals []float64, defined []bool) {
	if defined != nil && len(defined) != len(vals) {
		panic(fmt.Sprintf("cache: defined length %d != vals length %d", len(defined), len(vals)))
	}
	if e, ok := c.entries[key]; ok {
		e.vals = vals
		e.defined = normalizeDefined(defined)
		c.touch(e)
		c.stats.Refreshes++
		return
	}
	if c.maxPages == 0 {
		return
	}
	for len(c.entries) >= c.maxPages {
		c.evict()
	}
	e := &entry{key: key, vals: vals, defined: normalizeDefined(defined), ref: true}
	c.entries[key] = e
	c.pushFront(e)
	c.stats.Inserts++
}

// Merge folds a page snapshot into the cache monotonically: cells
// defined in the incoming snapshot are added to the cached copy, and
// cells already defined in the cache are never lost or overwritten.
// Under single assignment a defined cell's value is final, so merging
// snapshots taken at different times is always safe — this is the
// requester-side absorption path for stale or duplicate replies on a
// lossy interconnect, where a late reply may carry an older (more
// sparsely filled) snapshot than the one already cached. Absent pages
// insert as usual. Key mode only (the execution engine's mode); a
// slot-mode cache tracks no values to merge and ignores the call.
func (c *Cache) Merge(key Key, vals []float64, defined []bool) {
	if c.entries == nil {
		return
	}
	e, ok := c.entries[key]
	if !ok {
		c.Insert(key, vals, defined)
		return
	}
	if e.defined == nil {
		return // cached copy already fully defined: nothing to gain
	}
	for off := range e.vals {
		if !e.defined[off] && (defined == nil || (off < len(defined) && defined[off])) && off < len(vals) {
			e.vals[off] = vals[off]
			e.defined[off] = true
		}
	}
	e.defined = normalizeDefined(e.defined)
	c.touch(e)
	c.stats.Refreshes++
}

// normalizeDefined collapses an all-true defined slice to nil so that
// fully defined pages take the fast path in definedAt.
func normalizeDefined(defined []bool) []bool {
	if defined == nil {
		return nil
	}
	for _, d := range defined {
		if !d {
			return defined
		}
	}
	return nil
}

// Flush empties the cache, preserving statistics.
func (c *Cache) Flush() {
	if c.entries != nil {
		c.entries = make(map[Key]*entry)
	} else {
		for i := range c.slots {
			c.slots[i] = -1
		}
		c.freeFrames = c.freeFrames[:0]
		for i, e := range c.frames {
			e.prev, e.next = nil, nil
			e.defined = nil
			c.freeFrames = append(c.freeFrames, int32(i))
		}
		c.used = 0
	}
	c.head.next = c.tail
	c.tail.prev = c.head
	c.clockHand = nil
}

// InvalidateArray drops all cached pages of one array. Single assignment
// never requires this for coherence; it supports the §5 host-processor
// re-initialization protocol, after which stale snapshots of the old
// array version must not be observable.
func (c *Cache) InvalidateArray(array int) int {
	dropped := 0
	for key, e := range c.entries {
		if key.Array == array {
			c.remove(e)
			delete(c.entries, key)
			dropped++
		}
	}
	return dropped
}

func (c *Cache) pushFront(e *entry) {
	e.prev = c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}

func (c *Cache) remove(e *entry) {
	if c.clockHand == e {
		c.clockHand = e.next
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *entry) {
	e.ref = true
	if c.policy != LRU {
		return // FIFO/Clock/Random order is insertion order
	}
	c.remove(e)
	c.pushFront(e)
}

func (c *Cache) evict() {
	var victim *entry
	switch c.policy {
	case LRU, FIFO:
		victim = c.tail.prev
	case Clock:
		victim = c.clockSweep()
	case Random:
		victim = c.randomEntry()
	}
	if victim == nil || victim == c.head || victim == c.tail {
		return
	}
	c.remove(victim)
	if c.entries != nil {
		delete(c.entries, victim.key)
	} else {
		c.slots[victim.slot] = -1
		c.freeFrames = append(c.freeFrames, victim.frame)
		c.used--
		victim.defined = nil
	}
	c.stats.Evictions++
}

func (c *Cache) clockSweep() *entry {
	if c.clockHand == nil || c.clockHand == c.head || c.clockHand == c.tail {
		c.clockHand = c.tail.prev
	}
	for i := 0; i < 2*c.Len()+2; i++ {
		e := c.clockHand
		if e == c.head || e == c.tail {
			c.clockHand = c.tail.prev
			continue
		}
		if !e.ref {
			return e
		}
		e.ref = false
		c.clockHand = e.prev
		if c.clockHand == c.head {
			c.clockHand = c.tail.prev
		}
	}
	return c.tail.prev
}

func (c *Cache) randomEntry() *entry {
	// xorshift64* for deterministic, seed-stable victim selection.
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	n := c.Len()
	if n == 0 {
		return nil
	}
	skip := int(c.rng % uint64(n))
	e := c.head.next
	for i := 0; i < skip && e.next != c.tail; i++ {
		e = e.next
	}
	return e
}

// Keys returns the cached page keys in recency order (most recent
// first). Intended for tests and diagnostics. In slot mode the dense
// page id is reported as Key.Page.
func (c *Cache) Keys() []Key {
	keys := make([]Key, 0, c.Len())
	for e := c.head.next; e != c.tail; e = e.next {
		if c.entries == nil {
			keys = append(keys, Key{Page: int(e.slot)})
		} else {
			keys = append(keys, e.key)
		}
	}
	return keys
}
