package ir

import (
	"strings"
	"testing"

	"repro/internal/loops"
)

func TestExprAlgebra(t *testing.T) {
	e := V("i").Times(2).PlusC(3).Plus(V("j"))
	env := map[string]int{"i": 5, "j": 7}
	if got := e.Eval(env, nil); got != 20 {
		t.Errorf("eval = %d, want 20", got)
	}
	if got := V("i").Minus(C(1)).Eval(env, nil); got != 4 {
		t.Errorf("minus = %d", got)
	}
	fv := e.FreeVars()
	if len(fv) != 2 || fv[0] != "i" || fv[1] != "j" {
		t.Errorf("FreeVars = %v", fv)
	}
	if !e.IsAffine() {
		t.Error("affine expr reported non-affine")
	}
}

func TestExprString(t *testing.T) {
	if s := V("i").Times(2).PlusC(-3).String(); s != "2*i+-3" && s != "2*i-3" {
		t.Errorf("String = %q", s)
	}
	if s := C(0).String(); s != "0" {
		t.Errorf("zero String = %q", s)
	}
	if s := Ind("IX", V("k")).String(); s != "IX(k)" {
		t.Errorf("indirect String = %q", s)
	}
	if s := V("i").Times(-1).String(); s != "-i" {
		t.Errorf("negated String = %q", s)
	}
}

func TestExprEvalUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unbound variable did not panic")
		}
	}()
	V("zz").Eval(map[string]int{}, nil)
}

func TestIndirectArithmeticPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arithmetic on indirect did not panic")
		}
	}()
	Ind("A", V("i")).PlusC(1)
}

func TestIndirectEval(t *testing.T) {
	e := Ind("IX", V("k").PlusC(1))
	got := e.Eval(map[string]int{"k": 3}, func(array string, idx int) float64 {
		if array != "IX" || idx != 4 {
			t.Errorf("indirection read %s[%d]", array, idx)
		}
		return 9
	})
	if got != 9 {
		t.Errorf("indirect eval = %d", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *Program)
	}{
		{"empty name", func(p *Program) { p.Name = "" }},
		{"dup array", func(p *Program) { p.Arrays = append(p.Arrays, p.Arrays[0]) }},
		{"no dims", func(p *Program) { p.Arrays[0].Dims = nil }},
		{"zero step", func(p *Program) { p.Body[0].(*Loop).Step = 0 }},
		{"unbound var", func(p *Program) {
			p.Body[0].(*Loop).Body[0].(*Assign).LHS = R("RX", V("zz"))
		}},
		{"undeclared array", func(p *Program) {
			p.Body[0].(*Loop).Body[0].(*Assign).LHS.Array = "NOPE"
		}},
		{"rank mismatch", func(p *Program) {
			p.Body[0].(*Loop).Body[0].(*Assign).LHS = R("RX", V("k"), V("k"))
		}},
		{"shadowed loop var", func(p *Program) {
			inner := &Loop{Var: "k", Lo: C(1), Hi: C(2), Step: 1}
			p.Body[0].(*Loop).Body = append(p.Body[0].(*Loop).Body, inner)
		}},
	}
	for _, c := range cases {
		p := SampleMatched()
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: not rejected", c.name)
		}
	}
	if err := SampleMatched().Validate(); err != nil {
		t.Errorf("clean sample rejected: %v", err)
	}
}

func TestValidateRejectsIndirectWrite(t *testing.T) {
	p := SampleIndirect()
	p.Body[0].(*Loop).Body[0].(*Assign).LHS = R("OUT", Ind("IX", V("k")))
	if err := p.Validate(); err == nil {
		t.Error("indirect write subscript accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := SampleHydro().String()
	for _, want := range []string{"PROGRAM hydro", "ARRAY X", "INPUT", "OUTPUT", "DO k = 1, n", "END DO", "ZX(k+10)"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}

func TestCleanSamplesCompileAndRun(t *testing.T) {
	// Matched, hydro, cyclic and indirect are single-assignment as
	// written: they must compile and run clean on the reference engine.
	for _, p := range []*Program{SampleMatched(), SampleHydro(), SampleCyclic(), SampleIndirect()} {
		k, err := p.Kernel(64)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, err := loops.RunSeq(k, 64)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(res.Checksums) == 0 || res.Checksums[0].Defined == 0 {
			t.Errorf("%s: no output produced", p.Name)
		}
	}
}

func TestDirtySamplesFailSequentially(t *testing.T) {
	// The conventional-Fortran samples violate single assignment and
	// must be caught at runtime by the reference engine.
	for _, p := range []*Program{SampleInPlace(), SampleCarriedScalar(), SampleGaussSeidel(), SampleTwoPhase()} {
		k, err := p.Kernel(32)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if _, err := loops.RunSeq(k, 32); err == nil {
			t.Errorf("%s: SA violation not detected at runtime", p.Name)
		}
	}
}

func TestMatchedKernelValues(t *testing.T) {
	k, err := SampleMatched().Kernel(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loops.RunSeq(k, 16)
	if err != nil {
		t.Fatal(err)
	}
	xx, irr := InputSeed(1), InputSeed(2)
	rx := res.Values["RX"]
	for i := 1; i <= 16; i++ {
		want := xx(i) - irr(i)
		if diff := rx[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("RX[%d] = %v, want %v", i, rx[i], want)
		}
	}
}

func TestCheckSADiagnostics(t *testing.T) {
	cases := []struct {
		p    *Program
		kind DiagKind
	}{
		{SampleInPlace(), InPlaceUpdate},
		{SampleInPlace(), InputOverwrite},
		{SampleCarriedScalar(), LoopInvariantWrite},
		{SampleGaussSeidel(), InPlaceUpdate},
		{SampleTwoPhase(), MultipleWriters},
	}
	for _, c := range cases {
		diags := c.p.CheckSA()
		found := false
		for _, d := range diags {
			if d.Kind == c.kind {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected %v diagnostic, got %v", c.p.Name, c.kind, diags)
		}
	}
}

func TestCheckSACleanSamples(t *testing.T) {
	for _, p := range []*Program{SampleMatched(), SampleHydro(), SampleCyclic(), SampleIndirect()} {
		if viol := Violations(p.CheckSA()); len(viol) != 0 {
			t.Errorf("%s: unexpected violations: %v", p.Name, viol)
		}
	}
}

func TestDiagnosticStrings(t *testing.T) {
	d := Diagnostic{Kind: InPlaceUpdate, Severity: Violation, Array: "A", Stmt: "A(i) = ...", Detail: "x"}
	s := d.String()
	if !strings.Contains(s, "violation") || !strings.Contains(s, "in-place-update") {
		t.Errorf("diagnostic rendering = %q", s)
	}
	if Warning.String() != "warning" {
		t.Error("severity name wrong")
	}
	for _, k := range []DiagKind{LoopInvariantWrite, InPlaceUpdate, MultipleWriters, InputOverwrite} {
		if strings.Contains(k.String(), "DiagKind") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if DiagKind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestLinearizeRef(t *testing.T) {
	p := &Program{
		Name: "lin",
		Arrays: []ArrayDecl{
			{Name: "B", Dims: []Extent{NPlus(1), NPlus(1)}, Input: true},
		},
	}
	// B(k, i) at n=9: row length 10, lin = 10*k + i.
	coeffs, konst, affine := p.LinearizeRef(R("B", V("k"), V("i").PlusC(3)), 9)
	if !affine {
		t.Fatal("affine ref reported non-affine")
	}
	if coeffs["k"] != 10 || coeffs["i"] != 1 || konst != 3 {
		t.Errorf("coeffs=%v konst=%d", coeffs, konst)
	}
	// Indirect refs are non-affine.
	if _, _, affine := p.LinearizeRef(R("B", Ind("B", C(0)), C(1)), 9); affine {
		t.Error("indirect ref reported affine")
	}
	// Unknown arrays are non-affine.
	if _, _, affine := p.LinearizeRef(R("NOPE", C(0)), 9); affine {
		t.Error("unknown array reported affine")
	}
}

func TestDescendingLoop(t *testing.T) {
	// A descending recurrence: E(k) = E(k+1)*0.5, k = n..1.
	p := &Program{
		Name: "descend",
		Arrays: []ArrayDecl{
			{Name: "E", Dims: []Extent{NPlus(2)}},
		},
		Body: []Stmt{
			&Loop{Var: "k", Lo: N(), Hi: C(1), Step: -1, Body: []Stmt{
				&Assign{
					LHS: R("E", V("k")),
					RHS: RHS{Terms: []Term{{Coef: 0.5, Read: R("E", V("k").PlusC(1))}}},
				},
			}},
		},
	}
	p.Arrays[0].InitLowCount = 0
	// Boundary: E(n+1) must be initialization data. Use InitLowCount
	// via a trick: descending recurrences need the HIGH cell defined,
	// which InitLowCount cannot express, so write it as a statement.
	p.Body = append([]Stmt{
		&Assign{LHS: R("E", N().PlusC(1)), RHS: RHS{Bias: 1.0}},
	}, p.Body...)
	k, err := p.Kernel(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loops.RunSeq(k, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Values["E"]
	want := 1.0
	for kk := 16; kk >= 1; kk-- {
		want *= 0.5
		if e[kk] != 0 && (e[kk]-want > 1e-15 || want-e[kk] > 1e-15) {
			t.Fatalf("E[%d] = %v, want %v", kk, e[kk], want)
		}
	}
}

func TestSamplesRegistry(t *testing.T) {
	ss := Samples()
	if len(ss) != 8 {
		t.Fatalf("Samples() returned %d programs", len(ss))
	}
	seen := map[string]bool{}
	for _, p := range ss {
		if seen[p.Name] {
			t.Errorf("duplicate sample %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestKernelRejectsEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty", Arrays: []ArrayDecl{{Name: "A", Dims: []Extent{Fixed(4)}, Input: true}}}
	if _, err := p.Kernel(8); err == nil {
		t.Error("program with no writes accepted")
	}
}
