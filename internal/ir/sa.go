package ir

import (
	"fmt"
	"strings"
)

// Severity grades a single-assignment diagnostic.
type Severity int

// Diagnostic severities.
const (
	Warning   Severity = iota // may be legal (e.g. provably disjoint writes)
	Violation                 // definitely breaks single assignment
)

// String returns the severity name.
func (s Severity) String() string {
	if s == Violation {
		return "violation"
	}
	return "warning"
}

// DiagKind classifies a diagnostic.
type DiagKind int

// Diagnostic kinds.
const (
	// LoopInvariantWrite: the write subscript ignores an enclosing loop
	// variable, so the same cell is written on every iteration.
	LoopInvariantWrite DiagKind = iota
	// InPlaceUpdate: the statement reads the cell it writes (the
	// Fortran accumulate/update idiom); under single assignment the
	// read requires the cell to be defined, which the write then
	// violates.
	InPlaceUpdate
	// MultipleWriters: two statements write the same array; legal only
	// if their index ranges are disjoint, which the checker does not
	// prove.
	MultipleWriters
	// InputOverwrite: an initialization-data (input) array is written.
	InputOverwrite
)

// String returns the kind name.
func (k DiagKind) String() string {
	switch k {
	case LoopInvariantWrite:
		return "loop-invariant-write"
	case InPlaceUpdate:
		return "in-place-update"
	case MultipleWriters:
		return "multiple-writers"
	case InputOverwrite:
		return "input-overwrite"
	default:
		return fmt.Sprintf("DiagKind(%d)", int(k))
	}
}

// Diagnostic is one finding of the static single-assignment checker.
type Diagnostic struct {
	Kind     DiagKind
	Severity Severity
	Array    string
	Stmt     string // rendering of the offending assignment
	Detail   string
}

// String renders the diagnostic.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s on %s: %s [%s]",
		d.Severity, d.Kind, d.Array, d.Detail, strings.TrimSpace(d.Stmt))
}

// CheckSA performs the §5 "data path analysis": it reports places
// where the program violates (or may violate) the single assignment
// rule. A program with no Violation-severity diagnostics and no
// overlapping multi-writers executes cleanly on the engines; the
// convert package rewrites programs that fail.
func (p *Program) CheckSA() []Diagnostic {
	var diags []Diagnostic
	writersOf := map[string][]*Assign{}

	for _, info := range p.Assigns() {
		a := info.Assign
		var rendered strings.Builder
		a.render("", &rendered)
		stmtStr := rendered.String()

		writersOf[a.LHS.Array] = append(writersOf[a.LHS.Array], a)

		if d, ok := p.decl(a.LHS.Array); ok && d.Input {
			diags = append(diags, Diagnostic{
				Kind: InputOverwrite, Severity: Violation, Array: a.LHS.Array,
				Stmt:   stmtStr,
				Detail: "assignment to initialization data",
			})
		}

		// Loop-invariant writes: every enclosing loop variable with a
		// possibly multi-trip range must appear in some write subscript.
		lhsVars := map[string]bool{}
		for _, e := range a.LHS.Index {
			for _, v := range e.FreeVars() {
				lhsVars[v] = true
			}
		}
		for _, l := range info.Loops {
			if l.Var == "n" || lhsVars[l.Var] {
				continue
			}
			if singleTrip(l) {
				continue
			}
			diags = append(diags, Diagnostic{
				Kind: LoopInvariantWrite, Severity: Violation, Array: a.LHS.Array,
				Stmt:   stmtStr,
				Detail: fmt.Sprintf("write subscript ignores loop variable %q", l.Var),
			})
		}

		// In-place updates: a read of the same array at the same index.
		for _, r := range a.RHS.Reads() {
			if r.Array == a.LHS.Array && sameIndex(r.Index, a.LHS.Index) {
				diags = append(diags, Diagnostic{
					Kind: InPlaceUpdate, Severity: Violation, Array: a.LHS.Array,
					Stmt:   stmtStr,
					Detail: "statement reads the cell it writes",
				})
			}
		}
	}

	for array, writers := range writersOf {
		if len(writers) < 2 {
			continue
		}
		var rendered strings.Builder
		writers[1].render("", &rendered)
		diags = append(diags, Diagnostic{
			Kind: MultipleWriters, Severity: Warning, Array: array,
			Stmt:   rendered.String(),
			Detail: fmt.Sprintf("%d statements write %s; legal only if their ranges are disjoint", len(writers), array),
		})
	}
	return diags
}

// Violations filters diagnostics to definite violations.
func Violations(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Violation {
			out = append(out, d)
		}
	}
	return out
}

// singleTrip reports whether the loop provably executes at most once
// (constant equal bounds).
func singleTrip(l *Loop) bool {
	if l.Lo.Indirect != nil || l.Hi.Indirect != nil {
		return false
	}
	if len(l.Lo.FreeVars()) != 0 || len(l.Hi.FreeVars()) != 0 {
		return false
	}
	return l.Lo.Const == l.Hi.Const
}

// sameIndex reports whether two affine index vectors are syntactically
// identical.
func sameIndex(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !exprEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func exprEqual(a, b Expr) bool {
	if (a.Indirect == nil) != (b.Indirect == nil) {
		return false
	}
	if a.Indirect != nil {
		return a.Indirect.Array == b.Indirect.Array && exprEqual(a.Indirect.Index, b.Indirect.Index)
	}
	if a.Const != b.Const {
		return false
	}
	for v, c := range a.Coeffs {
		if c != 0 && b.Coeffs[v] != c {
			return false
		}
	}
	for v, c := range b.Coeffs {
		if c != 0 && a.Coeffs[v] != c {
			return false
		}
	}
	return true
}
