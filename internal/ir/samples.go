package ir

// Sample programs mirroring the paper's loop fragments, used by tests,
// the saconv/classify tools, and the customkernel example. Each returns
// a fresh Program so callers may mutate freely.

// SampleMatched is the §7.1.1 Matched Distribution exemplar:
//
//	DO k = 1,n
//	  RX(k) = XX(k) - IR(k)
func SampleMatched() *Program {
	return &Program{
		Name: "matched",
		Arrays: []ArrayDecl{
			{Name: "RX", Dims: []Extent{NPlus(1)}},
			{Name: "XX", Dims: []Extent{NPlus(1)}, Input: true},
			{Name: "IR", Dims: []Extent{NPlus(1)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "k", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("RX", V("k")),
					RHS: RHS{Terms: []Term{
						{Coef: 1, Read: R("XX", V("k"))},
						{Coef: -1, Read: R("IR", V("k"))},
					}},
				},
			}},
		},
	}
}

// SampleHydro is the Hydro Fragment's access skeleton (skews 10/11);
// the multiplicative structure is flattened to a linear combination,
// which leaves the access pattern — the object of study — unchanged:
//
//	DO k = 1,n
//	  X(k) = 0.5 + Y(k) + 0.2*ZX(k+10) + 0.1*ZX(k+11)
func SampleHydro() *Program {
	return &Program{
		Name: "hydro",
		Arrays: []ArrayDecl{
			{Name: "X", Dims: []Extent{NPlus(1)}},
			{Name: "Y", Dims: []Extent{NPlus(1)}, Input: true},
			{Name: "ZX", Dims: []Extent{NPlus(12)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "k", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("X", V("k")),
					RHS: RHS{Bias: 0.5, Terms: []Term{
						{Coef: 1, Read: R("Y", V("k"))},
						{Coef: 0.2, Read: R("ZX", V("k").PlusC(10))},
						{Coef: 0.1, Read: R("ZX", V("k").PlusC(11))},
					}},
				},
			}},
		},
	}
}

// SampleCyclic reads at twice the write rate, the ICCG signature:
//
//	DO k = 1,n
//	  XO(k) = X(2*k) - X(2*k+1)
func SampleCyclic() *Program {
	return &Program{
		Name: "cyclic",
		Arrays: []ArrayDecl{
			{Name: "XO", Dims: []Extent{NPlus(1)}},
			{Name: "X", Dims: []Extent{{Scale: 2, Offset: 2}}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "k", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("XO", V("k")),
					RHS: RHS{Terms: []Term{
						{Coef: 1, Read: R("X", V("k").Times(2))},
						{Coef: -1, Read: R("X", V("k").Times(2).PlusC(1))},
					}},
				},
			}},
		},
	}
}

// SampleIndirect gathers through a permutation, the §7.1.4 Random
// Distribution signature:
//
//	DO k = 1,n
//	  OUT(k) = G(IX(k))
func SampleIndirect() *Program {
	return &Program{
		Name: "indirect",
		Arrays: []ArrayDecl{
			{Name: "OUT", Dims: []Extent{NPlus(1)}},
			{Name: "G", Dims: []Extent{NPlus(2)}, Input: true},
			{Name: "IX", Dims: []Extent{NPlus(1)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "k", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("OUT", V("k")),
					RHS: RHS{Terms: []Term{
						{Coef: 1, Read: R("G", Ind("IX", V("k")))},
					}},
				},
			}},
		},
	}
}

// SampleInPlace is the classic conventional-Fortran update the §5
// converter exists for:
//
//	DO i = 1,n
//	  A(i) = A(i) + B(i)     (A is input data)
func SampleInPlace() *Program {
	return &Program{
		Name: "inplace",
		Arrays: []ArrayDecl{
			{Name: "A", Dims: []Extent{NPlus(1)}, Input: true},
			{Name: "B", Dims: []Extent{NPlus(1)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "i", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("A", V("i")),
					RHS: RHS{Terms: []Term{
						{Coef: 1, Read: R("A", V("i"))},
						{Coef: 1, Read: R("B", V("i"))},
					}},
				},
			}},
		},
	}
}

// SampleCarriedScalar accumulates into a fixed cell — the carried
// scalar that conversion expands over the loop variable:
//
//	DO i = 1,n
//	  S(0) = S(0) + X(i)
func SampleCarriedScalar() *Program {
	return &Program{
		Name: "carried",
		Arrays: []ArrayDecl{
			{Name: "S", Dims: []Extent{Fixed(1)}, Input: true},
			{Name: "X", Dims: []Extent{NPlus(1)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "i", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("S", C(0)),
					RHS: RHS{Terms: []Term{
						{Coef: 1, Read: R("S", C(0))},
						{Coef: 1, Read: R("X", V("i"))},
					}},
				},
			}},
		},
	}
}

// SampleGaussSeidel sweeps a 1-D relaxation in place, reading the
// already-updated left neighbour and the not-yet-updated right
// neighbour:
//
//	DO i = 1,n
//	  A(i) = 0.25*A(i-1) + 0.25*A(i+1) + 0.5*A(i)
func SampleGaussSeidel() *Program {
	return &Program{
		Name: "gaussseidel",
		Arrays: []ArrayDecl{
			{Name: "A", Dims: []Extent{NPlus(2)}, Input: true},
		},
		Body: []Stmt{
			&Loop{Var: "i", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
				&Assign{
					LHS: R("A", V("i")),
					RHS: RHS{Terms: []Term{
						{Coef: 0.25, Read: R("A", V("i").PlusC(-1))},
						{Coef: 0.25, Read: R("A", V("i").PlusC(1))},
						{Coef: 0.5, Read: R("A", V("i"))},
					}},
				},
			}},
		},
	}
}

// SampleTwoPhase writes an array and then updates it in a second
// phase, the multi-writer pattern of the LFK hydro codes:
//
//	DO i = 1,n:  T(i) = U(i) + V(i)
//	DO i = 1,n:  T(i) = T(i) + U(i)
func SampleTwoPhase() *Program {
	mk := func(terms []Term) *Loop {
		return &Loop{Var: "i", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
			&Assign{LHS: R("T", V("i")), RHS: RHS{Terms: terms}},
		}}
	}
	return &Program{
		Name: "twophase",
		Arrays: []ArrayDecl{
			{Name: "T", Dims: []Extent{NPlus(1)}},
			{Name: "U", Dims: []Extent{NPlus(1)}, Input: true},
			{Name: "V", Dims: []Extent{NPlus(1)}, Input: true},
		},
		Body: []Stmt{
			mk([]Term{{Coef: 1, Read: R("U", V("i"))}, {Coef: 1, Read: R("V", V("i"))}}),
			mk([]Term{{Coef: 1, Read: R("T", V("i"))}, {Coef: 1, Read: R("U", V("i"))}}),
		},
	}
}

// Samples returns every sample program.
func Samples() []*Program {
	return []*Program{
		SampleMatched(), SampleHydro(), SampleCyclic(), SampleIndirect(),
		SampleInPlace(), SampleCarriedScalar(), SampleGaussSeidel(), SampleTwoPhase(),
	}
}
