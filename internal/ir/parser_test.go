package ir

import (
	"strings"
	"testing"

	"repro/internal/loops"
)

const hydroSrc = `
PROGRAM hydro
  ARRAY X(n+1) OUTPUT
  ARRAY Y(n+1) INPUT
  ARRAY ZX(n+12) INPUT
  DO k = 1, n
    X(k) = 0.5 + Y(k) + 0.2*ZX(k+10) + 0.1*ZX(k+11)
  END DO
END
`

func TestParseHydro(t *testing.T) {
	p, err := Parse(hydroSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "hydro" || len(p.Arrays) != 3 {
		t.Fatalf("parsed %q with %d arrays", p.Name, len(p.Arrays))
	}
	if !p.Arrays[1].Input || p.Arrays[0].Input {
		t.Error("roles wrong")
	}
	loop, ok := p.Body[0].(*Loop)
	if !ok || loop.Var != "k" || loop.Step != 1 {
		t.Fatalf("loop = %+v", p.Body[0])
	}
	a := loop.Body[0].(*Assign)
	if a.RHS.Bias != 0.5 || len(a.RHS.Terms) != 3 {
		t.Errorf("rhs = %+v", a.RHS)
	}
	if a.RHS.Terms[1].Coef != 0.2 {
		t.Errorf("coef = %v", a.RHS.Terms[1].Coef)
	}
}

func TestParsedProgramEquivalentToBuiltSample(t *testing.T) {
	// The parsed hydro program must behave identically to the
	// programmatically built SampleHydro.
	parsed, err := Parse(hydroSrc)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := parsed.Kernel(64)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := SampleHydro().Kernel(64)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := loops.RunSeq(pk, 64)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := loops.RunSeq(sk, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Checksums[0] != sr.Checksums[0] {
		t.Errorf("parsed %+v != built %+v", pr.Checksums[0], sr.Checksums[0])
	}
}

func TestParseRoundTripThroughRenderer(t *testing.T) {
	// Every clean sample renders to text that parses back to an
	// equivalent program (same checksum on the reference engine).
	for _, p := range []*Program{SampleMatched(), SampleHydro(), SampleCyclic(), SampleIndirect()} {
		src := p.String() + "END\n"
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: reparse: %v\nsource:\n%s", p.Name, err, src)
		}
		k1, err := p.Kernel(48)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := back.Kernel(48)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := loops.RunSeq(k1, 48)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := loops.RunSeq(k2, 48)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Checksums {
			if r1.Checksums[i] != r2.Checksums[i] {
				t.Errorf("%s: roundtrip checksum drift: %+v vs %+v",
					p.Name, r1.Checksums[i], r2.Checksums[i])
			}
		}
	}
}

func TestParseIndirection(t *testing.T) {
	src := `
PROGRAM gather
  ARRAY OUT(n+1) OUTPUT
  ARRAY G(n+2) INPUT
  ARRAY IX(n+1) INPUT
  DO k = 1, n
    OUT(k) = G(IX(k))
  END DO
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Body[0].(*Loop).Body[0].(*Assign)
	idx := a.RHS.Terms[0].Read.Index[0]
	if idx.Indirect == nil || idx.Indirect.Array != "IX" {
		t.Fatalf("indirection not parsed: %+v", idx)
	}
	if _, err := p.Kernel(32); err != nil {
		t.Fatal(err)
	}
}

func TestParseMultiDimAndInit(t *testing.T) {
	src := `
PROGRAM grid
  ARRAY Z(n+2, 8) INPUT
  ARRAY O(n+2, 8) OUTPUT
  ARRAY S(n+2) OUTPUT INIT 1
  DO j = 2, n
    DO k = 2, 6
      O(j, k) = Z(j - 1, k + 1) + -1*Z(j, k)
      S(j) = S(j - 1) + Z(j, k)
    END DO
  END DO
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arrays[2].InitLowCount != 1 {
		t.Errorf("INIT count = %d", p.Arrays[2].InitLowCount)
	}
	outer := p.Body[0].(*Loop)
	inner := outer.Body[0].(*Loop)
	a := inner.Body[0].(*Assign)
	// Z(j-1, k+1): first subscript j-1.
	e := a.RHS.Terms[0].Read.Index[0]
	if e.Coeffs["j"] != 1 || e.Const != -1 {
		t.Errorf("subscript = %+v", e)
	}
	// S writes inside the k loop are loop-invariant: CheckSA must flag.
	found := false
	for _, d := range p.CheckSA() {
		if d.Kind == LoopInvariantWrite && d.Array == "S" {
			found = true
		}
	}
	if !found {
		t.Error("loop-invariant S write not diagnosed after parse")
	}
}

func TestParseDescendingStep(t *testing.T) {
	src := `
PROGRAM down
  ARRAY E(n+2) OUTPUT INIT 0
  ARRAY W(n+2) INPUT
  E(n+1) = 1.0
  DO k = n, 1, -1
    E(k) = 0.5*E(k+1) + W(k)
  END DO
END
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k, err := p.Kernel(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loops.RunSeq(k, 32); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no program", "ARRAY X(3) OUTPUT\nEND"},
		{"missing end", "PROGRAM p\nARRAY X(3) OUTPUT\n"},
		{"bad array", "PROGRAM p\nARRAY X OUTPUT\nEND"},
		{"bad role", "PROGRAM p\nARRAY X(3) SIDEWAYS\nEND"},
		{"bad init", "PROGRAM p\nARRAY X(3) OUTPUT INIT\nEND"},
		{"bad extent", "PROGRAM p\nARRAY X(n*n) OUTPUT\nEND"},
		{"extent var", "PROGRAM p\nARRAY X(2*m) OUTPUT\nEND"},
		{"do no eq", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k 1, 2\nEND DO\nEND"},
		{"do one bound", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1\nEND DO\nEND"},
		{"do bad step", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2, x\nEND DO\nEND"},
		{"unclosed do", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2\nX(k) = 1\nEND"},
		{"bad assign", "PROGRAM p\nARRAY X(3) OUTPUT\njunk line\nEND"},
		{"bad ref", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2\nX = 1\nEND DO\nEND"},
		{"bad coef", "PROGRAM p\nARRAY X(3) OUTPUT\nARRAY Y(3) INPUT\nDO k = 1, 2\nX(k) = q*Y(k)\nEND DO\nEND"},
		{"bad const", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2\nX(k) = banana\nEND DO\nEND"},
		{"undeclared", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2\nX(k) = Y(k)\nEND DO\nEND"},
		{"bad subscript", "PROGRAM p\nARRAY X(3) OUTPUT\nDO k = 1, 2\nX(k ^ 2) = 1\nEND DO\nEND"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	src := `
# a comment
PROGRAM p

  ! another comment style
  ARRAY X(n+1) OUTPUT
  ARRAY Y(n+1) INPUT
  DO k = 1, n
    X(k) = Y(k)
  END DO
END
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("PROGRAM p\nARRAY X OUTPUT\nEND")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("message %q lacks location", err.Error())
	}
}
