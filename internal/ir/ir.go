// Package ir is a small affine loop intermediate representation for
// Fortran-style scientific loop nests — the program class the paper's
// automatic partitioning targets. It supports:
//
//   - size-parametric array declarations and loop bounds (affine in the
//     problem size n and enclosing loop variables);
//   - affine subscripts plus explicit indirection (the paper's
//     "permutation lookups", §7.1.4);
//   - static single-assignment diagnostics (§5: compilers "perform data
//     path analysis to help programmers adhere to single assignment");
//   - compilation to a runnable loops.Kernel, so IR programs execute on
//     the sequential, counting, and concurrent engines like any
//     Livermore kernel.
//
// The companion packages build on it: internal/convert implements the
// §5 automatic conversion tool (array renaming), and internal/classify
// implements the §7 access-distribution taxonomy both statically (from
// subscript analysis) and dynamically (from simulation).
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an affine expression over the problem size "n" and loop
// variables, optionally replaced by an indirection (a value loaded from
// an array at an affine index).
type Expr struct {
	Coeffs map[string]int // variable -> coefficient
	Const  int
	// Indirect, when non-nil, overrides the affine part: the value is
	// int(Array[Index]) at runtime. Indirect subscripts are what make a
	// reference non-affine (class RD).
	Indirect *Indirect
}

// Indirect is a value loaded from a 1-D array at an affine index.
type Indirect struct {
	Array string
	Index Expr
}

// V returns the expression consisting of one variable.
func V(name string) Expr { return Expr{Coeffs: map[string]int{name: 1}} }

// C returns a constant expression.
func C(k int) Expr { return Expr{Const: k} }

// N returns the problem-size variable.
func N() Expr { return V("n") }

// Ind returns an indirect expression Array[idx].
func Ind(array string, idx Expr) Expr {
	return Expr{Indirect: &Indirect{Array: array, Index: idx}}
}

// Plus returns e + o.
func (e Expr) Plus(o Expr) Expr {
	if e.Indirect != nil || o.Indirect != nil {
		panic("ir: arithmetic on indirect expressions is not supported")
	}
	out := Expr{Coeffs: map[string]int{}, Const: e.Const + o.Const}
	for v, c := range e.Coeffs {
		out.Coeffs[v] += c
	}
	for v, c := range o.Coeffs {
		out.Coeffs[v] += c
	}
	return out
}

// PlusC returns e + k.
func (e Expr) PlusC(k int) Expr { return e.Plus(C(k)) }

// Minus returns e - o.
func (e Expr) Minus(o Expr) Expr { return e.Plus(o.Times(-1)) }

// Times returns e scaled by k.
func (e Expr) Times(k int) Expr {
	if e.Indirect != nil {
		panic("ir: arithmetic on indirect expressions is not supported")
	}
	out := Expr{Coeffs: map[string]int{}, Const: e.Const * k}
	for v, c := range e.Coeffs {
		out.Coeffs[v] = c * k
	}
	return out
}

// IsAffine reports whether the expression is affine (no indirection).
func (e Expr) IsAffine() bool { return e.Indirect == nil }

// Eval evaluates the expression under a variable binding; reads
// resolves indirections.
func (e Expr) Eval(env map[string]int, reads func(array string, idx int) float64) int {
	if e.Indirect != nil {
		idx := e.Indirect.Index.Eval(env, reads)
		return int(reads(e.Indirect.Array, idx))
	}
	v := e.Const
	for name, c := range e.Coeffs {
		b, ok := env[name]
		if !ok {
			panic(fmt.Sprintf("ir: unbound variable %q", name))
		}
		v += c * b
	}
	return v
}

// FreeVars returns the variables the expression depends on, sorted.
func (e Expr) FreeVars() []string {
	set := map[string]bool{}
	e.addVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (e Expr) addVars(set map[string]bool) {
	if e.Indirect != nil {
		e.Indirect.Index.addVars(set)
		return
	}
	for v, c := range e.Coeffs {
		if c != 0 {
			set[v] = true
		}
	}
}

// String renders the expression.
func (e Expr) String() string {
	if e.Indirect != nil {
		return fmt.Sprintf("%s(%s)", e.Indirect.Array, e.Indirect.Index)
	}
	var parts []string
	vars := make([]string, 0, len(e.Coeffs))
	for v := range e.Coeffs {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		c := e.Coeffs[v]
		switch {
		case c == 0:
		case c == 1:
			parts = append(parts, v)
		case c == -1:
			parts = append(parts, "-"+v)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", c, v))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", e.Const))
	}
	return strings.ReplaceAll(strings.Join(parts, "+"), "+-", "-")
}

// Ref is an array reference A[e1, ..., ek].
type Ref struct {
	Array string
	Index []Expr
}

// R constructs a reference.
func R(array string, index ...Expr) Ref { return Ref{Array: array, Index: index} }

// String renders the reference.
func (r Ref) String() string {
	parts := make([]string, len(r.Index))
	for i, e := range r.Index {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(%s)", r.Array, strings.Join(parts, ","))
}

// Term is one summand of a right-hand side: Coef * Read.
type Term struct {
	Coef float64
	Read Ref
}

// RHS is the value expression of an assignment: Bias + sum of terms.
// Linear combinations are expressive enough for access-pattern studies
// while keeping the IR analyzable.
type RHS struct {
	Bias  float64
	Terms []Term
}

// Reads returns the read references of the RHS, including those buried
// in indirect subscripts.
func (r RHS) Reads() []Ref {
	var out []Ref
	for _, t := range r.Terms {
		out = append(out, t.Read)
		for _, e := range t.Read.Index {
			if e.Indirect != nil {
				out = append(out, Ref{Array: e.Indirect.Array, Index: []Expr{e.Indirect.Index}})
			}
		}
	}
	return out
}

// Stmt is a statement: an Assign or a Loop.
type Stmt interface {
	isStmt()
	render(indent string, b *strings.Builder)
}

// Assign is LHS = RHS.
type Assign struct {
	LHS Ref
	RHS RHS
}

func (*Assign) isStmt() {}

func (a *Assign) render(indent string, b *strings.Builder) {
	var parts []string
	if a.RHS.Bias != 0 || len(a.RHS.Terms) == 0 {
		parts = append(parts, fmt.Sprintf("%g", a.RHS.Bias))
	}
	for _, t := range a.RHS.Terms {
		if t.Coef == 1 {
			parts = append(parts, t.Read.String())
		} else {
			parts = append(parts, fmt.Sprintf("%g*%s", t.Coef, t.Read.String()))
		}
	}
	fmt.Fprintf(b, "%s%s = %s\n", indent, a.LHS, strings.Join(parts, " + "))
}

// Loop is DO Var = Lo, Hi, Step (inclusive bounds, Fortran style).
type Loop struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Step int // nonzero; negative for descending loops
	Body []Stmt
}

func (*Loop) isStmt() {}

func (l *Loop) render(indent string, b *strings.Builder) {
	if l.Step == 1 {
		fmt.Fprintf(b, "%sDO %s = %s, %s\n", indent, l.Var, l.Lo, l.Hi)
	} else {
		fmt.Fprintf(b, "%sDO %s = %s, %s, %d\n", indent, l.Var, l.Lo, l.Hi, l.Step)
	}
	for _, s := range l.Body {
		s.render(indent+"  ", b)
	}
	fmt.Fprintf(b, "%sEND DO\n", indent)
}

// Extent is a size-parametric array extent: Scale*n + Offset.
type Extent struct {
	Scale  int
	Offset int
}

// Fixed returns a constant extent.
func Fixed(k int) Extent { return Extent{Offset: k} }

// NPlus returns the extent n + k.
func NPlus(k int) Extent { return Extent{Scale: 1, Offset: k} }

// Size resolves the extent for a problem size.
func (e Extent) Size(n int) int { return e.Scale*n + e.Offset }

// ArrayDecl declares one array.
type ArrayDecl struct {
	Name  string
	Dims  []Extent
	Input bool // fully initialized before execution
	// InitLow, when set on a non-Input array, pre-defines linear cells
	// [0, InitLowCount) — boundary data for recurrences.
	InitLowCount int
}

// Program is a loop nest over declared arrays.
type Program struct {
	Name   string
	Arrays []ArrayDecl
	Body   []Stmt
}

// String renders the program in Fortran-flavored pseudocode.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			switch {
			case d.Scale == 0:
				dims[i] = fmt.Sprintf("%d", d.Offset)
			case d.Offset == 0:
				dims[i] = fmt.Sprintf("%d*n", d.Scale)
			default:
				dims[i] = fmt.Sprintf("%d*n%+d", d.Scale, d.Offset)
			}
		}
		role := "OUTPUT"
		if a.Input {
			role = "INPUT"
		}
		fmt.Fprintf(&b, "  ARRAY %s(%s) %s", a.Name, strings.Join(dims, ","), role)
		if !a.Input && a.InitLowCount > 0 {
			// Round-trip fidelity: the parser accepts INIT, so the
			// renderer must emit it or content addressing over the
			// canonical form would conflate distinct programs.
			fmt.Fprintf(&b, " INIT %d", a.InitLowCount)
		}
		b.WriteString("\n")
	}
	for _, s := range p.Body {
		s.render("  ", &b)
	}
	return b.String()
}

// decl returns the declaration of an array.
func (p *Program) decl(name string) (*ArrayDecl, bool) {
	for i := range p.Arrays {
		if p.Arrays[i].Name == name {
			return &p.Arrays[i], true
		}
	}
	return nil, false
}

// Validate checks name binding, ranks, and loop sanity.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("ir: program needs a name")
	}
	seen := map[string]bool{}
	for _, a := range p.Arrays {
		if a.Name == "" || a.Name == "n" {
			return fmt.Errorf("ir: invalid array name %q", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("ir: duplicate array %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Dims) == 0 {
			return fmt.Errorf("ir: array %q has no dimensions", a.Name)
		}
	}
	bound := map[string]bool{"n": true}
	return p.validateStmts(p.Body, bound)
}

func (p *Program) validateStmts(stmts []Stmt, bound map[string]bool) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Loop:
			if st.Step == 0 {
				return fmt.Errorf("ir: loop over %q has zero step", st.Var)
			}
			if bound[st.Var] {
				return fmt.Errorf("ir: loop variable %q shadows an enclosing binding", st.Var)
			}
			if err := p.checkVars(st.Lo, bound); err != nil {
				return err
			}
			if err := p.checkVars(st.Hi, bound); err != nil {
				return err
			}
			bound[st.Var] = true
			if err := p.validateStmts(st.Body, bound); err != nil {
				return err
			}
			delete(bound, st.Var)
		case *Assign:
			if err := p.checkRef(st.LHS, bound, true); err != nil {
				return err
			}
			for _, r := range st.RHS.Reads() {
				if err := p.checkRef(r, bound, false); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("ir: unknown statement type %T", s)
		}
	}
	return nil
}

func (p *Program) checkRef(r Ref, bound map[string]bool, isWrite bool) error {
	d, ok := p.decl(r.Array)
	if !ok {
		return fmt.Errorf("ir: reference to undeclared array %q", r.Array)
	}
	if len(r.Index) != len(d.Dims) {
		return fmt.Errorf("ir: %s has rank %d, referenced with %d subscripts",
			r.Array, len(d.Dims), len(r.Index))
	}
	if isWrite {
		for _, e := range r.Index {
			if e.Indirect != nil {
				return fmt.Errorf("ir: indirect write subscript on %s is not supported", r.Array)
			}
		}
	}
	for _, e := range r.Index {
		if err := p.checkVars(e, bound); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) checkVars(e Expr, bound map[string]bool) error {
	if e.Indirect != nil {
		if _, ok := p.decl(e.Indirect.Array); !ok {
			return fmt.Errorf("ir: indirection through undeclared array %q", e.Indirect.Array)
		}
		return p.checkVars(e.Indirect.Index, bound)
	}
	for _, v := range e.FreeVars() {
		if !bound[v] {
			return fmt.Errorf("ir: unbound variable %q", v)
		}
	}
	return nil
}
