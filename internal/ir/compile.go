package ir

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/loops"
)

// WrittenArrays returns the names of arrays assigned anywhere in the
// program, sorted.
func (p *Program) WrittenArrays() []string {
	set := map[string]bool{}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *Loop:
				walk(st.Body)
			case *Assign:
				set[st.LHS.Array] = true
			}
		}
	}
	walk(p.Body)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Assigns returns every assignment in the program in textual order,
// each paired with its enclosing loop variables (outermost first).
func (p *Program) Assigns() []AssignInfo {
	var out []AssignInfo
	var walk func(stmts []Stmt, loops []*Loop)
	walk = func(stmts []Stmt, enclosing []*Loop) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *Loop:
				walk(st.Body, append(enclosing, st))
			case *Assign:
				info := AssignInfo{Assign: st}
				info.Loops = append(info.Loops, enclosing...)
				out = append(out, info)
			}
		}
	}
	walk(p.Body, nil)
	return out
}

// AssignInfo pairs an assignment with its enclosing loops.
type AssignInfo struct {
	Assign *Assign
	Loops  []*Loop
}

// LinearizeRef expresses a reference's row-major linear address as an
// affine form over loop variables for a concrete problem size n:
// lin = sum coeffs[v]*v + konst. affine is false if any subscript is
// indirect.
func (p *Program) LinearizeRef(r Ref, n int) (coeffs map[string]int, konst int, affine bool) {
	d, ok := p.decl(r.Array)
	if !ok {
		return nil, 0, false
	}
	sizes := make([]int, len(d.Dims))
	for i, ext := range d.Dims {
		sizes[i] = ext.Size(n)
	}
	strides := make([]int, len(sizes))
	acc := 1
	for i := len(sizes) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= sizes[i]
	}
	coeffs = map[string]int{}
	for i, e := range r.Index {
		if e.Indirect != nil {
			return nil, 0, false
		}
		for v, c := range e.Coeffs {
			if v == "n" {
				konst += c * n * strides[i]
				continue
			}
			coeffs[v] += c * strides[i]
		}
		konst += e.Const * strides[i]
	}
	for v, c := range coeffs {
		if c == 0 {
			delete(coeffs, v)
		}
	}
	return coeffs, konst, true
}

// InputSeed gives each input array a distinct, bounded, deterministic
// value stream; values must be usable as indirection indices into
// arrays of length >= 2, so they stay small and positive.
func InputSeed(ordinal int) func(i int) float64 {
	phase := float64(ordinal+1) * 0.61803398875
	return func(i int) float64 {
		return 1.0 + 0.5*math.Sin(0.7*float64(i+1)+phase)
	}
}

// Kernel compiles the program into a runnable loops.Kernel. Input
// arrays are filled with deterministic data; every written array is an
// output. The kernel's problem size parameter binds the IR variable n.
func (p *Program) Kernel(defaultN int) (*loops.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if defaultN < 1 {
		defaultN = 1
	}
	outputs := p.WrittenArrays()
	if len(outputs) == 0 {
		return nil, fmt.Errorf("ir: program %s writes no arrays", p.Name)
	}
	decls := p.Arrays
	body := p.Body
	return &loops.Kernel{
		ID: 0, Key: "ir:" + p.Name, Name: p.Name,
		DefaultN: defaultN, MinN: 1,
		Notes: "compiled from the affine loop IR",
		Arrays: func(n int) []loops.Spec {
			specs := make([]loops.Spec, len(decls))
			for i, d := range decls {
				dims := make([]int, len(d.Dims))
				for j, ext := range d.Dims {
					sz := ext.Size(n)
					if sz < 1 {
						sz = 1
					}
					dims[j] = sz
				}
				spec := loops.Spec{Name: d.Name, Dims: dims}
				if d.Input {
					spec.Init = loops.InitAll(InputSeed(i))
				} else if d.InitLowCount > 0 {
					spec.Init = loops.InitRange(0, d.InitLowCount, InputSeed(i))
				}
				specs[i] = spec
			}
			return specs
		},
		Run: func(c *loops.Ctx, n int) {
			env := map[string]int{"n": n}
			execStmts(c, body, env)
		},
		Outputs: outputs,
	}, nil
}

func execStmts(c *loops.Ctx, stmts []Stmt, env map[string]int) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Loop:
			lo := evalAffine(st.Lo, env)
			hi := evalAffine(st.Hi, env)
			if st.Step > 0 {
				for v := lo; v <= hi; v += st.Step {
					env[st.Var] = v
					execStmts(c, st.Body, env)
				}
			} else {
				for v := lo; v >= hi; v += st.Step {
					env[st.Var] = v
					execStmts(c, st.Body, env)
				}
			}
			delete(env, st.Var)
		case *Assign:
			execAssign(c, st, env)
		}
	}
}

// evalAffine evaluates a bound or write subscript, which must be
// affine (Validate enforces this for writes; bounds with indirection
// panic here by design).
func evalAffine(e Expr, env map[string]int) int {
	return e.Eval(env, func(array string, idx int) float64 {
		panic(fmt.Sprintf("ir: indirection through %q in an affine-only position", array))
	})
}

func execAssign(c *loops.Ctx, a *Assign, env map[string]int) {
	lhs := c.A(a.LHS.Array)
	idx := make([]int, len(a.LHS.Index))
	for i, e := range a.LHS.Index {
		idx[i] = evalAffine(e, env)
	}
	rhs := a.RHS
	lhs.Set(func() float64 {
		// Reads — including indirect subscript loads — happen here, on
		// the owning PE only.
		reads := func(array string, i int) float64 {
			return c.A(array).Get(i)
		}
		v := rhs.Bias
		for _, t := range rhs.Terms {
			arr := c.A(t.Read.Array)
			ridx := make([]int, len(t.Read.Index))
			for i, e := range t.Read.Index {
				ridx[i] = e.Eval(env, reads)
			}
			v += t.Coef * arr.Get(ridx...)
		}
		return v
	}, idx...)
}
