package ir

// A line-oriented parser for the Fortran-flavored surface syntax the
// renderer (Program.String) emits, closing the loop: programs can be
// written by hand, parsed, converted to single assignment, classified
// and executed. Grammar (case-insensitive keywords):
//
//	PROGRAM name
//	ARRAY X(n+1) OUTPUT            extents: k | n | s*n | n+k | s*n+k
//	ARRAY Y(n+1, 8) INPUT
//	ARRAY Z(n+2) OUTPUT INIT 1     first k linear cells pre-defined
//	DO i = 1, n [, step]           bounds: affine in n and loop vars
//	  X(i) = 0.5 + Y(i) + 0.25*Z(i+1) + G(IX(i))
//	END DO
//	END
//
// Subscripts are affine expressions (sums of k, v, k*v) or a nested
// 1-D reference (indirection). Right-hand sides are linear
// combinations: an optional constant bias plus coef*Ref terms.

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError locates a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("ir: line %d: %s", e.Line, e.Msg) }

type parser struct {
	lines []string
	pos   int
	prog  *Program
}

// Parse parses the surface syntax into a Program and validates it.
func Parse(src string) (*Program, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty, non-comment line, trimmed.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) peek() (string, bool) {
	save := p.pos
	line, ok := p.next()
	p.pos = save
	return line, ok
}

func keyword(line, kw string) (rest string, ok bool) {
	if len(line) >= len(kw) && strings.EqualFold(line[:len(kw)], kw) {
		r := line[len(kw):]
		if r == "" || r[0] == ' ' || r[0] == '\t' {
			return strings.TrimSpace(r), true
		}
	}
	return "", false
}

func (p *parser) parseProgram() error {
	line, ok := p.next()
	if !ok {
		return p.errf("empty input")
	}
	name, ok := keyword(line, "PROGRAM")
	if !ok || name == "" {
		return p.errf("expected 'PROGRAM <name>', got %q", line)
	}
	p.prog = &Program{Name: name}
	for {
		line, ok := p.peek()
		if !ok {
			return p.errf("missing END")
		}
		if _, isEnd := keyword(line, "END"); isEnd && !startsDo(line) {
			if rest, isEndDo := keyword(line, "END"); isEndDo && strings.EqualFold(rest, "DO") {
				return p.errf("unmatched END DO")
			}
			p.next()
			return nil
		}
		if rest, isArr := keyword(line, "ARRAY"); isArr {
			p.next()
			if err := p.parseArray(rest); err != nil {
				return err
			}
			continue
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return err
		}
		p.prog.Body = append(p.prog.Body, stmt)
	}
}

func startsDo(line string) bool {
	_, ok := keyword(line, "DO")
	return ok
}

// parseArray parses `X(n+1, 8) INPUT|OUTPUT [INIT k]`.
func (p *parser) parseArray(rest string) error {
	open := strings.Index(rest, "(")
	closeIdx := strings.Index(rest, ")")
	if open < 1 || closeIdx < open {
		return p.errf("malformed array declaration %q", rest)
	}
	decl := ArrayDecl{Name: strings.TrimSpace(rest[:open])}
	for _, dim := range strings.Split(rest[open+1:closeIdx], ",") {
		ext, err := parseExtent(strings.TrimSpace(dim))
		if err != nil {
			return p.errf("array %s: %v", decl.Name, err)
		}
		decl.Dims = append(decl.Dims, ext)
	}
	tail := strings.Fields(rest[closeIdx+1:])
	if len(tail) == 0 {
		return p.errf("array %s: missing INPUT/OUTPUT role", decl.Name)
	}
	switch strings.ToUpper(tail[0]) {
	case "INPUT":
		decl.Input = true
	case "OUTPUT":
	default:
		return p.errf("array %s: role must be INPUT or OUTPUT, got %q", decl.Name, tail[0])
	}
	if len(tail) >= 2 {
		if !strings.EqualFold(tail[1], "INIT") || len(tail) < 3 {
			return p.errf("array %s: expected 'INIT <count>'", decl.Name)
		}
		k, err := strconv.Atoi(tail[2])
		if err != nil || k < 0 {
			return p.errf("array %s: bad INIT count %q", decl.Name, tail[2])
		}
		decl.InitLowCount = k
	}
	p.prog.Arrays = append(p.prog.Arrays, decl)
	return nil
}

// parseExtent parses k | n | s*n | n+k | s*n+k.
func parseExtent(s string) (Extent, error) {
	e, err := parseAffine(s)
	if err != nil {
		return Extent{}, err
	}
	if e.Indirect != nil {
		return Extent{}, fmt.Errorf("extent %q may not be indirect", s)
	}
	ext := Extent{Offset: e.Const}
	for v, c := range e.Coeffs {
		if v != "n" {
			return Extent{}, fmt.Errorf("extent %q may only reference n", s)
		}
		ext.Scale = c
	}
	return ext, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line, _ := p.next()
	if rest, ok := keyword(line, "DO"); ok {
		return p.parseLoop(rest)
	}
	return p.parseAssign(line)
}

// parseLoop parses `DO v = lo, hi [, step]` up to its END DO.
func (p *parser) parseLoop(rest string) (Stmt, error) {
	eq := strings.Index(rest, "=")
	if eq < 1 {
		return nil, p.errf("malformed DO header %q", rest)
	}
	l := &Loop{Var: strings.TrimSpace(rest[:eq]), Step: 1}
	parts := strings.Split(rest[eq+1:], ",")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, p.errf("DO needs 'lo, hi [, step]', got %q", rest)
	}
	var err error
	if l.Lo, err = parseAffine(strings.TrimSpace(parts[0])); err != nil {
		return nil, p.errf("DO lower bound: %v", err)
	}
	if l.Hi, err = parseAffine(strings.TrimSpace(parts[1])); err != nil {
		return nil, p.errf("DO upper bound: %v", err)
	}
	if len(parts) == 3 {
		step, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, p.errf("DO step: %v", err)
		}
		l.Step = step
	}
	for {
		line, ok := p.peek()
		if !ok {
			return nil, p.errf("DO %s: missing END DO", l.Var)
		}
		if rest, isEnd := keyword(line, "END"); isEnd && strings.EqualFold(strings.TrimSpace(rest), "DO") {
			p.next()
			return l, nil
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		l.Body = append(l.Body, body)
	}
}

// parseAssign parses `Ref = rhs`.
func (p *parser) parseAssign(line string) (Stmt, error) {
	eq := findTopLevelEq(line)
	if eq < 0 {
		return nil, p.errf("expected assignment, got %q", line)
	}
	lhs, err := parseRef(strings.TrimSpace(line[:eq]))
	if err != nil {
		return nil, p.errf("left-hand side: %v", err)
	}
	rhs, err := parseRHS(strings.TrimSpace(line[eq+1:]))
	if err != nil {
		return nil, p.errf("right-hand side: %v", err)
	}
	return &Assign{LHS: lhs, RHS: rhs}, nil
}

// findTopLevelEq locates the assignment '=' outside parentheses.
func findTopLevelEq(s string) int {
	depth := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case '=':
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// splitTopLevel splits on sep outside parentheses.
func splitTopLevel(s string, sep rune) []string {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

// parseRHS parses a linear combination: bias and coef*Ref terms joined
// by top-level '+' (use `+ -2*X(i)` for subtraction).
func parseRHS(s string) (RHS, error) {
	var rhs RHS
	for _, raw := range splitTopLevel(s, '+') {
		part := strings.TrimSpace(raw)
		if part == "" {
			return rhs, fmt.Errorf("empty term in %q", s)
		}
		// coef*Ref?
		if star := topLevelStar(part); star >= 0 {
			coef, err := strconv.ParseFloat(strings.TrimSpace(part[:star]), 64)
			if err != nil {
				return rhs, fmt.Errorf("bad coefficient in %q", part)
			}
			ref, err := parseRef(strings.TrimSpace(part[star+1:]))
			if err != nil {
				return rhs, err
			}
			rhs.Terms = append(rhs.Terms, Term{Coef: coef, Read: ref})
			continue
		}
		// Bare Ref (coef 1)?
		if strings.Contains(part, "(") {
			ref, err := parseRef(part)
			if err != nil {
				return rhs, err
			}
			rhs.Terms = append(rhs.Terms, Term{Coef: 1, Read: ref})
			continue
		}
		// Constant bias.
		bias, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return rhs, fmt.Errorf("bad constant %q", part)
		}
		rhs.Bias += bias
	}
	return rhs, nil
}

func topLevelStar(s string) int {
	depth := 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case '*':
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// parseRef parses `Name(sub, sub, ...)`.
func parseRef(s string) (Ref, error) {
	open := strings.Index(s, "(")
	if open < 1 || !strings.HasSuffix(s, ")") {
		return Ref{}, fmt.Errorf("malformed reference %q", s)
	}
	ref := Ref{Array: strings.TrimSpace(s[:open])}
	inner := s[open+1 : len(s)-1]
	for _, sub := range splitTopLevel(inner, ',') {
		e, err := parseSubscript(strings.TrimSpace(sub))
		if err != nil {
			return Ref{}, fmt.Errorf("%s: %v", ref.Array, err)
		}
		ref.Index = append(ref.Index, e)
	}
	if len(ref.Index) == 0 {
		return Ref{}, fmt.Errorf("reference %q has no subscripts", s)
	}
	return ref, nil
}

// parseSubscript parses either an affine expression or a nested 1-D
// reference (indirection).
func parseSubscript(s string) (Expr, error) {
	if open := strings.Index(s, "("); open >= 1 && strings.HasSuffix(s, ")") {
		// Nested reference: indirection.
		inner, err := parseSubscript(strings.TrimSpace(s[open+1 : len(s)-1]))
		if err != nil {
			return Expr{}, err
		}
		return Ind(strings.TrimSpace(s[:open]), inner), nil
	}
	return parseAffine(s)
}

// parseAffine parses sums of: INT | var | INT*var | -term.
func parseAffine(s string) (Expr, error) {
	out := Expr{Coeffs: map[string]int{}}
	// Normalize binary minus into +- so we can split on '+'.
	norm := strings.ReplaceAll(s, "-", "+-")
	if strings.HasPrefix(norm, "+-") {
		norm = norm[1:] // leading unary minus
	}
	for _, raw := range strings.Split(norm, "+") {
		part := strings.TrimSpace(raw)
		if part == "" {
			return Expr{}, fmt.Errorf("empty term in %q", s)
		}
		sign := 1
		if strings.HasPrefix(part, "-") {
			sign = -1
			part = strings.TrimSpace(part[1:])
		}
		if star := strings.Index(part, "*"); star >= 0 {
			k, err := strconv.Atoi(strings.TrimSpace(part[:star]))
			if err != nil {
				return Expr{}, fmt.Errorf("bad coefficient in %q", part)
			}
			v := strings.TrimSpace(part[star+1:])
			if !isIdent(v) {
				return Expr{}, fmt.Errorf("bad variable %q", v)
			}
			out.Coeffs[v] += sign * k
			continue
		}
		if isIdent(part) {
			out.Coeffs[part] += sign
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil {
			return Expr{}, fmt.Errorf("bad term %q in %q", part, s)
		}
		out.Const += sign * k
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
