package ir

// FuzzAffineProgram derives a single-assignment loop nest from fuzz
// bytes: one unit-step loop writing OUT(k) for k = 1..n, reading up to
// four input arrays at affine subscripts a*k+b with a in {1,2,3} and
// b in [0,12]. Every generated program is single-assignment by
// construction and in-bounds for any n, so engines can be
// property-tested against the sequential reference over arbitrary
// skews and rate mismatches.
func FuzzAffineProgram(seed []byte) *Program {
	if len(seed) == 0 {
		seed = []byte{1}
	}
	pick := func(i int) int { return int(seed[i%len(seed)]) }
	nReads := 1 + pick(0)%4
	p := &Program{
		Name: "fuzz",
		Arrays: []ArrayDecl{
			{Name: "OUT", Dims: []Extent{NPlus(1)}},
		},
	}
	var terms []Term
	for r := 0; r < nReads; r++ {
		a := 1 + pick(2*r+1)%3 // coefficient 1..3
		b := pick(2*r+2) % 13  // offset 0..12
		name := string(rune('A' + r))
		// Sized so a*n + b stays in range.
		p.Arrays = append(p.Arrays, ArrayDecl{
			Name:  name,
			Dims:  []Extent{{Scale: a, Offset: b + a + 1}},
			Input: true,
		})
		terms = append(terms, Term{
			Coef: 0.25 + float64(r)*0.5,
			Read: R(name, V("k").Times(a).PlusC(b)),
		})
	}
	p.Body = []Stmt{
		&Loop{Var: "k", Lo: C(1), Hi: N(), Step: 1, Body: []Stmt{
			&Assign{LHS: R("OUT", V("k")), RHS: RHS{Bias: 0.5, Terms: terms}},
		}},
	}
	return p
}
