package ir

// fuzz_test.go — native fuzz targets for the IR front end, run with
// -fuzz in CI (30s budget) and as plain regression tests over the
// seed corpus otherwise. The parser is the trust boundary of
// POST /v1/compile: arbitrary bytes must never panic it, and whatever
// it accepts must round-trip through the canonical rendering — the
// fixed point the kernel registry's content addressing stands on.

import (
	"strings"
	"testing"

	"repro/internal/loops"
)

// FuzzParse throws arbitrary source at the parser. Accepted programs
// must satisfy the canonicalization contract: the rendered form
// re-parses, renders identically (render∘parse is a fixed point on
// rendered programs), and the SA checker runs without panicking.
func FuzzParse(f *testing.F) {
	for _, p := range Samples() {
		f.Add(p.String() + "END\n")
	}
	f.Add("PROGRAM x\n  ARRAY A(n+1) OUTPUT\n  DO i = 1, n\n    A(i) = 1\n  END DO\nEND\n")
	f.Add("PROGRAM broken\n  NOT A STATEMENT\nEND\n")
	f.Add("DO DO DO")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		_ = p.CheckSA()
		rendered := p.String() + "END\n"
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered form does not re-parse: %v\n%s", err, rendered)
		}
		if again := p2.String() + "END\n"; again != rendered {
			t.Fatalf("render is not a parse fixed point:\n%q\n%q", rendered, again)
		}
	})
}

// FuzzAffineProgramRuns property-tests the generated-program pipeline:
// every FuzzAffineProgram output is SA-clean by construction, compiles
// to a runnable kernel, and survives the sequential reference engine.
func FuzzAffineProgramRuns(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{7, 3, 200, 41, 0})
	f.Add([]byte(strings.Repeat("\xff", 16)))
	f.Fuzz(func(t *testing.T, seed []byte) {
		p := FuzzAffineProgram(seed)
		if viol := Violations(p.CheckSA()); len(viol) != 0 {
			t.Fatalf("generated program has SA violations: %v", viol)
		}
		k, err := p.Kernel(8)
		if err != nil {
			t.Fatalf("generated program does not compile: %v", err)
		}
		if _, err := loops.RunSeq(k, 8); err != nil {
			t.Fatalf("generated program fails the reference engine: %v", err)
		}
	})
}
