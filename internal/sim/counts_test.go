package sim

import (
	"testing"

	"repro/internal/loops"
)

// TestAccessCountFormulas pins the exact read/write counts of the
// transcribed kernels: any change to a kernel's loop structure or its
// SA conversion shows up here as a formula mismatch.
func TestAccessCountFormulas(t *testing.T) {
	const n = 200
	cfg := NoCacheConfig(4, 32)
	cases := []struct {
		key    string
		writes int64
		reads  int64
	}{
		// k1: n writes; per k reads Y, ZX(k+10), ZX(k+11).
		{"k1", n, 3 * n},
		// k3: one scalar write; per k reads Z and X.
		{"k3", 1, 2 * n},
		// k5: writes 2..n; per i reads Z, Y, X(i-1).
		{"k5", n - 1, 3 * (n - 1)},
		// k6: writes 2..n; per i reads (i-1) B's and (i-1) W's.
		{"k6", n - 1, 2 * (n - 1) * n / 2},
		// k7: n writes; per k reads U x7, Z, Y.
		{"k7", n, 9 * n},
		// k9: n writes; per i reads rows 3,5,6,7..13 = 10 reads.
		{"k9", n, 10 * n},
		// k11: n writes; read Y(1) + per k>=2 reads X(k-1), Y(k).
		{"k11", n, 1 + 2*(n-1)},
		// k12: n writes; per k reads Y(k+1), Y(k).
		{"k12", n, 2 * n},
		// k22: 2n writes; Y reads U,V; W reads X, Y(k).
		{"k22", 2 * n, 4 * n},
		// k24: one scalar write; n reduction term reads.
		{"k24", 1, n},
	}
	for _, c := range cases {
		k, err := loops.ByKey(c.key)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(k, n, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		if res.Totals.Writes != c.writes {
			t.Errorf("%s: writes = %d, want %d", c.key, res.Totals.Writes, c.writes)
		}
		if res.Totals.Reads() != c.reads {
			t.Errorf("%s: reads = %d, want %d", c.key, res.Totals.Reads(), c.reads)
		}
	}
}

// TestICCGCountFormula pins kernel 2's structure: every write reads
// X(k), X(k-1), X(k+1), V(k), V(k+1).
func TestICCGCountFormula(t *testing.T) {
	const n = 256
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(k, n, NoCacheConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Reads() != 5*res.Totals.Writes {
		t.Errorf("reads = %d, want 5x writes (%d)", res.Totals.Reads(), 5*res.Totals.Writes)
	}
}

// TestKernel18CountFormula pins the three-phase structure: per (j,k)
// cell, phase 1 writes ZA+ZB with 8+8 reads, phase 2 writes ZU2+ZV2
// with 13+13 reads, phase 3 writes ZR2+ZZ2 with 4 reads.
func TestKernel18CountFormula(t *testing.T) {
	const n = 100
	k, err := loops.ByKey("k18")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(k, n, NoCacheConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	cells := int64(5 * (n - 1)) // k = 2..6, j = 2..n
	if res.Totals.Writes != 6*cells {
		t.Errorf("writes = %d, want %d", res.Totals.Writes, 6*cells)
	}
	if res.Totals.Reads() != (16+26+4)*cells {
		t.Errorf("reads = %d, want %d", res.Totals.Reads(), (16+26+4)*cells)
	}
}

// TestCountsScaleLinearly verifies that doubling n doubles the access
// volume for the linear kernels (guards against accidental quadratic
// transcriptions).
func TestCountsScaleLinearly(t *testing.T) {
	cfg := NoCacheConfig(4, 32)
	for _, key := range []string{"k1", "k5", "k7", "k12", "k20", "k22"} {
		k, err := loops.ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(k, 200, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(k, 400, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := a.Totals.Accesses(), b.Totals.Accesses()
		if rb < 19*ra/10 || rb > 21*ra/10 {
			t.Errorf("%s: accesses %d -> %d, not ~2x", key, ra, rb)
		}
	}
}
