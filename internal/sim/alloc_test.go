package sim

import (
	"testing"

	"repro/internal/loops"
)

// maxResultAllocs bounds the allocations of one memoized Scratch.Run.
// The access path (classify, Reduce, cache probes) is allocation-free
// in the steady state — the reduction scratch, the bound context and
// every slab are retained by the Scratch — so what remains is the O(1)
// construction of the independent Result: the struct, the PerPE copy,
// the traffic slab + row headers, the cache-stats slice, the checksum
// slice, and at most one layout boxing per array. The bound is a
// constant, independent of problem size, PE count and event count; a
// regression that reintroduces a per-access or per-element allocation
// blows through it by orders of magnitude.
const maxResultAllocs = 10

// TestScratchRunSteadyStateAllocs guards the sweep hot path: after the
// first run of a (kernel, n) pair, repeat runs — the memoized case that
// dominates a grid sweep — must not allocate beyond Result
// construction. Covers a plain kernel, a reduction-heavy kernel (the
// per-call `participated` scratch used to allocate here), and a wide
// machine so the bound provably does not scale with NPE.
func TestScratchRunSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		key string
		n   int
		cfg Config
	}{
		{"k1", 1000, PaperConfig(8, 32)},
		{"k24", 500, PaperConfig(8, 32)},  // reductions every iteration
		{"k24", 500, PaperConfig(64, 16)}, // wide machine, small pages
		{"k2", 512, NoCacheConfig(16, 32)},
	}
	for _, c := range cases {
		k, err := loops.ByKey(c.key)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch()
		if _, err := s.Run(k, c.n, c.cfg); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := s.Run(k, c.n, c.cfg); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > maxResultAllocs {
			t.Errorf("%s n=%d npe=%d: %.0f allocs per memoized Scratch.Run, want <= %d (Result construction only)",
				c.key, c.n, c.cfg.NPE, allocs, maxResultAllocs)
		}
	}
}
