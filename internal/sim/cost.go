package sim

import (
	"fmt"

	"repro/internal/network"
)

// CostModel prices the access classes in abstract machine cycles. The
// paper's §9 lists "a more sophisticated simulation will better
// explore the problems of execution time and network contention" as
// the next step; this is that model, deliberately simple and fully
// parameterized. Defaults reflect the era's loosely-coupled machines:
// local memory ~1 cycle, a cache probe ~2, a remote page round trip
// tens of cycles of software overhead plus per-hop wire time.
type CostModel struct {
	WriteCycles  float64 // per local write
	LocalCycles  float64 // per local read
	CachedCycles float64 // per cache-hit read
	RemoteCycles float64 // software overhead per remote read (request+reply handling)
	SendCycles   float64 // per outgoing message (occupancy on the sender)
	HopCycles    float64 // per network hop traversed by a message
	MsgService   float64 // link service time per message, for contention
}

// DefaultCostModel returns the baseline pricing.
func DefaultCostModel() CostModel {
	return CostModel{
		WriteCycles:  1,
		LocalCycles:  1,
		CachedCycles: 2,
		RemoteCycles: 40,
		SendCycles:   4,
		HopCycles:    2,
		MsgService:   4,
	}
}

// Timing is the execution-time estimate for one simulated run.
type Timing struct {
	PerPECycles []float64 // busy cycles per PE (compute + messaging)
	Makespan    float64   // max over PEs
	SerialWork  float64   // the same workload priced on one PE (all local)
	Speedup     float64   // SerialWork / Makespan
	Efficiency  float64   // Speedup / NPE
}

// String renders the headline numbers.
func (t Timing) String() string {
	return fmt.Sprintf("makespan=%.0f cycles, speedup=%.2fx, efficiency=%.1f%%",
		t.Makespan, t.Speedup, 100*t.Efficiency)
}

// Estimate prices the run under a cost model and a topology. Each PE
// pays for its own accesses, for every message it originates (requests
// it sends and replies it serves), and for the hops those messages
// traverse. SerialWork prices the identical access volume on one PE
// where every read is local — the quantity the paper's "potential for
// large-scale parallelism" implicitly compares against.
func (r *Result) Estimate(cm CostModel, topo network.Topology) Timing {
	npe := r.Config.NPE
	t := Timing{PerPECycles: make([]float64, npe)}
	for pe, c := range r.PerPE {
		busy := float64(c.Writes)*cm.WriteCycles +
			float64(c.LocalReads)*cm.LocalCycles +
			float64(c.CachedReads)*cm.CachedCycles +
			float64(c.RemoteReads)*cm.RemoteCycles
		if r.Traffic != nil {
			for dst, msgs := range r.Traffic[pe] {
				if msgs == 0 {
					continue
				}
				busy += float64(msgs) * (cm.SendCycles + cm.HopCycles*float64(topo.Hops(pe, dst)))
			}
		}
		t.PerPECycles[pe] = busy
		if busy > t.Makespan {
			t.Makespan = busy
		}
	}
	tot := r.Totals
	t.SerialWork = float64(tot.Writes)*cm.WriteCycles + float64(tot.Reads())*cm.LocalCycles
	if t.Makespan > 0 {
		t.Speedup = t.SerialWork / t.Makespan
	}
	if npe > 0 {
		t.Efficiency = t.Speedup / float64(npe)
	}
	return t
}

// Contention routes the run's implied message matrix over the topology
// and reports hottest-link utilization under an M/M/1 approximation,
// with the run's makespan as the observation window. The paper's
// abstract claims "the degradation in network performance due to
// multiprocessing is minimal" because so few accesses are remote —
// this makes that claim measurable.
func (r *Result) Contention(cm CostModel, topo network.Topology) network.ContentionReport {
	timing := r.Estimate(cm, topo)
	serviceOverDuration := 0.0
	if timing.Makespan > 0 {
		serviceOverDuration = cm.MsgService / timing.Makespan
	}
	return network.EstimateContention(topo, r.Traffic, serviceOverDuration)
}
