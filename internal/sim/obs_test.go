package sim

import (
	"reflect"
	"testing"

	"repro/internal/loops"
	"repro/internal/obs"
)

// TestInstrumentedRunsBitIdentical is the determinism contract of the
// observability layer: attaching a metrics registry must not change a
// single bit of the simulation Result — instrumentation observes, it
// never participates. This is what keeps the pinned bit-identical
// guarantees of the sweep engine intact when metrics are enabled.
func TestInstrumentedRunsBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		key string
		n   int
		npe int
	}{
		{"k1", 1000, 8},
		{"k2", 1024, 16},
		{"k6", 300, 4},
	} {
		k, err := loops.ByKey(tc.key)
		if err != nil {
			t.Fatal(err)
		}
		cfg := PaperConfig(tc.npe, 32)

		plain, err := Run(k, tc.n, cfg)
		if err != nil {
			t.Fatalf("%s uninstrumented: %v", tc.key, err)
		}

		s := NewScratch()
		s.Metrics = obs.NewRegistry()
		instrumented, err := s.Run(k, tc.n, cfg)
		if err != nil {
			t.Fatalf("%s instrumented: %v", tc.key, err)
		}
		if !reflect.DeepEqual(plain, instrumented) {
			t.Errorf("%s: instrumented result differs from uninstrumented\nplain: %+v\ninstr: %+v",
				tc.key, plain, instrumented)
		}

		// A second run through the same scratch exercises the
		// init-memoization fast path; it too must be bit-identical.
		memoized, err := s.Run(k, tc.n, cfg)
		if err != nil {
			t.Fatalf("%s memoized: %v", tc.key, err)
		}
		if !reflect.DeepEqual(plain, memoized) {
			t.Errorf("%s: memoized instrumented result differs from uninstrumented", tc.key)
		}
	}
}

// TestScratchRecordsMetrics checks the per-run signals: run counts,
// memoization hit/miss accounting, and a populated timing histogram.
func TestScratchRecordsMetrics(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := NewScratch()
	s.Metrics = reg
	for i := 0; i < 3; i++ {
		if _, err := s.Run(k, 500, PaperConfig(4, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MetricRuns).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricRuns, got)
	}
	// First run misses the memo; the two repeats hit it.
	if got := reg.Counter(MetricMemoMisses).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricMemoMisses, got)
	}
	if got := reg.Counter(MetricMemoHits).Value(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricMemoHits, got)
	}
	if got := reg.Histogram(MetricRunMicros, obs.MicrosBuckets).Count(); got != 3 {
		t.Errorf("%s observations = %d, want 3", MetricRunMicros, got)
	}
}
