package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/loops"
	"repro/internal/partition"
)

func TestPropertySimMatchesSeqOnRandomAffinePrograms(t *testing.T) {
	f := func(seed []byte, npeRaw, psRaw, ceRaw uint8) bool {
		p := ir.FuzzAffineProgram(seed)
		k, err := p.Kernel(96)
		if err != nil {
			return false
		}
		npe := 1 + int(npeRaw)%16
		ps := []int{4, 8, 16, 32, 64}[int(psRaw)%5]
		ce := []int{0, 64, 256}[int(ceRaw)%3]
		cfg := PaperConfig(npe, ps)
		cfg.CacheElems = ce

		seq, err := loops.RunSeq(k, 96)
		if err != nil {
			return false
		}
		res, err := Run(k, 96, cfg)
		if err != nil {
			return false
		}
		// Values identical.
		for i := range seq.Checksums {
			if seq.Checksums[i] != res.Checksums[i] {
				return false
			}
		}
		// Accounting invariants.
		tot := res.Totals
		if tot.LocalReads+tot.CachedReads+tot.RemoteReads != tot.Reads() {
			return false
		}
		if npe == 1 && (tot.RemoteReads != 0 || tot.CachedReads != 0) {
			return false
		}
		var perSum int64
		for _, c := range res.PerPE {
			perSum += c.Accesses()
		}
		if perSum != tot.Accesses() {
			return false
		}
		// Traffic consistency: two messages per remote read, symmetric.
		var traffic int64
		for s := range res.Traffic {
			for d := range res.Traffic[s] {
				traffic += res.Traffic[s][d]
			}
		}
		return traffic == 2*tot.RemoteReads
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCacheMonotoneOnRandomPrograms(t *testing.T) {
	// Property: for any generated program, growing the cache never
	// increases remote reads.
	f := func(seed []byte, npeRaw uint8) bool {
		p := ir.FuzzAffineProgram(seed)
		k, err := p.Kernel(96)
		if err != nil {
			return false
		}
		npe := 2 + int(npeRaw)%8
		prev := int64(math.MaxInt64)
		for _, ce := range []int{0, 64, 256, 1024} {
			cfg := PaperConfig(npe, 16)
			cfg.CacheElems = ce
			res, err := Run(k, 96, cfg)
			if err != nil {
				return false
			}
			if res.Totals.RemoteReads > prev {
				return false
			}
			prev = res.Totals.RemoteReads
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyLayoutsPreserveTotals(t *testing.T) {
	// Property: changing the layout never changes what is read or
	// written, only where it lands.
	f := func(seed []byte) bool {
		p := ir.FuzzAffineProgram(seed)
		k, err := p.Kernel(64)
		if err != nil {
			return false
		}
		base, err := Run(k, 64, NoCacheConfig(4, 8))
		if err != nil {
			return false
		}
		blk := NoCacheConfig(4, 8)
		blk.Layout = partition.KindBlock
		res, err := Run(k, 64, blk)
		if err != nil {
			return false
		}
		return res.Totals.Reads() == base.Totals.Reads() &&
			res.Totals.Writes == base.Totals.Writes &&
			res.Checksums[0] == base.Checksums[0]
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
