// Package sim is the reproduction of the paper's simulator (§6): it
// executes a Livermore kernel once in program order, applies the
// automatic partitioning rules to every assignment, and classifies each
// array access as write / local read / cached read / remote read,
// per PE.
//
// The counting model is exactly equivalent to per-PE execution with
// owner-computes screening: the PE that owns an assignment's target
// element evaluates its right-hand side, so each read is charged to
// that owner; a PE's subsequence of the global program order is its own
// program order, so its private cache sees the same reference stream
// either way.
//
// Values are computed alongside the counts from dense ground-truth
// storage, so the counting simulator also validates single assignment
// and reproduces the sequential engine's results bit-for-bit.
//
// The hot path is fully slice-indexed: array storage lives in one slab,
// page ownership is precomputed into a dense page-id -> PE table
// (replacing a layout interface call per access), and the per-PE caches
// run in the count-only slot mode of internal/cache (replacing a map
// lookup per access). Every PE's counters are private to the run and
// merged once at the end, so parallel sweeps over independent runs
// share no mutable state. A Scratch retains all of these allocations
// between runs; internal/sweep gives one to each worker so a parameter
// sweep reaches a near-zero-allocation steady state.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/samem"
	"repro/internal/stats"
)

// Config selects the simulated machine (§6: "the parameters that we
// varied were: number of processors, page size").
type Config struct {
	NPE        int            // number of processing elements
	PageSize   int            // elements per page
	CacheElems int            // per-PE cache capacity in elements; 0 disables caching
	Policy     cache.Policy   // replacement policy (paper: LRU)
	Layout     partition.Kind // partitioning scheme (paper: modulo)
	LayoutRun  int            // run length for block-cyclic layouts
	// ModelPartialFill, when set, snapshots the defined bits at fetch
	// time so a cached page that was only partially filled forces a
	// re-fetch when an undefined cell is touched (§4/§8 note on
	// partially filled pages). The paper's published counts ignore this;
	// it is provided as an ablation.
	ModelPartialFill bool
	// Tracer, when non-nil, receives every classified access in
	// program order (see internal/trace).
	Tracer Tracer
}

// Tracer receives the classified access stream of a run.
type Tracer interface {
	// Event reports one access: the PE it was charged to, its class,
	// the array, the linear element index, and the page.
	Event(pe int, kind stats.Access, array, lin, page int)
}

// StreamTracer is an optional extension of Tracer that additionally
// receives the structural markers of the reference stream: assignment
// openings and the per-term / end boundaries of host-processor
// reductions. The classified Event stream alone cannot distinguish an
// assignment's right-hand-side reads from replicated control reads, nor
// recover which reduction a term belongs to; these markers make the
// stream replayable under a different machine configuration
// (internal/refstream). A plain Tracer keeps working unchanged — the
// engine only calls the marker methods when the configured Tracer
// implements this interface.
type StreamTracer interface {
	Tracer
	// BeginAssign marks the opening of an assignment targeting linear
	// element lin of array `array`; the Events up to the matching Write
	// Event are the assignment's right-hand-side reads.
	BeginAssign(array, lin int)
	// BeginReduceTerm marks the start of reduction term i driven by
	// array `driver`; the Events up to the next marker are the term's
	// reads, charged to the owner of driver[i].
	BeginReduceTerm(driver, i int)
	// EndReduce marks the end of a reduction driven by array `driver`,
	// after which the host-collection messages are accounted.
	EndReduce(driver int)
}

// PaperConfig returns the paper's baseline: modulo layout, LRU, and the
// fixed 256-element cache of §6.
func PaperConfig(npe, pageSize int) Config {
	return Config{NPE: npe, PageSize: pageSize, CacheElems: 256, Policy: cache.LRU, Layout: partition.KindModulo}
}

// NoCacheConfig returns the paper's cache-less comparison point.
func NoCacheConfig(npe, pageSize int) Config {
	c := PaperConfig(npe, pageSize)
	c.CacheElems = 0
	return c
}

// Validate checks the configuration the way Run would: positive NPE
// and page size, non-negative cache capacity. Exported so front ends
// (e.g. the serving layer) reject bad configurations with the
// simulator's own rules instead of duplicating them.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	if c.NPE <= 0 {
		return fmt.Errorf("sim: NPE must be positive, got %d", c.NPE)
	}
	if c.PageSize <= 0 {
		return fmt.Errorf("sim: page size must be positive, got %d", c.PageSize)
	}
	if c.CacheElems < 0 {
		return fmt.Errorf("sim: negative cache size %d", c.CacheElems)
	}
	return nil
}

// Result reports one simulated run.
type Result struct {
	Kernel string
	N      int
	Config Config

	PerPE  stats.PerPE // per-PE access counters
	Totals stats.Counters
	Cache  []cache.Stats // per-PE cache statistics

	// ReduceSends and ReduceBcasts count the host-processor reduction
	// messages (§9 mechanism) implied by the run.
	ReduceSends  int64
	ReduceBcasts int64

	// Traffic is the implied message matrix: Traffic[src][dst] counts
	// the messages PE src sends to PE dst (page requests to owners,
	// page replies back, reduction sends/broadcasts). It feeds the §9
	// network-contention analysis.
	Traffic [][]int64

	Checksums []loops.ArraySum // output checksums (must match RunSeq)
}

// RemotePercent returns the run's "% of Reads Remote".
func (r *Result) RemotePercent() float64 { return r.Totals.RemotePercent() }

// engine is the counting simulator's state for one run. All per-array
// storage is slab-allocated and indexed by precomputed bases so the
// per-access path is pure slice arithmetic; the slabs live on between
// runs when the engine is owned by a Scratch.
type engine struct {
	cfg    Config
	stream StreamTracer // cfg.Tracer's marker extension, when implemented
	geoms  []partition.Geometry

	valBase  []int   // valBase[a]: offset of array a in vals/defined
	pageBase []int32 // pageBase[a]: offset of array a in the page-id space
	vals     []float64
	defined  []bool
	owners   []int32 // dense page id -> owning PE

	caches  []*cache.Cache
	perPE   stats.PerPE
	traffic [][]int64
	trafBuf []int64 // backing slab for traffic rows

	participated []bool // per-PE reduction scratch, reused across Reduce calls
	reduceS      int64
	reduceB      int64
	curPE        int // owner of the open assignment; -1 outside
	err          error
}

// message accounts one implied interconnect message from src to dst.
func (e *engine) message(src, dst int) {
	if src != dst {
		e.traffic[src][dst]++
	}
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// BeginAssign implements loops.Engine: the counting simulator evaluates
// every assignment once, attributing it to the owning PE.
func (e *engine) BeginAssign(a *loops.Arr, lin int) bool {
	if e.curPE != -1 {
		e.fail(fmt.Errorf("sim: nested assignment on %s[%d]", a.Name, lin))
		return false
	}
	e.curPE = int(e.owners[e.pageBase[a.ID]+int32(e.geoms[a.ID].PageOf(lin))])
	if e.stream != nil {
		e.stream.BeginAssign(a.ID, lin)
	}
	return true
}

// FinishAssign implements loops.Engine. The defined bitmap doubles as
// the single-assignment write-once check (what a standalone
// samem.Tracker would record): a second write to a defined cell is the
// paper's §3 runtime error.
func (e *engine) FinishAssign(a *loops.Arr, lin int, v float64) {
	pe := e.curPE
	e.curPE = -1
	at := e.valBase[a.ID] + lin
	if e.defined[at] {
		e.fail(&samem.DoubleWriteError{Array: a.Name, Index: lin})
		return
	}
	e.vals[at] = v
	e.defined[at] = true
	e.perPE[pe].Writes++ // writes are always local (§7)
	e.trace(pe, stats.Write, a.ID, lin, e.geoms[a.ID].PageOf(lin))
}

// Read implements loops.Engine. Inside an assignment the read is
// classified for the owning PE; outside (a control read, executed by
// the replicated loop body on every PE) it is classified for all PEs.
func (e *engine) Read(a *loops.Arr, lin int) float64 {
	at := e.valBase[a.ID] + lin
	if !e.defined[at] {
		e.fail(fmt.Errorf("sim: read of undefined %s[%d]", a.Name, lin))
		return 0
	}
	if e.curPE >= 0 {
		e.classify(e.curPE, a, lin)
	} else {
		for pe := 0; pe < e.cfg.NPE; pe++ {
			e.classify(pe, a, lin)
		}
	}
	return e.vals[at]
}

// classify charges one read of a[lin] to PE pe.
func (e *engine) classify(pe int, a *loops.Arr, lin int) {
	g := e.geoms[a.ID]
	page := g.PageOf(lin)
	gid := e.pageBase[a.ID] + int32(page)
	owner := int(e.owners[gid])
	if owner == pe {
		e.perPE[pe].LocalReads++
		e.trace(pe, stats.LocalRead, a.ID, lin, page)
		return
	}
	switch e.caches[pe].LookupSlot(int(gid), g.Offset(lin)) {
	case cache.Hit:
		e.perPE[pe].CachedReads++
		e.trace(pe, stats.CachedRead, a.ID, lin, page)
	case cache.Miss, cache.PartialMiss:
		// Remote fetch: the owner sends back the page, which is cached
		// locally (§4). A partial miss is the §4 re-fetch of a page that
		// was incomplete when first requested.
		e.perPE[pe].RemoteReads++
		e.trace(pe, stats.RemoteRead, a.ID, lin, page)
		e.message(pe, owner) // page request
		e.message(owner, pe) // page reply
		var def []bool
		if e.cfg.ModelPartialFill {
			lo, hi := g.PageBounds(page)
			base := e.valBase[a.ID]
			def = e.defined[base+lo : base+hi]
		}
		e.caches[pe].InsertSlot(int(gid), def)
	}
}

func (e *engine) trace(pe int, kind stats.Access, array, lin, page int) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Event(pe, kind, array, lin, page)
	}
}

func (e *engine) ownerOf(a *loops.Arr, lin int) int {
	return int(e.owners[e.pageBase[a.ID]+int32(e.geoms[a.ID].PageOf(lin))])
}

// Reduce implements loops.Engine via the host-processor collection
// mechanism (§9): each PE evaluates the terms whose driver elements it
// owns; PEs holding at least one term send a partial to the host and
// the host broadcasts the combined scalar.
func (e *engine) Reduce(op loops.Op, driver *loops.Arr, lo, hi int, term func(i int) float64) (float64, int) {
	if e.curPE != -1 {
		e.fail(fmt.Errorf("sim: reduction inside an assignment"))
		return 0, -1
	}
	e.participated = grown(e.participated, e.cfg.NPE)
	participated := e.participated
	acc, at := 0.0, -1
	first := true
	for i := lo; i < hi; i++ {
		pe := e.ownerOf(driver, i)
		if e.stream != nil {
			e.stream.BeginReduceTerm(driver.ID, i)
		}
		e.curPE = pe
		v := term(i)
		e.curPE = -1
		participated[pe] = true
		if first {
			acc, at = v, i
			if op == loops.OpSum {
				at = -1
			}
			first = false
			continue
		}
		idx := i
		if op == loops.OpSum {
			idx = -1
		}
		acc, at = loops.CombineReduce(op, acc, at, v, idx)
	}
	host := driver.ID % e.cfg.NPE // hostproc convention: arrays spread over PEs
	for pe, p := range participated {
		if p {
			e.reduceS++
			e.message(pe, host)
		}
	}
	if !first {
		e.reduceB += int64(e.cfg.NPE - 1) // host broadcasts the result
		for pe := 0; pe < e.cfg.NPE; pe++ {
			if pe != host {
				e.message(host, pe)
			}
		}
	}
	if e.stream != nil {
		e.stream.EndReduce(driver.ID)
	}
	return acc, at
}

// Scratch owns the simulator's reusable allocations: the value and
// defined-bit slabs, the owner tables, the per-PE slot caches (whose
// frames are recycled across runs) and the traffic matrix. Reusing a
// Scratch across runs removes nearly all steady-state allocation from a
// parameter sweep. A Scratch is not safe for concurrent use; give each
// worker its own.
type Scratch struct {
	e engine

	// Metrics, when non-nil, receives per-run observability signals
	// (run count, wall time, init-memoization hits); when nil the
	// process-wide obs.Default() is consulted, which is itself nil
	// unless a front end enabled it. Instrumentation is per-run, not
	// per-access, and never influences the computed Result.
	Metrics *obs.Registry

	// Memoized initialization state: consecutive runs of the same
	// kernel at the same problem size (the common case in a sweep,
	// whose grid order is kernel-major) restore the post-init slabs
	// with a copy instead of re-evaluating every Init function, and
	// reuse the bound loops.Ctx (array handles are pure functions of
	// the kernel, the problem size and the engine, which is stable for
	// the Scratch's lifetime).
	initKernel *loops.Kernel
	initN      int
	initVals   []float64
	initDef    []bool
	// The bound-context memo is keyed separately from the init slabs:
	// a failed run may have bound a context without ever reaching the
	// init snapshot, and the two must never disagree about (kernel, n).
	ctxKernel *loops.Kernel
	ctxN      int
	ctxSpecs  []loops.Spec
	ctx       *loops.Ctx
}

// Observability signal names recorded by Scratch.Run.
const (
	MetricRuns       = "sim.runs"
	MetricMemoHits   = "sim.init_memo_hits"
	MetricMemoMisses = "sim.init_memo_misses"
	MetricRunMicros  = "sim.run_us"
)

// registry resolves the effective metrics registry for this Scratch.
func (s *Scratch) registry() *obs.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return obs.Default()
}

// NewScratch returns an empty Scratch. Slabs grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// grown returns buf resized to n, reusing its backing array when
// possible, with every element zeroed.
func grown[T int | int32 | int64 | float64 | bool](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Run simulates kernel k at problem size n under cfg, reusing the
// Scratch's allocations. The returned Result is independent of the
// Scratch and remains valid after further runs.
func (s *Scratch) Run(k *loops.Kernel, n int, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := s.registry()
	var runStart time.Time
	if reg != nil {
		runStart = time.Now()
	}
	n = k.ClampN(n)
	e := &s.e
	e.cfg = cfg
	e.stream, _ = cfg.Tracer.(StreamTracer)
	e.curPE = -1
	e.err = nil
	e.reduceS, e.reduceB = 0, 0

	// Consecutive runs of the same (kernel, n) reuse the bound context
	// and array specs; the engine the handles point at is stable for
	// the Scratch's lifetime.
	if s.ctxKernel != k || s.ctxN != n {
		specs := k.Arrays(n)
		ctx, err := loops.Bind(e, specs)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		s.ctxSpecs, s.ctx = specs, ctx
		s.ctxKernel, s.ctxN = k, n
	}
	specs, ctx := s.ctxSpecs, s.ctx
	arrs := ctx.Arrays()

	// Lay the arrays out in the slabs and the dense page-id space.
	e.geoms = e.geoms[:0]
	e.valBase = e.valBase[:0]
	e.pageBase = e.pageBase[:0]
	totalElems, totalPages := 0, 0
	for _, a := range arrs {
		g, err := partition.NewGeometry(a.Len(), cfg.PageSize)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		e.geoms = append(e.geoms, g)
		e.valBase = append(e.valBase, totalElems)
		e.pageBase = append(e.pageBase, int32(totalPages))
		totalElems += a.Len()
		totalPages += g.Pages()
	}
	e.vals = grown(e.vals, totalElems)
	e.defined = grown(e.defined, totalElems)
	e.owners = grown(e.owners, totalPages)
	memoized := s.initKernel == k && s.initN == n && len(s.initVals) == totalElems
	if memoized {
		copy(e.vals, s.initVals)
		copy(e.defined, s.initDef)
	}
	for i, a := range arrs {
		g := e.geoms[i]
		l, err := partition.Make(cfg.Layout, cfg.NPE, g.Pages(), cfg.LayoutRun)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		base := e.pageBase[i]
		for p := 0; p < g.Pages(); p++ {
			e.owners[base+int32(p)] = int32(l.Owner(p))
		}
		if init := specs[i].Init; init != nil && !memoized {
			vb := e.valBase[i]
			for j := 0; j < a.Len(); j++ {
				if v, ok := init(j); ok {
					e.vals[vb+j] = v
					e.defined[vb+j] = true
				}
			}
		}
	}
	if !memoized {
		s.initKernel, s.initN = k, n
		s.initVals = append(s.initVals[:0], e.vals...)
		s.initDef = append(s.initDef[:0], e.defined...)
	}

	// Per-PE state: counters, caches, traffic rows.
	if cap(e.perPE) < cfg.NPE {
		e.perPE = make(stats.PerPE, cfg.NPE)
	} else {
		e.perPE = e.perPE[:cfg.NPE]
		for i := range e.perPE {
			e.perPE[i] = stats.Counters{}
		}
	}
	if len(e.caches) < cfg.NPE {
		e.caches = append(e.caches, make([]*cache.Cache, cfg.NPE-len(e.caches))...)
	}
	for pe := 0; pe < cfg.NPE; pe++ {
		if e.caches[pe] == nil {
			c, err := cache.NewSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
			}
			e.caches[pe] = c
		} else if err := e.caches[pe].ReconfigureSlots(cfg.CacheElems, cfg.PageSize, cfg.Policy, totalPages); err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
	}
	e.trafBuf = grown(e.trafBuf, cfg.NPE*cfg.NPE)
	if cap(e.traffic) < cfg.NPE {
		e.traffic = make([][]int64, cfg.NPE)
	}
	e.traffic = e.traffic[:cfg.NPE]
	for i := range e.traffic {
		e.traffic[i] = e.trafBuf[i*cfg.NPE : (i+1)*cfg.NPE]
	}

	k.Run(ctx, n)
	if e.err != nil {
		return nil, fmt.Errorf("sim: %s: %w", k.Key, e.err)
	}

	// The Result owns fresh copies of everything that must outlive the
	// Scratch's next run.
	res := &Result{
		Kernel: k.Key, N: n, Config: cfg,
		PerPE:        append(stats.PerPE(nil), e.perPE...),
		ReduceSends:  e.reduceS,
		ReduceBcasts: e.reduceB,
	}
	res.Totals = res.PerPE.Totals()
	res.Traffic = trafficMatrix(e.trafBuf, cfg.NPE)
	res.Cache = make([]cache.Stats, cfg.NPE)
	for pe := 0; pe < cfg.NPE; pe++ {
		res.Cache[pe] = e.caches[pe].Stats()
	}
	res.Checksums = make([]loops.ArraySum, 0, len(k.Outputs))
	for _, name := range k.Outputs {
		a := ctx.A(name)
		vb := e.valBase[a.ID]
		cs := loops.ArraySum{Name: name, Elems: a.Len()}
		for j := 0; j < a.Len(); j++ {
			if e.defined[vb+j] {
				cs.Sum += e.vals[vb+j]
				cs.Defined++
			}
		}
		res.Checksums = append(res.Checksums, cs)
	}
	if reg != nil {
		reg.Counter(MetricRuns).Inc()
		if memoized {
			reg.Counter(MetricMemoHits).Inc()
		} else {
			reg.Counter(MetricMemoMisses).Inc()
		}
		reg.Histogram(MetricRunMicros, obs.MicrosBuckets).Observe(time.Since(runStart).Microseconds())
	}
	return res, nil
}

// trafficMatrix copies an npe*npe row-major message-count slab into a
// fresh matrix backed by a single allocation (one slab, one row-header
// slice), keeping Result construction O(1) allocations.
func trafficMatrix(buf []int64, npe int) [][]int64 {
	slab := append([]int64(nil), buf[:npe*npe]...)
	rows := make([][]int64, npe)
	for i := range rows {
		rows[i] = slab[i*npe : (i+1)*npe : (i+1)*npe]
	}
	return rows
}

// Run simulates kernel k at problem size n under cfg and returns the
// access-distribution result. It allocates fresh simulator state; use a
// Scratch to amortize that over many runs.
func Run(k *loops.Kernel, n int, cfg Config) (*Result, error) {
	return NewScratch().Run(k, n, cfg)
}
