// Package sim is the reproduction of the paper's simulator (§6): it
// executes a Livermore kernel once in program order, applies the
// automatic partitioning rules to every assignment, and classifies each
// array access as write / local read / cached read / remote read,
// per PE.
//
// The counting model is exactly equivalent to per-PE execution with
// owner-computes screening: the PE that owns an assignment's target
// element evaluates its right-hand side, so each read is charged to
// that owner; a PE's subsequence of the global program order is its own
// program order, so its private cache sees the same reference stream
// either way.
//
// Values are computed alongside the counts from dense ground-truth
// storage, so the counting simulator also validates single assignment
// and reproduces the sequential engine's results bit-for-bit.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/samem"
	"repro/internal/stats"
)

// Config selects the simulated machine (§6: "the parameters that we
// varied were: number of processors, page size").
type Config struct {
	NPE        int            // number of processing elements
	PageSize   int            // elements per page
	CacheElems int            // per-PE cache capacity in elements; 0 disables caching
	Policy     cache.Policy   // replacement policy (paper: LRU)
	Layout     partition.Kind // partitioning scheme (paper: modulo)
	LayoutRun  int            // run length for block-cyclic layouts
	// ModelPartialFill, when set, snapshots the defined bits at fetch
	// time so a cached page that was only partially filled forces a
	// re-fetch when an undefined cell is touched (§4/§8 note on
	// partially filled pages). The paper's published counts ignore this;
	// it is provided as an ablation.
	ModelPartialFill bool
	// Tracer, when non-nil, receives every classified access in
	// program order (see internal/trace).
	Tracer Tracer
}

// Tracer receives the classified access stream of a run.
type Tracer interface {
	// Event reports one access: the PE it was charged to, its class,
	// the array, the linear element index, and the page.
	Event(pe int, kind stats.Access, array, lin, page int)
}

// PaperConfig returns the paper's baseline: modulo layout, LRU, and the
// fixed 256-element cache of §6.
func PaperConfig(npe, pageSize int) Config {
	return Config{NPE: npe, PageSize: pageSize, CacheElems: 256, Policy: cache.LRU, Layout: partition.KindModulo}
}

// NoCacheConfig returns the paper's cache-less comparison point.
func NoCacheConfig(npe, pageSize int) Config {
	c := PaperConfig(npe, pageSize)
	c.CacheElems = 0
	return c
}

func (c Config) validate() error {
	if c.NPE <= 0 {
		return fmt.Errorf("sim: NPE must be positive, got %d", c.NPE)
	}
	if c.PageSize <= 0 {
		return fmt.Errorf("sim: page size must be positive, got %d", c.PageSize)
	}
	if c.CacheElems < 0 {
		return fmt.Errorf("sim: negative cache size %d", c.CacheElems)
	}
	return nil
}

// Result reports one simulated run.
type Result struct {
	Kernel string
	N      int
	Config Config

	PerPE  stats.PerPE // per-PE access counters
	Totals stats.Counters
	Cache  []cache.Stats // per-PE cache statistics

	// ReduceSends and ReduceBcasts count the host-processor reduction
	// messages (§9 mechanism) implied by the run.
	ReduceSends  int64
	ReduceBcasts int64

	// Traffic is the implied message matrix: Traffic[src][dst] counts
	// the messages PE src sends to PE dst (page requests to owners,
	// page replies back, reduction sends/broadcasts). It feeds the §9
	// network-contention analysis.
	Traffic [][]int64

	Checksums []loops.ArraySum // output checksums (must match RunSeq)
}

// RemotePercent returns the run's "% of Reads Remote".
func (r *Result) RemotePercent() float64 { return r.Totals.RemotePercent() }

type engine struct {
	cfg     Config
	geoms   []partition.Geometry
	layouts []partition.Layout
	vals    [][]float64
	defined [][]bool
	track   []*samem.Tracker
	caches  []*cache.Cache
	perPE   stats.PerPE
	traffic [][]int64
	reduceS int64
	reduceB int64
	curPE   int // owner of the open assignment; -1 outside
	err     error
}

// message accounts one implied interconnect message from src to dst.
func (e *engine) message(src, dst int) {
	if src != dst {
		e.traffic[src][dst]++
	}
}

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// BeginAssign implements loops.Engine: the counting simulator evaluates
// every assignment once, attributing it to the owning PE.
func (e *engine) BeginAssign(a *loops.Arr, lin int) bool {
	if e.curPE != -1 {
		e.fail(fmt.Errorf("sim: nested assignment on %s[%d]", a.Name, lin))
		return false
	}
	e.curPE = e.ownerOf(a, lin)
	return true
}

// FinishAssign implements loops.Engine.
func (e *engine) FinishAssign(a *loops.Arr, lin int, v float64) {
	pe := e.curPE
	e.curPE = -1
	if err := e.track[a.ID].Mark(lin); err != nil {
		e.fail(err)
		return
	}
	e.vals[a.ID][lin] = v
	e.defined[a.ID][lin] = true
	e.perPE[pe].Writes++ // writes are always local (§7)
	e.trace(pe, stats.Write, a.ID, lin, e.geoms[a.ID].PageOf(lin))
}

// Read implements loops.Engine. Inside an assignment the read is
// classified for the owning PE; outside (a control read, executed by
// the replicated loop body on every PE) it is classified for all PEs.
func (e *engine) Read(a *loops.Arr, lin int) float64 {
	if !e.defined[a.ID][lin] {
		e.fail(fmt.Errorf("sim: read of undefined %s[%d]", a.Name, lin))
		return 0
	}
	if e.curPE >= 0 {
		e.classify(e.curPE, a, lin)
	} else {
		for pe := 0; pe < e.cfg.NPE; pe++ {
			e.classify(pe, a, lin)
		}
	}
	return e.vals[a.ID][lin]
}

// classify charges one read of a[lin] to PE pe.
func (e *engine) classify(pe int, a *loops.Arr, lin int) {
	g := e.geoms[a.ID]
	page := g.PageOf(lin)
	if e.layouts[a.ID].Owner(page) == pe {
		e.perPE[pe].LocalReads++
		e.trace(pe, stats.LocalRead, a.ID, lin, page)
		return
	}
	key := cache.Key{Array: a.ID, Page: page}
	off := g.Offset(lin)
	switch _, out := e.caches[pe].Lookup(key, off); out {
	case cache.Hit:
		e.perPE[pe].CachedReads++
		e.trace(pe, stats.CachedRead, a.ID, lin, page)
	case cache.Miss, cache.PartialMiss:
		// Remote fetch: the owner sends back the page, which is cached
		// locally (§4). A partial miss is the §4 re-fetch of a page that
		// was incomplete when first requested.
		e.perPE[pe].RemoteReads++
		e.trace(pe, stats.RemoteRead, a.ID, lin, page)
		owner := e.layouts[a.ID].Owner(page)
		e.message(pe, owner) // page request
		e.message(owner, pe) // page reply
		e.insertSnapshot(pe, a, key, page)
	}
}

func (e *engine) trace(pe int, kind stats.Access, array, lin, page int) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Event(pe, kind, array, lin, page)
	}
}

func (e *engine) insertSnapshot(pe int, a *loops.Arr, key cache.Key, page int) {
	g := e.geoms[a.ID]
	lo, hi := g.PageBounds(page)
	vals := make([]float64, hi-lo)
	copy(vals, e.vals[a.ID][lo:hi])
	var def []bool
	if e.cfg.ModelPartialFill {
		def = make([]bool, hi-lo)
		copy(def, e.defined[a.ID][lo:hi])
	}
	e.caches[pe].Insert(key, vals, def)
}

func (e *engine) ownerOf(a *loops.Arr, lin int) int {
	return e.layouts[a.ID].Owner(e.geoms[a.ID].PageOf(lin))
}

// Reduce implements loops.Engine via the host-processor collection
// mechanism (§9): each PE evaluates the terms whose driver elements it
// owns; PEs holding at least one term send a partial to the host and
// the host broadcasts the combined scalar.
func (e *engine) Reduce(op loops.Op, driver *loops.Arr, lo, hi int, term func(i int) float64) (float64, int) {
	if e.curPE != -1 {
		e.fail(fmt.Errorf("sim: reduction inside an assignment"))
		return 0, -1
	}
	participated := make([]bool, e.cfg.NPE)
	acc, at := 0.0, -1
	first := true
	for i := lo; i < hi; i++ {
		pe := e.ownerOf(driver, i)
		e.curPE = pe
		v := term(i)
		e.curPE = -1
		participated[pe] = true
		if first {
			acc, at = v, i
			if op == loops.OpSum {
				at = -1
			}
			first = false
			continue
		}
		idx := i
		if op == loops.OpSum {
			idx = -1
		}
		acc, at = loops.CombineReduce(op, acc, at, v, idx)
	}
	host := driver.ID % e.cfg.NPE // hostproc convention: arrays spread over PEs
	for pe, p := range participated {
		if p {
			e.reduceS++
			e.message(pe, host)
		}
	}
	if !first {
		e.reduceB += int64(e.cfg.NPE - 1) // host broadcasts the result
		for pe := 0; pe < e.cfg.NPE; pe++ {
			if pe != host {
				e.message(host, pe)
			}
		}
	}
	return acc, at
}

// Run simulates kernel k at problem size n under cfg and returns the
// access-distribution result.
func Run(k *loops.Kernel, n int, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n = k.ClampN(n)
	specs := k.Arrays(n)
	e := &engine{cfg: cfg, curPE: -1, perPE: make(stats.PerPE, cfg.NPE)}
	e.traffic = make([][]int64, cfg.NPE)
	for i := range e.traffic {
		e.traffic[i] = make([]int64, cfg.NPE)
	}
	ctx, err := loops.Bind(e, specs)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
	}
	for i, a := range ctx.Arrays() {
		g, err := partition.NewGeometry(a.Len(), cfg.PageSize)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		l, err := partition.Make(cfg.Layout, cfg.NPE, g.Pages(), cfg.LayoutRun)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		e.geoms = append(e.geoms, g)
		e.layouts = append(e.layouts, l)
		e.vals = append(e.vals, make([]float64, a.Len()))
		e.defined = append(e.defined, make([]bool, a.Len()))
		e.track = append(e.track, samem.NewTracker(a.Name, a.Len()))
		if init := specs[i].Init; init != nil {
			for j := 0; j < a.Len(); j++ {
				if v, ok := init(j); ok {
					e.vals[i][j] = v
					e.defined[i][j] = true
					if err := e.track[i].Mark(j); err != nil {
						return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
					}
				}
			}
		}
	}
	for pe := 0; pe < cfg.NPE; pe++ {
		c, err := cache.New(cfg.CacheElems, cfg.PageSize, cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", k.Key, err)
		}
		e.caches = append(e.caches, c)
	}

	k.Run(ctx, n)
	if e.err != nil {
		return nil, fmt.Errorf("sim: %s: %w", k.Key, e.err)
	}

	res := &Result{
		Kernel: k.Key, N: n, Config: cfg,
		PerPE:        e.perPE,
		Totals:       e.perPE.Totals(),
		ReduceSends:  e.reduceS,
		ReduceBcasts: e.reduceB,
		Traffic:      e.traffic,
	}
	for pe := 0; pe < cfg.NPE; pe++ {
		res.Cache = append(res.Cache, e.caches[pe].Stats())
	}
	for _, name := range k.Outputs {
		a := ctx.A(name)
		cs := loops.ArraySum{Name: name, Elems: a.Len()}
		for j := 0; j < a.Len(); j++ {
			if e.defined[a.ID][j] {
				cs.Sum += e.vals[a.ID][j]
				cs.Defined++
			}
		}
		res.Checksums = append(res.Checksums, cs)
	}
	return res, nil
}
