package sim

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
)

func mustKernel(t *testing.T, key string) *loops.Kernel {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestConfigValidation(t *testing.T) {
	k := mustKernel(t, "k1")
	bad := []Config{
		{NPE: 0, PageSize: 32},
		{NPE: 4, PageSize: 0},
		{NPE: 4, PageSize: 32, CacheElems: -1},
	}
	for _, cfg := range bad {
		if _, err := Run(k, 100, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSinglePEAllLocal(t *testing.T) {
	// §7: with one PE nothing is remote, cache or not.
	for _, key := range []string{"k1", "k2", "k6", "k18"} {
		k := mustKernel(t, key)
		res, err := Run(k, 200, PaperConfig(1, 32))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if res.Totals.RemoteReads != 0 || res.Totals.CachedReads != 0 {
			t.Errorf("%s on 1 PE: %+v", key, res.Totals)
		}
	}
}

func TestMatchedDistributionZeroRemote(t *testing.T) {
	// §7.1.1: "access patterns that fall into this class will always
	// achieve a 0%% remote access ratio", and "caching has no effect".
	k := mustKernel(t, "k14frag")
	for _, npe := range []int{1, 4, 8, 16, 64} {
		for _, cached := range []bool{true, false} {
			cfg := PaperConfig(npe, 32)
			if !cached {
				cfg.CacheElems = 0
			}
			res, err := Run(k, 1000, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Totals.RemoteReads != 0 {
				t.Errorf("MD kernel npe=%d cached=%v: %d remote reads",
					npe, cached, res.Totals.RemoteReads)
			}
		}
	}
}

func TestHydroFragmentMatchesPaperArithmetic(t *testing.T) {
	// Figure 1 and §8: Hydro Fragment (skew 10/11) at page size 32 has
	// 21 boundary-crossing reads per 96 (21.9%) without cache, and one
	// remote fetch per owned page (≈1%) with the 256-element cache.
	k := mustKernel(t, "k1")
	n := 1000
	noCache, err := Run(k, n, NoCacheConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if p := noCache.RemotePercent(); math.Abs(p-21.875) > 1.0 {
		t.Errorf("no-cache remote%% = %.3f, want ~21.9 (paper: 22%%)", p)
	}
	withCache, err := Run(k, n, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if p := withCache.RemotePercent(); p > 1.5 || p <= 0 {
		t.Errorf("cached remote%% = %.3f, want ~1 (paper: 1%%)", p)
	}
	// Page size 64 halves the boundary fraction.
	noCache64, err := Run(k, n, NoCacheConfig(8, 64))
	if err != nil {
		t.Fatal(err)
	}
	if p := noCache64.RemotePercent(); math.Abs(p-10.9) > 1.0 {
		t.Errorf("no-cache ps64 remote%% = %.3f, want ~10.9", p)
	}
}

func TestConservationAcrossConfigs(t *testing.T) {
	// Total reads and writes are invariant under caching, page size and
	// layout; caching can only convert remote reads into cached reads.
	for _, key := range []string{"k1", "k2", "k5", "k6", "k12", "k18", "k21"} {
		k := mustKernel(t, key)
		base, err := Run(k, 150, NoCacheConfig(8, 32))
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if base.Totals.Reads() == 0 {
			t.Fatalf("%s: no reads recorded", key)
		}
		configs := []Config{
			PaperConfig(8, 32),
			PaperConfig(8, 64),
			NoCacheConfig(8, 64),
			{NPE: 8, PageSize: 32, CacheElems: 1024, Policy: cache.LRU, Layout: partition.KindBlock},
		}
		for _, cfg := range configs {
			res, err := Run(k, 150, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", key, cfg, err)
			}
			if res.Totals.Reads() != base.Totals.Reads() {
				t.Errorf("%s %+v: reads %d != base %d", key, cfg, res.Totals.Reads(), base.Totals.Reads())
			}
			if res.Totals.Writes != base.Totals.Writes {
				t.Errorf("%s %+v: writes %d != base %d", key, cfg, res.Totals.Writes, base.Totals.Writes)
			}
			// Per-PE counters sum to totals.
			var sum int64
			for _, c := range res.PerPE {
				sum += c.Reads() + c.Writes
			}
			if sum != res.Totals.Reads()+res.Totals.Writes {
				t.Errorf("%s: per-PE sum %d != totals %d", key, sum, res.Totals.Reads()+res.Totals.Writes)
			}
		}
	}
}

func TestCacheNeverIncreasesRemote(t *testing.T) {
	for _, key := range []string{"k1", "k2", "k6", "k8", "k18"} {
		k := mustKernel(t, key)
		for _, npe := range []int{4, 16} {
			nc, err := Run(k, 200, NoCacheConfig(npe, 32))
			if err != nil {
				t.Fatal(err)
			}
			wc, err := Run(k, 200, PaperConfig(npe, 32))
			if err != nil {
				t.Fatal(err)
			}
			if wc.Totals.RemoteReads > nc.Totals.RemoteReads {
				t.Errorf("%s npe=%d: cache increased remote reads %d -> %d",
					key, npe, nc.Totals.RemoteReads, wc.Totals.RemoteReads)
			}
		}
	}
}

func TestChecksumsMatchSequentialReference(t *testing.T) {
	// The counting simulator must not perturb values: checksums equal
	// the sequential reference bit-for-bit.
	for _, k := range loops.All() {
		n := k.DefaultN
		if n > 200 {
			n = 200
		}
		seq, err := loops.RunSeq(k, n)
		if err != nil {
			t.Fatalf("%s seq: %v", k.Key, err)
		}
		res, err := Run(k, n, PaperConfig(8, 32))
		if err != nil {
			t.Fatalf("%s sim: %v", k.Key, err)
		}
		if len(res.Checksums) != len(seq.Checksums) {
			t.Fatalf("%s: checksum count mismatch", k.Key)
		}
		for i := range res.Checksums {
			if res.Checksums[i] != seq.Checksums[i] {
				t.Errorf("%s: checksum[%d] sim=%+v seq=%+v",
					k.Key, i, res.Checksums[i], seq.Checksums[i])
			}
		}
	}
}

func TestICCGCyclicBehaviour(t *testing.T) {
	// Figure 2: without a cache ICCG is mostly remote; with the cache
	// the remote percentage falls sharply and keeps falling as PEs are
	// added (total cache capacity grows with the machine).
	k := mustKernel(t, "k2")
	n := 1024
	nc, err := Run(k, n, NoCacheConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if p := nc.RemotePercent(); p < 50 {
		t.Errorf("ICCG no-cache remote%% = %.1f, want high (paper: ->100%%)", p)
	}
	wc8, err := Run(k, n, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	wc32, err := Run(k, n, PaperConfig(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	// The cache collapses the CD pattern to a few percent at every PE
	// count ("caching and page size can reduce the percentage of remote
	// reads significantly", Figure 2 caption).
	if p := wc8.RemotePercent(); p > 5 {
		t.Errorf("ICCG cached remote%% at 8 PEs = %.1f, want < 5", p)
	}
	if p := wc32.RemotePercent(); p > 5 {
		t.Errorf("ICCG cached remote%% at 32 PEs = %.1f, want < 5", p)
	}
	// Doubling the page size halves the boundary-crossing fraction.
	wc32ps64, err := Run(k, n, PaperConfig(32, 64))
	if err != nil {
		t.Fatal(err)
	}
	if wc32ps64.RemotePercent() >= wc32.RemotePercent() {
		t.Errorf("larger pages should cut ICCG cached remote%%: ps64=%.1f ps32=%.1f",
			wc32ps64.RemotePercent(), wc32.RemotePercent())
	}
}

func TestHydro2DFigure3Decline(t *testing.T) {
	// Figure 3: 2-D Explicit Hydrodynamics, cached, ps 32 — the remote
	// percentage declines as PEs are added once the per-PE working set
	// fits the cache, while the no-cache series stays flat.
	k := mustKernel(t, "k18")
	n := k.DefaultN
	get := func(npe int, cached bool) float64 {
		cfg := PaperConfig(npe, 32)
		if !cached {
			cfg.CacheElems = 0
		}
		res, err := Run(k, n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.RemotePercent()
	}
	c8, c32 := get(8, true), get(32, true)
	if c32 >= c8 {
		t.Errorf("cached remote%% should decline 8->32 PEs: %.2f -> %.2f", c8, c32)
	}
	n8, n32 := get(8, false), get(32, false)
	if math.Abs(n8-n32) > 0.5 {
		t.Errorf("no-cache series should be flat: %.2f vs %.2f", n8, n32)
	}
	if n8 > 10 || n8 < 4 {
		t.Errorf("no-cache remote%% = %.2f, want in the paper's 0-8%% band (±)", n8)
	}
}

func TestRandomDistributionCacheResistant(t *testing.T) {
	// Figure 4: RD loops show large remote ratios "regardless of the
	// presence or absence of caching" at the paper's 256-element cache.
	k := mustKernel(t, "k6")
	nc, err := Run(k, 300, NoCacheConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := Run(k, 300, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if p := wc.RemotePercent(); p < 20 {
		t.Errorf("GLR cached remote%% = %.1f, want large (paper: 20-70%%)", p)
	}
	if nc.RemotePercent() < wc.RemotePercent() {
		t.Errorf("no-cache below cached: %.1f < %.1f", nc.RemotePercent(), wc.RemotePercent())
	}
	// §7.1.4/§8: a much larger cache rescues RD.
	big := PaperConfig(16, 32)
	big.CacheElems = 16384
	bc, err := Run(k, 300, big)
	if err != nil {
		t.Fatal(err)
	}
	if bc.RemotePercent() >= wc.RemotePercent()/2 {
		t.Errorf("large cache should rescue RD: 256-elem=%.1f 16k-elem=%.1f",
			wc.RemotePercent(), bc.RemotePercent())
	}
}

func TestLoadBalanceTypicalLoop(t *testing.T) {
	// Figure 5: on the 2-D hydro loop each of 64 PEs performs a
	// comparable number of local and remote reads.
	k := mustKernel(t, "k18")
	res, err := Run(k, 400, PaperConfig(64, 32))
	if err != nil {
		t.Fatal(err)
	}
	local := res.PerPE.Extract(0) // placeholder, replaced below
	_ = local
	locals := make([]int64, len(res.PerPE))
	remotes := make([]int64, len(res.PerPE))
	for i, c := range res.PerPE {
		locals[i] = c.LocalReads
		remotes[i] = c.RemoteReads
	}
	lb := balanceCV(locals)
	if lb > 0.35 {
		t.Errorf("local-read balance CV = %.3f, want < 0.35", lb)
	}
	var minW, maxW int64 = 1 << 62, 0
	for _, c := range res.PerPE {
		if c.Writes < minW {
			minW = c.Writes
		}
		if c.Writes > maxW {
			maxW = c.Writes
		}
	}
	if minW == 0 {
		t.Error("some PE performed no writes on a 64-PE run of k18")
	}
	if float64(maxW) > 2.0*float64(minW) {
		t.Errorf("write imbalance: min=%d max=%d", minW, maxW)
	}
}

func balanceCV(vals []int64) float64 {
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range vals {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(vals))) / mean
}

func TestModelPartialFillRefetches(t *testing.T) {
	// Producer fills the first half of A's page 0, a remote consumer
	// fetches the page (half-defined snapshot), the producer completes
	// the page, and the consumer then reads the second half: with
	// partial-fill modeling this is a PartialMiss and a re-fetch.
	k := &loops.Kernel{
		Key: "pfill", Name: "partial-fill synthetic", DefaultN: 64, MinN: 64,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{
				{Name: "A", Dims: []int{32}}, // exactly one page at ps 32
				{Name: "B", Dims: []int{64}}, // page 1 owned by PE 1
			}
		},
		Run: func(c *loops.Ctx, n int) {
			a, b := c.A("A"), c.A("B")
			for i := 0; i < 16; i++ {
				i := i
				a.Set(func() float64 { return float64(i) }, i)
			}
			for i := 0; i < 16; i++ {
				i := i
				b.Set(func() float64 { return a.Get(i) }, 32+i) // PE 1 fetches half-filled page
			}
			for i := 16; i < 32; i++ {
				i := i
				a.Set(func() float64 { return float64(i) }, i)
			}
			for i := 16; i < 32; i++ {
				i := i
				b.Set(func() float64 { return a.Get(i) }, 32+i) // hits stale snapshot
			}
		},
		Outputs: []string{"B"},
	}
	cfg := PaperConfig(2, 32)
	cfg.ModelPartialFill = true
	res, err := Run(k, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var partials, refreshes int64
	for _, cs := range res.Cache {
		partials += cs.PartialMisses
		refreshes += cs.Refreshes
	}
	if partials == 0 || refreshes == 0 {
		t.Errorf("expected partial-fill re-fetch: partials=%d refreshes=%d", partials, refreshes)
	}
	// Without the flag the same run records no partial misses and fewer
	// remote reads.
	res2, err := Run(k, 64, PaperConfig(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range res2.Cache {
		if cs.PartialMisses != 0 {
			t.Error("partial misses recorded with modeling disabled")
		}
	}
	if res2.Totals.RemoteReads >= res.Totals.RemoteReads {
		t.Errorf("partial-fill modeling should add remote reads: %d vs %d",
			res.Totals.RemoteReads, res2.Totals.RemoteReads)
	}
	// Values are exact either way.
	seq, err := loops.RunSeq(k, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksums[0] != seq.Checksums[0] {
		t.Error("partial-fill modeling perturbed values")
	}
}

func TestReduceMessagesCounted(t *testing.T) {
	k := mustKernel(t, "k3") // inner product via host reduction
	res, err := Run(k, 1000, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceSends != 8 {
		t.Errorf("ReduceSends = %d, want 8 (one per participating PE)", res.ReduceSends)
	}
	if res.ReduceBcasts != 7 {
		t.Errorf("ReduceBcasts = %d, want 7", res.ReduceBcasts)
	}
	// The matched gather itself is all local.
	if res.Totals.RemoteReads != 0 {
		t.Errorf("inner product should have 0 remote reads, got %d", res.Totals.RemoteReads)
	}
}

func TestBlockLayoutChangesDistribution(t *testing.T) {
	// §9: modulo vs division ("block") partitioning differ per loop; for
	// the skew-1 recurrence, block keeps neighbouring pages on the same
	// PE so there are strictly fewer boundary crossings than modulo.
	k := mustKernel(t, "k5")
	mod, err := Run(k, 1000, NoCacheConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	blk := NoCacheConfig(8, 32)
	blk.Layout = partition.KindBlock
	blkRes, err := Run(k, 1000, blk)
	if err != nil {
		t.Fatal(err)
	}
	if blkRes.Totals.RemoteReads >= mod.Totals.RemoteReads {
		t.Errorf("block layout should reduce k5 boundary remotes: block=%d modulo=%d",
			blkRes.Totals.RemoteReads, mod.Totals.RemoteReads)
	}
}

func TestAllKernelsAllConfigsRun(t *testing.T) {
	// Smoke: every kernel under a grid of configurations runs without
	// SA violations and with consistent accounting.
	configs := []Config{
		PaperConfig(4, 32),
		NoCacheConfig(16, 64),
		{NPE: 8, PageSize: 16, CacheElems: 128, Policy: cache.FIFO, Layout: partition.KindBlockCyclic, LayoutRun: 2},
	}
	for _, k := range loops.All() {
		n := k.DefaultN
		if n > 120 {
			n = 120
		}
		for _, cfg := range configs {
			res, err := Run(k, n, cfg)
			if err != nil {
				t.Fatalf("%s %+v: %v", k.Key, cfg, err)
			}
			tot := res.Totals
			if tot.LocalReads+tot.CachedReads+tot.RemoteReads != tot.Reads() {
				t.Fatalf("%s: read classes do not sum", k.Key)
			}
		}
	}
}

func TestPageSizeTooLargeDisablesCache(t *testing.T) {
	// Paper §7.1.2: "if the page size is too large, the work will not
	// spread over a sufficient number of PEs" — and a page larger than
	// the cache leaves zero frames, so caching silently degrades to
	// no-cache behaviour.
	k := mustKernel(t, "k1")
	cfg := PaperConfig(8, 512) // 512 > 256-element cache
	res, err := Run(k, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := Run(k, 1000, NoCacheConfig(8, 512))
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.CachedReads != 0 {
		t.Errorf("cached reads with zero frames: %d", res.Totals.CachedReads)
	}
	if res.Totals.RemoteReads != nc.Totals.RemoteReads {
		t.Errorf("zero-frame cache should equal no-cache: %d vs %d",
			res.Totals.RemoteReads, nc.Totals.RemoteReads)
	}
}
