package sim

import (
	"testing"

	"repro/internal/network"
)

func TestTrafficMatrixSymmetryOfRequestsAndReplies(t *testing.T) {
	// Every remote fetch is a request pe->owner plus a reply owner->pe,
	// so the traffic matrix restricted to page traffic is symmetric.
	k := mustKernel(t, "k1")
	res, err := Run(k, 1000, NoCacheConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for s := range res.Traffic {
		for d := range res.Traffic[s] {
			if res.Traffic[s][d] != res.Traffic[d][s] {
				t.Fatalf("traffic[%d][%d]=%d != traffic[%d][%d]=%d",
					s, d, res.Traffic[s][d], d, s, res.Traffic[d][s])
			}
			if s == d && res.Traffic[s][d] != 0 {
				t.Fatalf("self-traffic recorded at PE %d", s)
			}
			total += res.Traffic[s][d]
		}
	}
	// Two messages per remote read.
	if total != 2*res.Totals.RemoteReads {
		t.Errorf("traffic total = %d, want %d", total, 2*res.Totals.RemoteReads)
	}
}

func TestTrafficIncludesReduceMessages(t *testing.T) {
	k := mustKernel(t, "k3")
	res, err := Run(k, 1000, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for s := range res.Traffic {
		for d := range res.Traffic[s] {
			total += res.Traffic[s][d]
		}
	}
	// All reads are local in k3: traffic is purely reduction messages.
	// 7 sends to the host plus 7 broadcasts (the host's own send and
	// receive are local).
	if total != 14 {
		t.Errorf("reduce traffic = %d, want 14", total)
	}
}

func TestEstimateSinglePEIsSerial(t *testing.T) {
	k := mustKernel(t, "k1")
	res, err := Run(k, 1000, PaperConfig(1, 32))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Estimate(DefaultCostModel(), network.Bus{N: 1})
	if tm.Speedup < 0.999 || tm.Speedup > 1.001 {
		t.Errorf("1-PE speedup = %v, want 1", tm.Speedup)
	}
	if tm.Makespan != tm.SerialWork {
		t.Errorf("makespan %v != serial work %v", tm.Makespan, tm.SerialWork)
	}
}

func TestEstimateMatchedScalesNearLinearly(t *testing.T) {
	k := mustKernel(t, "k14frag")
	res, err := Run(k, 1024, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Estimate(DefaultCostModel(), network.NewMesh2D(16))
	if tm.Speedup < 12 {
		t.Errorf("MD speedup at 16 PEs = %.2f, want near-linear", tm.Speedup)
	}
	if tm.Efficiency < 0.75 || tm.Efficiency > 1.01 {
		t.Errorf("efficiency = %.2f", tm.Efficiency)
	}
	if len(tm.PerPECycles) != 16 {
		t.Errorf("per-PE cycles length = %d", len(tm.PerPECycles))
	}
	if tm.String() == "" {
		t.Error("timing rendering empty")
	}
}

func TestEstimateRemoteCostsHurt(t *testing.T) {
	// The same kernel with vs without cache: fewer remote reads must
	// mean a shorter makespan under any positive cost model.
	k := mustKernel(t, "k2")
	wc, err := Run(k, 1024, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	nc, err := Run(k, 1024, NoCacheConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	topo := network.NewMesh2D(16)
	if wcT, ncT := wc.Estimate(cm, topo), nc.Estimate(cm, topo); wcT.Makespan >= ncT.Makespan {
		t.Errorf("cache should shorten the run: %v vs %v", wcT.Makespan, ncT.Makespan)
	}
}

func TestContentionReport(t *testing.T) {
	k := mustKernel(t, "k6")
	res, err := Run(k, 300, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	mesh := res.Contention(cm, network.NewMesh2D(16))
	bus := res.Contention(cm, network.Bus{N: 16})
	if mesh.TotalMsgs == 0 {
		t.Fatal("no messages routed")
	}
	if mesh.TotalMsgs != bus.TotalMsgs {
		t.Errorf("topology changed message count: %d vs %d", mesh.TotalMsgs, bus.TotalMsgs)
	}
	if bus.MaxLinkLoad < mesh.MaxLinkLoad {
		t.Errorf("bus hottest link %d below mesh %d", bus.MaxLinkLoad, mesh.MaxLinkLoad)
	}
	if mesh.Utilization <= 0 || mesh.Utilization >= 1 {
		t.Errorf("utilization = %v", mesh.Utilization)
	}
}

func TestContentionMinimalForSD(t *testing.T) {
	// The abstract's claim: so few accesses are remote that network
	// degradation is minimal. For the SD exemplar at the paper's
	// machine size, the hottest mesh link stays well under 10% busy.
	k := mustKernel(t, "k1")
	res, err := Run(k, 1000, PaperConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Contention(DefaultCostModel(), network.NewMesh2D(16))
	if rep.Utilization > 0.1 {
		t.Errorf("SD utilization = %.4f, want < 0.1", rep.Utilization)
	}
}
