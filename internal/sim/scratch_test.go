package sim

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
)

// TestScratchReuseMatchesFreshRuns drives one Scratch through a mixed
// grid of kernels and configurations — changing kernel, problem size,
// PE count, page size, cache size, policy and layout between runs — and
// requires every Result to be identical to a fresh sim.Run. This is the
// correctness contract that lets the sweep engine reuse one Scratch per
// worker.
func TestScratchReuseMatchesFreshRuns(t *testing.T) {
	type point struct {
		key string
		n   int
		cfg Config
	}
	var pts []point
	add := func(key string, n int, cfg Config) { pts = append(pts, point{key, n, cfg}) }
	add("k1", 200, PaperConfig(8, 32))
	add("k1", 200, PaperConfig(8, 32)) // exact repeat (memoized init path)
	add("k1", 200, NoCacheConfig(16, 64))
	add("k1", 300, PaperConfig(4, 8)) // same kernel, new n
	add("k2", 256, PaperConfig(16, 32))
	blk := PaperConfig(16, 32)
	blk.Layout = partition.KindBlock
	add("k2", 256, blk)
	pol := PaperConfig(8, 32)
	pol.Policy = cache.Random
	add("k2", 256, pol)
	pf := PaperConfig(8, 32)
	pf.ModelPartialFill = true
	add("k2", 256, pf)
	add("k18", 50, PaperConfig(32, 16)) // more PEs than before
	add("k6", 100, PaperConfig(2, 32))  // fewer PEs than before
	add("k24", 100, PaperConfig(4, 32)) // reduction kernel
	add("k1", 200, PaperConfig(8, 32))  // back to the first point

	s := NewScratch()
	for i, p := range pts {
		k, err := loops.ByKey(p.key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(k, p.n, p.cfg)
		if err != nil {
			t.Fatalf("point %d (%s): scratch run: %v", i, p.key, err)
		}
		want, err := Run(k, p.n, p.cfg)
		if err != nil {
			t.Fatalf("point %d (%s): fresh run: %v", i, p.key, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("point %d (%s n=%d npe=%d ps=%d ce=%d): scratch and fresh results differ\nscratch totals: %v\nfresh totals:   %v",
				i, p.key, p.n, p.cfg.NPE, p.cfg.PageSize, p.cfg.CacheElems, got.Totals, want.Totals)
		}
	}
}

// TestScratchResultsIndependent verifies a Result stays valid after the
// Scratch is reused: the engine's slabs must never be aliased into it.
func TestScratchResultsIndependent(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	first, err := s.Run(k1, 200, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := Run(k1, 200, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(k2, 512, NoCacheConfig(16, 64)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Error("first result mutated by a later run on the same Scratch")
	}
}

// TestScratchErrorRuns verifies error paths leave the Scratch usable.
func TestScratchErrorRuns(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	if _, err := s.Run(k, 100, Config{NPE: 0, PageSize: 32}); err == nil {
		t.Error("invalid NPE accepted")
	}
	bad := PaperConfig(8, 32)
	bad.Policy = cache.Policy(99)
	if _, err := s.Run(k, 100, bad); err == nil {
		t.Error("invalid policy accepted")
	}
	res, err := s.Run(k, 100, PaperConfig(8, 32))
	if err != nil {
		t.Fatalf("scratch unusable after error runs: %v", err)
	}
	want, err := Run(k, 100, PaperConfig(8, 32))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Error("post-error result differs from fresh run")
	}
}
