package samem

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPageWriteThenRead(t *testing.T) {
	p := NewPage("X", 0, 8)
	if err := p.Write(3, 1.5); err != nil {
		t.Fatal(err)
	}
	v, ok := p.TryRead(3)
	if !ok || v != 1.5 {
		t.Errorf("TryRead = (%v, %v), want (1.5, true)", v, ok)
	}
	if _, ok := p.TryRead(4); ok {
		t.Error("unwritten cell reads as defined")
	}
}

func TestPageDoubleWriteError(t *testing.T) {
	p := NewPage("A", 32, 8)
	if err := p.Write(2, 1); err != nil {
		t.Fatal(err)
	}
	err := p.Write(2, 2)
	if err == nil {
		t.Fatal("double write accepted")
	}
	dw, ok := err.(*DoubleWriteError)
	if !ok {
		t.Fatalf("error type %T, want *DoubleWriteError", err)
	}
	if dw.Array != "A" || dw.Index != 34 {
		t.Errorf("error fields = %+v, want A[34]", dw)
	}
	if !strings.Contains(err.Error(), "A[34]") {
		t.Errorf("error message %q lacks location", err.Error())
	}
	// The original value must be preserved.
	if v, _ := p.TryRead(2); v != 1 {
		t.Errorf("value clobbered by rejected write: %v", v)
	}
}

func TestDoubleWriteErrorAnonymous(t *testing.T) {
	e := &DoubleWriteError{Index: 7}
	if !strings.Contains(e.Error(), "7") {
		t.Errorf("message %q lacks index", e.Error())
	}
}

func TestPageDeferredRead(t *testing.T) {
	p := NewPage("X", 0, 4)
	ch := make(chan float64, 1)
	if _, ok := p.ReadOrWait(1, ch); ok {
		t.Fatal("read of undefined cell returned immediately")
	}
	if p.PendingWaiters() != 1 {
		t.Errorf("PendingWaiters = %d, want 1", p.PendingWaiters())
	}
	if err := p.Write(1, 42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-ch:
		if v != 42 {
			t.Errorf("deferred read delivered %v, want 42", v)
		}
	case <-time.After(time.Second):
		t.Fatal("deferred read never completed")
	}
	if p.PendingWaiters() != 0 {
		t.Errorf("waiters not drained: %d", p.PendingWaiters())
	}
	// A later read is immediate.
	if v, ok := p.ReadOrWait(1, ch); !ok || v != 42 {
		t.Errorf("post-write read = (%v, %v)", v, ok)
	}
}

func TestPageManyDeferredReaders(t *testing.T) {
	p := NewPage("X", 0, 4)
	const readers = 10
	chans := make([]chan float64, readers)
	for i := range chans {
		chans[i] = make(chan float64, 1)
		if _, ok := p.ReadOrWait(2, chans[i]); ok {
			t.Fatal("premature value")
		}
	}
	if err := p.Write(2, 7); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case v := <-ch:
			if v != 7 {
				t.Errorf("reader %d got %v", i, v)
			}
		case <-time.After(time.Second):
			t.Fatalf("reader %d starved", i)
		}
	}
}

func TestPageConcurrentReadersOneWriter(t *testing.T) {
	// Write-before-read enforced under concurrency: many goroutines read
	// cells before/while a single owner defines them.
	p := NewPage("X", 0, 64)
	var wg sync.WaitGroup
	results := make([]float64, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := make(chan float64, 1)
			if v, ok := p.ReadOrWait(i, ch); ok {
				results[i] = v
				return
			}
			results[i] = <-ch
		}(i)
	}
	for i := 0; i < 64; i++ {
		if err := p.Write(i, float64(i)*2); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, v := range results {
		if v != float64(i)*2 {
			t.Errorf("cell %d read %v, want %v", i, v, float64(i)*2)
		}
	}
}

func TestPageSnapshotIsolation(t *testing.T) {
	p := NewPage("X", 0, 4)
	if err := p.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	vals, def := p.Snapshot()
	if !def[0] || vals[0] != 1 || def[1] {
		t.Errorf("snapshot = %v %v", vals, def)
	}
	// Later writes must not leak into an old snapshot (it is a copy).
	if err := p.Write(1, 9); err != nil {
		t.Fatal(err)
	}
	if def[1] || vals[1] != 0 {
		t.Error("snapshot aliased live page")
	}
}

func TestPageFullAndDefinedCount(t *testing.T) {
	p := NewPage("X", 0, 3)
	if p.Full() {
		t.Error("empty page reports Full")
	}
	for i := 0; i < 3; i++ {
		if p.DefinedCount() != i {
			t.Errorf("DefinedCount = %d, want %d", p.DefinedCount(), i)
		}
		if err := p.Write(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Full() {
		t.Error("full page not Full")
	}
	if p.Len() != 3 || p.Base() != 0 {
		t.Errorf("Len/Base = %d/%d", p.Len(), p.Base())
	}
}

func TestPageReset(t *testing.T) {
	p := NewPage("X", 0, 4)
	if err := p.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.TryRead(0); ok {
		t.Error("cell still defined after Reset")
	}
	// Cell is writable again — this is the §5 re-initialization.
	if err := p.Write(0, 6); err != nil {
		t.Errorf("write after reset rejected: %v", err)
	}
}

func TestPageResetWithWaitersFails(t *testing.T) {
	p := NewPage("X", 0, 4)
	ch := make(chan float64, 1)
	p.ReadOrWait(0, ch)
	if err := p.Reset(); err == nil {
		t.Error("reset with queued readers accepted")
	}
}

func TestPageFill(t *testing.T) {
	p := NewPage("Y", 0, 4)
	for i := 0; i < 4; i++ {
		if err := p.Fill(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Full() {
		t.Error("filled page not full")
	}
	// Fill is still single-assignment.
	if err := p.Fill(0, 9); err == nil {
		t.Error("refill accepted")
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker("Z", 10)
	if tr.Len() != 10 || tr.Count() != 0 {
		t.Errorf("fresh tracker Len=%d Count=%d", tr.Len(), tr.Count())
	}
	if err := tr.Mark(4); err != nil {
		t.Fatal(err)
	}
	if !tr.Written(4) || tr.Written(5) {
		t.Error("Written bits wrong")
	}
	if tr.Count() != 1 {
		t.Errorf("Count = %d", tr.Count())
	}
	err := tr.Mark(4)
	if err == nil {
		t.Fatal("double mark accepted")
	}
	dw, ok := err.(*DoubleWriteError)
	if !ok || dw.Array != "Z" || dw.Index != 4 {
		t.Errorf("error = %v", err)
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker("Z", 4)
	for i := 0; i < 4; i++ {
		if err := tr.Mark(i); err != nil {
			t.Fatal(err)
		}
	}
	tr.Reset()
	if tr.Count() != 0 {
		t.Errorf("Count after reset = %d", tr.Count())
	}
	if err := tr.Mark(2); err != nil {
		t.Errorf("mark after reset rejected: %v", err)
	}
}

func TestPropertyTrackerMarkOncePerIndex(t *testing.T) {
	// Property: for any sequence of indices, the first Mark of each index
	// succeeds and every repeat fails, and Count equals the number of
	// distinct indices.
	f := func(raw []uint8) bool {
		tr := NewTracker("P", 256)
		distinct := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			err := tr.Mark(i)
			if distinct[i] && err == nil {
				return false
			}
			if !distinct[i] && err != nil {
				return false
			}
			distinct[i] = true
		}
		return tr.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPageWriteReadConsistency(t *testing.T) {
	// Property: after writing arbitrary (index, value) pairs with distinct
	// indices, every TryRead returns exactly the value written.
	f := func(vals []float64) bool {
		n := len(vals)
		if n == 0 {
			return true
		}
		if n > 128 {
			vals = vals[:128]
			n = 128
		}
		p := NewPage("Q", 0, n)
		for i, v := range vals {
			if err := p.Write(i, v); err != nil {
				return false
			}
		}
		for i, v := range vals {
			got, ok := p.TryRead(i)
			if !ok || got != v {
				return false
			}
		}
		return p.Full()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
