// Package samem implements the single-assignment tagged memory of Bic,
// Nagel & Roy (1989) §3: every cell is either undefined or defined, a
// defined cell can never be written again (a second write is a runtime
// error), and a read of an undefined cell is queued and resumed by the
// unique future write ("write-before-read enforced by hardware", as in
// HEP full/empty bits and dataflow I-structures).
//
// Two granularities are provided:
//
//   - Page: a concurrent page of cells with deferred-read queues, used by
//     the execution engine (internal/machine) as the unit of local storage
//     and of remote transfer.
//   - Tracker: a lightweight write-once bitmap used by the counting
//     simulator and the sequential reference engine to validate the single
//     assignment property without paying for queues.
package samem

import (
	"fmt"
	"sync"
)

// DoubleWriteError reports a violation of the single assignment rule:
// "writing more than once results in a runtime error" (§3).
type DoubleWriteError struct {
	Array string // array name, if known
	Index int    // linear element index within the array
}

// Error implements the error interface.
func (e *DoubleWriteError) Error() string {
	if e.Array == "" {
		return fmt.Sprintf("samem: double write to element %d", e.Index)
	}
	return fmt.Sprintf("samem: double write to %s[%d]", e.Array, e.Index)
}

// Page is one page of single-assignment cells. It is safe for concurrent
// use: the owning PE writes cells, while any PE (via the network layer)
// may read or request a snapshot. Reads of undefined cells register a
// waiter channel that the eventual write completes.
type Page struct {
	mu      sync.Mutex
	vals    []float64
	defined []bool
	nset    int
	waiters map[int][]chan<- float64

	array string // for error reporting
	base  int    // linear index of cell 0 within the array
}

// NewPage allocates an undefined page of n cells belonging to the named
// array at linear base offset base.
func NewPage(array string, base, n int) *Page {
	return &Page{
		vals:    make([]float64, n),
		defined: make([]bool, n),
		array:   array,
		base:    base,
	}
}

// Len returns the number of cells in the page.
func (p *Page) Len() int { return len(p.vals) }

// Base returns the linear index of the page's first cell.
func (p *Page) Base() int { return p.base }

// Write defines cell off (page-relative). It returns a *DoubleWriteError
// if the cell is already defined, and otherwise wakes every deferred
// reader of the cell.
func (p *Page) Write(off int, v float64) error {
	p.mu.Lock()
	if p.defined[off] {
		p.mu.Unlock()
		return &DoubleWriteError{Array: p.array, Index: p.base + off}
	}
	p.vals[off] = v
	p.defined[off] = true
	p.nset++
	ws := p.waiters[off]
	if ws != nil {
		delete(p.waiters, off)
	}
	p.mu.Unlock()
	// Waiter channels are buffered (capacity >= 1) by contract, so these
	// sends cannot block the writer.
	for _, ch := range ws {
		ch <- v
	}
	return nil
}

// TryRead returns the value of cell off and whether it is defined.
func (p *Page) TryRead(off int) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vals[off], p.defined[off]
}

// ReadOrWait returns the cell value immediately if defined. Otherwise it
// registers ch as a deferred reader (the paper's queued read request) and
// reports ok=false; the eventual Write will deliver the value on ch.
// ch must have capacity >= 1 so the writer never blocks.
func (p *Page) ReadOrWait(off int, ch chan<- float64) (v float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.defined[off] {
		return p.vals[off], true
	}
	if p.waiters == nil {
		p.waiters = make(map[int][]chan<- float64)
	}
	p.waiters[off] = append(p.waiters[off], ch)
	return 0, false
}

// Snapshot copies the page's current values and defined bits. This is the
// payload of a remote page fetch: under single assignment the defined
// cells of a snapshot can never change value, so the snapshot may be
// cached indefinitely; only cells undefined at snapshot time may require
// a re-fetch (§4, partially filled pages).
func (p *Page) Snapshot() (vals []float64, defined []bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	vals = make([]float64, len(p.vals))
	defined = make([]bool, len(p.defined))
	copy(vals, p.vals)
	copy(defined, p.defined)
	return vals, defined
}

// DefinedCount returns the number of defined cells.
func (p *Page) DefinedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nset
}

// Full reports whether every cell of the page is defined.
func (p *Page) Full() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nset == len(p.vals)
}

// PendingWaiters returns the number of queued deferred readers; useful
// for diagnosing deadlocked programs (reads of never-written cells).
func (p *Page) PendingWaiters() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ws := range p.waiters {
		n += len(ws)
	}
	return n
}

// Reset returns every cell to the undefined state. It is only legal once
// the host processor has established that all PEs have finished with the
// current version of the array (§5); resetting with deferred readers
// still queued indicates a protocol violation and returns an error.
func (p *Page) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.waiters) != 0 {
		return fmt.Errorf("samem: reset of %s page at %d with %d cells awaited",
			p.array, p.base, len(p.waiters))
	}
	for i := range p.defined {
		p.defined[i] = false
		p.vals[i] = 0
	}
	p.nset = 0
	return nil
}

// Fill defines cell off with initialization data, bypassing no rules:
// it is a plain Write intended for the pre-execution phase ("prior to
// execution, an array is either undefined or filled with initialization
// data", §3).
func (p *Page) Fill(off int, v float64) error { return p.Write(off, v) }

// Tracker is a write-once bitmap across an entire array's linear space.
// It validates the single assignment property at counting-simulation
// speed, without per-cell queues or locks. Not safe for concurrent use.
type Tracker struct {
	array   string
	written []bool
	count   int
}

// NewTracker returns a Tracker for n elements of the named array.
func NewTracker(array string, n int) *Tracker {
	return &Tracker{array: array, written: make([]bool, n)}
}

// Mark records a write to linear index i, returning a *DoubleWriteError
// if i was already written.
func (t *Tracker) Mark(i int) error {
	if t.written[i] {
		return &DoubleWriteError{Array: t.array, Index: i}
	}
	t.written[i] = true
	t.count++
	return nil
}

// Written reports whether linear index i has been written.
func (t *Tracker) Written(i int) bool { return t.written[i] }

// Count returns the number of written elements.
func (t *Tracker) Count() int { return t.count }

// Len returns the tracked array length.
func (t *Tracker) Len() int { return len(t.written) }

// Reset clears all write marks (array re-initialization).
func (t *Tracker) Reset() {
	for i := range t.written {
		t.written[i] = false
	}
	t.count = 0
}
