package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/loops"
)

// TestPropertyMachineMatchesSeqOnRandomPrograms drives the concurrent
// engine with randomly generated affine loop nests and requires
// bit-identical agreement with the sequential reference — arbitrary
// skews and read-rate mismatches across arbitrary machine shapes, under
// the race detector when enabled.
func TestPropertyMachineMatchesSeqOnRandomPrograms(t *testing.T) {
	f := func(seed []byte, npeRaw, psRaw uint8) bool {
		p := ir.FuzzAffineProgram(seed)
		k, err := p.Kernel(64)
		if err != nil {
			return false
		}
		npe := 1 + int(npeRaw)%8
		ps := []int{4, 8, 16, 32}[int(psRaw)%4]
		seq, err := loops.RunSeq(k, 64)
		if err != nil {
			return false
		}
		res, err := Run(k, 64, DefaultConfig(npe, ps))
		if err != nil {
			return false
		}
		for _, name := range k.Outputs {
			sv, sd := seq.Values[name], seq.DefinedOf[name]
			mv, md := res.Values[name], res.DefinedOf[name]
			for i := range sv {
				if sd[i] != md[i] {
					return false
				}
				if sd[i] && sv[i] != mv[i] {
					return false
				}
			}
		}
		// Request/reply pairing holds for any program shape.
		return res.PageRequests == res.PageReplies
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
