// Package machine executes Livermore kernels on a simulated
// loosely-coupled MIMD machine, making the paper's claims operational:
// one goroutine per PE runs the replicated loop body with
// owner-computes screening (§2), local memory is single-assignment
// tagged storage (§3), and every remote read is a real request/reply
// message exchange that fetches and caches a page snapshot (§4).
//
// No kernel contains any explicit synchronization; ordering emerges
// entirely from the write-once/read-many memory protocol, and — the
// point of single assignment — the computed values are deterministic
// regardless of PE interleaving.
package machine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/samem"
	"repro/internal/stats"
)

// Config selects the machine.
type Config struct {
	NPE        int
	PageSize   int
	CacheElems int            // per-PE cache capacity in elements; 0 disables caching
	Policy     cache.Policy   // page replacement policy
	Layout     partition.Kind // partitioning scheme
	LayoutRun  int            // block-cyclic run length
	Topology   Topo           // interconnect for hop accounting
	InboxDepth int            // per-PE inbox buffering (default 64)
	// Chaos injects scheduler yields at memory-access points to
	// diversify PE interleavings. Single assignment guarantees the
	// computed values are identical under any schedule; Chaos exists so
	// tests can hammer that claim.
	Chaos bool
	// DeadlockTimeout bounds how long the machine may make no progress
	// (no writes, no messages) while compute goroutines are still
	// running. A kernel that reads a cell no one ever writes blocks its
	// reader on a deferred read forever — on real hardware a hang, here
	// an error after two quiet intervals. Zero derives the default from
	// the machine and problem size (DefaultDeadline); negative disables
	// the watchdog.
	DeadlockTimeout time.Duration
	// Faults, when non-nil, runs the machine over a lossy interconnect:
	// page traffic is dropped, duplicated, delayed and stalled under
	// the seeded deterministic fault model (network.FaultConfig), and
	// the self-healing page protocol (sequence numbers, retry with
	// capped exponential backoff, duplicate suppression) keeps the
	// computed values bit-identical to a fault-free run — the paper's
	// §4 idempotence argument made executable. See docs/FAULTS.md.
	Faults *network.FaultConfig
	// Retry tunes the self-healing page protocol. The zero value keeps
	// the protocol off on a perfect interconnect and enables it with
	// defaults whenever Faults is set; setting MaxAttempts explicitly
	// enables it regardless.
	Retry RetryPolicy
	// Metrics, when non-nil, receives the machine's internal
	// observability signals (inbox depths, deferred-read queue lengths,
	// page-fetch latencies, watchdog stalls and aborts — see the
	// Metric* names). When nil, the process-wide obs.Default() is
	// consulted. Instrumentation observes; it never changes the
	// computed values, which single assignment pins regardless.
	Metrics *obs.Registry
}

// RetryPolicy tunes the self-healing page protocol: how long a
// requester waits for a page reply before retransmitting, how the wait
// grows, and when it gives up and diagnoses a dead link. Retransmission
// is safe because every page-protocol message is idempotent under
// single assignment: a re-request is answered with a fresh snapshot,
// and a duplicate reply only ever adds defined cells.
type RetryPolicy struct {
	// MaxAttempts is the total number of request transmissions per
	// fetch (first send plus retries) before the fetch is diagnosed as
	// a dead link and the machine aborts. 0 selects the default (20).
	MaxAttempts int
	// BaseTimeout is the reply wait before the first retransmission;
	// each retry doubles it. 0 selects the default (2ms).
	BaseTimeout time.Duration
	// MaxTimeout caps the exponential backoff. 0 selects the default
	// (100ms).
	MaxTimeout time.Duration
}

// retrySettings is a resolved, validated RetryPolicy.
type retrySettings struct {
	enabled     bool
	maxAttempts int
	base        time.Duration
	cap         time.Duration
}

func (c Config) retrySettings() retrySettings {
	s := retrySettings{
		enabled:     c.Faults != nil || c.Retry.MaxAttempts > 0,
		maxAttempts: c.Retry.MaxAttempts,
		base:        c.Retry.BaseTimeout,
		cap:         c.Retry.MaxTimeout,
	}
	if s.maxAttempts <= 0 {
		s.maxAttempts = 20
	}
	if s.base <= 0 {
		s.base = 2 * time.Millisecond
	}
	if s.cap < s.base {
		s.cap = 100 * time.Millisecond
		if s.cap < s.base {
			s.cap = s.base
		}
	}
	return s
}

// DefaultDeadline derives the watchdog's quiet-interval default from
// the machine and problem size: one microsecond per (PE × loop
// iteration) of legitimate work a quiet interval may contain, floored
// at 5s (small problems keep the historical default) and capped at 60s
// (a genuine hang still diagnoses within two intervals).
func DefaultDeadline(npe, n int) time.Duration {
	d := time.Duration(npe) * time.Duration(n) * time.Microsecond
	if d < 5*time.Second {
		return 5 * time.Second
	}
	if d > 60*time.Second {
		return 60 * time.Second
	}
	return d
}

// Observability signal names recorded by an instrumented machine.
const (
	// MetricRuns counts machine executions.
	MetricRuns = "machine.runs"
	// MetricFetchLatency is a histogram of remote page-fetch latencies
	// measured in progress steps (writes + page replies elsewhere in
	// the machine between the request and its reply) — a logical clock
	// that is meaningful across host speeds.
	MetricFetchLatency = "machine.page_fetch_latency_steps"
	// MetricDeferredLen is a histogram of the deferred-read queue
	// length sampled each time a remote read is deferred (§3/§4:
	// requests for still-undefined cells queue until the producer
	// writes). Deep buckets mean readers are racing far ahead of
	// producers.
	MetricDeferredLen = "machine.deferred_queue_len"
	// MetricWatchdogStalls counts quiet watchdog intervals (no write or
	// reply progress); two consecutive stalls abort the run.
	MetricWatchdogStalls = "machine.watchdog_stalls"
	// MetricAborts counts aborted machine runs.
	MetricAborts = "machine.aborts"
	// MetricFetchRetries counts page-request retransmissions after a
	// reply timeout (self-healing protocol; see docs/FAULTS.md).
	MetricFetchRetries = "machine.fetch_retries"
	// MetricDupReplies counts duplicate or stale page replies
	// suppressed at requesters (their snapshots merge monotonically
	// into the cache before being discarded).
	MetricDupReplies = "machine.dup_replies_suppressed"
	// MetricDupRequests counts duplicate page requests suppressed at
	// owners while the original request's deferred reply is pending.
	MetricDupRequests = "machine.dup_requests_suppressed"
	// MetricRedundantDiscards counts redundant replies discarded at a
	// full requester channel (covered by retransmission).
	MetricRedundantDiscards = "machine.redundant_replies_discarded"
)

// machineMetrics holds resolved instrument handles; every field is nil
// (a no-op) when the machine runs uninstrumented, so hot paths pay only
// nil checks.
type machineMetrics struct {
	fetchLatency      *obs.Histogram
	deferredLen       *obs.Histogram
	watchdogStalls    *obs.Counter
	aborts            *obs.Counter
	retries           *obs.Counter
	dupReplies        *obs.Counter
	dupRequests       *obs.Counter
	redundantDiscards *obs.Counter
}

func newMachineMetrics(r *obs.Registry) machineMetrics {
	return machineMetrics{
		fetchLatency:      r.Histogram(MetricFetchLatency, obs.StepBuckets),
		deferredLen:       r.Histogram(MetricDeferredLen, obs.DepthBuckets),
		watchdogStalls:    r.Counter(MetricWatchdogStalls),
		aborts:            r.Counter(MetricAborts),
		retries:           r.Counter(MetricFetchRetries),
		dupReplies:        r.Counter(MetricDupReplies),
		dupRequests:       r.Counter(MetricDupRequests),
		redundantDiscards: r.Counter(MetricRedundantDiscards),
	}
}

// Topo selects the interconnect topology.
type Topo int

// Interconnect topologies.
const (
	TopoBus Topo = iota
	TopoRing
	TopoMesh
	TopoHypercube
)

// DefaultConfig mirrors the paper's baseline machine.
func DefaultConfig(npe, pageSize int) Config {
	return Config{NPE: npe, PageSize: pageSize, CacheElems: 256, Policy: cache.LRU, Layout: partition.KindModulo}
}

func (c Config) topology() (network.Topology, error) {
	switch c.Topology {
	case TopoBus:
		return network.Bus{N: c.NPE}, nil
	case TopoRing:
		return network.Ring{N: c.NPE}, nil
	case TopoMesh:
		return network.NewMesh2D(c.NPE), nil
	case TopoHypercube:
		return network.NewHypercube(c.NPE)
	default:
		return nil, fmt.Errorf("machine: unknown topology %d", int(c.Topology))
	}
}

// Result reports one concurrent execution.
type Result struct {
	Kernel string
	N      int
	Config Config

	PerPE  stats.PerPE
	Totals stats.Counters
	Cache  []cache.Stats

	Net          network.Counters // network-wide traffic
	PageRequests int64
	PageReplies  int64
	ReduceMsgs   int64

	// Self-healing protocol counters; nonzero only when the retry
	// protocol ran (Faults set or Retry.MaxAttempts > 0).
	Retries     int64 // page-request retransmissions after reply timeouts
	DupReplies  int64 // duplicate/stale replies suppressed at requesters
	DupRequests int64 // duplicate requests suppressed at owners
	// Faults accounts the injected faults of the run (all-zero on a
	// perfect interconnect). Injected traffic is kept out of Net and
	// the per-type counts so paper figures stay comparable.
	Faults network.FaultStats

	Checksums []loops.ArraySum
	// Values and DefinedOf hold the final dense contents of each output
	// array, read back from the distributed pages, for exact comparison
	// against the sequential reference.
	Values    map[string][]float64
	DefinedOf map[string][]bool
}

// RemotePercent returns "% of Reads Remote" for the run.
func (r *Result) RemotePercent() float64 { return r.Totals.RemotePercent() }

// abortError unwinds a PE's compute goroutine when the machine aborts.
type abortError struct{ cause string }

func (e abortError) Error() string { return "machine: aborted: " + e.cause }

// arrayState is the machine-wide descriptor of one array: geometry,
// layout, and the distributed pages (page p conceptually resides in the
// local memory of its owner; the access paths enforce that discipline).
type arrayState struct {
	geom   partition.Geometry
	layout partition.Layout
	pages  []*samem.Page
	host   int // host processor for reductions and re-initialization (§5)
}

type machine struct {
	cfg    Config
	net    *network.Network
	faults *network.Faults // nil on a perfect interconnect
	retry  retrySettings
	arrays []*arrayState

	perPE   []stats.Counters
	caches  []*cache.Cache
	reduceC []chan network.Message

	// Owner-side duplicate-request suppression: per owner PE, the
	// (requester, sequence) pairs whose deferred reply is pending, so a
	// retransmitted request does not queue a second deferred wait. An
	// entry is removed when its reply fires; later duplicates then hit
	// the defined cell and are idempotently re-replied.
	pendMu  []sync.Mutex
	pending []map[pendKey]bool

	abortOnce sync.Once
	abort     chan struct{}
	errMu     sync.Mutex
	firstErr  error

	deferred  sync.WaitGroup
	deferredN atomic.Int64 // currently queued deferred reads
	progress  atomic.Int64 // writes + messages, for deadlock detection

	retries           atomic.Int64
	dupReplies        atomic.Int64
	dupRequests       atomic.Int64
	redundantDiscards atomic.Int64

	met machineMetrics
}

// pendKey identifies one outstanding fetch at its owner: the requester
// PE plus the requester-assigned fetch sequence number.
type pendKey struct {
	src int
	seq uint64
}

func (m *machine) fail(err error) {
	m.errMu.Lock()
	first := m.firstErr == nil
	if first {
		m.firstErr = err
	}
	m.errMu.Unlock()
	if first {
		m.met.aborts.Inc()
	}
	m.abortOnce.Do(func() { close(m.abort) })
}

// peEngine is PE pe's view of the machine; it implements loops.Engine.
type peEngine struct {
	m        *machine
	pe       int
	inAssign bool
	replyCh  chan network.Message
	waitCh   chan float64
	chaosRng uint64
	// nextSeq numbers this PE's page fetches; retransmissions of one
	// fetch share its sequence, so replies can be matched to fetches
	// and duplicates suppressed.
	nextSeq uint64
}

// maybeYield perturbs the schedule under Chaos: a deterministic
// per-PE pseudo-random stream decides where to hand the processor
// over, so repeated runs explore different interleavings (the stream
// interacts with the runtime's own nondeterminism).
func (e *peEngine) maybeYield() {
	if !e.m.cfg.Chaos {
		return
	}
	e.chaosRng ^= e.chaosRng << 13
	e.chaosRng ^= e.chaosRng >> 7
	e.chaosRng ^= e.chaosRng << 17
	if e.chaosRng&7 == 0 {
		runtime.Gosched()
	}
}

// BeginAssign implements owner-computes screening: the RHS is evaluated
// only when this PE owns the target element (§2/§3).
func (e *peEngine) BeginAssign(a *loops.Arr, lin int) bool {
	if e.inAssign {
		panic(abortError{cause: fmt.Sprintf("nested assignment on %s[%d]", a.Name, lin)})
	}
	st := e.m.arrays[a.ID]
	if st.layout.Owner(st.geom.PageOf(lin)) != e.pe {
		return false
	}
	e.inAssign = true
	return true
}

// FinishAssign implements loops.Engine: a local single-assignment write
// that also wakes any queued remote readers.
func (e *peEngine) FinishAssign(a *loops.Arr, lin int, v float64) {
	e.maybeYield()
	e.inAssign = false
	st := e.m.arrays[a.ID]
	page := st.geom.PageOf(lin)
	if err := st.pages[page].Write(st.geom.Offset(lin), v); err != nil {
		e.m.fail(err)
		panic(abortError{cause: err.Error()})
	}
	e.m.perPE[e.pe].Writes++
	e.m.progress.Add(1)
}

// Read implements loops.Engine: local reads come from the PE's own
// pages (blocking on undefined cells), remote reads go through the
// cache and the network.
func (e *peEngine) Read(a *loops.Arr, lin int) float64 {
	e.maybeYield()
	st := e.m.arrays[a.ID]
	page := st.geom.PageOf(lin)
	off := st.geom.Offset(lin)
	if st.layout.Owner(page) == e.pe {
		e.m.perPE[e.pe].LocalReads++
		return e.localRead(st, a, page, off)
	}
	key := cache.Key{Array: a.ID, Page: page}
	if v, out := e.m.caches[e.pe].Lookup(key, off); out == cache.Hit {
		e.m.perPE[e.pe].CachedReads++
		return v
	}
	// Remote read (§4): request the page from its owner; the reply — a
	// snapshot taken once the requested cell is defined — is cached.
	e.m.perPE[e.pe].RemoteReads++
	owner := st.layout.Owner(page)
	var fetchStart int64
	if e.m.met.fetchLatency != nil {
		fetchStart = e.m.progress.Load()
	}
	rep := e.fetchPage(a, page, off, owner)
	if e.m.met.fetchLatency != nil {
		e.m.met.fetchLatency.Observe(e.m.progress.Load() - fetchStart)
	}
	if e.m.retry.enabled {
		// Monotone merge: a reply can never carry less than the cache
		// already holds for the requested cell, but under reordering it
		// may be older elsewhere in the page — merging only ever adds.
		e.m.caches[e.pe].Merge(key, rep.Payload, rep.Defined)
	} else {
		e.m.caches[e.pe].Insert(key, rep.Payload, rep.Defined)
	}
	return rep.Payload[off]
}

// fetchPage performs one remote page fetch. On a perfect interconnect
// it is a single request/reply exchange. With the self-healing protocol
// enabled, the fetch carries a sequence number and survives a lossy
// interconnect: reply timeouts retransmit with capped exponential
// backoff, duplicate and stale replies are absorbed (their snapshots
// merge monotonically into the cache) and suppressed, and exhausting
// the attempt budget diagnoses the dead link — naming the page, owner
// and attempt count — instead of hanging.
//
// A reply whose requested cell is still undefined is the owner's
// deferred ack (see servePage): proof the link is alive and the wait is
// a legitimate §3 deferred read, not loss. It resets the attempt budget
// — only consecutive unanswered transmissions indict the link — so a
// slow producer at the end of a long cross-PE recurrence can never be
// misdiagnosed as a partition.
func (e *peEngine) fetchPage(a *loops.Arr, page, off, owner int) network.Message {
	m := e.m
	if !m.retry.enabled {
		req := network.Message{
			Type: network.PageRequest, Src: e.pe, Dst: owner,
			Array: a.ID, Page: page, Cell: off, Reply: e.replyCh,
		}
		if err := m.net.SendAbort(req, m.abort); err != nil {
			m.fail(err)
			panic(abortError{cause: err.Error()})
		}
		select {
		case rep := <-e.replyCh:
			return rep
		case <-m.abort:
			panic(abortError{cause: "abort while awaiting page reply"})
		}
	}

	seq := e.nextSeq
	e.nextSeq++
	e.drainStale()
	req := network.Message{
		Type: network.PageRequest, Src: e.pe, Dst: owner, Seq: seq,
		Array: a.ID, Page: page, Cell: off, Reply: e.replyCh,
	}
	timeout := m.retry.base
	start := time.Now()
	for attempt := 1; ; attempt++ {
		if err := m.net.SendAbort(req, m.abort); err != nil {
			m.fail(err)
			panic(abortError{cause: err.Error()})
		}
		timer := time.NewTimer(timeout)
	recv:
		for {
			select {
			case rep := <-e.replyCh:
				if rep.Seq != seq {
					e.absorbStale(rep)
					continue recv
				}
				if rep.Defined != nil && off < len(rep.Defined) && !rep.Defined[off] {
					// Deferred ack: the owner has the request and the
					// producer has not written yet. Bank the partial
					// snapshot and forgive the attempts so far.
					e.mergeReply(rep)
					attempt = 0
					continue recv
				}
				timer.Stop()
				return rep
			case <-timer.C:
				if attempt >= m.retry.maxAttempts {
					err := fmt.Errorf(
						"machine: PE %d gives up fetching %s page %d (cell %d) from owner PE %d after %d attempts over %v: link presumed dead",
						e.pe, a.Name, page, off, owner, attempt, time.Since(start).Round(time.Millisecond))
					m.fail(err)
					panic(abortError{cause: err.Error()})
				}
				m.retries.Add(1)
				m.met.retries.Inc()
				timeout *= 2
				if timeout > m.retry.cap {
					timeout = m.retry.cap
				}
				break recv
			case <-m.abort:
				timer.Stop()
				panic(abortError{cause: "abort while awaiting page reply"})
			}
		}
	}
}

// drainStale empties the reply channel of stragglers from earlier
// fetches before a new fetch starts listening.
func (e *peEngine) drainStale() {
	for {
		select {
		case rep := <-e.replyCh:
			e.absorbStale(rep)
		default:
			return
		}
	}
}

// absorbStale suppresses a duplicate or stale page reply. Suppression
// is safe — and free — under single assignment: a snapshot's defined
// cells are final, so the stale payload merges monotonically into the
// cache (it can only add information) before the message is discarded.
func (e *peEngine) absorbStale(rep network.Message) {
	e.m.dupReplies.Add(1)
	e.m.met.dupReplies.Inc()
	e.mergeReply(rep)
}

// mergeReply folds a reply's snapshot into the cache monotonically.
func (e *peEngine) mergeReply(rep network.Message) {
	if rep.Type != network.PageReply || rep.Payload == nil {
		return
	}
	e.m.caches[e.pe].Merge(cache.Key{Array: rep.Array, Page: rep.Page}, rep.Payload, rep.Defined)
}

func (e *peEngine) localRead(st *arrayState, a *loops.Arr, page, off int) float64 {
	p := st.pages[page]
	if v, ok := p.TryRead(off); ok {
		return v
	}
	// A local deferred read: queued until the (local) producer writes.
	// In a sequentially valid kernel this PE must itself produce the
	// cell later in its program order, so blocking here means the
	// kernel reads ahead of its own writes — abort rather than hang.
	if v, ok := p.ReadOrWait(off, e.waitCh); ok {
		return v
	}
	err := fmt.Errorf("machine: PE %d reads own undefined cell %s[%d] (read-before-write)",
		e.pe, a.Name, p.Base()+off)
	e.m.fail(err)
	panic(abortError{cause: err.Error()})
}

// Reduce implements the §9 host-processor vector-to-scalar mechanism:
// each PE folds the terms whose driver elements it owns, every PE sends
// its partial to the array's host, and the host broadcasts the result.
func (e *peEngine) Reduce(op loops.Op, driver *loops.Arr, lo, hi int, term func(i int) float64) (float64, int) {
	if e.inAssign {
		panic(abortError{cause: "reduction inside an assignment"})
	}
	st := e.m.arrays[driver.ID]
	acc, at := 0.0, -1
	first := true
	for i := lo; i < hi; i++ {
		if st.layout.Owner(st.geom.PageOf(i)) != e.pe {
			continue
		}
		v := term(i)
		idx := i
		if op == loops.OpSum {
			idx = -1
		}
		if first {
			acc, at = v, idx
			first = false
			continue
		}
		acc, at = loops.CombineReduce(op, acc, at, v, idx)
	}
	// A PE with no owned terms contributes the combine identity:
	// (0, -1). CombineReduce treats index -1 as "no value" for min/max
	// and 0 is the additive identity for sums.
	if first {
		acc, at = 0, -1
	}
	host := st.host
	if e.pe != host {
		msg := network.Message{
			Type: network.ReduceSend, Src: e.pe, Dst: host,
			Array: driver.ID, Value: acc, Cell: at,
		}
		if err := e.m.net.SendAbort(msg, e.m.abort); err != nil {
			e.m.fail(err)
			panic(abortError{cause: err.Error()})
		}
		select {
		case rep := <-e.m.reduceC[e.pe]:
			return rep.Value, rep.Cell
		case <-e.m.abort:
			panic(abortError{cause: "abort while awaiting reduction broadcast"})
		}
	}
	// Host: collect one partial per other PE, fold them in PE-rank
	// order so the floating-point result is deterministic regardless of
	// message arrival order, then broadcast.
	partialV := make([]float64, e.m.cfg.NPE)
	partialI := make([]int, e.m.cfg.NPE)
	for pe := range partialI {
		partialI[pe] = -1
	}
	partialV[host], partialI[host] = acc, at
	for received := 0; received < e.m.cfg.NPE-1; received++ {
		select {
		case msg := <-e.m.reduceC[e.pe]:
			partialV[msg.Src], partialI[msg.Src] = msg.Value, msg.Cell
		case <-e.m.abort:
			panic(abortError{cause: "abort while collecting reduction partials"})
		}
	}
	total, totalAt := 0.0, -1
	haveAny := false
	for pe := 0; pe < e.m.cfg.NPE; pe++ {
		if op != loops.OpSum && partialI[pe] == -1 {
			continue // identity partial
		}
		if !haveAny {
			total, totalAt = partialV[pe], partialI[pe]
			haveAny = true
			continue
		}
		total, totalAt = loops.CombineReduce(op, total, totalAt, partialV[pe], partialI[pe])
	}
	for pe := 0; pe < e.m.cfg.NPE; pe++ {
		if pe == host {
			continue
		}
		msg := network.Message{
			Type: network.ReduceBcast, Src: host, Dst: pe,
			Array: driver.ID, Value: total, Cell: totalAt,
		}
		if err := e.m.net.SendAbort(msg, e.m.abort); err != nil {
			e.m.fail(err)
			panic(abortError{cause: err.Error()})
		}
	}
	return total, totalAt
}

// watchdog aborts the machine if no write or reply happens for two
// consecutive intervals while compute goroutines are still running:
// the signature of a read that can never be satisfied.
func (m *machine) watchdog(interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := int64(-1)
	strikes := 0
	for {
		select {
		case <-done:
			return
		case <-m.abort:
			return
		case <-ticker.C:
			cur := m.progress.Load()
			if cur == last {
				strikes++
				m.met.watchdogStalls.Inc()
				if strikes >= 2 {
					m.fail(fmt.Errorf("machine: deadlock: no progress for %v — a deferred read can never be satisfied", 2*interval))
					return
				}
			} else {
				strikes = 0
				last = cur
			}
		}
	}
}

// handler is PE pe's message server: it satisfies remote page requests
// against the PE's local pages (queueing deferred replies for undefined
// cells) and forwards reduction traffic to the compute goroutine. The
// abort signal doubles as the quiesce signal at teardown: once every
// compute goroutine has finished, any message still in an inbox is a
// redundant retransmission no one is waiting on, so handlers stop
// serving before the deferred and fault layers are drained (serving
// later would race those layers' teardown waits).
func (m *machine) handler(pe int) {
	for {
		select {
		case msg, ok := <-m.net.Inbox(pe):
			if !ok {
				return
			}
			switch msg.Type {
			case network.PageRequest:
				m.servePage(pe, msg)
			case network.ReduceSend, network.ReduceBcast:
				select {
				case m.reduceC[pe] <- msg:
				case <-m.abort:
				}
			case network.Halt:
				return
			}
		case <-m.abort:
			return
		}
	}
}

func (m *machine) servePage(pe int, req network.Message) {
	st := m.arrays[req.Array]
	p := st.pages[req.Page]
	if _, ok := p.TryRead(req.Cell); ok {
		// Serving a defined cell is idempotent: a retransmitted request
		// simply earns a fresh snapshot (§4 — re-fetching a page is
		// always safe), so duplicates need no bookkeeping here.
		m.replySnapshot(pe, req, p)
		return
	}
	if m.retry.enabled {
		// Duplicate suppression for deferred requests: while the
		// original request's deferred reply is pending, retransmissions
		// of the same fetch must not queue a second wait — but each one
		// still earns a fresh partial-snapshot ack, so the requester
		// keeps seeing a live link however long the producer takes.
		key := pendKey{src: req.Src, seq: req.Seq}
		m.pendMu[pe].Lock()
		if m.pending[pe][key] {
			m.pendMu[pe].Unlock()
			m.dupRequests.Add(1)
			m.met.dupRequests.Inc()
			m.replySnapshot(pe, req, p)
			return
		}
		m.pending[pe][key] = true
		m.pendMu[pe].Unlock()
	}
	// Deferred remote read (§3/§4): queue until the producer writes the
	// requested cell, then reply with the page as it stands.
	ch := make(chan float64, 1)
	if _, ok := p.ReadOrWait(req.Cell, ch); ok {
		m.clearPending(pe, req)
		m.replySnapshot(pe, req, p)
		return
	}
	if m.retry.enabled {
		// Deferred ack: an immediate partial snapshot tells the
		// requester its request arrived and the wait is legitimate
		// (fetchPage resets its attempt budget on seeing one), keeping
		// a slow producer distinguishable from a dead link.
		m.replySnapshot(pe, req, p)
	}
	m.deferred.Add(1)
	m.met.deferredLen.Observe(m.deferredN.Add(1))
	go func() {
		defer m.deferredN.Add(-1)
		defer m.deferred.Done()
		select {
		case <-ch:
			// Clear before replying: if the reply is lost, the next
			// retransmission must find the cell defined and re-reply
			// rather than being suppressed against a dead wait.
			m.clearPending(pe, req)
			m.replySnapshot(pe, req, p)
		case <-m.abort:
			m.clearPending(pe, req)
		}
	}()
}

// clearPending removes a deferred request from the owner's duplicate
// suppression table once its reply has fired (or the machine aborted).
func (m *machine) clearPending(pe int, req network.Message) {
	if !m.retry.enabled {
		return
	}
	key := pendKey{src: req.Src, seq: req.Seq}
	m.pendMu[pe].Lock()
	delete(m.pending[pe], key)
	m.pendMu[pe].Unlock()
}

func (m *machine) replySnapshot(pe int, req network.Message, p *samem.Page) {
	m.progress.Add(1)
	vals, defined := p.Snapshot()
	rep := network.Message{
		Type: network.PageReply, Src: pe, Dst: req.Src, Seq: req.Seq,
		Array: req.Array, Page: req.Page, Payload: vals, Defined: defined,
	}
	if err := m.net.Reply(req, rep); err != nil {
		if m.retry.enabled && errors.Is(err, network.ErrReplyFull) {
			// A redundant reply with nowhere to land: the requester
			// already accepted a copy for this fetch. Discarding it is
			// semantically a network drop, which retransmission covers.
			m.redundantDiscards.Add(1)
			m.met.redundantDiscards.Inc()
			return
		}
		m.fail(err)
	}
}

// Run executes kernel k at problem size n on the concurrent machine.
func Run(k *loops.Kernel, n int, cfg Config) (*Result, error) {
	if cfg.NPE <= 0 {
		return nil, fmt.Errorf("machine: NPE must be positive, got %d", cfg.NPE)
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("machine: page size must be positive, got %d", cfg.PageSize)
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 64
	}
	n = k.ClampN(n)
	topo, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	net, err := network.New(cfg.NPE, topo, cfg.InboxDepth)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	net.Instrument(reg)
	reg.Counter(MetricRuns).Inc()
	m := &machine{cfg: cfg, net: net, retry: cfg.retrySettings(), abort: make(chan struct{}), met: newMachineMetrics(reg)}
	if cfg.Faults != nil {
		faults, err := network.NewFaults(*cfg.Faults, cfg.NPE)
		if err != nil {
			return nil, err
		}
		faults.Instrument(reg)
		if err := net.InjectFaults(faults); err != nil {
			return nil, err
		}
		m.faults = faults
	}
	if m.retry.enabled {
		m.pendMu = make([]sync.Mutex, cfg.NPE)
		m.pending = make([]map[pendKey]bool, cfg.NPE)
		for pe := range m.pending {
			m.pending[pe] = make(map[pendKey]bool)
		}
	}

	specs := k.Arrays(n)
	// Build one context per PE over shared array state.
	protoCtx, err := loops.Bind(&peEngine{m: m}, specs) // for geometry only
	if err != nil {
		return nil, fmt.Errorf("machine: %s: %w", k.Key, err)
	}
	for i, a := range protoCtx.Arrays() {
		g, err := partition.NewGeometry(a.Len(), cfg.PageSize)
		if err != nil {
			return nil, err
		}
		l, err := partition.Make(cfg.Layout, cfg.NPE, g.Pages(), cfg.LayoutRun)
		if err != nil {
			return nil, err
		}
		st := &arrayState{geom: g, layout: l, host: i % cfg.NPE}
		for p := 0; p < g.Pages(); p++ {
			lo, hi := g.PageBounds(p)
			st.pages = append(st.pages, samem.NewPage(a.Name, lo, hi-lo))
		}
		// Initialization data is loaded before execution (§3).
		if init := specs[i].Init; init != nil {
			for j := 0; j < a.Len(); j++ {
				if v, ok := init(j); ok {
					pg := g.PageOf(j)
					if err := st.pages[pg].Fill(g.Offset(j), v); err != nil {
						return nil, fmt.Errorf("machine: %s: %w", k.Key, err)
					}
				}
			}
		}
		m.arrays = append(m.arrays, st)
	}

	m.perPE = make([]stats.Counters, cfg.NPE)
	m.reduceC = make([]chan network.Message, cfg.NPE)
	for pe := 0; pe < cfg.NPE; pe++ {
		c, err := cache.New(cfg.CacheElems, cfg.PageSize, cfg.Policy)
		if err != nil {
			return nil, err
		}
		m.caches = append(m.caches, c)
		m.reduceC[pe] = make(chan network.Message, cfg.NPE+1)
	}

	var handlers sync.WaitGroup
	for pe := 0; pe < cfg.NPE; pe++ {
		handlers.Add(1)
		go func(pe int) {
			defer handlers.Done()
			m.handler(pe)
		}(pe)
	}

	var compute sync.WaitGroup
	for pe := 0; pe < cfg.NPE; pe++ {
		compute.Add(1)
		go func(pe int) {
			defer compute.Done()
			defer func() {
				if r := recover(); r != nil {
					if ae, ok := r.(abortError); ok {
						m.fail(ae)
						return
					}
					m.fail(fmt.Errorf("machine: PE %d panic: %v", pe, r))
				}
			}()
			// With retransmission on, one fetch can legitimately earn up
			// to two replies per attempt (a duplicate plus the real
			// copy); size the reply buffer so no redundant reply ever
			// needs discarding in the common case.
			replyDepth := 1
			if m.retry.enabled {
				replyDepth = 2*m.retry.maxAttempts + 4
			}
			eng := &peEngine{
				m: m, pe: pe,
				replyCh:  make(chan network.Message, replyDepth),
				waitCh:   make(chan float64, 1),
				chaosRng: 0x9e3779b97f4a7c15 ^ uint64(pe+1),
			}
			ctx, err := loops.Bind(eng, specs)
			if err != nil {
				m.fail(err)
				return
			}
			k.Run(ctx, n)
		}(pe)
	}
	watchdogDone := make(chan struct{})
	if cfg.DeadlockTimeout >= 0 {
		interval := cfg.DeadlockTimeout
		if interval == 0 {
			interval = DefaultDeadline(cfg.NPE, n)
		}
		go m.watchdog(interval, watchdogDone)
	}
	compute.Wait()
	close(watchdogDone)
	// Teardown order matters: with every compute goroutine done, every
	// fetch has been answered, so handlers are only serving redundant
	// retransmissions — quiesce them first (the abort signal releases
	// them), or a late-served request would register new deferred waits
	// and fault-layer deliveries behind the Waits below.
	m.abortOnce.Do(func() { close(m.abort) })
	handlers.Wait()
	m.deferred.Wait()
	// Drain the fault layer's delayed deliveries before the inboxes
	// close: a late copy either lands in a buffered inbox or is counted
	// as dropped, never sent on a closed channel.
	m.faults.Close()
	m.net.CloseInboxes()

	if m.firstErr != nil {
		return nil, fmt.Errorf("machine: %s: %w", k.Key, m.firstErr)
	}

	res := &Result{
		Kernel: k.Key, N: n, Config: cfg,
		PerPE:        m.perPE,
		Net:          net.Totals(),
		PageRequests: net.CountByType(network.PageRequest),
		PageReplies:  net.CountByType(network.PageReply),
		ReduceMsgs:   net.CountByType(network.ReduceSend) + net.CountByType(network.ReduceBcast),
		Retries:      m.retries.Load(),
		DupReplies:   m.dupReplies.Load(),
		DupRequests:  m.dupRequests.Load(),
		Faults:       m.faults.Stats(),
	}
	res.Totals = stats.PerPE(m.perPE).Totals()
	for pe := 0; pe < cfg.NPE; pe++ {
		res.Cache = append(res.Cache, m.caches[pe].Stats())
	}
	res.Values = make(map[string][]float64)
	res.DefinedOf = make(map[string][]bool)
	for _, name := range k.Outputs {
		a := protoCtx.A(name)
		st := m.arrays[a.ID]
		cs := loops.ArraySum{Name: name, Elems: a.Len()}
		dense := make([]float64, a.Len())
		denseDef := make([]bool, a.Len())
		for p, pg := range st.pages {
			vals, defined := pg.Snapshot()
			lo, _ := st.geom.PageBounds(p)
			for off, d := range defined {
				if d {
					cs.Sum += vals[off]
					cs.Defined++
					dense[lo+off] = vals[off]
					denseDef[lo+off] = true
				}
			}
		}
		res.Checksums = append(res.Checksums, cs)
		res.Values[name] = dense
		res.DefinedOf[name] = denseDef
	}
	return res, nil
}
