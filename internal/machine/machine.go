// Package machine executes Livermore kernels on a simulated
// loosely-coupled MIMD machine, making the paper's claims operational:
// one goroutine per PE runs the replicated loop body with
// owner-computes screening (§2), local memory is single-assignment
// tagged storage (§3), and every remote read is a real request/reply
// message exchange that fetches and caches a page snapshot (§4).
//
// No kernel contains any explicit synchronization; ordering emerges
// entirely from the write-once/read-many memory protocol, and — the
// point of single assignment — the computed values are deterministic
// regardless of PE interleaving.
package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/samem"
	"repro/internal/stats"
)

// Config selects the machine.
type Config struct {
	NPE        int
	PageSize   int
	CacheElems int            // per-PE cache capacity in elements; 0 disables caching
	Policy     cache.Policy   // page replacement policy
	Layout     partition.Kind // partitioning scheme
	LayoutRun  int            // block-cyclic run length
	Topology   Topo           // interconnect for hop accounting
	InboxDepth int            // per-PE inbox buffering (default 64)
	// Chaos injects scheduler yields at memory-access points to
	// diversify PE interleavings. Single assignment guarantees the
	// computed values are identical under any schedule; Chaos exists so
	// tests can hammer that claim.
	Chaos bool
	// DeadlockTimeout bounds how long the machine may make no progress
	// (no writes, no messages) while compute goroutines are still
	// running. A kernel that reads a cell no one ever writes blocks its
	// reader on a deferred read forever — on real hardware a hang, here
	// an error after two quiet intervals. Zero selects the default
	// (5s); negative disables the watchdog.
	DeadlockTimeout time.Duration
	// Metrics, when non-nil, receives the machine's internal
	// observability signals (inbox depths, deferred-read queue lengths,
	// page-fetch latencies, watchdog stalls and aborts — see the
	// Metric* names). When nil, the process-wide obs.Default() is
	// consulted. Instrumentation observes; it never changes the
	// computed values, which single assignment pins regardless.
	Metrics *obs.Registry
}

// Observability signal names recorded by an instrumented machine.
const (
	// MetricRuns counts machine executions.
	MetricRuns = "machine.runs"
	// MetricFetchLatency is a histogram of remote page-fetch latencies
	// measured in progress steps (writes + page replies elsewhere in
	// the machine between the request and its reply) — a logical clock
	// that is meaningful across host speeds.
	MetricFetchLatency = "machine.page_fetch_latency_steps"
	// MetricDeferredLen is a histogram of the deferred-read queue
	// length sampled each time a remote read is deferred (§3/§4:
	// requests for still-undefined cells queue until the producer
	// writes). Deep buckets mean readers are racing far ahead of
	// producers.
	MetricDeferredLen = "machine.deferred_queue_len"
	// MetricWatchdogStalls counts quiet watchdog intervals (no write or
	// reply progress); two consecutive stalls abort the run.
	MetricWatchdogStalls = "machine.watchdog_stalls"
	// MetricAborts counts aborted machine runs.
	MetricAborts = "machine.aborts"
)

// machineMetrics holds resolved instrument handles; every field is nil
// (a no-op) when the machine runs uninstrumented, so hot paths pay only
// nil checks.
type machineMetrics struct {
	fetchLatency   *obs.Histogram
	deferredLen    *obs.Histogram
	watchdogStalls *obs.Counter
	aborts         *obs.Counter
}

func newMachineMetrics(r *obs.Registry) machineMetrics {
	return machineMetrics{
		fetchLatency:   r.Histogram(MetricFetchLatency, obs.StepBuckets),
		deferredLen:    r.Histogram(MetricDeferredLen, obs.DepthBuckets),
		watchdogStalls: r.Counter(MetricWatchdogStalls),
		aborts:         r.Counter(MetricAborts),
	}
}

// Topo selects the interconnect topology.
type Topo int

// Interconnect topologies.
const (
	TopoBus Topo = iota
	TopoRing
	TopoMesh
	TopoHypercube
)

// DefaultConfig mirrors the paper's baseline machine.
func DefaultConfig(npe, pageSize int) Config {
	return Config{NPE: npe, PageSize: pageSize, CacheElems: 256, Policy: cache.LRU, Layout: partition.KindModulo}
}

func (c Config) topology() (network.Topology, error) {
	switch c.Topology {
	case TopoBus:
		return network.Bus{N: c.NPE}, nil
	case TopoRing:
		return network.Ring{N: c.NPE}, nil
	case TopoMesh:
		return network.NewMesh2D(c.NPE), nil
	case TopoHypercube:
		return network.NewHypercube(c.NPE)
	default:
		return nil, fmt.Errorf("machine: unknown topology %d", int(c.Topology))
	}
}

// Result reports one concurrent execution.
type Result struct {
	Kernel string
	N      int
	Config Config

	PerPE  stats.PerPE
	Totals stats.Counters
	Cache  []cache.Stats

	Net          network.Counters // network-wide traffic
	PageRequests int64
	PageReplies  int64
	ReduceMsgs   int64

	Checksums []loops.ArraySum
	// Values and DefinedOf hold the final dense contents of each output
	// array, read back from the distributed pages, for exact comparison
	// against the sequential reference.
	Values    map[string][]float64
	DefinedOf map[string][]bool
}

// RemotePercent returns "% of Reads Remote" for the run.
func (r *Result) RemotePercent() float64 { return r.Totals.RemotePercent() }

// abortError unwinds a PE's compute goroutine when the machine aborts.
type abortError struct{ cause string }

func (e abortError) Error() string { return "machine: aborted: " + e.cause }

// arrayState is the machine-wide descriptor of one array: geometry,
// layout, and the distributed pages (page p conceptually resides in the
// local memory of its owner; the access paths enforce that discipline).
type arrayState struct {
	geom   partition.Geometry
	layout partition.Layout
	pages  []*samem.Page
	host   int // host processor for reductions and re-initialization (§5)
}

type machine struct {
	cfg    Config
	net    *network.Network
	arrays []*arrayState

	perPE   []stats.Counters
	caches  []*cache.Cache
	reduceC []chan network.Message

	abortOnce sync.Once
	abort     chan struct{}
	errMu     sync.Mutex
	firstErr  error

	deferred  sync.WaitGroup
	deferredN atomic.Int64 // currently queued deferred reads
	progress  atomic.Int64 // writes + messages, for deadlock detection

	met machineMetrics
}

func (m *machine) fail(err error) {
	m.errMu.Lock()
	first := m.firstErr == nil
	if first {
		m.firstErr = err
	}
	m.errMu.Unlock()
	if first {
		m.met.aborts.Inc()
	}
	m.abortOnce.Do(func() { close(m.abort) })
}

// peEngine is PE pe's view of the machine; it implements loops.Engine.
type peEngine struct {
	m        *machine
	pe       int
	inAssign bool
	replyCh  chan network.Message
	waitCh   chan float64
	chaosRng uint64
}

// maybeYield perturbs the schedule under Chaos: a deterministic
// per-PE pseudo-random stream decides where to hand the processor
// over, so repeated runs explore different interleavings (the stream
// interacts with the runtime's own nondeterminism).
func (e *peEngine) maybeYield() {
	if !e.m.cfg.Chaos {
		return
	}
	e.chaosRng ^= e.chaosRng << 13
	e.chaosRng ^= e.chaosRng >> 7
	e.chaosRng ^= e.chaosRng << 17
	if e.chaosRng&7 == 0 {
		runtime.Gosched()
	}
}

// BeginAssign implements owner-computes screening: the RHS is evaluated
// only when this PE owns the target element (§2/§3).
func (e *peEngine) BeginAssign(a *loops.Arr, lin int) bool {
	if e.inAssign {
		panic(abortError{cause: fmt.Sprintf("nested assignment on %s[%d]", a.Name, lin)})
	}
	st := e.m.arrays[a.ID]
	if st.layout.Owner(st.geom.PageOf(lin)) != e.pe {
		return false
	}
	e.inAssign = true
	return true
}

// FinishAssign implements loops.Engine: a local single-assignment write
// that also wakes any queued remote readers.
func (e *peEngine) FinishAssign(a *loops.Arr, lin int, v float64) {
	e.maybeYield()
	e.inAssign = false
	st := e.m.arrays[a.ID]
	page := st.geom.PageOf(lin)
	if err := st.pages[page].Write(st.geom.Offset(lin), v); err != nil {
		e.m.fail(err)
		panic(abortError{cause: err.Error()})
	}
	e.m.perPE[e.pe].Writes++
	e.m.progress.Add(1)
}

// Read implements loops.Engine: local reads come from the PE's own
// pages (blocking on undefined cells), remote reads go through the
// cache and the network.
func (e *peEngine) Read(a *loops.Arr, lin int) float64 {
	e.maybeYield()
	st := e.m.arrays[a.ID]
	page := st.geom.PageOf(lin)
	off := st.geom.Offset(lin)
	if st.layout.Owner(page) == e.pe {
		e.m.perPE[e.pe].LocalReads++
		return e.localRead(st, a, page, off)
	}
	key := cache.Key{Array: a.ID, Page: page}
	if v, out := e.m.caches[e.pe].Lookup(key, off); out == cache.Hit {
		e.m.perPE[e.pe].CachedReads++
		return v
	}
	// Remote read (§4): request the page from its owner; the reply — a
	// snapshot taken once the requested cell is defined — is cached.
	e.m.perPE[e.pe].RemoteReads++
	owner := st.layout.Owner(page)
	var fetchStart int64
	if e.m.met.fetchLatency != nil {
		fetchStart = e.m.progress.Load()
	}
	req := network.Message{
		Type: network.PageRequest, Src: e.pe, Dst: owner,
		Array: a.ID, Page: page, Cell: off, Reply: e.replyCh,
	}
	if err := e.m.net.SendAbort(req, e.m.abort); err != nil {
		e.m.fail(err)
		panic(abortError{cause: err.Error()})
	}
	select {
	case rep := <-e.replyCh:
		if e.m.met.fetchLatency != nil {
			e.m.met.fetchLatency.Observe(e.m.progress.Load() - fetchStart)
		}
		e.m.caches[e.pe].Insert(key, rep.Payload, rep.Defined)
		return rep.Payload[off]
	case <-e.m.abort:
		panic(abortError{cause: "abort while awaiting page reply"})
	}
}

func (e *peEngine) localRead(st *arrayState, a *loops.Arr, page, off int) float64 {
	p := st.pages[page]
	if v, ok := p.TryRead(off); ok {
		return v
	}
	// A local deferred read: queued until the (local) producer writes.
	// In a sequentially valid kernel this PE must itself produce the
	// cell later in its program order, so blocking here means the
	// kernel reads ahead of its own writes — abort rather than hang.
	if v, ok := p.ReadOrWait(off, e.waitCh); ok {
		return v
	}
	err := fmt.Errorf("machine: PE %d reads own undefined cell %s[%d] (read-before-write)",
		e.pe, a.Name, p.Base()+off)
	e.m.fail(err)
	panic(abortError{cause: err.Error()})
}

// Reduce implements the §9 host-processor vector-to-scalar mechanism:
// each PE folds the terms whose driver elements it owns, every PE sends
// its partial to the array's host, and the host broadcasts the result.
func (e *peEngine) Reduce(op loops.Op, driver *loops.Arr, lo, hi int, term func(i int) float64) (float64, int) {
	if e.inAssign {
		panic(abortError{cause: "reduction inside an assignment"})
	}
	st := e.m.arrays[driver.ID]
	acc, at := 0.0, -1
	first := true
	for i := lo; i < hi; i++ {
		if st.layout.Owner(st.geom.PageOf(i)) != e.pe {
			continue
		}
		v := term(i)
		idx := i
		if op == loops.OpSum {
			idx = -1
		}
		if first {
			acc, at = v, idx
			first = false
			continue
		}
		acc, at = loops.CombineReduce(op, acc, at, v, idx)
	}
	// A PE with no owned terms contributes the combine identity:
	// (0, -1). CombineReduce treats index -1 as "no value" for min/max
	// and 0 is the additive identity for sums.
	if first {
		acc, at = 0, -1
	}
	host := st.host
	if e.pe != host {
		msg := network.Message{
			Type: network.ReduceSend, Src: e.pe, Dst: host,
			Array: driver.ID, Value: acc, Cell: at,
		}
		if err := e.m.net.SendAbort(msg, e.m.abort); err != nil {
			e.m.fail(err)
			panic(abortError{cause: err.Error()})
		}
		select {
		case rep := <-e.m.reduceC[e.pe]:
			return rep.Value, rep.Cell
		case <-e.m.abort:
			panic(abortError{cause: "abort while awaiting reduction broadcast"})
		}
	}
	// Host: collect one partial per other PE, fold them in PE-rank
	// order so the floating-point result is deterministic regardless of
	// message arrival order, then broadcast.
	partialV := make([]float64, e.m.cfg.NPE)
	partialI := make([]int, e.m.cfg.NPE)
	for pe := range partialI {
		partialI[pe] = -1
	}
	partialV[host], partialI[host] = acc, at
	for received := 0; received < e.m.cfg.NPE-1; received++ {
		select {
		case msg := <-e.m.reduceC[e.pe]:
			partialV[msg.Src], partialI[msg.Src] = msg.Value, msg.Cell
		case <-e.m.abort:
			panic(abortError{cause: "abort while collecting reduction partials"})
		}
	}
	total, totalAt := 0.0, -1
	haveAny := false
	for pe := 0; pe < e.m.cfg.NPE; pe++ {
		if op != loops.OpSum && partialI[pe] == -1 {
			continue // identity partial
		}
		if !haveAny {
			total, totalAt = partialV[pe], partialI[pe]
			haveAny = true
			continue
		}
		total, totalAt = loops.CombineReduce(op, total, totalAt, partialV[pe], partialI[pe])
	}
	for pe := 0; pe < e.m.cfg.NPE; pe++ {
		if pe == host {
			continue
		}
		msg := network.Message{
			Type: network.ReduceBcast, Src: host, Dst: pe,
			Array: driver.ID, Value: total, Cell: totalAt,
		}
		if err := e.m.net.SendAbort(msg, e.m.abort); err != nil {
			e.m.fail(err)
			panic(abortError{cause: err.Error()})
		}
	}
	return total, totalAt
}

// watchdog aborts the machine if no write or reply happens for two
// consecutive intervals while compute goroutines are still running:
// the signature of a read that can never be satisfied.
func (m *machine) watchdog(interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := int64(-1)
	strikes := 0
	for {
		select {
		case <-done:
			return
		case <-m.abort:
			return
		case <-ticker.C:
			cur := m.progress.Load()
			if cur == last {
				strikes++
				m.met.watchdogStalls.Inc()
				if strikes >= 2 {
					m.fail(fmt.Errorf("machine: deadlock: no progress for %v — a deferred read can never be satisfied", 2*interval))
					return
				}
			} else {
				strikes = 0
				last = cur
			}
		}
	}
}

// handler is PE pe's message server: it satisfies remote page requests
// against the PE's local pages (queueing deferred replies for undefined
// cells) and forwards reduction traffic to the compute goroutine.
func (m *machine) handler(pe int) {
	for msg := range m.net.Inbox(pe) {
		switch msg.Type {
		case network.PageRequest:
			m.servePage(pe, msg)
		case network.ReduceSend, network.ReduceBcast:
			select {
			case m.reduceC[pe] <- msg:
			case <-m.abort:
			}
		case network.Halt:
			return
		}
	}
}

func (m *machine) servePage(pe int, req network.Message) {
	st := m.arrays[req.Array]
	p := st.pages[req.Page]
	if _, ok := p.TryRead(req.Cell); ok {
		m.replySnapshot(pe, req, p)
		return
	}
	// Deferred remote read (§3/§4): queue until the producer writes the
	// requested cell, then reply with the page as it stands.
	ch := make(chan float64, 1)
	if _, ok := p.ReadOrWait(req.Cell, ch); ok {
		m.replySnapshot(pe, req, p)
		return
	}
	m.deferred.Add(1)
	m.met.deferredLen.Observe(m.deferredN.Add(1))
	go func() {
		defer m.deferredN.Add(-1)
		defer m.deferred.Done()
		select {
		case <-ch:
			m.replySnapshot(pe, req, p)
		case <-m.abort:
		}
	}()
}

func (m *machine) replySnapshot(pe int, req network.Message, p *samem.Page) {
	m.progress.Add(1)
	vals, defined := p.Snapshot()
	rep := network.Message{
		Type: network.PageReply, Src: pe, Dst: req.Src,
		Array: req.Array, Page: req.Page, Payload: vals, Defined: defined,
	}
	if err := m.net.Reply(req, rep); err != nil {
		m.fail(err)
	}
}

// Run executes kernel k at problem size n on the concurrent machine.
func Run(k *loops.Kernel, n int, cfg Config) (*Result, error) {
	if cfg.NPE <= 0 {
		return nil, fmt.Errorf("machine: NPE must be positive, got %d", cfg.NPE)
	}
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("machine: page size must be positive, got %d", cfg.PageSize)
	}
	if cfg.InboxDepth <= 0 {
		cfg.InboxDepth = 64
	}
	n = k.ClampN(n)
	topo, err := cfg.topology()
	if err != nil {
		return nil, err
	}
	net, err := network.New(cfg.NPE, topo, cfg.InboxDepth)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	net.Instrument(reg)
	reg.Counter(MetricRuns).Inc()
	m := &machine{cfg: cfg, net: net, abort: make(chan struct{}), met: newMachineMetrics(reg)}

	specs := k.Arrays(n)
	// Build one context per PE over shared array state.
	protoCtx, err := loops.Bind(&peEngine{m: m}, specs) // for geometry only
	if err != nil {
		return nil, fmt.Errorf("machine: %s: %w", k.Key, err)
	}
	for i, a := range protoCtx.Arrays() {
		g, err := partition.NewGeometry(a.Len(), cfg.PageSize)
		if err != nil {
			return nil, err
		}
		l, err := partition.Make(cfg.Layout, cfg.NPE, g.Pages(), cfg.LayoutRun)
		if err != nil {
			return nil, err
		}
		st := &arrayState{geom: g, layout: l, host: i % cfg.NPE}
		for p := 0; p < g.Pages(); p++ {
			lo, hi := g.PageBounds(p)
			st.pages = append(st.pages, samem.NewPage(a.Name, lo, hi-lo))
		}
		// Initialization data is loaded before execution (§3).
		if init := specs[i].Init; init != nil {
			for j := 0; j < a.Len(); j++ {
				if v, ok := init(j); ok {
					pg := g.PageOf(j)
					if err := st.pages[pg].Fill(g.Offset(j), v); err != nil {
						return nil, fmt.Errorf("machine: %s: %w", k.Key, err)
					}
				}
			}
		}
		m.arrays = append(m.arrays, st)
	}

	m.perPE = make([]stats.Counters, cfg.NPE)
	m.reduceC = make([]chan network.Message, cfg.NPE)
	for pe := 0; pe < cfg.NPE; pe++ {
		c, err := cache.New(cfg.CacheElems, cfg.PageSize, cfg.Policy)
		if err != nil {
			return nil, err
		}
		m.caches = append(m.caches, c)
		m.reduceC[pe] = make(chan network.Message, cfg.NPE+1)
	}

	var handlers sync.WaitGroup
	for pe := 0; pe < cfg.NPE; pe++ {
		handlers.Add(1)
		go func(pe int) {
			defer handlers.Done()
			m.handler(pe)
		}(pe)
	}

	var compute sync.WaitGroup
	for pe := 0; pe < cfg.NPE; pe++ {
		compute.Add(1)
		go func(pe int) {
			defer compute.Done()
			defer func() {
				if r := recover(); r != nil {
					if ae, ok := r.(abortError); ok {
						m.fail(ae)
						return
					}
					m.fail(fmt.Errorf("machine: PE %d panic: %v", pe, r))
				}
			}()
			eng := &peEngine{
				m: m, pe: pe,
				replyCh:  make(chan network.Message, 1),
				waitCh:   make(chan float64, 1),
				chaosRng: 0x9e3779b97f4a7c15 ^ uint64(pe+1),
			}
			ctx, err := loops.Bind(eng, specs)
			if err != nil {
				m.fail(err)
				return
			}
			k.Run(ctx, n)
		}(pe)
	}
	watchdogDone := make(chan struct{})
	if cfg.DeadlockTimeout >= 0 {
		interval := cfg.DeadlockTimeout
		if interval == 0 {
			interval = 5 * time.Second
		}
		go m.watchdog(interval, watchdogDone)
	}
	compute.Wait()
	close(watchdogDone)
	m.deferred.Wait()
	m.abortOnce.Do(func() { close(m.abort) })
	m.net.CloseInboxes()
	handlers.Wait()

	if m.firstErr != nil {
		return nil, fmt.Errorf("machine: %s: %w", k.Key, m.firstErr)
	}

	res := &Result{
		Kernel: k.Key, N: n, Config: cfg,
		PerPE:        m.perPE,
		Net:          net.Totals(),
		PageRequests: net.CountByType(network.PageRequest),
		PageReplies:  net.CountByType(network.PageReply),
		ReduceMsgs:   net.CountByType(network.ReduceSend) + net.CountByType(network.ReduceBcast),
	}
	res.Totals = stats.PerPE(m.perPE).Totals()
	for pe := 0; pe < cfg.NPE; pe++ {
		res.Cache = append(res.Cache, m.caches[pe].Stats())
	}
	res.Values = make(map[string][]float64)
	res.DefinedOf = make(map[string][]bool)
	for _, name := range k.Outputs {
		a := protoCtx.A(name)
		st := m.arrays[a.ID]
		cs := loops.ArraySum{Name: name, Elems: a.Len()}
		dense := make([]float64, a.Len())
		denseDef := make([]bool, a.Len())
		for p, pg := range st.pages {
			vals, defined := pg.Snapshot()
			lo, _ := st.geom.PageBounds(p)
			for off, d := range defined {
				if d {
					cs.Sum += vals[off]
					cs.Defined++
					dense[lo+off] = vals[off]
					denseDef[lo+off] = true
				}
			}
		}
		res.Checksums = append(res.Checksums, cs)
		res.Values[name] = dense
		res.DefinedOf[name] = denseDef
	}
	return res, nil
}
