package machine

import (
	"testing"

	"repro/internal/loops"
)

// TestChaosSchedulesProduceIdenticalValues hammers the determinacy
// claim: with scheduler yields injected at every memory access point,
// the PE interleavings differ wildly between runs, yet every run of
// every kernel must produce the sequential reference values.
func TestChaosSchedulesProduceIdenticalValues(t *testing.T) {
	keys := []string{"k1", "k2", "k5", "k11", "k18", "k19"}
	for _, key := range keys {
		key := key
		t.Run(key, func(t *testing.T) {
			t.Parallel()
			k, err := loops.ByKey(key)
			if err != nil {
				t.Fatal(err)
			}
			n := 96
			seq, err := loops.RunSeq(k, n)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(6, 8)
			cfg.Chaos = true
			for trial := 0; trial < 4; trial++ {
				res, err := Run(k, n, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range k.Outputs {
					sv, sd := seq.Values[name], seq.DefinedOf[name]
					mv := res.Values[name]
					for i := range sv {
						if sd[i] && sv[i] != mv[i] {
							t.Fatalf("trial %d: %s[%d] = %v, want %v", trial, name, i, mv[i], sv[i])
						}
					}
				}
			}
		})
	}
}

// TestChaosDoesNotChangeAccounting verifies chaos only perturbs the
// schedule: ownership-determined counters stay exact.
func TestChaosDoesNotChangeAccounting(t *testing.T) {
	k, err := loops.ByKey("k7")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(k, 128, DefaultConfig(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, 16)
	cfg.Chaos = true
	chaos, err := Run(k, 128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Totals.Writes != chaos.Totals.Writes {
		t.Errorf("writes changed: %d vs %d", base.Totals.Writes, chaos.Totals.Writes)
	}
	if base.Totals.LocalReads != chaos.Totals.LocalReads {
		t.Errorf("local reads changed: %d vs %d", base.Totals.LocalReads, chaos.Totals.LocalReads)
	}
	baseNL := base.Totals.CachedReads + base.Totals.RemoteReads
	chaosNL := chaos.Totals.CachedReads + chaos.Totals.RemoteReads
	if baseNL != chaosNL {
		t.Errorf("non-local reads changed: %d vs %d", baseNL, chaosNL)
	}
}
