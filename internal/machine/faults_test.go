package machine

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/loops"
	"repro/internal/network"
)

// chaosSeed returns the suite's fault seed, overridable via CHAOS_SEED
// so CI can fan the determinism tests across several fixed seeds.
func chaosSeed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1989
}

// chaosConfig is the standard lossy interconnect of the fault tests:
// 20% drop, 10% duplication, 25% of copies delayed, all deterministic
// under the given seed. Short retry timeouts keep wall time down.
func chaosConfig(npe, pageSize int, seed int64) Config {
	cfg := DefaultConfig(npe, pageSize)
	cfg.Faults = &network.FaultConfig{
		Seed:     seed,
		Drop:     0.2,
		Dup:      0.1,
		Delay:    0.25,
		MaxDelay: 200 * time.Microsecond,
	}
	cfg.Retry = RetryPolicy{BaseTimeout: time.Millisecond, MaxTimeout: 20 * time.Millisecond}
	return cfg
}

// assertSameOutputs fails unless the faulted run produced bit-identical
// outputs to the clean run. Exact equality is the point: the protocol
// retransmits and merges, it never recomputes, so even reduction results
// must match to the bit.
func assertSameOutputs(t *testing.T, k *loops.Kernel, clean, faulted *Result) {
	t.Helper()
	for _, name := range k.Outputs {
		cv, cd := clean.Values[name], clean.DefinedOf[name]
		fv, fd := faulted.Values[name], faulted.DefinedOf[name]
		for i := range cv {
			if cd[i] != fd[i] {
				t.Fatalf("%s[%d]: defined clean=%v faulted=%v", name, i, cd[i], fd[i])
			}
			if cd[i] && cv[i] != fv[i] {
				t.Fatalf("%s[%d]: clean=%v faulted=%v", name, i, cv[i], fv[i])
			}
		}
	}
}

// TestFaultedRunsMatchCleanRuns is the §4 idempotence argument made
// executable: every kernel, run over an interconnect that drops 20% of
// page traffic, duplicates 10% and delays a quarter of it, still
// produces exactly the fault-free values — lost messages are retried,
// duplicates suppressed, stale snapshots merged monotonically.
func TestFaultedRunsMatchCleanRuns(t *testing.T) {
	var faults network.FaultStats
	var retries, dupReplies int64
	for _, k := range loops.All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			n := k.DefaultN
			if n > 128 {
				n = 128
			}
			clean, err := Run(k, n, DefaultConfig(4, 16))
			if err != nil {
				t.Fatalf("clean: %v", err)
			}
			faulted, err := Run(k, n, chaosConfig(4, 16, chaosSeed()))
			if err != nil {
				t.Fatalf("faulted: %v", err)
			}
			assertSameOutputs(t, k, clean, faulted)
			faults.Dropped += faulted.Faults.Dropped
			faults.Duplicated += faulted.Faults.Duplicated
			faults.Delayed += faulted.Faults.Delayed
			retries += faulted.Retries
			dupReplies += faulted.DupReplies
		})
	}
	// Individual kernels may see little remote traffic; across the whole
	// suite the fault layer and the healing protocol must both have fired.
	if faults.Dropped == 0 || faults.Duplicated == 0 || faults.Delayed == 0 {
		t.Errorf("fault layer idle across suite: %+v", faults)
	}
	if retries == 0 {
		t.Error("no retransmissions across suite despite 20% drop")
	}
	if dupReplies == 0 {
		t.Error("no duplicate replies suppressed across suite despite 10% dup")
	}
}

// TestFaultedRunsDeterministicAcrossSeedsAndShapes sweeps seeds, PE
// counts and topologies: every combination must converge to the
// sequential values, and repeating a (seed, shape) run must inject the
// identical fault count — the chaos run is a pure function of the seed
// and per-link traffic order.
func TestFaultedRunsDeterministicAcrossSeedsAndShapes(t *testing.T) {
	k, err := loops.ByKey("k11") // cross-PE recurrence: heavy page traffic
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(k, 128, DefaultConfig(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 7, 1989} {
		for _, shape := range []struct {
			npe  int
			topo Topo
		}{{2, TopoBus}, {4, TopoRing}, {8, TopoMesh}} {
			cfg := chaosConfig(shape.npe, 16, seed)
			cfg.Topology = shape.topo
			res, err := Run(k, 128, cfg)
			if err != nil {
				t.Fatalf("seed %d npe %d: %v", seed, shape.npe, err)
			}
			for _, name := range k.Outputs {
				for i, v := range clean.Values[name] {
					if clean.DefinedOf[name][i] && res.Values[name][i] != v {
						t.Fatalf("seed %d npe %d: %s[%d] = %v, want %v",
							seed, shape.npe, name, i, res.Values[name][i], v)
					}
				}
			}
		}
	}
}

// TestDeadLinkDiagnosedAbort partitions one directed link completely:
// the requester must exhaust its retries and abort with a diagnosis
// naming the page, the owner PE and the attempt count — never hang on
// the watchdog or panic.
func TestDeadLinkDiagnosedAbort(t *testing.T) {
	k, err := loops.ByKey("k11")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2, 16)
	cfg.Faults = &network.FaultConfig{Seed: 1, Partition: [][2]int{{1, 0}}}
	cfg.Retry = RetryPolicy{MaxAttempts: 3, BaseTimeout: time.Millisecond, MaxTimeout: 4 * time.Millisecond}
	start := time.Now()
	_, err = Run(k, 128, cfg)
	if err == nil {
		t.Fatal("fully partitioned link did not error")
	}
	// Either side of the dead link can exhaust its budget first: the
	// partition kills PE 1's requests to PE 0 and PE 1's replies to
	// PE 0 alike. The diagnosis must name the page, the owner PE and
	// the attempt count whichever PE gives up.
	for _, want := range []string{"gives up fetching", "page", "owner PE", "3 attempts", "link presumed dead"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnosis %q lacks %q", err, want)
		}
	}
	// Bounded retries must diagnose far faster than the deadlock
	// watchdog's two quiet 5s intervals would.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("diagnosis took %v", elapsed)
	}
}

// TestRetryProtocolIdleOnPerfectNetwork enables the retry protocol with
// no fault injection: the protocol must add no retries, suppress
// nothing, and reproduce the clean values (its timers are pure
// overhead, never behavior, on a perfect interconnect).
func TestRetryProtocolIdleOnPerfectNetwork(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(k, 128, DefaultConfig(4, 16))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4, 16)
	cfg.Retry = RetryPolicy{MaxAttempts: 5, BaseTimeout: 100 * time.Millisecond}
	res, err := Run(k, 128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutputs(t, k, clean, res)
	if res.Retries != 0 || res.DupReplies != 0 || res.DupRequests != 0 {
		t.Errorf("protocol fired on a perfect network: retries=%d dupReplies=%d dupRequests=%d",
			res.Retries, res.DupReplies, res.DupRequests)
	}
	if s := res.Faults; s != (network.FaultStats{}) {
		t.Errorf("fault stats nonzero with no injector: %+v", s)
	}
}

// TestFaultConfigRejectedByRun surfaces fault-config validation through
// the machine's front door.
func TestFaultConfigRejectedByRun(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2, 16)
	cfg.Faults = &network.FaultConfig{Drop: 1.5}
	if _, err := Run(k, 64, cfg); err == nil {
		t.Error("invalid fault config accepted")
	}
}

func TestDefaultDeadlineScales(t *testing.T) {
	if d := DefaultDeadline(2, 64); d != 5*time.Second {
		t.Errorf("small problem: %v, want 5s floor", d)
	}
	if d := DefaultDeadline(8, 2_000_000); d != 16*time.Second {
		t.Errorf("mid problem: %v, want 16s", d)
	}
	if d := DefaultDeadline(64, 10_000_000); d != 60*time.Second {
		t.Errorf("huge problem: %v, want 60s cap", d)
	}
}
