package machine

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/loops"
	"repro/internal/sim"
)

func mustKernel(t *testing.T, key string) *loops.Kernel {
	t.Helper()
	k, err := loops.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestConfigValidation(t *testing.T) {
	k := mustKernel(t, "k1")
	if _, err := Run(k, 64, Config{NPE: 0, PageSize: 32}); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := Run(k, 64, Config{NPE: 4, PageSize: 0}); err == nil {
		t.Error("zero page size accepted")
	}
	bad := DefaultConfig(4, 32)
	bad.Topology = Topo(99)
	if _, err := Run(k, 64, bad); err == nil {
		t.Error("unknown topology accepted")
	}
	cube := DefaultConfig(6, 32)
	cube.Topology = TopoHypercube
	if _, err := Run(k, 64, cube); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
}

// TestAllKernelsMatchSequentialReference is the determinacy theorem of
// single assignment made executable: every kernel, run concurrently on
// 4 PEs with real message passing and no explicit synchronization,
// produces the sequential reference values.
func TestAllKernelsMatchSequentialReference(t *testing.T) {
	for _, k := range loops.All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			t.Parallel()
			n := k.DefaultN
			if n > 128 {
				n = 128
			}
			seq, err := loops.RunSeq(k, n)
			if err != nil {
				t.Fatalf("seq: %v", err)
			}
			res, err := Run(k, n, DefaultConfig(4, 16))
			if err != nil {
				t.Fatalf("machine: %v", err)
			}
			for _, name := range k.Outputs {
				sv, sd := seq.Values[name], seq.DefinedOf[name]
				mv, md := res.Values[name], res.DefinedOf[name]
				for i := range sv {
					if sd[i] != md[i] {
						t.Fatalf("%s[%d]: defined mismatch seq=%v machine=%v", name, i, sd[i], md[i])
					}
					if !sd[i] {
						continue
					}
					// Reduction results may differ in summation order;
					// everything else must be bit-identical.
					if diff := math.Abs(sv[i] - mv[i]); diff > 1e-9*(1+math.Abs(sv[i])) {
						t.Fatalf("%s[%d]: seq=%v machine=%v", name, i, sv[i], mv[i])
					}
				}
			}
		})
	}
}

func TestValuesDeterministicAcrossRuns(t *testing.T) {
	// Single assignment makes results independent of PE interleaving.
	k := mustKernel(t, "k18")
	first, err := Run(k, 64, DefaultConfig(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		res, err := Run(k, 64, DefaultConfig(8, 16))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range k.Outputs {
			a, b := first.Values[name], res.Values[name]
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: %s[%d] drifted: %v vs %v", trial, name, i, a[i], b[i])
				}
			}
		}
	}
}

func TestCrossPEPipelineRecurrence(t *testing.T) {
	// k11's running sum forces PE p+1 to wait for PE p's last element:
	// the deferred-read protocol must pipeline it, not deadlock.
	k := mustKernel(t, "k11")
	res, err := Run(k, 256, DefaultConfig(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.PageRequests == 0 {
		t.Error("expected remote page requests across the recurrence")
	}
	if res.PageRequests != res.PageReplies {
		t.Errorf("requests %d != replies %d", res.PageRequests, res.PageReplies)
	}
	seq, err := loops.RunSeq(k, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Values["X"][256]
	got := res.Values["X"][256]
	if want != got {
		t.Errorf("X[256] = %v, want %v", got, want)
	}
}

func TestAccountingConsistentWithCountingSimulator(t *testing.T) {
	// Ownership is deterministic, so writes and local reads must agree
	// exactly with the counting simulator; cached+remote together make
	// up the same non-local read total (their split may differ because
	// the machine sees genuine partial fills).
	for _, key := range []string{"k1", "k5", "k12", "k18", "k2"} {
		k := mustKernel(t, key)
		n := 128
		mres, err := Run(k, n, DefaultConfig(4, 16))
		if err != nil {
			t.Fatalf("%s machine: %v", key, err)
		}
		scfg := sim.PaperConfig(4, 16)
		sres, err := sim.Run(k, n, scfg)
		if err != nil {
			t.Fatalf("%s sim: %v", key, err)
		}
		if mres.Totals.Writes != sres.Totals.Writes {
			t.Errorf("%s: writes machine=%d sim=%d", key, mres.Totals.Writes, sres.Totals.Writes)
		}
		if mres.Totals.LocalReads != sres.Totals.LocalReads {
			t.Errorf("%s: local machine=%d sim=%d", key, mres.Totals.LocalReads, sres.Totals.LocalReads)
		}
		mNonLocal := mres.Totals.CachedReads + mres.Totals.RemoteReads
		sNonLocal := sres.Totals.CachedReads + sres.Totals.RemoteReads
		if mNonLocal != sNonLocal {
			t.Errorf("%s: non-local machine=%d sim=%d", key, mNonLocal, sNonLocal)
		}
	}
}

func TestDoubleWriteAborts(t *testing.T) {
	bad := &loops.Kernel{
		Key: "dw", Name: "double write", DefaultN: 32, MinN: 32,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{{Name: "X", Dims: []int{n}}}
		},
		Run: func(c *loops.Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return 1 }, 3)
			x.Set(func() float64 { return 2 }, 3)
		},
		Outputs: []string{"X"},
	}
	_, err := Run(bad, 32, DefaultConfig(2, 16))
	if err == nil {
		t.Fatal("double write not detected")
	}
	if !strings.Contains(err.Error(), "double write") {
		t.Errorf("error = %v", err)
	}
}

func TestSelfReadBeforeWriteAborts(t *testing.T) {
	// A kernel that reads its own future output must abort cleanly, not
	// hang on a deferred read that can never be satisfied.
	bad := &loops.Kernel{
		Key: "rbw", Name: "read before write", DefaultN: 32, MinN: 32,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{{Name: "X", Dims: []int{n}}}
		},
		Run: func(c *loops.Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return x.Get(5) }, 4) // same page: owner reads own undefined cell
		},
		Outputs: []string{"X"},
	}
	_, err := Run(bad, 32, DefaultConfig(2, 16))
	if err == nil {
		t.Fatal("read-before-write not detected")
	}
	if !strings.Contains(err.Error(), "read-before-write") {
		t.Errorf("error = %v", err)
	}
}

func TestReductionAcrossPEs(t *testing.T) {
	k := mustKernel(t, "k3")
	n := 200
	res, err := Run(k, n, DefaultConfig(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := loops.RunSeq(k, n)
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Values["QOUT"][0], seq.Values["QOUT"][0]
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("reduced sum = %v, want %v", got, want)
	}
	// 7 sends to the host plus 7 broadcasts.
	if res.ReduceMsgs != 14 {
		t.Errorf("ReduceMsgs = %d, want 14", res.ReduceMsgs)
	}
}

func TestArgMinReductionDeterministic(t *testing.T) {
	k := mustKernel(t, "k24")
	seq, err := loops.RunSeq(k, 300)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		res, err := Run(k, 300, DefaultConfig(8, 16))
		if err != nil {
			t.Fatal(err)
		}
		if res.Values["MOUT"][0] != seq.Values["MOUT"][0] {
			t.Fatalf("argmin = %v, want %v", res.Values["MOUT"][0], seq.Values["MOUT"][0])
		}
	}
}

func TestTopologiesCarryTraffic(t *testing.T) {
	k := mustKernel(t, "k1")
	for _, topo := range []Topo{TopoBus, TopoRing, TopoMesh, TopoHypercube} {
		cfg := DefaultConfig(8, 16)
		cfg.Topology = topo
		res, err := Run(k, 256, cfg)
		if err != nil {
			t.Fatalf("topo %d: %v", int(topo), err)
		}
		if res.Net.Sent == 0 || res.Net.Hops == 0 {
			t.Errorf("topo %d: no traffic recorded: %+v", int(topo), res.Net)
		}
		if res.Net.Sent != res.Net.Received {
			t.Errorf("topo %d: sent %d != received %d", int(topo), res.Net.Sent, res.Net.Received)
		}
	}
}

func TestSinglePENoTraffic(t *testing.T) {
	k := mustKernel(t, "k18")
	res, err := Run(k, 64, DefaultConfig(1, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.PageRequests != 0 {
		t.Errorf("1-PE run sent %d page requests", res.PageRequests)
	}
	if res.Totals.RemoteReads != 0 || res.Totals.CachedReads != 0 {
		t.Errorf("1-PE run classified non-local reads: %+v", res.Totals)
	}
}

func TestNoCacheMachineStillCorrect(t *testing.T) {
	k := mustKernel(t, "k7")
	cfg := DefaultConfig(4, 16)
	cfg.CacheElems = 0
	res, err := Run(k, 128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.CachedReads != 0 {
		t.Errorf("cached reads without a cache: %d", res.Totals.CachedReads)
	}
	seq, err := loops.RunSeq(k, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checksums[0].Sum != seq.Checksums[0].Sum {
		t.Error("no-cache run produced different values")
	}
}

func TestManyPEsMorePEsThanPages(t *testing.T) {
	// Degenerate but legal: more PEs than pages; idle PEs must not hang
	// reductions or teardown.
	k := mustKernel(t, "k3")
	res, err := Run(k, 40, DefaultConfig(16, 32))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := loops.RunSeq(k, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values["QOUT"][0]-seq.Values["QOUT"][0]) > 1e-9 {
		t.Error("reduction wrong with idle PEs")
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	// Every handler, compute and deferred-reply goroutine must exit by
	// the time Run returns — including on the error paths.
	k := mustKernel(t, "k2")
	if _, err := Run(k, 256, DefaultConfig(8, 16)); err != nil {
		t.Fatal(err)
	}
	bad := &loops.Kernel{
		Key: "dw2", Name: "double write", DefaultN: 32, MinN: 32,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{{Name: "X", Dims: []int{n}}}
		},
		Run: func(c *loops.Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return 1 }, 3)
			x.Set(func() float64 { return 2 }, 3)
		},
		Outputs: []string{"X"},
	}
	if _, err := Run(bad, 32, DefaultConfig(4, 16)); err == nil {
		t.Fatal("expected error")
	}
	// Allow the runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	base := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			break
		}
		time.Sleep(10 * time.Millisecond)
		base = runtime.NumGoroutine()
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := Run(k, 128, DefaultConfig(8, 16)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Errorf("goroutines grew %d -> %d across runs", before, after)
	}
}

func TestDeadlockWatchdog(t *testing.T) {
	// A kernel that reads a remote cell no one ever writes would block
	// its reader forever; the watchdog must convert the hang into an
	// error and tear the machine down cleanly.
	hang := &loops.Kernel{
		Key: "hang", Name: "unsatisfiable read", DefaultN: 64, MinN: 64,
		Arrays: func(n int) []loops.Spec {
			return []loops.Spec{
				{Name: "A", Dims: []int{n}}, // page 0 owned by PE 0; A[5] never written
				{Name: "B", Dims: []int{2 * n}},
			}
		},
		Run: func(c *loops.Ctx, n int) {
			b, a := c.A("B"), c.A("A")
			// Owner of B's page 1 is PE 1: it must fetch A[5] from PE 0,
			// which never defines it.
			b.Set(func() float64 { return a.Get(5) }, 32)
		},
		Outputs: []string{"B"},
	}
	cfg := DefaultConfig(2, 32)
	cfg.DeadlockTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err := Run(hang, 64, cfg)
	if err == nil {
		t.Fatal("unsatisfiable read did not error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error = %v, want deadlock diagnosis", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v", elapsed)
	}
}

func TestWatchdogDoesNotFireOnHealthyRuns(t *testing.T) {
	// A tight timeout must not kill a healthy pipeline: progress (writes
	// and replies) resets the strike counter.
	k := mustKernel(t, "k11")
	cfg := DefaultConfig(8, 16)
	cfg.DeadlockTimeout = 50 * time.Millisecond
	res, err := Run(k, 2048, cfg)
	if err != nil {
		t.Fatalf("healthy run killed: %v", err)
	}
	if res.Totals.Writes == 0 {
		t.Error("no work done")
	}
}

func TestWatchdogDisabled(t *testing.T) {
	k := mustKernel(t, "k1")
	cfg := DefaultConfig(4, 32)
	cfg.DeadlockTimeout = -1
	if _, err := Run(k, 256, cfg); err != nil {
		t.Fatal(err)
	}
}
