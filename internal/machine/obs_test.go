package machine

import (
	"reflect"
	"testing"

	"repro/internal/loops"
	"repro/internal/network"
	"repro/internal/obs"
)

// TestInstrumentationPopulatesMetrics runs a kernel with remote traffic
// and checks the machine's internal behavior became visible: page-fetch
// latencies, inbox depths and message sizes all recorded observations.
func TestInstrumentationPopulatesMetrics(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig(4, 32)
	cfg.Metrics = reg
	res, err := Run(k, 500, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.RemoteReads == 0 {
		t.Fatal("test premise broken: no remote reads at 4 PEs")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricRuns, got)
	}
	lat := snap.Histograms[MetricFetchLatency]
	if lat.Count != res.Totals.RemoteReads {
		t.Errorf("%s observations = %d, want one per remote read (%d)",
			MetricFetchLatency, lat.Count, res.Totals.RemoteReads)
	}
	if depth := snap.Histograms[network.MetricInboxDepth]; depth.Count == 0 {
		t.Errorf("%s recorded no observations", network.MetricInboxDepth)
	}
	if bytes := snap.Histograms[network.MetricMsgBytes]; bytes.Count == 0 {
		t.Errorf("%s recorded no observations", network.MetricMsgBytes)
	}
	if got := snap.Counters[MetricAborts]; got != 0 {
		t.Errorf("%s = %d on a clean run, want 0", MetricAborts, got)
	}
}

// TestInstrumentedValuesIdentical: single assignment pins the computed
// values under any schedule, and instrumentation must not perturb that
// — an instrumented machine run produces the same dense output arrays
// and checksums as an uninstrumented one.
func TestInstrumentedValuesIdentical(t *testing.T) {
	k, err := loops.ByKey("k12")
	if err != nil {
		t.Fatal(err)
	}
	plainCfg := DefaultConfig(4, 32)
	plain, err := Run(k, 500, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	instCfg := DefaultConfig(4, 32)
	instCfg.Metrics = obs.NewRegistry()
	inst, err := Run(k, 500, instCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Checksums, inst.Checksums) {
		t.Errorf("checksums differ: %v vs %v", plain.Checksums, inst.Checksums)
	}
	if !reflect.DeepEqual(plain.Values, inst.Values) {
		t.Error("output values differ between instrumented and uninstrumented runs")
	}
	if !reflect.DeepEqual(plain.DefinedOf, inst.DefinedOf) {
		t.Error("defined bitmaps differ between instrumented and uninstrumented runs")
	}
}

// TestAbortCounted: a kernel error aborts the machine exactly once in
// the abort counter.
func TestAbortCounted(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig(4, 32)
	cfg.Metrics = reg
	cfg.PageSize = 32
	// Force a failure: page size fine, but problem size 0 clamps to the
	// kernel default, so instead poison via an impossible topology.
	cfg.Topology = Topo(99)
	if _, err := Run(k, 100, cfg); err == nil {
		t.Fatal("bad topology accepted")
	}
	// Topology failures happen before the machine starts; no abort.
	if got := reg.Counter(MetricAborts).Value(); got != 0 {
		t.Errorf("%s = %d before machine start, want 0", MetricAborts, got)
	}
}
