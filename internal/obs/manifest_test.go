package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestNewRunManifest(t *testing.T) {
	perPE := stats.PerPE{
		{Writes: 10, LocalReads: 20, CachedReads: 5, RemoteReads: 5},
		{Writes: 10, LocalReads: 18, CachedReads: 7, RemoteReads: 5},
	}
	cfg := ConfigInfo{NPE: 2, PageSize: 32, CacheElems: 256, Layout: "modulo", Policy: "lru"}
	m := NewRunManifest("k1", 1000, 3, cfg, 250*time.Millisecond, perPE)

	if m.Schema != RunManifestSchema {
		t.Errorf("schema = %q", m.Schema)
	}
	if m.Totals.Writes != 20 || m.Totals.RemoteReads != 10 {
		t.Errorf("totals wrong: %+v", m.Totals)
	}
	wantRemote := 100 * 10.0 / 60.0
	if m.RemotePercent != wantRemote {
		t.Errorf("remote%% = %g, want %g", m.RemotePercent, wantRemote)
	}
	if len(m.PerPE) != 2 {
		t.Fatalf("per-PE entries = %d, want 2", len(m.PerPE))
	}
	d, ok := m.Distributions["writes"]
	if !ok {
		t.Fatal("missing writes distribution")
	}
	if d.Min != 10 || d.Max != 10 || d.Mean != 10 {
		t.Errorf("writes distribution wrong: %+v", d)
	}
	if m.Env.GoVersion == "" || m.Env.GOMAXPROCS <= 0 {
		t.Errorf("environment not captured: %+v", m.Env)
	}
	if m.WallSec != 0.25 {
		t.Errorf("wall = %g, want 0.25", m.WallSec)
	}
}

func TestWriteManifestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "manifests")
	m := NewRunManifest("k2", 64, 0, ConfigInfo{NPE: 4, PageSize: 32}, time.Second,
		stats.PerPE{{Writes: 1, LocalReads: 1}})
	m.Checksums = []Checksum{{Name: "X", Elems: 64, Defined: 64, Sum: 3.5}}

	path, err := WriteManifest(dir, "k2", m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got RunManifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if got.Kernel != "k2" || got.Config.NPE != 4 || got.Checksums[0].Sum != 3.5 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestExperimentManifestJSON(t *testing.T) {
	m := &ExperimentManifest{
		Schema: ExperimentManifestSchema, ID: "fig1", Title: "Figure 1",
		WallSec: 1.5, Env: CaptureEnv(), Pass: true,
		Checks: []Check{{Name: "shape", Pass: true, Detail: "ok"}},
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var got ExperimentManifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Pass || len(got.Checks) != 1 || got.ID != "fig1" {
		t.Errorf("round trip lost data: %+v", got)
	}
}
