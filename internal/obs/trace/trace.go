// Package trace is the request-scoped tracing half of the
// observability layer: a low-overhead, allocation-bounded span tracer
// for the serving stack. A Trace is created per request (accepted or
// generated X-Request-ID), carried through the execution path on the
// context, and populated with parent/child spans — wall-clock stage
// timings in the HTTP layer and engine (admission wait, cache lookup,
// singleflight wait, capture, replay, encode), plus logical-unit
// events (configs per batch pass, stream events replayed) whose values
// are counts rather than durations.
//
// The same two properties that make the metrics registry safe to leave
// on (package obs) hold here:
//
//   - Nil safety: every method on a nil *Trace, *Ring or a zero
//     SpanRef is a no-op (SpanRef.End still returns the measured wall
//     duration, so instrumentation can feed histograms with or without
//     a live trace). Untraced code paths pay one nil check.
//   - Observation, not participation: a trace records what the engines
//     did; it is never consulted by them. The paper's bit-identical
//     classification guarantee is what makes deep tracing safe — the
//     serving tests pin that traced and untraced response bodies are
//     byte-identical.
//
// Allocation is bounded by construction: a Trace pre-allocates room
// for MaxSpans spans and MaxCounts counters at New and never grows
// either; excess spans are counted in Dropped instead of stored. A
// Ring holds the last N traces for GET /debug/trace. See
// docs/OBSERVABILITY.md.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds the spans one Trace stores; later spans increment
// Dropped instead of allocating.
const MaxSpans = 64

// MaxCounts bounds the distinct named counters one Trace stores.
const MaxCounts = 8

// MaxIDLen bounds an accepted X-Request-ID; longer (or malformed) IDs
// are replaced by a generated one.
const MaxIDLen = 128

// Span is one recorded operation inside a trace. For wall-clock spans
// (Unit == "") Value is the duration in microseconds and StartUS the
// offset from the trace's start; for logical events Unit names the
// quantity (e.g. "configs", "events") and Value is the count.
type Span struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"` // index into the span list; -1 = root
	StartUS int64  `json:"start_us"`
	Value   int64  `json:"value"`
	Unit    string `json:"unit,omitempty"`
}

type kv struct {
	name string
	v    int64
}

// Trace is one request's recorded execution. Create it with New; all
// methods are safe on a nil receiver and for concurrent use (the
// worker executing a point and the request goroutine waiting on it may
// both add spans).
type Trace struct {
	id    string
	route string
	start time.Time

	mu      sync.Mutex
	status  int
	durUS   int64
	done    bool
	spans   []Span
	dropped int
	counts  []kv
}

// New starts a trace for the given request ID and route. The span and
// counter storage is allocated once, here.
func New(id, route string) *Trace {
	return &Trace{
		id:     id,
		route:  route,
		start:  time.Now(),
		spans:  make([]Span, 0, MaxSpans),
		counts: make([]kv, 0, MaxCounts),
	}
}

// ID returns the trace's request ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanRef identifies a span under construction. The zero value (and
// any ref from a nil trace) is inert except that End still measures:
// it carries its own start time, so callers can time a stage into a
// histogram whether or not a trace is attached.
type SpanRef struct {
	t     *Trace
	idx   int
	start time.Time
}

// Start opens a root span. End it with SpanRef.End.
func (t *Trace) Start(name string) SpanRef {
	return t.StartChild(SpanRef{idx: -1}, name)
}

// StartChild opens a span parented under parent (a ref returned by
// Start/StartChild on the same trace; a zero parent means root).
func (t *Trace) StartChild(parent SpanRef, name string) SpanRef {
	sr := SpanRef{t: t, idx: -1, start: time.Now()}
	if t == nil {
		return sr
	}
	pidx := -1
	if parent.t == t {
		pidx = parent.idx
	}
	t.mu.Lock()
	if len(t.spans) < cap(t.spans) {
		sr.idx = len(t.spans)
		t.spans = append(t.spans, Span{
			Name:    name,
			Parent:  pidx,
			StartUS: sr.start.Sub(t.start).Microseconds(),
			Value:   -1, // open
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	return sr
}

// End closes the span and returns its wall-clock duration. It returns
// the measured duration even when the span was dropped or the trace is
// nil, so stage histograms see every observation.
func (sr SpanRef) End() time.Duration {
	d := time.Since(sr.start)
	if sr.t == nil || sr.idx < 0 {
		return d
	}
	sr.t.mu.Lock()
	sr.t.spans[sr.idx].Value = d.Microseconds()
	sr.t.mu.Unlock()
	return d
}

// Event records a completed logical span: value in the given unit
// (e.g. 24 "configs" classified by one batch pass). An empty unit
// means microseconds, for pre-measured durations.
func (t *Trace) Event(parent SpanRef, name string, value int64, unit string) {
	if t == nil {
		return
	}
	pidx := -1
	if parent.t == t {
		pidx = parent.idx
	}
	t.mu.Lock()
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, Span{
			Name:    name,
			Parent:  pidx,
			StartUS: time.Since(t.start).Microseconds(),
			Value:   value,
			Unit:    unit,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Count adds delta to the named per-request counter (cache hits,
// dedup joins, …). At most MaxCounts distinct names are kept; more are
// dropped silently — counters are annotations, not accounting.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.counts {
		if t.counts[i].name == name {
			t.counts[i].v += delta
			return
		}
	}
	if len(t.counts) < cap(t.counts) {
		t.counts = append(t.counts, kv{name, delta})
	}
}

// Finish seals the trace with the response status and total duration.
// Later span operations still record (a worker may outlive the
// request), but Done is set from here on.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.status = status
	t.durUS = time.Since(t.start).Microseconds()
	t.done = true
	t.mu.Unlock()
}

// Out is the JSON shape of a trace, returned by Snapshot and served on
// GET /debug/trace.
type Out struct {
	ID      string           `json:"id"`
	Route   string           `json:"route"`
	Status  int              `json:"status"`
	Start   time.Time        `json:"start"`
	DurUS   int64            `json:"dur_us"`
	Done    bool             `json:"done"`
	Counts  map[string]int64 `json:"counts,omitempty"`
	Spans   []Span           `json:"spans,omitempty"`
	Dropped int              `json:"dropped_spans,omitempty"`
}

// Snapshot copies the trace's current state (an in-flight trace is
// legal to snapshot; open spans report Value -1).
func (t *Trace) Snapshot() Out {
	if t == nil {
		return Out{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	o := Out{
		ID:      t.id,
		Route:   t.route,
		Status:  t.status,
		Start:   t.start,
		DurUS:   t.durUS,
		Done:    t.done,
		Spans:   append([]Span(nil), t.spans...),
		Dropped: t.dropped,
	}
	if len(t.counts) > 0 {
		o.Counts = make(map[string]int64, len(t.counts))
		for _, c := range t.counts {
			o.Counts[c.name] = c.v
		}
	}
	return o
}

// StageTotals sums the wall-clock spans by name (logical-unit events
// excluded): the per-stage microsecond totals an access-log line
// reports. Open spans are skipped.
func (o Out) StageTotals() map[string]int64 {
	var m map[string]int64
	for _, s := range o.Spans {
		if s.Unit != "" || s.Value < 0 {
			continue
		}
		if m == nil {
			m = map[string]int64{}
		}
		m[s.Name] += s.Value
	}
	return m
}

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — and every
// method on that nil is a no-op, so callees never guard.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// idNonce distinguishes processes; idSeq distinguishes requests within
// one. Together they make generated IDs unique without coordination.
var (
	idNonce = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// NewID generates a process-unique request ID.
func NewID() string {
	return fmt.Sprintf("%s-%06d", idNonce, idSeq.Add(1))
}

// SanitizeID validates a client-supplied request ID: at most MaxIDLen
// characters of [A-Za-z0-9._-]. Anything else returns "", telling the
// caller to generate one instead — IDs land in log lines and URLs, so
// the charset is deliberately conservative.
func SanitizeID(s string) string {
	if s == "" || len(s) > MaxIDLen {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}
