package trace

import "sync"

// DefaultRingEntries is the capacity NewRing substitutes for a
// non-positive request.
const DefaultRingEntries = 256

// Ring is a bounded buffer of recent traces: the storage behind
// GET /debug/trace. Adding the N+1th trace overwrites the oldest, so
// memory is fixed at capacity × the per-trace bound. All methods are
// safe on a nil *Ring (no-ops / empty results) and for concurrent use.
type Ring struct {
	mu  sync.Mutex
	buf []*Trace
	pos int // next write slot
	n   int // live entries
}

// NewRing returns an empty ring holding up to capacity traces (<= 0
// selects DefaultRingEntries).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingEntries
	}
	return &Ring{buf: make([]*Trace, capacity)}
}

// Add records t, evicting the oldest entry when full.
func (r *Ring) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.pos] = t
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Get returns the newest trace with the given ID, or nil.
func (r *Ring) Get(id string) *Trace {
	if r == nil || id == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		t := r.buf[(r.pos-1-i+len(r.buf))%len(r.buf)]
		if t != nil && t.id == id {
			return t
		}
	}
	return nil
}

// Recent returns up to max traces, newest first (max <= 0 means all).
func (r *Ring) Recent(max int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if max > 0 && max < n {
		n = max
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.pos-1-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of stored traces.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
