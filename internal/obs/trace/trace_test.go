package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChild(t *testing.T) {
	tr := New("id-1", "/v1/classify")
	root := tr.Start("flight_wait")
	child := tr.StartChild(root, "capture")
	if d := child.End(); d < 0 {
		t.Fatalf("child duration = %v, want >= 0", d)
	}
	tr.Event(root, "batch_configs", 24, "configs")
	root.End()
	tr.Finish(200)

	o := tr.Snapshot()
	if o.ID != "id-1" || o.Route != "/v1/classify" || o.Status != 200 || !o.Done {
		t.Fatalf("snapshot header wrong: %+v", o)
	}
	if len(o.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(o.Spans))
	}
	if o.Spans[0].Parent != -1 {
		t.Fatalf("root parent = %d, want -1", o.Spans[0].Parent)
	}
	if o.Spans[1].Parent != 0 || o.Spans[2].Parent != 0 {
		t.Fatalf("children not parented under root: %+v", o.Spans)
	}
	if o.Spans[2].Unit != "configs" || o.Spans[2].Value != 24 {
		t.Fatalf("event span wrong: %+v", o.Spans[2])
	}
	if o.Spans[0].Value < o.Spans[1].Value {
		t.Fatalf("root (%d µs) shorter than its child (%d µs)", o.Spans[0].Value, o.Spans[1].Value)
	}
}

func TestSpanBoundDrops(t *testing.T) {
	tr := New("id", "r")
	for i := 0; i < MaxSpans+10; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).End()
	}
	o := tr.Snapshot()
	if len(o.Spans) != MaxSpans {
		t.Fatalf("spans stored = %d, want the MaxSpans bound %d", len(o.Spans), MaxSpans)
	}
	if o.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", o.Dropped)
	}
}

func TestCountsBoundedAndMerged(t *testing.T) {
	tr := New("id", "r")
	tr.Count("cache_hits", 1)
	tr.Count("cache_hits", 2)
	for i := 0; i < MaxCounts+5; i++ {
		tr.Count(fmt.Sprintf("c%d", i), 1)
	}
	o := tr.Snapshot()
	if o.Counts["cache_hits"] != 3 {
		t.Fatalf("cache_hits = %d, want 3 (merged)", o.Counts["cache_hits"])
	}
	if len(o.Counts) != MaxCounts {
		t.Fatalf("distinct counts = %d, want the MaxCounts bound %d", len(o.Counts), MaxCounts)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("End on nil trace = %v, want the measured wall duration", d)
	}
	tr.StartChild(sp, "y").End()
	tr.Event(sp, "e", 1, "u")
	tr.Count("c", 1)
	tr.Finish(200)
	if o := tr.Snapshot(); o.ID != "" || len(o.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", o)
	}
	if tr.ID() != "" {
		t.Fatal("nil ID not empty")
	}

	var r *Ring
	r.Add(New("a", "b"))
	if r.Get("a") != nil || r.Len() != 0 || r.Recent(5) != nil {
		t.Fatal("nil ring not inert")
	}
}

func TestStageTotals(t *testing.T) {
	tr := New("id", "r")
	a := tr.Start("capture")
	a.End()
	b := tr.Start("capture")
	b.End()
	tr.Event(SpanRef{}, "batch_configs", 9, "configs")
	open := tr.Start("open")
	_ = open
	totals := tr.Snapshot().StageTotals()
	if _, ok := totals["capture"]; !ok {
		t.Fatalf("capture missing from totals %v", totals)
	}
	if _, ok := totals["batch_configs"]; ok {
		t.Fatalf("logical event leaked into wall totals %v", totals)
	}
	if _, ok := totals["open"]; ok {
		t.Fatalf("open span leaked into totals %v", totals)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("id", "r")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip the context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("NewContext(nil) should return ctx unchanged")
	}
}

func TestNewIDUniqueAndSanitize(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
		if SanitizeID(id) != id {
			t.Fatalf("generated ID %q does not survive its own sanitizer", id)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "näh", string(make([]byte, MaxIDLen+1))} {
		if got := SanitizeID(bad); got != "" {
			t.Fatalf("SanitizeID(%q) = %q, want rejection", bad, got)
		}
	}
	if got := SanitizeID("ok-id_1.2"); got != "ok-id_1.2" {
		t.Fatalf("SanitizeID rejected a legal ID: %q", got)
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(New(fmt.Sprintf("t%d", i), "r"))
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", r.Len())
	}
	if r.Get("t1") != nil || r.Get("t2") != nil {
		t.Fatal("evicted traces still retrievable")
	}
	if tr := r.Get("t5"); tr == nil || tr.ID() != "t5" {
		t.Fatal("newest trace not retrievable")
	}
	recent := r.Recent(0)
	if len(recent) != 3 || recent[0].ID() != "t5" || recent[2].ID() != "t3" {
		ids := make([]string, len(recent))
		for i, tr := range recent {
			ids[i] = tr.ID()
		}
		t.Fatalf("Recent order = %v, want [t5 t4 t3]", ids)
	}
	if got := r.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) = %d entries", len(got))
	}
}

// TestConcurrentSpans exercises the lock paths under the race
// detector: one goroutine playing the request (root spans, counts),
// others playing workers (child spans, events), plus snapshots.
func TestConcurrentSpans(t *testing.T) {
	tr := New("id", "r")
	root := tr.Start("flight_wait")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StartChild(root, "capture").End()
				tr.Event(root, "events", int64(i), "events")
				tr.Count("cache_misses", 1)
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	root.End()
	tr.Finish(200)
	o := tr.Snapshot()
	if len(o.Spans)+o.Dropped != 1+4*50*2 {
		t.Fatalf("spans %d + dropped %d != %d attempted", len(o.Spans), o.Dropped, 1+4*50*2)
	}
	if o.Counts["cache_misses"] != 200 {
		t.Fatalf("count = %d, want 200", o.Counts["cache_misses"])
	}
}
