package obs

// prom.go — Prometheus text exposition (format version 0.0.4) for a
// registry snapshot, so the daemon's GET /metrics can be scraped by a
// standard Prometheus/OpenMetrics collector as an alternative to the
// canonical JSON snapshot. Registry names use dots as separators
// (serve.stage.capture_us); the exposition charset does not allow
// dots, so PromName maps them to underscores. Rendering is
// deterministic: metrics sorted by name, histogram buckets cumulative
// in bound order with the required +Inf terminal bucket.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a registry metric name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots (the registry's separator)
// and any other illegal character become underscores, and a leading
// digit is prefixed with one.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		if legal {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: one # TYPE comment per metric (plus # HELP when
// help has an entry under the metric's registry name), counters and
// gauges as single samples, histograms as cumulative _bucket series
// with le labels ending in +Inf, plus _sum and _count. Output is
// deterministic for a given snapshot.
func WritePrometheus(w io.Writer, s *Snapshot, help map[string]string) error {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)

	header := func(name, kind string) error {
		if h := help[name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", PromName(name), promEscapeHelp(h)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", PromName(name), kind)
		return err
	}

	for _, name := range names {
		pn := PromName(name)
		if v, ok := s.Counters[name]; ok {
			if err := header(name, "counter"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			if err := header(name, "gauge"); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", pn, v); err != nil {
				return err
			}
			continue
		}
		h := s.Histograms[name]
		if err := header(name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > len(h.Bounds) {
			cum += h.Counts[len(h.Bounds)]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promEscapeHelp escapes a HELP string per the exposition format
// (backslash and newline).
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
