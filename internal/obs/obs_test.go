package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp: the disabled state must be callable end to
// end — instrumented code carries no guards.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(1)
	r.Histogram("h", DepthBuckets).Observe(3)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter value = %d, want 0", got)
	}
	if got := r.Histogram("h", DepthBuckets).Count(); got != 0 {
		t.Errorf("nil histogram count = %d, want 0", got)
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.runs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("sim.runs") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{1, 2, 4, 8})
	for _, v := range []int64{0, 1, 2, 3, 5, 9, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Errorf("min/max = %d/%d, want 0/100", s.Min, s.Max)
	}
	wantCounts := []int64{2, 1, 1, 1, 2} // <=1, <=2, <=4, <=8, overflow
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 120 {
		t.Errorf("sum = %d, want 120", s.Sum)
	}
}

// TestConcurrentObservation hammers one registry from many goroutines;
// run under -race this is the registry's thread-safety certificate.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(seed)
				r.Histogram("h", DepthBuckets).Observe(seed + int64(i)%17)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", DepthBuckets).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Histogram("h", []int64{1, 10}).Observe(5)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("snapshot JSON unstable:\n%s\n%s", first, second)
	}
	var decoded Snapshot
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["a"] != 1 || decoded.Counters["b"] != 2 {
		t.Errorf("decoded counters wrong: %+v", decoded.Counters)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []int64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if b := ExpBuckets(0, 0, 2); b[0] != 1 || b[1] != 2 {
		t.Errorf("degenerate args not clamped: %v", b)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry should start nil")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Error("SetDefault did not install the registry")
	}
	Default().Counter("x").Inc()
	if r.Counter("x").Value() != 1 {
		t.Error("default registry did not record")
	}
}
