package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.stage.capture_us": "serve_stage_capture_us",
		"build.info":             "build_info",
		"already_legal:x":        "already_legal:x",
		"9starts.with.digit":     "_9starts_with_digit",
		"weird-chars%here":       "weird_chars_here",
		"":                       "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.classify_requests").Add(5)
	r.Gauge("serve.inflight").Set(2)
	h := r.Histogram("serve.stage.capture_us", []int64{1, 4, 16})
	h.Observe(2)  // bucket le=4
	h.Observe(3)  // bucket le=4
	h.Observe(99) // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot(), map[string]string{
		"serve.classify_requests": "classify requests served",
	}); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP serve_classify_requests classify requests served\n",
		"# TYPE serve_classify_requests counter\nserve_classify_requests 5\n",
		"# TYPE serve_inflight gauge\nserve_inflight 2\n",
		"# TYPE serve_stage_capture_us histogram\n",
		"serve_stage_capture_us_bucket{le=\"1\"} 0\n",
		"serve_stage_capture_us_bucket{le=\"4\"} 2\n",
		"serve_stage_capture_us_bucket{le=\"16\"} 2\n",
		"serve_stage_capture_us_bucket{le=\"+Inf\"} 3\n",
		"serve_stage_capture_us_sum 104\n",
		"serve_stage_capture_us_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") {
		t.Fatalf("exposition contains a dot (illegal metric-name charset):\n%s", out)
	}

	// Deterministic: a second render of an equal snapshot is byte-equal.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	var b3 strings.Builder
	if err := WritePrometheus(&b3, r.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b3.String() {
		t.Fatal("equal snapshots rendered differently")
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, &Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty snapshots produced output: %q", b.String())
	}
}
