// Run manifests: one structured JSON object per run, durably tying a
// result to the exact kernel, configuration, grid point and toolchain
// that produced it. Manifests are the artifact trail the trace-driven
// methodology needs — a number without its manifest is unreproducible.

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/stats"
)

// Schema identifiers, bumped on incompatible layout changes.
const (
	RunManifestSchema        = "repro/run-manifest/v1"
	ExperimentManifestSchema = "repro/experiment-manifest/v1"
)

// Env captures the toolchain and runtime shape of the producing
// process.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// ConfigInfo is the flattened simulator/machine configuration of a run
// (the paper's varied parameters, §6).
type ConfigInfo struct {
	NPE        int    `json:"npe"`
	PageSize   int    `json:"page_size"`
	CacheElems int    `json:"cache_elems"`
	Layout     string `json:"layout,omitempty"`
	Policy     string `json:"policy,omitempty"`
}

// AccessCounts mirrors stats.Counters with stable JSON names.
type AccessCounts struct {
	Writes      int64 `json:"writes"`
	LocalReads  int64 `json:"local_reads"`
	CachedReads int64 `json:"cached_reads"`
	RemoteReads int64 `json:"remote_reads"`
}

func countsOf(c stats.Counters) AccessCounts {
	return AccessCounts{
		Writes: c.Writes, LocalReads: c.LocalReads,
		CachedReads: c.CachedReads, RemoteReads: c.RemoteReads,
	}
}

// Dist summarizes a per-PE distribution (Figure 5's load-balance view).
type Dist struct {
	Min  int64   `json:"min"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
	CV   float64 `json:"cv"`
}

func distOf(vals []int64) Dist {
	b := stats.BalanceOf(vals)
	return Dist{Min: b.Min, Max: b.Max, Mean: b.Mean, CV: b.CV}
}

// FaultInfo records a chaos run: the fault-injection knobs that shaped
// the interconnect and the self-healing page protocol's response (see
// docs/FAULTS.md). Present in a manifest only when faults were injected,
// so fault-free manifests stay byte-compatible with earlier schemas.
type FaultInfo struct {
	Seed       int64   `json:"seed"`
	Drop       float64 `json:"drop"`
	Dup        float64 `json:"dup"`
	DelayProb  float64 `json:"delay_prob,omitempty"`
	MaxDelayMS float64 `json:"max_delay_ms,omitempty"`

	Dropped        int64 `json:"dropped"`
	Duplicated     int64 `json:"duplicated"`
	Delayed        int64 `json:"delayed"`
	RedundantBytes int64 `json:"redundant_bytes"`

	Retries     int64 `json:"retries"`
	DupReplies  int64 `json:"dup_replies_suppressed"`
	DupRequests int64 `json:"dup_requests_suppressed"`
}

// Checksum is one output array's checksum, for cross-run comparison.
type Checksum struct {
	Name    string  `json:"name"`
	Elems   int     `json:"elems"`
	Defined int     `json:"defined"`
	Sum     float64 `json:"sum"`
}

// RunManifest describes one simulated run.
type RunManifest struct {
	Schema        string          `json:"schema"`
	Kernel        string          `json:"kernel"`
	N             int             `json:"n"`
	GridIndex     int             `json:"grid_index"`
	Config        ConfigInfo      `json:"config"`
	WallSec       float64         `json:"wall_sec"`
	Env           Env             `json:"env"`
	Totals        AccessCounts    `json:"totals"`
	RemotePercent float64         `json:"remote_percent"`
	PerPE         []AccessCounts  `json:"per_pe"`
	Distributions map[string]Dist `json:"distributions"`
	Checksums     []Checksum      `json:"checksums,omitempty"`
	Faults        *FaultInfo      `json:"faults,omitempty"`
	Metrics       *Snapshot       `json:"metrics,omitempty"`
}

// NewRunManifest builds the manifest of one run from its per-PE
// counters, filling in totals, the headline remote percentage, the
// per-class load-balance distributions, and the environment.
func NewRunManifest(kernel string, n, gridIndex int, cfg ConfigInfo, wall time.Duration, perPE stats.PerPE) *RunManifest {
	m := &RunManifest{
		Schema:    RunManifestSchema,
		Kernel:    kernel,
		N:         n,
		GridIndex: gridIndex,
		Config:    cfg,
		WallSec:   wall.Seconds(),
		Env:       CaptureEnv(),
		PerPE:     make([]AccessCounts, len(perPE)),
		Distributions: map[string]Dist{
			"writes":       distOf(perPE.Extract(stats.Write)),
			"local_reads":  distOf(perPE.Extract(stats.LocalRead)),
			"cached_reads": distOf(perPE.Extract(stats.CachedRead)),
			"remote_reads": distOf(perPE.Extract(stats.RemoteRead)),
		},
	}
	for i, c := range perPE {
		m.PerPE[i] = countsOf(c)
	}
	totals := perPE.Totals()
	m.Totals = countsOf(totals)
	m.RemotePercent = totals.RemotePercent()
	return m
}

// Check is one shape-criterion result inside an experiment manifest.
type Check struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// ExperimentManifest describes one experiment run (a figure, table,
// ablation or extension): what ran, how long it took, whether its
// machine-checked shape criteria passed, and under which toolchain.
type ExperimentManifest struct {
	Schema  string    `json:"schema"`
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	Paper   string    `json:"paper,omitempty"`
	WallSec float64   `json:"wall_sec"`
	Env     Env       `json:"env"`
	Pass    bool      `json:"pass"`
	Checks  []Check   `json:"checks"`
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// WriteManifest serializes v as indented JSON to <dir>/<name>.json,
// creating dir as needed, and returns the written path.
func WriteManifest(dir, name string, v any) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: manifest dir: %w", err)
	}
	payload, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: marshaling manifest %s: %w", name, err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, append(payload, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("obs: writing manifest: %w", err)
	}
	return path, nil
}
