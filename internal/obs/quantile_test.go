package obs

// quantile_test.go — edge-case and property coverage for
// HistSnapshot.Quantile: the estimator behind the serving stack's
// p50/p99/p999 reporting (docs/OBSERVABILITY.md). The estimate
// interpolates linearly inside the bucket holding the target rank,
// clamped to the observed [Min, Max]; these tests pin the edges where
// that can go wrong.

import (
	"math"
	"testing"
)

// snap builds a HistSnapshot the way Registry.Snapshot would, from raw
// observations, so the tests exercise the same bucket assignment as
// production.
func snap(bounds []int64, obs ...int64) HistSnapshot {
	r := NewRegistry()
	h := r.Histogram("h", bounds)
	for _, v := range obs {
		h.Observe(v)
	}
	return r.Snapshot().Histograms["h"]
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := snap([]int64{1, 10, 100})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// Five observations, all in the le=10 bucket, spanning [3, 9]:
	// interpolation runs from Min to min(bound, Max) = 9.
	h := snap([]int64{10}, 3, 5, 6, 8, 9)
	if got := h.Quantile(0); got != 3 {
		t.Fatalf("Quantile(0) = %g, want the observed min 3", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Fatalf("Quantile(1) = %g, want the observed max 9", got)
	}
	// target = .5*5 = 2.5 ranks into a 5-count bucket spanning [3, 9].
	want := 3 + (2.5/5)*(9-3)
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Quantile(0.5) = %g, want %g", got, want)
	}
	if got := h.Quantile(0.5); got < 3 || got > 9 {
		t.Fatalf("Quantile(0.5) = %g escapes the observed range [3, 9]", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Every observation beyond the last bound: the overflow bucket's
	// upper edge is the observed max, so estimates stay finite and
	// clamped to [Min, Max] = [12, 20].
	h := snap([]int64{10}, 12, 14, 18, 20)
	if got := h.Quantile(0.5); got < 12 || got > 20 {
		t.Fatalf("overflow Quantile(0.5) = %g, want within [12, 20]", got)
	}
	want := 12 + (2.0/4)*(20-12) // target rank 2 of 4 across [12, 20]
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("overflow Quantile(0.5) = %g, want %g", got, want)
	}
	if got := h.Quantile(1); got != 20 {
		t.Fatalf("overflow Quantile(1) = %g, want 20", got)
	}
}

func TestQuantileExactBucketEdge(t *testing.T) {
	// Two buckets filled 2+2: the median rank lands exactly on the
	// first bucket's upper bound, so interpolation must return the
	// bucket edge itself.
	h := snap([]int64{10, 20}, 5, 7, 15, 20)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("Quantile(0.5) = %g, want the exact bucket edge 10", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	shapes := map[string]HistSnapshot{
		"uniform":   snap(ExpBuckets(1, 2, 10), 1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
		"skewed":    snap(ExpBuckets(1, 2, 6), 1, 1, 1, 1, 1, 1, 1, 2, 900),
		"overflow":  snap([]int64{4}, 100, 200, 300),
		"singleton": snap([]int64{10, 100}, 42),
		"edges":     snap([]int64{10, 20, 40}, 10, 10, 20, 20, 40, 40),
	}
	for name, h := range shapes {
		prev := math.Inf(-1)
		for i := 0; i <= 1000; i++ {
			q := float64(i) / 1000
			got := h.Quantile(q)
			if got < prev {
				t.Fatalf("%s: Quantile not monotone: Quantile(%g) = %g < Quantile(%g) = %g",
					name, q, got, float64(i-1)/1000, prev)
			}
			if h.Count > 0 && (got < float64(h.Min) || got > float64(h.Max)) {
				t.Fatalf("%s: Quantile(%g) = %g escapes [Min=%d, Max=%d]", name, q, got, h.Min, h.Max)
			}
			prev = got
		}
	}
}
