// Package obs is the reproduction's observability layer: a
// dependency-light metrics registry (counters, gauges, histograms with
// fixed bucket layouts) plus structured run manifests that tie every
// result to the exact configuration and toolchain that produced it.
//
// The paper's whole argument rests on measurement — classifying every
// access and reporting remote-read percentages across PE/page-size
// grids (§6–§7) — so the layers that produce those numbers (the sweep
// engine, the counting simulator, the concurrent machine model) report
// into a Registry, and long sweeps become observable while they run
// instead of only at the end.
//
// Two properties are load-bearing:
//
//   - Nil safety: every method on a nil *Registry, *Counter, *Gauge or
//     *Histogram is a no-op, so instrumented code needs no guards and an
//     uninstrumented run pays only a nil check per event. Simulation
//     results must be bit-identical with and without a registry
//     attached (the instrumentation observes; it never participates).
//   - Race safety: instruments are backed by atomics and the registry
//     by a mutex, so concurrent sweep workers and PE goroutines can
//     share one registry freely.
//
// Snapshots serialize to JSON with sorted keys, so a snapshot of a
// deterministic run is itself byte-stable. See docs/OBSERVABILITY.md.
package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is the disabled state: every lookup
// returns a nil instrument whose methods no-op.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// defaultReg is the process-wide registry used by instrumentation
// points that were not handed an explicit registry. It is nil (all
// instrumentation disabled) unless a front end like lfksim enables it.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide default registry, or nil when
// observability is disabled (the initial state).
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide default registry. Passing
// nil disables default instrumentation again.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Counter returns the named monotonic counter, creating it on first
// use. On a nil registry it returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. On a nil
// registry it returns nil (a no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (which must be sorted ascending) on first use.
// Later calls return the existing histogram regardless of bounds — the
// first registration fixes the layout. On a nil registry it returns
// nil (a no-op histogram).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing count. All methods are safe on
// a nil receiver and for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. All methods are safe on a nil
// receiver and for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d to the gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets: observation v falls
// into the first bucket whose upper bound satisfies v <= bound, or into
// the overflow bucket past the last bound. All methods are safe on a
// nil receiver and for concurrent use.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// ExpBuckets returns n bucket bounds starting at start and growing by
// factor: {start, start*factor, ...}. It is the standard fixed layout
// for latencies, depths and durations, whose ranges span orders of
// magnitude.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	bounds := make([]int64, 0, n)
	for v := start; len(bounds) < n; v *= factor {
		bounds = append(bounds, v)
	}
	return bounds
}

// Canonical bucket layouts shared by the instrumented layers, so
// snapshots from different runs line up bucket-for-bucket.
var (
	// DepthBuckets covers queue/inbox depths: 1..2048.
	DepthBuckets = ExpBuckets(1, 2, 12)
	// StepBuckets covers logical-step latencies: 1..64k.
	StepBuckets = ExpBuckets(1, 2, 17)
	// MicrosBuckets covers durations in microseconds: 1µs..16s.
	MicrosBuckets = ExpBuckets(1, 4, 13)
	// ByteBuckets covers message sizes in bytes: 16B..512KiB.
	ByteBuckets = ExpBuckets(16, 4, 8)
)

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// HistSnapshot is one histogram's state. Bounds holds the bucket upper
// bounds; Counts has one entry per bound plus a final overflow bucket.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	Mean   float64 `json:"mean"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution by linear interpolation inside the bucket containing
// the target rank, clamped to the observed [Min, Max]. It is an
// estimate — fixed buckets cannot recover exact order statistics — but
// it is deterministic and monotone in q, which is what dashboards and
// load reports need.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min)
	}
	if q >= 1 {
		return float64(h.Max)
	}
	target := q * float64(h.Count)
	var cum int64
	lower := float64(h.Min)
	for i, c := range h.Counts {
		upper := float64(h.Max)
		if i < len(h.Bounds) && float64(h.Bounds[i]) < upper {
			upper = float64(h.Bounds[i])
		}
		if c > 0 {
			if float64(cum+c) >= target {
				if upper < lower {
					upper = lower
				}
				frac := (target - float64(cum)) / float64(c)
				return lower + frac*(upper-lower)
			}
			cum += c
			lower = upper
		}
	}
	return float64(h.Max)
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{
				Count:  h.count.Load(),
				Sum:    h.sum.Load(),
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			if hs.Count > 0 {
				hs.Min = h.min.Load()
				hs.Max = h.max.Load()
				hs.Mean = float64(hs.Sum) / float64(hs.Count)
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// MarshalJSON renders the snapshot with encoding/json's sorted map
// keys, so equal registry states produce byte-equal documents.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot // shed the method to avoid recursion
	return json.Marshal((*alias)(s))
}

// PublishExpvar exposes the registry under the given expvar name (and
// therefore on /debug/vars of any HTTP server using the default mux).
// Publishing the same name twice is a no-op, matching expvar's
// publish-once model.
func PublishExpvar(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
