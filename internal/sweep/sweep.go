// Package sweep is the parallel parameter-sweep engine of the
// reproduction. The paper's whole evaluation (§6–§7) is a grid — every
// Livermore kernel × PE count × page size × cache setting — and each
// grid point is an independent counting-simulator run, so the sweep
// itself is an embarrassingly parallel loop nest: this package
// distributes it over a bounded worker pool the way the paper
// distributes loop iterations over PEs.
//
// The engine makes three guarantees:
//
//   - Determinism: results are returned in grid order — result i is
//     point i — regardless of how the scheduler interleaves workers,
//     and every result is bit-identical to a serial sim.Run of the
//     same point (no mutable state is shared between points).
//   - Bounded concurrency: at most `workers` simulations are in flight
//     (default runtime.GOMAXPROCS(0)); a sweep of tens of thousands of
//     points never spawns more than that many goroutines.
//   - First-error propagation: a failing point cancels the sweep's
//     context and abandons queued points at higher grid indices;
//     lower-indexed points still run, so the error reported is
//     deterministically the one at the lowest failing grid index no
//     matter which failure the scheduler reaches first.
//
// On top of the worker pool sits the execute-once/classify-many
// planner (docs/PERF.md): grid points are grouped by (kernel, problem
// size), each group's reference stream is captured once — lazily, by
// the first worker to reach the group, and shared read-only from then
// on — and every other point of the group is classified by replaying
// the stream (internal/refstream), skipping the kernel's floating-point
// execution entirely. Replay results are proven bit-identical to
// direct runs, so the guarantees above are preserved; points that
// replay cannot serve (tracing runs, partial-fill ablations) fall back
// to direct execution per point.
//
// See docs/SWEEP.md for grid semantics and how to build an experiment
// on the engine.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// Point is one grid point: a kernel, a problem size (0 = kernel
// default) and a simulator configuration.
type Point struct {
	Kernel *loops.Kernel
	N      int
	Config sim.Config
}

// String identifies the point in errors and logs.
func (p Point) String() string {
	key := "<nil>"
	if p.Kernel != nil {
		key = p.Kernel.Key
	}
	c := p.Config
	return fmt.Sprintf("%s/n=%d/npe=%d/ps=%d/cache=%d/%s/%s",
		key, p.N, c.NPE, c.PageSize, c.CacheElems, c.Layout, c.Policy)
}

// Grid declares a cross product of sweep axes. Zero-valued axes default
// to the paper's baseline, so the zero Grid plus a kernel list is the
// paper's standard sweep.
type Grid struct {
	Kernels    []*loops.Kernel
	N          int              // problem size for every kernel (0 = kernel default)
	NPEs       []int            // default {1, 2, 4, 8, 16, 32, 64} (the paper's PE axis)
	PageSizes  []int            // default {32}
	CacheElems []int            // default {256}; 0 disables caching
	Layouts    []partition.Kind // default {KindModulo}
	Policies   []cache.Policy   // default {LRU}
}

// PaperPEs is the PE axis used by the paper's figures.
var PaperPEs = []int{1, 2, 4, 8, 16, 32, 64}

// Size returns the number of points Points would produce, without
// materializing them — front ends use it to bound a grid before
// expansion.
func (g Grid) Size() int {
	axis := func(n, def int) int {
		if n == 0 {
			return def
		}
		return n
	}
	return len(g.Kernels) *
		axis(len(g.NPEs), len(PaperPEs)) *
		axis(len(g.PageSizes), 1) *
		axis(len(g.CacheElems), 1) *
		axis(len(g.Layouts), 1) *
		axis(len(g.Policies), 1)
}

// Points expands the grid in deterministic order: kernels outermost,
// then NPEs, page sizes, cache sizes, layouts, policies innermost.
// Kernel-major order also maximizes the per-worker init memoization in
// sim.Scratch.
func (g Grid) Points() []Point {
	npes := g.NPEs
	if len(npes) == 0 {
		npes = PaperPEs
	}
	pss := g.PageSizes
	if len(pss) == 0 {
		pss = []int{32}
	}
	ces := g.CacheElems
	if len(ces) == 0 {
		ces = []int{256}
	}
	layouts := g.Layouts
	if len(layouts) == 0 {
		layouts = []partition.Kind{partition.KindModulo}
	}
	pols := g.Policies
	if len(pols) == 0 {
		pols = []cache.Policy{cache.LRU}
	}
	pts := make([]Point, 0, len(g.Kernels)*len(npes)*len(pss)*len(ces)*len(layouts)*len(pols))
	for _, k := range g.Kernels {
		for _, npe := range npes {
			for _, ps := range pss {
				for _, ce := range ces {
					for _, lay := range layouts {
						for _, pol := range pols {
							cfg := sim.PaperConfig(npe, ps)
							cfg.CacheElems = ce
							cfg.Layout = lay
							cfg.Policy = pol
							pts = append(pts, Point{Kernel: k, N: g.N, Config: cfg})
						}
					}
				}
			}
		}
	}
	return pts
}

// Progress is a point-in-time view of a running sweep, delivered to
// the Options.Progress callback after every point start and finish.
type Progress struct {
	Total   int // points in the sweep
	Started int // points handed to a worker
	Done    int // points completed successfully
	Failed  int // points that returned an error

	Elapsed time.Duration // since the sweep began
	// ETA estimates the remaining wall time by extrapolating the mean
	// per-point rate so far; zero until at least one point is done and
	// once the sweep is complete.
	ETA time.Duration
}

// ProgressFunc receives live sweep progress. Calls are serialized (the
// engine never invokes it concurrently) and ordered: Started is
// non-decreasing across calls, as is Done+Failed.
type ProgressFunc func(Progress)

// ReplayMode selects how the sweep planner uses reference-stream
// replay (internal/refstream) to serve grid points.
type ReplayMode int

const (
	// ReplayAuto (the zero value) replays groups of two or more
	// eligible points sharing a (kernel, problem size) — where one
	// capture amortizes — and runs everything else directly.
	ReplayAuto ReplayMode = iota
	// ReplayOff runs every point directly through sim.Scratch.
	ReplayOff
	// ReplayOn replays every eligible point, even singleton groups.
	// Ineligible points (tracing, partial-fill) still run directly.
	ReplayOn
)

func (m ReplayMode) String() string {
	switch m {
	case ReplayAuto:
		return "auto"
	case ReplayOff:
		return "off"
	case ReplayOn:
		return "on"
	}
	return fmt.Sprintf("ReplayMode(%d)", int(m))
}

// Options configures a sweep beyond its point list.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is invoked after every point start and
	// finish. Keep it cheap: it runs on the worker's goroutine under
	// the tracker lock.
	Progress ProgressFunc
	// Metrics, when non-nil, receives sweep counters (points total /
	// started / done / failed — see the Metric* names) and is handed to
	// each worker's sim.Scratch for per-run signals. When nil, the
	// process-wide obs.Default() is used (itself nil — fully disabled —
	// unless a front end enabled it).
	Metrics *obs.Registry
	// Replay selects the execute-once/classify-many strategy. The
	// default (ReplayAuto) is safe for every sweep: replay is proven
	// bit-identical to direct execution, so changing the mode changes
	// wall time, never results.
	Replay ReplayMode
}

// Observability counter names recorded by sweeps. Totals are added when
// a sweep starts, so Done+Failed converging on Total is the live
// completion signal a front end can render.
const (
	MetricPointsTotal   = "sweep.points_total"
	MetricPointsStarted = "sweep.points_started"
	MetricPointsDone    = "sweep.points_done"
	MetricPointsFailed  = "sweep.points_failed"

	// Planner counters: captures performed (once per replay group),
	// points served by stream replay, and points run directly.
	MetricStreamCaptures = "sweep.stream_captures"
	MetricReplayPoints   = "sweep.replay_points"
	MetricDirectPoints   = "sweep.direct_points"
)

// replayGroup is the shared state of one (kernel, problem size) replay
// group. The first worker to reach any of the group's points performs
// the capture under once; afterwards the stream (or the capture error)
// is shared read-only by every worker.
type replayGroup struct {
	kernel *loops.Kernel
	n      int // as given by the point (Capture clamps internally)

	once sync.Once
	st   *refstream.Stream
	err  error
}

// capture runs the group's one-shot capture, recording it in the
// registry. Safe to call from any number of workers; only the first
// executes.
func (g *replayGroup) capture(captures *obs.Counter) (*refstream.Stream, error) {
	g.once.Do(func() {
		captures.Inc()
		g.st, g.err = refstream.Capture(g.kernel, g.n)
	})
	return g.st, g.err
}

// planReplay assigns each point to a replay group, or nil for direct
// execution. Grouping is by (kernel, clamped problem size) — exactly
// the key the reference stream depends on. Under ReplayAuto only
// groups with at least two eligible points get a group (a singleton
// would pay capture — an instrumented direct run — without amortizing
// it); under ReplayOn every eligible point does; under ReplayOff the
// plan is all-nil.
func planReplay(pts []Point, mode ReplayMode) []*replayGroup {
	plan := make([]*replayGroup, len(pts))
	if mode == ReplayOff {
		return plan
	}
	type key struct {
		k *loops.Kernel
		n int
	}
	groups := make(map[key]*replayGroup)
	counts := make(map[key]int)
	for _, p := range pts {
		if p.Kernel == nil || !refstream.Eligible(p.Config) {
			continue
		}
		counts[key{p.Kernel, p.Kernel.ClampN(p.N)}]++
	}
	for i, p := range pts {
		if p.Kernel == nil || !refstream.Eligible(p.Config) {
			continue
		}
		k := key{p.Kernel, p.Kernel.ClampN(p.N)}
		if mode == ReplayAuto && counts[k] < 2 {
			continue
		}
		g := groups[k]
		if g == nil {
			g = &replayGroup{kernel: p.Kernel, n: p.N}
			groups[k] = g
		}
		plan[i] = g
	}
	return plan
}

// tracker serializes progress accounting and callback delivery.
type tracker struct {
	mu sync.Mutex
	cb ProgressFunc
	p  Progress
	t0 time.Time
}

func newTracker(total int, cb ProgressFunc) *tracker {
	if cb == nil {
		return nil
	}
	return &tracker{cb: cb, p: Progress{Total: total}, t0: time.Now()}
}

// update applies f to the progress state and delivers the callback.
// Holding the lock through the callback is what guarantees serialized,
// ordered delivery.
func (t *tracker) update(f func(*Progress)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f(&t.p)
	t.p.Elapsed = time.Since(t.t0)
	t.p.ETA = 0
	if finished := t.p.Done + t.p.Failed; t.p.Done > 0 && finished < t.p.Total {
		t.p.ETA = time.Duration(float64(t.p.Elapsed) / float64(finished) * float64(t.p.Total-finished))
	}
	t.cb(t.p)
}

// Run sweeps the points over runtime.GOMAXPROCS(0) workers. See RunN.
func Run(ctx context.Context, pts []Point) ([]*sim.Result, error) {
	return RunN(ctx, 0, pts)
}

// RunN sweeps the points over a pool of `workers` goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0)) and returns the results
// in grid order: results[i] is the simulation of pts[i]. Each worker
// reuses one sim.Scratch across its points. On failure the lowest-index
// error is returned and the remaining queued points are abandoned; on
// external cancellation the context error is returned.
func RunN(ctx context.Context, workers int, pts []Point) ([]*sim.Result, error) {
	return RunOpts(ctx, pts, Options{Workers: workers})
}

// RunOpts is RunN with live progress reporting, metrics, and planner
// control: the same deterministic grid-order results and lowest-index
// error contract, plus per-point Progress callbacks, registry counters,
// and Options.Replay. The instrumentation observes without
// participating, and replay is bit-identical to direct execution —
// results do not depend on any Options field.
func RunOpts(ctx context.Context, pts []Point, opts Options) ([]*sim.Result, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	var (
		cStarted  = reg.Counter(MetricPointsStarted)
		cDone     = reg.Counter(MetricPointsDone)
		cFailed   = reg.Counter(MetricPointsFailed)
		cCaptures = reg.Counter(MetricStreamCaptures)
		cReplay   = reg.Counter(MetricReplayPoints)
		cDirect   = reg.Counter(MetricDirectPoints)
	)
	reg.Counter(MetricPointsTotal).Add(int64(len(pts)))
	tr := newTracker(len(pts), opts.Progress)
	plan := planReplay(pts, opts.Replay)

	results := make([]*sim.Result, len(pts))
	err := dispatch(ctx, opts.Workers, len(pts), func(context.Context) func(int) error {
		scratch := sim.NewScratch()
		scratch.Metrics = reg
		replayer := refstream.NewReplayer()
		return func(i int) error {
			cStarted.Inc()
			tr.update(func(p *Progress) { p.Started++ })
			p := pts[i]
			if p.Kernel == nil {
				cFailed.Inc()
				tr.update(func(p *Progress) { p.Failed++ })
				return fmt.Errorf("sweep: point %d (%s): nil kernel", i, p)
			}
			var (
				res *sim.Result
				err error
			)
			if g := plan[i]; g != nil {
				var st *refstream.Stream
				if st, err = g.capture(cCaptures); err == nil {
					res, err = replayer.Run(st, p.Config)
					cReplay.Inc()
				}
			} else {
				res, err = scratch.Run(p.Kernel, p.N, p.Config)
				cDirect.Inc()
			}
			if err != nil {
				cFailed.Inc()
				tr.update(func(p *Progress) { p.Failed++ })
				return fmt.Errorf("sweep: point %d (%s): %w", i, p, err)
			}
			results[i] = res
			cDone.Inc()
			tr.update(func(p *Progress) { p.Done++ })
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Map applies f to every item over a bounded worker pool and returns
// the outputs in input order. It is the experiment-level counterpart of
// RunN: f(ctx, i, item) runs concurrently with at most `workers` calls
// in flight (workers <= 0 means runtime.GOMAXPROCS(0)); the first
// error (lowest index) cancels the pool's context and is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := dispatch(ctx, workers, len(items), func(ctx context.Context) func(int) error {
		return func(i int) error {
			r, err := f(ctx, i, items[i])
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dispatch fans indices [0, n) out over a worker pool. newWorker is
// called once per goroutine to build per-worker state — it receives the
// pool's derived context, which is canceled on the first error or when
// the parent is canceled — and the returned closure runs one index.
//
// The error at the lowest failing index wins deterministically: after a
// failure, indices above the current winner are abandoned, but lower
// indices still run (one of them may fail and become the new winner).
// Cancellation of the parent context abandons everything.
func dispatch(parent context.Context, workers, n int, newWorker func(ctx context.Context) func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	report := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	cut := func() int {
		mu.Lock()
		defer mu.Unlock()
		return errIdx
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			run := newWorker(ctx)
			for i := range idx {
				// Drain without running (so the feeder never blocks)
				// when the caller canceled, or when a lower-index error
				// already decided the outcome. Indices below the
				// current winner still run: only a lower index can
				// displace it, which keeps the reported error the
				// lowest-index failure regardless of scheduling.
				if parent.Err() != nil || i > cut() {
					continue
				}
				if err := run(i); err != nil {
					report(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if err := parent.Err(); err != nil {
		return err
	}
	return firstErr
}
