// Package sweep is the parallel parameter-sweep engine of the
// reproduction. The paper's whole evaluation (§6–§7) is a grid — every
// Livermore kernel × PE count × page size × cache setting — and each
// grid point is an independent counting-simulator run, so the sweep
// itself is an embarrassingly parallel loop nest: this package
// distributes it over a bounded worker pool the way the paper
// distributes loop iterations over PEs.
//
// The engine makes three guarantees:
//
//   - Determinism: results are returned in grid order — result i is
//     point i — regardless of how the scheduler interleaves workers,
//     and every result is bit-identical to a serial sim.Run of the
//     same point (no mutable state is shared between points).
//   - Bounded concurrency: at most `workers` simulations are in flight
//     (default runtime.GOMAXPROCS(0)); a sweep of tens of thousands of
//     points never runs more than that many simulations at once. (The
//     engine may park a few extra coordination goroutines — the
//     capture stage below — but every simulation, capture or replay,
//     holds one of the `workers` tokens.)
//   - First-error propagation: a failing point cancels the sweep's
//     context and abandons queued points at higher grid indices;
//     lower-indexed points still run, so the error reported is
//     deterministically the one at the lowest failing grid index no
//     matter which failure the scheduler reaches first.
//
// On top of the worker pool sits the execute-once/classify-many
// planner (docs/PERF.md): grid points are grouped by (kernel, problem
// size), each group's reference stream is captured once — by the
// worker that picks the group up, against that worker's reusable
// scratch — and the whole group is classified in a single batch pass
// over the stream (refstream.Replayer.RunBatch), so the decode work is
// paid once per group rather than once per point and the kernel's
// floating-point execution is skipped entirely. Replay results are
// proven bit-identical to direct runs, so the guarantees above are
// preserved; points that replay cannot serve (tracing runs,
// partial-fill ablations) fall back to direct execution per point, and
// ReplayPoint demotes the batch pass to one replay per point for
// benchmarking the two strategies against each other.
//
// Captures and replays are pipelined: a capture stage prefetches each
// group's reference stream while a replay stage classifies tasks whose
// captures have already landed, so the capture of a later group
// overlaps the replay of earlier ones instead of sitting on the
// critical path. Both stages draw on the same `workers` token budget,
// and replay workers hand refstream.RunBatch the tokens they hold so a
// wide group can fan its partitions over otherwise-idle cores. The
// sweep.capture_overlap counter reports how often the pipeline paid
// off (a prefetched capture completing while replay work was in
// flight).
//
// See docs/SWEEP.md for grid semantics and how to build an experiment
// on the engine.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// Point is one grid point: a kernel, a problem size (0 = kernel
// default) and a simulator configuration.
type Point struct {
	Kernel *loops.Kernel
	N      int
	Config sim.Config
}

// String identifies the point in errors and logs.
func (p Point) String() string {
	key := "<nil>"
	if p.Kernel != nil {
		key = p.Kernel.Key
	}
	c := p.Config
	return fmt.Sprintf("%s/n=%d/npe=%d/ps=%d/cache=%d/%s/%s",
		key, p.N, c.NPE, c.PageSize, c.CacheElems, c.Layout, c.Policy)
}

// Grid declares a cross product of sweep axes. Zero-valued axes default
// to the paper's baseline, so the zero Grid plus a kernel list is the
// paper's standard sweep.
type Grid struct {
	Kernels    []*loops.Kernel
	N          int              // problem size for every kernel (0 = kernel default)
	NPEs       []int            // default {1, 2, 4, 8, 16, 32, 64} (the paper's PE axis)
	PageSizes  []int            // default {32}
	CacheElems []int            // default {256}; 0 disables caching
	Layouts    []partition.Kind // default {KindModulo}
	Policies   []cache.Policy   // default {LRU}
}

// PaperPEs is the PE axis used by the paper's figures.
var PaperPEs = []int{1, 2, 4, 8, 16, 32, 64}

// Size returns the number of points Points would produce, without
// materializing them — front ends use it to bound a grid before
// expansion.
func (g Grid) Size() int {
	axis := func(n, def int) int {
		if n == 0 {
			return def
		}
		return n
	}
	return len(g.Kernels) *
		axis(len(g.NPEs), len(PaperPEs)) *
		axis(len(g.PageSizes), 1) *
		axis(len(g.CacheElems), 1) *
		axis(len(g.Layouts), 1) *
		axis(len(g.Policies), 1)
}

// Points expands the grid in deterministic order: kernels outermost,
// then NPEs, page sizes, cache sizes, layouts, policies innermost.
// Kernel-major order also maximizes the per-worker init memoization in
// sim.Scratch.
func (g Grid) Points() []Point {
	npes := g.NPEs
	if len(npes) == 0 {
		npes = PaperPEs
	}
	pss := g.PageSizes
	if len(pss) == 0 {
		pss = []int{32}
	}
	ces := g.CacheElems
	if len(ces) == 0 {
		ces = []int{256}
	}
	layouts := g.Layouts
	if len(layouts) == 0 {
		layouts = []partition.Kind{partition.KindModulo}
	}
	pols := g.Policies
	if len(pols) == 0 {
		pols = []cache.Policy{cache.LRU}
	}
	pts := make([]Point, 0, len(g.Kernels)*len(npes)*len(pss)*len(ces)*len(layouts)*len(pols))
	for _, k := range g.Kernels {
		for _, npe := range npes {
			for _, ps := range pss {
				for _, ce := range ces {
					for _, lay := range layouts {
						for _, pol := range pols {
							cfg := sim.PaperConfig(npe, ps)
							cfg.CacheElems = ce
							cfg.Layout = lay
							cfg.Policy = pol
							pts = append(pts, Point{Kernel: k, N: g.N, Config: cfg})
						}
					}
				}
			}
		}
	}
	return pts
}

// Progress is a point-in-time view of a running sweep, delivered to
// the Options.Progress callback after every point start and finish.
type Progress struct {
	Total   int // points in the sweep
	Started int // points handed to a worker
	Done    int // points completed successfully
	Failed  int // points that returned an error

	Elapsed time.Duration // since the sweep began
	// ETA estimates the remaining wall time by extrapolating the mean
	// per-point rate so far; zero until at least one point is done and
	// once the sweep is complete.
	ETA time.Duration
}

// ProgressFunc receives live sweep progress. Calls are serialized (the
// engine never invokes it concurrently) and ordered: Started is
// non-decreasing across calls, as is Done+Failed.
type ProgressFunc func(Progress)

// ReplayMode selects how the sweep planner uses reference-stream
// replay (internal/refstream) to serve grid points.
type ReplayMode int

const (
	// ReplayAuto (the zero value) replays groups of two or more
	// eligible points sharing a (kernel, problem size) — where one
	// capture amortizes — and runs everything else directly.
	ReplayAuto ReplayMode = iota
	// ReplayOff runs every point directly through sim.Scratch.
	ReplayOff
	// ReplayOn replays every eligible point, even singleton groups.
	// Ineligible points (tracing, partial-fill) still run directly.
	ReplayOn
	// ReplayPoint groups like ReplayOn but classifies each point with
	// its own replay pass instead of batching the group — the
	// pre-batching planner, kept so benchmarks can separate the
	// execute-once win from the decode-once win.
	ReplayPoint
)

func (m ReplayMode) String() string {
	switch m {
	case ReplayAuto:
		return "auto"
	case ReplayOff:
		return "off"
	case ReplayOn:
		return "on"
	case ReplayPoint:
		return "point"
	}
	return fmt.Sprintf("ReplayMode(%d)", int(m))
}

// Options configures a sweep beyond its point list.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is invoked after every point start and
	// finish. Keep it cheap: it runs on the worker's goroutine under
	// the tracker lock.
	Progress ProgressFunc
	// Metrics, when non-nil, receives sweep counters (points total /
	// started / done / failed — see the Metric* names) and is handed to
	// each worker's sim.Scratch for per-run signals. When nil, the
	// process-wide obs.Default() is used (itself nil — fully disabled —
	// unless a front end enabled it).
	Metrics *obs.Registry
	// Replay selects the execute-once/classify-many strategy. The
	// default (ReplayAuto) is safe for every sweep: replay is proven
	// bit-identical to direct execution, so changing the mode changes
	// wall time, never results.
	Replay ReplayMode
}

// Observability counter names recorded by sweeps. Totals are added when
// a sweep starts, so Done+Failed converging on Total is the live
// completion signal a front end can render.
const (
	MetricPointsTotal   = "sweep.points_total"
	MetricPointsStarted = "sweep.points_started"
	MetricPointsDone    = "sweep.points_done"
	MetricPointsFailed  = "sweep.points_failed"

	// Planner counters: captures performed (once per replay group),
	// points served by stream replay, and points run directly.
	MetricStreamCaptures = "sweep.stream_captures"
	MetricReplayPoints   = "sweep.replay_points"
	MetricDirectPoints   = "sweep.direct_points"

	// MetricCaptureOverlap counts capture-stage prefetches that
	// completed while replay work was in flight — each one is a capture
	// the pipeline kept off the critical path. Zero on a sweep with a
	// single group and nothing else to do: there is nothing to overlap.
	MetricCaptureOverlap = "sweep.capture_overlap"
)

// replayGroup is the shared state of one (kernel, problem size) replay
// group. The first worker to reach any of the group's points performs
// the capture under once; afterwards the stream (or the capture error)
// is shared read-only by every worker.
type replayGroup struct {
	kernel *loops.Kernel
	n      int // as given by the point (Capture clamps internally)

	once sync.Once
	st   *refstream.Stream
	err  error
}

// capture runs the group's one-shot capture against the calling
// worker's scratch, recording it in the registry. Safe to call from
// any number of workers; only the first executes.
func (g *replayGroup) capture(sc *sim.Scratch, captures *obs.Counter) (*refstream.Stream, error) {
	g.once.Do(func() {
		captures.Inc()
		g.st, g.err = refstream.CaptureScratch(sc, g.kernel, g.n)
	})
	return g.st, g.err
}

// planReplay assigns each point to a replay group, or nil for direct
// execution. Grouping is by (kernel, clamped problem size) — exactly
// the key the reference stream depends on. Under ReplayAuto only
// groups with at least two eligible points get a group (a singleton
// would pay capture — an instrumented direct run — without amortizing
// it); under ReplayOn and ReplayPoint every eligible point does; under
// ReplayOff the plan is all-nil.
func planReplay(pts []Point, mode ReplayMode) []*replayGroup {
	plan := make([]*replayGroup, len(pts))
	if mode == ReplayOff {
		return plan
	}
	type key struct {
		k *loops.Kernel
		n int
	}
	groups := make(map[key]*replayGroup)
	counts := make(map[key]int)
	for _, p := range pts {
		if p.Kernel == nil || !refstream.Eligible(p.Config) {
			continue
		}
		counts[key{p.Kernel, p.Kernel.ClampN(p.N)}]++
	}
	for i, p := range pts {
		if p.Kernel == nil || !refstream.Eligible(p.Config) {
			continue
		}
		k := key{p.Kernel, p.Kernel.ClampN(p.N)}
		if mode == ReplayAuto && counts[k] < 2 {
			continue
		}
		g := groups[k]
		if g == nil {
			g = &replayGroup{kernel: p.Kernel, n: p.N}
			groups[k] = g
		}
		plan[i] = g
	}
	return plan
}

// execTask is one unit of worker dispatch: a whole replay group
// classified in a single batch pass (indices set, in grid order), or a
// single grid point (indices nil) — run directly when g is nil, or by
// a per-point replay of the group's stream under ReplayPoint.
type execTask struct {
	minIdx  int   // lowest grid index covered: dispatch order and abandon cut
	indices []int // batch group members, grid order; nil for a single point
	g       *replayGroup
}

// planTasks turns the per-point replay plan into the dispatch list, in
// grid order of each task's lowest index. A replay group becomes one
// batch task at its first member's position — one capture and one
// stream pass serve the whole group — except under ReplayPoint, where
// every member stays its own task and shares only the capture.
func planTasks(pts []Point, mode ReplayMode) []execTask {
	plan := planReplay(pts, mode)
	tasks := make([]execTask, 0, len(pts))
	if mode == ReplayPoint {
		for i := range pts {
			tasks = append(tasks, execTask{minIdx: i, g: plan[i]})
		}
		return tasks
	}
	members := make(map[*replayGroup][]int)
	for i, g := range plan {
		if g != nil {
			members[g] = append(members[g], i)
		}
	}
	for i, g := range plan {
		if g == nil {
			tasks = append(tasks, execTask{minIdx: i})
		} else if m := members[g]; m[0] == i {
			tasks = append(tasks, execTask{minIdx: i, indices: m, g: g})
		}
	}
	return tasks
}

// tracker serializes progress accounting and callback delivery.
type tracker struct {
	mu sync.Mutex
	cb ProgressFunc
	p  Progress
	t0 time.Time
}

func newTracker(total int, cb ProgressFunc) *tracker {
	if cb == nil {
		return nil
	}
	return &tracker{cb: cb, p: Progress{Total: total}, t0: time.Now()}
}

// update applies f to the progress state and delivers the callback.
// Holding the lock through the callback is what guarantees serialized,
// ordered delivery.
func (t *tracker) update(f func(*Progress)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f(&t.p)
	t.p.Elapsed = time.Since(t.t0)
	t.p.ETA = 0
	if finished := t.p.Done + t.p.Failed; t.p.Done > 0 && finished < t.p.Total {
		t.p.ETA = time.Duration(float64(t.p.Elapsed) / float64(finished) * float64(t.p.Total-finished))
	}
	t.cb(t.p)
}

// Run sweeps the points over runtime.GOMAXPROCS(0) workers. See RunN.
func Run(ctx context.Context, pts []Point) ([]*sim.Result, error) {
	return RunN(ctx, 0, pts)
}

// RunN sweeps the points over a pool of `workers` goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0)) and returns the results
// in grid order: results[i] is the simulation of pts[i]. Each worker
// reuses one sim.Scratch across its points. On failure the lowest-index
// error is returned and the remaining queued points are abandoned; on
// external cancellation the context error is returned.
func RunN(ctx context.Context, workers int, pts []Point) ([]*sim.Result, error) {
	return RunOpts(ctx, pts, Options{Workers: workers})
}

// RunOpts is RunN with live progress reporting, metrics, and planner
// control: the same deterministic grid-order results and lowest-index
// error contract, plus per-point Progress callbacks, registry counters,
// and Options.Replay. The instrumentation observes without
// participating, and replay is bit-identical to direct execution —
// results do not depend on any Options field.
func RunOpts(ctx context.Context, pts []Point, opts Options) ([]*sim.Result, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	var (
		cStarted  = reg.Counter(MetricPointsStarted)
		cDone     = reg.Counter(MetricPointsDone)
		cFailed   = reg.Counter(MetricPointsFailed)
		cCaptures = reg.Counter(MetricStreamCaptures)
		cReplay   = reg.Counter(MetricReplayPoints)
		cDirect   = reg.Counter(MetricDirectPoints)
	)
	reg.Counter(MetricPointsTotal).Add(int64(len(pts)))
	tr := newTracker(len(pts), opts.Progress)
	tasks := planTasks(pts, opts.Replay)

	results := make([]*sim.Result, len(pts))
	err := runTasks(ctx, opts.Workers, tasks, reg,
		func(_ context.Context, borrow func() int, unborrow func(int)) func(execTask) (int, error) {
			scratch := sim.NewScratch()
			scratch.Metrics = reg
			replayer := refstream.NewReplayer()
			replayer.Metrics = reg
			var cfgs []sim.Config // batch-task staging, reused across groups

			// runPoint serves a single-point task: direct execution, or
			// one replay pass against the group's stream (ReplayPoint).
			runPoint := func(t execTask) (int, error) {
				i := t.minIdx
				cStarted.Inc()
				tr.update(func(p *Progress) { p.Started++ })
				p := pts[i]
				if p.Kernel == nil {
					cFailed.Inc()
					tr.update(func(p *Progress) { p.Failed++ })
					return i, fmt.Errorf("sweep: point %d (%s): nil kernel", i, p)
				}
				var (
					res *sim.Result
					err error
				)
				if t.g != nil {
					var st *refstream.Stream
					if st, err = t.g.capture(scratch, cCaptures); err == nil {
						res, err = replayer.Run(st, p.Config)
						cReplay.Inc()
					}
				} else {
					res, err = scratch.Run(p.Kernel, p.N, p.Config)
					cDirect.Inc()
				}
				if err != nil {
					cFailed.Inc()
					tr.update(func(p *Progress) { p.Failed++ })
					return i, fmt.Errorf("sweep: point %d (%s): %w", i, p, err)
				}
				results[i] = res
				cDone.Inc()
				tr.update(func(p *Progress) { p.Done++ })
				return i, nil
			}

			// runGroup serves a batch task: capture once, classify every
			// member in one stream pass, scatter results to grid order.
			// The pass borrows whatever simulation tokens are idle and
			// fans the batch out across them (RunBatchN), so a wide
			// group saturates the pool instead of one core. On failure
			// the blamed index is the group's failing member — RunBatch
			// reports the lowest input index, and members are in grid
			// order — so lowest-index error semantics match the
			// per-point path exactly.
			runGroup := func(t execTask) (int, error) {
				n := len(t.indices)
				cStarted.Add(int64(n))
				tr.update(func(p *Progress) { p.Started += n })
				st, err := t.g.capture(scratch, cCaptures)
				if err == nil {
					cfgs = cfgs[:0]
					for _, i := range t.indices {
						cfgs = append(cfgs, pts[i].Config)
					}
					var res []*sim.Result
					extra := borrow()
					res, err = replayer.RunBatchN(st, cfgs, 1+extra)
					unborrow(extra)
					cReplay.Add(int64(n))
					if err == nil {
						for j, i := range t.indices {
							results[i] = res[j]
						}
						cDone.Add(int64(n))
						tr.update(func(p *Progress) { p.Done += n })
						return t.minIdx, nil
					}
				}
				fi := t.minIdx
				var be *refstream.BatchError
				if errors.As(err, &be) {
					fi = t.indices[be.Index]
					err = be.Err
				}
				cFailed.Inc()
				tr.update(func(p *Progress) { p.Failed++ })
				return fi, fmt.Errorf("sweep: point %d (%s): %w", fi, pts[fi], err)
			}

			return func(t execTask) (int, error) {
				if t.indices != nil {
					return runGroup(t)
				}
				return runPoint(t)
			}
		})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runTasks executes the dispatch list as a two-stage pipeline: a
// capture stage prefetches each replay group's reference stream while
// a replay stage consumes tasks whose captures have already landed, so
// the capture of a later group overlaps the replay of earlier ones
// instead of serializing behind it.
//
// Both stages draw on one budget of `workers` simulation tokens —
// every capture and every replay/direct pass holds a token while it
// runs — so the bounded-concurrency guarantee survives the extra
// coordination goroutines. newWorker is called once per replay-stage
// goroutine; the borrow/unborrow pair it receives lets a batch task
// claim idle tokens (non-blocking) and fan its stream pass out across
// them.
//
// Error semantics are those of fanOut: the failure at the lowest
// blamed index wins deterministically. The capture stage never reports
// errors itself — a failed capture is memoized in the group and
// surfaced by the replay stage, which re-enters the group's sync.Once
// and blames the group's lowest member.
func runTasks(parent context.Context, workers int, tasks []execTask, reg *obs.Registry,
	newWorker func(ctx context.Context, borrow func() int, unborrow func(int)) func(execTask) (int, error)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(tasks) == 0 {
		return parent.Err()
	}

	// Bundle replay tasks by their shared capture, in dispatch order.
	// Direct tasks have no capture dependency and bypass the capture
	// stage entirely.
	var (
		order   []*replayGroup
		bundles = make(map[*replayGroup][]execTask)
		direct  []execTask
	)
	for _, t := range tasks {
		if t.g == nil {
			direct = append(direct, t)
			continue
		}
		if bundles[t.g] == nil {
			order = append(order, t.g)
		}
		bundles[t.g] = append(bundles[t.g], t)
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = math.MaxInt
	)
	report := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	cut := func() int {
		mu.Lock()
		defer mu.Unlock()
		return errIdx
	}

	// The simulation budget. Borrowing is non-blocking: a batch task
	// already holds one token, so it can only widen, never wait.
	sem := make(chan struct{}, workers)
	borrow := func() int {
		n := 0
		for n < workers-1 {
			select {
			case sem <- struct{}{}:
				n++
			default:
				return n
			}
		}
		return n
	}
	unborrow := func(n int) {
		for ; n > 0; n-- {
			<-sem
		}
	}

	// ready carries tasks whose capture (if any) has landed. The buffer
	// holds every task, so neither stage ever blocks forwarding.
	ready := make(chan execTask, len(tasks))
	for _, t := range direct {
		ready <- t
	}

	var inFlight atomic.Int64 // replay-stage tasks currently executing
	cCaptures := reg.Counter(MetricStreamCaptures)
	cOverlap := reg.Counter(MetricCaptureOverlap)

	// Capture stage: prefetch each group's stream, then release the
	// group's tasks to the replay stage.
	nCap := len(order)
	if nCap > workers {
		nCap = workers
	}
	groupFeed := make(chan *replayGroup)
	var capWG sync.WaitGroup
	capWG.Add(nCap)
	for c := 0; c < nCap; c++ {
		go func() {
			defer capWG.Done()
			scratch := sim.NewScratch()
			scratch.Metrics = reg
			for g := range groupFeed {
				bundle := bundles[g]
				// Skip the prefetch when the outcome is already decided
				// at or below this group's lowest member, but forward
				// the tasks regardless: the replay stage applies the
				// same cut, and members below the winning index must
				// still run (they re-trigger the capture through the
				// group's once).
				if parent.Err() == nil && bundle[0].minIdx <= cut() {
					sem <- struct{}{}
					_, _ = g.capture(scratch, cCaptures)
					<-sem
					if inFlight.Load() > 0 {
						cOverlap.Inc()
					}
				}
				for _, t := range bundle {
					ready <- t
				}
			}
		}()
	}
	go func() {
		for _, g := range order {
			groupFeed <- g
		}
		close(groupFeed)
	}()
	go func() {
		capWG.Wait()
		close(ready)
	}()

	// Replay stage: the bounded worker pool of the pre-pipeline engine,
	// consuming tasks as their captures land.
	nRep := workers
	if nRep > len(tasks) {
		nRep = len(tasks)
	}
	var wg sync.WaitGroup
	wg.Add(nRep)
	for w := 0; w < nRep; w++ {
		go func() {
			defer wg.Done()
			run := newWorker(ctx, borrow, unborrow)
			for t := range ready {
				if parent.Err() != nil || t.minIdx > cut() {
					continue
				}
				sem <- struct{}{}
				inFlight.Add(1)
				i, err := run(t)
				inFlight.Add(-1)
				<-sem
				if err != nil {
					report(i, err)
				}
			}
		}()
	}
	wg.Wait()

	if err := parent.Err(); err != nil {
		return err
	}
	return firstErr
}

// Map applies f to every item over a bounded worker pool and returns
// the outputs in input order. It is the experiment-level counterpart of
// RunN: f(ctx, i, item) runs concurrently with at most `workers` calls
// in flight (workers <= 0 means runtime.GOMAXPROCS(0)); the first
// error (lowest index) cancels the pool's context and is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := dispatch(ctx, workers, len(items), func(ctx context.Context) func(int) error {
		return func(i int) error {
			r, err := f(ctx, i, items[i])
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dispatch fans indices [0, n) out over a worker pool: fanOut where
// item i is index i and a failure at index i is blamed on index i.
func dispatch(parent context.Context, workers, n int, newWorker func(ctx context.Context) func(int) error) error {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return fanOut(parent, workers, idxs, func(i int) int { return i },
		func(ctx context.Context) func(int) (int, error) {
			run := newWorker(ctx)
			return func(i int) (int, error) { return i, run(i) }
		})
}

// fanOut feeds the items, in order, to a bounded worker pool. newWorker
// is called once per goroutine to build per-worker state — it receives
// the pool's derived context, which is canceled on the first error or
// when the parent is canceled — and the returned closure runs one item,
// reporting the grid index to blame if it failed. minIdx gives the
// lowest grid index an item covers (a batch task spans several).
//
// The error at the lowest blamed index wins deterministically: after a
// failure, items wholly above the current winner are abandoned, but
// items reaching lower indices still run (one of them may fail and
// become the new winner). Cancellation of the parent context abandons
// everything.
func fanOut[T any](parent context.Context, workers int, items []T, minIdx func(T) int, newWorker func(ctx context.Context) func(T) (int, error)) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if len(items) == 0 {
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = math.MaxInt
	)
	report := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	cut := func() int {
		mu.Lock()
		defer mu.Unlock()
		return errIdx
	}

	feed := make(chan T)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			run := newWorker(ctx)
			for it := range feed {
				// Drain without running (so the feeder never blocks)
				// when the caller canceled, or when a lower-index error
				// already decided the outcome. Items below the current
				// winner still run: only a lower index can displace it,
				// which keeps the reported error the lowest-index
				// failure regardless of scheduling.
				if parent.Err() != nil || minIdx(it) > cut() {
					continue
				}
				if i, err := run(it); err != nil {
					report(i, err)
				}
			}
		}()
	}
	for _, it := range items {
		feed <- it
	}
	close(feed)
	wg.Wait()

	if err := parent.Err(); err != nil {
		return err
	}
	return firstErr
}
