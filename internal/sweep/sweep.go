// Package sweep is the parallel parameter-sweep engine of the
// reproduction. The paper's whole evaluation (§6–§7) is a grid — every
// Livermore kernel × PE count × page size × cache setting — and each
// grid point is an independent counting-simulator run, so the sweep
// itself is an embarrassingly parallel loop nest: this package
// distributes it over a bounded worker pool the way the paper
// distributes loop iterations over PEs.
//
// The engine makes three guarantees:
//
//   - Determinism: results are returned in grid order — result i is
//     point i — regardless of how the scheduler interleaves workers,
//     and every run is bit-identical to a serial sim.Run of the same
//     point (each worker owns a private sim.Scratch; no state is
//     shared between points).
//   - Bounded concurrency: at most `workers` simulations are in flight
//     (default runtime.GOMAXPROCS(0)); a sweep of tens of thousands of
//     points never spawns more than that many goroutines.
//   - First-error propagation: a failing point cancels the sweep's
//     context and abandons queued points at higher grid indices;
//     lower-indexed points still run, so the error reported is
//     deterministically the one at the lowest failing grid index no
//     matter which failure the scheduler reaches first.
//
// See docs/SWEEP.md for grid semantics and how to build an experiment
// on the engine.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
)

// Point is one grid point: a kernel, a problem size (0 = kernel
// default) and a simulator configuration.
type Point struct {
	Kernel *loops.Kernel
	N      int
	Config sim.Config
}

// String identifies the point in errors and logs.
func (p Point) String() string {
	key := "<nil>"
	if p.Kernel != nil {
		key = p.Kernel.Key
	}
	c := p.Config
	return fmt.Sprintf("%s/n=%d/npe=%d/ps=%d/cache=%d/%s/%s",
		key, p.N, c.NPE, c.PageSize, c.CacheElems, c.Layout, c.Policy)
}

// Grid declares a cross product of sweep axes. Zero-valued axes default
// to the paper's baseline, so the zero Grid plus a kernel list is the
// paper's standard sweep.
type Grid struct {
	Kernels    []*loops.Kernel
	N          int              // problem size for every kernel (0 = kernel default)
	NPEs       []int            // default {1, 2, 4, 8, 16, 32, 64} (the paper's PE axis)
	PageSizes  []int            // default {32}
	CacheElems []int            // default {256}; 0 disables caching
	Layouts    []partition.Kind // default {KindModulo}
	Policies   []cache.Policy   // default {LRU}
}

// PaperPEs is the PE axis used by the paper's figures.
var PaperPEs = []int{1, 2, 4, 8, 16, 32, 64}

// Points expands the grid in deterministic order: kernels outermost,
// then NPEs, page sizes, cache sizes, layouts, policies innermost.
// Kernel-major order also maximizes the per-worker init memoization in
// sim.Scratch.
func (g Grid) Points() []Point {
	npes := g.NPEs
	if len(npes) == 0 {
		npes = PaperPEs
	}
	pss := g.PageSizes
	if len(pss) == 0 {
		pss = []int{32}
	}
	ces := g.CacheElems
	if len(ces) == 0 {
		ces = []int{256}
	}
	layouts := g.Layouts
	if len(layouts) == 0 {
		layouts = []partition.Kind{partition.KindModulo}
	}
	pols := g.Policies
	if len(pols) == 0 {
		pols = []cache.Policy{cache.LRU}
	}
	pts := make([]Point, 0, len(g.Kernels)*len(npes)*len(pss)*len(ces)*len(layouts)*len(pols))
	for _, k := range g.Kernels {
		for _, npe := range npes {
			for _, ps := range pss {
				for _, ce := range ces {
					for _, lay := range layouts {
						for _, pol := range pols {
							cfg := sim.PaperConfig(npe, ps)
							cfg.CacheElems = ce
							cfg.Layout = lay
							cfg.Policy = pol
							pts = append(pts, Point{Kernel: k, N: g.N, Config: cfg})
						}
					}
				}
			}
		}
	}
	return pts
}

// Run sweeps the points over runtime.GOMAXPROCS(0) workers. See RunN.
func Run(ctx context.Context, pts []Point) ([]*sim.Result, error) {
	return RunN(ctx, 0, pts)
}

// RunN sweeps the points over a pool of `workers` goroutines
// (workers <= 0 means runtime.GOMAXPROCS(0)) and returns the results
// in grid order: results[i] is the simulation of pts[i]. Each worker
// reuses one sim.Scratch across its points. On failure the lowest-index
// error is returned and the remaining queued points are abandoned; on
// external cancellation the context error is returned.
func RunN(ctx context.Context, workers int, pts []Point) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(pts))
	err := dispatch(ctx, workers, len(pts), func(context.Context) func(int) error {
		scratch := sim.NewScratch()
		return func(i int) error {
			p := pts[i]
			if p.Kernel == nil {
				return fmt.Errorf("sweep: point %d (%s): nil kernel", i, p)
			}
			res, err := scratch.Run(p.Kernel, p.N, p.Config)
			if err != nil {
				return fmt.Errorf("sweep: point %d (%s): %w", i, p, err)
			}
			results[i] = res
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Map applies f to every item over a bounded worker pool and returns
// the outputs in input order. It is the experiment-level counterpart of
// RunN: f(ctx, i, item) runs concurrently with at most `workers` calls
// in flight (workers <= 0 means runtime.GOMAXPROCS(0)); the first
// error (lowest index) cancels the pool's context and is returned.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := dispatch(ctx, workers, len(items), func(ctx context.Context) func(int) error {
		return func(i int) error {
			r, err := f(ctx, i, items[i])
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// dispatch fans indices [0, n) out over a worker pool. newWorker is
// called once per goroutine to build per-worker state — it receives the
// pool's derived context, which is canceled on the first error or when
// the parent is canceled — and the returned closure runs one index.
//
// The error at the lowest failing index wins deterministically: after a
// failure, indices above the current winner are abandoned, but lower
// indices still run (one of them may fail and become the new winner).
// Cancellation of the parent context abandons everything.
func dispatch(parent context.Context, workers, n int, newWorker func(ctx context.Context) func(int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return parent.Err()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	report := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			firstErr, errIdx = err, i
		}
		mu.Unlock()
		cancel()
	}
	cut := func() int {
		mu.Lock()
		defer mu.Unlock()
		return errIdx
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			run := newWorker(ctx)
			for i := range idx {
				// Drain without running (so the feeder never blocks)
				// when the caller canceled, or when a lower-index error
				// already decided the outcome. Indices below the
				// current winner still run: only a lower index can
				// displace it, which keeps the reported error the
				// lowest-index failure regardless of scheduling.
				if parent.Err() != nil || i > cut() {
					continue
				}
				if err := run(i); err != nil {
					report(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if err := parent.Err(); err != nil {
		return err
	}
	return firstErr
}
