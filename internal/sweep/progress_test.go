package sweep

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/sim"
)

func progressGrid(t *testing.T) []Point {
	t.Helper()
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{Kernels: []*loops.Kernel{k}, N: 300, NPEs: []int{1, 2, 4, 8}}
	return g.Points()
}

// TestRunOptsProgress checks the live-progress contract: serialized
// callbacks, monotone counters, a final state accounting for every
// point, and registry counters that match.
func TestRunOptsProgress(t *testing.T) {
	pts := progressGrid(t)
	reg := obs.NewRegistry()
	var events []Progress // callback is serialized, so plain append is safe
	// ReplayOff pins the direct path, so the sim.runs assertion below
	// counts one engine run per point; replay_test.go covers the
	// planner's counters.
	res, err := RunOpts(context.Background(), pts, Options{
		Workers:  3,
		Metrics:  reg,
		Progress: func(p Progress) { events = append(events, p) },
		Replay:   ReplayOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pts) {
		t.Fatalf("results = %d, want %d", len(res), len(pts))
	}
	if want := 2 * len(pts); len(events) != want {
		t.Fatalf("callbacks = %d, want %d (one per start + one per finish)", len(events), want)
	}
	prev := Progress{}
	for i, p := range events {
		if p.Total != len(pts) {
			t.Fatalf("event %d: total = %d, want %d", i, p.Total, len(pts))
		}
		if p.Started < prev.Started || p.Done+p.Failed < prev.Done+prev.Failed {
			t.Fatalf("event %d not monotone: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	last := events[len(events)-1]
	if last.Started != len(pts) || last.Done != len(pts) || last.Failed != 0 {
		t.Errorf("final progress wrong: %+v", last)
	}
	if last.ETA != 0 {
		t.Errorf("completed sweep reports nonzero ETA: %v", last.ETA)
	}
	if got := reg.Counter(MetricPointsTotal).Value(); got != int64(len(pts)) {
		t.Errorf("%s = %d, want %d", MetricPointsTotal, got, len(pts))
	}
	if got := reg.Counter(MetricPointsDone).Value(); got != int64(len(pts)) {
		t.Errorf("%s = %d, want %d", MetricPointsDone, got, len(pts))
	}
	if got := reg.Counter(MetricPointsFailed).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", MetricPointsFailed, got)
	}
	if got := reg.Counter(sim.MetricRuns).Value(); got != int64(len(pts)) {
		t.Errorf("workers did not report sim runs: %s = %d, want %d", sim.MetricRuns, got, len(pts))
	}
}

// TestRunOptsInstrumentationPreservesResults: the sweep's bit-identical
// determinism guarantee must hold with progress and metrics attached.
func TestRunOptsInstrumentationPreservesResults(t *testing.T) {
	pts := progressGrid(t)
	baseline, err := RunN(context.Background(), 1, pts)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := RunOpts(context.Background(), pts, Options{
		Workers:  4,
		Metrics:  obs.NewRegistry(),
		Progress: func(Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline {
		if !reflect.DeepEqual(baseline[i], instrumented[i]) {
			t.Errorf("point %d: instrumented result differs from baseline", i)
		}
	}
}

// TestRunOptsCountsFailures: a failing point is reported as failed in
// both the callback stream and the registry.
func TestRunOptsCountsFailures(t *testing.T) {
	pts := progressGrid(t)
	pts[len(pts)-1].Kernel = nil // poison the last point
	reg := obs.NewRegistry()
	var last Progress
	_, err := RunOpts(context.Background(), pts, Options{
		Workers:  1, // serial, so every earlier point completes first
		Metrics:  reg,
		Progress: func(p Progress) { last = p },
	})
	if err == nil {
		t.Fatal("poisoned sweep did not fail")
	}
	if last.Failed != 1 || last.Done != len(pts)-1 {
		t.Errorf("final progress = %+v, want %d done / 1 failed", last, len(pts)-1)
	}
	if got := reg.Counter(MetricPointsFailed).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricPointsFailed, got)
	}
}
