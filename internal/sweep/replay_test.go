package sweep

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/obs"
	"repro/internal/sim"
)

// mixedGrid builds a grid that exercises every planner decision: two
// multi-point replay groups, a singleton group (one point at a unique
// problem size), and ineligible partial-fill points interleaved.
func mixedGrid(t *testing.T) []Point {
	t.Helper()
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k24, err := loops.ByKey("k24") // reduction-heavy
	if err != nil {
		t.Fatal(err)
	}
	pts := Grid{
		Kernels: []*loops.Kernel{k1, k24},
		N:       200,
		NPEs:    []int{1, 4, 16},
	}.Points()
	// Ineligible ablation point mid-grid: must fall back to direct
	// execution under every mode.
	pf := sim.PaperConfig(8, 32)
	pf.ModelPartialFill = true
	pts = append(pts[:3], append([]Point{{Kernel: k1, N: 200, Config: pf}}, pts[3:]...)...)
	// Singleton group: the only point at (k1, 333).
	pts = append(pts, Point{Kernel: k1, N: 333, Config: sim.PaperConfig(2, 32)})
	return pts
}

// TestReplayModesBitIdentical is the planner's determinism contract:
// the replay mode changes how points are executed, never what they
// return. All three modes, at several worker counts, must produce
// results bit-identical to each other and to serial direct runs.
func TestReplayModesBitIdentical(t *testing.T) {
	pts := mixedGrid(t)
	baseline, err := RunOpts(context.Background(), pts, Options{Workers: 1, Replay: ReplayOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ReplayMode{ReplayAuto, ReplayOn, ReplayPoint} {
		for _, workers := range []int{1, 4} {
			got, err := RunOpts(context.Background(), pts, Options{Workers: workers, Replay: mode})
			if err != nil {
				t.Fatalf("replay=%s workers=%d: %v", mode, workers, err)
			}
			for i := range pts {
				if !reflect.DeepEqual(got[i], baseline[i]) {
					t.Errorf("replay=%s workers=%d: point %d (%s) differs from direct execution",
						mode, workers, i, pts[i])
				}
			}
		}
	}
}

// TestReplayPlanCounters audits the planner through the metrics
// registry: captures happen exactly once per group no matter how many
// workers race for it, and every point is accounted replay or direct.
func TestReplayPlanCounters(t *testing.T) {
	pts := mixedGrid(t)
	// mixedGrid has groups (k1,200)x3, (k24,200)x3, singleton (k1,333),
	// and one ineligible point.
	cases := []struct {
		mode     ReplayMode
		captures int64
		replayed int64
	}{
		{ReplayOn, 3, 7},    // singleton group still captures and replays
		{ReplayAuto, 2, 6},  // singleton runs direct: capture would not amortize
		{ReplayPoint, 3, 7}, // same plan as ReplayOn, one pass per point
		{ReplayOff, 0, 0},
	}
	for _, c := range cases {
		reg := obs.NewRegistry()
		if _, err := RunOpts(context.Background(), pts, Options{Workers: 8, Metrics: reg, Replay: c.mode}); err != nil {
			t.Fatalf("replay=%s: %v", c.mode, err)
		}
		if got := reg.Counter(MetricStreamCaptures).Value(); got != c.captures {
			t.Errorf("replay=%s: %s = %d, want %d", c.mode, MetricStreamCaptures, got, c.captures)
		}
		if got := reg.Counter(MetricReplayPoints).Value(); got != c.replayed {
			t.Errorf("replay=%s: %s = %d, want %d", c.mode, MetricReplayPoints, got, c.replayed)
		}
		direct := int64(len(pts)) - c.replayed
		if got := reg.Counter(MetricDirectPoints).Value(); got != direct {
			t.Errorf("replay=%s: %s = %d, want %d", c.mode, MetricDirectPoints, got, direct)
		}
	}
}

// TestReplayErrorDeterminism re-runs the lowest-index error contract
// with the planner engaged: invalid configurations fail through the
// replay path with the same deterministic winner as direct execution.
func TestReplayErrorDeterminism(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	pts := Grid{Kernels: []*loops.Kernel{k}, N: 64, NPEs: []int{1, 2, 4, 8}}.Points()
	bad := sim.PaperConfig(8, 32)
	bad.Policy = cache.Policy(99)
	pts[1].Config = bad    // first failure
	pts[3].Config.NPE = -1 // second failure, must not win
	for _, workers := range []int{1, 4} {
		_, err := RunOpts(context.Background(), pts, Options{Workers: workers, Replay: ReplayOn})
		if err == nil {
			t.Fatalf("workers=%d: failing grid succeeded", workers)
		}
		if !strings.Contains(err.Error(), "point 1") {
			t.Errorf("workers=%d: error is not the lowest-index failure: %v", workers, err)
		}
	}
}

// TestCaptureOverlapCounter pins the pipeline's observability
// invariants: sweep.capture_overlap only ever counts capture-stage
// prefetches (so it is bounded by stream_captures), a serial sweep of
// a single group has nothing to overlap, and engaging the pipeline
// changes neither results nor the planner counters.
func TestCaptureOverlapCounter(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}

	// One group, one worker: the lone capture has no replay work to
	// overlap with, so the counter must stay zero.
	single := Grid{Kernels: []*loops.Kernel{k1}, N: 100, NPEs: []int{1, 2}}.Points()
	reg := obs.NewRegistry()
	if _, err := RunOpts(context.Background(), single, Options{Workers: 1, Metrics: reg, Replay: ReplayOn}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCaptureOverlap).Value(); got != 0 {
		t.Errorf("single-group serial sweep: %s = %d, want 0", MetricCaptureOverlap, got)
	}

	// Many groups, many workers: overlap is scheduler-dependent, but it
	// can never exceed the number of prefetched captures, and the
	// pipeline must not change what the sweep computes.
	pts := Grid{Kernels: []*loops.Kernel{k1, k2}, N: 150, NPEs: []int{1, 4, 16}}.Points()
	pts = append(pts, Grid{Kernels: []*loops.Kernel{k1, k2}, N: 250, NPEs: []int{2, 8}}.Points()...)
	baseline, err := RunOpts(context.Background(), pts, Options{Workers: 1, Replay: ReplayOff})
	if err != nil {
		t.Fatal(err)
	}
	reg = obs.NewRegistry()
	got, err := RunOpts(context.Background(), pts, Options{Workers: 4, Metrics: reg, Replay: ReplayOn})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Error("pipelined sweep diverges from serial direct execution")
	}
	captures := reg.Counter(MetricStreamCaptures).Value()
	if captures != 4 {
		t.Errorf("%s = %d, want 4 (one per (kernel, N) group)", MetricStreamCaptures, captures)
	}
	if overlap := reg.Counter(MetricCaptureOverlap).Value(); overlap > captures {
		t.Errorf("%s = %d exceeds %s = %d", MetricCaptureOverlap, overlap, MetricStreamCaptures, captures)
	}
}

// TestPlanReplay unit-tests the grouping rules directly.
func TestPlanReplay(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	pf := sim.PaperConfig(4, 32)
	pf.ModelPartialFill = true
	pts := []Point{
		{Kernel: k1, N: 100, Config: sim.PaperConfig(1, 32)},  // 0: group A
		{Kernel: k1, N: 100, Config: sim.PaperConfig(8, 32)},  // 1: group A
		{Kernel: k1, N: 100, Config: pf},                      // 2: ineligible
		{Kernel: k2, N: 100, Config: sim.PaperConfig(4, 32)},  // 3: singleton
		{Kernel: nil, N: 100, Config: sim.PaperConfig(4, 32)}, // 4: nil kernel
		{Kernel: k1, N: -1, Config: sim.PaperConfig(2, 32)},   // 5: clamps to DefaultN
		{Kernel: k1, N: 0, Config: sim.PaperConfig(2, 16)},    // 6: clamps to DefaultN
	}

	off := planReplay(pts, ReplayOff)
	for i, g := range off {
		if g != nil {
			t.Errorf("ReplayOff: point %d got a group", i)
		}
	}

	auto := planReplay(pts, ReplayAuto)
	if auto[0] == nil || auto[0] != auto[1] {
		t.Errorf("ReplayAuto: points 0 and 1 should share one group, got %p / %p", auto[0], auto[1])
	}
	if auto[2] != nil || auto[4] != nil {
		t.Errorf("ReplayAuto: ineligible/nil-kernel points got groups: %p / %p", auto[2], auto[4])
	}
	if auto[3] != nil {
		t.Errorf("ReplayAuto: singleton point got a group")
	}
	if auto[5] == nil || auto[5] != auto[6] {
		t.Errorf("ReplayAuto: clamped problem sizes should share one group, got %p / %p", auto[5], auto[6])
	}
	if auto[0] == auto[5] {
		t.Errorf("ReplayAuto: distinct problem sizes share a group")
	}

	on := planReplay(pts, ReplayOn)
	if on[3] == nil {
		t.Errorf("ReplayOn: singleton point should get a group")
	}
	if on[2] != nil || on[4] != nil {
		t.Errorf("ReplayOn: ineligible/nil-kernel points got groups")
	}
}

// TestPlanTasks pins the dispatch shapes: one batch task per group at
// its first member's index, per-point tasks for everything else, and
// ReplayPoint demoting groups back to per-point tasks.
func TestPlanTasks(t *testing.T) {
	k1, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	pf := sim.PaperConfig(4, 32)
	pf.ModelPartialFill = true
	pts := []Point{
		{Kernel: k1, N: 100, Config: sim.PaperConfig(1, 32)}, // 0: group A
		{Kernel: k1, N: 100, Config: pf},                     // 1: ineligible, direct
		{Kernel: k1, N: 100, Config: sim.PaperConfig(8, 32)}, // 2: group A
		{Kernel: k1, N: 200, Config: sim.PaperConfig(2, 32)}, // 3: singleton
	}

	on := planTasks(pts, ReplayOn)
	if len(on) != 3 {
		t.Fatalf("ReplayOn: %d tasks, want 3", len(on))
	}
	if on[0].minIdx != 0 || !reflect.DeepEqual(on[0].indices, []int{0, 2}) || on[0].g == nil {
		t.Errorf("ReplayOn task 0 = %+v, want batch {0, 2}", on[0])
	}
	if on[1].minIdx != 1 || on[1].indices != nil || on[1].g != nil {
		t.Errorf("ReplayOn task 1 = %+v, want direct point 1", on[1])
	}
	if on[2].minIdx != 3 || !reflect.DeepEqual(on[2].indices, []int{3}) || on[2].g == nil {
		t.Errorf("ReplayOn task 2 = %+v, want singleton batch {3}", on[2])
	}

	pt := planTasks(pts, ReplayPoint)
	if len(pt) != len(pts) {
		t.Fatalf("ReplayPoint: %d tasks, want %d", len(pt), len(pts))
	}
	for i, tk := range pt {
		if tk.minIdx != i || tk.indices != nil {
			t.Errorf("ReplayPoint task %d = %+v, want per-point", i, tk)
		}
	}
	if pt[0].g == nil || pt[0].g != pt[2].g || pt[1].g != nil || pt[3].g == nil {
		t.Errorf("ReplayPoint group sharing wrong: %+v", pt)
	}

	off := planTasks(pts, ReplayOff)
	if len(off) != len(pts) {
		t.Fatalf("ReplayOff: %d tasks, want %d", len(off), len(pts))
	}
	for i, tk := range off {
		if tk.minIdx != i || tk.indices != nil || tk.g != nil {
			t.Errorf("ReplayOff task %d = %+v, want direct point", i, tk)
		}
	}
}
