package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
)

func testGrid(t *testing.T) []Point {
	t.Helper()
	var ks []*loops.Kernel
	for _, key := range []string{"k1", "k2", "k12"} {
		k, err := loops.ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	return Grid{
		Kernels:    ks,
		N:          128,
		NPEs:       []int{1, 4, 16},
		PageSizes:  []int{16, 32},
		CacheElems: []int{0, 256},
	}.Points()
}

// TestGridOrderAndDefaults pins the grid expansion: deterministic
// kernel-major order and paper-baseline defaults for empty axes.
func TestGridOrderAndDefaults(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	pts := Grid{Kernels: []*loops.Kernel{k}}.Points()
	if len(pts) != len(PaperPEs) {
		t.Fatalf("default grid has %d points, want %d", len(pts), len(PaperPEs))
	}
	for i, p := range pts {
		if p.Config.NPE != PaperPEs[i] {
			t.Errorf("point %d: NPE %d, want %d", i, p.Config.NPE, PaperPEs[i])
		}
		want := sim.PaperConfig(PaperPEs[i], 32)
		if p.Config != want {
			t.Errorf("point %d: config %+v, want paper baseline %+v", i, p.Config, want)
		}
	}
	full := testGrid(t)
	if len(full) != 3*3*2*2 {
		t.Fatalf("grid has %d points, want %d", len(full), 3*3*2*2)
	}
	// Kernel-major, then NPE, page size, cache size.
	if full[0].Kernel.Key != "k1" || full[11].Kernel.Key != "k1" || full[12].Kernel.Key != "k2" {
		t.Errorf("grid is not kernel-major: %v ... %v", full[0], full[12])
	}
	if full[0].Config.CacheElems != 0 || full[1].Config.CacheElems != 256 {
		t.Errorf("cache axis not innermost: %v, %v", full[0], full[1])
	}
}

// TestRunMatchesSerial is the determinism guarantee: a concurrent sweep
// returns, in grid order, results bit-identical to running sim.Run
// serially on each point — and two concurrent sweeps agree with each
// other.
func TestRunMatchesSerial(t *testing.T) {
	pts := testGrid(t)
	par1, err := RunN(context.Background(), 8, pts)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := RunN(context.Background(), 3, pts)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunN(context.Background(), 1, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		want, err := sim.Run(p.Kernel, p.N, p.Config)
		if err != nil {
			t.Fatal(err)
		}
		for run, got := range map[string]*sim.Result{"workers=8": par1[i], "workers=3": par2[i], "workers=1": serial[i]} {
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: point %d (%s) differs from serial sim.Run", run, i, p)
			}
		}
	}
}

// TestFirstErrorPropagation injects a failing point mid-grid and
// requires (a) the sweep to fail, (b) the reported error to identify
// the lowest-index failing point deterministically, even with many
// workers racing past it.
func TestFirstErrorPropagation(t *testing.T) {
	k, err := loops.ByKey("k1")
	if err != nil {
		t.Fatal(err)
	}
	pts := Grid{Kernels: []*loops.Kernel{k}, N: 64, NPEs: []int{1, 2, 4, 8}}.Points()
	bad := sim.PaperConfig(8, 32)
	bad.Policy = cache.Policy(99)
	pts[1].Config = bad    // first failure
	pts[3].Config.NPE = -1 // second failure, must not win
	for _, workers := range []int{1, 4} {
		_, err := RunN(context.Background(), workers, pts)
		if err == nil {
			t.Fatalf("workers=%d: failing grid succeeded", workers)
		}
		if !strings.Contains(err.Error(), "point 1") {
			t.Errorf("workers=%d: error is not the lowest-index failure: %v", workers, err)
		}
	}
}

// TestRunCancellation verifies an external cancel stops the sweep
// promptly and surfaces context.Canceled.
func TestRunCancellation(t *testing.T) {
	k, err := loops.ByKey("k6")
	if err != nil {
		t.Fatal(err)
	}
	// A long grid that would take a while serially.
	var pts []Point
	for i := 0; i < 500; i++ {
		pts = append(pts, Point{Kernel: k, N: 200, Config: sim.PaperConfig(16, 32)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res []*sim.Result
	var runErr error
	go func() {
		res, runErr = RunN(ctx, 2, pts)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not stop after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", runErr)
	}
	if res != nil {
		t.Error("canceled sweep returned results")
	}
}

// TestMap covers the experiment-level fan-out: input order preserved,
// bounded workers, lowest-index error wins.
func TestMap(t *testing.T) {
	items := []int{10, 20, 30, 40, 50}
	var inFlight, peak atomic.Int32
	out, err := Map(context.Background(), 2, items, func(ctx context.Context, i, item int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		time.Sleep(time.Millisecond)
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{20, 40, 60, 80, 100}) {
		t.Errorf("out = %v", out)
	}
	if peak.Load() > 2 {
		t.Errorf("concurrency peaked at %d with 2 workers", peak.Load())
	}

	_, err = Map(context.Background(), 4, items, func(ctx context.Context, i, item int) (int, error) {
		if i >= 2 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return item, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom at 2") {
		t.Errorf("error = %v, want lowest-index boom", err)
	}
}

// TestRunEmptyAndDegenerate covers the edges: empty grids succeed with
// no results; nil kernels are reported, not dereferenced.
func TestRunEmptyAndDegenerate(t *testing.T) {
	res, err := Run(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty sweep: %v, %v", res, err)
	}
	_, err = Run(context.Background(), []Point{{N: 10, Config: sim.PaperConfig(4, 32)}})
	if err == nil || !strings.Contains(err.Error(), "nil kernel") {
		t.Errorf("nil kernel error = %v", err)
	}
}

// TestPointString pins the error-message identity of a point.
func TestPointString(t *testing.T) {
	k, err := loops.ByKey("k2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.PaperConfig(16, 64)
	cfg.Layout = partition.KindBlock
	got := Point{Kernel: k, N: 512, Config: cfg}.String()
	want := "k2/n=512/npe=16/ps=64/cache=256/block/lru"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
