package loops

import (
	"fmt"
	"math"
	"sort"
)

// expm1Safe returns exp(y)-1 bounded away from zero so kernel 22's
// division is always defined for the bland positive inputs used here.
func expm1Safe(y float64) float64 {
	v := math.Expm1(y)
	if v < 1e-9 && v >= 0 {
		return 1e-9
	}
	if v > -1e-9 && v < 0 {
		return -1e-9
	}
	return v
}

var registry = buildRegistry()

func buildRegistry() []*Kernel {
	ks := []*Kernel{
		kernel1(), kernel2(), kernel3(), kernel4(), kernel5(), kernel6(),
		kernel7(), kernel8(), kernel9(), kernel10(), kernel11(), kernel12(),
		kernel13(), kernel14(), kernel14frag(), kernel15(), kernel16(),
		kernel17(), kernel18(), kernel18frag(), kernel19(), kernel20(),
		kernel21(), kernel22(), kernel23(), kernel24(),
	}
	sort.SliceStable(ks, func(i, j int) bool {
		if ks[i].ID != ks[j].ID {
			// Fragments (ID 0) sort after the numbered kernels.
			a, b := ks[i].ID, ks[j].ID
			if a == 0 {
				a = 1000
			}
			if b == 0 {
				b = 1000
			}
			return a < b
		}
		return ks[i].Key < ks[j].Key
	})
	return ks
}

// All returns every registered kernel in Livermore order, fragments
// last. The returned slice is shared; callers must not modify it.
func All() []*Kernel { return registry }

// ByKey returns the kernel with the given key ("k1".."k24", "k14frag",
// "k18frag").
func ByKey(key string) (*Kernel, error) {
	for _, k := range registry {
		if k.Key == key {
			return k, nil
		}
	}
	return nil, fmt.Errorf("loops: unknown kernel %q", key)
}

// PaperSet returns the kernels the paper's evaluation discusses, keyed
// by their §7 classes.
func PaperSet() []*Kernel {
	keys := []string{"k14frag", "k1", "k5", "k7", "k18frag", "k11", "k12", "k2", "k18", "k6", "k8"}
	out := make([]*Kernel, 0, len(keys))
	for _, key := range keys {
		k, err := ByKey(key)
		if err != nil {
			panic(err) // registry invariant
		}
		out = append(out, k)
	}
	return out
}
