package loops

import "math"

// Deterministic input generators. The Livermore benchmark seeds its
// arrays with bland positive data; exact values are immaterial to the
// access-pattern measurements, but they must be reproducible across
// engines, bounded (so recurrences do not overflow), and bounded away
// from zero where used as divisors.

// inA returns a value in [0.25, 0.75].
func inA(i int) float64 { return 0.5 + 0.25*math.Sin(0.7*float64(i+1)) }

// inB returns a value in [0.5, 1.5], safe as a divisor.
func inB(i int) float64 { return 1.0 + 0.5*math.Cos(0.3*float64(i+1)) }

// inSmall returns a small positive value in (0, 7.5e-4], used for
// recurrence coefficients that must not amplify.
func inSmall(i int) float64 { return 1e-3 * inA(i) }

// pseudoIdx hashes i to a deterministic pseudo-random index in [1, mod],
// used by the particle-in-cell kernels for indirection ("effectively
// random page accesses", §7.1.4).
func pseudoIdx(i, mod int) int {
	if mod <= 0 {
		return 1
	}
	h := uint64(i)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return 1 + int(h%uint64(mod))
}

// clampF clamps v into [lo, hi] (the Fortran AMAX1/AMIN1 idiom of K20).
func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
