package loops

// Kernels 1-12 of the Livermore Loops, in single-assignment form, plus
// the fragments the paper uses as class exemplars. Indexing follows the
// Fortran sources (1-based); arrays carry one extra leading element so
// the transcription stays literal. Where the original kernel reuses an
// array (violating single assignment) the conversion to a fresh output
// array is noted in Notes, mirroring the paper's §5 "automatic
// conversion tool" whose translations "increase the amount of memory
// used for array storage".

// kernel1 is the Hydro Fragment (paper §7.1.2, Figure 1): a skewed
// distribution with skew 10/11.
//
//	DO 1 k = 1,n
//	1 X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))
func kernel1() *Kernel {
	const q, r, t = 0.5, 0.2, 0.1
	return &Kernel{
		ID: 1, Key: "k1", Name: "hydro fragment", Class: SD,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "ZX", Dims: []int{n + 12}, Init: InitAll(inB)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, y, zx := c.A("X"), c.A("Y"), c.A("ZX")
			for k := 1; k <= n; k++ {
				k := k
				x.Set(func() float64 {
					return q + y.Get(k)*(r*zx.Get(k+10)+t*zx.Get(k+11))
				}, k)
			}
		},
		Outputs: []string{"X"},
	}
}

// iccgPlan precomputes kernel 2's write set and the array size it
// needs. The loop skips one cell between passes (i starts at IPNTP+2
// while the previous pass ended below that); the skipped cells are read
// but never written, so — like the Fortran original, which found stale
// data there — they must be initialization data under single
// assignment.
func iccgPlan(n int) (writes map[int]bool, size int) {
	writes = make(map[int]bool)
	maxIdx := n
	ii, ipntp := n, 0
	for {
		ipnt := ipntp
		ipntp += ii
		ii /= 2
		i := ipntp + 1
		for k := ipnt + 2; k <= ipntp; k += 2 {
			i++
			writes[i] = true
			if i > maxIdx {
				maxIdx = i
			}
			if k+1 > maxIdx {
				maxIdx = k + 1
			}
		}
		if ii <= 1 {
			break
		}
	}
	return writes, maxIdx + 1
}

// kernel2 is the Incomplete Cholesky - Conjugate Gradient excerpt
// (paper §7.1.3, Figure 2): a cyclic distribution. The write index i
// advances half as fast as the read index k, so a fixed set of pages is
// revisited cyclically. The loop is single-assignment as published
// (i > k+1 throughout); X outside the write set is initialization data.
func kernel2() *Kernel {
	return &Kernel{
		ID: 2, Key: "k2", Name: "incomplete cholesky - conjugate gradient", Class: CD,
		DefaultN: 1024, MinN: 4,
		Arrays: func(n int) []Spec {
			writes, sz := iccgPlan(n)
			return []Spec{
				{Name: "X", Dims: []int{sz}, Init: func(i int) (float64, bool) {
					if writes[i] {
						return 0, false
					}
					return inA(i), true
				}},
				{Name: "V", Dims: []int{sz}, Init: InitAll(inSmall)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, v := c.A("X"), c.A("V")
			ii := n
			ipntp := 0
			for {
				ipnt := ipntp
				ipntp += ii
				ii /= 2
				i := ipntp + 1
				for k := ipnt + 2; k <= ipntp; k += 2 {
					i++
					i, k := i, k
					x.Set(func() float64 {
						return x.Get(k) - v.Get(k)*x.Get(k-1) - v.Get(k+1)*x.Get(k+1)
					}, i)
				}
				if ii <= 1 {
					break
				}
			}
		},
		Outputs: []string{"X"},
	}
}

// kernel3 is the Inner Product: Q = sum Z(k)*X(k). The vector-to-scalar
// collection uses the host-processor mechanism of §9; the element reads
// are matched, so the gather itself incurs no remote reads.
func kernel3() *Kernel {
	return &Kernel{
		ID: 3, Key: "k3", Name: "inner product", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Notes: "scalar result collected via host-processor reduction (§9) and stored in QOUT",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "Z", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "X", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "QOUT", Dims: []int{1}},
			}
		},
		Run: func(c *Ctx, n int) {
			z, x, qout := c.A("Z"), c.A("X"), c.A("QOUT")
			q := c.ReduceSum(z, 1, n+1, func(k int) float64 {
				return z.Get(k) * x.Get(k)
			})
			qout.Set(func() float64 { return q }, 0)
		},
		Outputs: []string{"QOUT"},
	}
}

// kernel4 is Banded Linear Equations: three long dot products, each
// written to one element. The original reads and then overwrites
// X(k-1); the single-assignment form writes the results to XO.
func kernel4() *Kernel {
	return &Kernel{
		ID: 4, Key: "k4", Name: "banded linear equations", Class: ClassUnknown,
		DefaultN: 1000, MinN: 15,
		Notes: "X(k-1) update redirected to output XO (SA conversion); only three elements are written, so the load is inherently unbalanced",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{2*n + 2}, Init: InitAll(inA)},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "XO", Dims: []int{n + 2}},
			}
		},
		Run: func(c *Ctx, n int) {
			x, y, xo := c.A("X"), c.A("Y"), c.A("XO")
			m := (n - 7) / 2
			if m < 1 {
				m = 1
			}
			for k := 7; k <= n; k += m {
				k := k
				xo.Set(func() float64 {
					lw := k - 6
					temp := x.Get(k - 1)
					for j := 5; j <= n; j += 5 {
						temp -= x.Get(lw) * y.Get(j)
						lw++
					}
					return y.Get(5) * temp
				}, k-1)
			}
		},
		Outputs: []string{"XO"},
	}
}

// kernel5 is Tri-Diagonal Elimination, below diagonal (paper §7.1.2,
// skewed class): X(i) = Z(i)*(Y(i) - X(i-1)), a first-order linear
// recurrence that is naturally single-assignment with X(1) as
// initialization data.
func kernel5() *Kernel {
	return &Kernel{
		ID: 5, Key: "k5", Name: "tri-diagonal elimination, below diagonal", Class: SD,
		DefaultN: 1000, MinN: 2,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}, Init: InitRange(1, 2, inA)},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "Z", Dims: []int{n + 1}, Init: InitAll(inSmall)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, y, z := c.A("X"), c.A("Y"), c.A("Z")
			for i := 2; i <= n; i++ {
				i := i
				x.Set(func() float64 {
					return z.Get(i) * (y.Get(i) - x.Get(i-1))
				}, i)
			}
		},
		Outputs: []string{"X"},
	}
}

// kernel6 is General Linear Recurrence Equations (paper §7.1.4,
// Figure 4): the paper's random-distribution exemplar. The original
// accumulates into W(i); the single-assignment form computes the full
// sum in the producer:
//
//	W(i) = 0.01 + sum_{k=1..i-1} B(k,i)*W(i-k)
//
// B is linearized row-major over its Fortran subscripts (k,i) per the
// paper's §7 convention, so the inner k-walk of B jumps a full row per
// step — a page per read, a cycle far larger than the cache.
func kernel6() *Kernel {
	return &Kernel{
		ID: 6, Key: "k6", Name: "general linear recurrence equations", Class: RD,
		DefaultN: 300, MinN: 2,
		Notes: "accumulation into W(i) folded into a single producer assignment (SA conversion)",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "W", Dims: []int{n + 1}, Init: InitRange(1, 2, inA)},
				{Name: "B", Dims: []int{n + 1, n + 1}, Init: InitAll(inSmall)},
			}
		},
		Run: func(c *Ctx, n int) {
			w, b := c.A("W"), c.A("B")
			for i := 2; i <= n; i++ {
				i := i
				w.Set(func() float64 {
					s := 0.01
					for k := 1; k <= i-1; k++ {
						s += b.Get(k, i) * w.Get(i-k)
					}
					return s
				}, i)
			}
		},
		Outputs: []string{"W"},
	}
}

// kernel7 is the Equation of State Fragment (paper §7.1.2, skewed
// class): skews of 1..6 on U.
func kernel7() *Kernel {
	const q, r, t = 0.5, 0.2, 0.1
	return &Kernel{
		ID: 7, Key: "k7", Name: "equation of state fragment", Class: SD,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}},
				{Name: "U", Dims: []int{n + 7}, Init: InitAll(inA)},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "Z", Dims: []int{n + 1}, Init: InitAll(inA)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, u, y, z := c.A("X"), c.A("U"), c.A("Y"), c.A("Z")
			for k := 1; k <= n; k++ {
				k := k
				x.Set(func() float64 {
					return u.Get(k) + r*(z.Get(k)+r*y.Get(k)) +
						t*(u.Get(k+3)+r*(u.Get(k+2)+r*u.Get(k+1))+
							t*(u.Get(k+6)+q*(u.Get(k+5)+q*u.Get(k+4))))
				}, k)
			}
		},
		Outputs: []string{"X"},
	}
}

// kernel8 is A.D.I. Integration (paper §7.1.4, random class): 3-D
// arrays combined with ±1 skews in the slow dimension scatter reads
// over a page working set much larger than the cache. The original
// writes DU1(ky) once per kx (a double write); the single-assignment
// form makes the DU arrays two-dimensional.
func kernel8() *Kernel {
	const (
		a11, a12, a13 = 0.10, 0.15, 0.20
		a21, a22, a23 = 0.12, 0.18, 0.14
		a31, a32, a33 = 0.16, 0.11, 0.13
		sig           = 0.25
	)
	return &Kernel{
		ID: 8, Key: "k8", Name: "a.d.i. integration", Class: RD,
		DefaultN: 500, MinN: 3,
		Notes: "DU1..DU3 expanded to (kx,ky) to restore single assignment; U planes: nl1=1 is initialization data, nl2=2 is produced",
		Arrays: func(n int) []Spec {
			// U arrays: (kx, ky, l) with kx in 1..4 read, l in {1,2}.
			uDims := []int{5, n + 2, 3}
			initPlane1 := func(f func(int) float64) func(int) (float64, bool) {
				return func(lin int) (float64, bool) {
					if lin%3 == 1 { // l == 1 plane
						return f(lin), true
					}
					return 0, false
				}
			}
			return []Spec{
				{Name: "U1", Dims: uDims, Init: initPlane1(inA)},
				{Name: "U2", Dims: uDims, Init: initPlane1(inB)},
				{Name: "U3", Dims: uDims, Init: initPlane1(inA)},
				{Name: "DU1", Dims: []int{4, n + 2}},
				{Name: "DU2", Dims: []int{4, n + 2}},
				{Name: "DU3", Dims: []int{4, n + 2}},
			}
		},
		Run: func(c *Ctx, n int) {
			u1, u2, u3 := c.A("U1"), c.A("U2"), c.A("U3")
			du1, du2, du3 := c.A("DU1"), c.A("DU2"), c.A("DU3")
			const nl1, nl2 = 1, 2
			for kx := 2; kx <= 3; kx++ {
				for ky := 2; ky <= n; ky++ {
					kx, ky := kx, ky
					du1.Set(func() float64 {
						return u1.Get(kx, ky+1, nl1) - u1.Get(kx, ky-1, nl1)
					}, kx, ky)
					du2.Set(func() float64 {
						return u2.Get(kx, ky+1, nl1) - u2.Get(kx, ky-1, nl1)
					}, kx, ky)
					du3.Set(func() float64 {
						return u3.Get(kx, ky+1, nl1) - u3.Get(kx, ky-1, nl1)
					}, kx, ky)
					u1.Set(func() float64 {
						return u1.Get(kx, ky, nl1) +
							a11*du1.Get(kx, ky) + a12*du2.Get(kx, ky) + a13*du3.Get(kx, ky) +
							sig*(u1.Get(kx+1, ky, nl1)-2*u1.Get(kx, ky, nl1)+u1.Get(kx-1, ky, nl1))
					}, kx, ky, nl2)
					u2.Set(func() float64 {
						return u2.Get(kx, ky, nl1) +
							a21*du1.Get(kx, ky) + a22*du2.Get(kx, ky) + a23*du3.Get(kx, ky) +
							sig*(u2.Get(kx+1, ky, nl1)-2*u2.Get(kx, ky, nl1)+u2.Get(kx-1, ky, nl1))
					}, kx, ky, nl2)
					u3.Set(func() float64 {
						return u3.Get(kx, ky, nl1) +
							a31*du1.Get(kx, ky) + a32*du2.Get(kx, ky) + a33*du3.Get(kx, ky) +
							sig*(u3.Get(kx+1, ky, nl1)-2*u3.Get(kx, ky, nl1)+u3.Get(kx-1, ky, nl1))
					}, kx, ky, nl2)
				}
			}
		},
		Outputs: []string{"U1", "U2", "U3"},
	}
}

// kernel9 is Integrate Predictors: one write per column reading eleven
// fixed rows of PX. Row 1 is produced; rows 2..13 are initialization
// data.
func kernel9() *Kernel {
	coef := []float64{0, 0, 0, 1.0, 0, 0.0521, 0.0521, 0.0525, 0.0508, 0.1607, 0.1719, 0.4812, 1.1203, 2.1850}
	return &Kernel{
		ID: 9, Key: "k9", Name: "integrate predictors", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			width := n + 1
			return []Spec{
				{Name: "PX", Dims: []int{14, width}, Init: func(lin int) (float64, bool) {
					if lin/width >= 2 { // rows 2..13 are inputs
						return inA(lin), true
					}
					return 0, false
				}},
			}
		},
		Run: func(c *Ctx, n int) {
			px := c.A("PX")
			c0 := coef[4+1]
			for i := 1; i <= n; i++ {
				i := i
				px.Set(func() float64 {
					s := px.Get(3, i) + c0*(px.Get(5, i)+px.Get(6, i))
					for j := 7; j <= 13; j++ {
						s += coef[j] * px.Get(j, i)
					}
					return s
				}, 1, i)
			}
		},
		Outputs: []string{"PX"},
	}
}

// kernel10 is Difference Predictors: the original chains temporaries
// through in-place updates of PX rows 5..14; the single-assignment form
// writes the new values to PX2, with each producer recomputing the
// difference chain prefix it needs (the screened RHS of §3 evaluates
// only on the owner, so replication of the chain is the SA-conversion
// cost).
func kernel10() *Kernel {
	return &Kernel{
		ID: 10, Key: "k10", Name: "difference predictors", Class: ClassUnknown,
		DefaultN: 600, MinN: 1,
		Notes: "in-place PX row updates redirected to PX2; difference chain recomputed per producer",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "CX", Dims: []int{15, n + 1}, Init: InitAll(inA)},
				{Name: "PX", Dims: []int{15, n + 1}, Init: InitAll(inB)},
				{Name: "PX2", Dims: []int{15, n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			cx, px, px2 := c.A("CX"), c.A("PX"), c.A("PX2")
			// chain(j, i) is the j-th difference: chain(4,i) = CX(5,i),
			// chain(j,i) = chain(j-1,i) - PX(j,i) for j in 5..13.
			chain := func(j, i int) float64 {
				v := cx.Get(5, i)
				for t := 5; t <= j; t++ {
					v -= px.Get(t, i)
				}
				return v
			}
			for i := 1; i <= n; i++ {
				i := i
				for j := 5; j <= 14; j++ {
					j := j
					px2.Set(func() float64 { return chain(j-1, i) }, j, i)
				}
			}
		},
		Outputs: []string{"PX2"},
	}
}

// kernel11 is First Sum (paper §7.1.2, skewed class): the running sum
// X(k) = X(k-1) + Y(k), naturally single-assignment.
func kernel11() *Kernel {
	return &Kernel{
		ID: 11, Key: "k11", Name: "first sum", Class: SD,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inA)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, y := c.A("X"), c.A("Y")
			x.Set(func() float64 { return y.Get(1) }, 1)
			for k := 2; k <= n; k++ {
				k := k
				x.Set(func() float64 { return x.Get(k-1) + y.Get(k) }, k)
			}
		},
		Outputs: []string{"X"},
	}
}

// kernel12 is First Difference (paper §7.1.2, skewed class):
// X(k) = Y(k+1) - Y(k).
func kernel12() *Kernel {
	return &Kernel{
		ID: 12, Key: "k12", Name: "first difference", Class: SD,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}},
				{Name: "Y", Dims: []int{n + 2}, Init: InitAll(inA)},
			}
		},
		Run: func(c *Ctx, n int) {
			x, y := c.A("X"), c.A("Y")
			for k := 1; k <= n; k++ {
				k := k
				x.Set(func() float64 { return y.Get(k+1) - y.Get(k) }, k)
			}
		},
		Outputs: []string{"X"},
	}
}
