package loops

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryComplete(t *testing.T) {
	ks := All()
	if len(ks) != 26 { // 24 kernels + 2 fragments
		t.Fatalf("registry holds %d kernels, want 26", len(ks))
	}
	seenKey := map[string]bool{}
	seenID := map[int]bool{}
	for _, k := range ks {
		if seenKey[k.Key] {
			t.Errorf("duplicate key %q", k.Key)
		}
		seenKey[k.Key] = true
		if k.ID != 0 {
			if seenID[k.ID] {
				t.Errorf("duplicate ID %d", k.ID)
			}
			seenID[k.ID] = true
		}
		if k.Run == nil || k.Arrays == nil || len(k.Outputs) == 0 {
			t.Errorf("kernel %s incomplete", k.Key)
		}
		if k.DefaultN < k.MinN {
			t.Errorf("kernel %s: DefaultN %d < MinN %d", k.Key, k.DefaultN, k.MinN)
		}
	}
	for id := 1; id <= 24; id++ {
		if !seenID[id] {
			t.Errorf("Livermore kernel %d missing", id)
		}
	}
}

func TestByKey(t *testing.T) {
	k, err := ByKey("k1")
	if err != nil || k.ID != 1 {
		t.Errorf("ByKey(k1) = %v, %v", k, err)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestPaperSet(t *testing.T) {
	ps := PaperSet()
	if len(ps) != 11 {
		t.Fatalf("paper set has %d kernels", len(ps))
	}
	// The paper's taxonomy must be represented.
	byClass := map[Class]int{}
	for _, k := range ps {
		byClass[k.Class]++
	}
	if byClass[MD] < 1 || byClass[SD] < 5 || byClass[CD] < 2 || byClass[RD] < 2 {
		t.Errorf("class coverage = %v", byClass)
	}
}

func TestAllKernelsRunSequentially(t *testing.T) {
	// Every kernel must execute on the reference engine without
	// single-assignment violations or reads of undefined cells, and must
	// produce finite, nonempty output.
	for _, k := range All() {
		k := k
		t.Run(k.Key, func(t *testing.T) {
			n := k.DefaultN
			if n > 300 {
				n = 300 // keep the full-suite run quick
			}
			res, err := RunSeq(k, n)
			if err != nil {
				t.Fatalf("%s: %v", k.Key, err)
			}
			for _, cs := range res.Checksums {
				if cs.Defined == 0 {
					t.Errorf("%s: output %s has no defined cells", k.Key, cs.Name)
				}
				if math.IsNaN(cs.Sum) || math.IsInf(cs.Sum, 0) {
					t.Errorf("%s: output %s checksum not finite: %v", k.Key, cs.Name, cs.Sum)
				}
			}
		})
	}
}

func TestAllKernelsRunAtMinN(t *testing.T) {
	for _, k := range All() {
		if _, err := RunSeq(k, k.MinN); err != nil {
			t.Errorf("%s at MinN=%d: %v", k.Key, k.MinN, err)
		}
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, key := range []string{"k1", "k2", "k6", "k13", "k18"} {
		k, err := ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		r1, err1 := RunSeq(k, 100)
		r2, err2 := RunSeq(k, 100)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", key, err1, err2)
		}
		for i := range r1.Checksums {
			if r1.Checksums[i] != r2.Checksums[i] {
				t.Errorf("%s: run-to-run checksum drift: %+v vs %+v",
					key, r1.Checksums[i], r2.Checksums[i])
			}
		}
	}
}

func TestKernel1Values(t *testing.T) {
	// Spot check against the formula computed independently.
	k, _ := ByKey("k1")
	res, err := RunSeq(k, 50)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Values["X"]
	for kk := 1; kk <= 50; kk++ {
		want := 0.5 + inA(kk)*(0.2*inB(kk+10)+0.1*inB(kk+11))
		if math.Abs(x[kk]-want) > 1e-12 {
			t.Fatalf("X[%d] = %v, want %v", kk, x[kk], want)
		}
	}
}

func TestKernel5RecurrenceValues(t *testing.T) {
	k, _ := ByKey("k5")
	res, err := RunSeq(k, 20)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Values["X"]
	prev := inA(1)
	for i := 2; i <= 20; i++ {
		want := inSmall(i) * (inA(i) - prev)
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("X[%d] = %v, want %v", i, x[i], want)
		}
		prev = want
	}
}

func TestKernel11RunningSum(t *testing.T) {
	k, _ := ByKey("k11")
	res, err := RunSeq(k, 30)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Values["X"]
	sum := 0.0
	for kk := 1; kk <= 30; kk++ {
		sum += inA(kk)
		if math.Abs(x[kk]-sum) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", kk, x[kk], sum)
		}
	}
}

func TestKernel3InnerProduct(t *testing.T) {
	k, _ := ByKey("k3")
	res, err := RunSeq(k, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 1; i <= 100; i++ {
		want += inA(i) * inB(i)
	}
	got := res.Values["QOUT"][0]
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("inner product = %v, want %v", got, want)
	}
}

func TestKernel24FirstMin(t *testing.T) {
	k, _ := ByKey("k24")
	res, err := RunSeq(k, 200)
	if err != nil {
		t.Fatal(err)
	}
	best, at := math.Inf(1), -1
	for i := 1; i <= 200; i++ {
		v := inA(i*3 + 1)
		if v < best {
			best, at = v, i
		}
	}
	if got := int(res.Values["MOUT"][0]); got != at {
		t.Errorf("first-min index = %d, want %d", got, at)
	}
}

func TestKernel2WriteRange(t *testing.T) {
	// Every cell of ICCG's X is either initialization data or written
	// exactly once, so the output is fully defined.
	k, _ := ByKey("k2")
	n := 256
	res, err := RunSeq(k, n)
	if err != nil {
		t.Fatal(err)
	}
	cs := res.Checksums[0]
	if cs.Defined != cs.Elems {
		t.Errorf("defined cells = %d, want %d (fully defined)", cs.Defined, cs.Elems)
	}
	// The write set is disjoint across passes and roughly n-1 cells.
	writes, _ := iccgPlan(n)
	if len(writes) < n/2 || len(writes) > n {
		t.Errorf("write set size = %d for n=%d", len(writes), n)
	}
}

func TestSeqEngineDetectsDoubleWrite(t *testing.T) {
	bad := &Kernel{
		Key: "bad", Name: "double write", DefaultN: 4, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{{Name: "X", Dims: []int{n + 1}}}
		},
		Run: func(c *Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return 1 }, 1)
			x.Set(func() float64 { return 2 }, 1)
		},
		Outputs: []string{"X"},
	}
	if _, err := RunSeq(bad, 4); err == nil {
		t.Fatal("double write not detected")
	} else if !strings.Contains(err.Error(), "double write") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSeqEngineDetectsReadBeforeWrite(t *testing.T) {
	bad := &Kernel{
		Key: "rbw", Name: "read before write", DefaultN: 4, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{{Name: "X", Dims: []int{n + 1}}}
		},
		Run: func(c *Ctx, n int) {
			x := c.A("X")
			x.Set(func() float64 { return x.Get(2) }, 1)
		},
		Outputs: []string{"X"},
	}
	if _, err := RunSeq(bad, 4); err == nil {
		t.Fatal("read of undefined cell not detected")
	} else if !strings.Contains(err.Error(), "undefined") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSeqEngineDetectsOverwriteOfInit(t *testing.T) {
	bad := &Kernel{
		Key: "owi", Name: "overwrite init", DefaultN: 4, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{{Name: "X", Dims: []int{n + 1}, Init: InitAll(inA)}}
		},
		Run: func(c *Ctx, n int) {
			c.A("X").Set(func() float64 { return 1 }, 1)
		},
		Outputs: []string{"X"},
	}
	if _, err := RunSeq(bad, 4); err == nil {
		t.Fatal("overwrite of initialization data not detected")
	}
}

func TestBindValidation(t *testing.T) {
	if _, err := Bind(nil, []Spec{{Name: "A", Dims: []int{0}}}); err == nil {
		t.Error("invalid dims accepted")
	}
	if _, err := Bind(nil, []Spec{
		{Name: "A", Dims: []int{2}},
		{Name: "A", Dims: []int{2}},
	}); err == nil {
		t.Error("duplicate array name accepted")
	}
}

func TestCtxUnknownArrayPanics(t *testing.T) {
	eng, ctx, err := NewSeqEngine([]Spec{{Name: "A", Dims: []int{2}}})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng
	defer func() {
		if recover() == nil {
			t.Error("unknown array lookup did not panic")
		}
	}()
	ctx.A("B")
}

func TestCombineReduce(t *testing.T) {
	if v, i := CombineReduce(OpSum, 2, -1, 3, -1); v != 5 || i != -1 {
		t.Errorf("sum combine = %v,%d", v, i)
	}
	if v, i := CombineReduce(OpMin, 2, 5, 1, 9); v != 1 || i != 9 {
		t.Errorf("min combine = %v,%d", v, i)
	}
	if v, i := CombineReduce(OpMin, 1, 9, 1, 3); v != 1 || i != 3 {
		t.Errorf("min tie combine = %v,%d (want earlier index)", v, i)
	}
	if v, i := CombineReduce(OpMax, 2, 5, 7, 9); v != 7 || i != 9 {
		t.Errorf("max combine = %v,%d", v, i)
	}
	// Identity element: index -1 means "no contribution yet".
	if v, i := CombineReduce(OpMin, 0, -1, 4, 2); v != 4 || i != 2 {
		t.Errorf("min identity combine = %v,%d", v, i)
	}
	if v, i := CombineReduce(OpMax, 9, 3, 0, -1); v != 9 || i != 3 {
		t.Errorf("max identity combine = %v,%d", v, i)
	}
}

func TestPropertyCombineReduceAssociativeWithSerial(t *testing.T) {
	// Property: splitting a reduction at any point and combining partials
	// equals the serial result.
	f := func(raw []float64, cut uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			// NaN ordering is unspecified, and near-MaxFloat64 values
			// overflow differently depending on the grouping — both are
			// properties of IEEE754, not of CombineReduce.
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true
			}
		}
		term := func(i int) float64 { return raw[i] }
		n := len(raw)
		c := int(cut) % (n + 1)
		for _, op := range []Op{OpSum, OpMin, OpMax} {
			whole, wi := reduceSerial(op, 0, n, term)
			v1, i1 := reduceSerial(op, 0, c, term)
			v2, i2 := reduceSerial(op, c, n, term)
			cv, ci := CombineReduce(op, v1, i1, v2, i2)
			if op == OpSum {
				if math.Abs(cv-whole) > 1e-9*(1+math.Abs(whole)) {
					return false
				}
			} else if cv != whole || ci != wi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpSum.String() != "sum" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Error("op names wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op empty")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{MD: "MD", SD: "SD", CD: "CD", RD: "RD", ClassUnknown: "?"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("class %d = %q", int(c), c.String())
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class empty")
	}
}

func TestClampN(t *testing.T) {
	k := &Kernel{DefaultN: 100, MinN: 8}
	if k.ClampN(0) != 100 || k.ClampN(-5) != 100 {
		t.Error("default clamp wrong")
	}
	if k.ClampN(3) != 8 {
		t.Error("min clamp wrong")
	}
	if k.ClampN(50) != 50 {
		t.Error("pass-through wrong")
	}
}

func TestInputsBounded(t *testing.T) {
	for i := 0; i < 10000; i++ {
		if v := inA(i); v < 0.25 || v > 0.75 {
			t.Fatalf("inA(%d) = %v out of range", i, v)
		}
		if v := inB(i); v < 0.5 || v > 1.5 {
			t.Fatalf("inB(%d) = %v out of range", i, v)
		}
		if v := inSmall(i); v <= 0 || v > 7.5e-4 {
			t.Fatalf("inSmall(%d) = %v out of range", i, v)
		}
	}
}

func TestPseudoIdxRange(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		v := pseudoIdx(i, 64)
		if v < 1 || v > 64 {
			t.Fatalf("pseudoIdx(%d, 64) = %d", i, v)
		}
		seen[v] = true
	}
	if len(seen) < 60 {
		t.Errorf("pseudoIdx covers only %d of 64 buckets", len(seen))
	}
	if pseudoIdx(5, 0) != 1 {
		t.Error("degenerate mod should return 1")
	}
}

func TestClampF(t *testing.T) {
	if clampF(5, 0, 1) != 1 || clampF(-5, 0, 1) != 0 || clampF(0.5, 0, 1) != 0.5 {
		t.Error("clampF wrong")
	}
}

func TestKernel7EquationOfStateValues(t *testing.T) {
	k, _ := ByKey("k7")
	res, err := RunSeq(k, 40)
	if err != nil {
		t.Fatal(err)
	}
	const q, r, tt = 0.5, 0.2, 0.1
	x := res.Values["X"]
	for kk := 1; kk <= 40; kk++ {
		u := func(j int) float64 { return inA(j) }
		want := u(kk) + r*(inA(kk)+r*inB(kk)) +
			tt*(u(kk+3)+r*(u(kk+2)+r*u(kk+1))+
				tt*(u(kk+6)+q*(u(kk+5)+q*u(kk+4))))
		if math.Abs(x[kk]-want) > 1e-12 {
			t.Fatalf("X[%d] = %v, want %v", kk, x[kk], want)
		}
	}
}

func TestKernel12FirstDifferenceValues(t *testing.T) {
	k, _ := ByKey("k12")
	res, err := RunSeq(k, 50)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Values["X"]
	for kk := 1; kk <= 50; kk++ {
		want := inA(kk+1) - inA(kk)
		if math.Abs(x[kk]-want) > 1e-12 {
			t.Fatalf("X[%d] = %v, want %v", kk, x[kk], want)
		}
	}
}

func TestKernel19TwoSweepValues(t *testing.T) {
	k, _ := ByKey("k19")
	n := 30
	res, err := RunSeq(k, n)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending sweep reference.
	stb5 := inA(0) // S1(0) boundary
	for kk := 1; kk <= n; kk++ {
		b5 := inA(kk) + stb5*inSmall(kk)
		stb5 = b5 - stb5
		if math.Abs(res.Values["B5"][kk]-b5) > 1e-9 {
			t.Fatalf("B5[%d] = %v, want %v", kk, res.Values["B5"][kk], b5)
		}
	}
	// Descending sweep reference.
	stb5 = inA(n + 1) // S2(n+1) boundary
	for i := 1; i <= n; i++ {
		kk := n - i + 1
		b5 := inA(kk) + stb5*inSmall(kk)
		stb5 = b5 - stb5
		if math.Abs(res.Values["B5R"][kk]-b5) > 1e-9 {
			t.Fatalf("B5R[%d] = %v, want %v", kk, res.Values["B5R"][kk], b5)
		}
	}
}

func TestKernel20ConditionalRecurrenceValues(t *testing.T) {
	k, _ := ByKey("k20")
	n := 25
	res, err := RunSeq(k, n)
	if err != nil {
		t.Fatal(err)
	}
	const dk, sLo, tHi = 0.2, 0.1, 5.0
	xx := inA(1) // XX(1) boundary
	for kk := 1; kk <= n; kk++ {
		di := inB(kk) - inSmall(kk)/(xx+dk)
		dn := 0.2
		if di != 0 {
			dn = clampF(inA(kk)/di, sLo, tHi)
		}
		x := ((inB(kk)+inA(kk)*dn)*xx + inA(kk)) / (inB(kk) + inA(kk)*dn)
		if math.Abs(res.Values["X"][kk]-x) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", kk, res.Values["X"][kk], x)
		}
		xx = (x-xx)*dn + xx
		if math.Abs(res.Values["XX"][kk+1]-xx) > 1e-9 {
			t.Fatalf("XX[%d] = %v, want %v", kk+1, res.Values["XX"][kk+1], xx)
		}
	}
}

func TestKernel22PlanckianValues(t *testing.T) {
	k, _ := ByKey("k22")
	res, err := RunSeq(k, 40)
	if err != nil {
		t.Fatal(err)
	}
	for kk := 1; kk <= 40; kk++ {
		y := inA(kk) / inB(kk)
		w := inA(kk) / expm1Safe(y)
		if math.Abs(res.Values["Y"][kk]-y) > 1e-12 {
			t.Fatalf("Y[%d] wrong", kk)
		}
		if math.Abs(res.Values["W"][kk]-w) > 1e-12 {
			t.Fatalf("W[%d] wrong", kk)
		}
	}
}
