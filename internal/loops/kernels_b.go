package loops

// Kernels 13-24 plus the two fragments the paper uses as class
// exemplars (1-D Particle-in-Cell fragment for Matched Distribution,
// Explicit Hydrodynamics fragment for Skewed Distribution).

// kernel13 is 2-D Particle in Cell, single-assignment form: the
// original gathers grid values through particle-position indirection
// and scatters charge increments into H. The gathers (the random page
// accesses) are preserved; the scatter, an accumulation that violates
// single assignment, becomes a per-particle contribution record (the
// histogram would be folded by the host processor, §9).
func kernel13() *Kernel {
	const grid = 64
	return &Kernel{
		ID: 13, Key: "k13", Name: "2-d particle in cell", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Notes: "H-scatter converted to per-particle contributions P3O/P4O/HC (SA conversion); gathers preserve the random access pattern",
		Arrays: func(n int) []Spec {
			width := n + 1
			return []Spec{
				{Name: "P", Dims: []int{5, width}, Init: func(lin int) (float64, bool) {
					row := lin / width
					switch row {
					case 1, 2: // particle coordinates in [1, grid]
						return float64(pseudoIdx(lin, grid)), true
					case 3, 4: // particle values
						return inA(lin), true
					}
					return 0, false
				}},
				{Name: "B", Dims: []int{grid + 2, grid + 2}, Init: InitAll(inA)},
				{Name: "C", Dims: []int{grid + 2, grid + 2}, Init: InitAll(inB)},
				{Name: "P3O", Dims: []int{width}},
				{Name: "P4O", Dims: []int{width}},
				{Name: "HC", Dims: []int{width}},
			}
		},
		Run: func(c *Ctx, n int) {
			p, b, cc := c.A("P"), c.A("B"), c.A("C")
			p3o, p4o, hc := c.A("P3O"), c.A("P4O"), c.A("HC")
			for ip := 1; ip <= n; ip++ {
				ip := ip
				p3o.Set(func() float64 {
					i1 := int(p.Get(1, ip))
					j1 := int(p.Get(2, ip))
					return p.Get(3, ip) + b.Get(i1, j1)
				}, ip)
				p4o.Set(func() float64 {
					i2 := 1 + (int(p.Get(1, ip))+7)%grid
					j2 := 1 + (int(p.Get(2, ip))+3)%grid
					return p.Get(4, ip) + cc.Get(i2, j2)
				}, ip)
				hc.Set(func() float64 {
					i2 := 1 + (int(p.Get(1, ip))+7)%grid
					j2 := 1 + (int(p.Get(2, ip))+3)%grid
					return float64(i2*grid + j2) // deposited cell id
				}, ip)
			}
		},
		Outputs: []string{"P3O", "P4O", "HC"},
	}
}

// kernel14 is 1-D Particle in Cell: the matched first statements
// followed by the indirect gathers EX(IX(k)), DEX(IX(k)) through the
// particle grid position.
func kernel14() *Kernel {
	return &Kernel{
		ID: 14, Key: "k14", Name: "1-d particle in cell", Class: ClassUnknown,
		DefaultN: 1000, MinN: 2,
		Notes: "gathers through GRD positions preserved; VX/XX zero-fill statements folded into the final expressions",
		Arrays: func(n int) []Spec {
			half := n/2 + 2
			return []Spec{
				{Name: "GRD", Dims: []int{n + 1}, Init: InitAll(func(i int) float64 {
					return float64(pseudoIdx(i, half-1))
				})},
				{Name: "EX", Dims: []int{half}, Init: InitAll(inA)},
				{Name: "DEX", Dims: []int{half}, Init: InitAll(inB)},
				{Name: "IXO", Dims: []int{n + 1}},
				{Name: "EX1", Dims: []int{n + 1}},
				{Name: "DEX1", Dims: []int{n + 1}},
				{Name: "VX", Dims: []int{n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			grd, ex, dex := c.A("GRD"), c.A("EX"), c.A("DEX")
			ixo, ex1, dex1, vx := c.A("IXO"), c.A("EX1"), c.A("DEX1"), c.A("VX")
			for k := 1; k <= n; k++ {
				k := k
				ixo.Set(func() float64 { return float64(int(grd.Get(k))) }, k)
				ex1.Set(func() float64 { return ex.Get(int(grd.Get(k))) }, k)
				dex1.Set(func() float64 { return dex.Get(int(grd.Get(k))) }, k)
				vx.Set(func() float64 {
					ix := int(grd.Get(k))
					return ex1.Get(k) + (grd.Get(k)-float64(ix))*dex1.Get(k)
				}, k)
			}
		},
		Outputs: []string{"IXO", "EX1", "DEX1", "VX"},
	}
}

// kernel14frag is the paper's Matched Distribution exemplar (§7.1.1):
//
//	DO 1 k = 1,n
//	1 RX(k) = XX(k) - IR(k)
//
// Every index is identical, so the remote-read ratio is exactly zero at
// any PE count.
func kernel14frag() *Kernel {
	return &Kernel{
		ID: 0, Key: "k14frag", Name: "1-d particle in cell (fragment)", Class: MD,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "RX", Dims: []int{n + 1}},
				{Name: "XX", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "IR", Dims: []int{n + 1}, Init: InitAll(inB)},
			}
		},
		Run: func(c *Ctx, n int) {
			rx, xx, ir := c.A("RX"), c.A("XX"), c.A("IR")
			for k := 1; k <= n; k++ {
				k := k
				rx.Set(func() float64 { return xx.Get(k) - ir.Get(k) }, k)
			}
		},
		Outputs: []string{"RX"},
	}
}

// kernel15 is Casual Fortran: a conditional star stencil over a narrow
// 2-D strip. The original's GOTO ladder is expressed as value selection
// inside the producers; the in-place updates write to fresh output
// arrays.
func kernel15() *Kernel {
	return &Kernel{
		ID: 15, Key: "k15", Name: "casual fortran, development version", Class: ClassUnknown,
		DefaultN: 400, MinN: 2,
		Notes: "GOTO ladder rendered as conditional expressions; VY/VH updates redirected to VY2/VH2 (SA conversion)",
		Arrays: func(n int) []Spec {
			d := []int{n + 2, 9}
			return []Spec{
				{Name: "VF", Dims: d, Init: InitAll(inA)},
				{Name: "VG", Dims: d, Init: InitAll(inB)},
				{Name: "VH", Dims: d, Init: InitAll(inA)},
				{Name: "VS", Dims: d, Init: InitAll(inB)},
				{Name: "VY2", Dims: d},
				{Name: "VH2", Dims: d},
			}
		},
		Run: func(c *Ctx, n int) {
			vf, vg, vh, vs := c.A("VF"), c.A("VG"), c.A("VH"), c.A("VS")
			vy2, vh2 := c.A("VY2"), c.A("VH2")
			for j := 2; j <= n; j++ {
				for k := 2; k <= 7; k++ {
					j, k := j, k
					vy2.Set(func() float64 {
						t := vh.Get(j, k)
						if vh.Get(j, k+1) > t {
							t = vh.Get(j, k+1)
						}
						s := vf.Get(j, k)
						if vg.Get(j, k) < s {
							s = vg.Get(j, k)
						}
						return t * s / vs.Get(j, k)
					}, j, k)
					vh2.Set(func() float64 {
						if vf.Get(j-1, k) < vg.Get(j, k-1) {
							return vg.Get(j, k+1) * vf.Get(j-1, k)
						}
						return vh.Get(j+1, k) - vs.Get(j, k)
					}, j, k)
				}
			}
		},
		Outputs: []string{"VY2", "VH2"},
	}
}

// kernel16 is the Monte Carlo Search Loop: probes walk the zone and
// plane tables in a data-dependent order. The deterministic variant
// keeps the bounded multi-table probing (strided, effectively random
// page accesses) and records each probe's verdict.
func kernel16() *Kernel {
	return &Kernel{
		ID: 16, Key: "k16", Name: "monte carlo search loop", Class: ClassUnknown,
		DefaultN: 300, MinN: 3,
		Notes: "GOTO search restructured into a bounded deterministic probe per m (documented simplification; preserves multi-table strided probing)",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "ZONE", Dims: []int{3*n + 2}, Init: InitAll(inA)},
				{Name: "PLAN", Dims: []int{3*n + 2}, Init: InitAll(inB)},
				{Name: "D", Dims: []int{n + 2}, Init: InitAll(inA)},
				{Name: "FOUND", Dims: []int{n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			zone, plan, d, found := c.A("ZONE"), c.A("PLAN"), c.A("D"), c.A("FOUND")
			for m := 1; m <= n; m++ {
				m := m
				found.Set(func() float64 {
					acc := 0.0
					for t := 0; t < 8; t++ {
						j := 1 + (m*7+t*ctxStride)%(3*n)
						if plan.Get(j) < d.Get(1+(m+t)%n) {
							acc += zone.Get(j)
						} else {
							acc -= zone.Get(j)
						}
					}
					return acc
				}, m)
			}
		},
		Outputs: []string{"FOUND"},
	}
}

// ctxStride spreads kernel16 probes across the tables.
const ctxStride = 131

// kernel17 is Implicit, Conditional Computation: a descending
// conditional recurrence. The scalar carried across iterations becomes
// the array E6 (SA conversion of the paper's §5 kind), read at skew -1.
func kernel17() *Kernel {
	return &Kernel{
		ID: 17, Key: "k17", Name: "implicit, conditional computation", Class: ClassUnknown,
		DefaultN: 1000, MinN: 2,
		Notes: "carried scalar E6 expanded into an array indexed by k (SA conversion); conditional select preserved",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "ZR", Dims: []int{n + 2}, Init: InitAll(inA)},
				{Name: "ZT", Dims: []int{n + 2}, Init: InitAll(inSmall)},
				{Name: "ZW", Dims: []int{n + 2}, Init: InitAll(inB)},
				{Name: "E6", Dims: []int{n + 2}, Init: InitRange(n+1, n+2, inA)},
				{Name: "VXNE", Dims: []int{n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			zr, zt, zw := c.A("ZR"), c.A("ZT"), c.A("ZW")
			e6, vxne := c.A("E6"), c.A("VXNE")
			const scale, xnm = 5.0 / 3.0, 1.0 / 3.0
			for k := n; k >= 1; k-- {
				k := k
				e6.Set(func() float64 {
					t := zw.Get(k) * zr.Get(k)
					if t > zt.Get(k) {
						return xnm*e6.Get(k+1) + t - zt.Get(k)
					}
					return xnm*e6.Get(k+1) + t + zt.Get(k)
				}, k)
				vxne.Set(func() float64 { return scale * e6.Get(k) }, k)
			}
		},
		Outputs: []string{"E6", "VXNE"},
	}
}

// kernel18 is 2-D Explicit Hydrodynamics (paper §7.1.3, Figure 3 and
// the Figure 5 load-balance subject): three stencil phases over a
// 7-column strip. Phases 2 and 3 of the original update ZU/ZV/ZR/ZZ in
// place; the single-assignment form produces ZU2/ZV2/ZR2/ZZ2 and reads
// the phase-1 outputs ZA/ZB through real cross-PE dataflow. Cells the
// loop reads but never writes — ZA column j=1, ZB row k=7 — are
// initialization data, as the original relied on their pre-loop
// contents.
func kernel18() *Kernel {
	const s, t = 0.002, 0.004
	return &Kernel{
		ID: 18, Key: "k18", Name: "2-d explicit hydrodynamics fragment", Class: CD,
		// At n=100 the per-PE page working set crosses the 256-element
		// cache capacity within the paper's 4..32-PE sweep, which is
		// where Figure 3's declining curve comes from; larger n just
		// shifts the knee to higher PE counts.
		DefaultN: 100, MinN: 3,
		Notes: "in-place phase-2/3 updates redirected to ZU2/ZV2/ZR2/ZZ2 (SA conversion)",
		Arrays: func(n int) []Spec {
			d := []int{n + 2, 8}
			cols := 8
			return []Spec{
				{Name: "ZP", Dims: d, Init: InitAll(inA)},
				{Name: "ZQ", Dims: d, Init: InitAll(inA)},
				{Name: "ZR", Dims: d, Init: InitAll(inB)},
				{Name: "ZM", Dims: d, Init: InitAll(inB)},
				{Name: "ZZ", Dims: d, Init: InitAll(inA)},
				{Name: "ZU", Dims: d, Init: InitAll(inA)},
				{Name: "ZV", Dims: d, Init: InitAll(inA)},
				// ZA: column j=1 is boundary input; j>=2 produced.
				{Name: "ZA", Dims: d, Init: func(lin int) (float64, bool) {
					if lin/cols == 1 {
						return inA(lin), true
					}
					return 0, false
				}},
				// ZB: row k=7 is boundary input; k in 2..6 produced.
				{Name: "ZB", Dims: d, Init: func(lin int) (float64, bool) {
					if lin%cols == 7 {
						return inA(lin), true
					}
					return 0, false
				}},
				{Name: "ZU2", Dims: d},
				{Name: "ZV2", Dims: d},
				{Name: "ZR2", Dims: d},
				{Name: "ZZ2", Dims: d},
			}
		},
		Run: func(c *Ctx, n int) {
			zp, zq, zr, zm, zz := c.A("ZP"), c.A("ZQ"), c.A("ZR"), c.A("ZM"), c.A("ZZ")
			zu, zv := c.A("ZU"), c.A("ZV")
			za, zb := c.A("ZA"), c.A("ZB")
			zu2, zv2, zr2, zz2 := c.A("ZU2"), c.A("ZV2"), c.A("ZR2"), c.A("ZZ2")
			for k := 2; k <= 6; k++ {
				for j := 2; j <= n; j++ {
					j, k := j, k
					za.Set(func() float64 {
						return (zp.Get(j-1, k+1) + zq.Get(j-1, k+1) - zp.Get(j-1, k) - zq.Get(j-1, k)) *
							(zr.Get(j, k) + zr.Get(j-1, k)) /
							(zm.Get(j-1, k) + zm.Get(j-1, k+1))
					}, j, k)
					zb.Set(func() float64 {
						return (zp.Get(j-1, k) + zq.Get(j-1, k) - zp.Get(j, k) - zq.Get(j, k)) *
							(zr.Get(j, k) + zr.Get(j, k-1)) /
							(zm.Get(j, k) + zm.Get(j-1, k))
					}, j, k)
				}
			}
			for k := 2; k <= 6; k++ {
				for j := 2; j <= n; j++ {
					j, k := j, k
					zu2.Set(func() float64 {
						return zu.Get(j, k) + s*(za.Get(j, k)*(zz.Get(j, k)-zz.Get(j+1, k))-
							za.Get(j-1, k)*(zz.Get(j, k)-zz.Get(j-1, k))-
							zb.Get(j, k)*(zz.Get(j, k)-zz.Get(j, k-1))+
							zb.Get(j, k+1)*(zz.Get(j, k)-zz.Get(j, k+1)))
					}, j, k)
					zv2.Set(func() float64 {
						return zv.Get(j, k) + s*(za.Get(j, k)*(zr.Get(j, k)-zr.Get(j+1, k))-
							za.Get(j-1, k)*(zr.Get(j, k)-zr.Get(j-1, k))-
							zb.Get(j, k)*(zr.Get(j, k)-zr.Get(j, k-1))+
							zb.Get(j, k+1)*(zr.Get(j, k)-zr.Get(j, k+1)))
					}, j, k)
				}
			}
			for k := 2; k <= 6; k++ {
				for j := 2; j <= n; j++ {
					j, k := j, k
					zr2.Set(func() float64 { return zr.Get(j, k) + t*zu2.Get(j, k) }, j, k)
					zz2.Set(func() float64 { return zz.Get(j, k) + t*zv2.Get(j, k) }, j, k)
				}
			}
		},
		Outputs: []string{"ZA", "ZB", "ZU2", "ZV2", "ZR2", "ZZ2"},
	}
}

// kernel18frag is the paper's "Explicit Hydrodynamics Fragment" skewed
// exemplar: one row of the kernel-18 phase-1 stencil flattened to 1-D,
// leaving a pure skew-1 pattern.
func kernel18frag() *Kernel {
	return &Kernel{
		ID: 0, Key: "k18frag", Name: "explicit hydrodynamics fragment", Class: SD,
		DefaultN: 1000, MinN: 2,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "ZA", Dims: []int{n + 1}},
				{Name: "ZP", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "ZQ", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "ZR", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "ZM", Dims: []int{n + 1}, Init: InitAll(inB)},
			}
		},
		Run: func(c *Ctx, n int) {
			za, zp, zq, zr, zm := c.A("ZA"), c.A("ZP"), c.A("ZQ"), c.A("ZR"), c.A("ZM")
			for j := 2; j <= n; j++ {
				j := j
				za.Set(func() float64 {
					return (zp.Get(j-1) + zq.Get(j-1)) * (zr.Get(j) + zr.Get(j-1)) /
						(zm.Get(j) + zm.Get(j-1))
				}, j)
			}
		},
		Outputs: []string{"ZA"},
	}
}

// kernel19 is General Linear Recurrence Equations (second form): two
// scalar-carried sweeps, ascending then descending. The carried scalar
// STB5 becomes the arrays S1/S2; the doubly-written B5 becomes B5 and
// B5R.
func kernel19() *Kernel {
	return &Kernel{
		ID: 19, Key: "k19", Name: "general linear recurrence equations (two sweeps)", Class: ClassUnknown,
		DefaultN: 1000, MinN: 2,
		Notes: "carried scalar STB5 expanded into S1 (ascending) and S2 (descending); second B5 sweep writes B5R (SA conversion)",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "SA", Dims: []int{n + 2}, Init: InitAll(inA)},
				{Name: "SB", Dims: []int{n + 2}, Init: InitAll(inSmall)},
				{Name: "B5", Dims: []int{n + 1}},
				{Name: "B5R", Dims: []int{n + 1}},
				{Name: "S1", Dims: []int{n + 1}, Init: InitRange(0, 1, inA)},
				{Name: "S2", Dims: []int{n + 2}, Init: InitRange(n+1, n+2, inA)},
			}
		},
		Run: func(c *Ctx, n int) {
			sa, sb := c.A("SA"), c.A("SB")
			b5, b5r := c.A("B5"), c.A("B5R")
			s1, s2 := c.A("S1"), c.A("S2")
			for k := 1; k <= n; k++ {
				k := k
				b5.Set(func() float64 { return sa.Get(k) + s1.Get(k-1)*sb.Get(k) }, k)
				s1.Set(func() float64 { return b5.Get(k) - s1.Get(k-1) }, k)
			}
			for i := 1; i <= n; i++ {
				k := n - i + 1
				b5r.Set(func() float64 { return sa.Get(k) + s2.Get(k+1)*sb.Get(k) }, k)
				s2.Set(func() float64 { return b5r.Get(k) - s2.Get(k+1) }, k)
			}
		},
		Outputs: []string{"B5", "B5R"},
	}
}

// kernel20 is Discrete Ordinates Transport: a conditional recurrence
// where XX(k+1) is produced from XX(k) — single assignment as written,
// with XX(1) as initialization data.
func kernel20() *Kernel {
	const dk, sLo, tHi = 0.2, 0.1, 5.0
	return &Kernel{
		ID: 20, Key: "k20", Name: "discrete ordinates transport", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "G", Dims: []int{n + 1}, Init: InitAll(inSmall)},
				{Name: "U", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "V", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "W", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "Y", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "Z", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "VX", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "X", Dims: []int{n + 1}},
				{Name: "XX", Dims: []int{n + 2}, Init: InitRange(1, 2, inA)},
			}
		},
		Run: func(c *Ctx, n int) {
			g, u, v, w := c.A("G"), c.A("U"), c.A("V"), c.A("W")
			y, z, vx := c.A("Y"), c.A("Z"), c.A("VX")
			x, xx := c.A("X"), c.A("XX")
			dn := func(k int) float64 {
				di := y.Get(k) - g.Get(k)/(xx.Get(k)+dk)
				if di != 0 {
					return clampF(z.Get(k)/di, sLo, tHi)
				}
				return 0.2
			}
			for k := 1; k <= n; k++ {
				k := k
				x.Set(func() float64 {
					d := dn(k)
					return ((w.Get(k)+v.Get(k)*d)*xx.Get(k) + u.Get(k)) /
						(vx.Get(k) + v.Get(k)*d)
				}, k)
				xx.Set(func() float64 {
					d := dn(k)
					return (x.Get(k)-xx.Get(k))*d + xx.Get(k)
				}, k+1)
			}
		},
		Outputs: []string{"X", "XX"},
	}
}

// kernel21 is Matrix * Matrix Product: the original accumulates into
// PX over the outer k loop; the single-assignment form computes each
// output element's full dot product in its producer:
//
//	OUT(i,j) = PX0(i,j) + sum_{k=1..25} VY(i,k)*CX(k,j)
//
// The CX(k,j) column walk strides a full row of CX per step.
func kernel21() *Kernel {
	const inner = 25
	return &Kernel{
		ID: 21, Key: "k21", Name: "matrix * matrix product", Class: ClassUnknown,
		DefaultN: 300, MinN: 1,
		Notes: "k-outer accumulation folded into per-element dot products (SA conversion)",
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "PX0", Dims: []int{inner + 1, n + 1}, Init: InitAll(inA)},
				{Name: "VY", Dims: []int{inner + 1, inner + 1}, Init: InitAll(inSmall)},
				{Name: "CX", Dims: []int{inner + 1, n + 1}, Init: InitAll(inB)},
				{Name: "OUT", Dims: []int{inner + 1, n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			px0, vy, cx, out := c.A("PX0"), c.A("VY"), c.A("CX"), c.A("OUT")
			for i := 1; i <= inner; i++ {
				for j := 1; j <= n; j++ {
					i, j := i, j
					out.Set(func() float64 {
						s := px0.Get(i, j)
						for k := 1; k <= inner; k++ {
							s += vy.Get(i, k) * cx.Get(k, j)
						}
						return s
					}, i, j)
				}
			}
		},
		Outputs: []string{"OUT"},
	}
}

// kernel22 is the Planckian Distribution: two matched-index statements
// per iteration, the second reading the first's output at the same
// index.
func kernel22() *Kernel {
	return &Kernel{
		ID: 22, Key: "k22", Name: "planckian distribution", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "U", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "V", Dims: []int{n + 1}, Init: InitAll(inB)},
				{Name: "X", Dims: []int{n + 1}, Init: InitAll(inA)},
				{Name: "Y", Dims: []int{n + 1}},
				{Name: "W", Dims: []int{n + 1}},
			}
		},
		Run: func(c *Ctx, n int) {
			u, v, x, y, w := c.A("U"), c.A("V"), c.A("X"), c.A("Y"), c.A("W")
			for k := 1; k <= n; k++ {
				k := k
				y.Set(func() float64 { return u.Get(k) / v.Get(k) }, k)
				w.Set(func() float64 { return x.Get(k) / (expm1Safe(y.Get(k))) }, k)
			}
		},
		Outputs: []string{"Y", "W"},
	}
}

// kernel23 is 2-D Implicit Hydrodynamics: the original is a
// Gauss-Seidel sweep updating ZA in place; the single-assignment form
// is the Jacobi step producing ZA2 from the previous iterate.
func kernel23() *Kernel {
	return &Kernel{
		ID: 23, Key: "k23", Name: "2-d implicit hydrodynamics fragment", Class: ClassUnknown,
		DefaultN: 400, MinN: 3,
		Notes: "Gauss-Seidel in-place update converted to a Jacobi step into ZA2 (SA conversion)",
		Arrays: func(n int) []Spec {
			d := []int{n + 2, 8}
			return []Spec{
				{Name: "ZA", Dims: d, Init: InitAll(inA)},
				{Name: "ZB", Dims: d, Init: InitAll(inSmall)},
				{Name: "ZR", Dims: d, Init: InitAll(inSmall)},
				{Name: "ZU", Dims: d, Init: InitAll(inSmall)},
				{Name: "ZV", Dims: d, Init: InitAll(inSmall)},
				{Name: "ZZ", Dims: d, Init: InitAll(inA)},
				{Name: "ZA2", Dims: d},
			}
		},
		Run: func(c *Ctx, n int) {
			za, zb, zr, zu, zv, zz := c.A("ZA"), c.A("ZB"), c.A("ZR"), c.A("ZU"), c.A("ZV"), c.A("ZZ")
			za2 := c.A("ZA2")
			for j := 2; j <= 6; j++ {
				for k := 2; k <= n; k++ {
					j, k := j, k
					za2.Set(func() float64 {
						qa := za.Get(k, j+1)*zr.Get(k, j) + za.Get(k, j-1)*zb.Get(k, j) +
							za.Get(k+1, j)*zu.Get(k, j) + za.Get(k-1, j)*zv.Get(k, j) +
							zz.Get(k, j)
						return za.Get(k, j) + 0.175*(qa-za.Get(k, j))
					}, k, j)
				}
			}
		},
		Outputs: []string{"ZA2"},
	}
}

// kernel24 is Location of First Minimum: a matched scan collected by
// the host processor (§9 vector-to-scalar mechanism).
func kernel24() *Kernel {
	return &Kernel{
		ID: 24, Key: "k24", Name: "location of first minimum in array", Class: ClassUnknown,
		DefaultN: 1000, MinN: 1,
		Arrays: func(n int) []Spec {
			return []Spec{
				{Name: "X", Dims: []int{n + 1}, Init: InitAll(func(i int) float64 {
					return inA(i*3 + 1)
				})},
				{Name: "MOUT", Dims: []int{1}},
			}
		},
		Run: func(c *Ctx, n int) {
			x, mout := c.A("X"), c.A("MOUT")
			_, at := c.ReduceMin(x, 1, n+1, func(k int) float64 { return x.Get(k) })
			mout.Set(func() float64 { return float64(at) }, 0)
		},
		Outputs: []string{"MOUT"},
	}
}
