package loops

import (
	"fmt"

	"repro/internal/samem"
)

// SeqEngine is the sequential reference back end: a single PE, dense
// storage, full single-assignment validation. It defines the ground
// truth values that the counting simulator and the concurrent machine
// must reproduce.
type SeqEngine struct {
	vals     [][]float64
	defined  [][]bool
	trackers []*samem.Tracker
	inAssign bool
	err      error
}

// NewSeqEngine allocates storage for the given specs and applies their
// initialization data.
func NewSeqEngine(specs []Spec) (*SeqEngine, *Ctx, error) {
	e := &SeqEngine{}
	ctx, err := Bind(e, specs)
	if err != nil {
		return nil, nil, err
	}
	for i, a := range ctx.Arrays() {
		n := a.Len()
		e.vals = append(e.vals, make([]float64, n))
		e.defined = append(e.defined, make([]bool, n))
		e.trackers = append(e.trackers, samem.NewTracker(a.Name, n))
		if init := specs[i].Init; init != nil {
			for j := 0; j < n; j++ {
				if v, ok := init(j); ok {
					e.vals[i][j] = v
					e.defined[i][j] = true
					// Initialization marks the tracker too: initialized
					// cells may not be rewritten (§3).
					if err := e.trackers[i].Mark(j); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	return e, ctx, nil
}

// Err returns the first single-assignment or read-before-write violation
// encountered, or nil.
func (e *SeqEngine) Err() error { return e.err }

func (e *SeqEngine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// BeginAssign implements Engine. The sequential engine owns everything,
// so every right-hand side is evaluated.
func (e *SeqEngine) BeginAssign(a *Arr, lin int) bool {
	if e.inAssign {
		e.fail(fmt.Errorf("loops: nested assignment on %s[%d]", a.Name, lin))
		return false
	}
	e.inAssign = true
	return true
}

// FinishAssign implements Engine.
func (e *SeqEngine) FinishAssign(a *Arr, lin int, v float64) {
	e.inAssign = false
	if err := e.trackers[a.ID].Mark(lin); err != nil {
		e.fail(err)
		return
	}
	e.vals[a.ID][lin] = v
	e.defined[a.ID][lin] = true
}

// Read implements Engine, flagging reads of never-written cells: in the
// paper's machine such a read would block forever (a deadlocked deferred
// read), so in the sequential reference it is an error.
func (e *SeqEngine) Read(a *Arr, lin int) float64 {
	if !e.defined[a.ID][lin] {
		e.fail(fmt.Errorf("loops: read of undefined %s[%d]", a.Name, lin))
		return 0
	}
	return e.vals[a.ID][lin]
}

// Reduce implements Engine by direct evaluation.
func (e *SeqEngine) Reduce(op Op, driver *Arr, lo, hi int, term func(i int) float64) (float64, int) {
	return reduceSerial(op, lo, hi, term)
}

// reduceSerial evaluates a reduction over [lo, hi) in index order; it is
// shared by back ends that evaluate terms locally.
func reduceSerial(op Op, lo, hi int, term func(i int) float64) (float64, int) {
	switch op {
	case OpSum:
		s := 0.0
		for i := lo; i < hi; i++ {
			s += term(i)
		}
		return s, -1
	case OpMin:
		best, at := 0.0, -1
		for i := lo; i < hi; i++ {
			v := term(i)
			if at == -1 || v < best {
				best, at = v, i
			}
		}
		return best, at
	case OpMax:
		best, at := 0.0, -1
		for i := lo; i < hi; i++ {
			v := term(i)
			if at == -1 || v > best {
				best, at = v, i
			}
		}
		return best, at
	default:
		panic(fmt.Sprintf("loops: unknown reduce op %d", int(op)))
	}
}

// CombineReduce merges two partial reduction results (value/index
// pairs), preferring the earlier index on ties. Engines that distribute
// reductions across PEs use it to fold partials at the host.
func CombineReduce(op Op, v1 float64, i1 int, v2 float64, i2 int) (float64, int) {
	switch op {
	case OpSum:
		return v1 + v2, -1
	case OpMin:
		if i1 == -1 {
			return v2, i2
		}
		if i2 == -1 {
			return v1, i1
		}
		if v2 < v1 || (v2 == v1 && i2 < i1) {
			return v2, i2
		}
		return v1, i1
	case OpMax:
		if i1 == -1 {
			return v2, i2
		}
		if i2 == -1 {
			return v1, i1
		}
		if v2 > v1 || (v2 == v1 && i2 < i1) {
			return v2, i2
		}
		return v1, i1
	default:
		panic(fmt.Sprintf("loops: unknown reduce op %d", int(op)))
	}
}

// ArraySum summarizes one array's final state.
type ArraySum struct {
	Name    string
	Sum     float64 // sum of defined cells
	Defined int     // number of defined cells
	Elems   int     // total cells
}

// SeqResult is the outcome of a reference run.
type SeqResult struct {
	Checksums []ArraySum           // one per output array, in Outputs order
	Values    map[string][]float64 // dense final values per output array
	DefinedOf map[string][]bool    // defined bits per output array
}

// RunSeq executes kernel k at problem size n on the sequential reference
// engine and returns output checksums and values. Any single-assignment
// violation or read-before-write in the kernel is reported as an error.
func RunSeq(k *Kernel, n int) (*SeqResult, error) {
	n = k.ClampN(n)
	eng, ctx, err := NewSeqEngine(k.Arrays(n))
	if err != nil {
		return nil, fmt.Errorf("loops: %s: %w", k.Key, err)
	}
	k.Run(ctx, n)
	if eng.Err() != nil {
		return nil, fmt.Errorf("loops: %s: %w", k.Key, eng.Err())
	}
	res := &SeqResult{
		Values:    make(map[string][]float64),
		DefinedOf: make(map[string][]bool),
	}
	for _, name := range k.Outputs {
		a := ctx.A(name)
		cs := ArraySum{Name: name, Elems: a.Len()}
		for j := 0; j < a.Len(); j++ {
			if eng.defined[a.ID][j] {
				cs.Sum += eng.vals[a.ID][j]
				cs.Defined++
			}
		}
		res.Checksums = append(res.Checksums, cs)
		vals := make([]float64, a.Len())
		def := make([]bool, a.Len())
		copy(vals, eng.vals[a.ID])
		copy(def, eng.defined[a.ID])
		res.Values[name] = vals
		res.DefinedOf[name] = def
	}
	return res, nil
}
