// Package loops defines the workload layer of the reproduction: the
// Livermore Loops expressed once, in single-assignment form, against an
// abstract execution engine.
//
// A Kernel declares its arrays (with initialization data, §3: "prior to
// execution, an array is either undefined or filled with initialization
// data") and a Run body. The body performs assignments through Arr.Set
// with the right-hand side as a closure; an engine that implements
// owner-computes screening (§2/§3: "the right hand side of the
// assignment is evaluated only for a given PE's subranges") simply skips
// the closure when the executing PE does not own the target element.
// Reads inside the closure are attributed to the owning PE and
// classified local / cached / remote.
//
// Three engines implement this interface:
//
//   - the sequential reference engine in this package (ground truth for
//     values, single-assignment validation);
//   - internal/sim, the access-counting simulator replicating the
//     paper's measurement methodology;
//   - internal/machine, a concurrent engine with one goroutine per PE
//     and real message passing.
package loops

import (
	"fmt"

	"repro/internal/partition"
)

// Op selects a reduction operator for Engine.Reduce.
type Op int

// Reduction operators. Min and Max track the first index attaining the
// extremum, for the argmin-style kernels (K24).
const (
	OpSum Op = iota
	OpMin
	OpMax
)

// String returns the operator name.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Engine is the contract between kernels and execution back ends.
// Kernels never call it directly; they go through Arr and Ctx.
type Engine interface {
	// BeginAssign announces an assignment targeting linear element lin of
	// array a. It returns true if the right-hand side should be evaluated
	// in this context (owner-computes screening), false to skip.
	BeginAssign(a *Arr, lin int) bool
	// FinishAssign delivers the evaluated right-hand side value for the
	// assignment opened by the matching BeginAssign.
	FinishAssign(a *Arr, lin int, v float64)
	// Read returns the value of linear element lin of array a. Inside an
	// assignment the read is attributed to the assignment's owner;
	// outside, it is a control read executed by every PE.
	Read(a *Arr, lin int) float64
	// Reduce models the host-processor vector-to-scalar collection (§9):
	// each PE evaluates term(i) for the iterations whose driver element i
	// it owns, partial results travel to the host PE, and the combined
	// scalar is broadcast back. It returns the combined value and, for
	// OpMin/OpMax, the first index attaining it (-1 for OpSum).
	Reduce(op Op, driver *Arr, lo, hi int, term func(i int) float64) (float64, int)
}

// Spec declares one array of a kernel.
type Spec struct {
	Name string
	Dims []int
	// Init supplies initialization data: for linear index i it returns
	// the initial value and whether the cell is pre-defined. A nil Init
	// means the array starts fully undefined (it is an output).
	Init func(i int) (float64, bool)
}

// InitAll returns an Init that defines every cell with f.
func InitAll(f func(i int) float64) func(int) (float64, bool) {
	return func(i int) (float64, bool) { return f(i), true }
}

// InitRange returns an Init defining cells in [lo, hi) with f and
// leaving the rest undefined.
func InitRange(lo, hi int, f func(i int) float64) func(int) (float64, bool) {
	return func(i int) (float64, bool) {
		if i >= lo && i < hi {
			return f(i), true
		}
		return 0, false
	}
}

// Arr is a kernel's handle to one array, bound to an engine.
type Arr struct {
	ID   int
	Name string
	Dims partition.Dims
	eng  Engine
}

// Lin converts a multi-index to the array's row-major linear offset.
func (a *Arr) Lin(idx ...int) int { return a.Dims.Linear(idx...) }

// Len returns the total number of elements.
func (a *Arr) Len() int { return a.Dims.Elems() }

// Set assigns element idx the value of rhs under single assignment.
// rhs is only evaluated when the executing context owns the element.
func (a *Arr) Set(rhs func() float64, idx ...int) {
	lin := a.Dims.Linear(idx...)
	if !a.eng.BeginAssign(a, lin) {
		return
	}
	a.eng.FinishAssign(a, lin, rhs())
}

// Get reads element idx. Inside a Set closure the read is charged to the
// assignment's owning PE; outside it is a control read performed by all
// PEs (the loop body is replicated on every PE, §2).
func (a *Arr) Get(idx ...int) float64 {
	return a.eng.Read(a, a.Dims.Linear(idx...))
}

// GetLin reads by linear offset.
func (a *Arr) GetLin(lin int) float64 { return a.eng.Read(a, lin) }

// SetLin assigns by linear offset.
func (a *Arr) SetLin(lin int, rhs func() float64) {
	if !a.eng.BeginAssign(a, lin) {
		return
	}
	a.eng.FinishAssign(a, lin, rhs())
}

// Ctx gives a kernel body access to its bound arrays and to reductions.
type Ctx struct {
	eng  Engine
	arrs map[string]*Arr
	list []*Arr
}

// Bind instantiates the kernel's array specs on an engine and returns
// the execution context. Engines call this after allocating storage.
func Bind(eng Engine, specs []Spec) (*Ctx, error) {
	c := &Ctx{eng: eng, arrs: make(map[string]*Arr, len(specs))}
	for i, s := range specs {
		dims, err := partition.NewDims(s.Dims...)
		if err != nil {
			return nil, fmt.Errorf("loops: array %q: %w", s.Name, err)
		}
		if _, dup := c.arrs[s.Name]; dup {
			return nil, fmt.Errorf("loops: duplicate array name %q", s.Name)
		}
		a := &Arr{ID: i, Name: s.Name, Dims: dims, eng: eng}
		c.arrs[s.Name] = a
		c.list = append(c.list, a)
	}
	return c, nil
}

// A returns the handle for a declared array, panicking on unknown names
// (a kernel referencing an undeclared array is a programming error).
func (c *Ctx) A(name string) *Arr {
	a, ok := c.arrs[name]
	if !ok {
		panic(fmt.Sprintf("loops: kernel references undeclared array %q", name))
	}
	return a
}

// Arrays returns all handles in declaration order.
func (c *Ctx) Arrays() []*Arr { return c.list }

// ReduceSum sums term(i) for i in [lo, hi), attributing each term to the
// owner of driver[i] and collecting through the host processor.
func (c *Ctx) ReduceSum(driver *Arr, lo, hi int, term func(i int) float64) float64 {
	v, _ := c.eng.Reduce(OpSum, driver, lo, hi, term)
	return v
}

// ReduceMin returns the minimum of term(i) over [lo, hi) and the first
// index attaining it.
func (c *Ctx) ReduceMin(driver *Arr, lo, hi int, term func(i int) float64) (float64, int) {
	return c.eng.Reduce(OpMin, driver, lo, hi, term)
}

// ReduceMax returns the maximum of term(i) over [lo, hi) and the first
// index attaining it.
func (c *Ctx) ReduceMax(driver *Arr, lo, hi int, term func(i int) float64) (float64, int) {
	return c.eng.Reduce(OpMax, driver, lo, hi, term)
}

// Class is the paper's access-distribution taxonomy (§7.1).
type Class int

// Access-distribution classes.
const (
	ClassUnknown Class = iota
	MD                 // matched distribution: all indices equal, 0% remote
	SD                 // skewed distribution: constant offsets
	CD                 // cyclic distribution: fixed page set visited cyclically
	RD                 // random distribution: cache-resistant accesses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case MD:
		return "MD"
	case SD:
		return "SD"
	case CD:
		return "CD"
	case RD:
		return "RD"
	case ClassUnknown:
		return "?"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Kernel is one Livermore Loop in single-assignment form.
type Kernel struct {
	ID       int    // Livermore kernel number (0 for fragments)
	Key      string // short stable identifier, e.g. "k1"
	Name     string // paper's loop name
	Class    Class  // paper-assigned class; ClassUnknown if the paper did not classify it
	DefaultN int    // canonical problem size
	MinN     int    // smallest meaningful problem size
	MaxN     int    // largest admitted problem size; 0 means unbounded
	Notes    string // fidelity notes: SA conversions, simplifications
	// Arrays returns the array declarations for problem size n.
	Arrays func(n int) []Spec
	// Run executes the kernel body for problem size n.
	Run func(c *Ctx, n int)
	// Outputs names the arrays whose final contents define the kernel's
	// result (for checksumming and engine cross-validation).
	Outputs []string
}

// ClampN returns n clamped to the kernel's admitted size range,
// defaulting to DefaultN when n <= 0. The high clamp only applies when
// MaxN is set (compiled kernels carry a resource-derived ceiling;
// built-ins leave it 0 = unbounded).
func (k *Kernel) ClampN(n int) int {
	if n <= 0 {
		n = k.DefaultN
	}
	if n < k.MinN {
		n = k.MinN
	}
	if k.MaxN > 0 && n > k.MaxN {
		n = k.MaxN
	}
	return n
}
