package serve

// compile.go — POST /v1/compile: the HTTP face of the kernel registry
// (internal/kernelreg). Source goes in; SA diagnostics and a
// content-addressed kernel id come out, immediately usable in
// /v1/classify and /v1/sweep. The handler follows the same production
// path as the other POST routes — traced, admission-controlled,
// structured errors, stage histogram (serve.stage.compile_us) — but
// the pipeline itself (limits, deadline, verification, quotas) lives
// in the registry so the router and cmd/saconv share it byte-for-byte.

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/obs/trace"
)

// writeStructured writes an error body carrying a structured code (and
// diagnostics, for SA rejections). Falls back to the plain body for
// errors that are not *kernelreg.Error, so pre-existing 400 bytes are
// unchanged.
func writeStructured(w http.ResponseWriter, fallbackStatus int, err error) {
	var ke *kernelreg.Error
	if !errors.As(err, &ke) {
		writeError(w, fallbackStatus, err)
		return
	}
	if ke.Status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	body, _ := json.Marshal(ErrorBody{Error: ke.Msg, Code: ke.Code, Diagnostics: ke.Diagnostics})
	writeJSON(w, ke.Status, body)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.cCompile.Inc()
	start := time.Now()
	defer func() { s.hCompileReq.Observe(time.Since(start).Microseconds()) }()
	tr := trace.FromContext(r.Context())

	// Bound the body before decoding: JSON escaping can inflate the
	// source (\n, \"), so allow 2x the registry's source limit plus
	// envelope headroom; the registry still enforces the exact limit on
	// the decoded source.
	maxBody := int64(2*s.eng.Registry().Limits().MaxSourceBytes + 4096)
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)

	sp := tr.Start("decode")
	var req kernelreg.CompileRequest
	err := decode(r, &req)
	s.eng.hDecode.Observe(sp.End().Microseconds())
	if err != nil {
		s.cBad.Inc()
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}

	asp := tr.Start("admit_wait")
	release, aerr := s.eng.admit()
	s.eng.hAdmit.Observe(asp.End().Microseconds())
	if aerr != nil {
		rejectErr(w, aerr)
		return
	}
	defer release()

	csp := tr.Start("compile")
	resp, cerr := s.eng.Registry().Compile(req)
	s.eng.hCompile.Observe(csp.End().Microseconds())
	if cerr != nil {
		s.cBad.Inc()
		writeStructured(w, http.StatusBadRequest, cerr)
		return
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.finishErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// CompiledKernelsOut is the body of GET /v1/kernels?compiled=1: the
// registry-resident compiled kernels, newest first, plus the id scheme
// their ids follow.
type CompiledKernelsOut struct {
	// IDScheme documents how compiled ids are formed.
	IDScheme string           `json:"id_scheme"`
	Count    int              `json:"count"`
	Kernels  []kernelreg.Info `json:"kernels"`
}

// IDSchemeDoc is the one-line id-scheme documentation served in
// compiled-kernel listings.
const IDSchemeDoc = `"u:" + hex SHA-256 of the canonical IR rendering (identical programs share one id)`

func (s *Server) handleCompiledKernels(w http.ResponseWriter) {
	infos := s.eng.Registry().List()
	if infos == nil {
		infos = []kernelreg.Info{}
	}
	body, err := json.Marshal(&CompiledKernelsOut{
		IDScheme: IDSchemeDoc,
		Count:    len(infos),
		Kernels:  infos,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
