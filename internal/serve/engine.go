package serve

// engine.go — the execution core of the service. A request becomes one
// or more canonical points (api.go); each point is answered from the
// bounded LRU result cache, deduplicated against identical in-flight
// points (singleflight), and otherwise executed on a shared worker
// pool whose workers reuse a sim.Scratch and a refstream.Replayer, with
// reference-stream captures shared across requests through a
// refstream.Cache keyed by (kernel, N). The result is the service-level
// form of the sweep planner's execute-once/classify-many guarantee: a
// burst of a million identical requests costs one capture, one replay
// and N-1 cache hits.
//
// Every stage of that path is individually observable: the engine
// feeds the serve.stage.* histograms (admission wait, cache lookup,
// singleflight wait, capture, replay/direct execution, encode) and,
// when the request carries an obs/trace.Trace on its context, records
// the same stages as parent/child spans. Instrumentation observes and
// never participates — response bodies are byte-identical with and
// without a trace attached (pinned by tests).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/loops"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// Observability names recorded by the service. Counters/gauges are
// registered on the engine's registry; see docs/SERVING.md for the
// full signal list and docs/OBSERVABILITY.md for the histogram bucket
// families.
const (
	MetricClassifyRequests = "serve.classify_requests"
	MetricSweepRequests    = "serve.sweep_requests"
	MetricCompileRequests  = "serve.compile_requests"
	MetricRejected         = "serve.rejected"          // admissions refused → 429
	MetricBadRequests      = "serve.bad_requests"      // validation failures → 400
	MetricDeadlineExceeded = "serve.deadline_exceeded" // → 504

	MetricCacheHits   = "serve.cache_hits"   // points answered from the result cache
	MetricCacheMisses = "serve.cache_misses" // points that had to execute (or join a flight)
	MetricDedupWaits  = "serve.dedup_waits"  // points that joined an identical in-flight point

	MetricPointsExecuted = "serve.points_executed" // simulator/replayer executions
	MetricStreamCaptures = "serve.stream_captures" // reference-stream captures performed
	MetricStreamHits     = "serve.stream_hits"     // captures avoided by the stream cache

	MetricQueueDepth = "serve.queue_depth" // gauge: tasks queued for the worker pool
	MetricInflight   = "serve.inflight"    // gauge: admitted requests

	MetricClassifyLatencyUS = "serve.classify_latency_us" // histogram (obs.MicrosBuckets)
	MetricSweepLatencyUS    = "serve.sweep_latency_us"    // histogram (obs.MicrosBuckets)
	MetricCompileLatencyUS  = "serve.compile_latency_us"  // histogram (obs.MicrosBuckets)

	// MetricBuildInfo is the gauge-style build marker: constant 1 while
	// the process serves; the version/revision details ride GET /healthz.
	MetricBuildInfo = "build.info"
)

// Per-stage latency histograms (all obs.MicrosBuckets): the request
// path decomposed, feeding real server-side p50/p99/p999 per stage.
// Stage span names in a trace are the metric's last segment without
// the unit suffix (e.g. "cache_lookup").
const (
	MetricStageDecodeUS      = "serve.stage.decode_us"       // body decode + canonicalization
	MetricStageAdmitWaitUS   = "serve.stage.admit_wait_us"   // admission-slot acquisition
	MetricStageCacheLookupUS = "serve.stage.cache_lookup_us" // result-cache lookup (per classify, per sweep grid)
	MetricStageFlightWaitUS  = "serve.stage.flight_wait_us"  // enqueue + singleflight wait until resolution
	MetricStageCaptureUS     = "serve.stage.capture_us"      // reference-stream fetch/capture (stream-cache hit or miss)
	MetricStageReplayUS      = "serve.stage.replay_us"       // replayer Run/RunBatch pass
	MetricStageDirectUS      = "serve.stage.direct_us"       // direct simulator run (partial-fill ablation)
	MetricStageEncodeUS      = "serve.stage.encode_us"       // result → canonical JSON body
	MetricStageCompileUS     = "serve.stage.compile_us"      // registry compile pipeline (parse → verify → register)
)

// Errors surfaced by Engine.Do and Engine admission; the HTTP layer
// maps them onto status codes.
var (
	// ErrOverloaded reports that the admission queue is full (HTTP 429).
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed reports a request against a closed engine (HTTP 503).
	ErrClosed = errors.New("serve: engine closed")
)

// Options configures a Server and its Engine. The zero value serves
// with defaults sized from GOMAXPROCS.
type Options struct {
	// Workers bounds the execution pool; <= 0 means GOMAXPROCS.
	Workers int
	// MaxInflight bounds admitted (in-flight) requests; a request beyond
	// the bound is rejected with 429 rather than queued unboundedly.
	// <= 0 means 4×Workers.
	MaxInflight int
	// ResultCacheEntries bounds the LRU of encoded point bodies
	// (<= 0 means 4096).
	ResultCacheEntries int
	// StreamCacheEntries bounds the shared reference-stream cache
	// (<= 0 means refstream.DefaultCacheEntries).
	StreamCacheEntries int
	// MaxN / MaxNPE / MaxPageSize / MaxCacheElems / MaxSweepPoints bound
	// what one request may ask for (<= 0 selects 1<<20, 1024, 1<<20,
	// 1<<24 and 4096 respectively).
	MaxN           int
	MaxNPE         int
	MaxPageSize    int
	MaxCacheElems  int
	MaxSweepPoints int
	// DefaultDeadline is the per-request deadline when the request does
	// not set deadline_ms. <= 0 derives it per request from the
	// machine's deadlock-watchdog rule (machine.DefaultDeadline over the
	// request's largest NPE and problem size) — the same scaling
	// Config.DeadlockTimeout uses for its zero value.
	DefaultDeadline time.Duration
	// Metrics receives the service's signals; nil falls back to
	// obs.Default() (disabled unless a front end enabled it).
	Metrics *obs.Registry
	// AccessLog receives one structured JSON line per /v1/classify and
	// /v1/sweep request (request ID, route, status, cache behavior,
	// per-stage timings). nil selects os.Stderr; io.Discard disables.
	AccessLog io.Writer
	// TraceRingEntries bounds the recent-trace ring served at
	// GET /debug/trace (<= 0 selects trace.DefaultRingEntries).
	TraceRingEntries int
	// CaptureStore, when set, backs the in-memory stream cache with a
	// durable tier: cache misses consult it before executing a capture,
	// and fresh captures are persisted to it. Shards of a cluster point
	// this at a shared internal/refstream/store directory so a restart
	// warm-starts instead of re-executing.
	CaptureStore CaptureStore
	// Registry is the compiled-kernel registry behind POST /v1/compile
	// and "u:" kernel resolution. nil makes New construct one with
	// default kernelreg.Limits on Metrics; leave it nil unless sharing
	// a registry (the cluster router shares its local server's) or
	// customizing limits.
	Registry *kernelreg.Registry
}

// CaptureStore is the durable tier behind the engine's stream cache —
// implemented by internal/refstream/store, kept as an interface here
// so the serving layer never touches the filesystem itself.
// Implementations must be safe for concurrent use.
type CaptureStore interface {
	// Load returns the persisted stream for (k, n), if any.
	Load(k *loops.Kernel, n int) (*refstream.Stream, bool)
	// Save persists a freshly-executed capture. Best-effort: errors are
	// the implementation's to count and swallow.
	Save(st *refstream.Stream)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * o.Workers
	}
	if o.ResultCacheEntries <= 0 {
		o.ResultCacheEntries = 4096
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 20
	}
	if o.MaxNPE <= 0 {
		o.MaxNPE = 1024
	}
	if o.MaxPageSize <= 0 {
		o.MaxPageSize = 1 << 20
	}
	if o.MaxCacheElems <= 0 {
		o.MaxCacheElems = 1 << 24
	}
	if o.MaxSweepPoints <= 0 {
		o.MaxSweepPoints = 4096
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default()
	}
	return o
}

func (o Options) limits() limits {
	return limits{
		maxN:           o.MaxN,
		maxNPE:         o.MaxNPE,
		maxPageSize:    o.MaxPageSize,
		maxCacheElems:  o.MaxCacheElems,
		maxSweepPoints: o.MaxSweepPoints,
		reg:            o.Registry,
	}
}

// flight is one in-flight execution of a canonical point, shared by
// every concurrent request for that point. body/err are written by the
// resolving goroutine before done is closed; waiters read only after
// <-done.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

func (f *flight) resolve(body []byte, err error) {
	f.body, f.err = body, err
	close(f.done)
}

// task is one unit of worker-pool execution: a single point, or — when
// batch is set — a whole sweep batch classified in one stream pass.
// tr/parent carry the leader request's trace so worker-side stages
// (capture, replay, encode) appear as children of its singleflight
// wait; both are nil-safe.
type task struct {
	p      point
	key    string
	fl     *flight
	batch  *batchTask
	tr     *trace.Trace
	parent trace.SpanRef
}

// batchTask is a group of replay-eligible sweep points sharing one
// (kernel, problem size): the worker captures (or cache-fetches) the
// group's reference stream once and classifies every member in a
// single batch pass (refstream.Replayer.RunBatch). Members keep their
// individual flights and result-cache entries, so concurrent classify
// requests join and are answered byte-identically.
type batchTask struct {
	kernel *loops.Kernel
	n      int
	pts    []point
	keys   []string
	fls    []*flight
	tr     *trace.Trace
	parent trace.SpanRef
	// budget is the partition fan-out the batch pass may use
	// (refstream.Replayer.RunBatchN): an even share of the worker pool
	// across the requests admitted when the task was formed, so one big
	// sweep on an idle service spreads over every core but cannot
	// monopolize a busy one. Always >= 1.
	budget int
}

// Engine executes canonical points with caching, deduplication,
// admission control and graceful drain. Create one with newEngine (via
// serve.New); an Engine must be Closed to release its workers.
type Engine struct {
	opts Options
	reg  *obs.Registry

	cHits, cMisses, cDedup *obs.Counter
	cRejected, cPoints     *obs.Counter
	gQueue, gInflight      *obs.Gauge

	// Per-stage latency histograms; see the MetricStage* constants.
	hDecode, hAdmit, hCacheLookup, hFlightWait *obs.Histogram
	hCapture, hReplay, hDirect, hEncode        *obs.Histogram
	hCompile                                   *obs.Histogram

	results *lruCache
	streams *refstream.Cache
	tasks   chan *task

	stateMu  sync.Mutex
	closed   bool
	inflight int // admitted requests; the source of truth (gInflight mirrors it)
	flights  map[string]*flight
	reqWG    sync.WaitGroup // admitted requests
	workWG   sync.WaitGroup // pool workers
	closeMu  sync.Mutex     // serializes Close

	// execHook, when non-nil, runs on the worker goroutine immediately
	// before each point executes. Test seam for pinning workers.
	execHook func()
}

func newEngine(opts Options) *Engine {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if opts.Registry == nil {
		opts.Registry = kernelreg.New(kernelreg.Limits{}, reg)
	}
	e := &Engine{
		opts:         opts,
		reg:          reg,
		cHits:        reg.Counter(MetricCacheHits),
		cMisses:      reg.Counter(MetricCacheMisses),
		cDedup:       reg.Counter(MetricDedupWaits),
		cRejected:    reg.Counter(MetricRejected),
		cPoints:      reg.Counter(MetricPointsExecuted),
		gQueue:       reg.Gauge(MetricQueueDepth),
		gInflight:    reg.Gauge(MetricInflight),
		hDecode:      reg.Histogram(MetricStageDecodeUS, obs.MicrosBuckets),
		hAdmit:       reg.Histogram(MetricStageAdmitWaitUS, obs.MicrosBuckets),
		hCacheLookup: reg.Histogram(MetricStageCacheLookupUS, obs.MicrosBuckets),
		hFlightWait:  reg.Histogram(MetricStageFlightWaitUS, obs.MicrosBuckets),
		hCapture:     reg.Histogram(MetricStageCaptureUS, obs.MicrosBuckets),
		hReplay:      reg.Histogram(MetricStageReplayUS, obs.MicrosBuckets),
		hDirect:      reg.Histogram(MetricStageDirectUS, obs.MicrosBuckets),
		hEncode:      reg.Histogram(MetricStageEncodeUS, obs.MicrosBuckets),
		hCompile:     reg.Histogram(MetricStageCompileUS, obs.MicrosBuckets),
		results:      newLRU(opts.ResultCacheEntries),
		streams:      refstream.NewCache(opts.StreamCacheEntries),
		tasks:        make(chan *task, opts.MaxInflight),
		flights:      map[string]*flight{},
	}
	e.streams.Captures = reg.Counter(MetricStreamCaptures)
	e.streams.Hits = reg.Counter(MetricStreamHits)
	if s := opts.CaptureStore; s != nil {
		e.streams.Loader = s.Load
		e.streams.Saver = s.Save
	}
	for w := 0; w < opts.Workers; w++ {
		e.workWG.Add(1)
		go e.worker()
	}
	return e
}

// admit reserves an in-flight request slot. It returns a release
// function on success; ErrOverloaded when MaxInflight requests are
// already admitted; ErrClosed after Close began.
func (e *Engine) admit() (release func(), err error) {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if e.inflight >= e.opts.MaxInflight {
		e.cRejected.Inc()
		return nil, ErrOverloaded
	}
	e.inflight++
	e.reqWG.Add(1)
	e.gInflight.Add(1)
	return func() {
		e.stateMu.Lock()
		e.inflight--
		e.stateMu.Unlock()
		e.gInflight.Add(-1)
		e.reqWG.Done()
	}, nil
}

// Do answers one canonical point: result-cache hit, join of an
// identical in-flight point, or execution on the worker pool. Callers
// must hold an admission slot (see admit); the HTTP handlers do. On
// context expiry Do returns ctx.Err() — the execution itself, if
// already queued, still completes and populates the cache for the next
// request. A trace on ctx (trace.FromContext) receives cache_lookup
// and flight_wait spans plus cache-outcome counts; execution stages
// land on the leader's trace from the worker.
func (e *Engine) Do(ctx context.Context, p point) ([]byte, error) {
	tr := trace.FromContext(ctx)
	key := p.key()
	sp := tr.Start("cache_lookup")
	body, ok := e.results.get(key)
	e.hCacheLookup.Observe(sp.End().Microseconds())
	if ok {
		e.cHits.Inc()
		tr.Count("cache_hits", 1)
		return body, nil
	}
	e.cMisses.Inc()
	tr.Count("cache_misses", 1)

	e.stateMu.Lock()
	fl := e.flights[key]
	leader := fl == nil
	if leader {
		fl = &flight{done: make(chan struct{})}
		e.flights[key] = fl
	}
	e.stateMu.Unlock()

	wsp := tr.Start("flight_wait")
	if leader {
		t := &task{p: p, key: key, fl: fl, tr: tr, parent: wsp}
		select {
		case e.tasks <- t:
			e.gQueue.Add(1)
		case <-ctx.Done():
			// Never enqueued: resolve the flight ourselves so joined
			// waiters are not stranded.
			e.stateMu.Lock()
			delete(e.flights, key)
			e.stateMu.Unlock()
			fl.resolve(nil, ctx.Err())
			wsp.End()
			return nil, ctx.Err()
		}
	} else {
		e.cDedup.Inc()
		tr.Count("dedup_waits", 1)
	}

	select {
	case <-fl.done:
		e.hFlightWait.Observe(wsp.End().Microseconds())
		return fl.body, fl.err
	case <-ctx.Done():
		wsp.End()
		return nil, ctx.Err()
	}
}

// DoSweep answers a whole grid of canonical points, in grid order,
// riding one batch pass per capture group: every point still goes
// through the result cache and the flight table exactly like Do — so
// sweep and classify bodies stay interchangeable bit-for-bit and
// concurrent identical work is joined, not repeated — but the points
// this request must execute itself are bucketed by (kernel, problem
// size) and submitted to the pool as batch tasks, one capture and one
// stream pass per bucket. Ineligible points (partial fill) fall back
// to single-point tasks. The error of the lowest-index failing point
// wins; on context expiry DoSweep returns ctx.Err() while queued work
// still completes and populates the cache for the next request.
func (e *Engine) DoSweep(ctx context.Context, pts []point) ([]json.RawMessage, error) {
	tr := trace.FromContext(ctx)
	bodies := make([]json.RawMessage, len(pts))
	fls := make([]*flight, len(pts)) // per point; nil = served from cache
	var leaders []int                // points whose flight this request must execute
	sp := tr.Start("cache_lookup")
	for i, p := range pts {
		key := p.key()
		if body, ok := e.results.get(key); ok {
			e.cHits.Inc()
			tr.Count("cache_hits", 1)
			bodies[i] = body
			continue
		}
		e.cMisses.Inc()
		tr.Count("cache_misses", 1)
		e.stateMu.Lock()
		fl := e.flights[key]
		leader := fl == nil
		if leader {
			fl = &flight{done: make(chan struct{})}
			e.flights[key] = fl
		}
		e.stateMu.Unlock()
		fls[i] = fl
		if leader {
			leaders = append(leaders, i)
		} else {
			e.cDedup.Inc()
			tr.Count("dedup_waits", 1)
		}
	}
	e.hCacheLookup.Observe(sp.End().Microseconds())

	// Bucket the leaders into batch tasks by capture group, preserving
	// grid order within each bucket (RunBatch blames the lowest input
	// index, so grid order in = lowest grid index blamed).
	wsp := tr.Start("flight_wait")
	type groupKey struct {
		kernel *loops.Kernel
		n      int
	}
	budget := e.parBudget()
	groups := map[groupKey]*batchTask{}
	var queue []*task
	for _, i := range leaders {
		p := pts[i]
		if !refstream.Eligible(p.cfg) {
			queue = append(queue, &task{p: p, key: p.key(), fl: fls[i], tr: tr, parent: wsp})
			continue
		}
		gk := groupKey{p.kernel, p.n}
		bt := groups[gk]
		if bt == nil {
			bt = &batchTask{kernel: p.kernel, n: p.n, tr: tr, parent: wsp, budget: budget}
			groups[gk] = bt
			queue = append(queue, &task{batch: bt})
		}
		bt.pts = append(bt.pts, p)
		bt.keys = append(bt.keys, p.key())
		bt.fls = append(bt.fls, fls[i])
	}

	var err error
	for qi, t := range queue {
		select {
		case e.tasks <- t:
			e.gQueue.Add(1)
		case <-ctx.Done():
			// Never enqueued: resolve the remaining flights ourselves so
			// joined waiters are not stranded.
			err = ctx.Err()
			for _, t := range queue[qi:] {
				e.abandonTask(t, err)
			}
		}
		if err != nil {
			break
		}
	}

	// Collect in grid order; scanning in order makes the first error
	// seen the lowest-index failure.
	for i, fl := range fls {
		if fl == nil {
			continue
		}
		select {
		case <-fl.done:
			if fl.err != nil {
				wsp.End()
				return nil, fl.err
			}
			bodies[i] = fl.body
		case <-ctx.Done():
			wsp.End()
			return nil, ctx.Err()
		}
	}
	e.hFlightWait.Observe(wsp.End().Microseconds())
	if err != nil {
		return nil, err
	}
	return bodies, nil
}

// parBudget derives the partition budget for a batch task submitted
// now: an even share of the worker pool across currently admitted
// requests, floored at one. On an idle service one sweep's batch
// passes fan out across every worker (refstream.Replayer.RunBatchN);
// as admissions approach MaxInflight the share decays to a serial pass
// per task, so parallel replay never starves other requests of
// workers. The budget rides the task, not the worker, because
// occupancy at submission is what the admission decision saw.
func (e *Engine) parBudget() int {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	inflight := e.inflight
	if inflight < 1 {
		inflight = 1
	}
	if b := e.opts.Workers / inflight; b > 1 {
		return b
	}
	return 1
}

// abandonTask resolves a task that will never reach the pool (context
// expiry before enqueue), releasing its flight waiters.
func (e *Engine) abandonTask(t *task, err error) {
	if t.batch == nil {
		e.stateMu.Lock()
		delete(e.flights, t.key)
		e.stateMu.Unlock()
		t.fl.resolve(nil, err)
		return
	}
	for i := range t.batch.pts {
		e.stateMu.Lock()
		delete(e.flights, t.batch.keys[i])
		e.stateMu.Unlock()
		t.batch.fls[i].resolve(nil, err)
	}
}

// worker executes queued tasks, reusing one scratch simulator and one
// replayer for its lifetime.
func (e *Engine) worker() {
	defer e.workWG.Done()
	scratch := sim.NewScratch()
	scratch.Metrics = e.reg
	replayer := refstream.NewReplayer()
	replayer.Metrics = e.reg
	for t := range e.tasks {
		e.gQueue.Add(-1)
		if e.execHook != nil {
			e.execHook()
		}
		if t.batch != nil {
			e.executeBatch(scratch, replayer, t.batch)
			continue
		}
		body, err := e.execute(scratch, replayer, t)
		if err == nil {
			e.results.add(t.key, body)
		}
		e.stateMu.Lock()
		delete(e.flights, t.key)
		e.stateMu.Unlock()
		t.fl.resolve(body, err)
	}
}

// execute runs one point: stream replay when eligible (sharing one
// capture per (kernel, N) across all requests), direct simulation
// otherwise (the partial-fill ablation). Each stage feeds its
// histogram and, when the task carries a trace, a child span under the
// requester's flight_wait.
func (e *Engine) execute(scratch *sim.Scratch, replayer *refstream.Replayer, t *task) ([]byte, error) {
	p := t.p
	var (
		res    *sim.Result
		engine string
		err    error
	)
	if refstream.Eligible(p.cfg) {
		sp := t.tr.StartChild(t.parent, "capture")
		st, cerr := e.streams.GetScratch(scratch, p.kernel, p.n)
		e.hCapture.Observe(sp.End().Microseconds())
		if cerr == nil {
			sp = t.tr.StartChild(t.parent, "replay")
			res, err = replayer.Run(st, p.cfg)
			e.hReplay.Observe(sp.End().Microseconds())
		} else {
			err = cerr
		}
		engine = "replay"
	} else {
		sp := t.tr.StartChild(t.parent, "direct")
		res, err = runDirect(scratch, p)
		e.hDirect.Observe(sp.End().Microseconds())
		engine = "direct"
	}
	if err != nil {
		return nil, fmt.Errorf("point %s: %w", p.key(), err)
	}
	e.cPoints.Inc()
	sp := t.tr.StartChild(t.parent, "encode")
	body, err := encodePoint(p, engine, res)
	e.hEncode.Observe(sp.End().Microseconds())
	return body, err
}

// executeBatch runs one batch task: fetch the group's stream, classify
// every member in one pass — fanned out across the task's partition
// budget when it has one — then cache and resolve each member exactly
// as the single-point path would — every body goes through the same
// encodePoint with engine "replay", so a sweep-produced body is
// byte-identical to the classify-produced body of the same point. On
// failure every member's flight resolves with the error attributed to
// the member RunBatch blamed (the lowest input index), keeping sweep
// error reporting deterministic.
func (e *Engine) executeBatch(scratch *sim.Scratch, replayer *refstream.Replayer, bt *batchTask) {
	var bodies [][]byte
	sp := bt.tr.StartChild(bt.parent, "capture")
	st, err := e.streams.GetScratch(scratch, bt.kernel, bt.n)
	e.hCapture.Observe(sp.End().Microseconds())
	if err == nil {
		cfgs := make([]sim.Config, len(bt.pts))
		for i, p := range bt.pts {
			cfgs[i] = p.cfg
		}
		bt.tr.Event(bt.parent, "batch_configs", int64(len(cfgs)), "configs")
		// The span is named for how the pass ran — replay_par when the
		// budget lets RunBatchN fan partitions out, replay for a serial
		// pass — while both feed the serve.stage.replay_us histogram, so
		// stage latency stays one series.
		span := "replay"
		if bt.budget > 1 {
			span = "replay_par"
		}
		sp = bt.tr.StartChild(bt.parent, span)
		var res []*sim.Result
		res, err = replayer.RunBatchN(st, cfgs, bt.budget)
		e.hReplay.Observe(sp.End().Microseconds())
		if err == nil {
			sp = bt.tr.StartChild(bt.parent, "encode")
			bodies = make([][]byte, len(bt.pts))
			for i, p := range bt.pts {
				if bodies[i], err = encodePoint(p, "replay", res[i]); err != nil {
					break
				}
			}
			e.hEncode.Observe(sp.End().Microseconds())
		}
	}
	if err != nil {
		blame := 0
		var be *refstream.BatchError
		if errors.As(err, &be) {
			blame = be.Index
			err = be.Err
		}
		err = fmt.Errorf("point %s: %w", bt.pts[blame].key(), err)
		for i := range bt.pts {
			e.stateMu.Lock()
			delete(e.flights, bt.keys[i])
			e.stateMu.Unlock()
			bt.fls[i].resolve(nil, err)
		}
		return
	}
	e.cPoints.Add(int64(len(bt.pts)))
	for i := range bt.pts {
		e.results.add(bt.keys[i], bodies[i])
		e.stateMu.Lock()
		delete(e.flights, bt.keys[i])
		e.stateMu.Unlock()
		bt.fls[i].resolve(bodies[i], nil)
	}
}

// runDirect executes a direct simulation with panic containment: a
// registry-compiled kernel can reach an out-of-bounds subscript
// through data-dependent indirection at a (size, config) combination
// the compile-time verification did not run, and that must fail the
// one point, not the worker (the capture path has the same guard
// inside refstream.CaptureScratch).
func runDirect(scratch *sim.Scratch, p point) (res *sim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: direct run of %s/n=%d panicked: %v", p.kernel.Key, p.n, r)
		}
	}()
	return scratch.Run(p.kernel, p.n, p.cfg)
}

// Registry exposes the compiled-kernel registry (always non-nil on an
// engine built by New).
func (e *Engine) Registry() *kernelreg.Registry { return e.opts.Registry }

// deadline resolves the per-request deadline: an explicit deadline_ms
// wins, then the configured default, then the machine layer's
// deadlock-watchdog derivation (the rule behind Config.DeadlockTimeout)
// over the request's largest NPE and problem size.
func (e *Engine) deadline(deadlineMS int64, maxNPE, maxN int) time.Duration {
	if deadlineMS > 0 {
		return time.Duration(deadlineMS) * time.Millisecond
	}
	if e.opts.DefaultDeadline > 0 {
		return e.opts.DefaultDeadline
	}
	return machine.DefaultDeadline(maxNPE, maxN)
}

// CacheLen returns the number of cached result bodies (for tests and
// introspection).
func (e *Engine) CacheLen() int { return e.results.len() }

// Closing reports whether Close has begun: admitted requests may still
// be draining, but new work is refused. The HTTP layer uses it to
// report drain (503, retryable on a peer) instead of deadline overrun
// (504, terminal) for requests caught mid-shutdown.
func (e *Engine) Closing() bool {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	return e.closed
}

// Close drains the engine: new admissions fail with ErrClosed,
// admitted requests run to completion, queued work is finished, and
// the workers exit. Safe to call more than once; blocks until the
// drain completes.
func (e *Engine) Close() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	e.stateMu.Lock()
	alreadyClosed := e.closed
	e.closed = true
	e.stateMu.Unlock()
	e.reqWG.Wait() // all admitted requests returned → no more sends
	if !alreadyClosed {
		close(e.tasks)
	}
	e.workWG.Wait() // workers finished the queue
}
