package serve

// lint_test.go — the metrics-naming contract: after a full
// classify + sweep run touching every execution path, every metric
// name registered anywhere in the stack matches the canonical charset
// ^[a-z][a-z0-9_.]*$, and every histogram declares its bucket family
// in the docs/OBSERVABILITY.md inventory table. A metric added without
// a doc row fails here, which is the point.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/kernelreg"
	"repro/internal/machine"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/refstream"
	"repro/internal/sim"
)

// exerciseAll drives a fresh service through every execution path so
// each layer registers its full metric set: replay-eligible classify
// (capture + replay + encode), a cache hit, a partial-fill point
// (direct simulation), a sweep (batch path), a compile (registration,
// an idempotent hit, an SA rejection), and a bad request.
func exerciseAll(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	_, ts, _ := newTestService(t, Options{Metrics: reg})
	for _, rq := range []struct{ path, body string }{
		{"/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`},
		{"/v1/classify", `{"kernel":"k1","npe":16,"page_size":32}`},
		{"/v1/classify", `{"kernel":"k6","npe":8,"partial_fill":true}`},
		{"/v1/sweep", `{"kernels":["k2","k12"],"npes":[4,8],"page_sizes":[32]}`},
		{"/v1/compile", compileBody(t, kernelreg.CompileRequest{Source: userSource})},
		{"/v1/compile", compileBody(t, kernelreg.CompileRequest{Source: userSource})},
		{"/v1/compile", compileBody(t, kernelreg.CompileRequest{Source: violatingSource})},
		{"/v1/classify", `{"kernel":"nope"}`},
	} {
		post(t, ts, rq.path, rq.body)
	}
	return reg
}

func TestMetricNamesCanonical(t *testing.T) {
	nameRe := regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)
	snap := exerciseAll(t).Snapshot()
	seen := 0
	checkName := func(name string) {
		seen++
		if !nameRe.MatchString(name) {
			t.Errorf("metric %q violates the naming charset %s", name, nameRe)
		}
	}
	for name := range snap.Counters {
		checkName(name)
	}
	for name := range snap.Gauges {
		checkName(name)
	}
	for name := range snap.Histograms {
		checkName(name)
	}
	if seen < 20 {
		t.Fatalf("only %d metrics registered — the exercise run no longer covers the stack", seen)
	}
	// The exercise must have reached every layer the serving path uses
	// (the machine/network layers belong to the executable-machine mode,
	// not the counting-simulator service; their names are linted via the
	// constants below).
	for _, want := range []string{
		MetricCacheHits, MetricPointsExecuted, MetricStageReplayUS, MetricStageDirectUS,
		MetricCompileRequests, MetricCompileLatencyUS, MetricStageCompileUS,
		sim.MetricRuns, sim.MetricRunMicros, refstream.MetricBatchGroups, refstream.MetricBatchConfigsPerPass,
		kernelreg.MetricCompiles, kernelreg.MetricCompileHits, kernelreg.MetricCompileErrors,
		kernelreg.MetricEvictions, kernelreg.MetricQuotaRejects, kernelreg.MetricResolveMisses,
		kernelreg.MetricEntries,
	} {
		_, c := snap.Counters[want]
		_, g := snap.Gauges[want]
		_, h := snap.Histograms[want]
		if !c && !g && !h {
			t.Errorf("expected metric %q missing from the exercised snapshot", want)
		}
	}
	// Machine/network names never register through the serving path;
	// lint their exported constants directly.
	for _, name := range []string{
		machine.MetricRuns, machine.MetricFetchLatency, machine.MetricDeferredLen,
		machine.MetricWatchdogStalls, machine.MetricAborts, machine.MetricFetchRetries,
		machine.MetricDupReplies, machine.MetricDupRequests, machine.MetricRedundantDiscards,
		network.MetricInboxDepth, network.MetricMsgBytes,
		network.MetricFaultsDropped, network.MetricFaultsDuplicated, network.MetricFaultsDelayed,
		network.MetricFaultsStalls, network.MetricFaultsRedundantBytes, network.MetricFaultsDiscarded,
	} {
		if !nameRe.MatchString(name) {
			t.Errorf("metric constant %q violates the naming charset %s", name, nameRe)
		}
	}
}

// TestHistogramsDocumented cross-checks the live registry against the
// bucket-family inventory in docs/OBSERVABILITY.md: every registered
// histogram name must appear backticked in a table row.
func TestHistogramsDocumented(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("reading docs/OBSERVABILITY.md: %v", err)
	}
	rows := map[string]bool{}
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, m := range regexp.MustCompile("`([a-z][a-z0-9_.]*)`").FindAllStringSubmatch(line, -1) {
			rows[m[1]] = true
		}
	}

	snap := exerciseAll(t).Snapshot()
	for name := range snap.Histograms {
		if !rows[name] {
			t.Errorf("histogram %q has no bucket-family row in docs/OBSERVABILITY.md", name)
		}
	}
	// Known histogram constants stay pinned even if an exercise path
	// regresses silently.
	for _, name := range []string{
		sim.MetricRunMicros, machine.MetricFetchLatency, machine.MetricDeferredLen,
		network.MetricInboxDepth, network.MetricMsgBytes, refstream.MetricBatchConfigsPerPass,
		MetricClassifyLatencyUS, MetricSweepLatencyUS,
		MetricStageDecodeUS, MetricStageAdmitWaitUS, MetricStageCacheLookupUS,
		MetricStageFlightWaitUS, MetricStageCaptureUS, MetricStageReplayUS,
		MetricStageDirectUS, MetricStageEncodeUS,
		MetricCompileLatencyUS, MetricStageCompileUS,
	} {
		if !rows[name] {
			t.Errorf("histogram constant %q has no bucket-family row in docs/OBSERVABILITY.md", name)
		}
	}
}
