package serve

import (
	"context"
	"testing"
)

// TestLoadAgainstInProcessServer drives the load generator against an
// httptest server: no failures, the sweep cadence lands, and the
// duplicate-heavy mix measurably exercises the cache/dedup path.
func TestLoadAgainstInProcessServer(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	rep, err := Load(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Requests:    60,
		Concurrency: 4,
		SweepEvery:  20,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60 || rep.Concurrency != 4 {
		t.Fatalf("report echoes wrong shape: %+v", rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d, want 0/0 (unthrottled server)", rep.Errors, rep.Rejected)
	}
	if rep.SweepRequests != 3 {
		t.Fatalf("sweep requests = %d, want every 20th of 60", rep.SweepRequests)
	}
	if rep.PointsExecuted <= 0 || rep.StreamCaptures <= 0 {
		t.Fatalf("server-side deltas missing: %+v", rep)
	}
	if rep.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0 under a 0.9 duplicate fraction", rep.CacheHitRate)
	}
	if rep.P50MS < 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("latency quantiles not monotone: %+v", rep)
	}
	if rep.RequestsPerSec <= 0 || rep.WallSec <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
}

// TestLoadScheduleDeterministic: the request schedule is a pure
// function of the seed — two runs with one seed issue the same mix.
func TestLoadScheduleDeterministic(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	run := func() *LoadReport {
		rep, err := Load(context.Background(), LoadOptions{
			BaseURL: ts.URL, Requests: 30, Concurrency: 3, SweepEvery: 10, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.SweepRequests != b.SweepRequests || a.Requests != b.Requests {
		t.Fatalf("same seed produced different mixes: %+v vs %+v", a, b)
	}
	// The second identical run replays a warmed cache: every point the
	// first run executed is now a hit, so no new captures happen.
	if b.StreamCaptures != 0 {
		t.Fatalf("second run captured %d streams; the warmed cache should serve all of them", b.StreamCaptures)
	}
}
