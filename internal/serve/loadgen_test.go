package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestLoadAgainstInProcessServer drives the load generator against an
// httptest server: no failures, the sweep cadence lands, and the
// duplicate-heavy mix measurably exercises the cache/dedup path.
func TestLoadAgainstInProcessServer(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	rep, err := Load(context.Background(), LoadOptions{
		BaseURL:     ts.URL,
		Requests:    60,
		Concurrency: 4,
		SweepEvery:  20,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60 || rep.Concurrency != 4 {
		t.Fatalf("report echoes wrong shape: %+v", rep)
	}
	if rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("errors=%d rejected=%d, want 0/0 (unthrottled server)", rep.Errors, rep.Rejected)
	}
	if rep.SweepRequests != 3 {
		t.Fatalf("sweep requests = %d, want every 20th of 60", rep.SweepRequests)
	}
	if rep.PointsExecuted <= 0 || rep.StreamCaptures <= 0 {
		t.Fatalf("server-side deltas missing: %+v", rep)
	}
	if rep.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v, want > 0 under a 0.9 duplicate fraction", rep.CacheHitRate)
	}
	if rep.P50MS < 0 || rep.P99MS < rep.P50MS || rep.MaxMS < rep.P99MS {
		t.Fatalf("latency quantiles not monotone: %+v", rep)
	}
	if rep.RequestsPerSec <= 0 || rep.WallSec <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
}

// TestLoadScheduleDeterministic: the request schedule is a pure
// function of the seed — two runs with one seed issue the same mix.
func TestLoadScheduleDeterministic(t *testing.T) {
	_, ts, _ := newTestService(t, Options{})
	run := func() *LoadReport {
		rep, err := Load(context.Background(), LoadOptions{
			BaseURL: ts.URL, Requests: 30, Concurrency: 3, SweepEvery: 10, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.SweepRequests != b.SweepRequests || a.Requests != b.Requests {
		t.Fatalf("same seed produced different mixes: %+v vs %+v", a, b)
	}
	// The second identical run replays a warmed cache: every point the
	// first run executed is now a hit, so no new captures happen.
	if b.StreamCaptures != 0 {
		t.Fatalf("second run captured %d streams; the warmed cache should serve all of them", b.StreamCaptures)
	}
}

// TestLoadRetriesTransient503: a backend that answers 503 a few times
// before recovering is retried transparently — the run reports the
// retry count, no errors, and 429/terminal statuses are never retried.
func TestLoadRetriesTransient503(t *testing.T) {
	srv, _, _ := newTestService(t, Options{})
	var flaky atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The first 5 classify attempts hit a "draining" backend.
		if r.URL.Path == "/v1/classify" && flaky.Add(1) <= 5 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"engine draining"}`, http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()

	rep, err := Load(context.Background(), LoadOptions{
		BaseURL:      proxy.URL,
		Requests:     40,
		Concurrency:  4,
		Seed:         3,
		MaxRetries:   3,
		RetryBackoff: 1e6, // 1ms — keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("flaky backend produced no retries")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0: transient 503s must be absorbed by retries", rep.Errors)
	}
}

// TestLoadRetriesDisabled: MaxRetries < 0 turns retries off and the
// transient failures surface as errors instead.
func TestLoadRetriesDisabled(t *testing.T) {
	srv, _, _ := newTestService(t, Options{})
	var flaky atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/classify" && flaky.Add(1) <= 5 {
			http.Error(w, `{"error":"engine draining"}`, http.StatusServiceUnavailable)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()

	rep, err := Load(context.Background(), LoadOptions{
		BaseURL: proxy.URL, Requests: 40, Concurrency: 4, Seed: 3, MaxRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 {
		t.Fatalf("retries = %d, want 0 when disabled", rep.Retries)
	}
	if rep.Errors == 0 {
		t.Fatal("with retries disabled the 503s should count as errors")
	}
}
