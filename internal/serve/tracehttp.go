package serve

// tracehttp.go — the request-scoped observability layer of the HTTP
// front end: X-Request-ID acceptance/generation, the per-request
// obs/trace.Trace riding the request context, the bounded ring of
// recent traces behind GET /debug/trace, and the structured JSON
// access log. Everything here rides headers and side channels only —
// response bodies are produced by the engine and stay byte-identical
// whether or not tracing observes the request (pinned by
// trace_test.go).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs/trace"
)

// statusWriter captures the status code written by a handler so the
// access log and trace can record it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// traced wraps a request handler with the per-request trace lifecycle:
// accept the caller's X-Request-ID when it passes trace.SanitizeID
// (otherwise generate one), echo it on the response, run the handler
// with the trace on the request context, then finish the trace, retain
// it in the ring and emit one access-log line.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := trace.SanitizeID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = trace.NewID()
		}
		tr := trace.New(id, route)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(trace.NewContext(r.Context(), tr)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		tr.Finish(status)
		s.ring.Add(tr)
		s.alog.log(tr.Snapshot())
	}
}

// accessLogger serializes structured access-log lines onto one writer.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		w = os.Stderr
	}
	return &accessLogger{w: w}
}

// accessLine is one access-log record: machine-parseable JSON, one
// line per request, written to the configured writer (os.Stderr by
// default).
type accessLine struct {
	Time         string           `json:"ts"`
	ID           string           `json:"id"`
	Route        string           `json:"route"`
	Status       int              `json:"status"`
	DurMS        float64          `json:"dur_ms"`
	Counts       map[string]int64 `json:"counts,omitempty"`
	StagesUS     map[string]int64 `json:"stages_us,omitempty"`
	DroppedSpans int              `json:"dropped_spans,omitempty"`
}

func (l *accessLogger) log(o trace.Out) {
	if l.w == io.Discard {
		return
	}
	line, err := json.Marshal(accessLine{
		Time:         o.Start.UTC().Format(time.RFC3339Nano),
		ID:           o.ID,
		Route:        o.Route,
		Status:       o.Status,
		DurMS:        float64(o.DurUS) / 1000,
		Counts:       o.Counts,
		StagesUS:     o.StageTotals(),
		DroppedSpans: o.Dropped,
	})
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}

// traceSummary is one row of the GET /debug/trace listing.
type traceSummary struct {
	ID     string    `json:"id"`
	Route  string    `json:"route"`
	Status int       `json:"status"`
	Start  time.Time `json:"start"`
	DurUS  int64     `json:"dur_us"`
	Spans  int       `json:"spans"`
	Done   bool      `json:"done"`
}

// handleTrace serves the recent-trace ring: without parameters a
// newest-first summary listing (bounded by ?n=, default 32); with
// ?id= the full span tree of one retained trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-store")
	if id := r.URL.Query().Get("id"); id != "" {
		t := s.ring.Get(id)
		if t == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no trace %q in the ring (capacity %d, newest win)", id, s.ring.Len()))
			return
		}
		body, err := json.MarshalIndent(t.Snapshot(), "", "  ")
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
			n = parsed
		}
	}
	list := s.ring.Recent(n)
	summaries := make([]traceSummary, 0, len(list))
	for _, t := range list {
		o := t.Snapshot()
		summaries = append(summaries, traceSummary{
			ID:     o.ID,
			Route:  o.Route,
			Status: o.Status,
			Start:  o.Start,
			DurUS:  o.DurUS,
			Spans:  len(o.Spans),
			Done:   o.Done,
		})
	}
	body, err := json.MarshalIndent(summaries, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// buildDetails is the build/version block of the GET /healthz body,
// sourced from runtime/debug.ReadBuildInfo. The Prometheus-side
// counterpart is the constant build.info gauge.
type buildDetails struct {
	Go       string `json:"go"`
	Module   string `json:"module,omitempty"`
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

func readBuildDetails() buildDetails {
	out := buildDetails{Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			rev := st.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			out.Revision = rev
		case "vcs.modified":
			out.Modified = st.Value == "true"
		}
	}
	return out
}

// healthBody renders the /healthz payload once at startup: liveness
// plus build details. Always contains "status":"ok" — smoke checks
// grep for it.
func healthBody() []byte {
	body, err := json.Marshal(struct {
		Status string       `json:"status"`
		Build  buildDetails `json:"build"`
	}{Status: "ok", Build: readBuildDetails()})
	if err != nil {
		return []byte(`{"status":"ok"}`)
	}
	return body
}
