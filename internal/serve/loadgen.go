package serve

// loadgen.go — a deterministic load generator for the daemon: a mixed
// duplicate/unique request stream whose shape is a pure function of the
// seed, so two runs against equal servers exercise the same cache and
// dedup behavior. Drives `lfksimd -loadgen` and `make loadbench`, which
// append the measured throughput/latency/hit-rate to the BENCH history.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loops"
	"repro/internal/obs"
)

// LoadOptions configures one load run.
type LoadOptions struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// Requests is the total request count (<= 0 means 2000).
	Requests int
	// Concurrency is the number of in-flight clients (<= 0 means 16).
	Concurrency int
	// DupFraction is the probability a request is drawn from the small
	// hot set rather than the unique tail. 0 is a legal all-unique
	// stream; negative selects the default 0.9; values above 1 clamp.
	DupFraction float64
	// SweepEvery makes every k-th request a /v1/sweep of a small grid
	// (<= 0 disables sweep traffic).
	SweepEvery int
	// Seed drives the request mix (0 means 1).
	Seed int64
	// MaxRetries bounds re-sends of a request that came back with a
	// transient overload status (502 or 503). Classify and sweep are
	// idempotent — identical requests produce bit-identical bodies — so
	// retrying is always safe. 0 means 2; negative disables retries.
	MaxRetries int
	// RetryBackoff is the base of the jittered backoff between retry
	// attempts (0 means 5ms). Attempt n sleeps base·n plus a seeded
	// jitter in [0, base).
	RetryBackoff time.Duration
	// Client overrides the HTTP client (nil means a pooled default).
	Client *http.Client
}

// LoadReport is the measured outcome of one load run; it is the
// "serve" section appended to the BENCH JSON history.
type LoadReport struct {
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	DupFraction    float64 `json:"dup_fraction"`
	SweepRequests  int     `json:"sweep_requests"`
	Errors         int     `json:"errors"`
	Rejected       int     `json:"rejected"` // 429 responses
	Retries        int64   `json:"retries"`  // re-sends after transient 502/503
	WallSec        float64 `json:"wall_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	MaxMS          float64 `json:"max_ms"`
	// Server-side deltas over the run, read from /metrics.
	CacheHitRate   float64 `json:"cache_hit_rate"` // hits / (hits+misses)
	DedupWaits     int64   `json:"dedup_waits"`
	PointsExecuted int64   `json:"points_executed"`
	StreamCaptures int64   `json:"stream_captures"`
	// Stages holds server-side per-stage latency quantiles over the run,
	// one entry per serve.stage.* histogram (delta of the before/after
	// /metrics snapshots), keyed by full metric name.
	Stages map[string]StageQuantiles `json:"stages,omitempty"`
}

// StageQuantiles is one stage histogram's quantile summary, estimated
// server-side from its bucket counts (obs.HistSnapshot.Quantile).
type StageQuantiles struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
}

// deltaHist subtracts the before-run state of one histogram from its
// after-run state bucket by bucket, so quantiles reflect only this
// run's observations even against a warm daemon. When before is empty
// the delta is exact; when it has observations Min/Max are unknown for
// the delta and are approximated by the after-snapshot's (the estimate
// stays clamped and monotone). Mismatched bucket layouts fall back to
// the after-snapshot unchanged.
func deltaHist(before, after obs.HistSnapshot) obs.HistSnapshot {
	if before.Count == 0 {
		return after
	}
	if len(before.Bounds) != len(after.Bounds) || len(before.Counts) != len(after.Counts) {
		return after
	}
	d := obs.HistSnapshot{
		Count:  after.Count - before.Count,
		Sum:    after.Sum - before.Sum,
		Min:    after.Min,
		Max:    after.Max,
		Bounds: after.Bounds,
		Counts: make([]int64, len(after.Counts)),
	}
	for i := range after.Counts {
		d.Counts[i] = after.Counts[i] - before.Counts[i]
	}
	if d.Count > 0 {
		d.Mean = float64(d.Sum) / float64(d.Count)
	}
	return d
}

// stageQuantiles builds the per-stage report from the before/after
// snapshots: every histogram under the serve.stage.* prefix with at
// least one observation during the run.
func stageQuantiles(before, after *obs.Snapshot) map[string]StageQuantiles {
	const prefix = "serve.stage."
	out := map[string]StageQuantiles{}
	for name, h := range after.Histograms {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		d := deltaHist(before.Histograms[name], h)
		if d.Count <= 0 {
			continue
		}
		out[name] = StageQuantiles{
			Count:  d.Count,
			P50MS:  d.Quantile(0.50) / 1000, // histograms record microseconds
			P99MS:  d.Quantile(0.99) / 1000,
			P999MS: d.Quantile(0.999) / 1000,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// hotSet is the duplicate side of the mix: a handful of baseline
// requests a real fleet would hammer.
var hotSet = []ClassifyRequest{
	{Kernel: "k1"},
	{Kernel: "k1", NPE: 64},
	{Kernel: "k2", NPE: 16},
	{Kernel: "k12", NPE: 32, PageSize: 64},
}

// uniqueRequest derives the i-th unique-tail request: kernels, PE
// counts and page sizes crossed so successive draws rarely repeat.
func uniqueRequest(rng *rand.Rand) ClassifyRequest {
	kernels := loops.PaperSet()
	npes := []int{1, 2, 4, 8, 16, 32, 64}
	pss := []int{16, 32, 64, 128}
	ces := []int{0, 128, 256, 512}
	return ClassifyRequest{
		Kernel:     kernels[rng.Intn(len(kernels))].Key,
		NPE:        npes[rng.Intn(len(npes))],
		PageSize:   pss[rng.Intn(len(pss))],
		CacheElems: &ces[rng.Intn(len(ces))],
	}
}

// smallSweep is the sweep-side request: one kernel over the PE axis.
func smallSweep(rng *rand.Rand) SweepRequest {
	kernels := loops.PaperSet()
	return SweepRequest{
		Kernels:   []string{kernels[rng.Intn(len(kernels))].Key},
		PageSizes: []int{32, 64},
	}
}

// metricsSnapshot fetches and decodes GET /metrics.
func metricsSnapshot(ctx context.Context, client *http.Client, base string) (*obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding /metrics: %w", err)
	}
	return &snap, nil
}

// Load hammers the daemon at BaseURL with a seeded duplicate/unique
// request mix and reports client-side latency/throughput plus
// server-side cache behavior (from /metrics deltas).
func Load(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	switch {
	case o.DupFraction < 0:
		o.DupFraction = 0.9
	case o.DupFraction > 1:
		o.DupFraction = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.Concurrency}}
	}

	before, err := metricsSnapshot(ctx, client, o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	type shot struct {
		path string
		body []byte
	}
	// Materialize the whole request schedule up front from one rng, so
	// the mix is a pure function of the seed regardless of worker
	// interleaving.
	rng := rand.New(rand.NewSource(o.Seed))
	shots := make([]shot, o.Requests)
	sweeps := 0
	for i := range shots {
		if o.SweepEvery > 0 && (i+1)%o.SweepEvery == 0 {
			b, err := json.Marshal(smallSweep(rng))
			if err != nil {
				return nil, err
			}
			shots[i] = shot{path: "/v1/sweep", body: b}
			sweeps++
			continue
		}
		var cr ClassifyRequest
		if rng.Float64() < o.DupFraction {
			cr = hotSet[rng.Intn(len(hotSet))]
		} else {
			cr = uniqueRequest(rng)
		}
		b, err := json.Marshal(cr)
		if err != nil {
			return nil, err
		}
		shots[i] = shot{path: "/v1/classify", body: b}
	}

	maxRetries := o.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = 2
	case maxRetries < 0:
		maxRetries = 0
	}
	backoffBase := o.RetryBackoff
	if backoffBase <= 0 {
		backoffBase = 5 * time.Millisecond
	}

	var (
		latencies = make([]time.Duration, o.Requests)
		status    = make([]int, o.Requests)
		retries   int64
		next      = make(chan int)
		wg        sync.WaitGroup
		firstErr  error
		errMu     sync.Mutex
	)
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker jitter rng: seeded so runs are reproducible, per
			// worker so there is no cross-goroutine lock on the hot path.
			jitter := rand.New(rand.NewSource(o.Seed + int64(worker)*7919))
			for i := range next {
				t0 := time.Now()
				var err error
				for attempt := 0; ; attempt++ {
					var req *http.Request
					req, err = http.NewRequestWithContext(ctx, http.MethodPost,
						o.BaseURL+shots[i].path, bytes.NewReader(shots[i].body))
					if err != nil {
						break
					}
					req.Header.Set("Content-Type", "application/json")
					var resp *http.Response
					if resp, err = client.Do(req); err != nil {
						break
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					status[i] = resp.StatusCode
					// 502/503 are transient (a draining or restarting
					// backend); classify/sweep are idempotent, so re-send
					// after a jittered backoff. Everything else — including
					// 429, which the run reports as admission pressure — is
					// terminal for this shot.
					transient := resp.StatusCode == http.StatusBadGateway ||
						resp.StatusCode == http.StatusServiceUnavailable
					if !transient || attempt >= maxRetries {
						break
					}
					atomic.AddInt64(&retries, 1)
					sleep := backoffBase*time.Duration(attempt+1) +
						time.Duration(jitter.Int63n(int64(backoffBase)))
					select {
					case <-time.After(sleep):
					case <-ctx.Done():
					}
					if ctx.Err() != nil {
						break
					}
				}
				latencies[i] = time.Since(t0)
				if err != nil && ctx.Err() == nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}(w)
	}
feed:
	for i := 0; i < o.Requests; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("loadgen: %w", firstErr)
	}

	after, err := metricsSnapshot(ctx, client, o.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}

	rep := &LoadReport{
		Requests:      o.Requests,
		Concurrency:   o.Concurrency,
		DupFraction:   o.DupFraction,
		SweepRequests: sweeps,
		Retries:       atomic.LoadInt64(&retries),
		WallSec:       wall.Seconds(),
	}
	rep.RequestsPerSec = float64(o.Requests) / wall.Seconds()
	for _, st := range status {
		switch {
		case st == http.StatusTooManyRequests:
			rep.Rejected++
		case st != http.StatusOK:
			rep.Errors++
		}
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	quant := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return float64(sorted[idx]) / float64(time.Millisecond)
	}
	rep.P50MS = quant(0.50)
	rep.P99MS = quant(0.99)
	rep.MaxMS = quant(1)

	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	hits, misses := delta(MetricCacheHits), delta(MetricCacheMisses)
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	rep.DedupWaits = delta(MetricDedupWaits)
	rep.PointsExecuted = delta(MetricPointsExecuted)
	rep.StreamCaptures = delta(MetricStreamCaptures)
	rep.Stages = stageQuantiles(before, after)
	return rep, nil
}
