package serve

// api.go — the wire types of the classification service, the
// canonicalization that turns a request into a cache key, and the
// deterministic JSON encoding of results.
//
// Determinism contract: identical requests produce bit-identical
// response bodies. Point bodies are encoded once from fixed structs
// (encoding/json is deterministic over structs), cached verbatim, and
// re-served byte-for-byte; a recomputation after eviction re-encodes
// the same simulator result (itself bit-stable) into the same bytes.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/kernelreg"
	"repro/internal/loops"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ClassifyRequest is the body of POST /v1/classify: one grid point.
// Zero-valued fields select the paper's baseline (npe 8, page size 32,
// 256-element LRU cache, modulo layout, kernel-default problem size).
type ClassifyRequest struct {
	Kernel     string `json:"kernel"`
	N          int    `json:"n,omitempty"`
	NPE        int    `json:"npe,omitempty"`
	PageSize   int    `json:"page_size,omitempty"`
	CacheElems *int   `json:"cache_elems,omitempty"` // pointer: 0 (no cache) differs from absent (256)
	Policy     string `json:"policy,omitempty"`      // lru | fifo | clock | random
	Layout     string `json:"layout,omitempty"`      // modulo | block | blockcyclic
	LayoutRun  int    `json:"layout_run,omitempty"`  // block-cyclic run length
	// PartialFill enables the §4/§8 partially-filled-page ablation; such
	// points are ineligible for stream replay and run directly.
	PartialFill bool `json:"partial_fill,omitempty"`
	// IncludePerPE / IncludeTraffic add the per-PE counter vector and
	// the NPE×NPE message matrix to the response (both off by default to
	// keep bodies small).
	IncludePerPE   bool `json:"include_per_pe,omitempty"`
	IncludeTraffic bool `json:"include_traffic,omitempty"`
	// DeadlineMS overrides the server's per-request deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: a parameter grid, axes
// crossed exactly like sweep.Grid (kernels outermost, then NPEs, page
// sizes, cache sizes, layouts, policies innermost). Empty axes select
// the paper's baseline; empty kernels selects the paper's studied set.
type SweepRequest struct {
	Kernels        []string `json:"kernels,omitempty"`
	N              int      `json:"n,omitempty"`
	NPEs           []int    `json:"npes,omitempty"`
	PageSizes      []int    `json:"page_sizes,omitempty"`
	CacheElems     []int    `json:"cache_elems,omitempty"`
	Layouts        []string `json:"layouts,omitempty"`
	Policies       []string `json:"policies,omitempty"`
	LayoutRun      int      `json:"layout_run,omitempty"`
	IncludePerPE   bool     `json:"include_per_pe,omitempty"`
	IncludeTraffic bool     `json:"include_traffic,omitempty"`
	DeadlineMS     int64    `json:"deadline_ms,omitempty"`
}

// ConfigOut echoes the canonical configuration a point was served at.
type ConfigOut struct {
	NPE         int    `json:"npe"`
	PageSize    int    `json:"page_size"`
	CacheElems  int    `json:"cache_elems"`
	Policy      string `json:"policy"`
	Layout      string `json:"layout"`
	LayoutRun   int    `json:"layout_run,omitempty"`
	PartialFill bool   `json:"partial_fill,omitempty"`
}

// CountersOut is one access-class counter vector.
type CountersOut struct {
	Writes      int64 `json:"writes"`
	LocalReads  int64 `json:"local_reads"`
	CachedReads int64 `json:"cached_reads"`
	RemoteReads int64 `json:"remote_reads"`
}

func countersOut(c stats.Counters) CountersOut {
	return CountersOut{
		Writes:      c.Writes,
		LocalReads:  c.LocalReads,
		CachedReads: c.CachedReads,
		RemoteReads: c.RemoteReads,
	}
}

// CacheOut aggregates the per-PE cache statistics of a run.
type CacheOut struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	PartialMisses int64 `json:"partial_misses"`
	Inserts       int64 `json:"inserts"`
	Refreshes     int64 `json:"refreshes"`
	Evictions     int64 `json:"evictions"`
}

// ChecksumOut is one output-array checksum.
type ChecksumOut struct {
	Name    string  `json:"name"`
	Elems   int     `json:"elems"`
	Defined int     `json:"defined"`
	Sum     float64 `json:"sum"`
}

// PointResult is the response body of /v1/classify and one element of
// a /v1/sweep response.
type PointResult struct {
	Kernel        string        `json:"kernel"`
	N             int           `json:"n"`
	Config        ConfigOut     `json:"config"`
	Engine        string        `json:"engine"` // "replay" or "direct"
	Totals        CountersOut   `json:"totals"`
	RemotePercent float64       `json:"remote_percent"`
	CachedPercent float64       `json:"cached_percent"`
	ReduceSends   int64         `json:"reduce_sends"`
	ReduceBcasts  int64         `json:"reduce_bcasts"`
	Cache         *CacheOut     `json:"cache,omitempty"`
	Checksums     []ChecksumOut `json:"checksums"`
	PerPE         []CountersOut `json:"per_pe,omitempty"`
	Traffic       [][]int64     `json:"traffic,omitempty"`
}

// SweepResult is the response body of /v1/sweep. Points are in grid
// order, each bit-identical to the /v1/classify body of the same point.
type SweepResult struct {
	Count  int               `json:"count"`
	Points []json.RawMessage `json:"points"`
}

// KernelInfo is one entry of GET /v1/kernels.
type KernelInfo struct {
	Key      string `json:"key"`
	Name     string `json:"name"`
	Class    string `json:"class"`
	DefaultN int    `json:"default_n"`
	MinN     int    `json:"min_n"`
	Paper    bool   `json:"paper"` // part of the paper's studied set
}

// ErrorBody is the JSON body of every non-2xx response. Code and
// Diagnostics are set only by the compile subsystem's structured
// rejections (omitempty keeps every pre-existing error body
// byte-identical).
type ErrorBody struct {
	Error       string           `json:"error"`
	Code        string           `json:"code,omitempty"`
	Diagnostics []kernelreg.Diag `json:"diagnostics,omitempty"`
}

// point is a fully canonicalized, validated grid point: the unit of
// execution, caching and deduplication.
type point struct {
	kernel  *loops.Kernel
	n       int // clamped
	cfg     sim.Config
	perPE   bool
	traffic bool
}

// key renders the canonical cache key. Two requests map to the same
// key exactly when their response bodies are guaranteed identical.
func (p point) key() string {
	return fmt.Sprintf("%s|n=%d|npe=%d|ps=%d|ce=%d|pol=%s|lay=%s|run=%d|pf=%t|pp=%t|tr=%t",
		p.kernel.Key, p.n, p.cfg.NPE, p.cfg.PageSize, p.cfg.CacheElems,
		p.cfg.Policy, p.cfg.Layout, p.cfg.LayoutRun,
		p.cfg.ModelPartialFill, p.perPE, p.traffic)
}

func parsePolicy(s string) (cache.Policy, error) {
	switch strings.ToLower(s) {
	case "", "lru":
		return cache.LRU, nil
	case "fifo":
		return cache.FIFO, nil
	case "clock":
		return cache.Clock, nil
	case "random":
		return cache.Random, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want lru, fifo, clock or random)", s)
}

func parseLayout(s string) (partition.Kind, error) {
	switch strings.ToLower(s) {
	case "", "modulo":
		return partition.KindModulo, nil
	case "block":
		return partition.KindBlock, nil
	case "blockcyclic", "block-cyclic":
		return partition.KindBlockCyclic, nil
	}
	return 0, fmt.Errorf("unknown layout %q (want modulo, block or blockcyclic)", s)
}

// limits bounds what a single request may ask of the process; they
// exist so no request can allocate or compute without bound.
type limits struct {
	maxN           int
	maxNPE         int
	maxPageSize    int
	maxCacheElems  int
	maxSweepPoints int
	// reg resolves kernel keys: built-ins via loops.ByKey, compiled
	// "u:" ids via the registry. A nil registry still resolves
	// built-ins (kernelreg.Resolve is nil-safe), so paths without a
	// compile subsystem — SweepGroups on a bare Options, tests — keep
	// working unchanged.
	reg *kernelreg.Registry
}

// canonPoint validates and canonicalizes one classify request into a
// point. Canonicalization — problem-size clamping, defaulting, zeroing
// layout_run under non-block-cyclic layouts, forcing policy to lru when
// the cache is disabled — is visible: the response echoes the canonical
// configuration, and the cache key is derived from it, so equivalent
// requests share one cache entry and one body.
func canonPoint(req ClassifyRequest, lim limits) (point, error) {
	k, err := lim.reg.Resolve(req.Kernel)
	if err != nil {
		return point{}, err
	}
	if req.N < 0 {
		return point{}, fmt.Errorf("n must be >= 0 (0 selects the kernel default), got %d", req.N)
	}
	if req.N > lim.maxN {
		return point{}, fmt.Errorf("n %d exceeds the server limit %d", req.N, lim.maxN)
	}
	cfg := sim.Config{
		NPE:              req.NPE,
		PageSize:         req.PageSize,
		CacheElems:       256,
		ModelPartialFill: req.PartialFill,
	}
	if cfg.NPE == 0 {
		cfg.NPE = 8
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 32
	}
	if req.CacheElems != nil {
		cfg.CacheElems = *req.CacheElems
	}
	if cfg.Policy, err = parsePolicy(req.Policy); err != nil {
		return point{}, err
	}
	if cfg.Layout, err = parseLayout(req.Layout); err != nil {
		return point{}, err
	}
	if req.LayoutRun < 0 {
		return point{}, fmt.Errorf("layout_run must be >= 0, got %d", req.LayoutRun)
	}
	if cfg.Layout == partition.KindBlockCyclic {
		cfg.LayoutRun = req.LayoutRun
		if cfg.LayoutRun == 0 {
			cfg.LayoutRun = 1 // partition.Make's own default, made visible
		}
	}
	if cfg.CacheElems == 0 {
		cfg.Policy = cache.LRU // policy is inert without a cache
	}
	if err := cfg.Validate(); err != nil {
		return point{}, err
	}
	switch {
	case cfg.NPE > lim.maxNPE:
		return point{}, fmt.Errorf("npe %d exceeds the server limit %d", cfg.NPE, lim.maxNPE)
	case cfg.PageSize > lim.maxPageSize:
		return point{}, fmt.Errorf("page_size %d exceeds the server limit %d", cfg.PageSize, lim.maxPageSize)
	case cfg.CacheElems > lim.maxCacheElems:
		return point{}, fmt.Errorf("cache_elems %d exceeds the server limit %d", cfg.CacheElems, lim.maxCacheElems)
	}
	return point{
		kernel:  k,
		n:       k.ClampN(req.N),
		cfg:     cfg,
		perPE:   req.IncludePerPE,
		traffic: req.IncludeTraffic,
	}, nil
}

// canonSweep expands a sweep request into canonical points in grid
// order. The axes are crossed by sweep.Grid itself, so the service's
// grid semantics are the engine's by construction.
func canonSweep(req SweepRequest, lim limits) ([]point, error) {
	keys := req.Kernels
	if len(keys) == 0 {
		for _, k := range loops.PaperSet() {
			keys = append(keys, k.Key)
		}
	}
	kernels := make([]*loops.Kernel, len(keys))
	for i, key := range keys {
		k, err := lim.reg.Resolve(key)
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}
	layouts := make([]partition.Kind, 0, len(req.Layouts))
	for _, s := range req.Layouts {
		l, err := parseLayout(s)
		if err != nil {
			return nil, err
		}
		layouts = append(layouts, l)
	}
	policies := make([]cache.Policy, 0, len(req.Policies))
	for _, s := range req.Policies {
		p, err := parsePolicy(s)
		if err != nil {
			return nil, err
		}
		policies = append(policies, p)
	}
	grid := sweep.Grid{
		Kernels:    kernels,
		N:          req.N,
		NPEs:       req.NPEs,
		PageSizes:  req.PageSizes,
		CacheElems: req.CacheElems,
		Layouts:    layouts,
		Policies:   policies,
	}
	if size := grid.Size(); size > lim.maxSweepPoints {
		return nil, fmt.Errorf("sweep expands to %d points, over the server limit %d", size, lim.maxSweepPoints)
	}
	pts := grid.Points()
	out := make([]point, len(pts))
	for i, gp := range pts {
		cr := ClassifyRequest{
			Kernel:         gp.Kernel.Key,
			N:              req.N,
			NPE:            gp.Config.NPE,
			PageSize:       gp.Config.PageSize,
			CacheElems:     &gp.Config.CacheElems,
			Policy:         gp.Config.Policy.String(),
			Layout:         gp.Config.Layout.String(),
			LayoutRun:      req.LayoutRun,
			IncludePerPE:   req.IncludePerPE,
			IncludeTraffic: req.IncludeTraffic,
		}
		p, err := canonPoint(cr, lim)
		if err != nil {
			return nil, fmt.Errorf("grid point %d (%s): %w", i, gp, err)
		}
		out[i] = p
	}
	return out, nil
}

// Group names one capture group of a sweep: a (kernel, clamped N)
// pair, the unit of stream capture and therefore of cluster placement.
// A sweep's groups are contiguous runs of its grid-ordered points
// (kernels are the outermost axis), which is what lets a router split
// a sweep across shards and merge the responses back in grid order.
type Group struct {
	Kernel string // canonical kernel key
	N      int    // clamped problem size
}

// SweepGroups validates req exactly as POST /v1/sweep does — same
// canonicalization, same errors, same MaxSweepPoints limit from opts —
// and returns its capture groups in grid order (one per requested
// kernel entry, duplicates preserved) plus the total point count.
// Every group expands to the same number of points (size/len(groups)):
// the other axes are identical across kernels. The cluster router
// routes on this so a sharded sweep accepts, rejects and orders
// exactly what a single node would.
func SweepGroups(req SweepRequest, opts Options) ([]Group, int, error) {
	pts, err := canonSweep(req, opts.withDefaults().limits())
	if err != nil {
		return nil, 0, err
	}
	nk := len(req.Kernels)
	if nk == 0 {
		nk = len(loops.PaperSet())
	}
	ppk := len(pts) / nk
	groups := make([]Group, nk)
	for i := range groups {
		p := pts[i*ppk]
		groups[i] = Group{Kernel: p.kernel.Key, N: p.n}
	}
	return groups, len(pts), nil
}

// encodePoint renders the canonical JSON body of one served point.
func encodePoint(p point, engine string, res *sim.Result) ([]byte, error) {
	pr := PointResult{
		Kernel: p.kernel.Key,
		N:      p.n,
		Config: ConfigOut{
			NPE:         p.cfg.NPE,
			PageSize:    p.cfg.PageSize,
			CacheElems:  p.cfg.CacheElems,
			Policy:      p.cfg.Policy.String(),
			Layout:      p.cfg.Layout.String(),
			LayoutRun:   p.cfg.LayoutRun,
			PartialFill: p.cfg.ModelPartialFill,
		},
		Engine:        engine,
		Totals:        countersOut(res.Totals),
		RemotePercent: res.Totals.RemotePercent(),
		CachedPercent: res.Totals.CachedPercent(),
		ReduceSends:   res.ReduceSends,
		ReduceBcasts:  res.ReduceBcasts,
		Checksums:     make([]ChecksumOut, 0, len(res.Checksums)),
	}
	if len(res.Cache) > 0 {
		agg := &CacheOut{}
		for _, cs := range res.Cache {
			agg.Hits += cs.Hits
			agg.Misses += cs.Misses
			agg.PartialMisses += cs.PartialMisses
			agg.Inserts += cs.Inserts
			agg.Refreshes += cs.Refreshes
			agg.Evictions += cs.Evictions
		}
		pr.Cache = agg
	}
	for _, cs := range res.Checksums {
		pr.Checksums = append(pr.Checksums, ChecksumOut{
			Name: cs.Name, Elems: cs.Elems, Defined: cs.Defined, Sum: cs.Sum,
		})
	}
	if p.perPE {
		pr.PerPE = make([]CountersOut, len(res.PerPE))
		for i, c := range res.PerPE {
			pr.PerPE[i] = countersOut(c)
		}
	}
	if p.traffic {
		pr.Traffic = res.Traffic
	}
	return json.Marshal(&pr)
}
